package qosneg

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qosneg/internal/admission"
	"qosneg/internal/client"
	"qosneg/internal/core"
	"qosneg/internal/faults"
	"qosneg/internal/media"
	"qosneg/internal/profile"
	"qosneg/internal/protocol"
	"qosneg/internal/telemetry"
	"qosneg/internal/workload"
)

// overloadSLO is the p99 target the harness declares and then holds the
// system to while overloaded.
const overloadSLO = 250 * time.Millisecond

// overloadHarness is the full stack under open-loop load: an instrumented
// system with admission control and fault weather, served over the real
// wire protocol, with a pool of multiplexed client connections.
type overloadHarness struct {
	sys  *System
	ctrl *admission.Controller
	inj  *faults.Injector
	// conns carries negotiation traffic; winddown is a dedicated connection
	// for session rejects, so wind-down (confirm-class, never shed) cannot
	// queue behind the negotiate storm and strand reserved resources.
	conns    []*protocol.Client
	winddown *protocol.Client
	docs     []media.DocumentID
	rr       atomic.Uint64
}

func newOverloadHarness(t *testing.T, nconns int, extra ...Option) *overloadHarness {
	t.Helper()
	ctrl := admission.New(admission.Config{
		SLO: overloadSLO,
		// Cap admitted concurrency at the core count: the probe phase then
		// measures the same service capacity the controller defends, so
		// "goodput within 20% of peak" is a property of the shed path, not
		// of slack in the limit.
		MaxInFlight: runtime.GOMAXPROCS(0),
	})
	inj := faults.New(7)
	reg := telemetry.NewRegistry()
	options := append([]Option{
		WithClients(4), WithServers(3),
		WithMetrics(reg), WithAdmission(ctrl), WithFaultInjector(inj)}, extra...)
	sys, err := New(options...)
	if err != nil {
		t.Fatal(err)
	}
	h := &overloadHarness{sys: sys, ctrl: ctrl, inj: inj}
	// Baseline fault weather: a fixed cost per Reserve/Connect, as a real
	// CMFS round would have. Without it negotiations complete in
	// microseconds and no in-flight concurrency ever accumulates — the
	// admission limit would be untestable. The probe phase runs under the
	// same weather, so the measured peak is comparable.
	inj.SetLatency(time.Millisecond)
	for i := 1; i <= 6; i++ {
		id := media.DocumentID(fmt.Sprintf("news-%d", i))
		if _, err := sys.AddNewsArticle(id, fmt.Sprintf("Article %d", i), 2*time.Minute); err != nil {
			t.Fatal(err)
		}
		h.docs = append(h.docs, id)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	srvCh := make(chan *protocol.Server, 1)
	go func() {
		defer close(done)
		srv, _ := sys.Serve(l)
		srvCh <- srv
	}()
	t.Cleanup(func() {
		l.Close()
		if srv := <-srvCh; srv != nil {
			srv.Close()
		}
		<-done
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < nconns+1; i++ {
		c, err := sys.Dial(ctx, l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		if i == 0 {
			h.winddown = c
		} else {
			h.conns = append(h.conns, c)
		}
	}
	return h
}

func (h *overloadHarness) conn() *protocol.Client {
	return h.conns[int(h.rr.Add(1))%len(h.conns)]
}

func (h *overloadHarness) machines() []client.Machine {
	var out []client.Machine
	for i := 1; i <= 4; i++ {
		m, _ := h.sys.Client(fmt.Sprintf("client-%d", i))
		out = append(out, m)
	}
	return out
}

// probePeak measures closed-loop goodput (reserved sessions per second)
// with one worker per admission slot — the capacity the overload phase must
// stay within 20% of.
func (h *overloadHarness) probePeak(t *testing.T, dur time.Duration) float64 {
	t.Helper()
	// More workers than admission slots: the extra workers absorb the wire
	// round-trip latency so the admitted slots never idle; the surplus is
	// shed and retried, exactly as under open-loop overload.
	workers := 4 * runtime.GOMAXPROCS(0)
	if workers < 8 {
		workers = 8
	}
	var good atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	time.AfterFunc(dur, func() { close(stop) })
	machines := h.machines()
	u, err := h.sys.Profiles.Get("tv-quality")
	if err != nil {
		t.Fatal(err)
	}
	var rejects sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := h.conn()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				res, err := c.Negotiate(ctx, machines[w%len(machines)], h.docs[w%len(h.docs)], u)
				cancel()
				if err == nil && res.Status.Reserved() {
					good.Add(1)
					// Reject off the worker's critical path, as the open-loop
					// phase does, so the probe measures pure negotiation
					// capacity rather than negotiate+reject round trips.
					rejects.Add(1)
					go func() {
						defer rejects.Done()
						rctx, rcancel := context.WithTimeout(context.Background(), 10*time.Second)
						defer rcancel()
						h.winddown.Reject(rctx, res.Session)
					}()
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	rejects.Wait()
	peak := float64(good.Load()) / elapsed.Seconds()
	if peak <= 0 {
		t.Fatal("probe measured zero goodput")
	}
	return peak
}

// overloadTally accumulates the open-loop phase's outcomes.
type overloadTally struct {
	mu        sync.Mutex
	latencies []time.Duration // admitted (non-shed) request latencies
	good      uint64          // reserved sessions
	sheds     uint64          // wire busy replies + manager Shed results
	badHints  uint64          // sheds whose RetryAfter was not positive
	failures  uint64          // admitted but genuinely failed (fault weather etc.)
	errs      uint64          // unexpected transport errors
	dropped   uint64          // arrivals refused client-side at the outstanding cap
}

func (o *overloadTally) goodput(elapsed time.Duration) float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return float64(o.good) / elapsed.Seconds()
}

func (o *overloadTally) p99() time.Duration {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), o.latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(99*len(sorted)+99)/100-1]
}

// fire handles one open-loop arrival end to end.
func (h *overloadHarness) fire(req workload.Request, tally *overloadTally) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := h.conn()
	begin := time.Now()
	res, err := c.Negotiate(ctx, req.Client, req.Document, req.Profile)
	lat := time.Since(begin)
	reserved := err == nil && res.Status.Reserved()
	if reserved {
		// Wind the session down before recording: reject is confirm-class
		// traffic and must pass even under overload.
		h.winddown.Reject(ctx, res.Session)
	}
	tally.mu.Lock()
	defer tally.mu.Unlock()
	switch {
	case err != nil:
		var busy *protocol.ErrBusy
		if errors.As(err, &busy) {
			tally.sheds++
			if busy.RetryAfter <= 0 {
				tally.badHints++
			}
			return
		}
		tally.errs++
	case res.Shed:
		tally.sheds++
		if res.RetryAfter <= 0 {
			tally.badHints++
		}
	case reserved:
		tally.good++
		tally.latencies = append(tally.latencies, lat)
	default:
		tally.failures++
		tally.latencies = append(tally.latencies, lat)
	}
}

// runOpenLoop fires count arrivals at the given rate (arrivals per second)
// with the given shape, bounding client-side outstanding RPCs so a
// server-side stall shows up as drops rather than unbounded goroutine
// pile-up.
func (h *overloadHarness) runOpenLoop(t *testing.T, shape workload.Shape, rate float64, count int) *overloadTally {
	t.Helper()
	mean := time.Duration(float64(time.Second) / rate)
	if mean <= 0 {
		mean = time.Microsecond
	}
	ol, err := workload.NewOpenLoop(workload.OpenLoopSpec{
		Spec: workload.Spec{
			Seed:             1996,
			MeanInterArrival: mean,
			Documents:        h.docs,
			Clients:          h.machines(),
			Profiles:         profile.DefaultProfiles(),
		},
		Shape: shape,
	})
	if err != nil {
		t.Fatal(err)
	}
	tally := &overloadTally{}
	outstanding := make(chan struct{}, 8192)
	if err := ol.Run(context.Background(), count, func(req workload.Request) {
		select {
		case outstanding <- struct{}{}:
		default:
			tally.mu.Lock()
			tally.dropped++
			tally.mu.Unlock()
			return
		}
		defer func() { <-outstanding }()
		h.fire(req, tally)
	}); err != nil {
		t.Fatalf("open loop: %v", err)
	}
	return tally
}

// windDown rejects any session the load phase abandoned (a client-side
// timeout leaves the server-side reservation waiting out its choice
// period) so the ledger check sees final state, then asserts it is empty.
func (h *overloadHarness) windDown(t *testing.T) {
	t.Helper()
	// Sweep-and-recheck: a server-side negotiation whose client already
	// gave up can still be completing its reservation while we sweep, so
	// give stragglers a bounded window to surface before declaring a leak.
	deadline := time.Now().Add(10 * time.Second)
	for {
		for _, s := range h.sys.Manager.Sessions(core.Reserved) {
			h.sys.Manager.Reject(s.ID)
		}
		err := h.sys.Ledger.CheckEmpty()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("resource ledger not empty at wind-down: %v", err)
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// assertGraceful holds the tally to the graceful-degradation contract.
// minGoodput is the floor (sessions/s) the run's goodput must clear; pass 0
// to log goodput without asserting it (bursty shapes legitimately starve a
// co-located single-core generator mid-burst). Under the race detector the
// latency/goodput/error-budget assertions are skipped: race instrumentation
// slows the CPU-bound shed path ~10× while the (sleep-dominated) service
// rate barely drops, so the statistical contract is not meaningful there —
// the race build is for finding data races on these paths.
func assertGraceful(t *testing.T, tally *overloadTally, minGoodput float64, elapsed time.Duration, count int) {
	t.Helper()
	tally.mu.Lock()
	good, sheds, badHints, failures, errs, dropped :=
		tally.good, tally.sheds, tally.badHints, tally.failures, tally.errs, tally.dropped
	admitted := len(tally.latencies)
	tally.mu.Unlock()
	goodput := float64(good) / elapsed.Seconds()
	p99 := tally.p99()
	t.Logf("arrivals %d over %v: good %d (%.0f/s), sheds %d, failures %d, errs %d, dropped %d, admitted p99 %v",
		count, elapsed.Round(time.Millisecond), good, goodput, sheds, failures, errs, dropped, p99)

	if sheds == 0 {
		t.Error("10× overload produced no sheds: the open loop is not overloading or the controller is inert")
	}
	if badHints > 0 {
		t.Errorf("%d sheds carried a non-positive RetryAfter", badHints)
	}
	if admitted == 0 {
		t.Fatal("no request was ever admitted")
	}
	if p99 > overloadSLO && !raceDetectorOn {
		t.Errorf("admitted-request p99 %v breaches the %v SLO under overload", p99, overloadSLO)
	}
	if minGoodput > 0 && goodput < minGoodput && !raceDetectorOn {
		t.Errorf("goodput %.0f/s collapsed below the %.0f/s floor (80%% of reference goodput)", goodput, minGoodput)
	}
	if errs > uint64(count/100) && !raceDetectorOn {
		t.Errorf("%d unexpected transport errors (over 1%% of arrivals)", errs)
	}
	if dropped > uint64(count/5) {
		t.Errorf("%d arrivals dropped at the client-side outstanding cap — the server is stalling instead of shedding", dropped)
	}
}

// TestOverloadGracefulDegradation is the tentpole proof: ≥100k open-loop
// sessions (20k with -short) through the real manager+wire stack at 10×
// the probed service rate, under heavy-tailed popularity and fault
// weather. The system must shed — with usable RetryAfter hints — while
// holding admitted-request p99 within the declared SLO, keeping goodput
// within 20% of the goodput-vs-load curve's top, and leaking nothing.
func TestOverloadGracefulDegradation(t *testing.T) {
	count, probeDur := 100_000, time.Second
	if testing.Short() {
		count, probeDur = 20_000, 500*time.Millisecond
	}
	if raceDetectorOn {
		count, probeDur = 10_000, 500*time.Millisecond
	}
	h := newOverloadHarness(t, 8)
	// Fault weather for the whole run (probe included, so every phase
	// faces the same conditions).
	h.inj.SetReserveFailure(0.02)

	peak := h.probePeak(t, probeDur)
	t.Logf("closed-loop probe: %.0f sessions/s", peak)

	// Reference goodput at 2× the probed rate: just past saturation, where
	// the goodput-vs-load curve tops out. Measured through the same
	// open-loop generator as the overload phase, so the generator's own
	// (co-located) cost is on both sides of the comparison.
	begin := time.Now()
	base := h.runOpenLoop(t, workload.Poisson, 2*peak, count/25)
	refGoodput := base.goodput(time.Since(begin))
	t.Logf("reference goodput at 2×: %.0f sessions/s", refGoodput)

	begin = time.Now()
	tally := h.runOpenLoop(t, workload.Poisson, 10*peak, count)
	assertGraceful(t, tally, 0.8*refGoodput, time.Since(begin), count)

	h.windDown(t)
	st := h.ctrl.Stats()
	if st.InFlight != 0 {
		t.Errorf("controller reports %d in-flight after wind-down", st.InFlight)
	}
	mst := h.sys.Manager.Stats()
	if mst.AdmissionSheds == 0 {
		t.Log("note: every shed happened at the wire; manager gate untouched")
	}
}

// TestOverloadShedBurst is the CI gate: a short bursty 10× overload must
// shed (with hints) while the admitted p99 holds. Kept small enough for
// scripts/check.sh under -race. No goodput floor: inside a burst the
// offered rate is BurstFactor× the (already 10×) mean, and on small
// machines the co-located generator starves the server mid-burst — the
// contract here is that latency and hints hold, not throughput.
func TestOverloadShedBurst(t *testing.T) {
	count, probeDur := 30_000, 500*time.Millisecond
	if testing.Short() {
		count, probeDur = 8_000, 300*time.Millisecond
	}
	if raceDetectorOn {
		count, probeDur = 5_000, 300*time.Millisecond
	}
	h := newOverloadHarness(t, 4)
	peak := h.probePeak(t, probeDur)
	begin := time.Now()
	tally := h.runOpenLoop(t, workload.Bursty, 10*peak, count)
	assertGraceful(t, tally, 0, time.Since(begin), count)
	h.windDown(t)
}

// TestOverloadShardedFleet runs the open-loop overload harness against a
// 4-shard manager fleet with the admission decision at the shard router: a
// bursty 10× overload must shed with usable hints while the admitted p99
// holds, exactly as on the single manager — and afterward every shard drains
// to zero live sessions and the shared ledger balances.
func TestOverloadShardedFleet(t *testing.T) {
	count, probeDur := 30_000, 500*time.Millisecond
	if testing.Short() {
		count, probeDur = 8_000, 300*time.Millisecond
	}
	if raceDetectorOn {
		count, probeDur = 5_000, 300*time.Millisecond
	}
	h := newOverloadHarness(t, 4, WithShards(4))
	if h.sys.Fleet == nil {
		t.Fatal("WithShards(4) built no fleet")
	}
	peak := h.probePeak(t, probeDur)
	begin := time.Now()
	tally := h.runOpenLoop(t, workload.Bursty, 10*peak, count)
	assertGraceful(t, tally, 0, time.Since(begin), count)
	h.windDown(t)
	for _, row := range h.sys.Fleet.ShardStats() {
		if row.Sessions != 0 {
			t.Errorf("shard %d still holds %d live sessions after wind-down", row.Shard, row.Sessions)
		}
	}
	// The router gate is the only manager-side gate: any manager-level shed
	// must appear in the fleet's aggregate counters (wire-level sheds are
	// counted separately by the protocol server).
	st := h.sys.Manager.Stats()
	t.Logf("fleet: %d requests, %d router sheds", st.Requests, st.AdmissionSheds)
}

// TestServeThreadsAdmission pins the facade plumbing: a saturated
// controller installed with WithAdmission reaches System.Serve's protocol
// server and sheds at the wire with a typed busy error.
func TestServeThreadsAdmission(t *testing.T) {
	ctrl := admission.New(admission.Config{MaxInFlight: 1, MinInFlight: 1})
	rel, _, ok := ctrl.Admit()
	if !ok {
		t.Fatal("could not pin controller")
	}
	defer rel()
	sys, err := New(WithClients(1), WithServers(2), WithAdmission(ctrl))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddNewsArticle("news-1", "Election night", time.Minute); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	srvCh := make(chan *protocol.Server, 1)
	go func() {
		defer close(done)
		srv, _ := sys.Serve(l)
		srvCh <- srv
	}()
	defer func() {
		l.Close()
		if srv := <-srvCh; srv != nil {
			srv.Close()
		}
		<-done
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := sys.Dial(ctx, l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mach, err := sys.Client("client-1")
	if err != nil {
		t.Fatal(err)
	}
	u, err := sys.Profiles.Get("tv-quality")
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Negotiate(ctx, mach, "news-1", u)
	var busy *protocol.ErrBusy
	if !errors.As(err, &busy) {
		t.Fatalf("negotiate against saturated system: err = %v, want *ErrBusy", err)
	}
	if busy.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", busy.RetryAfter)
	}
}
