// Package qosneg is a Go reproduction of "A Quality of Service Negotiation
// Procedure for Distributed Multimedia Presentational Applications" (Hafid,
// v. Bochmann, Kerhervé; HPDC-5, 1996): a QoS manager that negotiates an
// optimal system configuration — which variant of each monomedia component
// of a multimedia document to deliver, from which server, over which
// network path — against a user profile of desired QoS, worst-acceptable
// QoS, cost bounds and importance factors, and that automatically adapts
// running sessions when servers or network links degrade.
//
// The package is a facade over the substrate packages (see DESIGN.md for
// the full inventory): a metadata registry, continuous-media file servers
// with disk-round admission control, a reservation-capable network, the
// transport system, client machine models, the offer classification
// machinery of the paper's Section 5, the six-step negotiation procedure of
// Section 4 run on a parallel streaming pipeline, the adaptation monitor, a
// playout driver on a discrete-event engine, a TCP wire protocol, and the
// profile manager's window flow.
//
// Quickstart:
//
//	sys, _ := qosneg.New(qosneg.WithClients(1), qosneg.WithServers(2))
//	doc, _ := sys.AddNewsArticle("news-1", "Election night", 3*time.Minute)
//	res, _ := sys.Negotiate(ctx, "client-1", doc.ID, "tv-quality")
//	if res.Status.Reserved() {
//		sys.Manager.Confirm(res.Session.ID)
//	}
//
// # Errors
//
// The facade reports failures through typed sentinels so callers can branch
// with errors.Is / errors.As rather than matching message text:
//
//   - [ErrClientNotFound]: a client id is not part of the assembled system.
//   - [ErrProfileNotFound]: a named profile is not in the profile store.
//   - [ErrSessionNotFound]: a session id names no live or past session.
//   - [ErrChoicePeriodExpired]: the session's choice period elapsed before
//     the operation; its resources are already released.
//   - [ErrTooManyOffers]: the document's variant product exceeds the
//     enumeration bound (core.Options.MaxOffers).
//
// A negotiation whose monomedia cannot be decoded at all does not error: it
// returns a Result with status FAILEDWITHOUTOFFER, as in the paper.
// Canceled negotiations return the context's error (context.Canceled or
// context.DeadlineExceeded) with all partially committed resources
// released.
package qosneg

import (
	"context"
	"fmt"
	"net"
	"time"

	"qosneg/internal/adaptation"
	"qosneg/internal/admission"
	"qosneg/internal/client"
	"qosneg/internal/cmfs"
	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/faults"
	"qosneg/internal/ledger"
	"qosneg/internal/media"
	"qosneg/internal/network"
	"qosneg/internal/profile"
	"qosneg/internal/protocol"
	"qosneg/internal/qos"
	"qosneg/internal/registry"
	"qosneg/internal/session"
	"qosneg/internal/shard"
	"qosneg/internal/sim"
	"qosneg/internal/telemetry"
	"qosneg/internal/testbed"
	"qosneg/internal/transport"
)

// config collects the option values; the zero value builds a two-client,
// two-server star-topology system with the default disk model, link
// capacities, cost tables and QoS-manager options.
type config struct {
	spec        testbed.Spec
	opts        core.Options
	optsSet     bool
	concurrency int
	topK        int
	offerCache  *int
	health      *core.HealthPolicy
	retry       protocol.RetryPolicy
	wire        protocol.WireOptions
	metrics     *telemetry.Registry
	tracer      telemetry.Tracer
	admission   *admission.Controller
	selection   core.SelectionPolicy
	adaptation  core.AdaptationPolicy
}

// Option configures New; the With* constructors build them.
type Option func(*config)

// WithClients sets the number of client workstations (client-1..N).
func WithClients(n int) Option {
	return func(c *config) { c.spec.Clients = n }
}

// WithServers sets the number of CMFS servers (server-1..M).
func WithServers(n int) Option {
	return func(c *config) { c.spec.Servers = n }
}

// WithServerConfig overrides the CMFS disk model.
func WithServerConfig(cfg cmfs.Config) Option {
	return func(c *config) { c.spec.ServerConfig = &cfg }
}

// WithAccessCapacity overrides the star topology's access-link capacity.
func WithAccessCapacity(r qos.BitRate) Option {
	return func(c *config) { c.spec.AccessCapacity = r }
}

// WithBackboneCapacity overrides the star topology's backbone capacity.
func WithBackboneCapacity(r qos.BitRate) Option {
	return func(c *config) { c.spec.BackboneCapacity = r }
}

// WithOptions replaces the QoS manager options wholesale (classifier,
// choice period, enumeration bound, path alternates). Later WithConcurrency
// still applies on top.
func WithOptions(o core.Options) Option {
	return func(c *config) { c.opts, c.optsSet = o, true }
}

// WithPricing overrides the default cost tables (see cost.LoadPricing).
func WithPricing(p cost.Pricing) Option {
	return func(c *config) { c.spec.Pricing = &p }
}

// WithConcurrency bounds the negotiation pipeline's worker pool; 0 (the
// default) selects GOMAXPROCS.
func WithConcurrency(n int) Option {
	return func(c *config) { c.concurrency = n }
}

// WithTopK bounds how many classified offers each negotiation keeps for
// commitment and adaptation; 0 selects core.DefaultTopK, negative keeps
// the full classified set.
func WithTopK(k int) Option {
	return func(c *config) { c.topK = k }
}

// WithOfferCache sizes the candidate-set cache memoizing the static half of
// the negotiation procedure (step-2 variant filtering, the §6 QoS mapping
// and the §7 per-variant pricing) across negotiations: repeat requests for
// the same document from the same machine class skip straight to
// classification. The cache is on by default (size 0 selects
// offercache.DefaultSize); pass a negative size to disable it. Hits are
// provably coherent — registry mutations, pricing swaps and breaker
// transitions all invalidate — so outcomes are identical with the cache on
// or off. It applies on top of WithOptions.
func WithOfferCache(size int) Option {
	return func(c *config) { c.offerCache = &size }
}

// WithHealthPolicy enables the QoS manager's per-server circuit breaker:
// consecutive commit failures quarantine a server for a cooldown, and
// FAILEDTRYLATER results carry the policy's RetryAfter hint. It applies on
// top of WithOptions.
func WithHealthPolicy(p core.HealthPolicy) Option {
	return func(c *config) { c.health = &p }
}

// WithRetryPolicy sets the redial/backoff policy used by clients the
// system dials (see System.Dial); the zero value selects
// protocol.DefaultRetryPolicy.
func WithRetryPolicy(p protocol.RetryPolicy) Option {
	return func(c *config) { c.retry = p }
}

// WithWire sets the wire-codec negotiation options used by both Serve and
// Dial: the codec preference list and the per-connection stream cap of the
// multiplexed binary codec. The zero value offers binary with a JSON
// fallback (see protocol.WireOptions).
func WithWire(w protocol.WireOptions) Option {
	return func(c *config) { c.wire = w }
}

// WithMetrics instruments the whole system with the given telemetry
// registry: the QoS manager records negotiation outcome counters and
// per-step latency histograms, every CMFS server and the network record
// admission decisions, and servers/clients built by Serve and Dial record
// per-RPC latency. A nil registry (telemetry.Noop) leaves the hot paths
// free of telemetry work. It applies on top of WithOptions.
func WithMetrics(reg *telemetry.Registry) Option {
	return func(c *config) { c.metrics = reg }
}

// WithTracer installs a structured span tracer on the QoS manager (and on
// clients built by Dial): every negotiation step, skip, quarantine and
// redial emits a typed telemetry.Event. It supersedes the string-based
// core.Options.Trace callback, which remains supported; both may be
// installed. It applies on top of WithOptions.
func WithTracer(tr telemetry.Tracer) Option {
	return func(c *config) { c.tracer = tr }
}

// WithAdmission installs an SLO-driven admission controller on the system:
// the QoS manager sheds negotiation requests with FAILEDTRYLATER (and a
// load-derived RetryAfter hint) when the controller reports overload, and
// servers built by Serve refuse negotiation-class RPCs with a typed busy
// reply before any reservation work. New wires the controller's occupancy
// signal to the system's resource ledger and, when WithMetrics is also set,
// instruments it. A nil controller disables admission control (the
// default): the gates are then a single nil check — the zero-overhead path.
func WithAdmission(c *admission.Controller) Option {
	return func(cfg *config) { cfg.admission = c }
}

// WithShards fronts the system with a sharded manager fleet of n independent
// manager shards behind consistent-hash session routing (see internal/shard
// and DESIGN.md §14): new negotiations are placed round-robin, session
// operations route by session id, the document catalog and pricing replicate
// to every shard with generation stamps, and breaker evidence propagates
// fleet-wide over the update bus. System.Fleet holds the fleet handle;
// System.Manager remains the single surface callers use. With an admission
// controller (WithAdmission) the gate moves to the fleet router, so a
// request is admitted once, before routing. WithShards(0) — the default —
// keeps the classic single manager; WithShards(1) builds a one-shard fleet,
// which behaves identically to an unsharded system (same session ids, same
// outcomes) while exercising the routing layer.
func WithShards(n int) Option {
	return func(c *config) { c.spec.Shards = n }
}

// WithSelectionPolicy installs a selection policy on the QoS manager (see
// internal/policy and DESIGN.md §15): step 5's commitment attempts among
// offers the classifier ranked equal — same status, same OIF — are ordered
// by the policy instead of the fixed cost-then-key tie-break. Policies that
// implement core.PolicyObserver learn online from every commit outcome; on
// a sharded system (WithShards) a core.PolicyForker splits into per-shard
// instances that exchange learned state over the update bus. Nil — the
// default — keeps the paper's fixed order byte-for-byte. It applies on top
// of WithOptions.
func WithSelectionPolicy(p core.SelectionPolicy) Option {
	return func(c *config) { c.selection = p }
}

// WithAdaptationPolicy is WithSelectionPolicy's counterpart for the
// adaptation procedure's target order. The same object may serve both
// roles; the manager then feeds it observations once.
func WithAdaptationPolicy(p core.AdaptationPolicy) Option {
	return func(c *config) { c.adaptation = p }
}

// WithFaultInjector wraps every CMFS server and the transport system with
// the given fault injector before they are registered with the manager, so
// crashes, probabilistic failures and latency can be driven at runtime
// (System.Faults keeps the handle).
func WithFaultInjector(inj *faults.Injector) Option {
	return func(c *config) { c.spec.Faults = inj }
}

// System is an assembled news-on-demand prototype: every component wired
// together, plus a profile store pre-loaded with the factory profiles.
type System struct {
	Registry *registry.Registry
	Network  *network.Network
	Transit  *transport.System
	Manager  core.SessionManager
	// Fleet is the sharded manager fleet behind Manager when WithShards was
	// used, nil for a single-manager system.
	Fleet    *shard.Fleet
	Servers  map[media.ServerID]*cmfs.Server
	Clients  map[client.MachineID]client.Machine
	Profiles *profile.Store
	Pricing  cost.Pricing
	// Faults is the injector installed by WithFaultInjector, nil
	// otherwise.
	Faults *faults.Injector
	// Ledger is the resource ledger double-checking every CMFS
	// reservation, network reservation and transport connection the system
	// makes; Ledger.CheckEmpty after winding all sessions down proves
	// nothing leaked (see DESIGN.md, "Session lifecycle").
	Ledger *ledger.Ledger
	// Retry is the redial/backoff policy System.Dial hands to clients.
	Retry protocol.RetryPolicy
	// Wire is the codec negotiation configuration (WithWire) Serve and
	// Dial hand to the protocol layer.
	Wire protocol.WireOptions
	// Metrics is the telemetry registry installed by WithMetrics, nil
	// otherwise. Serve and Dial instrument the wire layer with it.
	Metrics *telemetry.Registry
	// Tracer is the span tracer installed by WithTracer, nil otherwise.
	Tracer telemetry.Tracer
	// Admission is the controller installed by WithAdmission, nil
	// otherwise; Serve threads it into the protocol server's shed path.
	Admission *admission.Controller
}

// New assembles a system from the options; with none it builds the default
// two-client, two-server star topology.
func New(options ...Option) (*System, error) {
	var cfg config
	for _, o := range options {
		o(&cfg)
	}
	opts := core.DefaultOptions()
	if cfg.optsSet {
		opts = cfg.opts
	}
	if cfg.concurrency != 0 {
		opts.Concurrency = cfg.concurrency
	}
	if cfg.topK != 0 {
		opts.TopK = cfg.topK
	}
	if cfg.offerCache != nil {
		opts.OfferCache = *cfg.offerCache
	}
	if cfg.health != nil {
		opts.Health = *cfg.health
	}
	if cfg.metrics != nil {
		opts.Metrics = cfg.metrics
	}
	if cfg.tracer != nil {
		opts.Tracer = cfg.tracer
	}
	if cfg.admission != nil {
		opts.Admission = cfg.admission
	}
	if cfg.selection != nil {
		opts.Selection = cfg.selection
	}
	if cfg.adaptation != nil {
		opts.Adaptation = cfg.adaptation
	}
	cfg.spec.Options = &opts
	bed, err := testbed.New(cfg.spec)
	if err != nil {
		return nil, err
	}
	if cfg.admission != nil {
		cfg.admission.SetOccupancy(bed.Ledger.Open)
		if cfg.metrics != nil {
			cfg.admission.Instrument(cfg.metrics)
		}
	}
	if cfg.metrics != nil {
		for _, srv := range bed.Servers {
			srv.Instrument(cfg.metrics)
		}
		bed.Network.Instrument(cfg.metrics)
		bed.Ledger.Instrument(cfg.metrics)
	}
	store := profile.NewStore()
	for _, p := range profile.DefaultProfiles() {
		if err := store.Save(p); err != nil {
			return nil, err
		}
	}
	return &System{
		Registry:  bed.Registry,
		Network:   bed.Network,
		Transit:   bed.Transit,
		Manager:   bed.Manager,
		Fleet:     bed.Fleet,
		Servers:   bed.Servers,
		Clients:   bed.Clients,
		Profiles:  store,
		Pricing:   bed.Pricing,
		Faults:    bed.Faults,
		Ledger:    bed.Ledger,
		Retry:     cfg.retry,
		Wire:      cfg.wire,
		Metrics:   cfg.metrics,
		Tracer:    cfg.tracer,
		Admission: cfg.admission,
	}, nil
}

// AddNewsArticle builds and registers a standard multi-variant news article
// spread across the system's servers.
func (s *System) AddNewsArticle(id media.DocumentID, title string, duration time.Duration) (media.Document, error) {
	doc := media.BuildNewsArticle(media.NewsArticleSpec{
		ID:       id,
		Title:    title,
		Duration: duration,
		Servers:  s.serverIDs(),
		VideoQualities: []qos.VideoQoS{
			{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			{Color: qos.Color, FrameRate: 15, Resolution: qos.TVResolution},
			{Color: qos.Grey, FrameRate: 25, Resolution: qos.TVResolution},
			{Color: qos.BlackWhite, FrameRate: 15, Resolution: qos.TVResolution},
		},
		AudioQualities: []qos.AudioQoS{
			{Grade: qos.CDQuality, Language: qos.English},
			{Grade: qos.TelephoneQuality, Language: qos.English},
		},
		Languages:    []qos.Language{qos.English, qos.French},
		CopyrightFee: 500,
	})
	if err := s.Registry.Add(doc); err != nil {
		return media.Document{}, err
	}
	return doc, nil
}

// AddDocument registers an arbitrary document.
func (s *System) AddDocument(d media.Document) error { return s.Registry.Add(d) }

func (s *System) serverIDs() []media.ServerID {
	out := make([]media.ServerID, 0, len(s.Servers))
	for i := 1; ; i++ {
		id := media.ServerID(fmt.Sprintf("server-%d", i))
		if _, ok := s.Servers[id]; !ok {
			break
		}
		out = append(out, id)
	}
	return out
}

// Client returns the machine with the given id, or an error wrapping
// ErrClientNotFound.
func (s *System) Client(id string) (client.Machine, error) {
	m, ok := s.Clients[client.MachineID(id)]
	if !ok {
		return client.Machine{}, fmt.Errorf("%w: %q", ErrClientNotFound, id)
	}
	return m, nil
}

// Negotiate runs the negotiation procedure for a named client and a named
// stored profile, bounded by ctx.
func (s *System) Negotiate(ctx context.Context, clientID string, doc media.DocumentID, profileName string) (core.Result, error) {
	mach, err := s.Client(clientID)
	if err != nil {
		return core.Result{}, err
	}
	u, err := s.Profiles.Get(profileName)
	if err != nil {
		return core.Result{}, err
	}
	return s.Manager.NegotiateContext(ctx, mach, doc, u)
}

// NegotiateWith runs the negotiation procedure with an explicit machine and
// profile, bounded by ctx.
func (s *System) NegotiateWith(ctx context.Context, mach client.Machine, doc media.DocumentID, u profile.UserProfile) (core.Result, error) {
	return s.Manager.NegotiateContext(ctx, mach, doc, u)
}

// Monitor builds the adaptation monitor over the system's substrate.
func (s *System) Monitor() *adaptation.Monitor {
	servers := make([]*cmfs.Server, 0, len(s.Servers))
	for _, id := range s.serverIDs() {
		servers = append(servers, s.Servers[id])
	}
	return adaptation.New(s.Manager, s.Network, servers...)
}

// Player builds a playout driver on the given simulation engine.
func (s *System) Player(eng *sim.Engine) *session.Player {
	return session.NewPlayer(eng, s.Manager)
}

// Serve exposes the system's QoS manager over the wire protocol on l; it
// blocks until l is closed. The returned server's Close stops handlers.
func (s *System) Serve(l net.Listener) (*protocol.Server, error) {
	srv := protocol.NewServer(s.Manager, s.Registry,
		protocol.WithServerWire(s.Wire), protocol.WithServerAdmission(s.Admission))
	srv.Instrument(s.Metrics)
	return srv, srv.Serve(l)
}

// Dial connects a self-healing protocol client to a negotiation daemon
// using the system's retry policy (WithRetryPolicy).
func (s *System) Dial(ctx context.Context, addr string) (*protocol.Client, error) {
	c, err := protocol.DialRetry(ctx, addr, s.Retry, protocol.WithWire(s.Wire))
	if err != nil {
		return nil, err
	}
	if s.Metrics != nil || s.Tracer != nil {
		c.Instrument(s.Metrics, s.Tracer)
	}
	return c, nil
}
