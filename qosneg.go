// Package qosneg is a Go reproduction of "A Quality of Service Negotiation
// Procedure for Distributed Multimedia Presentational Applications" (Hafid,
// v. Bochmann, Kerhervé; HPDC-5, 1996): a QoS manager that negotiates an
// optimal system configuration — which variant of each monomedia component
// of a multimedia document to deliver, from which server, over which
// network path — against a user profile of desired QoS, worst-acceptable
// QoS, cost bounds and importance factors, and that automatically adapts
// running sessions when servers or network links degrade.
//
// The package is a facade over the substrate packages (see DESIGN.md for
// the full inventory): a metadata registry, continuous-media file servers
// with disk-round admission control, a reservation-capable network, the
// transport system, client machine models, the offer classification
// machinery of the paper's Section 5, the six-step negotiation procedure of
// Section 4, the adaptation monitor, a playout driver on a discrete-event
// engine, a TCP wire protocol, and the profile manager's window flow.
//
// Quickstart:
//
//	sys, _ := qosneg.New(qosneg.Config{Clients: 1, Servers: 2})
//	doc, _ := sys.AddNewsArticle("news-1", "Election night", 3*time.Minute)
//	res, _ := sys.Negotiate("client-1", doc.ID, "tv-quality")
//	if res.Status.Reserved() {
//		sys.Manager.Confirm(res.Session.ID)
//	}
package qosneg

import (
	"fmt"
	"net"
	"time"

	"qosneg/internal/adaptation"
	"qosneg/internal/client"
	"qosneg/internal/cmfs"
	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/network"
	"qosneg/internal/profile"
	"qosneg/internal/protocol"
	"qosneg/internal/qos"
	"qosneg/internal/registry"
	"qosneg/internal/session"
	"qosneg/internal/sim"
	"qosneg/internal/testbed"
	"qosneg/internal/transport"
)

// Config parameterizes New. The zero value builds a two-client, two-server
// star-topology system with the default disk model, link capacities, cost
// tables and QoS-manager options.
type Config struct {
	// Clients is the number of client workstations (client-1..N).
	Clients int
	// Servers is the number of CMFS servers (server-1..M).
	Servers int
	// ServerConfig overrides the CMFS disk model.
	ServerConfig *cmfs.Config
	// AccessCapacity and BackboneCapacity override the star topology's
	// link capacities.
	AccessCapacity   qos.BitRate
	BackboneCapacity qos.BitRate
	// Options overrides the QoS manager options (classifier, choice
	// period, path alternates).
	Options *core.Options
	// Pricing overrides the default cost tables (see cost.LoadPricing).
	Pricing *cost.Pricing
}

// System is an assembled news-on-demand prototype: every component wired
// together, plus a profile store pre-loaded with the factory profiles.
type System struct {
	Registry *registry.Registry
	Network  *network.Network
	Transit  *transport.System
	Manager  *core.Manager
	Servers  map[media.ServerID]*cmfs.Server
	Clients  map[client.MachineID]client.Machine
	Profiles *profile.Store
	Pricing  cost.Pricing
}

// New assembles a system from the configuration.
func New(cfg Config) (*System, error) {
	bed, err := testbed.New(testbed.Spec{
		Clients:          cfg.Clients,
		Servers:          cfg.Servers,
		ServerConfig:     cfg.ServerConfig,
		AccessCapacity:   cfg.AccessCapacity,
		BackboneCapacity: cfg.BackboneCapacity,
		Options:          cfg.Options,
		Pricing:          cfg.Pricing,
	})
	if err != nil {
		return nil, err
	}
	store := profile.NewStore()
	for _, p := range profile.DefaultProfiles() {
		if err := store.Save(p); err != nil {
			return nil, err
		}
	}
	return &System{
		Registry: bed.Registry,
		Network:  bed.Network,
		Transit:  bed.Transit,
		Manager:  bed.Manager,
		Servers:  bed.Servers,
		Clients:  bed.Clients,
		Profiles: store,
		Pricing:  bed.Pricing,
	}, nil
}

// AddNewsArticle builds and registers a standard multi-variant news article
// spread across the system's servers.
func (s *System) AddNewsArticle(id media.DocumentID, title string, duration time.Duration) (media.Document, error) {
	doc := media.BuildNewsArticle(media.NewsArticleSpec{
		ID:       id,
		Title:    title,
		Duration: duration,
		Servers:  s.serverIDs(),
		VideoQualities: []qos.VideoQoS{
			{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			{Color: qos.Color, FrameRate: 15, Resolution: qos.TVResolution},
			{Color: qos.Grey, FrameRate: 25, Resolution: qos.TVResolution},
			{Color: qos.BlackWhite, FrameRate: 15, Resolution: qos.TVResolution},
		},
		AudioQualities: []qos.AudioQoS{
			{Grade: qos.CDQuality, Language: qos.English},
			{Grade: qos.TelephoneQuality, Language: qos.English},
		},
		Languages:    []qos.Language{qos.English, qos.French},
		CopyrightFee: 500,
	})
	if err := s.Registry.Add(doc); err != nil {
		return media.Document{}, err
	}
	return doc, nil
}

// AddDocument registers an arbitrary document.
func (s *System) AddDocument(d media.Document) error { return s.Registry.Add(d) }

func (s *System) serverIDs() []media.ServerID {
	out := make([]media.ServerID, 0, len(s.Servers))
	for i := 1; ; i++ {
		id := media.ServerID(fmt.Sprintf("server-%d", i))
		if _, ok := s.Servers[id]; !ok {
			break
		}
		out = append(out, id)
	}
	return out
}

// Client returns the machine with the given id.
func (s *System) Client(id string) (client.Machine, error) {
	m, ok := s.Clients[client.MachineID(id)]
	if !ok {
		return client.Machine{}, fmt.Errorf("qosneg: unknown client %q", id)
	}
	return m, nil
}

// Negotiate runs the negotiation procedure for a named client and a named
// stored profile.
func (s *System) Negotiate(clientID string, doc media.DocumentID, profileName string) (core.Result, error) {
	mach, err := s.Client(clientID)
	if err != nil {
		return core.Result{}, err
	}
	u, err := s.Profiles.Get(profileName)
	if err != nil {
		return core.Result{}, err
	}
	return s.Manager.Negotiate(mach, doc, u)
}

// NegotiateWith runs the negotiation procedure with an explicit machine and
// profile.
func (s *System) NegotiateWith(mach client.Machine, doc media.DocumentID, u profile.UserProfile) (core.Result, error) {
	return s.Manager.Negotiate(mach, doc, u)
}

// Monitor builds the adaptation monitor over the system's substrate.
func (s *System) Monitor() *adaptation.Monitor {
	servers := make([]*cmfs.Server, 0, len(s.Servers))
	for _, id := range s.serverIDs() {
		servers = append(servers, s.Servers[id])
	}
	return adaptation.New(s.Manager, s.Network, servers...)
}

// Player builds a playout driver on the given simulation engine.
func (s *System) Player(eng *sim.Engine) *session.Player {
	return session.NewPlayer(eng, s.Manager)
}

// Serve exposes the system's QoS manager over the wire protocol on l; it
// blocks until l is closed. The returned server's Close stops handlers.
func (s *System) Serve(l net.Listener) (*protocol.Server, error) {
	srv := protocol.NewServer(s.Manager, s.Registry)
	return srv, srv.Serve(l)
}
