//go:build race

package qosneg

// raceDetectorOn scales the overload harness down under -race: the race
// detector is after data races on the shed paths, not open-loop statistics,
// and the full 100k-arrival run would take minutes at race-instrumented
// speed.
const raceDetectorOn = true
