package qosneg_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"qosneg"
	"qosneg/internal/core"
)

// TestErrorContract exercises every typed sentinel the package comment
// documents, end-to-end through the facade.
func TestErrorContract(t *testing.T) {
	sys, err := qosneg.New(qosneg.WithClients(1), qosneg.WithServers(2))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := sys.AddNewsArticle("news-1", "Election night", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, err := sys.Negotiate(ctx, "ghost", doc.ID, "tv-quality"); !errors.Is(err, qosneg.ErrClientNotFound) {
		t.Errorf("unknown client: %v, want ErrClientNotFound", err)
	}
	if _, err := sys.Negotiate(ctx, "client-1", doc.ID, "ghost"); !errors.Is(err, qosneg.ErrProfileNotFound) {
		t.Errorf("unknown profile: %v, want ErrProfileNotFound", err)
	}
	if err := sys.Manager.Confirm(9999); !errors.Is(err, qosneg.ErrSessionNotFound) {
		t.Errorf("unknown session: %v, want ErrSessionNotFound", err)
	}

	res, err := sys.Negotiate(ctx, "client-1", doc.ID, "tv-quality")
	if err != nil || res.Session == nil {
		t.Fatalf("negotiation failed: %v %v", res.Status, err)
	}
	if err := sys.Manager.Expire(res.Session.ID); err != nil {
		t.Fatal(err)
	}
	if err := sys.Manager.Confirm(res.Session.ID); !errors.Is(err, qosneg.ErrChoicePeriodExpired) {
		t.Errorf("confirm after expiry: %v, want ErrChoicePeriodExpired", err)
	}

	// A one-offer enumeration bound trips ErrTooManyOffers on the same
	// multi-variant document.
	opts := core.DefaultOptions()
	opts.MaxOffers = 1
	tight, err := qosneg.New(qosneg.WithClients(1), qosneg.WithServers(2), qosneg.WithOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tight.AddNewsArticle("news-1", "Election night", time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := tight.Negotiate(ctx, "client-1", "news-1", "tv-quality"); !errors.Is(err, qosneg.ErrTooManyOffers) {
		t.Errorf("tight MaxOffers: %v, want ErrTooManyOffers", err)
	}
}
