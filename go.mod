module qosneg

go 1.22
