package qosneg

import (
	"context"
	"testing"
	"time"

	"qosneg/internal/core"
	"qosneg/internal/faults"
	"qosneg/internal/protocol"
)

// TestSystemFaultInjectionFailover wires the fault injector through the
// facade: with one replica crashed, negotiation succeeds on the survivor
// and the crashed server is quarantined.
func TestSystemFaultInjectionFailover(t *testing.T) {
	inj := faults.New(11)
	sys, err := New(
		WithClients(1),
		WithServers(2),
		WithFaultInjector(inj),
		WithHealthPolicy(core.HealthPolicy{FailureThreshold: 2, Cooldown: time.Minute}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Faults != inj {
		t.Fatal("System.Faults not populated")
	}
	doc, err := sys.AddNewsArticle("news-1", "Election night", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !inj.Crash("server-1") {
		t.Fatal("server-1 not wrapped by the injector")
	}
	res, err := sys.Negotiate(context.Background(), "client-1", doc.ID, "tv-quality")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Status.Reserved() {
		t.Fatalf("status = %v (%s); want failover onto server-2", res.Status, res.Reason)
	}
	if _, ok := sys.Manager.Quarantined("server-1"); !ok {
		t.Error("crashed server not quarantined")
	}
	sys.Manager.Reject(res.Session.ID)
}

// TestSystemRetryPolicyDial: WithRetryPolicy flows into System.Dial's
// self-healing clients.
func TestSystemRetryPolicyDial(t *testing.T) {
	policy := protocol.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Jitter: 0.1}
	sys, err := New(WithClients(1), WithRetryPolicy(policy))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Retry != policy {
		t.Fatalf("System.Retry = %+v", sys.Retry)
	}
	if _, err := sys.Dial(context.Background(), "127.0.0.1:1"); err == nil {
		t.Fatal("Dial to a dead address succeeded")
	}
}
