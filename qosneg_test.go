package qosneg

import (
	"context"
	"net"
	"testing"
	"time"

	"qosneg/internal/core"
	"qosneg/internal/protocol"
	"qosneg/internal/qos"
	"qosneg/internal/session"
	"qosneg/internal/sim"
)

func TestSystemNegotiatePlayComplete(t *testing.T) {
	sys, err := New(WithClients(1), WithServers(2))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := sys.AddNewsArticle("news-1", "Election night", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Negotiate(context.Background(), "client-1", doc.ID, "tv-quality")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.Succeeded {
		t.Fatalf("status = %v (%s)", res.Status, res.Reason)
	}
	eng := sim.NewEngine()
	sys.Monitor().Attach(eng, 5*time.Second, nil)
	var out *session.Outcome
	if err := sys.Player(eng).Play(res.Session, doc, func(o session.Outcome) { out = &o }); err != nil {
		t.Fatal(err)
	}
	eng.Run(10 * time.Minute)
	if out == nil || out.State != core.Completed {
		t.Fatalf("outcome = %+v", out)
	}
	if sys.Network.ActiveReservations() != 0 {
		t.Error("leaked reservations")
	}
}

func TestSystemUnknownClientAndProfile(t *testing.T) {
	sys, _ := New()
	doc, _ := sys.AddNewsArticle("news-1", "T", time.Minute)
	if _, err := sys.Negotiate(context.Background(), "ghost", doc.ID, "tv-quality"); err == nil {
		t.Error("unknown client accepted")
	}
	if _, err := sys.Negotiate(context.Background(), "client-1", doc.ID, "ghost"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestSystemFactoryProfiles(t *testing.T) {
	sys, _ := New()
	names := sys.Profiles.List()
	if len(names) != 3 {
		t.Fatalf("profiles = %v", names)
	}
	// The economy profile yields a cheaper offer than premium.
	doc, _ := sys.AddNewsArticle("news-1", "T", time.Minute)
	eco, err := sys.Negotiate(context.Background(), "client-1", doc.ID, "economy")
	if err != nil || !eco.Status.Reserved() {
		t.Fatalf("economy: %v %v", eco.Status, err)
	}
	ecoCost := eco.Session.Cost()
	sys.Manager.Reject(eco.Session.ID)
	prem, err := sys.Negotiate(context.Background(), "client-1", doc.ID, "premium")
	if err != nil || !prem.Status.Reserved() {
		t.Fatalf("premium: %v %v", prem.Status, err)
	}
	if prem.Session.Cost() <= ecoCost {
		t.Errorf("premium %v should cost more than economy %v", prem.Session.Cost(), ecoCost)
	}
	// Premium gets at least TV-grade video.
	if prem.Offer.Video.Color < qos.Color {
		t.Errorf("premium video = %+v", prem.Offer.Video)
	}
}

func TestSystemServe(t *testing.T) {
	sys, err := New(WithClients(1), WithServers(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddNewsArticle("news-1", "T", time.Minute); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	type serveResult struct {
		srv *protocol.Server
		err error
	}
	done := make(chan serveResult, 1)
	go func() {
		srv, err := sys.Serve(l)
		done <- serveResult{srv, err}
	}()

	c, err := protocol.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	docs, err := c.ListDocuments(context.Background(), "")
	if err != nil || len(docs) != 1 {
		t.Fatalf("ListDocuments: %v %v", docs, err)
	}
	c.Close()
	l.Close()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("Serve: %v", r.err)
		}
		r.srv.Close()
	case <-time.After(5 * time.Second):
		t.Fatal("Serve never returned after listener close")
	}
}
