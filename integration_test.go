package qosneg

import (
	"context"
	"fmt"
	"testing"
	"time"

	"qosneg/internal/adaptation"
	"qosneg/internal/client"
	"qosneg/internal/core"
	"qosneg/internal/media"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
	"qosneg/internal/session"
	"qosneg/internal/sim"
	"qosneg/internal/workload"
)

// TestFullLifecycle drives the complete pipeline end-to-end through the
// public facade: negotiate → confirm → play → mid-stream congestion →
// automatic adaptation → completion, with resource and revenue accounting
// checked at every stage.
func TestFullLifecycle(t *testing.T) {
	sys, err := New(WithClients(2), WithServers(2))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := sys.AddNewsArticle("news-1", "Election night", 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	res, err := sys.Negotiate(context.Background(), "client-1", doc.ID, "tv-quality")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.Succeeded {
		t.Fatalf("status = %v (%s)", res.Status, res.Reason)
	}
	price := res.Session.Cost()

	eng := sim.NewEngine()
	var reports []adaptation.Report
	sys.Monitor().Attach(eng, 5*time.Second, func(r adaptation.Report) { reports = append(reports, r) })

	var out session.Outcome
	if err := sys.Player(eng).Play(res.Session, doc, func(o session.Outcome) { out = o }); err != nil {
		t.Fatal(err)
	}
	victim := res.Session.Current.Choices[0].Variant.Server
	eng.MustSchedule(40*time.Second, func() {
		sys.Servers[victim].SetDegradation(0.99)
	})
	eng.Run(10 * time.Minute)

	if out.State != core.Completed {
		t.Fatalf("outcome = %+v", out)
	}
	if out.Transitions != 1 {
		t.Errorf("transitions = %d", out.Transitions)
	}
	if len(reports) == 0 {
		t.Error("monitor never reported")
	}
	if sys.Network.ActiveReservations() != 0 {
		t.Error("reservations leaked")
	}
	st := sys.Manager.Stats()
	if st.Revenue != price {
		t.Errorf("revenue = %v, want %v", st.Revenue, price)
	}
	if st.Adaptations != 1 {
		t.Errorf("adaptations = %d", st.Adaptations)
	}
}

// lifecycleTrace runs a seeded multi-user simulation and returns a
// deterministic fingerprint of everything that happened.
func lifecycleTrace(t *testing.T, seed int64) string {
	t.Helper()
	sys, err := New(WithClients(4), WithServers(3), WithAccessCapacity(25*qos.MBitPerSecond))
	if err != nil {
		t.Fatal(err)
	}
	var ids []media.DocumentID
	var machines []client.Machine
	for i := 1; i <= 5; i++ {
		id := media.DocumentID(fmt.Sprintf("news-%d", i))
		if _, err := sys.AddNewsArticle(id, fmt.Sprintf("A%d", i), 90*time.Second); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 1; i <= 4; i++ {
		m, _ := sys.Client(fmt.Sprintf("client-%d", i))
		machines = append(machines, m)
	}
	gen, err := workload.NewGenerator(workload.Spec{
		Seed:             seed,
		MeanInterArrival: 4 * time.Second,
		Documents:        ids,
		Clients:          machines,
		Profiles:         profile.DefaultProfiles(),
		Weights:          []int{3, 1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	player := sys.Player(eng)
	sys.Monitor().Attach(eng, 5*time.Second, nil)
	fingerprint := ""
	gen.Drive(eng, 80, func(req workload.Request) {
		res, err := sys.Manager.Negotiate(req.Client, req.Document, req.Profile)
		if err != nil {
			t.Fatal(err)
		}
		fingerprint += fmt.Sprintf("%s@%s=%s;", req.Document, eng.Now(), res.Status)
		if res.Status.Reserved() {
			doc, _ := sys.Registry.Document(req.Document)
			player.Play(res.Session, doc, nil)
		}
	})
	eng.MustSchedule(time.Minute, func() { sys.Servers["server-1"].SetDegradation(0.8) })
	eng.MustSchedule(3*time.Minute, func() { sys.Servers["server-1"].SetDegradation(0) })
	eng.Run(30 * time.Minute)
	st := sys.Manager.Stats()
	fingerprint += fmt.Sprintf("stats=%+v", st)
	if sys.Network.ActiveReservations() != 0 {
		t.Fatalf("seed %d leaked %d reservations", seed, sys.Network.ActiveReservations())
	}
	return fingerprint
}

// TestSimulationDeterminism replays the same seeded scenario twice and
// demands bit-identical trajectories — the property every experiment in
// EXPERIMENTS.md relies on.
func TestSimulationDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation soak")
	}
	a := lifecycleTrace(t, 1996)
	b := lifecycleTrace(t, 1996)
	if a != b {
		t.Fatal("identical seeds produced different trajectories")
	}
	c := lifecycleTrace(t, 7)
	if a == c {
		t.Error("different seeds produced identical trajectories")
	}
}

// TestSoak runs a long mixed scenario across several seeds and checks the
// global invariants at the end of each.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation soak")
	}
	for _, seed := range []int64{1, 2, 3} {
		lifecycleTrace(t, seed) // asserts leak-freedom internally
	}
}
