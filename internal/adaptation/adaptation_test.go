package adaptation

import (
	"testing"
	"time"

	"qosneg/internal/cmfs"
	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/faults"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
	"qosneg/internal/sim"
	"qosneg/internal/testbed"
)

func tvProfile() profile.UserProfile {
	return profile.UserProfile{
		Name: "tv",
		Desired: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.CDQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(12)},
		},
		Worst: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.BlackWhite, FrameRate: 10, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.TelephoneQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(12)},
		},
		Importance: profile.DefaultImportance(),
	}
}

func playing(t *testing.T, b *testbed.Bed) *core.Session {
	t.Helper()
	if _, err := b.AddNewsArticle("news-1", "Election night", 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	res, err := b.Manager.Negotiate(b.Client(1), "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Status.Reserved() {
		t.Fatalf("negotiation: %v (%s)", res.Status, res.Reason)
	}
	if err := b.Manager.Confirm(res.Session.ID); err != nil {
		t.Fatal(err)
	}
	return res.Session
}

func monitor(b *testbed.Bed) *Monitor {
	servers := make([]*cmfs.Server, 0, len(b.Servers))
	for _, id := range b.ServerIDs() {
		servers = append(servers, b.Servers[id])
	}
	return New(b.Manager, b.Network, servers...)
}

func TestScanCleanSystem(t *testing.T) {
	b := testbed.MustNew(testbed.Spec{})
	playing(t, b)
	rep := monitor(b).Scan()
	if rep.Violations != 0 || len(rep.Adapted) != 0 || len(rep.Failed) != 0 {
		t.Errorf("clean system report: %+v", rep)
	}
}

func TestScanAdaptsDegradedServer(t *testing.T) {
	b := testbed.MustNew(testbed.Spec{})
	s := playing(t, b)
	b.Manager.Advance(s.ID, 30*time.Second)
	videoServer := s.Current.Choices[0].Variant.Server
	if err := b.Servers[videoServer].SetDegradation(0.99); err != nil {
		t.Fatal(err)
	}
	rep := monitor(b).Scan()
	if rep.Violations == 0 {
		t.Fatal("no violations detected")
	}
	if len(rep.Adapted) != 1 {
		t.Fatalf("adapted = %d (report %+v)", len(rep.Adapted), rep)
	}
	if rep.Adapted[0].Session != s.ID {
		t.Errorf("adapted wrong session")
	}
	if s.State() != core.Playing || s.Transitions() != 1 {
		t.Errorf("session state=%v transitions=%d", s.State(), s.Transitions())
	}
	if s.Position() != 30*time.Second {
		t.Errorf("position lost: %v", s.Position())
	}
	// A second scan finds a healthy system.
	rep2 := monitor(b).Scan()
	if len(rep2.Adapted) != 0 {
		t.Errorf("second scan adapted again: %+v", rep2)
	}
}

func TestScanReportsFailures(t *testing.T) {
	b := testbed.MustNew(testbed.Spec{})
	s := playing(t, b)
	for _, srv := range b.Servers {
		srv.SetDegradation(0.999)
	}
	rep := monitor(b).Scan()
	if len(rep.Failed) != 1 || rep.Failed[0] != s.ID {
		t.Fatalf("failed = %v", rep.Failed)
	}
	if s.State() != core.Aborted {
		t.Errorf("state = %v", s.State())
	}
}

func TestScanSkipsReservedSessions(t *testing.T) {
	b := testbed.MustNew(testbed.Spec{})
	if _, err := b.AddNewsArticle("news-1", "T", 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	res, err := b.Manager.Negotiate(b.Client(1), "news-1", tvProfile())
	if err != nil || !res.Status.Reserved() {
		t.Fatalf("negotiate: %v %v", res.Status, err)
	}
	// Reserved, not confirmed. Degrade its server.
	videoServer := res.Session.Current.Choices[0].Variant.Server
	b.Servers[videoServer].SetDegradation(0.99)
	rep := monitor(b).Scan()
	if rep.Skipped == 0 {
		t.Errorf("reserved session not skipped: %+v", rep)
	}
	if len(rep.Adapted) != 0 {
		t.Error("reserved session adapted")
	}
	if res.Session.State() != core.Reserved {
		t.Errorf("state = %v", res.Session.State())
	}
}

func TestAttachPeriodicScan(t *testing.T) {
	b := testbed.MustNew(testbed.Spec{})
	s := playing(t, b)
	eng := sim.NewEngine()
	var reports []Report
	stop := monitor(b).Attach(eng, 5*time.Second, func(r Report) { reports = append(reports, r) })

	// Inject degradation at t=12s; the scan at t=15s must catch it.
	eng.MustSchedule(12*time.Second, func() {
		videoServer := s.Current.Choices[0].Variant.Server
		b.Servers[videoServer].SetDegradation(0.99)
	})
	eng.Run(30 * time.Second)
	if len(reports) == 0 {
		t.Fatal("no violation reports")
	}
	if s.Transitions() != 1 {
		t.Errorf("transitions = %d", s.Transitions())
	}
	stop()
	pendingBefore := eng.Pending()
	eng.Run(60 * time.Second)
	_ = pendingBefore
	if s.Transitions() != 1 {
		t.Errorf("stopped monitor kept adapting")
	}
}

// TestAttachStopCancelsInFlightSweep pins the cancellation path from
// Attach's stop function into an in-flight sweep. Two sessions play off the
// same degraded substrate and every Reserve/Connect stalls behind injected
// latency, so the sweep that starts before stop() is still mid-commit when
// the cancellation lands: the first session's adaptation is cut short and
// the later session must be left alone (skipped for a sweep that will never
// come), not adapted by a monitor that was already stopped.
func TestAttachStopCancelsInFlightSweep(t *testing.T) {
	inj := faults.New(7)
	b := testbed.MustNew(testbed.Spec{Faults: inj})
	if _, err := b.AddNewsArticle("news-1", "Election night", 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	var sessions []*core.Session
	for i := 1; i <= 2; i++ {
		res, err := b.Manager.Negotiate(b.Client(i), "news-1", tvProfile())
		if err != nil || !res.Status.Reserved() {
			t.Fatalf("negotiate %d: %v %v", i, res.Status, err)
		}
		if err := b.Manager.Confirm(res.Session.ID); err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, res.Session)
	}
	s1, s2 := sessions[0], sessions[1]
	if s2.ID < s1.ID {
		s1, s2 = s2, s1 // the sweep adapts in id order; s2 is the later victim
	}
	// Both sessions' video servers degrade, so both are victims of the same
	// sweep; every subsequent Reserve/Connect pays a long injected latency,
	// so the first adaptation is still stalled in commitment when stop()
	// fires.
	b.Servers[s1.Current.Choices[0].Variant.Server].SetDegradation(0.99)
	if vs2 := s2.Current.Choices[0].Variant.Server; vs2 != s1.Current.Choices[0].Variant.Server {
		b.Servers[vs2].SetDegradation(0.99)
	}
	inj.SetLatency(300 * time.Millisecond)

	eng := sim.NewEngine()
	stop := monitor(b).Attach(eng, 5*time.Second, nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		eng.Run(6 * time.Second) // one tick, at virtual t=5s
	}()
	time.Sleep(50 * time.Millisecond) // the tick fires immediately in wall time
	stop()
	<-done

	if got := s2.Transitions(); got != 0 {
		t.Fatalf("stop() did not cancel the in-flight sweep: later session adapted %d times", got)
	}
	if st := s2.State(); st != core.Playing {
		t.Fatalf("later session state = %v, want Playing (left for a sweep that never came)", st)
	}
}
