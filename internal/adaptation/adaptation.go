// Package adaptation implements the QoS violation monitor that drives the
// automatic adaptation of Section 4: "During the playout of the document,
// if the network or/and the server machine become congested thus leading to
// lower presentation quality, the QoS manager makes use of the adaptation
// procedure."
//
// The monitor scans the substrate (CMFS servers and the network) for
// overcommitted reservations — the simulation's stand-in for the QoS
// violation notifications of the real prototype — maps each victim
// reservation to its session, and asks the QoS manager to adapt that
// session onto an alternate system offer. The user/application is not
// involved, per the paper's fourth design characteristic.
package adaptation

import (
	"context"
	"time"

	"qosneg/internal/cmfs"
	"qosneg/internal/core"
	"qosneg/internal/network"
	"qosneg/internal/sim"
)

// Monitor watches servers and the network for QoS violations.
type Monitor struct {
	man     core.SessionManager
	net     *network.Network
	servers []*cmfs.Server
}

// New builds a monitor over the given QoS manager and substrate.
func New(man core.SessionManager, net *network.Network, servers ...*cmfs.Server) *Monitor {
	return &Monitor{man: man, net: net, servers: servers}
}

// Report summarizes one scan.
type Report struct {
	// Violations counts victim reservations found, before session
	// de-duplication.
	Violations int
	// Adapted lists the successful transitions.
	Adapted []core.Transition
	// Failed lists sessions whose adaptation failed (now aborted).
	Failed []core.SessionID
	// Skipped counts victims whose session was not playing (reserved
	// sessions are left for the confirmation flow to resolve).
	Skipped int
}

// Scan performs one violation sweep: every overcommitted server or network
// reservation is traced to its session and each affected playing session is
// adapted at most once.
func (m *Monitor) Scan() Report {
	return m.ScanContext(context.Background())
}

// ScanContext is Scan bounded by ctx: each adaptation runs under the
// context, and once it is done the remaining victims are reported as
// skipped rather than adapted — their sessions stay playing for the next
// sweep.
func (m *Monitor) ScanContext(ctx context.Context) Report {
	var rep Report
	affected := make(map[core.SessionID]bool)

	consider := func(s *core.Session, ok bool) {
		rep.Violations++
		if !ok {
			return
		}
		if s.State() != core.Playing {
			rep.Skipped++
			return
		}
		affected[s.ID] = true
	}

	for _, srv := range m.servers {
		for _, victim := range srv.Overcommitted() {
			s, ok := m.man.SessionByServerReservation(srv.ID(), victim.ID)
			consider(s, ok)
		}
	}
	if m.net != nil {
		for _, victim := range m.net.Overcommitted() {
			s, ok := m.man.SessionByNetworkReservation(victim.ID)
			consider(s, ok)
		}
	}

	// Adapt sessions in id order for determinism.
	ids := make([]core.SessionID, 0, len(affected))
	for id := range affected {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for i, id := range ids {
		if ctx.Err() != nil {
			rep.Skipped += len(ids) - i
			break
		}
		tr, err := m.man.AdaptContext(ctx, id)
		if err != nil {
			rep.Failed = append(rep.Failed, id)
			continue
		}
		rep.Adapted = append(rep.Adapted, tr)
	}
	return rep
}

// Attach schedules a recurring sweep on the simulation engine every
// interval, reporting each non-empty scan to report (which may be nil).
// The returned stop function cancels future sweeps and any sweep in flight:
// it cancels the context every ScanContext (and so every adaptation commit)
// runs under, so engine shutdown is never blocked behind a slow adaptation —
// victims the canceled sweep had not reached stay playing, reported as
// skipped. stop is idempotent and safe to call from any goroutine.
func (m *Monitor) Attach(eng *sim.Engine, interval time.Duration, report func(Report)) (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	var tick func()
	tick = func() {
		if ctx.Err() != nil {
			return
		}
		rep := m.ScanContext(ctx)
		if report != nil && rep.Violations > 0 {
			report(rep)
		}
		eng.MustSchedule(interval, tick)
	}
	eng.MustSchedule(interval, tick)
	return cancel
}
