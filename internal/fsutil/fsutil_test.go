package fsutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.json")
	if err := WriteFileAtomic(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "first" {
		t.Fatalf("read back %q, %v", got, err)
	}
	// Overwrite replaces the content.
	if err := WriteFileAtomic(path, []byte("second"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "second" {
		t.Errorf("read back %q", got)
	}
	// No temp files left behind.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
	// Missing directory fails cleanly.
	if err := WriteFileAtomic(filepath.Join(dir, "ghost", "x"), nil, 0o644); err == nil {
		t.Error("missing directory accepted")
	}
}
