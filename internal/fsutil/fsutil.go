// Package fsutil provides the small filesystem helpers the persistence
// layers share.
package fsutil

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path via a temporary file in the same
// directory followed by a rename, so readers never observe a partially
// written catalog, profile store or tariff.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
