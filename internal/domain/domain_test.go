package domain

import (
	"errors"
	"testing"
	"time"

	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
	"qosneg/internal/testbed"
)

// twoDomains builds two self-contained domains, both carrying news-1, with
// the client multi-homed as client-1 in each.
func twoDomains(t *testing.T) (*Broker, *testbed.Bed, *testbed.Bed) {
	t.Helper()
	bedA := testbed.MustNew(testbed.Spec{})
	bedB := testbed.MustNew(testbed.Spec{})
	for _, bed := range []*testbed.Bed{bedA, bedB} {
		if _, err := bed.AddNewsArticle("news-1", "Election night", 2*time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	broker := NewBroker(
		&Domain{Name: "provider-a", Manager: bedA.Manager, Registry: bedA.Registry},
		&Domain{Name: "provider-b", Manager: bedB.Manager, Registry: bedB.Registry},
	)
	return broker, bedA, bedB
}

func tvProfile() profile.UserProfile {
	return profile.UserProfile{
		Name: "tv",
		Desired: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.CDQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(12)},
		},
		Worst: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.BlackWhite, FrameRate: 10, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.TelephoneQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(12)},
		},
		Importance: profile.DefaultImportance(),
	}
}

func TestBrokerPicksOneAndReleasesLosers(t *testing.T) {
	broker, bedA, bedB := twoDomains(t)
	res, err := broker.Negotiate(bedA.Client(1), "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.Succeeded {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Domain != "provider-a" && res.Domain != "provider-b" {
		t.Fatalf("winner = %q", res.Domain)
	}
	if len(res.PerDomain) != 2 {
		t.Errorf("per-domain = %v", res.PerDomain)
	}
	// Exactly one domain holds a live reservation (2 streams); the
	// loser's was released.
	total := bedA.Network.ActiveReservations() + bedB.Network.ActiveReservations()
	if total != 2 {
		t.Errorf("live reservations across domains = %d, want 2", total)
	}
}

func TestBrokerPrefersHealthyDomain(t *testing.T) {
	broker, bedA, bedB := twoDomains(t)
	// Cripple provider-a's servers: it can at best fail or degrade.
	for _, srv := range bedA.Servers {
		srv.SetDegradation(0.99)
	}
	res, err := broker.Negotiate(bedA.Client(1), "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.Domain != "provider-b" {
		t.Fatalf("winner = %q (per-domain %v)", res.Domain, res.PerDomain)
	}
	if res.Status != core.Succeeded {
		t.Errorf("status = %v", res.Status)
	}
	if bedA.Network.ActiveReservations() != 0 {
		t.Error("loser domain kept reservations")
	}
	_ = bedB
}

func TestBrokerPrefersBetterOffer(t *testing.T) {
	broker, bedA, bedB := twoDomains(t)
	// Remove the color variants from provider-a's catalog: it can only
	// offer grey video, so provider-b's full-quality offer must win.
	doc, _ := bedA.Registry.Document("news-1")
	for mi, m := range doc.Monomedia {
		if m.Kind != qos.Video {
			continue
		}
		var kept []media.Variant
		for _, v := range m.Variants {
			if v.QoS.Video.Color < qos.Color {
				kept = append(kept, v)
			}
		}
		doc.Monomedia[mi].Variants = kept
	}
	if err := bedA.Registry.Add(doc); err != nil {
		t.Fatal(err)
	}
	res, err := broker.Negotiate(bedA.Client(1), "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.Domain != "provider-b" {
		t.Fatalf("winner = %q (statuses %v)", res.Domain, res.PerDomain)
	}
	if res.Offer.Video.Color != qos.Color {
		t.Errorf("winning offer = %+v", res.Offer.Video)
	}
	// provider-a reserved a degraded offer that must have been released.
	if bedA.Network.ActiveReservations() != 0 {
		t.Error("provider-a reservation leaked")
	}
	_ = bedB
}

func TestBrokerTotalFailure(t *testing.T) {
	broker, bedA, bedB := twoDomains(t)
	for _, bed := range []*testbed.Bed{bedA, bedB} {
		for _, srv := range bed.Servers {
			srv.SetDegradation(0.999)
		}
	}
	// Worst-acceptable equal to desired so degradation cannot produce an
	// offer either.
	u := tvProfile()
	u.Worst = u.Desired
	res, err := broker.Negotiate(bedA.Client(1), "news-1", u)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.FailedTryLater {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Session != nil {
		t.Error("failure carried a session")
	}
}

func TestBrokerUnknownDocument(t *testing.T) {
	broker, bedA, _ := twoDomains(t)
	if _, err := broker.Negotiate(bedA.Client(1), "ghost", tvProfile()); !errors.Is(err, ErrNoDomain) {
		t.Errorf("unknown document: %v", err)
	}
	if len(broker.Domains()) != 2 {
		t.Error("Domains()")
	}
}

func TestBrokerPartialCatalog(t *testing.T) {
	broker, bedA, bedB := twoDomains(t)
	// Only provider-b carries news-2.
	if _, err := bedB.AddNewsArticle("news-2", "Hockey", time.Minute); err != nil {
		t.Fatal(err)
	}
	res, err := broker.Negotiate(bedA.Client(1), "news-2", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.Domain != "provider-b" || len(res.PerDomain) != 1 {
		t.Errorf("winner %q, per-domain %v", res.Domain, res.PerDomain)
	}
}
