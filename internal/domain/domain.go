// Package domain implements hierarchical multi-domain negotiation, the
// [Haf 95b] extension the paper's sub-project developed alongside the HPDC
// procedure: when several administrative domains (providers) can each
// deliver the requested document, a broker runs the negotiation procedure
// in every candidate domain, compares the resulting user offers with the
// user's own importance factors, keeps the best reservation and releases
// the others — the same consider-all-configurations-pick-one optimization,
// lifted one level up.
//
// Each Domain is a complete prototype stack (registry, servers, network,
// QoS manager); the client machine is multi-homed, with an access point in
// every domain it can buy service from.
package domain

import (
	"errors"
	"fmt"

	"qosneg/internal/client"
	"qosneg/internal/core"
	"qosneg/internal/media"
	"qosneg/internal/profile"
	"qosneg/internal/registry"
)

// ErrNoDomain is returned when no domain carries the requested document.
var ErrNoDomain = errors.New("domain: no domain carries the document")

// Domain is one administrative domain: a named, self-contained prototype.
type Domain struct {
	Name     string
	Manager  core.SessionManager
	Registry *registry.Registry
}

// Has reports whether the domain's catalog carries the document.
func (d *Domain) Has(id media.DocumentID) bool {
	_, err := d.Registry.Document(id)
	return err == nil
}

// Result is the broker's outcome: the winning domain's negotiation result,
// plus the per-domain statuses for diagnostics.
type Result struct {
	// Domain is the winning domain's name ("" when nothing was reserved).
	Domain string
	// Result is the winning (or, on total failure, the most informative)
	// negotiation result.
	core.Result
	// PerDomain records each candidate domain's status.
	PerDomain map[string]core.NegotiationStatus
}

// Broker negotiates across domains.
type Broker struct {
	domains []*Domain
}

// NewBroker builds a broker over the given domains.
func NewBroker(domains ...*Domain) *Broker {
	return &Broker{domains: domains}
}

// Domains returns the broker's domain list.
func (b *Broker) Domains() []*Domain { return b.domains }

// Negotiate runs the negotiation procedure in every domain that carries the
// document, selects the best reserved offer — SUCCEEDED beats
// FAILEDWITHOFFER, then higher OIF, then lower cost, then domain order —
// releases the losing reservations and returns the winner.
func (b *Broker) Negotiate(mach client.Machine, doc media.DocumentID, u profile.UserProfile) (Result, error) {
	out := Result{PerDomain: make(map[string]core.NegotiationStatus)}
	type candidate struct {
		domain *Domain
		res    core.Result
	}
	var reserved []candidate
	var bestFailure *candidate
	carriers := 0
	for _, d := range b.domains {
		if !d.Has(doc) {
			continue
		}
		carriers++
		res, err := d.Manager.Negotiate(mach, doc, u)
		if err != nil {
			return Result{}, fmt.Errorf("domain %s: %w", d.Name, err)
		}
		out.PerDomain[d.Name] = res.Status
		if res.Status.Reserved() {
			reserved = append(reserved, candidate{domain: d, res: res})
			continue
		}
		if bestFailure == nil || res.Status < bestFailure.res.Status {
			c := candidate{domain: d, res: res}
			bestFailure = &c
		}
	}
	if carriers == 0 {
		return Result{}, fmt.Errorf("%w: %q", ErrNoDomain, doc)
	}
	if len(reserved) == 0 {
		out.Domain = bestFailure.domain.Name
		out.Result = bestFailure.res
		return out, nil
	}

	best := 0
	for i := 1; i < len(reserved); i++ {
		if better(reserved[i], reserved[best]) {
			best = i
		}
	}
	// Release the losers' reservations.
	for i, c := range reserved {
		if i == best {
			continue
		}
		c.domain.Manager.Reject(c.res.Session.ID)
	}
	out.Domain = reserved[best].domain.Name
	out.Result = reserved[best].res
	return out, nil
}

// better ranks candidate a above candidate b.
func better(a, b struct {
	domain *Domain
	res    core.Result
}) bool {
	if a.res.Status != b.res.Status {
		return a.res.Status < b.res.Status // Succeeded < FailedWithOffer
	}
	ao, bo := a.res.Session.Current, b.res.Session.Current
	if ao.OIF != bo.OIF {
		return ao.OIF > bo.OIF
	}
	return a.res.Session.Cost() < b.res.Session.Cost()
}
