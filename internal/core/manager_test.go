package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"qosneg/internal/client"
	"qosneg/internal/cmfs"
	"qosneg/internal/cost"
	"qosneg/internal/ledger"
	"qosneg/internal/media"
	"qosneg/internal/network"
	"qosneg/internal/offer"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
	"qosneg/internal/registry"
	"qosneg/internal/transport"
)

// bed is a miniature prototype: one star network, two CMFS servers, a
// registry with one news article, and a QoS manager. Kept local to avoid an
// import cycle with the shared testbed package (which imports core).
type bed struct {
	reg     *registry.Registry
	net     *network.Network
	man     *Manager
	servers map[media.ServerID]*cmfs.Server
	mach    client.Machine
	doc     media.Document
	led     *ledger.Ledger
}

func newBed(t *testing.T, serverCfg cmfs.Config, access qos.BitRate) *bed {
	t.Helper()
	return newBedOpts(t, serverCfg, access, DefaultOptions())
}

func newBedOpts(t *testing.T, serverCfg cmfs.Config, access qos.BitRate, opts Options) *bed {
	t.Helper()
	net, err := network.BuildStar(network.StarSpec{
		Clients:        []network.NodeID{"client-1"},
		Servers:        []network.NodeID{"server-1", "server-2"},
		AccessCapacity: access,
	})
	if err != nil {
		t.Fatal(err)
	}
	led := ledger.New()
	led.OnViolation(func(v string) {
		t.Errorf("ledger violation: %s", v)
	})
	net.SetLedger(led)
	ts := transport.New(net, 3)
	ts.SetLedger(led)
	reg := registry.New()
	man := NewManager(reg, ts, cost.DefaultPricing(), opts)
	servers := map[media.ServerID]*cmfs.Server{}
	for _, id := range []media.ServerID{"server-1", "server-2"} {
		s, err := cmfs.NewServer(id, serverCfg)
		if err != nil {
			t.Fatal(err)
		}
		s.SetLedger(led)
		servers[id] = s
		man.AddServer(s, network.NodeID(id))
	}
	doc := media.BuildNewsArticle(media.NewsArticleSpec{
		ID:       "news-1",
		Title:    "Election night",
		Duration: 2 * time.Minute,
		Servers:  []media.ServerID{"server-1", "server-2"},
		VideoQualities: []qos.VideoQoS{
			{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			{Color: qos.Color, FrameRate: 15, Resolution: qos.TVResolution},
			{Color: qos.Grey, FrameRate: 25, Resolution: qos.TVResolution},
			{Color: qos.BlackWhite, FrameRate: 15, Resolution: qos.TVResolution},
		},
		AudioQualities: []qos.AudioQoS{
			{Grade: qos.CDQuality, Language: qos.English},
			{Grade: qos.TelephoneQuality, Language: qos.English},
		},
		CopyrightFee: 500,
	})
	if err := reg.Add(doc); err != nil {
		t.Fatal(err)
	}
	return &bed{
		reg: reg, net: net, man: man, servers: servers,
		mach: client.Workstation("client-1", "client-1"),
		doc:  doc, led: led,
	}
}

func defaultBed(t *testing.T) *bed {
	return newBed(t, cmfs.DefaultConfig(), 0)
}

func tvProfile() profile.UserProfile {
	return profile.UserProfile{
		Name: "tv",
		Desired: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.CDQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(12)},
		},
		Worst: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.Grey, FrameRate: 15, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.TelephoneQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(12)},
		},
		Importance: profile.DefaultImportance(),
	}
}

func TestNegotiateSucceeded(t *testing.T) {
	b := defaultBed(t)
	res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Succeeded {
		t.Fatalf("status = %v (%s)", res.Status, res.Reason)
	}
	if res.Session == nil || res.Offer == nil {
		t.Fatal("successful negotiation must carry a session and offer")
	}
	if res.Session.State() != Reserved {
		t.Errorf("session state = %v", res.Session.State())
	}
	// The best offer satisfies the desired QoS.
	if res.Offer.Video == nil || res.Offer.Video.Color != qos.Color || res.Offer.Video.FrameRate != 25 {
		t.Errorf("offer video = %+v", res.Offer.Video)
	}
	if res.Offer.Audio == nil || res.Offer.Audio.Grade != qos.CDQuality {
		t.Errorf("offer audio = %+v", res.Offer.Audio)
	}
	// Resources are committed on servers and network.
	total := 0
	for _, s := range b.servers {
		total += s.ActiveStreams()
	}
	if total != 2 {
		t.Errorf("server streams = %d, want 2 (video+audio)", total)
	}
	if b.net.ActiveReservations() != 2 {
		t.Errorf("network reservations = %d", b.net.ActiveReservations())
	}
	// The session's ranked list retains every feasible offer (4×2 = 8).
	if len(res.Session.Ranked) != 8 {
		t.Errorf("ranked offers = %d, want 8", len(res.Session.Ranked))
	}
	st := b.man.Stats()
	if st.Requests != 1 || st.Succeeded != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNegotiateUnknownDocument(t *testing.T) {
	b := defaultBed(t)
	if _, err := b.man.Negotiate(b.mach, "ghost", tvProfile()); err == nil {
		t.Error("unknown document accepted")
	}
}

func TestNegotiateFailedWithLocalOffer(t *testing.T) {
	b := defaultBed(t)
	mach := b.mach
	mach.Display.Color = qos.BlackWhite // the paper's example
	res, err := b.man.Negotiate(mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != FailedWithLocalOffer {
		t.Fatalf("status = %v", res.Status)
	}
	if len(res.Violations) == 0 {
		t.Error("violations missing")
	}
	if res.Offer == nil || res.Offer.Video.Color != qos.BlackWhite {
		t.Errorf("local offer = %+v", res.Offer)
	}
	if res.Session != nil {
		t.Error("no session may be reserved")
	}
	if b.net.ActiveReservations() != 0 {
		t.Error("resources leaked")
	}
}

func TestNegotiateFailedWithoutOffer(t *testing.T) {
	b := defaultBed(t)
	mach := b.mach
	// No audio decoder at all: the audio monomedia has no feasible
	// variant.
	mach.Decoders = []media.Format{media.MPEG1, media.GIF, media.PlainText}
	// Keep the local check passing: drop the audio requirement? No — the
	// local check tests hardware, not decoders; audio hardware is fine.
	res, err := b.man.Negotiate(mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != FailedWithoutOffer {
		t.Fatalf("status = %v (%s)", res.Status, res.Reason)
	}
	if res.Session != nil || res.Offer != nil {
		t.Error("no offer may be returned")
	}
}

func TestNegotiateFailedTryLater(t *testing.T) {
	// Tiny servers: nothing can be admitted.
	cfg := cmfs.Config{
		DiskRate:    64 * qos.KBitPerSecond,
		SeekTime:    time.Millisecond,
		RoundLength: time.Second,
		MaxStreams:  1,
	}
	b := newBed(t, cfg, 0)
	res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != FailedTryLater {
		t.Fatalf("status = %v (%s)", res.Status, res.Reason)
	}
	if b.net.ActiveReservations() != 0 {
		t.Error("rollback leaked network reservations")
	}
	for id, s := range b.servers {
		if s.ActiveStreams() != 0 {
			t.Errorf("rollback leaked streams on %s", id)
		}
	}
}

func TestNegotiateFailedWithOffer(t *testing.T) {
	b := defaultBed(t)
	// A profile nothing can satisfy at the desired level: super-color
	// 60 fps HDTV with a 1-cent budget — but whose worst-acceptable level
	// is low enough that feasible offers exist (they are all Constraint
	// on color/rate, or over budget).
	u := profile.UserProfile{
		Name: "dreamer",
		Desired: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.SuperColor, FrameRate: 60, Resolution: 1280},
			Cost:  profile.CostProfile{MaxCost: cost.Cents(1)},
		},
		Worst: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.SuperColor, FrameRate: 60, Resolution: 1280},
			Cost:  profile.CostProfile{MaxCost: cost.Cents(1)},
		},
		Importance: profile.DefaultImportance(),
	}
	res, err := b.man.Negotiate(b.mach, "news-1", u)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != FailedWithOffer {
		t.Fatalf("status = %v (%s)", res.Status, res.Reason)
	}
	if res.Session == nil || res.Offer == nil {
		t.Fatal("FAILEDWITHOFFER must still reserve an offer")
	}
	if res.Session.Current.Status != offer.Constraint {
		t.Errorf("offer status = %v", res.Session.Current.Status)
	}
	// The reserved offer is the best feasible one by classification.
	if err := b.man.Reject(res.Session.ID); err != nil {
		t.Fatal(err)
	}
}

func TestConfirmRejectLifecycle(t *testing.T) {
	b := defaultBed(t)
	res, _ := b.man.Negotiate(b.mach, "news-1", tvProfile())
	id := res.Session.ID

	if err := b.man.Confirm(id); err != nil {
		t.Fatal(err)
	}
	if res.Session.State() != Playing {
		t.Errorf("state = %v", res.Session.State())
	}
	if err := b.man.Confirm(id); !errors.Is(err, ErrBadState) {
		t.Errorf("double confirm: %v", err)
	}
	if err := b.man.Reject(id); !errors.Is(err, ErrBadState) {
		t.Errorf("reject while playing: %v", err)
	}
	if err := b.man.Advance(id, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if res.Session.Position() != 30*time.Second {
		t.Errorf("position = %v", res.Session.Position())
	}
	if err := b.man.Complete(id); err != nil {
		t.Fatal(err)
	}
	if res.Session.State() != Completed {
		t.Errorf("state = %v", res.Session.State())
	}
	if b.net.ActiveReservations() != 0 {
		t.Error("completion leaked reservations")
	}
	if err := b.man.Advance(id, time.Second); !errors.Is(err, ErrBadState) {
		t.Errorf("advance after completion: %v", err)
	}
}

func TestRejectReleasesResources(t *testing.T) {
	b := defaultBed(t)
	res, _ := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err := b.man.Reject(res.Session.ID); err != nil {
		t.Fatal(err)
	}
	if res.Session.State() != Aborted {
		t.Errorf("state = %v", res.Session.State())
	}
	if b.net.ActiveReservations() != 0 {
		t.Error("reject leaked network reservations")
	}
	for _, s := range b.servers {
		if s.ActiveStreams() != 0 {
			t.Error("reject leaked server streams")
		}
	}
}

func TestAbortFromAnyState(t *testing.T) {
	b := defaultBed(t)
	res, _ := b.man.Negotiate(b.mach, "news-1", tvProfile())
	id := res.Session.ID
	if err := b.man.Abort(id); err != nil {
		t.Fatal(err)
	}
	if err := b.man.Abort(id); err != nil {
		t.Errorf("abort must be idempotent: %v", err)
	}
	if b.net.ActiveReservations() != 0 {
		t.Error("abort leaked")
	}
	if err := b.man.Abort(999); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("unknown session: %v", err)
	}
}

func TestUnknownSessionOperations(t *testing.T) {
	b := defaultBed(t)
	for _, err := range []error{
		b.man.Confirm(42),
		b.man.Reject(42),
		b.man.Advance(42, time.Second),
		b.man.Complete(42),
	} {
		if !errors.Is(err, ErrUnknownSession) {
			t.Errorf("want ErrUnknownSession, got %v", err)
		}
	}
	if _, err := b.man.Session(42); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("Session(42): %v", err)
	}
}

func TestSessionsByState(t *testing.T) {
	b := defaultBed(t)
	r1, _ := b.man.Negotiate(b.mach, "news-1", tvProfile())
	r2, _ := b.man.Negotiate(b.mach, "news-1", tvProfile())
	b.man.Confirm(r2.Session.ID)
	if got := len(b.man.Sessions(Reserved)); got != 1 {
		t.Errorf("reserved = %d", got)
	}
	if got := len(b.man.Sessions(Playing)); got != 1 {
		t.Errorf("playing = %d", got)
	}
	_ = r1
}

func TestBlockingUnderLoad(t *testing.T) {
	// 10 Mbit/s access link: CD audio (~1.4) + color TV video (~1.3 avg)
	// per session; the access link should block after a handful of
	// sessions, and the manager must degrade offers before failing.
	b := newBed(t, cmfs.DefaultConfig(), 10*qos.MBitPerSecond)
	var statuses []NegotiationStatus
	for i := 0; i < 10; i++ {
		res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
		if err != nil {
			t.Fatal(err)
		}
		statuses = append(statuses, res.Status)
		if res.Session != nil {
			b.man.Confirm(res.Session.ID)
		}
	}
	if statuses[0] != Succeeded {
		t.Errorf("first request: %v", statuses[0])
	}
	last := statuses[len(statuses)-1]
	if last != FailedTryLater {
		t.Errorf("saturated system should FAILEDTRYLATER, got %v", last)
	}
	// Somewhere in between, the system degraded gracefully (either more
	// successes at lower quality or explicit FailedWithOffer).
	sawDegraded := false
	for _, s := range statuses {
		if s == FailedWithOffer {
			sawDegraded = true
		}
	}
	st := b.man.Stats()
	if st.Requests != 10 {
		t.Errorf("requests = %d", st.Requests)
	}
	t.Logf("statuses = %v, degraded=%v", statuses, sawDegraded)
}

func TestStartDelayConstraint(t *testing.T) {
	b := defaultBed(t)
	u := tvProfile()
	u.Desired.Time.MaxStartDelay = time.Millisecond // below round length
	res, err := b.man.Negotiate(b.mach, "news-1", u)
	if err != nil {
		t.Fatal(err)
	}
	// Every offer fails the hard start-delay bound, so no retry can
	// help: FAILEDWITHOUTOFFER, not FAILEDTRYLATER.
	if res.Status != FailedWithoutOffer {
		t.Errorf("status = %v; start-delay bound not enforced", res.Status)
	}
	if res.RetryAfter != 0 {
		t.Errorf("RetryAfter = %v for a constraint failure", res.RetryAfter)
	}
}

func TestChoicePeriodDefaulting(t *testing.T) {
	b := defaultBed(t)
	u := tvProfile()
	res, _ := b.man.Negotiate(b.mach, "news-1", u)
	if res.Session.ChoicePeriod != 30*time.Second {
		t.Errorf("default choice period = %v", res.Session.ChoicePeriod)
	}
	b.man.Reject(res.Session.ID)
	u.Desired.Time.ChoicePeriod = 5 * time.Second
	res, _ = b.man.Negotiate(b.mach, "news-1", u)
	if res.Session.ChoicePeriod != 5*time.Second {
		t.Errorf("profile choice period = %v", res.Session.ChoicePeriod)
	}
}

func TestNegotiationStatusStrings(t *testing.T) {
	want := map[NegotiationStatus]string{
		Succeeded:            "SUCCEEDED",
		FailedWithOffer:      "FAILEDWITHOFFER",
		FailedTryLater:       "FAILEDTRYLATER",
		FailedWithoutOffer:   "FAILEDWITHOUTOFFER",
		FailedWithLocalOffer: "FAILEDWITHLOCALOFFER",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
	if !Succeeded.Reserved() || !FailedWithOffer.Reserved() || FailedTryLater.Reserved() {
		t.Error("Reserved() wrong")
	}
	if fmt.Sprintf("%v", NegotiationStatus(9)) == "" {
		t.Error("unknown status renders empty")
	}
	if Reserved.String() != "reserved" || SessionState(9).String() == "" {
		t.Error("session state strings")
	}
}
