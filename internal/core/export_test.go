package core

// SetTestHookUnlocked installs f at the start of every unlock window — the
// point where Adapt/RenegotiateContext have withdrawn the session's
// commitment and dropped its lock. The lifecycle tests (this package and
// the core_test stress harness) use it to land concurrent transitions
// inside the window deterministically; it is compiled into test binaries
// only.
func (m *Manager) SetTestHookUnlocked(f func(op string, id SessionID)) {
	m.testHookUnlocked = f
}
