package core

import (
	"testing"
	"testing/quick"

	"qosneg/internal/cost"
	"qosneg/internal/offer"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
)

// TestNegotiationContract checks the paper's definition of SUCCEEDED
// against randomized profiles: "the requested QoS and the maximum cost the
// user is willing to pay are satisfied by the system. A user offer (which
// does not violate the worst acceptable values contained in the user
// profile) is returned." Dually, FAILEDWITHOFFER must return an offer that
// does violate the request (in QoS or budget).
func TestNegotiationContract(t *testing.T) {
	b := defaultBed(t)
	colors := qos.ColorQualities()

	f := func(desColor, worColor, desRate, worRate uint8, budgetRaw uint16) bool {
		dc := colors[desColor%4]
		wc := colors[worColor%4]
		if wc > dc {
			dc, wc = wc, dc
		}
		dr := int(desRate%60) + 1
		wr := int(worRate%60) + 1
		if wr > dr {
			dr, wr = wr, dr
		}
		budget := cost.Money(budgetRaw) // 0 .. 65.535$
		u := profile.UserProfile{
			Name: "contract",
			Desired: profile.MMProfile{
				Video: &qos.VideoQoS{Color: dc, FrameRate: dr, Resolution: qos.TVResolution},
				Audio: &qos.AudioQoS{Grade: qos.CDQuality},
				Cost:  profile.CostProfile{MaxCost: budget},
			},
			Worst: profile.MMProfile{
				Video: &qos.VideoQoS{Color: wc, FrameRate: wr, Resolution: qos.TVResolution},
				Audio: &qos.AudioQoS{Grade: qos.TelephoneQuality},
				Cost:  profile.CostProfile{MaxCost: budget},
			},
			Importance: profile.DefaultImportance(),
		}
		if err := u.Validate(); err != nil {
			return true // generator produced an invalid profile; skip
		}
		res, err := b.man.Negotiate(b.mach, "news-1", u)
		if err != nil {
			return false
		}
		defer func() {
			if res.Session != nil {
				b.man.Reject(res.Session.ID)
			}
		}()
		switch res.Status {
		case Succeeded:
			// The offer must not violate the worst-acceptable values and
			// must fit the budget.
			if res.Session.Current.Status == offer.Constraint {
				return false
			}
			if res.Session.Cost() > u.MaxCost() {
				return false
			}
			wor, _ := u.Worst.Setting(qos.Video)
			videoOffer := qos.VideoSetting(*res.Offer.Video)
			if !videoOffer.Satisfies(wor) {
				return false
			}
			return true
		case FailedWithOffer:
			// The reserved offer must genuinely fail the request: either
			// a QoS constraint or the budget.
			violates := res.Session.Current.Status == offer.Constraint ||
				res.Session.Cost() > u.MaxCost()
			return violates
		case FailedTryLater:
			return res.Session == nil
		default:
			// Local/compat failures cannot happen with this catalog and
			// machine.
			return false
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
	// The bed must end clean: every reservation rejected.
	if b.net.ActiveReservations() != 0 {
		t.Errorf("leaked %d reservations", b.net.ActiveReservations())
	}
}
