package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qosneg/internal/cmfs"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/qos"
)

// bedDoc rebuilds the bed's news-1 article with a different copyright fee.
// The fee is the test's document version stamp: the committed offer's
// Cost.Copyright reveals which registry snapshot priced it.
func bedDoc(fee int64) media.Document {
	return media.BuildNewsArticle(media.NewsArticleSpec{
		ID:       "news-1",
		Title:    "Election night",
		Duration: 2 * time.Minute,
		Servers:  []media.ServerID{"server-1", "server-2"},
		VideoQualities: []qos.VideoQoS{
			{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			{Color: qos.Color, FrameRate: 15, Resolution: qos.TVResolution},
			{Color: qos.Grey, FrameRate: 25, Resolution: qos.TVResolution},
			{Color: qos.BlackWhite, FrameRate: 15, Resolution: qos.TVResolution},
		},
		AudioQualities: []qos.AudioQoS{
			{Grade: qos.CDQuality, Language: qos.English},
			{Grade: qos.TelephoneQuality, Language: qos.English},
		},
		CopyrightFee: fee,
	})
}

// versionPricing builds a tariff whose version is decodable from any
// committed offer: every continuous monomedia (rate ≥ 1 bit/s) is charged v
// milli-dollars per second, so with the bed's two-minute article each network
// line item equals exactly 120·v.
func versionPricing(v int64) cost.Pricing {
	return cost.Pricing{
		Network: cost.MustTable(cost.Class{MinRate: 1, Price: cost.Money(v)}),
		Server:  cost.MustTable(),
	}
}

// windDown drives a reserved session to a terminal state and surfaces any
// lifecycle error.
func windDown(t *testing.T, m *Manager, res Result, mode int) {
	t.Helper()
	if res.Session == nil {
		return
	}
	id := res.Session.ID
	switch mode % 3 {
	case 0:
		if err := m.Reject(id); err != nil {
			t.Errorf("reject %d: %v", id, err)
		}
	case 1:
		if err := m.Confirm(id); err != nil {
			t.Errorf("confirm %d: %v", id, err)
			return
		}
		if err := m.Complete(id); err != nil {
			t.Errorf("complete %d: %v", id, err)
		}
	case 2:
		if err := m.Confirm(id); err != nil {
			t.Errorf("confirm %d: %v", id, err)
			return
		}
		if err := m.Abort(id); err != nil {
			t.Errorf("abort %d: %v", id, err)
		}
	}
}

// TestOfferCacheHitEquivalence: the second negotiation of the same
// (document, machine, profile) is served from the cache and must produce
// exactly the ranked list and committed offer of the first.
func TestOfferCacheHitEquivalence(t *testing.T) {
	b := defaultBed(t)
	res1, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res1.Status != Succeeded {
		t.Fatalf("status = %v (%s)", res1.Status, res1.Reason)
	}
	st := b.man.Stats()
	if st.OfferCacheMisses != 1 || st.OfferCacheHits != 0 {
		t.Fatalf("after first run: hits=%d misses=%d, want 0/1", st.OfferCacheHits, st.OfferCacheMisses)
	}
	if st.OfferCacheEntries != 1 {
		t.Fatalf("entries = %d, want 1", st.OfferCacheEntries)
	}
	ranked1, _ := json.Marshal(res1.Session.Ranked)
	windDown(t, b.man, res1, 0)

	res2, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	st = b.man.Stats()
	if st.OfferCacheHits != 1 || st.OfferCacheMisses != 1 {
		t.Fatalf("after second run: hits=%d misses=%d, want 1/1", st.OfferCacheHits, st.OfferCacheMisses)
	}
	if res2.Status != res1.Status {
		t.Fatalf("cached status = %v, fresh %v", res2.Status, res1.Status)
	}
	ranked2, _ := json.Marshal(res2.Session.Ranked)
	if string(ranked1) != string(ranked2) {
		t.Errorf("cached ranked list differs from fresh:\nfresh:  %s\ncached: %s", ranked1, ranked2)
	}
	windDown(t, b.man, res2, 0)
	if err := b.led.CheckEmpty(); err != nil {
		t.Error(err)
	}
}

// TestOfferCacheDocInvalidation: republishing the document bumps its
// generation; the next negotiation must price the new copyright fee, never
// the memoized old one.
func TestOfferCacheDocInvalidation(t *testing.T) {
	b := defaultBed(t)
	res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Session.CurrentOffer().Cost.Copyright; got != 500 {
		t.Fatalf("copyright = %v, want 500", got)
	}
	windDown(t, b.man, res, 0)

	if err := b.reg.Add(bedDoc(700)); err != nil {
		t.Fatal(err)
	}
	res, err = b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Session.CurrentOffer().Cost.Copyright; got != 700 {
		t.Fatalf("after republish: copyright = %v, want 700 (stale candidate served)", got)
	}
	st := b.man.Stats()
	if st.OfferCacheHits != 0 || st.OfferCacheMisses != 2 {
		t.Errorf("hits=%d misses=%d, want 0/2 (generation mismatch must not hit)", st.OfferCacheHits, st.OfferCacheMisses)
	}
	if st.OfferCacheInvalidations != 1 {
		t.Errorf("invalidations = %d, want 1 (stale entry dropped at lookup)", st.OfferCacheInvalidations)
	}
	windDown(t, b.man, res, 0)
	if err := b.led.CheckEmpty(); err != nil {
		t.Error(err)
	}
}

// TestOfferCachePricingInvalidation: SetPricing bumps the pricing
// generation; the next negotiation must re-price under the new tables.
func TestOfferCachePricingInvalidation(t *testing.T) {
	b := defaultBed(t)
	b.man.SetPricing(versionPricing(1))
	res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	cost1 := res.Session.CurrentOffer().Cost
	for i, n := range cost1.Network {
		if n != 120 {
			t.Fatalf("network[%d] = %v, want 120 (v1 tariff)", i, n)
		}
	}
	windDown(t, b.man, res, 0)

	b.man.SetPricing(versionPricing(3))
	res, err = b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range res.Session.CurrentOffer().Cost.Network {
		if n != 360 {
			t.Fatalf("after SetPricing: network[%d] = %v, want 360 (stale candidate served)", i, n)
		}
	}
	st := b.man.Stats()
	if st.OfferCacheHits != 0 || st.OfferCacheMisses != 2 {
		t.Errorf("hits=%d misses=%d, want 0/2", st.OfferCacheHits, st.OfferCacheMisses)
	}
	windDown(t, b.man, res, 0)
	if err := b.led.CheckEmpty(); err != nil {
		t.Error(err)
	}
}

// TestOfferCacheQuarantinePurge: breaker transitions purge entries keyed by
// the outgoing exclusion world, and negotiations under quarantine never
// choose a quarantined server's variants.
func TestOfferCacheQuarantinePurge(t *testing.T) {
	b := defaultBed(t)
	res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	windDown(t, b.man, res, 0)
	if st := b.man.Stats(); st.OfferCacheEntries != 1 {
		t.Fatalf("entries = %d, want 1", st.OfferCacheEntries)
	}

	// Trip the breaker for server-2: the healthy-world entry is purged.
	b.man.recordCommitFailure(&commitFailure{
		cause: CauseServerDown, server: "server-2", op: "reserve",
		err: errors.New("injected"),
	})
	st := b.man.Stats()
	if st.OfferCacheEntries != 0 {
		t.Fatalf("after trip: entries = %d, want 0 (purged)", st.OfferCacheEntries)
	}
	if st.OfferCacheInvalidations != 1 {
		t.Errorf("after trip: invalidations = %d, want 1", st.OfferCacheInvalidations)
	}

	res, err = b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.Session != nil {
		for _, c := range res.Session.CurrentOffer().Choices {
			if c.Variant.Server == "server-2" {
				t.Errorf("offer uses quarantined server-2 variant %s", c.Variant.ID)
			}
		}
		for _, r := range res.Session.Ranked {
			for _, c := range r.Choices {
				if c.Variant.Server == "server-2" {
					t.Errorf("ranked list retains quarantined server-2 variant %s", c.Variant.ID)
				}
			}
		}
	}
	windDown(t, b.man, res, 0)
	if st := b.man.Stats(); st.OfferCacheMisses != 2 {
		t.Errorf("misses = %d, want 2 (quarantined world is a new key)", st.OfferCacheMisses)
	}

	// Restore: the quarantined-world entry is purged in turn, and the full
	// candidate set comes back.
	b.man.recordServerSuccess("server-2", b.man.serverHealthGen("server-2"))
	st = b.man.Stats()
	if st.OfferCacheEntries != 0 {
		t.Fatalf("after restore: entries = %d, want 0", st.OfferCacheEntries)
	}
	if st.OfferCacheInvalidations != 2 {
		t.Errorf("after restore: invalidations = %d, want 2", st.OfferCacheInvalidations)
	}
	res, err = b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Succeeded {
		t.Fatalf("after restore: status = %v (%s)", res.Status, res.Reason)
	}
	servers := map[media.ServerID]bool{}
	for _, r := range res.Session.Ranked {
		for _, c := range r.Choices {
			servers[c.Variant.Server] = true
		}
	}
	if !servers["server-2"] {
		t.Error("after restore: ranked list never uses server-2 — exclusion leaked into the new world")
	}
	windDown(t, b.man, res, 0)
	if err := b.led.CheckEmpty(); err != nil {
		t.Error(err)
	}
}

// TestOfferCacheOnOffEquivalence runs the same scripted mix of
// negotiations, registry updates, pricing changes and breaker flips against
// two identical beds — one caching, one not — and demands byte-identical
// outcomes at every step.
func TestOfferCacheOnOffEquivalence(t *testing.T) {
	on := defaultBed(t)
	offOpts := DefaultOptions()
	offOpts.OfferCache = -1
	off := newBedOpts(t, cmfs.DefaultConfig(), 0, offOpts)

	beds := []*bed{on, off}
	negotiate := func(step int, mode int) {
		t.Helper()
		var snaps [2]string
		for i, b := range beds {
			res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
			if err != nil {
				t.Fatalf("step %d bed %d: %v", step, i, err)
			}
			var ranked, current []byte
			if res.Session != nil {
				ranked, _ = json.Marshal(res.Session.Ranked)
				current, _ = json.Marshal(res.Session.CurrentOffer())
			}
			offerJSON, _ := json.Marshal(res.Offer)
			snaps[i] = fmt.Sprintf("status=%v reason=%q offer=%s current=%s ranked=%s",
				res.Status, res.Reason, offerJSON, current, ranked)
			windDown(t, b.man, res, mode)
		}
		if snaps[0] != snaps[1] {
			t.Fatalf("step %d: cache-on and cache-off outcomes differ:\non:  %s\noff: %s", step, snaps[0], snaps[1])
		}
	}

	rng := rand.New(rand.NewSource(42))
	fee, price := int64(500), int64(1)
	for _, b := range beds {
		b.man.SetPricing(versionPricing(price))
	}
	quarantined := false
	for step := 0; step < 40; step++ {
		switch rng.Intn(6) {
		case 0, 1, 2:
			negotiate(step, rng.Intn(3))
		case 3:
			fee += 25
			for _, b := range beds {
				if err := b.reg.Add(bedDoc(fee)); err != nil {
					t.Fatal(err)
				}
			}
		case 4:
			price++
			for _, b := range beds {
				b.man.SetPricing(versionPricing(price))
			}
		case 5:
			if quarantined {
				for _, b := range beds {
					b.man.recordServerSuccess("server-2", b.man.serverHealthGen("server-2"))
				}
			} else {
				for _, b := range beds {
					b.man.recordCommitFailure(&commitFailure{
						cause: CauseServerDown, server: "server-2", op: "reserve",
						err: errors.New("injected"),
					})
				}
			}
			quarantined = !quarantined
		}
	}
	onStats, offStats := on.man.Stats(), off.man.Stats()
	if onStats.OfferCacheHits == 0 {
		t.Error("scripted run never hit the cache — equivalence was not exercised")
	}
	if offStats.OfferCacheHits != 0 || offStats.OfferCacheMisses != 0 {
		t.Errorf("cache-off bed recorded cache traffic: %+v", offStats)
	}
	for i, b := range beds {
		if err := b.led.CheckEmpty(); err != nil {
			t.Errorf("bed %d: %v", i, err)
		}
	}
}

// TestOfferCacheCoherenceRandomized is the property test: negotiations race
// registry republishes, pricing swaps and breaker flips, and every committed
// offer must decode to document and pricing versions that were plausibly
// current during its negotiation window — a stale candidate set would decode
// to a version older than the newest install that preceded the negotiation.
// Run with -race; four seeds vary the interleaving.
func TestOfferCacheCoherenceRandomized(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			coherenceRun(t, seed)
		})
	}
}

func coherenceRun(t *testing.T, seed int64) {
	b := defaultBed(t)
	b.man.SetPricing(versionPricing(0))

	// Version clocks. issued is bumped before an install starts, installed
	// after it returns: a negotiation that starts after installed=v can only
	// observe versions ≥ v, and can never observe a version > issued read
	// after it finished.
	var docIssued, docInstalled atomic.Int64
	var priceIssued, priceInstalled atomic.Int64
	// quarVer counts breaker transitions; it is odd exactly while server-2's
	// quarantine is in force for the whole odd window (set before the window
	// opens, cleared after it closes).
	var quarVer atomic.Uint64

	var wg sync.WaitGroup
	start := make(chan struct{})

	wg.Add(1)
	go func() { // document republisher
		defer wg.Done()
		<-start
		for i := 0; i < 40; i++ {
			v := docIssued.Add(1)
			if err := b.reg.Add(bedDoc(500 + v)); err != nil {
				t.Errorf("republish v%d: %v", v, err)
				return
			}
			docInstalled.Store(v)
			time.Sleep(500 * time.Microsecond)
		}
	}()

	wg.Add(1)
	go func() { // pricing updater
		defer wg.Done()
		<-start
		for i := 0; i < 20; i++ {
			v := priceIssued.Add(1)
			b.man.SetPricing(versionPricing(v))
			priceInstalled.Store(v)
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Add(1)
	go func() { // breaker flipper
		defer wg.Done()
		<-start
		for i := 0; i < 20; i++ {
			if i%2 == 0 {
				b.man.recordCommitFailure(&commitFailure{
					cause: CauseServerDown, server: "server-2", op: "reserve",
					err: errors.New("injected"),
				})
				quarVer.Add(1) // odd: quarantine definitely in force
			} else {
				quarVer.Add(1) // even again, then lift it
				b.man.recordServerSuccess("server-2", b.man.serverHealthGen("server-2"))
			}
			time.Sleep(time.Millisecond)
		}
	}()

	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*100 + int64(w)))
			<-start
			for i := 0; i < 60; i++ {
				docLo, priceLo := docInstalled.Load(), priceInstalled.Load()
				qBefore := quarVer.Load()
				res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				docHi, priceHi := docIssued.Load(), priceIssued.Load()
				qAfter := quarVer.Load()
				if res.Session != nil {
					c := res.Session.CurrentOffer().Cost
					dv := int64(c.Copyright) - 500
					if dv < docLo || dv > docHi {
						t.Errorf("worker %d: committed doc version %d outside live window [%d,%d] — stale candidate set",
							w, dv, docLo, docHi)
					}
					var pv int64 = -1
					for j, n := range c.Network {
						if n%120 != 0 {
							t.Errorf("worker %d: network[%d] = %v not a whole tariff version", w, j, n)
							continue
						}
						v := int64(n) / 120
						if pv == -1 {
							pv = v
						} else if v != pv {
							t.Errorf("worker %d: offer mixes tariff versions %d and %d — non-atomic pricing", w, pv, v)
						}
					}
					if pv >= 0 && (pv < priceLo || pv > priceHi) {
						t.Errorf("worker %d: committed tariff version %d outside live window [%d,%d] — stale candidate set",
							w, pv, priceLo, priceHi)
					}
					if qBefore == qAfter && qBefore%2 == 1 {
						for _, ch := range res.Session.CurrentOffer().Choices {
							if ch.Variant.Server == "server-2" {
								t.Errorf("worker %d: committed quarantined server-2 variant %s", w, ch.Variant.ID)
							}
						}
					}
					windDown(t, b.man, res, rng.Intn(3))
				}
			}
		}(w)
	}

	close(start)
	wg.Wait()

	st := b.man.Stats()
	if st.OfferCacheHits == 0 {
		t.Error("coherence run never hit the cache — the property was not exercised")
	}
	if err := b.led.CheckEmpty(); err != nil {
		t.Error(err)
	}
}
