package core

import (
	"testing"
	"time"

	"qosneg/internal/cmfs"
	"qosneg/internal/cost"
	"qosneg/internal/network"
	"qosneg/internal/telemetry"
	"qosneg/internal/transport"
)

// metricsBed rebuilds the standard bed's manager with telemetry installed.
func metricsBed(t *testing.T, reg *telemetry.Registry, tr telemetry.Tracer) *bed {
	t.Helper()
	b := newBed(t, cmfs.DefaultConfig(), 0)
	opts := DefaultOptions()
	opts.Metrics = reg
	opts.Tracer = tr
	man := NewManager(b.reg, transport.New(b.net, 3), cost.DefaultPricing(), opts)
	for id, s := range b.servers {
		man.AddServer(s, network.NodeID(id))
	}
	b.man = man
	return b
}

func TestNegotiationMetricsRecorded(t *testing.T) {
	reg := telemetry.NewRegistry()
	ring := telemetry.NewRing(128)
	b := metricsBed(t, reg, ring)

	res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Succeeded {
		t.Fatalf("status = %v, want SUCCEEDED", res.Status)
	}
	if err := b.man.Confirm(res.Session.ID); err != nil {
		t.Fatal(err)
	}
	if err := b.man.Complete(res.Session.ID); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	if got := s.CounterValue(MetricNegotiations, Succeeded.String()); got != 1 {
		t.Fatalf("negotiations{SUCCEEDED} = %d, want 1", got)
	}
	e2e, ok := s.Find(MetricNegotiationTime, "")
	if !ok || e2e.Count != 1 {
		t.Fatalf("end-to-end histogram = %+v ok=%v, want one observation", e2e, ok)
	}
	for _, step := range []telemetry.Step{
		telemetry.StepLocalNegotiation, telemetry.StepClassification,
		telemetry.StepCommitment, telemetry.StepConfirmation,
	} {
		h, ok := s.Find(MetricStepTime, step.String())
		if !ok || h.Count != 1 {
			t.Fatalf("step %s histogram = %+v ok=%v, want one observation", step, h, ok)
		}
	}
	if got := s.CounterValue(MetricRevenue, ""); got == 0 {
		t.Fatalf("revenue = 0 after Complete, want > 0")
	}

	// The ring saw the timed spans plus the commitment outcome.
	var steps []telemetry.Step
	for _, e := range ring.Events() {
		steps = append(steps, e.Step)
	}
	want := map[telemetry.Step]bool{}
	for _, st := range steps {
		want[st] = true
	}
	for _, st := range []telemetry.Step{
		telemetry.StepLocalNegotiation, telemetry.StepClassification,
		telemetry.StepCommitment, telemetry.StepConfirmation,
	} {
		if !want[st] {
			t.Fatalf("ring missing %s span; got %v", st, steps)
		}
	}
}

func TestBreakerMetricsRecorded(t *testing.T) {
	reg := telemetry.NewRegistry()
	b := metricsBed(t, reg, nil)
	b.man.opts.Health = HealthPolicy{FailureThreshold: 1, Cooldown: time.Minute}
	flaky := flakify(b)
	for _, fs := range flaky {
		fs.setDown(true)
	}

	res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != FailedTryLater {
		t.Fatalf("status = %v, want FAILEDTRYLATER", res.Status)
	}

	s := reg.Snapshot()
	if got := s.CounterValue(MetricNegotiations, FailedTryLater.String()); got != 1 {
		t.Fatalf("negotiations{FAILEDTRYLATER} = %d, want 1", got)
	}
	if got := s.CounterValue(MetricCommitFailures, CauseServerDown.String()); got == 0 {
		t.Fatalf("commit_failures{server-down} = 0, want > 0")
	}
	if got := s.CounterValue(MetricQuarantines, ""); got == 0 {
		t.Fatalf("quarantines = 0, want > 0")
	}
	quarantined := false
	for _, g := range s.Gauges {
		if g.Name == MetricQuarantined && g.Value > 0 {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatalf("no positive %s gauge after breaker trip", MetricQuarantined)
	}
}

// TestNoopTelemetryZeroAlloc pins the disabled-telemetry negotiation hot
// path: with no Trace callback, no Tracer and no Metrics registry, the
// manager's instrumentation helpers must allocate nothing. The fmt.Sprintf
// call sites this PR guarded (skip-dead, commit-attempt, commit-failed,
// exhausted, quarantine) are all gated on tracing(), so this test plus the
// guards is the allocation proof for the whole trace surface.
func TestNoopTelemetryZeroAlloc(t *testing.T) {
	b := newBed(t, cmfs.DefaultConfig(), 0)
	m := b.man
	if m.tracing() {
		t.Fatalf("bed unexpectedly has tracing enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if m.tracing() {
			t.Errorf("tracing() flipped")
		}
		m.trace("commit-attempt", "", "")
		m.span(telemetry.Event{Step: telemetry.StepCommitment})
		tm := m.stepTimer()
		tm.lap(telemetry.StepLocalNegotiation)
		tm.lap(telemetry.StepClassification)
		m.met.outcome(Succeeded)
		m.met.commitFailure(CauseCapacity)
		m.met.skip()
		m.met.quarantineTrip()
		m.met.adapt(true)
		m.met.addRevenue(100)
		m.met.observeNegotiation(time.Millisecond)
		m.met.step(telemetry.StepCommitment).Observe(time.Millisecond)
		m.met.serverHealthGauges("server-1", 0, time.Time{})
	})
	if allocs != 0 {
		t.Fatalf("disabled-telemetry hot path allocated %.1f per run, want 0", allocs)
	}
}

// TestCachedNegotiateAllocBound pins the allocation count of a full cached
// negotiate-and-release cycle (telemetry disabled, candidate set memoized).
// The bound is deliberately loose — it exists to catch an accidental return
// of the eager fmt.Sprintf call sites or a cache regression that silently
// re-enumerates per request, either of which roughly doubles the count.
func TestCachedNegotiateAllocBound(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is noisy under -short race beds")
	}
	b := defaultBed(t)
	// Warm the cache and the lazy substrate (session table, path caches).
	for i := 0; i < 3; i++ {
		res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Succeeded {
			t.Fatalf("status = %v (%s)", res.Status, res.Reason)
		}
		windDown(t, b.man, res, 0)
	}
	hitsBefore := b.man.Stats().OfferCacheHits
	const runs = 100
	allocs := testing.AllocsPerRun(runs, func() {
		res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
		if err != nil || res.Session == nil {
			t.Fatalf("negotiate: %v (%+v)", err, res.Status)
		}
		if err := b.man.Reject(res.Session.ID); err != nil {
			t.Fatal(err)
		}
	})
	if got := b.man.Stats().OfferCacheHits; got < hitsBefore+runs {
		t.Fatalf("measured loop was not cache-hot: hits %d -> %d", hitsBefore, got)
	}
	const maxAllocs = 100 // measured ~56 on the reference container; headroom for GC noise
	if allocs > maxAllocs {
		t.Fatalf("cached negotiate+reject allocated %.1f per run, want <= %d", allocs, maxAllocs)
	}
}
