package core

import (
	"errors"
	"testing"
	"time"

	"qosneg/internal/media"
	"qosneg/internal/network"
	"qosneg/internal/qos"
)

func playingSession(t *testing.T, b *bed) *Session {
	t.Helper()
	res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Status.Reserved() {
		t.Fatalf("negotiation failed: %v (%s)", res.Status, res.Reason)
	}
	if err := b.man.Confirm(res.Session.ID); err != nil {
		t.Fatal(err)
	}
	return res.Session
}

func TestAdaptSwitchesOffer(t *testing.T) {
	b := defaultBed(t)
	s := playingSession(t, b)
	if err := b.man.Advance(s.ID, 45*time.Second); err != nil {
		t.Fatal(err)
	}
	before := s.Current.Key()

	// Degrade the server carrying the video stream so the current offer
	// can no longer be supported there.
	videoServer := s.Current.Choices[0].Variant.Server
	if err := b.servers[videoServer].SetDegradation(0.99); err != nil {
		t.Fatal(err)
	}

	tr, err := b.man.Adapt(s.ID)
	if err != nil {
		t.Fatalf("Adapt: %v", err)
	}
	if s.State() != Playing {
		t.Errorf("state after adaptation = %v", s.State())
	}
	if s.Current.Key() == before {
		t.Error("adaptation did not switch offers")
	}
	if tr.From.Key() != before || tr.To.Key() != s.Current.Key() {
		t.Errorf("transition = %s → %s", tr.From.Key(), tr.To.Key())
	}
	// Position-preserving restart.
	if tr.Position != int64(45*time.Second) || s.Position() != 45*time.Second {
		t.Errorf("position = %v / %v", tr.Position, s.Position())
	}
	if s.Transitions() != 1 {
		t.Errorf("transitions = %d", s.Transitions())
	}
	// The new video variant avoids the degraded server.
	if got := s.Current.Choices[0].Variant.Server; got == videoServer {
		t.Errorf("new offer still uses degraded server %s", got)
	}
	st := b.man.Stats()
	if st.Adaptations != 1 || st.AdaptationFailures != 0 {
		t.Errorf("stats = %+v", st)
	}
	// Resource accounting is consistent: exactly one commitment live.
	if b.net.ActiveReservations() != 2 {
		t.Errorf("network reservations = %d", b.net.ActiveReservations())
	}
}

func TestAdaptFailsWhenEverythingDegraded(t *testing.T) {
	b := defaultBed(t)
	s := playingSession(t, b)
	for _, srv := range b.servers {
		if err := srv.SetDegradation(0.999); err != nil {
			t.Fatal(err)
		}
	}
	_, err := b.man.Adapt(s.ID)
	if !errors.Is(err, ErrAdaptationFailed) {
		t.Fatalf("want ErrAdaptationFailed, got %v", err)
	}
	if s.State() != Aborted {
		t.Errorf("state = %v", s.State())
	}
	if b.net.ActiveReservations() != 0 {
		t.Error("failed adaptation leaked network reservations")
	}
	for _, srv := range b.servers {
		if srv.ActiveStreams() != 0 {
			t.Error("failed adaptation leaked server streams")
		}
	}
	st := b.man.Stats()
	if st.AdaptationFailures != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAdaptRequiresPlayingState(t *testing.T) {
	b := defaultBed(t)
	res, _ := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if _, err := b.man.Adapt(res.Session.ID); !errors.Is(err, ErrBadState) {
		t.Errorf("adapt on reserved session: %v", err)
	}
	if _, err := b.man.Adapt(12345); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("adapt on unknown session: %v", err)
	}
}

func TestAdaptAfterNetworkDegradation(t *testing.T) {
	b := defaultBed(t)
	s := playingSession(t, b)
	b.man.Advance(s.ID, 10*time.Second)

	// Choke the backbone of the video server's attachment link. The
	// alternate offers on the other server must take over.
	videoServer := s.Current.Choices[0].Variant.Server
	// Streams flow server → hub → client, i.e. over the backbone link's
	// reverse direction.
	link := "backbone-" + string(videoServer) + ":rev"
	if err := b.net.SetLinkDegradation(network.LinkID(link), 0.995); err != nil {
		t.Fatal(err)
	}
	victims := b.net.Overcommitted()
	if len(victims) == 0 {
		t.Fatal("expected network overcommitment")
	}
	// Map the victim back to the session, as the adaptation monitor does.
	found := false
	for _, v := range victims {
		if sess, ok := b.man.SessionByNetworkReservation(v.ID); ok && sess.ID == s.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("victim reservation not mapped to session")
	}
	if _, err := b.man.Adapt(s.ID); err != nil {
		t.Fatalf("Adapt: %v", err)
	}
	if s.State() != Playing || s.Transitions() != 1 {
		t.Errorf("state=%v transitions=%d", s.State(), s.Transitions())
	}
}

func TestSessionByServerReservation(t *testing.T) {
	b := defaultBed(t)
	s := playingSession(t, b)
	srvID := s.Current.Choices[0].Variant.Server
	// Degrade hard so every stream on that server is a victim.
	b.servers[srvID].SetDegradation(0.99)
	victims := b.servers[srvID].Overcommitted()
	if len(victims) == 0 {
		t.Fatal("expected server overcommitment")
	}
	sess, ok := b.man.SessionByServerReservation(srvID, victims[0].ID)
	if !ok || sess.ID != s.ID {
		t.Errorf("mapping failed: %v %v", sess, ok)
	}
	if _, ok := b.man.SessionByServerReservation("ghost", 1); ok {
		t.Error("ghost reservation mapped")
	}
}

// TestAdaptDropsToScalableLayer verifies that the adaptation procedure can
// fall back to a reduced temporal layer of the *same* scalable variant when
// the serving machine degrades: the INRS scalable-decoder path.
func TestAdaptDropsToScalableLayer(t *testing.T) {
	b := defaultBed(t)
	dur := 2 * time.Minute
	sv := media.VideoVariant("sv1", "server-1", media.ScalableMPEG,
		qos.VideoQoS{Color: qos.Color, FrameRate: 24, Resolution: qos.TVResolution}, dur)
	doc := media.Document{
		ID: "scalable-1", Title: "Scalable",
		Monomedia: []media.Monomedia{{
			ID: "video", Kind: qos.Video, Duration: dur,
			Variants: []media.Variant{sv},
		}},
	}
	if err := b.reg.Add(doc); err != nil {
		t.Fatal(err)
	}
	u := tvProfile()
	u.Desired.Audio = nil
	u.Worst.Audio = nil
	u.Desired.Video.FrameRate = 24
	u.Worst.Video.FrameRate = 6
	res, err := b.man.Negotiate(b.mach, "scalable-1", u)
	if err != nil || !res.Status.Reserved() {
		t.Fatalf("negotiate: %v %v", res.Status, err)
	}
	if got := res.Session.Current.Choices[0].Variant.QoS.Video.FrameRate; got != 24 {
		t.Fatalf("initial layer = %d fps", got)
	}
	b.man.Confirm(res.Session.ID)

	// Degrade server-1 so the full layer no longer fits but a reduced one
	// does. Full layer avg rate: blocks avg × 8 × 24; budget after 90%
	// degradation ≈ 6.4 Mbit/s minus seek overhead.
	full := sv.NetworkQoS().AvgBitRate
	t.Logf("full layer rate %v", full)
	if err := b.servers["server-1"].SetDegradation(0.96); err != nil {
		t.Fatal(err)
	}
	tr, err := b.man.Adapt(res.Session.ID)
	if err != nil {
		t.Fatalf("Adapt: %v", err)
	}
	got := tr.To.Choices[0].Variant
	if got.QoS.Video.FrameRate >= 24 {
		t.Errorf("adapted layer = %d fps, want a reduced layer", got.QoS.Video.FrameRate)
	}
	if got.Server != "server-1" {
		t.Errorf("adapted to server %s; the scalable fallback stays on the same file", got.Server)
	}
	if res.Session.State() != Playing {
		t.Errorf("state = %v", res.Session.State())
	}
}
