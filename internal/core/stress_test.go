package core_test

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qosneg/internal/core"
	"qosneg/internal/faults"
	"qosneg/internal/ledger"
	"qosneg/internal/sim"
	"qosneg/internal/telemetry"
	"qosneg/internal/testbed"
)

// TestLifecycleStress is the concurrent half of the chaos suite: where
// TestChaosWithFaultInjection drives one operation at a time and checks the
// resource invariant after every step, this harness runs many goroutines
// issuing Confirm/Reject/Expire/Adapt/Renegotiate/Complete/Abort against a
// shared session pool while servers crash and calls fail probabilistically —
// the interleavings the epoch guard exists for. Mid-run state is
// unobservable under true concurrency, so the assertion is the lifecycle
// invariant at quiescence: once every session is terminal, the resource
// ledger balances to zero and nothing was ever double-released.
//
// Run it longer with `make stress` (QOSNEG_STRESS_ITERS scales the per-worker
// operation count).
func TestLifecycleStress(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1996} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runLifecycleStress(t, seed)
		})
	}
}

func stressIters() int {
	if s := os.Getenv("QOSNEG_STRESS_ITERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	if testing.Short() {
		return 60
	}
	return 250
}

func runLifecycleStress(t *testing.T, seed int64) {
	inj := faults.New(seed)
	opts := core.DefaultOptions()
	// A cooldown far below the run's wall time, so capacity-full commit
	// failures don't park both servers for the rest of the run.
	opts.Health = core.HealthPolicy{
		FailureThreshold: 6,
		Cooldown:         200 * time.Microsecond,
		RetryAfter:       50 * time.Microsecond,
	}
	reg := telemetry.NewRegistry()
	opts.Metrics = reg
	bed := testbed.MustNew(testbed.Spec{Faults: inj, Options: &opts})
	bed.Ledger.Instrument(reg)
	bed.Ledger.OnViolation(func(v string) {
		t.Errorf("seed %d: %s", seed, v)
	})
	if _, err := bed.AddNewsArticle("news-1", "Election night", 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	// Land a terminal transition inside every fourth unlock window. Natural
	// preemption rarely hits the microsecond-wide window (and never will on
	// a single-CPU runner), so the harness forces the interleaving the epoch
	// guard exists for; the guard must absorb it leak-free.
	var windows uint64
	bed.Manager.(*core.Manager).SetTestHookUnlocked(func(op string, id core.SessionID) {
		if atomic.AddUint64(&windows, 1)%4 != 0 {
			return
		}
		if op == "adapt" {
			bed.Manager.Abort(id)
		} else {
			bed.Manager.Expire(id)
		}
	})

	// Shared pool of session ids every worker picks targets from, so the
	// same session sees concurrent Confirm, Abort and Adapt calls.
	var mu sync.Mutex
	var live []core.SessionID
	addLive := func(id core.SessionID) {
		mu.Lock()
		live = append(live, id)
		mu.Unlock()
	}
	pickLive := func(r *sim.Rand) (core.SessionID, bool) {
		mu.Lock()
		defer mu.Unlock()
		if len(live) == 0 {
			return 0, false
		}
		return live[r.Intn(len(live))], true
	}

	iters := stressIters()
	workers := 8
	serverIDs := bed.ServerIDs()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		rng := sim.NewRand(seed + int64(w)*7919)
		wg.Add(1)
		go func(rng *sim.Rand) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch rng.Intn(16) {
				case 0, 1, 2, 3: // negotiate; any status is legal under injection
					res, err := bed.Manager.Negotiate(bed.Client(1+rng.Intn(2)), "news-1", chaosProfile())
					if err != nil {
						t.Errorf("seed %d: Negotiate: %v", seed, err)
						return
					}
					if res.Session != nil {
						addLive(res.Session.ID)
					}
				case 4, 5:
					if id, ok := pickLive(rng); ok {
						bed.Manager.Confirm(id)
					}
				case 6:
					if id, ok := pickLive(rng); ok {
						bed.Manager.Reject(id)
					}
				case 7: // the choice-period timer firing mid-anything
					if id, ok := pickLive(rng); ok {
						bed.Manager.Expire(id)
					}
				case 8, 9: // adaptation racing the terminal transitions
					if id, ok := pickLive(rng); ok {
						bed.Manager.Adapt(id)
					}
				case 10: // adaptation under a deadline
					if id, ok := pickLive(rng); ok {
						ctx, cancel := context.WithTimeout(context.Background(), time.Duration(rng.Intn(3))*time.Millisecond)
						bed.Manager.AdaptContext(ctx, id)
						cancel()
					}
				case 11: // renegotiation racing Expire/Reject/Abort
					if id, ok := pickLive(rng); ok {
						bed.Manager.Renegotiate(id, chaosProfile())
					}
				case 12: // focused window race: long procedure vs terminal op
					res, err := bed.Manager.Negotiate(bed.Client(1+rng.Intn(2)), "news-1", chaosProfile())
					if err != nil {
						t.Errorf("seed %d: Negotiate: %v", seed, err)
						return
					}
					if res.Session == nil {
						continue
					}
					s := res.Session
					id := s.ID
					addLive(id)
					adapt := rng.Intn(2) == 0
					if adapt && bed.Manager.Confirm(id) != nil {
						continue
					}
					// Fire the terminal op as soon as the session's epoch
					// moves — the procedure's withdrawal bump — so it lands
					// inside the unlock window rather than reliably before
					// or after it. The spin is bounded: every entry-refusal
					// path implies some other transition already bumped the
					// epoch, but a cap keeps a surprise from hanging the
					// test.
					e0 := s.Epoch()
					var race sync.WaitGroup
					race.Add(1)
					terminal := bed.Manager.Abort
					if !adapt {
						terminal = bed.Manager.Expire
					}
					go func() {
						defer race.Done()
						for spin := 0; s.Epoch() == e0 && spin < 1<<22; spin++ {
							runtime.Gosched()
						}
						terminal(id)
					}()
					if adapt {
						bed.Manager.Adapt(id)
					} else {
						bed.Manager.Renegotiate(id, chaosProfile())
					}
					race.Wait()
				case 13:
					if id, ok := pickLive(rng); ok {
						bed.Manager.Advance(id, time.Second)
						bed.Manager.Complete(id)
					}
				case 14:
					if id, ok := pickLive(rng); ok {
						bed.Manager.Abort(id)
					}
				case 15: // fault weather: crashes, restarts, failure rates
					id := serverIDs[rng.Intn(len(serverIDs))]
					s, ok := inj.Server(id)
					if !ok {
						continue
					}
					switch rng.Intn(4) {
					case 0:
						s.Crash()
					case 1:
						s.CrashAfterReserves(1 + rng.Intn(2))
					case 2:
						s.Restart()
					default:
						inj.SetReserveFailure(float64(rng.Intn(2)) * 0.2)
						inj.SetConnectFailure(float64(rng.Intn(2)) * 0.15)
					}
				}
			}
		}(rng)
	}
	wg.Wait()

	// Heal the world and wind every session down to a terminal state.
	inj.SetReserveFailure(0)
	inj.SetConnectFailure(0)
	for _, id := range serverIDs {
		inj.Restart(id)
	}
	mu.Lock()
	ids := append([]core.SessionID(nil), live...)
	mu.Unlock()
	for _, id := range ids {
		bed.Manager.Abort(id)
	}
	for _, state := range []core.SessionState{core.Reserved, core.Playing} {
		if ss := bed.Manager.Sessions(state); len(ss) != 0 {
			t.Fatalf("seed %d: %d sessions still %v after wind-down", seed, len(ss), state)
		}
	}

	// The lifecycle invariant: all sessions terminal ⇒ the ledger is empty.
	if err := bed.Ledger.CheckEmpty(); err != nil {
		t.Errorf("seed %d: %v", seed, err)
	}
	if got := bed.Network.ActiveReservations(); got != 0 {
		t.Errorf("seed %d: %d network reservations leaked", seed, got)
	}
	for id, srv := range bed.Servers {
		if srv.ActiveStreams() != 0 {
			t.Errorf("seed %d: server %s leaked %d streams", seed, id, srv.ActiveStreams())
		}
	}
	if v := reg.Counter(ledger.MetricLeaked, "").Value(); v != 0 {
		t.Errorf("seed %d: %s = %d, want 0", seed, ledger.MetricLeaked, v)
	}
	// Stale installs are the guard doing its job under contention — log the
	// count so a run that never exercised the race is visible.
	st := bed.Manager.Stats()
	t.Logf("seed %d: %d sessions, %d adaptations, %d stale installs",
		seed, len(ids), st.Adaptations, st.StaleInstalls)
}
