package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"qosneg/internal/client"
	"qosneg/internal/cmfs"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/network"
	"qosneg/internal/qos"
	"qosneg/internal/registry"
	"qosneg/internal/transport"
)

// tracedBed builds a bed whose manager records trace events.
func tracedBed(t *testing.T, events *[]TraceEvent) *bed {
	t.Helper()
	net, err := network.BuildStar(network.StarSpec{
		Clients: []network.NodeID{"client-1"},
		Servers: []network.NodeID{"server-1", "server-2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	opts := DefaultOptions()
	opts.Trace = func(e TraceEvent) { *events = append(*events, e) }
	man := NewManager(reg, transport.New(net, 3), cost.DefaultPricing(), opts)
	b := &bed{reg: reg, net: net, man: man, servers: map[media.ServerID]*cmfs.Server{}}
	for _, id := range []media.ServerID{"server-1", "server-2"} {
		s := cmfs.MustServer(id, cmfs.DefaultConfig())
		b.servers[id] = s
		man.AddServer(s, network.NodeID(id))
	}
	doc := media.BuildNewsArticle(media.NewsArticleSpec{
		ID: "news-1", Title: "T", Duration: time.Minute,
		Servers: []media.ServerID{"server-1", "server-2"},
		VideoQualities: []qos.VideoQoS{
			{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			{Color: qos.Grey, FrameRate: 15, Resolution: qos.TVResolution},
		},
		AudioQualities: []qos.AudioQoS{{Grade: qos.CDQuality}},
	})
	if err := reg.Add(doc); err != nil {
		t.Fatal(err)
	}
	b.mach = client.Workstation("client-1", "client-1")
	b.doc = doc
	return b
}

func TestTraceSuccessfulNegotiation(t *testing.T) {
	var events []TraceEvent
	b := tracedBed(t, &events)
	res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil || !res.Status.Reserved() {
		t.Fatalf("negotiate: %v %v", res.Status, err)
	}
	if len(events) < 2 {
		t.Fatalf("events = %+v", events)
	}
	first, last := events[0], events[len(events)-1]
	if first.Step != "commit-attempt" {
		t.Errorf("first event = %+v", first)
	}
	if last.Step != "committed" || last.Detail != "SUCCEEDED" {
		t.Errorf("last event = %+v", last)
	}
	if last.Offer != res.Session.Current.Key() {
		t.Errorf("committed offer %q vs session %q", last.Offer, res.Session.Current.Key())
	}
}

func TestTraceExhaustion(t *testing.T) {
	var events []TraceEvent
	b := tracedBed(t, &events)
	for _, srv := range b.servers {
		srv.SetDegradation(0.999)
	}
	res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != FailedTryLater {
		t.Fatalf("status = %v", res.Status)
	}
	attempts, failures, exhausted := 0, 0, 0
	for _, e := range events {
		switch e.Step {
		case "commit-attempt":
			attempts++
		case "commit-failed":
			failures++
		case "exhausted":
			exhausted++
		}
	}
	if attempts == 0 || attempts != failures || exhausted != 1 {
		t.Errorf("attempts=%d failures=%d exhausted=%d", attempts, failures, exhausted)
	}
}

func TestTraceLocalFailure(t *testing.T) {
	var events []TraceEvent
	b := tracedBed(t, &events)
	mach := b.mach
	mach.Display.Color = qos.BlackWhite
	if _, err := b.man.Negotiate(mach, "news-1", tvProfile()); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Step != "local-failed" {
		t.Fatalf("events = %+v", events)
	}
	if !strings.Contains(events[0].Detail, "color") {
		t.Errorf("detail = %q", events[0].Detail)
	}
}

func TestRevenueAccumulatesOnCompletion(t *testing.T) {
	b := defaultBed(t)
	res, _ := b.man.Negotiate(b.mach, "news-1", tvProfile())
	price := res.Session.Cost()
	b.man.Confirm(res.Session.ID)
	b.man.Complete(res.Session.ID)
	if got := b.man.Stats().Revenue; got != price {
		t.Errorf("revenue = %v, want %v", got, price)
	}
	// Rejected sessions earn nothing.
	res2, _ := b.man.Negotiate(b.mach, "news-1", tvProfile())
	b.man.Reject(res2.Session.ID)
	if got := b.man.Stats().Revenue; got != price {
		t.Errorf("revenue after reject = %v", got)
	}
	// Aborted sessions earn nothing either.
	res3, _ := b.man.Negotiate(b.mach, "news-1", tvProfile())
	b.man.Confirm(res3.Session.ID)
	b.man.Abort(res3.Session.ID)
	if got := b.man.Stats().Revenue; got != price {
		t.Errorf("revenue after abort = %v", got)
	}
}

func TestManagerInvoice(t *testing.T) {
	b := defaultBed(t)
	res, _ := b.man.Negotiate(b.mach, "news-1", tvProfile())
	inv, err := b.man.Invoice(res.Session.ID)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Total != res.Session.Cost() {
		t.Errorf("invoice total %v vs session cost %v", inv.Total, res.Session.Cost())
	}
	if len(inv.Lines) != 2 {
		t.Fatalf("lines = %+v", inv.Lines)
	}
	if inv.Lines[0].Label != "video" || inv.Lines[1].Label != "audio" {
		t.Errorf("labels = %q, %q", inv.Lines[0].Label, inv.Lines[1].Label)
	}
	if !strings.Contains(inv.String(), "news-1") {
		t.Error("document missing from rendering")
	}
	if _, err := b.man.Invoice(999); err == nil {
		t.Error("unknown session invoiced")
	}
}

func TestConcurrentManagerStress(t *testing.T) {
	b := defaultBed(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
				if err != nil {
					t.Error(err)
					return
				}
				if res.Session == nil {
					continue
				}
				id := res.Session.ID
				switch (g + i) % 4 {
				case 0:
					b.man.Reject(id)
				case 1:
					b.man.Confirm(id)
					b.man.Advance(id, time.Second)
					b.man.Complete(id)
				case 2:
					b.man.Renegotiate(id, tvProfile())
					b.man.Abort(id)
				default:
					b.man.Confirm(id)
					b.man.Adapt(id) // healthy system: usually succeeds or errs cleanly
					b.man.Abort(id)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := b.net.ActiveReservations(); got != 0 {
		t.Errorf("leaked %d network reservations", got)
	}
	for id, srv := range b.servers {
		if srv.ActiveStreams() != 0 {
			t.Errorf("server %s leaked %d streams", id, srv.ActiveStreams())
		}
	}
}
