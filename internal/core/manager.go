package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"qosneg/internal/admission"
	"qosneg/internal/client"
	"qosneg/internal/cmfs"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/network"
	"qosneg/internal/offer"
	"qosneg/internal/offercache"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
	"qosneg/internal/registry"
	"qosneg/internal/telemetry"
	"qosneg/internal/transport"
)

// ErrUnknownSession is returned for operations on sessions the manager does
// not hold.
var ErrUnknownSession = errors.New("core: unknown session")

// ErrBadState is returned when a session operation is invalid in the
// session's current state.
var ErrBadState = errors.New("core: invalid session state")

// ErrAdaptationFailed is returned when no alternate system offer can be
// committed for a degraded session.
var ErrAdaptationFailed = errors.New("core: adaptation failed, no alternate offer supportable")

// ErrChoicePeriodExpired is returned for operations on a session whose
// choice period elapsed before the user confirmed (step 6's time-out: "If a
// time-out is reached the session is simply aborted").
var ErrChoicePeriodExpired = errors.New("core: choice period expired")

// TraceEvent records one decision of the negotiation procedure; install a
// tracer via Options.Trace to see why the QoS manager picked (or skipped)
// each offer — the explainability side of "smart negotiation".
type TraceEvent struct {
	// Step names the decision point: "local-failed", "no-variant",
	// "commit-attempt", "choice-committed", "commit-failed", "committed",
	// "exhausted".
	Step string
	// Offer is the offer key at commit decision points.
	Offer string
	// Detail carries the status, OIF or failure reason.
	Detail string
}

// Options tunes the QoS manager.
type Options struct {
	// Classifier orders the feasible offers; nil selects the paper's
	// SNS-primary classification. Classifiers that also implement
	// offer.Orderer (all built-ins do) run on the streaming parallel
	// pipeline; others fall back to materialize-and-sort.
	Classifier offer.Classifier
	// Trace, when non-nil, receives a TraceEvent per negotiation
	// decision. Must be fast and non-blocking; called on the negotiating
	// goroutine.
	Trace func(TraceEvent)
	// ChoicePeriod is the default confirmation window when the user
	// profile does not set one (Section 8).
	ChoicePeriod time.Duration
	// MaxOffers bounds offer enumeration.
	MaxOffers int
	// PathAlternates is how many candidate network paths the transport
	// system tries per stream.
	PathAlternates int
	// Concurrency bounds the pipeline's worker pool per negotiation;
	// 0 selects GOMAXPROCS.
	Concurrency int
	// TopK bounds how many classified offers each negotiation keeps for
	// commitment and later adaptation; 0 selects DefaultTopK, negative
	// keeps the full classified set.
	TopK int
	// Health tunes the per-server circuit breaker; the zero value keeps
	// the consecutive-failure breaker off (hard server-down evidence
	// still quarantines).
	Health HealthPolicy
	// OfferCache sizes the candidate-set cache memoizing the static half
	// of the procedure (step-2 filtering, §6 mapping, §7 per-variant
	// pricing) across negotiations: 0 selects offercache.DefaultSize,
	// negative disables caching.
	OfferCache int
	// Metrics, when non-nil, receives the manager's counters, gauges and
	// latency histograms (outcomes by status, per-step and end-to-end
	// negotiation latency, commit failures by cause, breaker state,
	// adaptations, revenue). Nil (telemetry.Noop) disables recording at
	// zero cost.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, receives typed span events for the six
	// negotiation steps and the failure paths (skip-dead, quarantine,
	// adaptation). It supersedes Trace, which survives for string-oriented
	// consumers; both may be installed. Like Trace it runs on the
	// negotiating goroutine and must be fast and non-blocking.
	Tracer telemetry.Tracer
	// Admission, when non-nil, gates every negotiation before step 1:
	// work the controller refuses is answered FAILEDTRYLATER with the
	// controller's load-derived RetryAfter hint and Result.Shed set,
	// without running the procedure. Nil disables admission control at
	// zero cost.
	Admission *admission.Controller
	// NextSessionID, when non-nil, replaces the manager's private id
	// counter: every reserved session gets the allocator's next id. A
	// sharded fleet installs a per-shard allocator that only emits ids
	// hashing back to that shard, so a session is always resident where the
	// consistent-hash router will look for it — and fleet-wide uniqueness
	// follows from the hash partitions being disjoint, with no cross-shard
	// coordination. Called under the session-table lock; must be fast.
	NextSessionID func() SessionID
	// OnQuarantine, when non-nil, fires after this manager's circuit
	// breaker trips a quarantine (not on externally applied evidence — see
	// ApplyQuarantine). The sharded fleet uses it to publish breaker
	// evidence on the update bus so sibling shards stop offering the dead
	// server too. Runs on the negotiating goroutine; must be fast and
	// non-blocking.
	OnQuarantine func(id media.ServerID, until time.Time)
	// ShardLabel, when non-empty, labels this manager's negotiation-latency
	// histogram with a "shard" dimension instead of registering the plain
	// series — so a fleet's shards share one metrics registry without
	// colliding, and per-shard latency is visible. Empty (the default)
	// keeps the unsharded series exactly as before.
	ShardLabel string
	// Selection, when non-nil, may reorder step 5's commitment attempts
	// among offers the classifier ranked equal — same Status, same OIF —
	// and nothing else, so classification stays normative (see policy.go).
	// Policies that implement PolicyObserver learn from every commit
	// outcome. Nil keeps the paper's fixed tie-break order byte-for-byte at
	// zero cost.
	Selection SelectionPolicy
	// Adaptation is Selection's counterpart for the adaptation procedure's
	// target order; the same object may serve both roles.
	Adaptation AdaptationPolicy
}

// DefaultTopK is how many classified offers a negotiation retains by
// default: enough alternates for step 5's fallback commitment and the
// adaptation procedure, without holding a 2^20-offer product per session.
const DefaultTopK = 64

// topK resolves the classification bound.
func (o Options) topK() int {
	switch {
	case o.TopK == 0:
		return DefaultTopK
	case o.TopK < 0:
		return 0
	default:
		return o.TopK
	}
}

// DefaultOptions returns the options used by the examples: SNS-primary
// classification, a 30-second choice period and 3 path alternates.
func DefaultOptions() Options {
	return Options{
		Classifier:     offer.SNSPrimary{},
		ChoicePeriod:   30 * time.Second,
		MaxOffers:      1 << 16,
		PathAlternates: 3,
	}
}

// Result is the outcome of a negotiation: the negotiation status and,
// depending on it, a user offer, a reserved session, local-negotiation
// violations, or a diagnostic reason.
type Result struct {
	Status NegotiationStatus
	// Offer is the user offer: the committed offer for SUCCEEDED and
	// FAILEDWITHOFFER, the clamped local offer for FAILEDWITHLOCALOFFER,
	// nil otherwise.
	Offer *profile.MMProfile
	// Session is the reserved session awaiting confirmation, non-nil iff
	// Status.Reserved().
	Session *Session
	// Violations lists the failed client-capability checks for
	// FAILEDWITHLOCALOFFER.
	Violations []client.LocalViolation
	// Reason carries a human-readable diagnostic for the failure
	// statuses.
	Reason string
	// RetryAfter is the retry hint for FAILEDTRYLATER: how long the
	// caller should wait before renegotiating (the longest remaining
	// server quarantine, the policy's RetryAfter for plain capacity
	// shortage, or the admission controller's load-derived hint for a
	// shed). Zero for every other status.
	RetryAfter time.Duration
	// Shed marks a FAILEDTRYLATER produced by admission control: the
	// procedure never ran and no resources were touched, so the caller
	// should simply retry after RetryAfter.
	Shed bool
}

// MediaServer is the continuous-media server surface the manager commits
// against. *cmfs.Server implements it; the fault injector (package faults)
// wraps it to simulate crashes and admission failures.
type MediaServer interface {
	ID() media.ServerID
	Config() cmfs.Config
	Reserve(q qos.NetworkQoS) (cmfs.Reservation, error)
	Release(id cmfs.ReservationID) error
	ActiveStreams() int
	Utilization() float64
}

// Transport is the connection-establishment surface the manager commits
// against. *transport.System implements it; the fault injector wraps it to
// simulate partitions and connect failures.
type Transport interface {
	Connect(src, dst network.NodeID, q qos.NetworkQoS) (transport.Connection, error)
	Close(c transport.Connection) error
}

// Manager is the QoS manager: it owns the negotiation procedure, the
// session table and the adaptation procedure. It is safe for concurrent
// use: the negotiation pipeline runs lock-free, and independent
// negotiations from different clients proceed concurrently — the manager's
// locks only cover the session table, the server registry and the outcome
// counters, each separately.
type Manager struct {
	registry  *registry.Registry
	transport Transport
	opts      Options
	// cache memoizes per-(document, machine class, guarantee, exclusion
	// world) candidate sets, generation-checked against the registry and
	// pricing; nil when Options.OfferCache is negative.
	cache *offercache.Cache
	// priceMu guards pricing and pricingGen; SetPricing swaps the tables
	// and bumps the generation, lazily invalidating memoized candidates
	// priced under the old tables.
	priceMu    sync.RWMutex
	pricing    cost.Pricing
	pricingGen uint64
	// met caches the metric series when Options.Metrics is set; nil means
	// metrics disabled (every recording helper nil-checks).
	met *negMetrics
	// now is the clock the circuit breaker and latency metrics use; tests
	// may override it.
	now func() time.Time
	// testHookUnlocked, when non-nil, fires at the start of every unlock
	// window — after a procedure has withdrawn and released a session's
	// commitment but before it re-locks to install the replacement. The
	// lifecycle race tests use it to force deterministic interleavings;
	// it is never set outside tests.
	testHookUnlocked func(op string, id SessionID)

	// sessMu guards the session table and id counter only; negotiations
	// never hold it while enumerating, classifying or committing.
	sessMu   sync.RWMutex
	sessions map[SessionID]*Session
	nextID   SessionID

	// srvMu guards the (read-mostly) server registry.
	srvMu   sync.RWMutex
	servers map[media.ServerID]serverEntry

	// healthMu guards the per-server circuit-breaker state.
	healthMu sync.Mutex
	health   map[media.ServerID]*serverHealth
	// observers is the learning surface of the installed policies, resolved
	// once at construction; empty when no policy learns.
	observers []PolicyObserver

	// statsMu guards the outcome counters.
	statsMu sync.Mutex
	stats   Stats
}

type serverEntry struct {
	server MediaServer
	node   network.NodeID
}

// Stats counts negotiation outcomes.
type Stats struct {
	Requests             int
	Succeeded            int
	FailedWithOffer      int
	FailedTryLater       int
	FailedWithoutOffer   int
	FailedWithLocalOffer int
	Adaptations          int
	AdaptationFailures   int
	// Per-cause commit-failure counters: how many resource-commitment
	// attempts failed because a server was down (or quarantined), because
	// of a capacity shortage, or because of a hard profile constraint.
	CommitServerDown int
	CommitCapacity   int
	CommitConstraint int
	// Quarantines counts circuit-breaker trips.
	Quarantines int
	// StaleInstalls counts commitments the epoch guard released instead of
	// installing: a concurrent transition (abort, time-out, completion)
	// ended the session while an adaptation or renegotiation was committing
	// off-lock. Each one is a reservation leak prevented.
	StaleInstalls int
	// AdmissionSheds counts requests the admission controller refused
	// before step 1; each is also counted under Requests and
	// FailedTryLater, since the caller saw a FAILEDTRYLATER result.
	AdmissionSheds int
	// Offer-cache counters, snapshotted from the candidate-set cache: how
	// many negotiations reused a memoized candidate set, how many computed
	// one fresh, how many entries were dropped because a generation or
	// exclusion world moved, and how many entries are live.
	OfferCacheHits          int
	OfferCacheMisses        int
	OfferCacheInvalidations int
	OfferCacheEntries       int
	// Revenue accumulates the price of completed sessions, in
	// milli-dollars: the system only bills for deliveries that finished.
	Revenue cost.Money
}

// NewManager builds a QoS manager over the given substrate.
func NewManager(reg *registry.Registry, ts Transport, pricing cost.Pricing, opts Options) *Manager {
	if opts.Classifier == nil {
		opts.Classifier = offer.SNSPrimary{}
	}
	if opts.ChoicePeriod <= 0 {
		opts.ChoicePeriod = 30 * time.Second
	}
	m := &Manager{
		registry:  reg,
		transport: ts,
		pricing:   pricing,
		opts:      opts,
		met:       newNegMetrics(opts.Metrics, opts.ShardLabel),
		now:       time.Now,
		servers:   make(map[media.ServerID]serverEntry),
		health:    make(map[media.ServerID]*serverHealth),
		sessions:  make(map[SessionID]*Session),
		observers: policyObservers(opts.Selection, opts.Adaptation),
	}
	if opts.OfferCache >= 0 {
		m.cache = offercache.New(opts.OfferCache)
	}
	return m
}

// SetPricing atomically replaces the pricing tables and bumps the pricing
// generation: every candidate set memoized under the old tables fails its
// next generation check and is recomputed.
func (m *Manager) SetPricing(p cost.Pricing) {
	m.priceMu.Lock()
	m.pricing = p
	m.pricingGen++
	m.priceMu.Unlock()
}

// pricingSnapshot reads the pricing tables and their generation atomically.
func (m *Manager) pricingSnapshot() (cost.Pricing, uint64) {
	m.priceMu.RLock()
	defer m.priceMu.RUnlock()
	return m.pricing, m.pricingGen
}

// AddServer registers a media file server and its network attachment point.
func (m *Manager) AddServer(s MediaServer, node network.NodeID) {
	m.srvMu.Lock()
	defer m.srvMu.Unlock()
	m.servers[s.ID()] = serverEntry{server: s, node: node}
}

// Stats returns a snapshot of the outcome counters, merged with the offer
// cache's counters when caching is enabled.
func (m *Manager) Stats() Stats {
	m.statsMu.Lock()
	st := m.stats
	m.statsMu.Unlock()
	if m.cache != nil {
		cs := m.cache.Stats()
		st.OfferCacheHits = int(cs.Hits)
		st.OfferCacheMisses = int(cs.Misses)
		st.OfferCacheInvalidations = int(cs.Invalidations)
		st.OfferCacheEntries = int(cs.Entries)
	}
	return st
}

// negOutcome is the result of the session-independent part of the
// negotiation procedure: steps 1–5 without session bookkeeping.
type negOutcome struct {
	status     NegotiationStatus
	reason     string
	violations []client.LocalViolation
	localOffer *profile.MMProfile
	// ranked is the classified offer list (steps 3–4), bounded by
	// Options.TopK; set whenever enumeration succeeded.
	ranked []offer.Ranked
	// chosen and commit are set when resources were reserved.
	chosen offer.Ranked
	commit commitment
	// retryAfter is the FAILEDTRYLATER hint.
	retryAfter time.Duration
}

// trace emits a trace event when a tracer is installed.
func (m *Manager) trace(step, offerKey, detail string) {
	if m.opts.Trace != nil {
		m.opts.Trace(TraceEvent{Step: step, Offer: offerKey, Detail: detail})
	}
}

// hookUnlocked fires the test-only unlock-window hook.
func (m *Manager) hookUnlocked(op string, id SessionID) {
	if m.testHookUnlocked != nil {
		m.testHookUnlocked(op, id)
	}
}

// abortWindow closes an unlock window that produced no new commitment: the
// session is aborted unless a concurrent transition already ended it (the
// epoch guard detects that), and the busy marker is cleared. The caller
// has already withdrawn and released the old commitment, so there is
// nothing to free here.
func (m *Manager) abortWindow(s *Session, epoch uint64, expect SessionState) {
	s.mu.Lock()
	if s.state == expect && s.epoch == epoch {
		s.state = Aborted
		s.epoch++
	}
	s.busy = false
	s.mu.Unlock()
}

// recordStaleInstall counts one epoch-guard save: a freshly committed
// configuration released instead of installed because the session moved on
// while it was unlocked.
func (m *Manager) recordStaleInstall(procedure string, id SessionID, st SessionState) {
	m.met.staleInstall(procedure)
	m.statsMu.Lock()
	m.stats.StaleInstalls++
	m.statsMu.Unlock()
	if m.tracing() {
		detail := fmt.Sprintf("session %d reached %v mid-%s; fresh commitment released", id, st, procedure)
		m.trace("stale-install", "", detail)
		m.span(telemetry.Event{Step: telemetry.StepCommitment, Status: "stale-install", Detail: detail})
	}
}

// candidateSet resolves the step-2 candidate set for one negotiation: a
// memoized set when the cache holds a coherent entry for (document, machine
// class, guarantee, exclusion world) at the caller's generations, a fresh
// Filter pass otherwise, stored for the next request under the generations
// it was computed from. Every input of the filter/mapping/pricing
// computation is either part of the cache key or generation-checked, so a
// hit is byte-equivalent to recomputing.
func (m *Manager) candidateSet(ctx context.Context, doc media.Document, docGen uint64, mach client.Machine, g cost.Guarantee, exclude func(media.Variant) bool, exclHash uint64) (offer.Candidates, []offer.SystemOffer, error) {
	pricing, pricingGen := m.pricingSnapshot()
	workers := m.opts.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if m.cache == nil {
		cands, err := offer.Filter(ctx, doc, mach, pricing, g, workers, exclude)
		return cands, nil, err
	}
	key := offercache.Key{Doc: doc.ID, Machine: mach.Fingerprint(), Guarantee: g, Exclusion: exclHash}
	cands, offers, out := m.cache.Lookup(key, docGen, pricingGen)
	m.met.offerCacheLookup(out)
	if out == offercache.Hit {
		return cands, offers, nil
	}
	cands, err := offer.Filter(ctx, doc, mach, pricing, g, workers, exclude)
	if err != nil {
		return nil, nil, err
	}
	// Memoize the built product too when it is small enough to hold: hits
	// then skip per-offer materialization entirely, not just the filter.
	var offers2 []offer.SystemOffer
	if cands.Offers() <= offercache.MaterializeLimit {
		if offers2, err = offer.FromCandidates(doc, cands, m.opts.MaxOffers); err != nil {
			return nil, nil, err
		}
	}
	m.cache.Store(key, docGen, pricingGen, cands, offers2)
	m.met.offerCacheEntries(m.cache.Len())
	return cands, offers2, nil
}

// classify runs steps 2–4: enumeration, classification parameters and
// classification, over the (possibly memoized) candidate set. Orderer-capable
// classifiers (all built-ins) run the streaming parallel pipeline, which
// keeps only the top-K offers; other classifiers materialize the product and
// sort it. An exclude filter (the quarantine set) drops variants on
// unhealthy servers before the product is built, so the pipeline exploits
// the paper's multi-server variant redundancy instead of burning commit
// attempts on dead replicas; exclHash names that exclusion world in the
// cache key.
func (m *Manager) classify(ctx context.Context, doc media.Document, docGen uint64, mach client.Machine, u profile.UserProfile, exclude func(media.Variant) bool, exclHash uint64, t *stepTimer) ([]offer.Ranked, error) {
	cands, prebuilt, err := m.candidateSet(ctx, doc, docGen, mach, u.Desired.Cost.Guarantee, exclude, exclHash)
	if err != nil {
		t.lap(telemetry.StepCompatibilityCheck)
		return nil, err
	}
	if orderer, ok := m.opts.Classifier.(offer.Orderer); ok {
		ranked, err := offer.TopKFromCandidates(ctx, doc, cands, u, offer.PipelineOptions{
			MaxOffers: m.opts.MaxOffers,
			Workers:   m.opts.Concurrency,
			TopK:      m.opts.topK(),
			Orderer:   orderer,
			Prebuilt:  prebuilt,
		})
		// The fused pipeline performs steps 2-4 in one streaming pass, so
		// a single classification lap covers compatibility checking,
		// classification parameters and classification.
		t.lap(telemetry.StepClassification)
		return ranked, err
	}
	offers := prebuilt
	if offers == nil {
		if offers, err = offer.FromCandidates(doc, cands, m.opts.MaxOffers); err != nil {
			t.lap(telemetry.StepCompatibilityCheck)
			return nil, err
		}
	}
	t.lap(telemetry.StepCompatibilityCheck)
	ranked := offer.Rank(offers, u)
	t.lap(telemetry.StepClassificationParams)
	m.opts.Classifier.Sort(ranked)
	t.lap(telemetry.StepClassification)
	return ranked, nil
}

// runProcedure executes steps 1–5 of Section 4. docGen is the registry
// generation doc was snapshotted at; the offer cache validates entries
// against it.
func (m *Manager) runProcedure(ctx context.Context, mach client.Machine, doc media.Document, docGen uint64, u profile.UserProfile) (negOutcome, error) {
	t := m.stepTimer()
	// Step 1: static local negotiation.
	if violations := mach.CheckLocal(u.Desired); len(violations) > 0 {
		local := mach.LocalOffer(u.Desired)
		t.lap(telemetry.StepLocalNegotiation)
		if m.tracing() {
			detail := violations[0].String()
			m.trace("local-failed", "", detail)
			m.span(telemetry.Event{Step: telemetry.StepLocalNegotiation, Status: "failed", Detail: detail})
		}
		return negOutcome{
			status:     FailedWithLocalOffer,
			localOffer: &local,
			violations: violations,
			reason:     fmt.Sprintf("client machine cannot render the requested QoS: %v", violations[0]),
		}, nil
	}
	t.lap(telemetry.StepLocalNegotiation)

	// Steps 2–4: static compatibility checking, offer enumeration,
	// classification parameters and classification, on the streaming
	// parallel pipeline. Variants on quarantined servers are excluded up
	// front: the breaker already has evidence they cannot commit.
	exclude, quarRemain, exclHash := m.quarantineExclude()
	ranked, err := m.classify(ctx, doc, docGen, mach, u, exclude, exclHash, &t)
	if err != nil {
		var nv *offer.NoVariantError
		if errors.As(err, &nv) {
			if nv.Excluded {
				// Decodable variants exist but every one lives on a
				// quarantined server: a transient shortage, not a
				// structural mismatch.
				if m.tracing() {
					detail := fmt.Sprintf("%s (all variants quarantined)", nv.Monomedia)
					m.trace("no-variant", "", detail)
					m.span(telemetry.Event{Step: telemetry.StepClassification, Status: "no-variant", Detail: detail})
				}
				return negOutcome{
					status:     FailedTryLater,
					retryAfter: maxDuration(quarRemain, m.opts.Health.retryAfter()),
					reason:     fmt.Sprintf("every decodable variant of %s is on a quarantined server", nv.Monomedia),
				}, nil
			}
			m.trace("no-variant", "", string(nv.Monomedia))
			m.span(telemetry.Event{Step: telemetry.StepClassification, Status: "no-variant", Detail: string(nv.Monomedia)})
			return negOutcome{
				status: FailedWithoutOffer,
				reason: fmt.Sprintf("no feasible physical configuration: %v", err),
			}, nil
		}
		return negOutcome{}, err
	}
	acceptable, feasible := offer.Partition(ranked, u)

	// Step 5: resource commitment, acceptable set first. Offers touching
	// a server that already failed as down this negotiation are skipped —
	// a dead server is attempted at most once per run, however a policy
	// orders the attempts: the dead set keys on the server and marks it
	// idempotently, so the bookkeeping is independent of iteration order.
	dead := make(map[media.ServerID]bool)
	var downs, capacities, constraints, skipped int
	var retryAfter time.Duration
	var selOrder func([]PolicyCandidate) []int
	if m.opts.Selection != nil {
		selOrder = m.opts.Selection.OrderCommits
	}
	for _, group := range [][]offer.Ranked{acceptable, feasible} {
		group, ranks := m.policyOrder(group, u.Desired.Cost.Guarantee, selOrder, "negotiate")
		for i, r := range group {
			if id, onDead := offerOnDead(r, dead); onDead {
				if m.tracing() {
					m.trace("skip-dead", r.Key(), string(id))
					m.span(telemetry.Event{Step: telemetry.StepSkipDead, Offer: r.Key(), Server: string(id)})
				}
				m.met.skip()
				skipped++
				continue
			}
			if m.tracing() {
				m.trace("commit-attempt", r.Key(), fmt.Sprintf("%s OIF=%.4g %s", r.Status, r.OIF, r.Total()))
			}
			cm, fail := m.tryCommit(ctx, mach, doc, u, r)
			if fail != nil {
				if err := ctx.Err(); err != nil {
					if m.tracing() {
						m.trace("commit-failed", r.Key(), err.Error())
						m.span(telemetry.Event{Step: telemetry.StepCommitment, Offer: r.Key(), Status: "canceled", Detail: err.Error()})
					}
					return negOutcome{}, err
				}
				if m.tracing() {
					m.trace("commit-failed", r.Key(), fail.String())
					m.span(telemetry.Event{Step: telemetry.StepCommitment, Offer: r.Key(), Server: string(fail.server), Status: fail.cause.String(), Detail: fail.String()})
				}
				switch fail.cause {
				case CauseServerDown:
					if !dead[fail.server] {
						dead[fail.server] = true
						downs++
					}
					if rem, ok := m.Quarantined(fail.server); ok && rem > retryAfter {
						retryAfter = rem
					}
				case CauseCapacity:
					capacities++
				case CauseConstraint:
					constraints++
				}
				continue
			}
			status := FailedWithOffer
			if r.Status != offer.Constraint && offer.WithinBudget(r.SystemOffer, u) {
				status = Succeeded
			}
			if selOrder != nil {
				// Chosen rank in classical order (the regret-proxy pair: a
				// good policy commits at low rank with few failed attempts).
				rank := i
				if ranks != nil {
					rank = ranks[i]
				}
				m.met.policyChosenRank(rank)
				m.met.policyRegret(downs + capacities + constraints + skipped)
			}
			t.lap(telemetry.StepCommitment)
			if m.tracing() {
				m.trace("committed", r.Key(), status.String())
				m.span(telemetry.Event{Step: telemetry.StepCommitment, Offer: r.Key(), Status: status.String()})
			}
			return negOutcome{status: status, ranked: ranked, chosen: r, commit: cm}, nil
		}
	}
	t.lap(telemetry.StepCommitment)

	// Every feasible offer failed commitment. If each attempt hit a hard
	// profile constraint (start delay, sync tolerance), no retry can help:
	// there is no supportable configuration for this profile at all. Any
	// shortage or dead server, by contrast, is transient — FAILEDTRYLATER
	// with an honest retry hint.
	if m.tracing() {
		detail := fmt.Sprintf("%d feasible offers (%d server-down, %d capacity, %d constraint, %d skipped)",
			len(ranked), downs, capacities, constraints, skipped)
		m.trace("exhausted", "", detail)
		m.span(telemetry.Event{Step: telemetry.StepCommitment, Status: "exhausted", Detail: detail})
	}
	if constraints > 0 && downs+capacities+skipped == 0 {
		return negOutcome{
			status: FailedWithoutOffer,
			ranked: ranked,
			reason: fmt.Sprintf("all %d feasible offers violate hard constraints of the profile", len(ranked)),
		}, nil
	}
	retryAfter = maxDuration(retryAfter, maxDuration(quarRemain, m.opts.Health.retryAfter()))
	return negOutcome{
		status:     FailedTryLater,
		ranked:     ranked,
		retryAfter: retryAfter,
		reason: fmt.Sprintf("no resources for any of %d feasible offers (%d server-down, %d capacity, %d constraint)",
			len(ranked), downs+skipped, capacities, constraints),
	}, nil
}

// offerOnDead reports whether any choice of the offer is served by a
// server already seen down this negotiation.
func offerOnDead(r offer.Ranked, dead map[media.ServerID]bool) (media.ServerID, bool) {
	if len(dead) == 0 {
		return "", false
	}
	for _, ch := range r.Choices {
		if dead[ch.Variant.Server] {
			return ch.Variant.Server, true
		}
	}
	return "", false
}

// maxDuration returns the larger duration.
func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// choicePeriodFor resolves the confirmation window for a profile.
func (m *Manager) choicePeriodFor(u profile.UserProfile) time.Duration {
	if c := u.Desired.Time.ChoicePeriod; c > 0 {
		return c
	}
	return m.opts.ChoicePeriod
}

// Negotiate runs the negotiation procedure with no cancellation.
//
// Deprecated: use NegotiateContext, which bounds the pipeline with the
// caller's context.
func (m *Manager) Negotiate(mach client.Machine, docID media.DocumentID, u profile.UserProfile) (Result, error) {
	return m.NegotiateContext(context.Background(), mach, docID, u)
}

// NegotiateContext runs the negotiation procedure of Section 4 for the
// given client machine, document and user profile. The returned Result
// carries the negotiation status and, when resources were reserved, the
// session the user must confirm within the choice period.
//
// Canceling ctx aborts the pipeline between stages and rolls back any
// partially committed resources; the context's error is returned.
func (m *Manager) NegotiateContext(ctx context.Context, mach client.Machine, docID media.DocumentID, u profile.UserProfile) (Result, error) {
	// Admission control runs before step 1 — and before the registry is
	// even consulted — so a shed costs nothing but the refusal itself.
	release, retry, admitted := m.opts.Admission.Admit()
	if !admitted {
		return m.shedResult(retry), nil
	}
	if release != nil {
		defer release()
	}
	doc, docGen, err := m.registry.Snapshot(docID)
	if err != nil {
		return Result{}, err
	}
	m.statsMu.Lock()
	m.stats.Requests++
	m.statsMu.Unlock()

	var begin time.Time
	if m.met != nil {
		begin = m.now()
	}
	out, err := m.runProcedure(ctx, mach, doc, docGen, u)
	if err != nil {
		return Result{}, err
	}
	if m.met != nil {
		m.met.observeNegotiation(m.now().Sub(begin))
	}
	m.count(out.status)
	if !out.status.Reserved() {
		return Result{
			Status:     out.status,
			Offer:      out.localOffer,
			Violations: out.violations,
			Reason:     out.reason,
			RetryAfter: out.retryAfter,
		}, nil
	}
	sess := &Session{
		Machine:      mach,
		Document:     doc.ID,
		Profile:      u,
		Current:      out.chosen,
		Ranked:       out.ranked,
		ChoicePeriod: m.choicePeriodFor(u),
		state:        Reserved,
		commit:       out.commit,
	}
	if m.met != nil || m.opts.Tracer != nil {
		sess.reservedAt = m.now()
	}
	m.sessMu.Lock()
	if m.opts.NextSessionID != nil {
		sess.ID = m.opts.NextSessionID()
	} else {
		m.nextID++
		sess.ID = m.nextID
	}
	m.sessions[sess.ID] = sess
	m.sessMu.Unlock()
	uo := out.chosen.UserOffer()
	return Result{Status: out.status, Offer: &uo, Session: sess}, nil
}

// Renegotiate re-runs the negotiation for a reserved session with no
// cancellation.
//
// Deprecated: use RenegotiateContext, which bounds the pipeline with the
// caller's context.
func (m *Manager) Renegotiate(id SessionID, u profile.UserProfile) (Result, error) {
	return m.RenegotiateContext(context.Background(), id, u)
}

// RenegotiateContext re-runs the negotiation procedure for a reserved
// session with a modified user profile: the GUI's "modify the offer and
// then push OK to initiate a renegotiation" (Section 8). The session's
// current reservation is released first; on success the same session holds
// the new offer and a fresh choice period, on failure (any non-reserved
// status) the session is aborted and the Result explains why. A canceled
// ctx aborts the session and returns the context's error.
//
// The procedure commits off-lock, so the choice-period time-out (or a
// concurrent Reject/Abort) can end the session mid-renegotiation. The
// epoch guard resolves the race leak-free: the terminal transition wins,
// the freshly committed resources are released instead of installed, and
// ErrChoicePeriodExpired (or ErrBadState) is returned.
func (m *Manager) RenegotiateContext(ctx context.Context, id SessionID, u profile.UserProfile) (Result, error) {
	// Admission gates renegotiation too, before the session is touched:
	// a shed leaves the reservation intact and Reserved, so the client can
	// simply retry after the hint instead of losing its session.
	release, retry, admitted := m.opts.Admission.Admit()
	if !admitted {
		return m.shedResult(retry), nil
	}
	if release != nil {
		defer release()
	}
	s, err := m.Session(id)
	if err != nil {
		return Result{}, err
	}
	s.mu.Lock()
	if s.state != Reserved {
		defer s.mu.Unlock()
		if s.expired {
			return Result{}, fmt.Errorf("%w: session %d", ErrChoicePeriodExpired, id)
		}
		return Result{}, fmt.Errorf("%w: renegotiate in state %v", ErrBadState, s.state)
	}
	if s.busy {
		s.mu.Unlock()
		return Result{}, fmt.Errorf("%w: renegotiation or adaptation already in flight on session %d", ErrBadState, id)
	}
	// Open the unlock window: withdraw the commitment under the epoch
	// guard. Every return path below must clear busy.
	s.busy = true
	s.epoch++
	epoch := s.epoch
	mach := s.Machine
	docID := s.Document
	old := s.commit
	s.commit = commitment{}
	s.mu.Unlock()

	// Release the old configuration first so the fresh offer can re-use
	// its capacity.
	m.release(old)
	m.hookUnlocked("renegotiate", id)

	doc, docGen, err := m.registry.Snapshot(docID)
	if err != nil {
		m.abortWindow(s, epoch, Reserved)
		return Result{}, err
	}

	m.statsMu.Lock()
	m.stats.Requests++
	m.statsMu.Unlock()
	var begin time.Time
	if m.met != nil {
		begin = m.now()
	}
	out, err := m.runProcedure(ctx, mach, doc, docGen, u)
	if err != nil {
		m.abortWindow(s, epoch, Reserved)
		return Result{}, err
	}
	if m.met != nil {
		m.met.observeNegotiation(m.now().Sub(begin))
	}
	m.count(out.status)
	if !out.status.Reserved() {
		m.abortWindow(s, epoch, Reserved)
		return Result{
			Status:     out.status,
			Offer:      out.localOffer,
			Violations: out.violations,
			Reason:     out.reason,
			RetryAfter: out.retryAfter,
		}, nil
	}
	s.mu.Lock()
	if s.state != Reserved || s.epoch != epoch {
		// A concurrent transition — the choice-period time-out firing
		// Expire, a Reject, an Abort — ended the session while it was
		// unlocked. Installing now would strand the fresh reservations on
		// a terminal session forever; release them instead.
		expired := s.expired
		st := s.state
		s.busy = false
		s.mu.Unlock()
		m.release(out.commit)
		m.recordStaleInstall("renegotiate", id, st)
		if expired {
			return Result{}, fmt.Errorf("%w: session %d expired during renegotiation", ErrChoicePeriodExpired, id)
		}
		return Result{}, fmt.Errorf("%w: session %d moved to %v during renegotiation", ErrBadState, id, st)
	}
	s.Profile = u
	s.Current = out.chosen
	s.Ranked = out.ranked
	s.ChoicePeriod = m.choicePeriodFor(u)
	s.commit = out.commit
	s.epoch++
	s.busy = false
	if m.met != nil || m.opts.Tracer != nil {
		s.reservedAt = m.now()
	}
	s.mu.Unlock()
	uo := out.chosen.UserOffer()
	return Result{Status: out.status, Offer: &uo, Session: s}, nil
}

// shedResult books one admission refusal and renders it as the paper's
// polite refusal: FAILEDTRYLATER with the controller's RetryAfter hint.
func (m *Manager) shedResult(retry time.Duration) Result {
	m.statsMu.Lock()
	m.stats.Requests++
	m.stats.AdmissionSheds++
	m.statsMu.Unlock()
	m.count(FailedTryLater)
	return Result{
		Status:     FailedTryLater,
		Reason:     "admission control: manager overloaded",
		RetryAfter: retry,
		Shed:       true,
	}
}

func (m *Manager) count(s NegotiationStatus) {
	m.met.outcome(s)
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	switch s {
	case Succeeded:
		m.stats.Succeeded++
	case FailedWithOffer:
		m.stats.FailedWithOffer++
	case FailedTryLater:
		m.stats.FailedTryLater++
	case FailedWithoutOffer:
		m.stats.FailedWithoutOffer++
	case FailedWithLocalOffer:
		m.stats.FailedWithLocalOffer++
	}
}

// serverFor looks up a registered server under the read lock.
func (m *Manager) serverFor(id media.ServerID) (serverEntry, bool) {
	m.srvMu.RLock()
	defer m.srvMu.RUnlock()
	entry, ok := m.servers[id]
	return entry, ok
}

// tryCommit reserves server and network resources for every choice of the
// offer. It either commits everything (nil failure) or rolls back and
// reports a typed failure cause: server-down, capacity shortage, hard
// constraint, or cancellation. Server-attributable failures also feed the
// circuit breaker, so quarantines accrue no matter which entry point
// (negotiate, renegotiate, adapt) drove the attempt.
func (m *Manager) tryCommit(ctx context.Context, mach client.Machine, doc media.Document, u profile.UserProfile, r offer.Ranked) (commitment, *commitFailure) {
	var cm commitment
	rollback := func() {
		for _, sr := range cm.servers {
			sr.server.Release(sr.res.ID)
		}
		for _, c := range cm.conns {
			m.transport.Close(c)
		}
	}
	fail := func(cause FailureCause, server media.ServerID, op string, err error) (commitment, *commitFailure) {
		rollback()
		f := &commitFailure{cause: cause, server: server, op: op, err: err}
		m.recordCommitFailure(f)
		m.observeCommit(server, u.Desired.Cost.Guarantee, cause, 0)
		return commitment{}, f
	}
	var startDelay time.Duration
	jitterByMono := make(map[media.MonomediaID]time.Duration, len(r.Choices))
	for _, ch := range r.Choices {
		if err := ctx.Err(); err != nil {
			rollback()
			return commitment{}, &commitFailure{cause: CauseCanceled, err: err}
		}
		sid := ch.Variant.Server
		if rem, ok := m.Quarantined(sid); ok {
			// No new evidence — the breaker already tripped — so this is
			// not recorded against the server again.
			rollback()
			return commitment{}, &commitFailure{
				cause:  CauseServerDown,
				server: sid,
				err:    fmt.Errorf("%w: %s quarantined for %s", ErrServerDown, sid, rem.Round(time.Millisecond)),
			}
		}
		entry, ok := m.serverFor(sid)
		if !ok {
			return fail(CauseServerDown, sid, "reserve", fmt.Errorf("%w: %s not registered", ErrServerDown, sid))
		}
		healthGen := m.serverHealthGen(sid)
		netQoS := ch.Variant.NetworkQoS()
		var began time.Time
		if len(m.observers) > 0 {
			began = m.now()
		}
		res, err := entry.server.Reserve(netQoS)
		if err != nil {
			cause := CauseCapacity
			if errors.Is(err, ErrServerDown) {
				cause = CauseServerDown
			}
			return fail(cause, sid, "reserve", fmt.Errorf("reserve on %s: %w", sid, err))
		}
		cm.servers = append(cm.servers, serverReservation{server: entry.server, res: res})
		conn, err := m.transport.Connect(entry.node, mach.Node, netQoS)
		if err != nil {
			cause := CauseCapacity
			if errors.Is(err, ErrServerDown) {
				cause = CauseServerDown
			}
			return fail(cause, sid, "connect", fmt.Errorf("connect %s -> %s: %w", entry.node, mach.Node, err))
		}
		cm.conns = append(cm.conns, conn)
		m.recordServerSuccess(sid, healthGen)
		if len(m.observers) > 0 {
			m.observeCommit(sid, u.Desired.Cost.Guarantee, CauseNone, m.now().Sub(began))
		}
		if m.tracing() {
			m.trace("choice-committed", r.Key(), string(ch.Monomedia))
		}
		if d := conn.Metrics.Delay + entry.server.Config().RoundLength; d > startDelay {
			startDelay = d
		}
		if !netQoS.Zero() {
			jitterByMono[ch.Monomedia] = conn.Metrics.Jitter
		}
	}
	// Time profile: the committed configuration must be able to start the
	// presentation within the user's start-delay bound.
	if max := u.Desired.Time.MaxStartDelay; max > 0 && startDelay > max {
		return fail(CauseConstraint, "", "",
			fmt.Errorf("start delay %s exceeds profile bound %s", startDelay, max))
	}
	// Synchronization feasibility: for every temporal constraint with a
	// skew tolerance, the committed paths' combined jitter — the bound the
	// synchronization protocol must compensate [Lam 94] — must fit the
	// tolerance; otherwise this configuration cannot hold lip-sync.
	for _, tc := range doc.Temporal {
		if tc.Tolerance <= 0 {
			continue
		}
		ja, okA := jitterByMono[tc.A]
		jb, okB := jitterByMono[tc.B]
		if okA && okB && ja+jb > tc.Tolerance {
			return fail(CauseConstraint, "", "",
				fmt.Errorf("combined jitter %s exceeds sync tolerance %s between %s and %s", ja+jb, tc.Tolerance, tc.A, tc.B))
		}
	}
	return cm, nil
}

// release frees a session's committed resources.
func (m *Manager) release(cm commitment) {
	for _, sr := range cm.servers {
		sr.server.Release(sr.res.ID)
	}
	for _, c := range cm.conns {
		m.transport.Close(c)
	}
}

// Confirm is step 6's acceptance: the session moves from Reserved to
// Playing and the presentation starts. Confirming after the choice period
// was enforced returns ErrChoicePeriodExpired.
func (m *Manager) Confirm(id SessionID) error {
	s, err := m.Session(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != Reserved {
		if s.expired {
			return fmt.Errorf("%w: session %d", ErrChoicePeriodExpired, id)
		}
		return fmt.Errorf("%w: confirm in state %v", ErrBadState, s.state)
	}
	if s.busy {
		// Mid-renegotiation the session holds no resources to start the
		// presentation on; confirming would play a configuration that is
		// being replaced underneath it.
		return fmt.Errorf("%w: renegotiation in flight on session %d", ErrBadState, id)
	}
	s.state = Playing
	s.epoch++
	// Step 6's latency: how long the user deliberated before accepting
	// the reserved configuration.
	if !s.reservedAt.IsZero() {
		d := m.now().Sub(s.reservedAt)
		m.met.step(telemetry.StepConfirmation).Observe(d)
		m.span(telemetry.Event{Step: telemetry.StepConfirmation, Elapsed: d})
	}
	return nil
}

// Reject is step 6's rejection: reserved resources are de-allocated and the
// session is aborted.
func (m *Manager) Reject(id SessionID) error {
	return m.expireOrReject(id, false)
}

// Expire is step 6's time-out: like Reject, but the session is marked
// expired so later Confirm/Reject/Renegotiate calls report
// ErrChoicePeriodExpired instead of a bare state error. The protocol
// server's choice-period timers call it.
func (m *Manager) Expire(id SessionID) error {
	return m.expireOrReject(id, true)
}

func (m *Manager) expireOrReject(id SessionID, expire bool) error {
	s, err := m.Session(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.state != Reserved {
		defer s.mu.Unlock()
		if s.expired {
			return fmt.Errorf("%w: session %d", ErrChoicePeriodExpired, id)
		}
		return fmt.Errorf("%w: reject in state %v", ErrBadState, s.state)
	}
	s.state = Aborted
	s.expired = expire
	s.epoch++
	cm := s.commit
	s.commit = commitment{}
	s.mu.Unlock()
	m.release(cm)
	return nil
}

// Advance moves a playing session's position forward; the playout driver
// (package session) calls it as virtual time passes.
func (m *Manager) Advance(id SessionID, dt time.Duration) error {
	s, err := m.Session(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != Playing {
		return fmt.Errorf("%w: advance in state %v", ErrBadState, s.state)
	}
	s.position += dt
	return nil
}

// Complete finishes a playing session and releases its resources.
func (m *Manager) Complete(id SessionID) error {
	s, err := m.Session(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.state != Playing {
		st := s.state
		s.mu.Unlock()
		return fmt.Errorf("%w: complete in state %v", ErrBadState, st)
	}
	s.state = Completed
	s.epoch++
	cm := s.commit
	s.commit = commitment{}
	price := s.Current.Total()
	s.mu.Unlock()
	m.release(cm)
	m.met.addRevenue(int64(price))
	m.statsMu.Lock()
	m.stats.Revenue += price
	m.statsMu.Unlock()
	return nil
}

// Abort terminates a session in any live state and releases its resources.
func (m *Manager) Abort(id SessionID) error {
	s, err := m.Session(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.state.terminal() {
		s.mu.Unlock()
		return nil
	}
	s.state = Aborted
	s.epoch++
	cm := s.commit
	s.commit = commitment{}
	s.mu.Unlock()
	m.release(cm)
	return nil
}

// Session returns the session with the given id.
func (m *Manager) Session(id SessionID) (*Session, error) {
	m.sessMu.RLock()
	defer m.sessMu.RUnlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownSession, id)
	}
	return s, nil
}

// Sessions returns every session in a given state.
func (m *Manager) Sessions(state SessionState) []*Session {
	m.sessMu.RLock()
	defer m.sessMu.RUnlock()
	var out []*Session
	for _, s := range m.sessions {
		if s.State() == state {
			out = append(out, s)
		}
	}
	return out
}

// ServerLoad is one row of ServerLoads: current load plus the circuit
// breaker's view of the server's health.
type ServerLoad struct {
	ID            media.ServerID `json:"id"`
	ActiveStreams int            `json:"activeStreams"`
	Utilization   float64        `json:"utilization"`
	// Quarantined is true while the circuit breaker holds the server out
	// of classification and commitment; QuarantineMs is the remaining
	// cooldown.
	Quarantined  bool  `json:"quarantined,omitempty"`
	QuarantineMs int64 `json:"quarantineMs,omitempty"`
	// ConsecutiveFailures counts commit failures since the last success;
	// the remaining counters break failures down by cause and operation.
	ConsecutiveFailures int `json:"consecutiveFailures,omitempty"`
	DownFailures        int `json:"downFailures,omitempty"`
	ReserveFailures     int `json:"reserveFailures,omitempty"`
	ConnectFailures     int `json:"connectFailures,omitempty"`
	Quarantines         int `json:"quarantines,omitempty"`
}

// ServerLoads reports each registered media server's current load and
// breaker health, sorted by id; the ops view behind `qosctl servers`.
func (m *Manager) ServerLoads() []ServerLoad {
	m.srvMu.RLock()
	entries := make([]serverEntry, 0, len(m.servers))
	for _, e := range m.servers {
		entries = append(entries, e)
	}
	m.srvMu.RUnlock()
	out := make([]ServerLoad, 0, len(entries))
	for _, e := range entries {
		row := ServerLoad{
			ID:            e.server.ID(),
			ActiveStreams: e.server.ActiveStreams(),
			Utilization:   e.server.Utilization(),
		}
		m.healthSnapshot(&row)
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Invoice itemizes the committed offer of a session: one line per
// continuous monomedia with its negotiated rate and playout length, plus
// the copyright fee — the statement behind the cost figure the information
// window displays.
func (m *Manager) Invoice(id SessionID) (cost.Invoice, error) {
	s, err := m.Session(id)
	if err != nil {
		return cost.Invoice{}, err
	}
	doc, err := m.registry.Document(s.Document)
	if err != nil {
		return cost.Invoice{}, err
	}
	current := s.CurrentOffer()
	var labels []string
	var items []cost.Item
	for _, ch := range current.Choices {
		mono, ok := doc.Component(ch.Monomedia)
		if !ok || !mono.Kind.Continuous() {
			continue
		}
		labels = append(labels, string(ch.Monomedia))
		items = append(items, cost.Item{
			Rate:     ch.Variant.NetworkQoS().AvgBitRate,
			Duration: mono.Duration,
		})
	}
	guarantee := s.Profile.Desired.Cost.Guarantee
	pricing, _ := m.pricingSnapshot()
	return pricing.Invoice(string(doc.ID), cost.Money(doc.CopyrightFee), guarantee, labels, items), nil
}
