package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"qosneg/internal/cmfs"
	"qosneg/internal/network"
	"qosneg/internal/qos"
)

// TestConcurrentNegotiationsAccounting hammers one manager with many
// concurrent negotiate/confirm/complete and negotiate/reject rounds and
// checks the resource accounting holds under -race: no server ever exceeds
// its stream cap (the CMFS would refuse, so a successful negotiation
// implies admission), and once every session is drained the servers and the
// network hold zero reservations — nothing leaked, nothing double-released.
func TestConcurrentNegotiationsAccounting(t *testing.T) {
	cfg := cmfs.DefaultConfig()
	cfg.MaxStreams = 12
	b := newBed(t, cfg, 200*qos.MBitPerSecond)
	u := tvProfile()

	const goroutines = 16
	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				res, err := b.man.NegotiateContext(context.Background(), b.mach, "news-1", u)
				if err != nil {
					errs <- err
					return
				}
				if res.Session == nil {
					// FAILEDTRYLATER under contention is a legal outcome;
					// the point is accounting, not admission success.
					continue
				}
				if (g+r)%2 == 0 {
					if err := b.man.Confirm(res.Session.ID); err != nil {
						errs <- err
						return
					}
					if err := b.man.Complete(res.Session.ID); err != nil {
						errs <- err
						return
					}
				} else if err := b.man.Reject(res.Session.ID); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for id, s := range b.servers {
		if n := s.ActiveStreams(); n != 0 {
			t.Errorf("server %s: %d streams still reserved after drain", id, n)
		}
	}
	if n := b.net.ActiveReservations(); n != 0 {
		t.Errorf("network: %d reservations still active after drain", n)
	}
	st := b.man.Stats()
	if st.Requests != goroutines*rounds {
		t.Errorf("stats.Requests = %d, want %d", st.Requests, goroutines*rounds)
	}
}

// TestNegotiateCanceledMidCommit cancels the context from inside the
// resource-commitment step — the trace hook fires on the first committed
// choice, deterministically mid-commit — and checks the partial commitment
// is rolled back: the error is the context's, no session is created, and
// servers and network are left empty.
func TestNegotiateCanceledMidCommit(t *testing.T) {
	b := defaultBed(t)
	ctx, cancel := context.WithCancel(context.Background())
	opts := DefaultOptions()
	opts.Trace = func(e TraceEvent) {
		if e.Step == "choice-committed" {
			cancel()
		}
	}
	man := NewManager(b.reg, b.man.transport, b.man.pricing, opts)
	for id, s := range b.servers {
		man.AddServer(s, network.NodeID(id))
	}
	_, err := man.NegotiateContext(ctx, b.mach, "news-1", tvProfile())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for id, s := range b.servers {
		if n := s.ActiveStreams(); n != 0 {
			t.Errorf("server %s: %d streams leaked by canceled commit", id, n)
		}
	}
	if n := b.net.ActiveReservations(); n != 0 {
		t.Errorf("network: %d reservations leaked by canceled commit", n)
	}
	if got := len(man.Sessions(Reserved)); got != 0 {
		t.Errorf("%d sessions created by canceled negotiation", got)
	}
}

// TestNegotiateCanceledBeforeStart checks a pre-canceled context never
// reaches resource commitment.
func TestNegotiateCanceledBeforeStart(t *testing.T) {
	b := defaultBed(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := b.man.NegotiateContext(ctx, b.mach, "news-1", tvProfile())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := b.man.Stats(); st.Succeeded != 0 {
		t.Errorf("canceled negotiation counted as succeeded: %+v", st)
	}
}

// TestExpireReportsChoicePeriod checks the step 6 time-out contract: an
// expired session releases its resources and answers later operations with
// ErrChoicePeriodExpired.
func TestExpireReportsChoicePeriod(t *testing.T) {
	b := defaultBed(t)
	res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.Session == nil {
		t.Fatalf("status = %v (%s)", res.Status, res.Reason)
	}
	id := res.Session.ID
	if err := b.man.Expire(id); err != nil {
		t.Fatal(err)
	}
	if res.Session.State() != Aborted {
		t.Errorf("expired session state = %v", res.Session.State())
	}
	for sid, s := range b.servers {
		if n := s.ActiveStreams(); n != 0 {
			t.Errorf("server %s: %d streams held past expiry", sid, n)
		}
	}
	if err := b.man.Confirm(id); !errors.Is(err, ErrChoicePeriodExpired) {
		t.Errorf("Confirm after expiry: %v, want ErrChoicePeriodExpired", err)
	}
	if err := b.man.Reject(id); !errors.Is(err, ErrChoicePeriodExpired) {
		t.Errorf("Reject after expiry: %v, want ErrChoicePeriodExpired", err)
	}
	if _, err := b.man.Renegotiate(id, tvProfile()); !errors.Is(err, ErrChoicePeriodExpired) {
		t.Errorf("Renegotiate after expiry: %v, want ErrChoicePeriodExpired", err)
	}
	// A plain Reject, by contrast, stays a bare state error.
	res2, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil || res2.Session == nil {
		t.Fatalf("second negotiation: %v %v", res2.Status, err)
	}
	if err := b.man.Reject(res2.Session.ID); err != nil {
		t.Fatal(err)
	}
	if err := b.man.Confirm(res2.Session.ID); errors.Is(err, ErrChoicePeriodExpired) || !errors.Is(err, ErrBadState) {
		t.Errorf("Confirm after plain reject: %v, want ErrBadState only", err)
	}
}
