package core

import (
	"testing"

	"qosneg/internal/cost"
	"qosneg/internal/offer"
)

func rankedRun(statuses []offer.Status, oifs []float64) []offer.Ranked {
	out := make([]offer.Ranked, len(statuses))
	for i := range statuses {
		out[i] = offer.Ranked{Status: statuses[i], OIF: oifs[i]}
	}
	return out
}

func TestValidPermutation(t *testing.T) {
	cases := []struct {
		perm []int
		want bool
	}{
		{nil, false},
		{[]int{0}, true},
		{[]int{1, 0}, true},
		{[]int{2, 0, 1}, true},
		{[]int{0, 0}, false},  // duplicate
		{[]int{0, 2}, false},  // out of range
		{[]int{-1, 0}, false}, // negative
		{[]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, true}, // beyond the stack fast path
	}
	for _, c := range cases {
		if got := validPermutation(c.perm); got != c.want {
			t.Errorf("validPermutation(%v) = %v, want %v", c.perm, got, c.want)
		}
	}
}

// An invalid or identity policy answer must leave the classical order (and
// the classical slice) in place; a valid one reorders only its tie run.
func TestPolicyOrderValidation(t *testing.T) {
	b := defaultBed(t)
	group := rankedRun(
		[]offer.Status{offer.Acceptable, offer.Acceptable, offer.Acceptable, offer.Constraint},
		[]float64{5, 5, 5, 3},
	)
	for name, bad := range map[string][]int{
		"nil":         nil,
		"wrong-len":   {1, 0},
		"duplicate":   {0, 0, 1},
		"out-of-kilt": {0, 1, 3},
		"identity":    {0, 1, 2},
	} {
		got, ranks := b.man.policyOrder(group, cost.BestEffort, func([]PolicyCandidate) []int { return bad }, "negotiate")
		if &got[0] != &group[0] || ranks != nil {
			t.Errorf("%s answer: classical slice not returned untouched", name)
		}
	}
	// A valid non-identity permutation reorders the 3-long tie run and
	// leaves the lone constraint offer where it was.
	got, ranks := b.man.policyOrder(group, cost.BestEffort, func(ties []PolicyCandidate) []int {
		if len(ties) != 3 {
			t.Fatalf("policy saw a run of %d, want 3", len(ties))
		}
		return []int{2, 0, 1}
	}, "negotiate")
	if &got[0] == &group[0] {
		t.Fatal("reorder mutated the classical slice instead of copying")
	}
	wantRanks := []int{2, 0, 1, 3}
	for i, r := range ranks {
		if r != wantRanks[i] {
			t.Fatalf("ranks = %v, want %v", ranks, wantRanks)
		}
	}
	if got[3].OIF != 3 {
		t.Error("offer outside the tie run moved")
	}
}

// TestPolicyOffAllocBound is the policy-off allocation gate: with no policy
// installed the ordering hook must return the classical slice untouched and
// allocate nothing, so the cached-negotiate bound
// (TestCachedNegotiateAllocBound) cannot regress from the policy layer.
func TestPolicyOffAllocBound(t *testing.T) {
	b := defaultBed(t)
	group := rankedRun(
		[]offer.Status{offer.Acceptable, offer.Acceptable, offer.Constraint},
		[]float64{5, 5, 3},
	)
	allocs := testing.AllocsPerRun(200, func() {
		out, ranks := b.man.policyOrder(group, cost.BestEffort, nil, "negotiate")
		if &out[0] != &group[0] || ranks != nil {
			t.Fatal("nil policy did not pass the group through")
		}
	})
	if allocs != 0 {
		t.Errorf("policy-off ordering allocates %.1f per negotiation, want 0", allocs)
	}
	if len(b.man.observers) != 0 {
		t.Error("policy-off manager resolved observers")
	}
}

// The observer list is resolved once at construction: one entry per
// distinct learning policy, none for policies that cannot learn.
func TestPolicyObservers(t *testing.T) {
	if got := policyObservers(nil, nil); len(got) != 0 {
		t.Errorf("nil policies resolved %d observers", len(got))
	}
	ob := &countingPolicy{}
	if got := policyObservers(ob, nil); len(got) != 1 {
		t.Errorf("learning selection policy resolved %d observers, want 1", len(got))
	}
	// The same object serving both roles is fed once.
	if got := policyObservers(ob, ob); len(got) != 1 {
		t.Errorf("shared policy object resolved %d observers, want 1", len(got))
	}
	other := &countingPolicy{}
	if got := policyObservers(ob, other); len(got) != 2 {
		t.Errorf("distinct policy objects resolved %d observers, want 2", len(got))
	}
}

// countingPolicy is a minimal learning policy for observer-resolution tests.
type countingPolicy struct {
	observed int
}

func (p *countingPolicy) Name() string                              { return "counting" }
func (p *countingPolicy) OrderCommits(ties []PolicyCandidate) []int { return nil }
func (p *countingPolicy) OrderTargets(ties []PolicyCandidate) []int { return nil }
func (p *countingPolicy) ObserveCommit(CommitObservation)           { p.observed++ }
