package core

import (
	"fmt"
	"sync"
	"time"

	"qosneg/internal/client"
	"qosneg/internal/cmfs"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/offer"
	"qosneg/internal/profile"
	"qosneg/internal/transport"
)

// SessionID names one negotiated delivery session.
type SessionID uint64

// SessionState is the lifecycle of a session.
type SessionState int

// The session states. A session is created Reserved (resources committed,
// awaiting the user's confirmation within choicePeriod); Confirm moves it
// to Playing; it ends Completed, or Aborted (rejection, time-out, or an
// adaptation failure).
const (
	Reserved SessionState = iota
	Playing
	Completed
	Aborted
)

var sessionStateNames = [...]string{"reserved", "playing", "completed", "aborted"}

// String returns the lower-case state name.
func (s SessionState) String() string {
	if s < 0 || int(s) >= len(sessionStateNames) {
		return fmt.Sprintf("SessionState(%d)", int(s))
	}
	return sessionStateNames[s]
}

// commitment holds the resources reserved for one system offer: one CMFS
// reservation and one transport connection per monomedia choice.
type commitment struct {
	servers []serverReservation
	conns   []transport.Connection
}

type serverReservation struct {
	server MediaServer
	res    cmfs.Reservation
}

// Session is the state the QoS manager keeps per negotiated delivery: the
// committed offer, the full classified offer list (kept, per step 4, so
// "the adaptation procedure makes use of the whole set of feasible system
// offers"), and the playout position used by the transition procedure.
type Session struct {
	ID       SessionID
	Machine  client.Machine
	Document media.DocumentID
	Profile  profile.UserProfile
	// Current is the committed offer.
	Current offer.Ranked
	// Ranked is the full classified offer list from negotiation step 4.
	Ranked []offer.Ranked
	// ChoicePeriod is the confirmation window in force (step 6).
	ChoicePeriod time.Duration

	// mu guards the mutable fields below plus Current, Ranked, Profile
	// and ChoicePeriod when they are rewritten by renegotiation or
	// adaptation. Lock ordering: Manager.sessMu before Session.mu, never
	// the reverse.
	mu    sync.Mutex
	state SessionState
	// epoch is the session's transition counter: every state change and
	// every commitment install or withdrawal under mu bumps it. Procedures
	// that drop mu mid-flight (adaptation, renegotiation) capture the
	// epoch when they withdraw the old commitment and re-validate
	// (state, epoch) before installing the new one; a mismatch means a
	// concurrent transition won the race, and the freshly committed
	// resources are released instead of being installed on a session that
	// no longer expects them (DESIGN.md, "Session lifecycle").
	epoch uint64
	// busy marks an adaptation or renegotiation in flight: the session's
	// commitment is withdrawn and the procedure is off-lock committing a
	// replacement. Other long procedures and Confirm refuse while busy;
	// the terminal transitions (Reject/Expire/Complete/Abort) proceed,
	// and the epoch guard makes the in-flight install stale.
	busy       bool
	position   time.Duration
	commit     commitment
	transition int // number of adaptation transitions performed
	// expired marks an Aborted session whose choice period timed out, so
	// late Confirm/Reject/Renegotiate calls get ErrChoicePeriodExpired.
	expired bool
	// reservedAt is when resources were committed; only set while
	// telemetry is enabled, to time step 6 (reservation → confirmation).
	reservedAt time.Time
}

// State returns the session's lifecycle state.
func (s *Session) State() SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Epoch returns the session's transition counter; it increases on every
// state change and commitment install/withdrawal. Observability and tests
// use it — equality of two reads brackets a quiescent session.
func (s *Session) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// terminal reports whether the state is Completed or Aborted.
func (s SessionState) terminal() bool {
	return s == Completed || s == Aborted
}

// Position returns the current playout position.
func (s *Session) Position() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.position
}

// Transitions returns how many adaptation transitions the session has
// undergone.
func (s *Session) Transitions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.transition
}

// Cost returns the price of the committed offer.
func (s *Session) Cost() cost.Money {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Current.Total()
}

// UserOffer returns the user offer derived from the committed system offer.
func (s *Session) UserOffer() profile.MMProfile {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Current.UserOffer()
}

// CurrentOffer returns a copy of the committed offer under the session
// lock; concurrent readers (monitors, UIs) should prefer it over the
// exported Current field, which renegotiation and adaptation rewrite.
func (s *Session) CurrentOffer() offer.Ranked {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Current
}
