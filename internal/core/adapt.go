package core

import (
	"context"
	"fmt"

	"qosneg/internal/cmfs"
	"qosneg/internal/media"
	"qosneg/internal/network"
	"qosneg/internal/offer"
	"qosneg/internal/telemetry"
)

// Transition records one completed adaptation: the offer the session left,
// the offer it moved to and the playout position the presentation restarted
// from ("the QoS Manager stops the presentation of the document after
// having obtained the current position of the document, and restarts the
// presentation (using the alternate components) from the position
// parameter").
type Transition struct {
	Session SessionID
	From    offer.Ranked
	To      offer.Ranked
	// Position is the playout position preserved across the transition.
	Position int64 // nanoseconds, JSON-friendly
}

// Adapt runs the adaptation procedure with no deadline. It is equivalent to
// AdaptContext(context.Background(), id); callers that can be canceled — the
// monitor's scan loop, request handlers — should prefer AdaptContext.
func (m *Manager) Adapt(id SessionID) (Transition, error) {
	return m.AdaptContext(context.Background(), id)
}

// AdaptContext runs the adaptation procedure of Section 4 on a playing
// session whose current offer is in difficulty: it considers the ordered set
// of system offers, except the current one, and re-executes the resource
// commitment step. On success the session transparently switches to the
// alternate configuration, keeping its playout position. On failure — no
// alternate committed, or ctx expired mid-procedure — the session is
// aborted and ErrAdaptationFailed (or the ctx error) returned.
//
// The procedure drops the session lock while it commits the alternate, so a
// concurrent Complete/Abort/Expire can end the session mid-flight. The
// epoch captured at withdrawal detects that at install time: the fresh
// commitment is released instead of being leaked onto a terminal session.
func (m *Manager) AdaptContext(ctx context.Context, id SessionID) (Transition, error) {
	s, err := m.Session(id)
	if err != nil {
		return Transition{}, err
	}
	s.mu.Lock()
	if s.state != Playing {
		st := s.state
		s.mu.Unlock()
		return Transition{}, fmt.Errorf("%w: adapt in state %v", ErrBadState, st)
	}
	if s.busy {
		s.mu.Unlock()
		return Transition{}, fmt.Errorf("%w: adaptation already in flight on session %d", ErrBadState, id)
	}
	s.busy = true
	s.epoch++ // commitment withdrawal is a transition
	epoch := s.epoch
	current := s.Current
	old := s.commit
	s.commit = commitment{}
	mach := s.Machine
	u := s.Profile
	ranked := s.Ranked
	doc := s.Document
	s.mu.Unlock()

	// Stop the presentation: release the troubled configuration first so
	// surviving capacity can be re-used by the alternate offer.
	m.release(old)
	m.hookUnlocked("adapt", id)

	d, err := m.registry.Document(doc)
	if err != nil {
		m.abortWindow(s, epoch, Playing)
		return Transition{}, err
	}

	// Consider the ordered offers except the current one, acceptable set
	// first, as in step 5. An installed adaptation policy may reorder ties
	// within each group — same freedom as step 5's selection policy.
	var adOrder func([]PolicyCandidate) []int
	if m.opts.Adaptation != nil {
		adOrder = m.opts.Adaptation.OrderTargets
	}
	acceptable, feasible := offer.Partition(ranked, u)
	for _, group := range [][]offer.Ranked{acceptable, feasible} {
		group, _ := m.policyOrder(group, u.Desired.Cost.Guarantee, adOrder, "adapt")
		for _, r := range group {
			if r.Key() == current.Key() {
				continue
			}
			if ctx.Err() != nil {
				m.abortWindow(s, epoch, Playing)
				m.adaptFailed(current)
				return Transition{}, fmt.Errorf("%w: session %d: %w", ErrAdaptationFailed, id, ctx.Err())
			}
			cm, fail := m.tryCommit(ctx, mach, d, u, r)
			if fail != nil {
				continue
			}
			s.mu.Lock()
			if s.state != Playing || s.epoch != epoch {
				// A concurrent transition ended the session while we were
				// committing; don't install resources nothing will release.
				st := s.state
				s.busy = false
				s.mu.Unlock()
				m.release(cm)
				m.recordStaleInstall("adapt", id, st)
				return Transition{}, fmt.Errorf("%w: adapt in state %v", ErrBadState, st)
			}
			s.commit = cm
			s.Current = r
			s.transition++
			s.epoch++
			s.busy = false
			pos := s.position
			s.mu.Unlock()
			m.met.adapt(true)
			if m.opts.Tracer != nil {
				m.span(telemetry.Event{Step: telemetry.StepAdaptation, Offer: r.Key(), Status: "ok", Detail: "from " + current.Key()})
			}
			m.statsMu.Lock()
			m.stats.Adaptations++
			m.statsMu.Unlock()
			return Transition{Session: id, From: current, To: r, Position: int64(pos)}, nil
		}
	}

	m.abortWindow(s, epoch, Playing)
	m.adaptFailed(current)
	if err := ctx.Err(); err != nil {
		return Transition{}, fmt.Errorf("%w: session %d: %w", ErrAdaptationFailed, id, err)
	}
	return Transition{}, fmt.Errorf("%w: session %d", ErrAdaptationFailed, id)
}

// adaptFailed records a failed adaptation in metrics, spans and stats.
func (m *Manager) adaptFailed(current offer.Ranked) {
	m.met.adapt(false)
	if m.opts.Tracer != nil {
		m.span(telemetry.Event{Step: telemetry.StepAdaptation, Offer: current.Key(), Status: "failed"})
	}
	m.statsMu.Lock()
	m.stats.AdaptationFailures++
	m.statsMu.Unlock()
}

// SessionByServerReservation finds the playing or reserved session holding
// the given CMFS reservation; the adaptation monitor uses it to map server
// overcommitments to sessions.
func (m *Manager) SessionByServerReservation(server media.ServerID, res cmfs.ReservationID) (*Session, bool) {
	m.sessMu.RLock()
	defer m.sessMu.RUnlock()
	for _, s := range m.sessions {
		s.mu.Lock()
		if s.state != Playing && s.state != Reserved {
			s.mu.Unlock()
			continue
		}
		for _, sr := range s.commit.servers {
			if sr.server.ID() == server && sr.res.ID == res {
				s.mu.Unlock()
				return s, true
			}
		}
		s.mu.Unlock()
	}
	return nil, false
}

// SessionByNetworkReservation finds the playing or reserved session holding
// the given network reservation.
func (m *Manager) SessionByNetworkReservation(res network.ReservationID) (*Session, bool) {
	m.sessMu.RLock()
	defer m.sessMu.RUnlock()
	for _, s := range m.sessions {
		s.mu.Lock()
		if s.state != Playing && s.state != Reserved {
			s.mu.Unlock()
			continue
		}
		for _, c := range s.commit.conns {
			if c.Reservation.ID == res {
				s.mu.Unlock()
				return s, true
			}
		}
		s.mu.Unlock()
	}
	return nil, false
}
