package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"qosneg/internal/cmfs"
	"qosneg/internal/media"
	"qosneg/internal/network"
	"qosneg/internal/qos"
)

// flakyServer wraps a real CMFS server with switchable failure modes so the
// breaker can be exercised without importing the faults package (which would
// cycle: faults imports core).
type flakyServer struct {
	MediaServer
	mu       sync.Mutex
	down     bool
	failNext int // <0: fail every Reserve; >0: fail that many
	reserves int
}

func (s *flakyServer) setDown(d bool) {
	s.mu.Lock()
	s.down = d
	s.mu.Unlock()
}

func (s *flakyServer) failReserves(n int) {
	s.mu.Lock()
	s.failNext = n
	s.mu.Unlock()
}

func (s *flakyServer) attempts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reserves
}

func (s *flakyServer) Reserve(q qos.NetworkQoS) (cmfs.Reservation, error) {
	s.mu.Lock()
	s.reserves++
	if s.down {
		s.mu.Unlock()
		return cmfs.Reservation{}, fmt.Errorf("%w: %s is crashed", ErrServerDown, s.ID())
	}
	if s.failNext != 0 {
		if s.failNext > 0 {
			s.failNext--
		}
		s.mu.Unlock()
		return cmfs.Reservation{}, fmt.Errorf("injected admission failure on %s", s.ID())
	}
	s.mu.Unlock()
	return s.MediaServer.Reserve(q)
}

// flakify re-registers every bed server behind a flakyServer wrapper.
func flakify(b *bed) map[media.ServerID]*flakyServer {
	out := map[media.ServerID]*flakyServer{}
	for id, s := range b.servers {
		fs := &flakyServer{MediaServer: s}
		b.man.AddServer(fs, network.NodeID(id))
		out[id] = fs
	}
	return out
}

func serverLoad(t *testing.T, m *Manager, id media.ServerID) ServerLoad {
	t.Helper()
	for _, row := range m.ServerLoads() {
		if row.ID == id {
			return row
		}
	}
	t.Fatalf("no ServerLoads row for %s", id)
	return ServerLoad{}
}

// TestFailoverSkipsDeadServer is the headline robustness scenario: with one
// of the two replica servers dead, negotiation still succeeds through the
// survivor, and the dead server is attempted exactly once — further offers
// touching it are skipped within the run and excluded from classification
// (quarantine) on the next run.
func TestFailoverSkipsDeadServer(t *testing.T) {
	b := defaultBed(t)
	flaky := flakify(b)
	var traces []TraceEvent
	b.man.opts.Trace = func(e TraceEvent) { traces = append(traces, e) }
	flaky["server-1"].setDown(true)

	res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Status.Reserved() {
		t.Fatalf("status = %v (%s); want failover onto server-2", res.Status, res.Reason)
	}
	for _, ch := range res.Session.Current.Choices {
		if ch.Variant.Server == "server-1" {
			t.Errorf("committed %s on the dead server", ch.Variant.ID)
		}
	}
	if got := flaky["server-1"].attempts(); got != 1 {
		t.Errorf("dead server reserve attempts = %d; want exactly 1", got)
	}
	skips := 0
	for _, e := range traces {
		if e.Step == "skip-dead" {
			skips++
		}
	}
	if skips == 0 {
		t.Error("no skip-dead trace: later offers on the dead server were not short-circuited")
	}

	row := serverLoad(t, b.man, "server-1")
	if !row.Quarantined || row.DownFailures != 1 {
		t.Errorf("server-1 load = %+v; want quarantined with one down failure", row)
	}
	if _, ok := b.man.Quarantined("server-1"); !ok {
		t.Error("Quarantined(server-1) = false after hard down evidence")
	}
	if row2 := serverLoad(t, b.man, "server-2"); row2.Quarantined || row2.ConsecutiveFailures != 0 {
		t.Errorf("healthy server-2 load = %+v", row2)
	}

	// Second run: the quarantine filters server-1's variants out of
	// classification, so the dead server is not even attempted.
	res2, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Status.Reserved() {
		t.Fatalf("second negotiation: %v (%s)", res2.Status, res2.Reason)
	}
	if got := flaky["server-1"].attempts(); got != 1 {
		t.Errorf("quarantined server attempted again: %d reserves", got)
	}

	if st := b.man.Stats(); st.CommitServerDown == 0 || st.Quarantines == 0 {
		t.Errorf("stats = %+v; want server-down and quarantine counters", st)
	}
}

// TestShortageCarriesRetryAfter: genuine resource shortage yields
// FAILEDTRYLATER with a non-zero retry hint, not FAILEDWITHOUTOFFER.
func TestShortageCarriesRetryAfter(t *testing.T) {
	cfg := cmfs.Config{
		DiskRate:    64 * qos.KBitPerSecond,
		SeekTime:    time.Millisecond,
		RoundLength: time.Second,
		MaxStreams:  1,
	}
	b := newBed(t, cfg, 0)
	res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != FailedTryLater {
		t.Fatalf("status = %v (%s)", res.Status, res.Reason)
	}
	if res.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v; shortage must carry a retry hint", res.RetryAfter)
	}
	if st := b.man.Stats(); st.CommitCapacity == 0 {
		t.Errorf("stats = %+v; admission failures must count as capacity", st)
	}
}

// TestSuccessCarriesNoRetryAfter: the hint is reserved for FAILEDTRYLATER.
func TestSuccessCarriesNoRetryAfter(t *testing.T) {
	b := defaultBed(t)
	res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Succeeded || res.RetryAfter != 0 {
		t.Errorf("status %v RetryAfter %v; want Succeeded with zero hint", res.Status, res.RetryAfter)
	}
}

// TestCapacityBreakerTripsAndHeals drives the consecutive-failure breaker:
// persistent admission failures quarantine the servers, quarantined servers
// starve classification into FAILEDTRYLATER, and after the cooldown (plus a
// successful commit) the breaker state is cleared.
func TestCapacityBreakerTripsAndHeals(t *testing.T) {
	b := defaultBed(t)
	flaky := flakify(b)
	b.man.opts.Health = HealthPolicy{FailureThreshold: 2, Cooldown: time.Minute}
	clock := time.Now()
	b.man.now = func() time.Time { return clock }

	for _, fs := range flaky {
		fs.failReserves(-1)
	}
	res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != FailedTryLater {
		t.Fatalf("status = %v (%s); admission failures are transient", res.Status, res.Reason)
	}
	if res.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v", res.RetryAfter)
	}
	st := b.man.Stats()
	if st.Quarantines == 0 || st.CommitCapacity < 2 {
		t.Fatalf("stats = %+v; breaker did not trip", st)
	}
	tripped := 0
	for id := range flaky {
		if _, ok := b.man.Quarantined(id); ok {
			tripped++
		}
	}
	if tripped == 0 {
		t.Fatal("no server quarantined after persistent admission failures")
	}

	// Heal the servers; while the quarantine holds, classification is
	// starved if everything is excluded, or commits around the exclusions.
	for _, fs := range flaky {
		fs.failReserves(0)
	}
	if tripped == len(flaky) {
		res2, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
		if err != nil {
			t.Fatal(err)
		}
		if res2.Status != FailedTryLater || res2.RetryAfter <= 0 {
			t.Fatalf("all-quarantined negotiation = %v, RetryAfter %v", res2.Status, res2.RetryAfter)
		}
	}

	// Past the cooldown the quarantine lapses and negotiation succeeds;
	// the successful commit resets the breaker counters.
	clock = clock.Add(2 * time.Minute)
	res3, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if !res3.Status.Reserved() {
		t.Fatalf("post-cooldown negotiation = %v (%s)", res3.Status, res3.Reason)
	}
	for _, ch := range res3.Session.Current.Choices {
		row := serverLoad(t, b.man, ch.Variant.Server)
		if row.Quarantined || row.ConsecutiveFailures != 0 {
			t.Errorf("server %s not healed after successful commit: %+v", ch.Variant.Server, row)
		}
	}
}

// TestZeroHealthPolicyDisablesBreaker: the zero value must keep legacy
// behaviour — capacity failures alone never quarantine.
func TestZeroHealthPolicyDisablesBreaker(t *testing.T) {
	b := defaultBed(t)
	flaky := flakify(b)
	for _, fs := range flaky {
		fs.failReserves(-1)
	}
	res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != FailedTryLater {
		t.Fatalf("status = %v (%s)", res.Status, res.Reason)
	}
	for id := range flaky {
		if _, ok := b.man.Quarantined(id); ok {
			t.Errorf("server %s quarantined with a zero HealthPolicy", id)
		}
	}
	if st := b.man.Stats(); st.Quarantines != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFailureCauseString(t *testing.T) {
	want := map[FailureCause]string{
		CauseNone:       "none",
		CauseServerDown: "server-down",
		CauseCapacity:   "capacity",
		CauseConstraint: "constraint",
		CauseCanceled:   "canceled",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q; want %q", int(c), c.String(), s)
		}
	}
	if got := FailureCause(99).String(); got != "FailureCause(99)" {
		t.Errorf("out-of-range cause = %q", got)
	}
}
