package core

import (
	"time"

	"qosneg/internal/media"
	"qosneg/internal/offercache"
	"qosneg/internal/telemetry"
)

// Metric names exported by the manager. DESIGN.md §9 documents the full
// vocabulary; qosctl renders the negotiation ones.
const (
	MetricNegotiations    = "qosneg_negotiations_total"
	MetricNegotiationTime = "qosneg_negotiation_seconds"
	MetricStepTime        = "qosneg_negotiation_step_seconds"
	MetricCommitFailures  = "qosneg_commit_failures_total"
	MetricCommitSkips     = "qosneg_commit_skips_total"
	MetricQuarantines     = "qosneg_quarantines_total"
	MetricQuarantined     = "qosneg_server_quarantined_until_seconds"
	MetricConsecutive     = "qosneg_server_consecutive_failures"
	MetricAdaptations     = "qosneg_adaptations_total"
	MetricRevenue         = "qosneg_revenue_millidollars_total"
	MetricStaleInstalls   = "qosneg_stale_installs_total"
	// Offer-cache series: candidate-set memoization traffic and occupancy.
	MetricOfferCacheHits          = "qosneg_offercache_hits_total"
	MetricOfferCacheMisses        = "qosneg_offercache_misses_total"
	MetricOfferCacheInvalidations = "qosneg_offercache_invalidations_total"
	MetricOfferCacheEntries       = "qosneg_offercache_entries"
	// Policy series: how often an installed selection/adaptation policy
	// overrode the classical tie-break, which classical rank the committed
	// offer held, and how many attempts were burned before success (the
	// regret proxy a learning policy should drive toward zero).
	MetricPolicyReorders   = "qosneg_policy_reorders_total"
	MetricPolicyChosenRank = "qosneg_policy_chosen_rank_total"
	MetricPolicyRegret     = "qosneg_policy_wasted_attempts_total"
)

// negMetrics caches the manager's metric series so hot paths record through
// pre-resolved pointers instead of name lookups. A nil *negMetrics (metrics
// disabled) is fully inert: every method nil-checks first.
type negMetrics struct {
	outcomes       *telemetry.CounterFamily
	negSeconds     *telemetry.Histogram
	steps          *telemetry.HistogramFamily
	stepCache      [telemetry.StepAdaptation + 1]*telemetry.Histogram
	commitFailures *telemetry.CounterFamily
	commitSkips    *telemetry.Counter
	quarantines    *telemetry.Counter
	quarantined    *telemetry.GaugeFamily
	consecutive    *telemetry.GaugeFamily
	adaptations    *telemetry.CounterFamily
	revenue        *telemetry.Counter
	staleInstalls  *telemetry.CounterFamily

	cacheHits          *telemetry.Counter
	cacheMisses        *telemetry.Counter
	cacheInvalidations *telemetry.Counter
	cacheEntries       *telemetry.Gauge

	policyReorders *telemetry.CounterFamily
	policyRank     *telemetry.CounterFamily
	policyWasted   *telemetry.Counter
}

// newNegMetrics registers the manager's metrics; nil registry → nil metrics.
// A non-empty shard label registers the end-to-end negotiation histogram as
// a "shard"-labeled family instead of the plain series, so every shard of a
// fleet records into its own latency distribution on the shared registry.
func newNegMetrics(reg *telemetry.Registry, shard string) *negMetrics {
	if reg == nil {
		return nil
	}
	negSeconds := (*telemetry.Histogram)(nil)
	if shard == "" {
		negSeconds = reg.Histogram(MetricNegotiationTime,
			"End-to-end negotiation latency (steps 1-5).", telemetry.LatencyBuckets)
	} else {
		negSeconds = reg.HistogramFamily(MetricNegotiationTime,
			"End-to-end negotiation latency (steps 1-5), by manager shard.",
			"shard", telemetry.LatencyBuckets).With(shard)
	}
	n := &negMetrics{
		outcomes: reg.CounterFamily(MetricNegotiations,
			"Negotiation outcomes by NegotiationStatus.", "status"),
		negSeconds: negSeconds,
		steps: reg.HistogramFamily(MetricStepTime,
			"Per-step negotiation latency.", "step", telemetry.LatencyBuckets),
		commitFailures: reg.CounterFamily(MetricCommitFailures,
			"Failed resource-commitment attempts by cause.", "cause"),
		commitSkips: reg.Counter(MetricCommitSkips,
			"Offers skipped because their server was already seen down this run."),
		quarantines: reg.Counter(MetricQuarantines,
			"Circuit-breaker trips."),
		quarantined: reg.GaugeFamily(MetricQuarantined,
			"Unix time a server's quarantine ends; 0 when healthy.", "server"),
		consecutive: reg.GaugeFamily(MetricConsecutive,
			"Consecutive commit failures since the server's last success.", "server"),
		adaptations: reg.CounterFamily(MetricAdaptations,
			"Adaptation-procedure runs by result.", "result"),
		revenue: reg.Counter(MetricRevenue,
			"Accumulated price of completed sessions, milli-dollars."),
		staleInstalls: reg.CounterFamily(MetricStaleInstalls,
			"Commitments released by the epoch guard instead of installed: a concurrent transition ended the session mid-procedure.", "procedure"),
		cacheHits: reg.Counter(MetricOfferCacheHits,
			"Negotiations served from a memoized candidate set."),
		cacheMisses: reg.Counter(MetricOfferCacheMisses,
			"Negotiations that computed their candidate set fresh (includes stale drops)."),
		cacheInvalidations: reg.Counter(MetricOfferCacheInvalidations,
			"Cached candidate sets dropped because a document, pricing or exclusion generation moved."),
		cacheEntries: reg.Gauge(MetricOfferCacheEntries,
			"Live candidate-set cache entries."),
		policyReorders: reg.CounterFamily(MetricPolicyReorders,
			"Tie runs reordered by the installed policy, by procedure.", "procedure"),
		policyRank: reg.CounterFamily(MetricPolicyChosenRank,
			"Classical rank of the committed offer under an installed policy.", "rank"),
		policyWasted: reg.Counter(MetricPolicyRegret,
			"Commit attempts that failed or were skipped before a policy-ordered run succeeded."),
	}
	// Pre-resolve the per-step series so stepTimer.lap never takes the
	// family's map path on the hot path.
	for s := telemetry.StepLocalNegotiation; s <= telemetry.StepAdaptation; s++ {
		n.stepCache[s] = n.steps.With(s.String())
	}
	return n
}

func (n *negMetrics) step(s telemetry.Step) *telemetry.Histogram {
	if n == nil || int(s) >= len(n.stepCache) {
		return nil
	}
	return n.stepCache[s]
}

func (n *negMetrics) outcome(s NegotiationStatus) {
	if n != nil {
		n.outcomes.With(s.String()).Inc()
	}
}

func (n *negMetrics) commitFailure(c FailureCause) {
	if n != nil {
		n.commitFailures.With(c.String()).Inc()
	}
}

func (n *negMetrics) skip() {
	if n != nil {
		n.commitSkips.Inc()
	}
}

func (n *negMetrics) quarantineTrip() {
	if n != nil {
		n.quarantines.Inc()
	}
}

func (n *negMetrics) adapt(ok bool) {
	if n == nil {
		return
	}
	if ok {
		n.adaptations.With("ok").Inc()
	} else {
		n.adaptations.With("failed").Inc()
	}
}

func (n *negMetrics) staleInstall(procedure string) {
	if n != nil {
		n.staleInstalls.With(procedure).Inc()
	}
}

// offerCacheLookup records one cache consultation. A stale entry counts as
// both a miss (the set is recomputed) and an invalidation (a generation
// moved underneath the entry).
func (n *negMetrics) offerCacheLookup(out offercache.Outcome) {
	if n == nil {
		return
	}
	switch out {
	case offercache.Hit:
		n.cacheHits.Inc()
	case offercache.Miss:
		n.cacheMisses.Inc()
	case offercache.Stale:
		n.cacheMisses.Inc()
		n.cacheInvalidations.Inc()
	}
}

func (n *negMetrics) offerCacheInvalidations(k int) {
	if n != nil && k > 0 {
		n.cacheInvalidations.Add(uint64(k))
	}
}

func (n *negMetrics) offerCacheEntries(k int) {
	if n != nil {
		n.cacheEntries.Set(int64(k))
	}
}

func (n *negMetrics) policyReorder(procedure string) {
	if n != nil {
		n.policyReorders.With(procedure).Inc()
	}
}

// policyRankLabels keeps the rank family's cardinality bounded: ranks past 7
// share one bucket.
var policyRankLabels = [...]string{"0", "1", "2", "3", "4", "5", "6", "7"}

func (n *negMetrics) policyChosenRank(rank int) {
	if n == nil {
		return
	}
	label := "8+"
	if rank >= 0 && rank < len(policyRankLabels) {
		label = policyRankLabels[rank]
	}
	n.policyRank.With(label).Inc()
}

func (n *negMetrics) policyRegret(wasted int) {
	if n != nil && wasted > 0 {
		n.policyWasted.Add(uint64(wasted))
	}
}

func (n *negMetrics) addRevenue(milli int64) {
	if n != nil && milli > 0 {
		n.revenue.Add(uint64(milli))
	}
}

func (n *negMetrics) observeNegotiation(d time.Duration) {
	if n != nil {
		n.negSeconds.Observe(d)
	}
}

func (n *negMetrics) serverHealthGauges(id media.ServerID, consecutive int, until time.Time) {
	if n == nil {
		return
	}
	n.consecutive.With(string(id)).Set(int64(consecutive))
	var end int64
	if !until.IsZero() {
		end = until.Unix()
	}
	n.quarantined.With(string(id)).Set(end)
}

// tracing reports whether any trace consumer — the legacy string callback
// or the structured tracer — is installed. Call sites that render detail
// strings must check it first so disabled tracing allocates nothing.
func (m *Manager) tracing() bool {
	return m.opts.Trace != nil || m.opts.Tracer != nil
}

// span emits a structured event to the tracer only (never to the legacy
// callback, whose event vocabulary and details are frozen by its tests).
func (m *Manager) span(e telemetry.Event) {
	if m.opts.Tracer != nil {
		m.opts.Tracer.Trace(e)
	}
}

// stepTimer laps the phases of one negotiation run into the per-step
// histograms and span stream. The zero value (telemetry disabled) is inert
// and costs no clock reads.
type stepTimer struct {
	m    *Manager
	last time.Time
}

// stepTimer returns a running timer, or an inert one when neither metrics
// nor a tracer would consume the laps.
func (m *Manager) stepTimer() stepTimer {
	if m.met == nil && m.opts.Tracer == nil {
		return stepTimer{}
	}
	return stepTimer{m: m, last: m.now()}
}

// lap closes the current phase as step s and starts the next one.
func (t *stepTimer) lap(s telemetry.Step) {
	if t.m == nil {
		return
	}
	now := t.m.now()
	d := now.Sub(t.last)
	t.last = now
	t.m.met.step(s).Observe(d)
	t.m.span(telemetry.Event{Step: s, Elapsed: d})
}
