package core

import (
	"errors"
	"testing"
	"time"

	"qosneg/internal/cmfs"
	"qosneg/internal/cost"
	"qosneg/internal/qos"
)

func TestRenegotiateUpgradesOffer(t *testing.T) {
	b := defaultBed(t)
	// Start with the economy-ish profile: worst-acceptable b&w video.
	u := tvProfile()
	u.Desired.Video.Color = qos.Grey
	u.Worst.Video.Color = qos.BlackWhite
	res, err := b.man.Negotiate(b.mach, "news-1", u)
	if err != nil || !res.Status.Reserved() {
		t.Fatalf("negotiate: %v %v", res.Status, err)
	}
	id := res.Session.ID
	firstCost := res.Session.Cost()

	// The user edits the profile upward and pushes OK.
	u2 := tvProfile() // color, CD
	res2, err := b.man.Renegotiate(id, u2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != Succeeded {
		t.Fatalf("renegotiation status = %v (%s)", res2.Status, res2.Reason)
	}
	if res2.Session.ID != id {
		t.Errorf("renegotiation created a new session: %d", res2.Session.ID)
	}
	if res2.Offer.Video.Color != qos.Color {
		t.Errorf("renegotiated offer = %+v", res2.Offer.Video)
	}
	if res2.Session.Profile.Desired.Video.Color != qos.Color {
		t.Error("session profile not updated")
	}
	// The throughput-class tables may price grey and color video in the
	// same class; the upgrade must never come out cheaper.
	if res2.Session.Cost() < firstCost {
		t.Errorf("upgrade should not cost less: %v vs %v", res2.Session.Cost(), firstCost)
	}
	// The old reservation was replaced, not leaked: exactly one
	// commitment (two streams) live.
	if b.net.ActiveReservations() != 2 {
		t.Errorf("network reservations = %d", b.net.ActiveReservations())
	}
	// The renegotiated session confirms and plays normally.
	if err := b.man.Confirm(id); err != nil {
		t.Fatal(err)
	}
	if res2.Session.State() != Playing {
		t.Errorf("state = %v", res2.Session.State())
	}
}

func TestRenegotiateFailureAbortsSession(t *testing.T) {
	b := defaultBed(t)
	res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil || !res.Status.Reserved() {
		t.Fatalf("negotiate: %v %v", res.Status, err)
	}
	id := res.Session.ID
	// Renegotiate with an impossible start-delay constraint: no offer can
	// be committed, and since every failure is a hard constraint the
	// status is FAILEDWITHOUTOFFER.
	u := tvProfile()
	u.Desired.Time.MaxStartDelay = time.Nanosecond
	res2, err := b.man.Renegotiate(id, u)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != FailedWithoutOffer {
		t.Fatalf("status = %v", res2.Status)
	}
	if res.Session.State() != Aborted {
		t.Errorf("state = %v", res.Session.State())
	}
	if b.net.ActiveReservations() != 0 {
		t.Error("failed renegotiation leaked reservations")
	}
	// A session lost to renegotiation cannot be confirmed.
	if err := b.man.Confirm(id); !errors.Is(err, ErrBadState) {
		t.Errorf("confirm after failed renegotiation: %v", err)
	}
}

func TestRenegotiateLocalFailure(t *testing.T) {
	b := defaultBed(t)
	res, _ := b.man.Negotiate(b.mach, "news-1", tvProfile())
	id := res.Session.ID
	u := tvProfile()
	u.Desired.Video.Resolution = qos.HDTVResolution // beyond the 1280px screen
	u.Worst.Video.Resolution = qos.HDTVResolution
	res2, err := b.man.Renegotiate(id, u)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != FailedWithLocalOffer {
		t.Fatalf("status = %v", res2.Status)
	}
	if res2.Offer == nil || res2.Offer.Video.Resolution != 1280 {
		t.Errorf("local offer = %+v", res2.Offer)
	}
	if res.Session.State() != Aborted {
		t.Errorf("state = %v", res.Session.State())
	}
}

func TestRenegotiateStateChecks(t *testing.T) {
	b := defaultBed(t)
	if _, err := b.man.Renegotiate(42, tvProfile()); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("unknown session: %v", err)
	}
	res, _ := b.man.Negotiate(b.mach, "news-1", tvProfile())
	b.man.Confirm(res.Session.ID)
	if _, err := b.man.Renegotiate(res.Session.ID, tvProfile()); !errors.Is(err, ErrBadState) {
		t.Errorf("renegotiate while playing: %v", err)
	}
}

func TestRenegotiateCountsRequests(t *testing.T) {
	b := defaultBed(t)
	res, _ := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if _, err := b.man.Renegotiate(res.Session.ID, tvProfile()); err != nil {
		t.Fatal(err)
	}
	st := b.man.Stats()
	if st.Requests != 2 || st.Succeeded != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRenegotiateFreesBudgetForOthers(t *testing.T) {
	// Renegotiating downward releases capacity another user can take.
	b := newBed(t, cmfs.DefaultConfig(), 10*qos.MBitPerSecond)
	u := tvProfile()
	res, err := b.man.Negotiate(b.mach, "news-1", u)
	if err != nil || !res.Status.Reserved() {
		t.Fatalf("negotiate: %v %v", res.Status, err)
	}
	// Downgrade to the cheapest the catalog has.
	down := tvProfile()
	down.Desired.Video = &qos.VideoQoS{Color: qos.BlackWhite, FrameRate: 15, Resolution: qos.TVResolution}
	down.Worst.Video = &qos.VideoQoS{Color: qos.BlackWhite, FrameRate: 10, Resolution: qos.TVResolution}
	down.Desired.Audio.Grade = qos.TelephoneQuality
	down.Worst.Audio.Grade = qos.TelephoneQuality
	down.Desired.Cost.MaxCost = cost.Dollars(3)
	down.Worst.Cost.MaxCost = cost.Dollars(3)
	res2, err := b.man.Renegotiate(res.Session.ID, down)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Status.Reserved() {
		t.Fatalf("downgrade failed: %v (%s)", res2.Status, res2.Reason)
	}
	if res2.Session.Cost() >= res.Session.Cost() {
		t.Skipf("catalog pricing did not produce a cheaper downgrade")
	}
}
