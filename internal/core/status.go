// Package core implements the QoS manager of Section 4: the component that
// runs the negotiation procedure (static local negotiation, static
// compatibility checking, computation of classification parameters,
// classification of system offers, resource commitment, user confirmation)
// and the automatic adaptation procedure that reacts to QoS degradations
// during playout.
package core

import "fmt"

// NegotiationStatus is the outcome of the negotiation procedure; the five
// values of Section 4.
type NegotiationStatus int

// The negotiation statuses.
const (
	// Succeeded: the requested QoS and the maximum cost are satisfied; a
	// user offer that does not violate the worst acceptable values is
	// returned and resources are reserved.
	Succeeded NegotiationStatus = iota
	// FailedWithOffer: the negotiation failed, but a user offer that the
	// system can support (while not satisfying the user requirements) is
	// returned with resources reserved.
	FailedWithOffer
	// FailedTryLater: resources shortage; the user may try again later.
	FailedTryLater
	// FailedWithoutOffer: no possible instantiation of the functional
	// configuration exists, e.g. no suitable decoder on the client.
	FailedWithoutOffer
	// FailedWithLocalOffer: the client machine itself cannot support the
	// requested QoS, e.g. a color request on a black&white screen.
	FailedWithLocalOffer
)

var negotiationStatusNames = [...]string{
	"SUCCEEDED",
	"FAILEDWITHOFFER",
	"FAILEDTRYLATER",
	"FAILEDWITHOUTOFFER",
	"FAILEDWITHLOCALOFFER",
}

// String returns the paper's upper-case name for the status.
func (s NegotiationStatus) String() string {
	if s < 0 || int(s) >= len(negotiationStatusNames) {
		return fmt.Sprintf("NegotiationStatus(%d)", int(s))
	}
	return negotiationStatusNames[s]
}

// Reserved reports whether the status leaves resources reserved pending the
// user's confirmation (step 6).
func (s NegotiationStatus) Reserved() bool {
	return s == Succeeded || s == FailedWithOffer
}
