package core

import (
	"context"
	"time"

	"qosneg/internal/client"
	"qosneg/internal/cmfs"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/network"
	"qosneg/internal/profile"
)

// SessionManager is the manager surface the rest of the system programs
// against: the six-step negotiation procedure, the step 6 session lifecycle,
// the adaptation procedure and the ops views. *Manager implements it
// directly; shard.Fleet implements it by consistent-hash routing over N
// independent managers — so the facade, protocol server, playout driver and
// adaptation monitor sit on top of either without change.
type SessionManager interface {
	// Negotiation (Section 4, steps 1-5) and renegotiation (Section 8).
	Negotiate(mach client.Machine, doc media.DocumentID, u profile.UserProfile) (Result, error)
	NegotiateContext(ctx context.Context, mach client.Machine, doc media.DocumentID, u profile.UserProfile) (Result, error)
	Renegotiate(id SessionID, u profile.UserProfile) (Result, error)
	RenegotiateContext(ctx context.Context, id SessionID, u profile.UserProfile) (Result, error)

	// Step 6 and the playout lifecycle.
	Confirm(id SessionID) error
	Reject(id SessionID) error
	Expire(id SessionID) error
	Advance(id SessionID, dt time.Duration) error
	Complete(id SessionID) error
	Abort(id SessionID) error

	// The adaptation procedure.
	Adapt(id SessionID) (Transition, error)
	AdaptContext(ctx context.Context, id SessionID) (Transition, error)
	SessionByServerReservation(server media.ServerID, res cmfs.ReservationID) (*Session, bool)
	SessionByNetworkReservation(res network.ReservationID) (*Session, bool)

	// Session and substrate queries.
	Session(id SessionID) (*Session, error)
	Sessions(state SessionState) []*Session
	Stats() Stats
	ServerLoads() []ServerLoad
	Invoice(id SessionID) (cost.Invoice, error)
	Quarantined(id media.ServerID) (time.Duration, bool)

	// Assembly and runtime reconfiguration.
	AddServer(s MediaServer, node network.NodeID)
	SetPricing(p cost.Pricing)
}

// The concrete manager must keep satisfying the full surface.
var _ SessionManager = (*Manager)(nil)
