package core

import (
	"context"
	"errors"
	"testing"
)

// The tests in this file pin the epoch-guarded session lifecycle: the
// adaptation and renegotiation procedures drop the session lock while they
// commit replacement resources, and a concurrent terminal transition
// (Abort, Expire, Complete, Reject) must win that race without leaking the
// freshly committed resources. Each test drives the interleaving
// deterministically through the manager's testHookUnlocked, which fires at
// the start of the unlock window — exactly where the pre-fix code lost the
// race — and then proves quiescence with the bed's resource ledger.

func checkLedgerEmpty(t *testing.T, b *bed) {
	t.Helper()
	if err := b.led.CheckEmpty(); err != nil {
		t.Error(err)
	}
}

func reservedSession(t *testing.T, b *bed) *Session {
	t.Helper()
	res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Status.Reserved() {
		t.Fatalf("negotiation failed: %v (%s)", res.Status, res.Reason)
	}
	return res.Session
}

func TestEpochAdvancesOnEveryTransition(t *testing.T) {
	b := defaultBed(t)
	s := reservedSession(t, b)
	e0 := s.Epoch()
	if err := b.man.Confirm(s.ID); err != nil {
		t.Fatal(err)
	}
	e1 := s.Epoch()
	if e1 <= e0 {
		t.Errorf("epoch after Confirm = %d, want > %d", e1, e0)
	}
	if err := b.man.Complete(s.ID); err != nil {
		t.Fatal(err)
	}
	if e2 := s.Epoch(); e2 <= e1 {
		t.Errorf("epoch after Complete = %d, want > %d", e2, e1)
	}
	checkLedgerEmpty(t, b)
}

// TestAdaptReleasesStaleInstallOnConcurrentAbort is the regression test for
// the Adapt commitment leak: Abort lands inside adaptation's unlock window,
// after the old commitment is withdrawn but before the alternate is
// installed. Pre-fix, Adapt installed the alternate on the aborted session,
// stranding its CMFS and network reservations forever.
func TestAdaptReleasesStaleInstallOnConcurrentAbort(t *testing.T) {
	b := defaultBed(t)
	s := playingSession(t, b)
	fired := false
	b.man.testHookUnlocked = func(op string, id SessionID) {
		if op != "adapt" || fired {
			return
		}
		fired = true
		if err := b.man.Abort(id); err != nil {
			t.Errorf("Abort in window: %v", err)
		}
	}
	_, err := b.man.Adapt(s.ID)
	if !errors.Is(err, ErrBadState) {
		t.Fatalf("Adapt = %v, want ErrBadState", err)
	}
	if !fired {
		t.Fatal("unlock-window hook never fired")
	}
	if got := s.State(); got != Aborted {
		t.Errorf("state = %v, want aborted", got)
	}
	if got := b.man.Stats().StaleInstalls; got != 1 {
		t.Errorf("stale installs = %d, want 1", got)
	}
	if got := b.net.ActiveReservations(); got != 0 {
		t.Errorf("%d network reservations leaked past the abort", got)
	}
	checkLedgerEmpty(t, b)
}

// TestRenegotiateReleasesStaleInstallOnConcurrentExpire is the regression
// test for the renegotiation commitment leak: the choice-period time-out
// fires Expire inside renegotiation's unlock window. Pre-fix, the fresh
// offer's reservations were installed on the expired (aborted) session and
// never released.
func TestRenegotiateReleasesStaleInstallOnConcurrentExpire(t *testing.T) {
	b := defaultBed(t)
	s := reservedSession(t, b)
	fired := false
	b.man.testHookUnlocked = func(op string, id SessionID) {
		if op != "renegotiate" || fired {
			return
		}
		fired = true
		if err := b.man.Expire(id); err != nil {
			t.Errorf("Expire in window: %v", err)
		}
	}
	_, err := b.man.RenegotiateContext(context.Background(), s.ID, tvProfile())
	if !errors.Is(err, ErrChoicePeriodExpired) {
		t.Fatalf("RenegotiateContext = %v, want ErrChoicePeriodExpired", err)
	}
	if !fired {
		t.Fatal("unlock-window hook never fired")
	}
	if got := s.State(); got != Aborted {
		t.Errorf("state = %v, want aborted", got)
	}
	if got := b.man.Stats().StaleInstalls; got != 1 {
		t.Errorf("stale installs = %d, want 1", got)
	}
	if got := b.net.ActiveReservations(); got != 0 {
		t.Errorf("%d network reservations leaked past the expiry", got)
	}
	checkLedgerEmpty(t, b)
}

// Confirm inside renegotiation's window must refuse: the session holds no
// resources to start the presentation on. The renegotiation then completes
// normally and the session is confirmable again.
func TestConfirmRefusedMidRenegotiation(t *testing.T) {
	b := defaultBed(t)
	s := reservedSession(t, b)
	var confirmErr error
	fired := false
	b.man.testHookUnlocked = func(op string, id SessionID) {
		if op != "renegotiate" || fired {
			return
		}
		fired = true
		confirmErr = b.man.Confirm(id)
	}
	res, err := b.man.RenegotiateContext(context.Background(), s.ID, tvProfile())
	if err != nil {
		t.Fatalf("RenegotiateContext: %v", err)
	}
	if !res.Status.Reserved() {
		t.Fatalf("renegotiation status = %v (%s)", res.Status, res.Reason)
	}
	if !errors.Is(confirmErr, ErrBadState) {
		t.Errorf("Confirm mid-renegotiation = %v, want ErrBadState", confirmErr)
	}
	if got := s.State(); got != Reserved {
		t.Fatalf("state after renegotiation = %v, want reserved", got)
	}
	if err := b.man.Confirm(s.ID); err != nil {
		t.Errorf("Confirm after renegotiation: %v", err)
	}
	if err := b.man.Complete(s.ID); err != nil {
		t.Errorf("Complete: %v", err)
	}
	checkLedgerEmpty(t, b)
}

// A second adaptation entering while one is in flight must refuse rather
// than withdraw the (already empty) commitment a second time.
func TestAdaptRefusedWhileAdaptationInFlight(t *testing.T) {
	b := defaultBed(t)
	s := playingSession(t, b)
	var nested error
	fired := false
	b.man.testHookUnlocked = func(op string, id SessionID) {
		if op != "adapt" || fired {
			return
		}
		fired = true
		_, nested = b.man.Adapt(id)
	}
	if _, err := b.man.Adapt(s.ID); err != nil {
		t.Fatalf("Adapt: %v", err)
	}
	if !errors.Is(nested, ErrBadState) {
		t.Errorf("nested Adapt = %v, want ErrBadState", nested)
	}
	if got := s.State(); got != Playing {
		t.Errorf("state = %v, want playing", got)
	}
	if err := b.man.Abort(s.ID); err != nil {
		t.Fatal(err)
	}
	checkLedgerEmpty(t, b)
}

// AdaptContext with an expired context aborts the session cleanly: the
// troubled commitment is already withdrawn and released, so the only sound
// outcome is a leak-free abort reporting both the adaptation failure and
// the context error.
func TestAdaptContextCanceledAbortsCleanly(t *testing.T) {
	b := defaultBed(t)
	s := playingSession(t, b)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := b.man.AdaptContext(ctx, s.ID)
	if !errors.Is(err, ErrAdaptationFailed) {
		t.Fatalf("AdaptContext = %v, want ErrAdaptationFailed", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("AdaptContext = %v, want context.Canceled in chain", err)
	}
	if got := s.State(); got != Aborted {
		t.Errorf("state = %v, want aborted", got)
	}
	if got := b.net.ActiveReservations(); got != 0 {
		t.Errorf("%d network reservations leaked on canceled adaptation", got)
	}
	checkLedgerEmpty(t, b)
}

// Renegotiation whose document vanished from the registry must still
// release the withdrawn commitment (pre-fix it aborted the session after
// zeroing the commitment, leaking every reservation).
func TestRenegotiateDocumentLookupErrorReleasesResources(t *testing.T) {
	b := defaultBed(t)
	s := reservedSession(t, b)
	if err := b.reg.Remove("news-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.man.RenegotiateContext(context.Background(), s.ID, tvProfile()); err == nil {
		t.Fatal("RenegotiateContext succeeded without a document")
	}
	if got := s.State(); got != Aborted {
		t.Errorf("state = %v, want aborted", got)
	}
	if got := b.net.ActiveReservations(); got != 0 {
		t.Errorf("%d network reservations leaked on document-lookup failure", got)
	}
	checkLedgerEmpty(t, b)
}
