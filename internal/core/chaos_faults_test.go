package core_test

import (
	"fmt"
	"testing"
	"time"

	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/faults"
	"qosneg/internal/ledger"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
	"qosneg/internal/sim"
	"qosneg/internal/telemetry"
	"qosneg/internal/testbed"
)

// TestChaosWithFaultInjection extends the chaos harness with the fault
// injector: servers crash and restart mid-run (including scheduled
// crash-between-Reserve-and-Connect), Reserve/Connect fail probabilistically,
// and after every step the resource invariant must hold — live network
// reservations equal the streams committed by Reserved/Playing sessions, and
// nothing leaks once everything is wound down. Server crashes lose only
// server-side admission state; network reservations are owned by sessions
// and must survive until the session ends.
func TestChaosWithFaultInjection(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1996} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runFaultChaos(t, seed)
		})
	}
}

func chaosProfile() profile.UserProfile {
	return profile.UserProfile{
		Name: "tv",
		Desired: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.CDQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(12)},
		},
		Worst: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.BlackWhite, FrameRate: 10, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.TelephoneQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(12)},
		},
		Importance: profile.DefaultImportance(),
	}
}

func runFaultChaos(t *testing.T, seed int64) {
	inj := faults.New(seed)
	opts := core.DefaultOptions()
	// A short cooldown so quarantined servers cycle back into service
	// within the run instead of parking half the catalog.
	opts.Health = core.HealthPolicy{
		FailureThreshold: 3,
		Cooldown:         10 * time.Millisecond,
		RetryAfter:       time.Millisecond,
	}
	reg := telemetry.NewRegistry()
	opts.Metrics = reg
	bed := testbed.MustNew(testbed.Spec{Faults: inj, Options: &opts})
	bed.Ledger.Instrument(reg)
	bed.Ledger.OnViolation(func(v string) {
		t.Errorf("seed %d: %s", seed, v)
	})
	if _, err := bed.AddNewsArticle("news-1", "Election night", 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRand(seed)
	var live []core.SessionID
	serverIDs := bed.ServerIDs()
	randomServer := func() *faults.Server {
		s, ok := inj.Server(serverIDs[rng.Intn(len(serverIDs))])
		if !ok {
			t.Fatal("server not wrapped")
		}
		return s
	}
	pickLive := func() (core.SessionID, bool) {
		if len(live) == 0 {
			return 0, false
		}
		return live[rng.Intn(len(live))], true
	}

	countCommitted := func() int {
		n := 0
		for _, state := range []core.SessionState{core.Reserved, core.Playing} {
			for _, s := range bed.Manager.Sessions(state) {
				for _, ch := range s.Current.Choices {
					if !ch.Variant.NetworkQoS().Zero() {
						n++
					}
				}
			}
		}
		return n
	}
	checkInvariant := func(step int) {
		t.Helper()
		want := countCommitted()
		got := bed.Network.ActiveReservations()
		if got != want {
			t.Fatalf("seed %d step %d: %d network reservations for %d committed streams",
				seed, step, got, want)
		}
	}

	for step := 0; step < 300; step++ {
		switch op := rng.Intn(13); op {
		case 0, 1, 2, 3: // negotiate; any status is legal under injection
			res, err := bed.Manager.Negotiate(bed.Client(1), "news-1", chaosProfile())
			if err != nil {
				t.Fatal(err)
			}
			if res.Status == core.FailedTryLater && res.RetryAfter <= 0 {
				t.Fatalf("seed %d step %d: FAILEDTRYLATER without a retry hint", seed, step)
			}
			if res.Session != nil {
				live = append(live, res.Session.ID)
			}
		case 4: // confirm
			if id, ok := pickLive(); ok {
				bed.Manager.Confirm(id)
			}
		case 5: // reject
			if id, ok := pickLive(); ok {
				bed.Manager.Reject(id)
			}
		case 6: // renegotiate
			if id, ok := pickLive(); ok {
				bed.Manager.Renegotiate(id, chaosProfile())
			}
		case 7: // advance + complete
			if id, ok := pickLive(); ok {
				bed.Manager.Advance(id, time.Second)
				bed.Manager.Complete(id)
			}
		case 8: // abort
			if id, ok := pickLive(); ok {
				bed.Manager.Abort(id)
			}
		case 9: // crash a server outright
			randomServer().Crash()
		case 10: // restart a server
			randomServer().Restart()
		case 11: // schedule a crash inside the next commit window
			randomServer().CrashAfterReserves(1 + rng.Intn(2))
		case 12: // dial injected failure rates up or down
			inj.SetReserveFailure(float64(rng.Intn(3)) * 0.25)
			inj.SetConnectFailure(float64(rng.Intn(3)) * 0.2)
		}
		checkInvariant(step)
	}

	// Heal the world and wind everything down: no resource may remain.
	inj.SetReserveFailure(0)
	inj.SetConnectFailure(0)
	for _, id := range serverIDs {
		inj.Restart(id)
	}
	for _, id := range live {
		bed.Manager.Abort(id)
	}
	if got := bed.Network.ActiveReservations(); got != 0 {
		t.Fatalf("seed %d: %d network reservations leaked after winding down", seed, got)
	}
	for id, srv := range bed.Servers {
		if srv.ActiveStreams() != 0 {
			t.Fatalf("seed %d: server %s leaked %d streams", seed, id, srv.ActiveStreams())
		}
	}
	// The ledger's double-entry view of the same wind-down, and the
	// telemetry counters the observability surface exports: a sequential
	// run, even under fault injection, leaks nothing, double-releases
	// nothing, and never races an unlock window.
	if err := bed.Ledger.CheckEmpty(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if v := reg.Counter(ledger.MetricLeaked, "").Value(); v != 0 {
		t.Errorf("seed %d: %s = %d, want 0", seed, ledger.MetricLeaked, v)
	}
	for _, procedure := range []string{"adapt", "renegotiate"} {
		if v := reg.CounterFamily(core.MetricStaleInstalls, "", "procedure").With(procedure).Value(); v != 0 {
			t.Errorf("seed %d: %s{procedure=%q} = %d, want 0", seed, core.MetricStaleInstalls, procedure, v)
		}
	}
}
