package core

import (
	"time"

	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/offer"
)

// The policy layer makes step 5's commitment order and the adaptation
// procedure's target order pluggable — within the freedom the paper leaves.
// Section 5's classification is normative: offers are attempted in status
// order, best OIF first. But offers the classifier ranked *equal* — same
// status, same OIF, typically the same logical configuration replicated on
// different servers — are interchangeable as far as the user is concerned,
// and the classical tie-break (total cost, then offer key) is arbitrary. A
// SelectionPolicy may permute exactly those runs of equals, nothing else; so
// any policy, however adventurous, preserves the procedure's user-visible
// QoS ordering, and a nil policy is byte-for-byte today's behaviour at zero
// cost (the group slice is returned untouched, no candidate features are
// gathered, no clock is read).

// PolicyServer is the per-server feature vector a policy sees for every
// server a candidate offer touches: live load from the shared server object
// and breaker history from the manager's health table.
type PolicyServer struct {
	ID media.ServerID
	// ActiveStreams and Utilization are the server's live load (zero if the
	// server is not registered with this manager).
	ActiveStreams int
	Utilization   float64
	// ConsecutiveFailures counts commit failures since the server's last
	// success; Quarantines counts breaker trips over the server's lifetime.
	ConsecutiveFailures int
	Quarantines         int
}

// PolicyCandidate is one offer of a tie run, as presented to a policy.
type PolicyCandidate struct {
	// Rank is the candidate's position within the run in classical order
	// (0 is the offer the fixed tie-break would attempt first).
	Rank int
	// Key is the offer's stable identity (offer.SystemOffer.Key).
	Key string
	// Status and OIF are the classification parameters; equal across the
	// run by construction.
	Status offer.Status
	OIF    float64
	// Cost is the offer's total price.
	Cost cost.Money
	// Guarantee is the service class the user requested — the QoS-class
	// feature of a contextual policy.
	Guarantee cost.Guarantee
	// Servers lists each distinct server the offer commits against, in
	// choice order.
	Servers []PolicyServer
}

// SelectionPolicy orders step 5's commitment attempts among offers the
// classifier ranked equal. OrderCommits receives one maximal run of
// (Status, OIF)-equal candidates, at least two, and returns the order to
// attempt them in as a permutation of 0..len(ties)-1. A nil or invalid
// return keeps the classical order, so a policy can always decline.
// Policies that also implement PolicyObserver receive the outcome of every
// commit attempt and can learn online.
type SelectionPolicy interface {
	// Name labels the policy in logs and reports.
	Name() string
	OrderCommits(ties []PolicyCandidate) []int
}

// AdaptationPolicy is SelectionPolicy's counterpart for the adaptation
// procedure: OrderTargets orders the tie runs the procedure walks when it
// picks the alternate configuration for a degraded session. One object may
// implement both interfaces (the bandit does); the manager then feeds it
// observations once.
type AdaptationPolicy interface {
	Name() string
	OrderTargets(ties []PolicyCandidate) []int
}

// CommitObservation is the outcome of one per-server commit attempt, fed to
// learning policies: CauseNone with the reserve+connect latency on success,
// the failure cause (server-down, capacity, …) otherwise.
type CommitObservation struct {
	Server    media.ServerID
	Guarantee cost.Guarantee
	Cause     FailureCause
	// Latency is the wall time of the successful reserve+connect for this
	// choice; zero for failures.
	Latency time.Duration
}

// PolicyObserver is the optional learning surface of a policy. The manager
// type-asserts it once at construction; ObserveCommit runs on the
// negotiating goroutine and must be fast.
type PolicyObserver interface {
	ObserveCommit(CommitObservation)
}

// PolicySummary is one arm's worth of learned policy state in shareable
// form: additive success/failure evidence for a (server, guarantee) pair,
// plus a latency estimate. A sharded fleet carries summaries on its update
// bus so every shard's policy benefits from every shard's commits; additive
// deltas merge order-independently, so replay order across shards cannot
// skew the learned state.
type PolicySummary struct {
	Server    media.ServerID `json:"server"`
	Guarantee cost.Guarantee `json:"guarantee"`
	Successes float64        `json:"successes"`
	Failures  float64        `json:"failures"`
	// LatencySeconds is the sharer's commit-latency estimate for the arm;
	// zero when it has none.
	LatencySeconds float64 `json:"latencySeconds,omitempty"`
}

// PolicyForker is implemented by policies that can split into per-shard
// instances. The fleet forks the configured policy once per shard so each
// shard learns from its own commits without lock contention, and shares
// state summaries over the bus instead.
type PolicyForker interface {
	ForkPolicy(shard int) SelectionPolicy
}

// PolicySharer is implemented by policies that exchange learned state.
// SetShareHook installs the fleet's publisher (called with additive deltas
// accumulated since the last share); MergePolicy folds a sibling's deltas
// in. Both may be called concurrently with ordering and observation.
type PolicySharer interface {
	SetShareHook(func([]PolicySummary))
	MergePolicy([]PolicySummary)
}

// policyObservers resolves the observer list once at construction: the
// selection policy, and the adaptation policy when it is a distinct object.
// tryCommit consults the slice with a single len check on the hot path.
func policyObservers(sel SelectionPolicy, ad AdaptationPolicy) []PolicyObserver {
	var out []PolicyObserver
	if ob, ok := sel.(PolicyObserver); ok {
		out = append(out, ob)
	}
	if ob, ok := ad.(PolicyObserver); ok && any(ad) != any(sel) {
		out = append(out, ob)
	}
	return out
}

// observeCommit feeds one attempt outcome to every learning policy.
func (m *Manager) observeCommit(server media.ServerID, g cost.Guarantee, cause FailureCause, latency time.Duration) {
	if len(m.observers) == 0 || server == "" {
		return
	}
	o := CommitObservation{Server: server, Guarantee: g, Cause: cause, Latency: latency}
	for _, ob := range m.observers {
		ob.ObserveCommit(o)
	}
}

// policyOrder applies one ordering hook to a partition group: each maximal
// run of (Status, OIF)-equal offers of length ≥ 2 is presented to the
// policy, and a valid non-identity permutation reorders that run in a fresh
// copy of the group. It returns the (possibly reordered) group plus, when
// anything moved, the classical rank of each position — nil means the group
// is untouched and position equals rank. A nil hook short-circuits to the
// input slice: the policy-off path allocates nothing and compares nothing
// beyond this one nil check.
func (m *Manager) policyOrder(group []offer.Ranked, g cost.Guarantee, order func([]PolicyCandidate) []int, procedure string) ([]offer.Ranked, []int) {
	if order == nil || len(group) < 2 {
		return group, nil
	}
	var out []offer.Ranked
	var ranks []int
	for lo := 0; lo < len(group); {
		hi := lo + 1
		for hi < len(group) && group[hi].Status == group[lo].Status && group[hi].OIF == group[lo].OIF {
			hi++
		}
		if hi-lo >= 2 {
			perm := order(m.policyCandidates(group[lo:hi], g))
			if len(perm) == hi-lo && validPermutation(perm) && !identityPermutation(perm) {
				if out == nil {
					out = append([]offer.Ranked(nil), group...)
					ranks = make([]int, len(group))
					for i := range ranks {
						ranks[i] = i
					}
				}
				for i, p := range perm {
					out[lo+i] = group[lo+p]
					ranks[lo+i] = lo + p
				}
				m.met.policyReorder(procedure)
			}
		}
		lo = hi
	}
	if out == nil {
		return group, nil
	}
	return out, ranks
}

// policyCandidates builds the feature vectors for one tie run. Server
// features are gathered once per distinct server across the run.
func (m *Manager) policyCandidates(run []offer.Ranked, g cost.Guarantee) []PolicyCandidate {
	seen := make(map[media.ServerID]PolicyServer, 2)
	out := make([]PolicyCandidate, len(run))
	for i, r := range run {
		c := PolicyCandidate{
			Rank:      i,
			Key:       r.Key(),
			Status:    r.Status,
			OIF:       r.OIF,
			Cost:      r.Total(),
			Guarantee: g,
		}
		for _, ch := range r.Choices {
			sid := ch.Variant.Server
			info, ok := seen[sid]
			if !ok {
				info = m.policyServerInfo(sid)
				seen[sid] = info
			}
			dup := false
			for _, have := range c.Servers {
				if have.ID == sid {
					dup = true
					break
				}
			}
			if !dup {
				c.Servers = append(c.Servers, info)
			}
		}
		out[i] = c
	}
	return out
}

// policyServerInfo snapshots one server's live load and breaker history.
func (m *Manager) policyServerInfo(id media.ServerID) PolicyServer {
	info := PolicyServer{ID: id}
	if e, ok := m.serverFor(id); ok {
		info.ActiveStreams = e.server.ActiveStreams()
		info.Utilization = e.server.Utilization()
	}
	m.healthMu.Lock()
	if h, ok := m.health[id]; ok {
		info.ConsecutiveFailures = h.consecutive
		info.Quarantines = h.quarantines
	}
	m.healthMu.Unlock()
	return info
}

// validPermutation reports whether perm is a permutation of 0..len(perm)-1.
// Anything else — wrong length is the caller's concern, out-of-range or
// repeated indices are caught here — is ignored and the classical order
// stands.
func validPermutation(perm []int) bool {
	if perm == nil {
		return false
	}
	var small [16]bool
	seen := small[:]
	if len(perm) > len(seen) {
		seen = make([]bool, len(perm))
	} else {
		seen = seen[:len(perm)]
	}
	for _, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

// identityPermutation reports whether perm leaves every index in place.
func identityPermutation(perm []int) bool {
	for i, p := range perm {
		if p != i {
			return false
		}
	}
	return true
}
