package core

import (
	"errors"
	"fmt"
	"time"

	"qosneg/internal/media"
	"qosneg/internal/offercache"
	"qosneg/internal/telemetry"
)

// ErrServerDown is the sentinel a media-server or transport implementation
// wraps when an operation failed because the server (or its attachment
// node) is crashed or unreachable, as opposed to merely out of capacity.
// The fault injector (package faults) returns it for crashed servers; the
// manager classifies commit failures with it so negotiation can skip the
// remaining offers on a dead server instead of burning an attempt per
// ranked offer.
var ErrServerDown = errors.New("core: media server down")

// FailureCause classifies why a resource-commitment attempt failed; it is
// the typed replacement for tryCommit's old bool, and the input to both the
// circuit breaker and the status decision of step 5 (FAILEDTRYLATER only
// for genuine shortage, FAILEDWITHOUTOFFER when every failure was a hard
// constraint).
type FailureCause int

// The commit-failure causes.
const (
	// CauseNone: no failure.
	CauseNone FailureCause = iota
	// CauseServerDown: a server is crashed, unregistered or quarantined;
	// retrying other offers on the same server is pointless.
	CauseServerDown
	// CauseCapacity: a transient resource shortage — the admission test
	// failed or no network path had bandwidth. Another offer (or a later
	// retry) may succeed.
	CauseCapacity
	// CauseConstraint: the committed configuration violated a hard bound
	// of the profile or document (start delay, synchronization skew); no
	// amount of retrying this offer can help.
	CauseConstraint
	// CauseCanceled: the caller's context was canceled mid-commit.
	CauseCanceled
)

var failureCauseNames = [...]string{"none", "server-down", "capacity", "constraint", "canceled"}

// String returns the lower-case cause name.
func (c FailureCause) String() string {
	if c < 0 || int(c) >= len(failureCauseNames) {
		return fmt.Sprintf("FailureCause(%d)", int(c))
	}
	return failureCauseNames[c]
}

// commitFailure is the typed outcome of a failed tryCommit.
type commitFailure struct {
	cause FailureCause
	// server is the server the failure is attributable to; empty for
	// constraint violations and cancellations.
	server media.ServerID
	// op is "reserve" or "connect" for server-attributable failures.
	op  string
	err error
}

func (f *commitFailure) String() string {
	if f.server != "" {
		return fmt.Sprintf("%s %s: %v", f.cause, f.server, f.err)
	}
	return fmt.Sprintf("%s: %v", f.cause, f.err)
}

// Default health-policy parameters.
const (
	// DefaultCooldown is how long a quarantined server stays out of
	// classification and commitment.
	DefaultCooldown = 30 * time.Second
	// DefaultRetryAfter is the retry hint attached to FAILEDTRYLATER
	// results when no quarantine supplies a longer one.
	DefaultRetryAfter = 10 * time.Second
)

// HealthPolicy tunes the manager's per-server circuit breaker. The zero
// value disables the consecutive-failure breaker but still quarantines on
// hard server-down evidence (ErrServerDown), which only fault-aware server
// implementations produce — so plain beds behave exactly as before.
type HealthPolicy struct {
	// FailureThreshold is how many consecutive capacity-class reserve or
	// connect failures trip the breaker for a server; 0 disables the
	// consecutive-failure breaker. Hard server-down evidence quarantines
	// immediately regardless.
	FailureThreshold int
	// Cooldown is the quarantine period after the breaker trips
	// (default DefaultCooldown).
	Cooldown time.Duration
	// RetryAfter is the hint attached to FAILEDTRYLATER results when no
	// quarantine supplies a longer one (default DefaultRetryAfter).
	RetryAfter time.Duration
}

// DefaultHealthPolicy returns the breaker the daemon runs with: three
// consecutive failures quarantine a server for DefaultCooldown.
func DefaultHealthPolicy() HealthPolicy {
	return HealthPolicy{
		FailureThreshold: 3,
		Cooldown:         DefaultCooldown,
		RetryAfter:       DefaultRetryAfter,
	}
}

// cooldown resolves the quarantine period.
func (p HealthPolicy) cooldown() time.Duration {
	if p.Cooldown > 0 {
		return p.Cooldown
	}
	return DefaultCooldown
}

// retryAfter resolves the FAILEDTRYLATER hint.
func (p HealthPolicy) retryAfter() time.Duration {
	if p.RetryAfter > 0 {
		return p.RetryAfter
	}
	return DefaultRetryAfter
}

// serverHealth is the breaker state the manager keeps per server.
type serverHealth struct {
	// gen counts failure recordings against the server. Success evidence
	// is stamped with the generation current when it was gathered and
	// only clears breaker state while the generation still matches:
	// a slow commit that reserved before a quarantine tripped must not
	// lift that quarantine when it finally reports in.
	gen uint64
	// consecutive counts capacity-class failures since the last success.
	consecutive int
	// quarantinedUntil is non-zero while the server is quarantined.
	quarantinedUntil time.Time
	// Per-cause counters, exposed through ServerLoads.
	downFailures    int
	reserveFailures int
	connectFailures int
	quarantines     int
}

// healthFor returns the (lazily created) health record for a server; the
// caller must hold healthMu.
func (m *Manager) healthFor(id media.ServerID) *serverHealth {
	h, ok := m.health[id]
	if !ok {
		h = &serverHealth{}
		m.health[id] = h
	}
	return h
}

// recordCommitFailure feeds one failed commit attempt into the outcome
// counters and, for server-attributable causes, the circuit breaker.
func (m *Manager) recordCommitFailure(f *commitFailure) {
	m.met.commitFailure(f.cause)
	m.statsMu.Lock()
	switch f.cause {
	case CauseServerDown:
		m.stats.CommitServerDown++
	case CauseCapacity:
		m.stats.CommitCapacity++
	case CauseConstraint:
		m.stats.CommitConstraint++
	}
	m.statsMu.Unlock()
	if f.server == "" || (f.cause != CauseServerDown && f.cause != CauseCapacity) {
		return
	}

	m.healthMu.Lock()
	h := m.healthFor(f.server)
	h.gen++
	switch f.op {
	case "reserve":
		h.reserveFailures++
	case "connect":
		h.connectFailures++
	}
	quarantine := false
	switch f.cause {
	case CauseServerDown:
		h.downFailures++
		h.consecutive++
		quarantine = true
	case CauseCapacity:
		h.consecutive++
		if t := m.opts.Health.FailureThreshold; t > 0 && h.consecutive >= t {
			quarantine = true
		}
	}
	tripped := false
	if quarantine {
		until := m.now().Add(m.opts.Health.cooldown())
		if until.After(h.quarantinedUntil) {
			tripped = !h.quarantinedUntil.After(m.now())
			h.quarantinedUntil = until
		}
	}
	if tripped {
		h.quarantines++
	}
	consecutive, until := h.consecutive, h.quarantinedUntil
	m.healthMu.Unlock()

	m.met.serverHealthGauges(f.server, consecutive, until)
	if tripped {
		m.exclusionChanged()
		m.met.quarantineTrip()
		m.statsMu.Lock()
		m.stats.Quarantines++
		m.statsMu.Unlock()
		if m.opts.OnQuarantine != nil {
			// Locally gathered breaker evidence only: quarantines applied
			// from a sibling shard go through ApplyQuarantine, which never
			// re-publishes — so evidence crosses the bus exactly once.
			m.opts.OnQuarantine(f.server, until)
		}
		if m.tracing() {
			detail := fmt.Sprintf("%s for %s after %s", f.server, m.opts.Health.cooldown(), f.cause)
			m.trace("quarantine", "", detail)
			m.span(telemetry.Event{Step: telemetry.StepQuarantine, Server: string(f.server), Status: f.cause.String(), Detail: detail})
		}
	}
}

// serverHealthGen snapshots a server's failure-evidence generation. A
// commit attempt captures it before reserving and hands it back to
// recordServerSuccess, which ignores the success if any failure was
// recorded in between.
func (m *Manager) serverHealthGen(id media.ServerID) uint64 {
	m.healthMu.Lock()
	defer m.healthMu.Unlock()
	if h, ok := m.health[id]; ok {
		return h.gen
	}
	return 0
}

// recordServerSuccess resets a server's breaker: a successful reserve and
// connect is proof of health, so the consecutive counter and any pending
// quarantine are cleared — unless the evidence is stale. gen is the
// generation serverHealthGen returned when the successful attempt began;
// if failures were recorded since, they are newer evidence than this
// success and the breaker state stands.
func (m *Manager) recordServerSuccess(id media.ServerID, gen uint64) {
	m.healthMu.Lock()
	h, ok := m.health[id]
	applied, restored := false, false
	if ok && h.gen == gen {
		applied = true
		h.consecutive = 0
		restored = h.quarantinedUntil.After(m.now())
		h.quarantinedUntil = time.Time{}
	}
	m.healthMu.Unlock()
	if applied {
		if restored {
			// The exclusion world shrank: drop candidate sets filtered
			// without the restored server's variants.
			m.exclusionChanged()
		}
		m.met.serverHealthGauges(id, 0, time.Time{})
	}
}

// ApplyQuarantine installs externally gathered breaker evidence: the server
// is quarantined until the given deadline unless a longer local quarantine
// already stands. The sharded fleet calls it on every sibling of the shard
// whose breaker tripped, so one shard's hard-down evidence excludes the
// server fleet-wide without each shard burning its own failed commits.
//
// The failure-evidence generation is bumped so an in-flight local commit
// that started before the evidence arrived cannot clear it on success, and
// Options.OnQuarantine deliberately does not fire — replicated evidence is
// never re-published, which is what makes the propagation loop-free.
func (m *Manager) ApplyQuarantine(id media.ServerID, until time.Time) {
	if !until.After(m.now()) {
		return
	}
	m.healthMu.Lock()
	h := m.healthFor(id)
	h.gen++
	tripped := false
	if until.After(h.quarantinedUntil) {
		tripped = !h.quarantinedUntil.After(m.now())
		h.quarantinedUntil = until
	}
	if tripped {
		h.quarantines++
	}
	consecutive, deadline := h.consecutive, h.quarantinedUntil
	m.healthMu.Unlock()

	m.met.serverHealthGauges(id, consecutive, deadline)
	if tripped {
		m.exclusionChanged()
		m.met.quarantineTrip()
		m.statsMu.Lock()
		m.stats.Quarantines++
		m.statsMu.Unlock()
		if m.tracing() {
			detail := fmt.Sprintf("%s until %s (replicated evidence)", id, until.Format(time.RFC3339))
			m.trace("quarantine", "", detail)
			m.span(telemetry.Event{Step: telemetry.StepQuarantine, Server: string(id), Status: "replicated", Detail: detail})
		}
	}
}

// Quarantined reports whether a server is currently quarantined by the
// circuit breaker and, if so, the remaining cooldown.
func (m *Manager) Quarantined(id media.ServerID) (time.Duration, bool) {
	m.healthMu.Lock()
	defer m.healthMu.Unlock()
	h, ok := m.health[id]
	if !ok {
		return 0, false
	}
	if rem := h.quarantinedUntil.Sub(m.now()); rem > 0 {
		return rem, true
	}
	return 0, false
}

// quarantineExclude snapshots the quarantined-server set as a variant
// filter for classification, plus the longest remaining cooldown (the
// RetryAfter hint when quarantine starves the candidate sets) and the
// order-independent hash of the set — the exclusion-world component of the
// offer-cache key. It returns a nil filter and a zero hash when no server
// is quarantined. Because the hash is computed from the same snapshot the
// filter closes over, a cached candidate set is always keyed by exactly the
// exclusion world it was filtered under — including worlds reached by
// silent time-based quarantine expiry, which simply hash differently.
func (m *Manager) quarantineExclude() (func(media.Variant) bool, time.Duration, uint64) {
	m.healthMu.Lock()
	var quarantined map[media.ServerID]bool
	var ids []media.ServerID
	var longest time.Duration
	now := m.now()
	for id, h := range m.health {
		if rem := h.quarantinedUntil.Sub(now); rem > 0 {
			if quarantined == nil {
				quarantined = make(map[media.ServerID]bool)
			}
			quarantined[id] = true
			ids = append(ids, id)
			if rem > longest {
				longest = rem
			}
		}
	}
	m.healthMu.Unlock()
	if quarantined == nil {
		return nil, 0, 0
	}
	return func(v media.Variant) bool { return quarantined[v.Server] }, longest, offercache.ExclusionHash(ids)
}

// exclusionChanged runs after a breaker transition (trip or restore): cache
// entries filtered under any other exclusion world can no longer be looked
// up — their key has the old hash — so they are dropped promptly instead of
// aging out of the LRU. Correctness does not depend on this (the key alone
// guarantees a hit matches the current world); it reclaims capacity and
// feeds the invalidation counter.
func (m *Manager) exclusionChanged() {
	if m.cache == nil {
		return
	}
	_, _, hash := m.quarantineExclude()
	if n := m.cache.PurgeExclusions(hash); n > 0 {
		m.met.offerCacheInvalidations(n)
		m.met.offerCacheEntries(m.cache.Len())
	}
}

// healthSnapshot copies a server's breaker state into a ServerLoad row.
func (m *Manager) healthSnapshot(row *ServerLoad) {
	m.healthMu.Lock()
	defer m.healthMu.Unlock()
	h, ok := m.health[row.ID]
	if !ok {
		return
	}
	if rem := h.quarantinedUntil.Sub(m.now()); rem > 0 {
		row.Quarantined = true
		row.QuarantineMs = rem.Milliseconds()
	}
	row.ConsecutiveFailures = h.consecutive
	row.DownFailures = h.downFailures
	row.ReserveFailures = h.reserveFailures
	row.ConnectFailures = h.connectFailures
	row.Quarantines = h.quarantines
}
