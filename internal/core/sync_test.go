package core

import (
	"testing"
	"time"

	"qosneg/internal/media"
	"qosneg/internal/qos"
)

// TestCommitEnforcesSyncTolerance verifies the synchronization feasibility
// check: a lip-sync constraint tighter than the committed paths' combined
// jitter makes the configuration uncommittable.
func TestCommitEnforcesSyncTolerance(t *testing.T) {
	b := defaultBed(t)
	doc, err := b.reg.Document("news-1")
	if err != nil {
		t.Fatal(err)
	}
	// The star topology's paths contribute 2 ms jitter each (access +
	// backbone, 1 ms per link); two streams → 4 ms combined bound.
	doc.Temporal = []media.TemporalConstraint{
		{A: "video", B: "audio", Relation: media.Parallel, Tolerance: time.Millisecond},
	}
	if err := b.reg.Add(doc); err != nil {
		t.Fatal(err)
	}
	res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	// The tolerance is a hard constraint of the document: every offer
	// violates it, so the status is FAILEDWITHOUTOFFER (retrying cannot
	// shrink path jitter).
	if res.Status != FailedWithoutOffer {
		t.Fatalf("status = %v; sync tolerance not enforced", res.Status)
	}
	if b.net.ActiveReservations() != 0 {
		t.Error("sync rollback leaked reservations")
	}

	// A realistic 80 ms tolerance (lip-sync) commits fine.
	doc.Temporal[0].Tolerance = 80 * time.Millisecond
	if err := b.reg.Add(doc); err != nil {
		t.Fatal(err)
	}
	res, err = b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Succeeded {
		t.Fatalf("status = %v (%s)", res.Status, res.Reason)
	}
}

// TestCommitIgnoresSyncForDiscreteMedia checks that constraints touching
// discrete media (zero-throughput, no connection jitter) do not block
// commitment.
func TestCommitIgnoresSyncForDiscreteMedia(t *testing.T) {
	b := defaultBed(t)
	doc, _ := b.reg.Document("news-1")
	doc.Monomedia = append(doc.Monomedia, media.Monomedia{
		ID: "caption", Kind: qos.Text,
		Variants: []media.Variant{media.TextVariant("t1", "server-1", qos.English, 256)},
	})
	doc.Temporal = []media.TemporalConstraint{
		{A: "video", B: "caption", Relation: media.Parallel, Tolerance: time.Nanosecond},
	}
	if err := b.reg.Add(doc); err != nil {
		t.Fatal(err)
	}
	res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Succeeded {
		t.Fatalf("status = %v (%s)", res.Status, res.Reason)
	}
}
