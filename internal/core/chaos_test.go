package core

import (
	"fmt"
	"testing"
	"time"

	"qosneg/internal/media"
	"qosneg/internal/network"
	"qosneg/internal/sim"
)

// TestChaosResourceAccounting drives the manager with a long random
// sequence of operations — negotiate, confirm, reject, renegotiate,
// complete, abort, adapt, degrade/recover servers and links — and checks
// the global resource invariant after every step: the number of live
// network reservations equals the number of continuous streams committed
// by sessions in the Reserved or Playing state, and nothing leaks when
// every session is wound down.
func TestChaosResourceAccounting(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1996} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaos(t, seed)
		})
	}
}

func runChaos(t *testing.T, seed int64) {
	b := defaultBed(t)
	rng := sim.NewRand(seed)
	var live []SessionID

	countCommitted := func() int {
		n := 0
		for _, state := range []SessionState{Reserved, Playing} {
			for _, s := range b.man.Sessions(state) {
				for _, ch := range s.Current.Choices {
					if !ch.Variant.NetworkQoS().Zero() {
						n++
					}
				}
			}
		}
		return n
	}
	checkInvariant := func(step int) {
		t.Helper()
		want := countCommitted()
		got := b.net.ActiveReservations()
		if got != want {
			t.Fatalf("seed %d step %d: %d network reservations for %d committed streams",
				seed, step, got, want)
		}
		for id, srv := range b.servers {
			if srv.Utilization() > 1.0000001 {
				t.Fatalf("seed %d step %d: healthy server %s overcommitted", seed, step, id)
			}
		}
	}

	for step := 0; step < 400; step++ {
		switch op := rng.Intn(10); op {
		case 0, 1, 2: // negotiate
			res, err := b.man.Negotiate(b.mach, "news-1", tvProfile())
			if err != nil {
				t.Fatal(err)
			}
			if res.Session != nil {
				live = append(live, res.Session.ID)
			}
		case 3: // confirm a random reserved session
			if id, ok := pick(rng, live); ok {
				b.man.Confirm(id)
			}
		case 4: // reject
			if id, ok := pick(rng, live); ok {
				b.man.Reject(id)
			}
		case 5: // renegotiate
			if id, ok := pick(rng, live); ok {
				b.man.Renegotiate(id, tvProfile())
			}
		case 6: // advance + complete
			if id, ok := pick(rng, live); ok {
				b.man.Advance(id, time.Second)
				b.man.Complete(id)
			}
		case 7: // abort
			if id, ok := pick(rng, live); ok {
				b.man.Abort(id)
			}
		case 8: // degrade or recover a server, then adapt victims
			victim := b.servers[media.ServerID(fmt.Sprintf("server-%d", rng.Intn(len(b.servers))+1))]
			if rng.Intn(2) == 0 {
				victim.SetDegradation(0.9)
			} else {
				victim.SetDegradation(0)
			}
			for _, over := range victim.Overcommitted() {
				if s, ok := b.man.SessionByServerReservation(victim.ID(), over.ID); ok && s.State() == Playing {
					b.man.Adapt(s.ID)
				}
			}
			// Invariant checks below exempt degraded servers; recover
			// for the utilization check's sake.
			victim.SetDegradation(0)
		case 9: // degrade and recover a network link
			link := network.LinkID("backbone-server-1:rev")
			b.net.SetLinkDegradation(link, 0.8)
			for _, over := range b.net.Overcommitted() {
				if s, ok := b.man.SessionByNetworkReservation(over.ID); ok && s.State() == Playing {
					b.man.Adapt(s.ID)
				}
			}
			b.net.SetLinkDegradation(link, 0)
		}
		checkInvariant(step)
	}

	// Wind everything down: no reservations may remain.
	for _, id := range live {
		b.man.Abort(id)
	}
	if got := b.net.ActiveReservations(); got != 0 {
		t.Fatalf("seed %d: %d reservations leaked after winding down", seed, got)
	}
	for id, srv := range b.servers {
		if srv.ActiveStreams() != 0 {
			t.Fatalf("seed %d: server %s leaked %d streams", seed, id, srv.ActiveStreams())
		}
	}
	// Double-entry view of the same invariant, plus: a single-threaded run
	// never races the unlock windows, so the epoch guard must never fire.
	if err := b.led.CheckEmpty(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if got := b.man.Stats().StaleInstalls; got != 0 {
		t.Fatalf("seed %d: %d stale installs in a sequential run", seed, got)
	}
}

func pick(rng *sim.Rand, ids []SessionID) (SessionID, bool) {
	if len(ids) == 0 {
		return 0, false
	}
	return ids[rng.Intn(len(ids))], true
}
