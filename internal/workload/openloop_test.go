package workload

import (
	"context"
	"sync"
	"testing"
	"time"

	"qosneg/internal/sim"
)

func openSpec(shape Shape) OpenLoopSpec {
	s := spec()
	s.MeanInterArrival = 10 * time.Millisecond
	return OpenLoopSpec{Spec: s, Shape: shape}
}

func TestOpenLoopTimelineMonotone(t *testing.T) {
	for _, shape := range []Shape{Poisson, Bursty, Diurnal} {
		o, err := NewOpenLoop(openSpec(shape))
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		last := time.Duration(-1)
		for i := 0; i < 1000; i++ {
			a := o.Next()
			if a.At < last {
				t.Fatalf("%v: arrival %d at %v before previous %v", shape, i, a.At, last)
			}
			last = a.At
		}
	}
}

func TestOpenLoopDeterminism(t *testing.T) {
	o1, _ := NewOpenLoop(openSpec(Diurnal))
	o2, _ := NewOpenLoop(openSpec(Diurnal))
	for i := 0; i < 200; i++ {
		a, b := o1.Next(), o2.Next()
		if a.At != b.At || a.Document != b.Document {
			t.Fatalf("streams diverge at %d: %v vs %v", i, a.At, b.At)
		}
	}
}

func TestBurstyCompressesGaps(t *testing.T) {
	// With a large burst factor the bursty timeline must pack the same
	// number of arrivals into less time than the plain Poisson one.
	plain, _ := NewOpenLoop(openSpec(Poisson))
	burst, _ := NewOpenLoop(openSpec(Bursty))
	var plainEnd, burstEnd time.Duration
	for i := 0; i < 2000; i++ {
		plainEnd = plain.Next().At
		burstEnd = burst.Next().At
	}
	if burstEnd >= plainEnd {
		t.Fatalf("bursty timeline (%v) not denser than poisson (%v)", burstEnd, plainEnd)
	}
}

func TestDiurnalModulatesRate(t *testing.T) {
	// Count arrivals per half-period: the peak half must see more than the
	// trough half.
	s := openSpec(Diurnal)
	s.DiurnalPeriod = time.Second
	s.DiurnalAmplitude = 0.9
	o, err := NewOpenLoop(s)
	if err != nil {
		t.Fatal(err)
	}
	peak, trough := 0, 0
	for i := 0; i < 5000; i++ {
		a := o.Next()
		if a.At%s.DiurnalPeriod < s.DiurnalPeriod/2 {
			peak++
		} else {
			trough++
		}
	}
	if peak <= trough {
		t.Fatalf("diurnal peak half (%d) not denser than trough half (%d)", peak, trough)
	}
}

func TestOpenLoopRunDoesNotWaitForHandlers(t *testing.T) {
	s := openSpec(Poisson)
	s.MeanInterArrival = time.Millisecond
	o, err := NewOpenLoop(s)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	var mu sync.Mutex
	fired := 0
	release := make(chan struct{})
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		done <- o.Run(context.Background(), n, func(Request) {
			mu.Lock()
			fired++
			mu.Unlock()
			<-release // handlers block; the schedule must not
		})
	}()
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		f := fired
		mu.Unlock()
		if f == n {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("only %d/%d arrivals fired while handlers blocked — closed-loop behaviour", f, n)
		case <-time.After(time.Millisecond):
		}
	}
	elapsed := time.Since(start)
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	// All n arrivals fired while every handler was still blocked, well
	// before any completion: the loop is open.
	if elapsed > 4*time.Second {
		t.Fatalf("schedule took %v with blocked handlers", elapsed)
	}
}

func TestOpenLoopRunCancel(t *testing.T) {
	s := openSpec(Poisson)
	s.MeanInterArrival = time.Hour // the second arrival is far away
	o, err := NewOpenLoop(s)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if err := o.Run(ctx, 100, func(Request) {}); err != context.Canceled {
		t.Fatalf("Run under cancellation = %v, want context.Canceled", err)
	}
}

func TestOpenLoopSchedule(t *testing.T) {
	o, err := NewOpenLoop(openSpec(Poisson))
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	var ats []time.Duration
	o.Schedule(eng, 100, func(Request) { ats = append(ats, eng.Now()) })
	eng.RunAll()
	if len(ats) != 100 {
		t.Fatalf("%d arrivals fired, want 100", len(ats))
	}
	for i := 1; i < len(ats); i++ {
		if ats[i] < ats[i-1] {
			t.Fatalf("virtual arrivals out of order at %d", i)
		}
	}
}
