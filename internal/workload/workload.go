// Package workload generates synthetic request streams for the
// reproduction's experiments: Poisson session arrivals, Zipf-skewed
// document popularity and a mix of user profiles. The paper's evaluation is
// qualitative; these workloads quantify its claims (smart negotiation
// increases availability; cost limits greediness) under a controlled,
// seeded load.
package workload

import (
	"fmt"
	"time"

	"qosneg/internal/client"
	"qosneg/internal/media"
	"qosneg/internal/profile"
	"qosneg/internal/sim"
)

// Request is one generated session request.
type Request struct {
	// InterArrival is the gap between the previous request and this one.
	InterArrival time.Duration
	Client       client.Machine
	Document     media.DocumentID
	Profile      profile.UserProfile
}

// Spec parameterizes a Generator.
type Spec struct {
	// Seed makes the stream reproducible.
	Seed int64
	// MeanInterArrival is the Poisson process's mean gap between
	// arrivals.
	MeanInterArrival time.Duration
	// Documents is the catalog, most popular first; popularity is
	// Zipf-distributed with exponent ZipfS (default 1.2).
	Documents []media.DocumentID
	ZipfS     float64
	// Clients issue requests round-robin weighted uniformly.
	Clients []client.Machine
	// Profiles is the profile mix, drawn uniformly unless Weights is
	// set (same length, relative frequencies).
	Profiles []profile.UserProfile
	Weights  []int
}

// Validate reports an error for an unusable spec.
func (s Spec) Validate() error {
	if s.MeanInterArrival <= 0 {
		return fmt.Errorf("workload: non-positive mean inter-arrival")
	}
	if len(s.Documents) == 0 || len(s.Clients) == 0 || len(s.Profiles) == 0 {
		return fmt.Errorf("workload: documents, clients and profiles must be non-empty")
	}
	if s.Weights != nil && len(s.Weights) != len(s.Profiles) {
		return fmt.Errorf("workload: %d weights for %d profiles", len(s.Weights), len(s.Profiles))
	}
	total := 0
	for _, w := range s.Weights {
		if w < 0 {
			return fmt.Errorf("workload: negative weight")
		}
		total += w
	}
	if s.Weights != nil && total == 0 {
		return fmt.Errorf("workload: all weights zero")
	}
	return nil
}

// Generator produces a deterministic request stream.
type Generator struct {
	spec Spec
	rng  *sim.Rand
	wsum int
}

// NewGenerator builds a generator from the spec.
func NewGenerator(spec Spec) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.ZipfS == 0 {
		spec.ZipfS = 1.2
	}
	g := &Generator{spec: spec, rng: sim.NewRand(spec.Seed)}
	for _, w := range spec.Weights {
		g.wsum += w
	}
	return g, nil
}

// Next draws the next request.
func (g *Generator) Next() Request {
	doc := g.spec.Documents[0]
	if len(g.spec.Documents) > 1 {
		doc = g.spec.Documents[g.rng.Zipf(len(g.spec.Documents), g.spec.ZipfS)]
	}
	return Request{
		InterArrival: g.rng.Exp(g.spec.MeanInterArrival),
		Client:       g.spec.Clients[g.rng.Intn(len(g.spec.Clients))],
		Document:     doc,
		Profile:      g.pickProfile(),
	}
}

func (g *Generator) pickProfile() profile.UserProfile {
	if g.wsum == 0 {
		return g.spec.Profiles[g.rng.Intn(len(g.spec.Profiles))]
	}
	r := g.rng.Intn(g.wsum)
	for i, w := range g.spec.Weights {
		if r < w {
			return g.spec.Profiles[i]
		}
		r -= w
	}
	return g.spec.Profiles[len(g.spec.Profiles)-1]
}

// Drive schedules count arrivals on the engine, calling handle for each.
// Arrivals begin one inter-arrival gap after the current virtual time.
func (g *Generator) Drive(eng *sim.Engine, count int, handle func(Request)) {
	var arrive func(remaining int)
	arrive = func(remaining int) {
		if remaining <= 0 {
			return
		}
		req := g.Next()
		eng.MustSchedule(req.InterArrival, func() {
			handle(req)
			arrive(remaining - 1)
		})
	}
	arrive(count)
}
