package workload

import (
	"testing"
	"time"

	"qosneg/internal/client"
	"qosneg/internal/media"
	"qosneg/internal/profile"
	"qosneg/internal/sim"
)

func spec() Spec {
	return Spec{
		Seed:             42,
		MeanInterArrival: 10 * time.Second,
		Documents:        []media.DocumentID{"d1", "d2", "d3", "d4"},
		Clients: []client.Machine{
			client.Workstation("c1", "n1"),
			client.Workstation("c2", "n2"),
		},
		Profiles: profile.DefaultProfiles(),
	}
}

func TestSpecValidate(t *testing.T) {
	if err := spec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []func(*Spec){
		func(s *Spec) { s.MeanInterArrival = 0 },
		func(s *Spec) { s.Documents = nil },
		func(s *Spec) { s.Clients = nil },
		func(s *Spec) { s.Profiles = nil },
		func(s *Spec) { s.Weights = []int{1} },
		func(s *Spec) { s.Weights = []int{0, 0, 0} },
		func(s *Spec) { s.Weights = []int{1, -1, 1} },
	}
	for i, mutate := range bad {
		s := spec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g1, _ := NewGenerator(spec())
	g2, _ := NewGenerator(spec())
	for i := 0; i < 100; i++ {
		a, b := g1.Next(), g2.Next()
		if a.InterArrival != b.InterArrival || a.Document != b.Document ||
			a.Client.ID != b.Client.ID || a.Profile.Name != b.Profile.Name {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestPopularitySkew(t *testing.T) {
	g, _ := NewGenerator(spec())
	counts := map[media.DocumentID]int{}
	for i := 0; i < 5000; i++ {
		counts[g.Next().Document]++
	}
	if counts["d1"] <= counts["d4"] {
		t.Errorf("zipf skew missing: %v", counts)
	}
	if len(counts) < 3 {
		t.Errorf("popularity too concentrated: %v", counts)
	}
}

func TestProfileWeights(t *testing.T) {
	s := spec()
	s.Weights = []int{0, 0, 1} // only the third profile
	g, err := NewGenerator(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if got := g.Next().Profile.Name; got != s.Profiles[2].Name {
			t.Fatalf("weighted draw picked %s", got)
		}
	}
}

func TestMeanInterArrival(t *testing.T) {
	g, _ := NewGenerator(spec())
	var sum time.Duration
	const n = 5000
	for i := 0; i < n; i++ {
		sum += g.Next().InterArrival
	}
	mean := float64(sum) / n / float64(10*time.Second)
	if mean < 0.9 || mean > 1.1 {
		t.Errorf("mean inter-arrival ratio = %.3f", mean)
	}
}

func TestDrive(t *testing.T) {
	g, _ := NewGenerator(spec())
	eng := sim.NewEngine()
	var got []Request
	g.Drive(eng, 20, func(r Request) { got = append(got, r) })
	eng.RunAll()
	if len(got) != 20 {
		t.Fatalf("handled %d requests", len(got))
	}
	if eng.Now() == 0 {
		t.Error("virtual time did not advance")
	}
}
