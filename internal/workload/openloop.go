package workload

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"qosneg/internal/sim"
)

// Shape selects the arrival-rate envelope of an open-loop schedule.
type Shape int

const (
	// Poisson arrivals at a constant mean rate.
	Poisson Shape = iota
	// Bursty alternates on/off duty phases: during a burst the rate is
	// multiplied by BurstFactor, between bursts it drops to the base rate.
	Bursty
	// Diurnal modulates the rate sinusoidally around the mean with period
	// DiurnalPeriod — a compressed day/night cycle.
	Diurnal
)

func (s Shape) String() string {
	switch s {
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	case Diurnal:
		return "diurnal"
	}
	return fmt.Sprintf("shape(%d)", int(s))
}

// OpenLoopSpec parameterizes an open-loop schedule: arrivals are placed on
// an absolute timeline up front, independent of completions. A closed-loop
// driver (Generator.Drive) waits for each handler and so can never overload
// the system under test; an open loop keeps sending at the scheduled rate —
// the only way to observe shedding behaviour.
type OpenLoopSpec struct {
	Spec
	Shape Shape
	// BurstFactor multiplies the arrival rate during a burst (Bursty only;
	// default 10). BurstOn/BurstOff set the duty cycle (defaults 200ms on,
	// 800ms off).
	BurstFactor float64
	BurstOn     time.Duration
	BurstOff    time.Duration
	// DiurnalPeriod is the sinusoid's period (Diurnal only; default 2s);
	// DiurnalAmplitude in [0,1) scales the swing around the mean rate
	// (default 0.8).
	DiurnalPeriod    time.Duration
	DiurnalAmplitude float64
}

// Arrival is one scheduled request on the open-loop timeline.
type Arrival struct {
	// At is the offset from schedule start.
	At time.Duration
	Request
}

// OpenLoop generates arrivals on an absolute timeline.
type OpenLoop struct {
	gen    *Generator
	spec   OpenLoopSpec
	cursor time.Duration
}

// NewOpenLoop builds an open-loop schedule generator.
func NewOpenLoop(spec OpenLoopSpec) (*OpenLoop, error) {
	gen, err := NewGenerator(spec.Spec)
	if err != nil {
		return nil, err
	}
	if spec.BurstFactor <= 0 {
		spec.BurstFactor = 10
	}
	if spec.BurstOn <= 0 {
		spec.BurstOn = 200 * time.Millisecond
	}
	if spec.BurstOff <= 0 {
		spec.BurstOff = 800 * time.Millisecond
	}
	if spec.DiurnalPeriod <= 0 {
		spec.DiurnalPeriod = 2 * time.Second
	}
	if spec.DiurnalAmplitude <= 0 || spec.DiurnalAmplitude >= 1 {
		spec.DiurnalAmplitude = 0.8
	}
	return &OpenLoop{gen: gen, spec: spec}, nil
}

// Next places the next arrival on the timeline. The base generator draws an
// exponential gap; the shape warps it by the instantaneous rate multiplier
// at the cursor, so bursts compress gaps and troughs stretch them.
func (o *OpenLoop) Next() Arrival {
	req := o.gen.Next()
	gap := req.InterArrival
	switch o.spec.Shape {
	case Bursty:
		cycle := o.spec.BurstOn + o.spec.BurstOff
		if o.cursor%cycle < o.spec.BurstOn {
			gap = time.Duration(float64(gap) / o.spec.BurstFactor)
		}
	case Diurnal:
		phase := 2 * math.Pi * float64(o.cursor%o.spec.DiurnalPeriod) / float64(o.spec.DiurnalPeriod)
		rate := 1 + o.spec.DiurnalAmplitude*math.Sin(phase)
		gap = time.Duration(float64(gap) / rate)
	}
	if gap < 0 {
		gap = 0
	}
	o.cursor += gap
	return Arrival{At: o.cursor, Request: req}
}

// Run fires count arrivals in real time: each handler runs on its own
// goroutine at its scheduled instant whether or not earlier handlers have
// finished — the schedule never waits for completions. Run returns once
// every handler has returned or ctx is canceled (scheduled-but-unfired
// arrivals are dropped on cancellation; in-flight handlers are awaited
// either way).
func (o *OpenLoop) Run(ctx context.Context, count int, handle func(Request)) error {
	start := time.Now()
	var wg sync.WaitGroup
	defer wg.Wait()
	for i := 0; i < count; i++ {
		a := o.Next()
		if d := a.At - time.Since(start); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
		} else if err := ctx.Err(); err != nil {
			// Even when behind schedule, cancellation still stops the loop.
			return err
		}
		wg.Add(1)
		go func(req Request) {
			defer wg.Done()
			handle(req)
		}(a.Request)
	}
	return nil
}

// Schedule places count arrivals on a simulation engine at their absolute
// offsets — the discrete-event twin of Run, for experiments on virtual time.
// Unlike Generator.Drive, the next arrival is scheduled up front rather than
// from inside the previous handler, so a slow handler cannot delay the
// stream.
func (o *OpenLoop) Schedule(eng *sim.Engine, count int, handle func(Request)) {
	for i := 0; i < count; i++ {
		a := o.Next()
		req := a.Request
		eng.MustSchedule(a.At, func() { handle(req) })
	}
}
