package experiments

import (
	"fmt"
	"io"
	"time"

	"qosneg/internal/adaptation"
	"qosneg/internal/cmfs"
	"qosneg/internal/core"
	"qosneg/internal/media"
	"qosneg/internal/qos"
	"qosneg/internal/session"
	"qosneg/internal/sim"
	"qosneg/internal/testbed"
)

// This file regenerates the substrate ablations: E16 quantifies the paper's
// fourth design characteristic ("automatic adaptation to react to QoS
// degradations without the direct intervention by the user/application") by
// running the same congestion scenario with and without the adaptation
// monitor; E17 ablates the CMFS admission policy (the [Neu 96] VBR design
// point the server substrate encodes).

func init() {
	register(Experiment{
		ID:    "E16",
		Title: "Adaptation on/off: session survival under congestion",
		Paper: "design characteristic (4), Section 1/4",
		Run:   runE16,
	})
	register(Experiment{
		ID:    "E17",
		Title: "CMFS admission policy: by-average vs. by-peak",
		Paper: "[Neu 96] substrate design point",
		Run:   runE17,
	})
}

func runE16(w io.Writer) error {
	fmt.Fprintln(w, "8 concurrent 2-minute sessions across 2 servers; at t=30s one server loses")
	fmt.Fprintln(w, "90% of its disk bandwidth for the rest of the run.")
	offViol := 0
	for _, withMonitor := range []bool{false, true} {
		completed, aborted, adapted, violSecs := runE16One(withMonitor)
		label := "adaptation OFF"
		if withMonitor {
			label = "adaptation ON"
		} else {
			offViol = violSecs
		}
		fmt.Fprintf(w, "%-15s completed %d/8, aborted %d, transitions %d, violated-QoS stream-seconds %d\n",
			label, completed, aborted, adapted, violSecs)
		if withMonitor && violSecs >= offViol {
			return fmt.Errorf("adaptation did not reduce violation time (%d vs %d)", violSecs, offViol)
		}
	}
	fmt.Fprintln(w, "expected shape: without the monitor the congested server stays overcommitted")
	fmt.Fprintln(w, "until its sessions drain (every affected second is a stalling player); with")
	fmt.Fprintln(w, "the monitor the violations are repaired within one scan interval.")
	return nil
}

// runE16One returns (completed, aborted, transitions, violatedStreamSeconds).
func runE16One(withMonitor bool) (int, int, int, int) {
	bed := testbed.MustNew(testbed.Spec{
		Clients:        4,
		Servers:        2,
		AccessCapacity: 25 * qos.MBitPerSecond,
	})
	if _, err := bed.AddNewsArticle("news-1", "Article", 2*time.Minute); err != nil {
		panic(err)
	}
	doc, _ := bed.Registry.Document("news-1")

	eng := sim.NewEngine()
	player := session.NewPlayer(eng, bed.Manager)
	if withMonitor {
		var servers []*cmfs.Server
		for _, id := range bed.ServerIDs() {
			servers = append(servers, bed.Servers[id])
		}
		adaptation.New(bed.Manager, bed.Network, servers...).Attach(eng, 5*time.Second, nil)
	}
	completed, aborted := 0, 0
	transitions := 0
	for i := 0; i < 8; i++ {
		res, err := bed.Manager.Negotiate(bed.Client(i%4+1), "news-1", tvRequest())
		if err != nil || !res.Status.Reserved() {
			continue
		}
		if err := player.Play(res.Session, doc, func(o session.Outcome) {
			transitions += o.Transitions
			if o.State == core.Completed {
				completed++
			} else {
				aborted++
			}
		}); err != nil {
			panic(err)
		}
	}
	eng.MustSchedule(30*time.Second, func() {
		bed.Servers["server-1"].SetDegradation(0.9)
	})
	// Sample violated streams once per virtual second.
	violSecs := 0
	var sample func()
	sample = func() {
		for _, id := range bed.ServerIDs() {
			violSecs += len(bed.Servers[id].Overcommitted())
		}
		violSecs += len(bed.Network.Overcommitted())
		eng.MustSchedule(time.Second, sample)
	}
	eng.MustSchedule(time.Second, sample)
	eng.Run(4 * time.Minute)
	return completed, aborted, transitions, violSecs
}

func runE17(w io.Writer) error {
	fmt.Fprintln(w, "one 64 Mbit/s CMFS; VBR video streams with avg 2 Mbit/s, peak 6 Mbit/s")
	fmt.Fprintln(w, "(3:1 burstiness, typical MPEG-1 with large I-frames).")
	n := qos.NetworkQoS{MaxBitRate: 6 * qos.MBitPerSecond, AvgBitRate: 2 * qos.MBitPerSecond}
	for _, policy := range []cmfs.AdmissionPolicy{cmfs.ByPeak, cmfs.ByAverage} {
		cfg := cmfs.DefaultConfig()
		cfg.Policy = policy
		srv := cmfs.MustServer(media.ServerID("s1"), cfg)
		admitted := 0
		for {
			if _, err := srv.Reserve(n); err != nil {
				break
			}
			admitted++
		}
		fmt.Fprintf(w, "%-11s admits %2d streams (utilization %.2f)\n",
			policy, admitted, srv.Utilization())
	}
	fmt.Fprintln(w, "expected shape: average-rate admission (the [Neu 96] statistical-multiplexing")
	fmt.Fprintln(w, "design, peaks absorbed by client buffers) carries ~3× the deterministic")
	fmt.Fprintln(w, "peak-rate admission — the reason the prototype's CMFS is a VBR server.")
	return nil
}

func init() {
	register(Experiment{
		ID:    "E18",
		Title: "Variant replication: copies as variants vs. availability",
		Paper: "Section 2 (\"copies of the same file are considered also as variants\")",
		Run:   runE18,
	})
}

func runE18(w io.Writer) error {
	fmt.Fprintln(w, "60 back-to-back requests, 3 servers; the catalog's variants are replicated")
	fmt.Fprintln(w, "onto 1, 2 or 3 servers. More copies = more placements for steps 4-5 to")
	fmt.Fprintln(w, "choose from when a server fills up.")
	base := 0
	for _, factor := range []int{1, 2, 3} {
		accepted := runE18One(factor)
		fmt.Fprintf(w, "replication %d: %2d/60 accepted\n", factor, accepted)
		if factor == 1 {
			base = accepted
		} else if accepted < base {
			return fmt.Errorf("replication %d accepted %d < unreplicated %d", factor, accepted, base)
		}
	}
	fmt.Fprintln(w, "expected shape: replication lifts acceptance until another resource (the")
	fmt.Fprintln(w, "client access links) becomes the bottleneck.")
	return nil
}

func runE18One(factor int) int {
	// Small servers so placement headroom matters.
	cfg := cmfs.Config{
		DiskRate:    24 * qos.MBitPerSecond,
		SeekTime:    4 * time.Millisecond,
		RoundLength: time.Second,
		MaxStreams:  64,
	}
	bed := testbed.MustNew(testbed.Spec{
		Clients:        6,
		Servers:        3,
		AccessCapacity: 100 * qos.MBitPerSecond,
		ServerConfig:   &cfg,
	})
	// A skewed catalog: every variant of the hot article initially lives
	// on server-1.
	doc := media.BuildNewsArticle(media.NewsArticleSpec{
		ID:       "hot-1",
		Title:    "Hot article",
		Duration: 2 * time.Minute,
		Servers:  []media.ServerID{"server-1"},
		VideoQualities: []qos.VideoQoS{
			{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			{Color: qos.Grey, FrameRate: 15, Resolution: qos.TVResolution},
		},
		AudioQualities: []qos.AudioQoS{
			{Grade: qos.CDQuality, Language: qos.English},
			{Grade: qos.TelephoneQuality, Language: qos.English},
		},
	})
	doc = media.Replicate(doc, []media.ServerID{"server-1", "server-2", "server-3"}, factor)
	if err := bed.Registry.Add(doc); err != nil {
		panic(err)
	}
	accepted := 0
	for i := 0; i < 60; i++ {
		res, err := bed.Manager.Negotiate(bed.Client(i%6+1), "hot-1", tvRequest())
		if err != nil {
			panic(err)
		}
		if res.Status.Reserved() {
			accepted++ // sessions stay live: back-to-back load
		}
	}
	return accepted
}
