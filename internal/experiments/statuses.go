package experiments

import (
	"fmt"
	"io"
	"time"

	"qosneg/internal/cmfs"
	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
	"qosneg/internal/testbed"
)

// This file regenerates E6: one concrete scenario per negotiation status of
// Section 4.

func init() {
	register(Experiment{
		ID:    "E6",
		Title: "One scenario per negotiation status",
		Paper: "Section 4",
		Run:   runE6,
	})
}

// tvRequest is the standard request used by the status scenarios.
func tvRequest() profile.UserProfile {
	return profile.UserProfile{
		Name: "tv",
		Desired: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.CDQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(12)},
		},
		Worst: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.BlackWhite, FrameRate: 10, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.TelephoneQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(12)},
		},
		Importance: profile.DefaultImportance(),
	}
}

func runE6(w io.Writer) error {
	report := func(name, setup string, res core.Result) {
		fmt.Fprintf(w, "%-22s %s\n", res.Status, setup)
		if res.Offer != nil && res.Offer.Video != nil {
			fmt.Fprintf(w, "%22s offer: video %s", "", res.Offer.Video)
			if res.Session != nil {
				fmt.Fprintf(w, " at %s", res.Session.Cost())
			}
			fmt.Fprintln(w)
		}
		if res.Reason != "" {
			fmt.Fprintf(w, "%22s reason: %s\n", "", res.Reason)
		}
		_ = name
	}

	// SUCCEEDED: the plain prototype.
	{
		bed := testbed.MustNew(testbed.Spec{})
		if _, err := bed.AddNewsArticle("news-1", "Election night", 2*time.Minute); err != nil {
			return err
		}
		res, err := bed.Manager.Negotiate(bed.Client(1), "news-1", tvRequest())
		if err != nil {
			return err
		}
		report("succeeded", "full-capability client, idle system", res)
	}

	// FAILEDWITHOFFER: desired quality exists nowhere; best feasible offer
	// is reserved anyway.
	{
		bed := testbed.MustNew(testbed.Spec{})
		if _, err := bed.AddNewsArticle("news-1", "Election night", 2*time.Minute); err != nil {
			return err
		}
		u := tvRequest()
		u.Desired.Video.Color = qos.SuperColor // no super-color variant exists
		u.Worst.Video.Color = qos.SuperColor
		res, err := bed.Manager.Negotiate(bed.Client(1), "news-1", u)
		if err != nil {
			return err
		}
		report("failedwithoffer", "super-color demanded, best stored variant is color", res)
	}

	// FAILEDTRYLATER: servers with no admission capacity.
	{
		cfg := cmfs.Config{DiskRate: 64 * qos.KBitPerSecond, SeekTime: time.Millisecond,
			RoundLength: time.Second, MaxStreams: 1}
		bed := testbed.MustNew(testbed.Spec{ServerConfig: &cfg})
		if _, err := bed.AddNewsArticle("news-1", "Election night", 2*time.Minute); err != nil {
			return err
		}
		res, err := bed.Manager.Negotiate(bed.Client(1), "news-1", tvRequest())
		if err != nil {
			return err
		}
		report("failedtrylater", "servers too small to admit any stream", res)
	}

	// FAILEDWITHOUTOFFER: no decoder for the audio monomedia.
	{
		bed := testbed.MustNew(testbed.Spec{})
		if _, err := bed.AddNewsArticle("news-1", "Election night", 2*time.Minute); err != nil {
			return err
		}
		mach := bed.Client(1)
		mach.Decoders = []media.Format{media.MPEG1, media.GIF, media.PlainText}
		res, err := bed.Manager.Negotiate(mach, "news-1", tvRequest())
		if err != nil {
			return err
		}
		report("failedwithoutoffer", "client lacks any audio decoder", res)
	}

	// FAILEDWITHLOCALOFFER: the paper's color-on-black&white example.
	{
		bed := testbed.MustNew(testbed.Spec{})
		if _, err := bed.AddNewsArticle("news-1", "Election night", 2*time.Minute); err != nil {
			return err
		}
		mach := bed.Client(1)
		mach.Display.Color = qos.BlackWhite
		res, err := bed.Manager.Negotiate(mach, "news-1", tvRequest())
		if err != nil {
			return err
		}
		report("failedwithlocaloffer", "color video requested on a black&white screen", res)
		for _, v := range res.Violations {
			fmt.Fprintf(w, "%22s violation: %s\n", "", v)
		}
	}
	return nil
}
