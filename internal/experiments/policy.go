package experiments

import (
	"fmt"
	"io"
	"time"

	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/faults"
	"qosneg/internal/media"
	"qosneg/internal/policy"
	"qosneg/internal/qos"
	"qosneg/internal/testbed"
)

func init() {
	register(Experiment{
		ID:    "E20",
		Title: "Learning-based server selection: static tie-break vs contextual bandit",
		Paper: "extension; step 5's arbitrary tie-break made learnable (DESIGN.md §15)",
		Run:   runE20,
	})
}

// e20Article is a news article whose every quality level is replicated on
// all three servers: the classifier ranks the replicas equal (same QoS,
// same OIF, same cost), so step 5 faces a genuine tie and the policy layer
// decides which server to try first. The classical tie-break falls through
// to the offer key — variant ids — which always prefers server-1.
func e20Article(id media.DocumentID) media.Document {
	const duration = 2 * time.Minute
	servers := []media.ServerID{"server-1", "server-2", "server-3"}
	doc := media.Document{ID: id, Title: "Replicated article " + string(id), CopyrightFee: 500}
	video := media.Monomedia{ID: "video", Kind: qos.Video, Name: "video", Duration: duration}
	for qi, v := range []qos.VideoQoS{
		{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
		{Color: qos.BlackWhite, FrameRate: 10, Resolution: qos.TVResolution},
	} {
		for si, srv := range servers {
			vid := media.VariantID(fmt.Sprintf("video-q%d-s%d", qi+1, si+1))
			video.Variants = append(video.Variants, media.VideoVariant(vid, srv, media.MPEG1, v, duration))
		}
	}
	doc.Monomedia = append(doc.Monomedia, video)
	audio := media.Monomedia{ID: "audio", Kind: qos.Audio, Name: "audio", Duration: duration}
	audio.Variants = append(audio.Variants,
		media.AudioVariant("audio-v1", "server-2", media.MPEG1Audio, qos.AudioQoS{Grade: qos.CDQuality}, duration))
	doc.Monomedia = append(doc.Monomedia, audio)
	doc.Temporal = append(doc.Temporal, media.TemporalConstraint{
		A: "video", B: "audio", Relation: media.Parallel, Tolerance: 80 * time.Millisecond,
	})
	return doc
}

// e20Bed assembles the study substrate: 3 servers, the replicated catalog,
// and a deterministic injector. The circuit breaker is disabled so the
// comparison isolates what the *policy* learns — with the breaker on, a
// quarantine would eventually rescue the static order too, and the study
// would measure the breaker's threshold instead of the policy.
func e20Bed(bandit bool, faulty bool) (*testbed.Bed, *faults.Injector, *policy.Bandit) {
	opts := core.DefaultOptions()
	opts.Health = core.HealthPolicy{FailureThreshold: 0}
	var b *policy.Bandit
	if bandit {
		b = policy.NewBandit(policy.DefaultConfig())
		opts.Selection = b
		opts.Adaptation = b
	}
	inj := faults.New(1996)
	bed := testbed.MustNew(testbed.Spec{
		Clients: 2,
		Servers: 3,
		Options: &opts,
		Faults:  inj,
	})
	if err := bed.Registry.Add(e20Article("news-1")); err != nil {
		panic(err)
	}
	if faulty {
		// The fault weather targets exactly the server the classical
		// tie-break prefers: server-1 drops 90% of reservations.
		if s, ok := inj.Server("server-1"); ok {
			s.SetReserveFailure(0.9)
		}
	}
	return bed, inj, b
}

// e20Outcome tallies one policy × scenario run.
type e20Outcome struct {
	negotiations  int
	succeeded     int
	failedCommits int
	// lastFailing is the 1-based index of the last negotiation that burned
	// at least one failed commit attempt — the policy's time-to-adapt in
	// units of negotiations (0: never failed).
	lastFailing int
	goodput     float64 // successful negotiations per second
	leak        error
}

func (o e20Outcome) failRate() float64 {
	if o.negotiations == 0 {
		return 0
	}
	return float64(o.failedCommits) / float64(o.negotiations)
}

// e20Drive runs count sequential negotiations and winds each one down,
// tracking per-negotiation commit-failure deltas.
func e20Drive(bandit, faulty bool, count int) e20Outcome {
	bed, _, _ := e20Bed(bandit, faulty)
	u := tvRequest()
	u.Desired.Cost.MaxCost = cost.Dollars(20)
	u.Worst.Cost.MaxCost = cost.Dollars(20)
	out := e20Outcome{negotiations: count}
	prevFails := 0
	start := time.Now()
	for i := 1; i <= count; i++ {
		res, err := bed.Manager.Negotiate(bed.Client(1+i%2), "news-1", u)
		if err != nil {
			break
		}
		if res.Session != nil {
			if res.Status.Reserved() {
				out.succeeded++
			}
			bed.Manager.Reject(res.Session.ID)
		}
		st := bed.Manager.Stats()
		fails := st.CommitServerDown + st.CommitCapacity + st.CommitConstraint
		if fails > prevFails {
			out.lastFailing = i
		}
		prevFails = fails
	}
	out.failedCommits = prevFails
	out.goodput = float64(out.succeeded) / time.Since(start).Seconds()
	out.leak = bed.Ledger.CheckEmpty()
	return out
}

// runE20 is the selection-policy study: identical catalogs, identical fault
// weather, the only difference being who orders step 5's tie runs — the
// paper's fixed tie-break or the learning bandit. On the clean scenario the
// two must tie (no failures for either); under faults the bandit must burn
// strictly fewer failed commitments and stop failing earlier, because after
// a handful of observations it stops leading with the flaky server the
// lexical tie-break is locked onto.
func runE20(w io.Writer) error {
	const count = 150
	fmt.Fprintln(w, "3 servers, every video quality replicated on all of them: the classifier ranks")
	fmt.Fprintln(w, "the replicas equal, so step 5's order among them is the policy's to choose.")
	fmt.Fprintln(w, "Classical order always tries server-1 first (offer-key tie-break); the faulty")
	fmt.Fprintln(w, "scenario makes exactly that server drop 90% of reservations. Breaker disabled")
	fmt.Fprintf(w, "to isolate the policy; %d sequential negotiations per cell.\n\n", count)
	fmt.Fprintf(w, "%-8s %-8s %9s %12s %11s %14s %10s\n",
		"scenario", "policy", "accepted", "failedCommit", "fails/neg", "lastFail@neg", "goodput/s")
	type cell struct {
		scenario string
		faulty   bool
		bandit   bool
	}
	results := map[cell]e20Outcome{}
	for _, c := range []cell{
		{"clean", false, false}, {"clean", false, true},
		{"faulty", true, false}, {"faulty", true, true},
	} {
		out := e20Drive(c.bandit, c.faulty, count)
		results[c] = out
		name := "static"
		if c.bandit {
			name = "bandit"
		}
		fmt.Fprintf(w, "%-8s %-8s %9d %12d %11.2f %14d %10.0f\n",
			c.scenario, name, out.succeeded, out.failedCommits, out.failRate(), out.lastFailing, out.goodput)
		if out.leak != nil {
			fmt.Fprintf(w, "  LEAK in %s/%s: %v\n", c.scenario, name, out.leak)
		}
	}
	cleanStatic := results[cell{"clean", false, false}]
	cleanBandit := results[cell{"clean", false, true}]
	faultyStatic := results[cell{"faulty", true, false}]
	faultyBandit := results[cell{"faulty", true, true}]
	fmt.Fprintln(w)
	switch {
	case cleanStatic.failedCommits != 0 || cleanBandit.failedCommits != 0:
		fmt.Fprintln(w, "UNEXPECTED: failures on the clean scenario")
	case faultyBandit.failedCommits >= faultyStatic.failedCommits:
		fmt.Fprintln(w, "UNEXPECTED: bandit did not beat the static tie-break under faults")
	case faultyBandit.lastFailing >= faultyStatic.lastFailing:
		fmt.Fprintln(w, "UNEXPECTED: bandit did not stop failing earlier than static")
	default:
		fmt.Fprintf(w, "bandit burned %.0f%% fewer failed commitments than static under identical\n",
			100*(1-float64(faultyBandit.failedCommits)/float64(faultyStatic.failedCommits)))
		fmt.Fprintf(w, "fault weather (last failed attempt at negotiation %d vs %d) and tied clean;\n",
			faultyBandit.lastFailing, faultyStatic.lastFailing)
		fmt.Fprintln(w, "ledger: empty after every cell (all reservations wound down)")
	}
	return nil
}
