package experiments

import (
	"fmt"
	"io"
	"time"

	"qosneg/internal/client"
	"qosneg/internal/cmfs"
	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/network"
	"qosneg/internal/offer"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
	"qosneg/internal/sim"
	"qosneg/internal/testbed"
	"qosneg/internal/transport"
	"qosneg/internal/workload"
)

// This file regenerates the synthetic studies: E8 (blocking probability
// under load: smart negotiation vs. the basic negotiation of existing QoS
// architectures), E9 (offer enumeration/classification scaling), E11
// (document-level atomic negotiation vs. per-monomedia greedy negotiation)
// and E12 (cost constraints limiting user greediness).

func init() {
	register(Experiment{
		ID:    "E8",
		Title: "Blocking probability vs. load: smart vs. basic negotiation",
		Paper: "claim: \"smart negotiation ... increases the availability of the system\"",
		Run:   runE8,
	})
	register(Experiment{
		ID:    "E9",
		Title: "Offer enumeration and classification scaling",
		Paper: "Section 4 steps 2–4 (scalability)",
		Run:   runE9,
	})
	register(Experiment{
		ID:    "E11",
		Title: "Document-level atomic negotiation vs. per-monomedia greedy",
		Paper: "claim: negotiation of a multimedia object \"as an atomic object\"",
		Run:   runE11,
	})
	register(Experiment{
		ID:    "E12",
		Title: "Cost constraints limit greediness and blocking",
		Paper: "Section 7 (cost rationale)",
		Run:   runE12,
	})
}

// manualCommit reserves the resources of one ranked offer directly against
// the substrate — the commitment step extracted for the baseline
// negotiators that bypass the QoS manager. It returns a release function,
// or ok=false after rolling back.
func manualCommit(bed *testbed.Bed, mach client.Machine, r offer.Ranked) (release func(), ok bool) {
	var serverRes []struct {
		srv *cmfs.Server
		id  cmfs.ReservationID
	}
	var conns []transport.Connection
	rollback := func() {
		for _, sr := range serverRes {
			sr.srv.Release(sr.id)
		}
		for _, c := range conns {
			bed.Transit.Close(c)
		}
	}
	for _, ch := range r.Choices {
		srv, okSrv := bed.Servers[ch.Variant.Server]
		if !okSrv {
			rollback()
			return nil, false
		}
		netQoS := ch.Variant.NetworkQoS()
		res, err := srv.Reserve(netQoS)
		if err != nil {
			rollback()
			return nil, false
		}
		serverRes = append(serverRes, struct {
			srv *cmfs.Server
			id  cmfs.ReservationID
		}{srv, res.ID})
		conn, err := bed.Transit.Connect(network.NodeID(ch.Variant.Server), mach.Node, netQoS)
		if err != nil {
			rollback()
			return nil, false
		}
		conns = append(conns, conn)
	}
	return rollback, true
}

// basicNegotiate models the "basic negotiation provided by the existing QoS
// architectures" that the paper contrasts with: the system checks whether
// the user's exact request can be supported and reserves it, or rejects —
// no classification of alternatives, no degraded offers.
func basicNegotiate(bed *testbed.Bed, mach client.Machine, doc media.Document, u profile.UserProfile) (release func(), ok bool) {
	offers, err := offer.Enumerate(doc, mach, bed.Pricing, offer.EnumerateOptions{})
	if err != nil {
		return nil, false
	}
	ranked := offer.Classify(offers, u)
	for _, r := range ranked {
		if r.Status != offer.Desirable {
			continue
		}
		if rel, ok := manualCommit(bed, mach, r); ok {
			return rel, true
		}
		// Basic negotiation tries only the request itself: the first
		// desirable configuration. No fallback.
		return nil, false
	}
	return nil, false
}

// e8Profile is a TV-quality request with head-room for degradation.
func e8Profile() profile.UserProfile {
	u := tvRequest()
	u.Desired.Cost.MaxCost = cost.Dollars(20)
	u.Worst.Cost.MaxCost = cost.Dollars(20)
	return u
}

func runE8(w io.Writer) error {
	const (
		arrivals = 120
		docs     = 6
	)
	fmt.Fprintln(w, "3 servers, 4 clients, 25 Mbit/s access links; 120 Poisson arrivals over a")
	fmt.Fprintln(w, "Zipf(1.2) catalog of 6 two-minute articles; sessions hold resources to completion.")
	fmt.Fprintln(w, "smart = paper's procedure (degraded offers allowed); basic = exact request or reject.")
	fmt.Fprintf(w, "%-18s %-42s %s\n", "mean inter-arrival", "smart: accept% desired-QoS% degraded%", "basic: accept%")

	for _, mean := range []time.Duration{20 * time.Second, 10 * time.Second, 5 * time.Second, 2 * time.Second} {
		smart := runE8Smart(mean, arrivals, docs)
		basic := runE8Basic(mean, arrivals, docs)
		fmt.Fprintf(w, "%-18s accept %5.1f%%  full %5.1f%%  degraded %5.1f%%      %5.1f%%\n",
			mean, smart.acceptPct(), smart.fullPct(), smart.degradedPct(), basic.acceptPct())
	}
	fmt.Fprintln(w, "expected shape: acceptance falls with load for both; smart keeps accepting")
	fmt.Fprintln(w, "(at degraded QoS) well past the load where basic negotiation starts blocking.")
	return nil
}

type e8Counts struct {
	requests, full, degraded int
}

func (c e8Counts) acceptPct() float64 {
	return 100 * float64(c.full+c.degraded) / float64(c.requests)
}
func (c e8Counts) fullPct() float64     { return 100 * float64(c.full) / float64(c.requests) }
func (c e8Counts) degradedPct() float64 { return 100 * float64(c.degraded) / float64(c.requests) }

func e8Bed() (*testbed.Bed, []media.DocumentID) {
	bed := testbed.MustNew(testbed.Spec{
		Clients:        4,
		Servers:        3,
		AccessCapacity: 25 * qos.MBitPerSecond,
	})
	var ids []media.DocumentID
	for i := 1; i <= 6; i++ {
		id := media.DocumentID(fmt.Sprintf("news-%d", i))
		bed.AddNewsArticle(id, fmt.Sprintf("Article %d", i), 2*time.Minute)
		ids = append(ids, id)
	}
	return bed, ids
}

func e8Workload(bed *testbed.Bed, ids []media.DocumentID, mean time.Duration) *workload.Generator {
	var clients []client.Machine
	for i := 1; i <= 4; i++ {
		clients = append(clients, bed.Client(i))
	}
	g, err := workload.NewGenerator(workload.Spec{
		Seed:             1996,
		MeanInterArrival: mean,
		Documents:        ids,
		Clients:          clients,
		Profiles:         []profile.UserProfile{e8Profile()},
	})
	if err != nil {
		panic(err)
	}
	return g
}

func runE8Smart(mean time.Duration, arrivals, docs int) e8Counts {
	bed, ids := e8Bed()
	g := e8Workload(bed, ids, mean)
	eng := sim.NewEngine()
	var counts e8Counts
	g.Drive(eng, arrivals, func(req workload.Request) {
		counts.requests++
		res, err := bed.Manager.Negotiate(req.Client, req.Document, req.Profile)
		if err != nil || !res.Status.Reserved() {
			return
		}
		if res.Session.Current.Status == offer.Desirable {
			counts.full++
		} else {
			counts.degraded++
		}
		bed.Manager.Confirm(res.Session.ID)
		doc, _ := bed.Registry.Document(req.Document)
		id := res.Session.ID
		eng.MustSchedule(doc.Duration(), func() {
			bed.Manager.Complete(id)
		})
	})
	eng.RunAll()
	return counts
}

func runE8Basic(mean time.Duration, arrivals, docs int) e8Counts {
	bed, ids := e8Bed()
	g := e8Workload(bed, ids, mean)
	eng := sim.NewEngine()
	var counts e8Counts
	g.Drive(eng, arrivals, func(req workload.Request) {
		counts.requests++
		doc, err := bed.Registry.Document(req.Document)
		if err != nil {
			return
		}
		release, ok := basicNegotiate(bed, req.Client, doc, req.Profile)
		if !ok {
			return
		}
		counts.full++
		eng.MustSchedule(doc.Duration(), release)
	})
	eng.RunAll()
	return counts
}

// synthDoc builds a document with `mediaCount` monomedia (cycling video,
// audio, text, image) and `variants` variants each, for the scaling study.
func synthDoc(mediaCount, variants int) media.Document {
	doc := media.Document{ID: "synthetic", Title: "Synthetic"}
	dur := time.Minute
	for m := 0; m < mediaCount; m++ {
		switch m % 4 {
		case 0:
			mono := media.Monomedia{ID: media.MonomediaID(fmt.Sprintf("video-%d", m)), Kind: qos.Video, Duration: dur}
			for v := 0; v < variants; v++ {
				mono.Variants = append(mono.Variants, media.VideoVariant(
					media.VariantID(fmt.Sprintf("v%d-%d", m, v)), "server-1", media.MPEG1,
					qos.VideoQoS{Color: qos.ColorQualities()[v%4], FrameRate: 5 + v%25, Resolution: 100 + 50*(v%10)},
					dur))
			}
			doc.Monomedia = append(doc.Monomedia, mono)
		case 1:
			mono := media.Monomedia{ID: media.MonomediaID(fmt.Sprintf("audio-%d", m)), Kind: qos.Audio, Duration: dur}
			for v := 0; v < variants; v++ {
				grade := qos.TelephoneQuality
				if v%2 == 1 {
					grade = qos.CDQuality
				}
				mono.Variants = append(mono.Variants, media.AudioVariant(
					media.VariantID(fmt.Sprintf("a%d-%d", m, v)), "server-1", media.MPEG1Audio,
					qos.AudioQoS{Grade: grade, Language: qos.Language(fmt.Sprintf("lang-%d", v))}, dur))
			}
			doc.Monomedia = append(doc.Monomedia, mono)
		case 2:
			mono := media.Monomedia{ID: media.MonomediaID(fmt.Sprintf("text-%d", m)), Kind: qos.Text}
			for v := 0; v < variants; v++ {
				mono.Variants = append(mono.Variants, media.TextVariant(
					media.VariantID(fmt.Sprintf("t%d-%d", m, v)), "server-1",
					qos.Language(fmt.Sprintf("lang-%d", v)), 1024))
			}
			doc.Monomedia = append(doc.Monomedia, mono)
		default:
			mono := media.Monomedia{ID: media.MonomediaID(fmt.Sprintf("image-%d", m)), Kind: qos.Image}
			for v := 0; v < variants; v++ {
				mono.Variants = append(mono.Variants, media.ImageVariant(
					media.VariantID(fmt.Sprintf("i%d-%d", m, v)), "server-1", media.JPEG,
					qos.ImageQoS{Color: qos.ColorQualities()[v%4], Resolution: 100 + 50*(v%10)}))
			}
			doc.Monomedia = append(doc.Monomedia, mono)
		}
	}
	return doc
}

func runE9(w io.Writer) error {
	mach := client.Workstation("c1", "n1")
	pricing := cost.DefaultPricing()
	u := tvRequest()
	fmt.Fprintf(w, "%-10s %-10s %-10s %s\n", "media", "variants", "offers", "enumerate+classify")
	for _, mc := range []int{1, 2, 3, 4} {
		for _, vc := range []int{2, 4, 8} {
			doc := synthDoc(mc, vc)
			start := time.Now()
			offers, err := offer.Enumerate(doc, mach, pricing, offer.EnumerateOptions{})
			if err != nil {
				return err
			}
			ranked := offer.Classify(offers, u)
			elapsed := time.Since(start)
			fmt.Fprintf(w, "%-10d %-10d %-10d %s\n", mc, vc, len(ranked), elapsed.Round(time.Microsecond))
		}
	}
	fmt.Fprintln(w, "offers grow as variants^media (the cartesian product of step 2); the")
	fmt.Fprintln(w, "classification cost is O(n log n) on top. See BenchmarkE9* for stable numbers.")
	return nil
}

func runE11(w io.Writer) error {
	// One client behind a 5.5 Mbit/s access link. Video variants: a
	// 5 Mbit/s high-quality one and a 1.5 Mbit/s reduced one; audio: CD
	// (1.4 Mbit/s) and telephone (64 kbit/s). The user values audio above
	// video (the paper's Section 3 importance example (2)).
	bed := testbed.MustNew(testbed.Spec{
		Clients:        1,
		Servers:        2,
		AccessCapacity: 5500 * qos.KBitPerSecond,
	})
	doc := e11Document()
	if err := bed.Registry.Add(doc); err != nil {
		return err
	}
	u := e11Profile()
	mach := bed.Client(1)

	fmt.Fprintln(w, "access link 5.5 Mbit/s; video {5.0, 1.5} Mbit/s, audio {1.4, 0.064} Mbit/s;")
	fmt.Fprintln(w, "user importance: audio ≫ video (Section 3, importance example (2))")

	// Greedy per-monomedia negotiation: optimize video alone, commit it,
	// then optimize audio under what is left.
	var greedyParts []offer.Ranked
	var releases []func()
	greedyOK := true
	for _, mono := range doc.Monomedia {
		sub := media.Document{ID: doc.ID, Monomedia: []media.Monomedia{mono}}
		offers, err := offer.Enumerate(sub, mach, bed.Pricing, offer.EnumerateOptions{})
		if err != nil {
			greedyOK = false
			break
		}
		ranked := offer.Classify(offers, u)
		committed := false
		for _, r := range ranked {
			if rel, ok := manualCommit(bed, mach, r); ok {
				releases = append(releases, rel)
				greedyParts = append(greedyParts, r)
				committed = true
				break
			}
		}
		if !committed {
			greedyOK = false
			break
		}
	}
	var greedyOIF float64
	var greedyDesc []string
	if greedyOK {
		for _, r := range greedyParts {
			greedyOIF += r.QoSImportance
			greedyDesc = append(greedyDesc, r.Choices[0].Variant.QoS.String())
		}
	}
	for _, rel := range releases {
		rel()
	}

	// Atomic document-level negotiation: the paper's procedure.
	res, err := bed.Manager.Negotiate(mach, doc.ID, u)
	if err != nil {
		return err
	}
	if !res.Status.Reserved() {
		return fmt.Errorf("atomic negotiation failed: %v", res.Status)
	}
	atomic := res.Session.Current
	fmt.Fprintf(w, "greedy per-monomedia: %v  (QoS importance %.4g)\n", greedyDesc, greedyOIF)
	fmt.Fprintf(w, "atomic document-level: %s  (QoS importance %.4g, %v)\n",
		atomic.SystemOffer, atomic.QoSImportance, res.Status)
	if greedyOK && atomic.QoSImportance <= greedyOIF {
		return fmt.Errorf("atomic negotiation should beat greedy here (%.4g vs %.4g)",
			atomic.QoSImportance, greedyOIF)
	}
	fmt.Fprintln(w, "greedy locks the 5 Mbit/s video first and strands the audio at telephone")
	fmt.Fprintln(w, "quality; optimizing the document atomically trades video bits for CD audio.")
	return nil
}

func e11Document() media.Document {
	dur := 2 * time.Minute
	video := media.Monomedia{ID: "video", Kind: qos.Video, Duration: dur}
	hq := media.VideoVariant("video-hq", "server-1", media.MPEG1,
		qos.VideoQoS{Color: qos.Color, FrameRate: 30, Resolution: 640}, dur)
	hq.Blocks = qos.BlockStats{MaxBlockBytes: 41800, AvgBlockBytes: 20900} // ~5.0 Mbit/s avg
	lq := media.VideoVariant("video-lq", "server-2", media.MPEG1,
		qos.VideoQoS{Color: qos.Color, FrameRate: 15, Resolution: 480}, dur)
	lq.Blocks = qos.BlockStats{MaxBlockBytes: 25000, AvgBlockBytes: 12500} // ~1.5 Mbit/s avg
	video.Variants = []media.Variant{hq, lq}

	audio := media.Monomedia{ID: "audio", Kind: qos.Audio, Duration: dur}
	audio.Variants = []media.Variant{
		media.AudioVariant("audio-cd", "server-1", media.MPEG1Audio, qos.AudioQoS{Grade: qos.CDQuality}, dur),
		media.AudioVariant("audio-tel", "server-2", media.MPEG1Audio, qos.AudioQoS{Grade: qos.TelephoneQuality}, dur),
	}
	return media.Document{ID: "doc-atomic", Title: "Atomicity study", Monomedia: []media.Monomedia{video, audio}}
}

func e11Profile() profile.UserProfile {
	u := profile.UserProfile{
		Name: "audio-first",
		Desired: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.Color, FrameRate: 15, Resolution: 480},
			Audio: &qos.AudioQoS{Grade: qos.CDQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(20)},
		},
		Worst: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.Color, FrameRate: 10, Resolution: 480},
			Audio: &qos.AudioQoS{Grade: qos.TelephoneQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(20)},
		},
		Importance: profile.Importance{
			VideoColor: map[qos.ColorQuality]float64{qos.Color: 2},
			FrameRate:  profile.NewCurve(profile.Point{X: 15, Y: 1}, profile.Point{X: 30, Y: 3}),
			Resolution: profile.NewCurve(profile.Point{X: 480, Y: 1}, profile.Point{X: 640, Y: 2}),
			AudioGrade: map[qos.AudioGrade]float64{
				qos.TelephoneQuality: 2, qos.CDQuality: 20, // audio dominates
			},
			CostPerDollar: 0.1,
		},
	}
	return u
}

func runE12(w io.Writer) error {
	fmt.Fprintln(w, "40 back-to-back requests against 2 servers / 10 Mbit/s access links.")
	fmt.Fprintln(w, "greedy users (no cost constraint) all demand the 5 Mbit/s variant; capped")
	fmt.Fprintln(w, "users accept what their 4$ budget buys.")
	for _, scenario := range []struct {
		name   string
		budget cost.Money
		costW  float64
	}{
		{"no cost constraint", cost.Dollars(1000), 0},
		{"4$ budget", cost.Dollars(4), 1},
	} {
		bed := testbed.MustNew(testbed.Spec{
			Clients:        4,
			Servers:        2,
			AccessCapacity: 10 * qos.MBitPerSecond,
		})
		if err := bed.Registry.Add(e12Document(bed)); err != nil {
			return err
		}
		u := e11Profile()
		u.Desired.Cost.MaxCost = scenario.budget
		u.Worst.Cost.MaxCost = scenario.budget
		u.Importance.CostPerDollar = scenario.costW
		admitted, degraded, blocked := 0, 0, 0
		var revenue cost.Money
		for i := 0; i < 40; i++ {
			mach := bed.Client(i%4 + 1)
			res, err := bed.Manager.Negotiate(mach, "doc-greed", u)
			if err != nil {
				return err
			}
			switch {
			case res.Status == core.Succeeded:
				admitted++
				revenue += res.Session.Cost()
				bed.Manager.Confirm(res.Session.ID)
			case res.Status == core.FailedWithOffer:
				degraded++
				revenue += res.Session.Cost()
				bed.Manager.Confirm(res.Session.ID)
			default:
				blocked++
			}
		}
		fmt.Fprintf(w, "%-20s admitted %2d (full %2d, degraded %2d), blocked %2d, revenue %s\n",
			scenario.name, admitted+degraded, admitted, degraded, blocked, revenue)
	}
	fmt.Fprintln(w, "expected shape: without cost constraints the big variants exhaust the access")
	fmt.Fprintln(w, "links quickly and later users are blocked; the budget steers users to cheap")
	fmt.Fprintln(w, "variants and more of them are admitted (the Section 7 rationale).")
	return nil
}

func e12Document(bed *testbed.Bed) media.Document {
	doc := e11Document()
	doc.ID = "doc-greed"
	return doc
}
