package experiments

import (
	"fmt"
	"io"
	"time"

	"qosneg/internal/adaptation"
	"qosneg/internal/cmfs"
	"qosneg/internal/core"
	"qosneg/internal/session"
	"qosneg/internal/sim"
	"qosneg/internal/testbed"
)

// This file regenerates E7 (the automatic adaptation walk-through of
// Section 4) and E10 (the choicePeriod confirmation timer of Section 8).

func init() {
	register(Experiment{
		ID:    "E7",
		Title: "Automatic adaptation: congestion mid-playout, transparent switch",
		Paper: "Section 4 (end)",
		Run:   runE7,
	})
	register(Experiment{
		ID:    "E10",
		Title: "choicePeriod: confirm in time vs. time-out",
		Paper: "Section 8 (information window)",
		Run:   runE10,
	})
}

func runE7(w io.Writer) error {
	bed := testbed.MustNew(testbed.Spec{})
	doc, err := bed.AddNewsArticle("news-1", "Election night", 2*time.Minute)
	if err != nil {
		return err
	}
	res, err := bed.Manager.Negotiate(bed.Client(1), "news-1", tvRequest())
	if err != nil {
		return err
	}
	if !res.Status.Reserved() {
		return fmt.Errorf("negotiation failed: %v", res.Status)
	}
	s := res.Session
	fmt.Fprintf(w, "t=0s    negotiation %s: %s\n", res.Status, s.Current.SystemOffer)

	eng := sim.NewEngine()
	var servers []*cmfs.Server
	for _, id := range bed.ServerIDs() {
		servers = append(servers, bed.Servers[id])
	}
	mon := adaptation.New(bed.Manager, bed.Network, servers...)
	mon.Attach(eng, 5*time.Second, func(r adaptation.Report) {
		for _, tr := range r.Adapted {
			fmt.Fprintf(w, "t=%-5s adaptation: switched to %s (position preserved at %s)\n",
				eng.Now(), tr.To.SystemOffer, time.Duration(tr.Position))
		}
		for _, id := range r.Failed {
			fmt.Fprintf(w, "t=%-5s adaptation FAILED for session %d\n", eng.Now(), id)
		}
	})

	player := session.NewPlayer(eng, bed.Manager)
	var out *session.Outcome
	if err := player.Play(s, doc, func(o session.Outcome) { out = &o }); err != nil {
		return err
	}
	victim := s.Current.Choices[0].Variant.Server
	eng.MustSchedule(30*time.Second, func() {
		fmt.Fprintf(w, "t=%-5s CONGESTION: server %s loses 99%% of its disk bandwidth\n", eng.Now(), victim)
		bed.Servers[victim].SetDegradation(0.99)
	})
	eng.Run(10 * time.Minute)
	if out == nil {
		return fmt.Errorf("playout never finished")
	}
	fmt.Fprintf(w, "t=%-5s playout %s at position %s after %d transition(s)\n",
		out.FinishedAt, out.State, out.Position, out.Transitions)
	fmt.Fprintln(w, "paper: the QoS manager re-runs step 5 on the remaining ordered offers and")
	fmt.Fprintln(w, "restarts the presentation from the obtained position, without user intervention.")
	return nil
}

func runE10(w io.Writer) error {
	bed := testbed.MustNew(testbed.Spec{})
	if _, err := bed.AddNewsArticle("news-1", "Election night", 2*time.Minute); err != nil {
		return err
	}
	eng := sim.NewEngine()

	// Scenario A: the user confirms inside the choice period.
	resA, err := bed.Manager.Negotiate(bed.Client(1), "news-1", tvRequest())
	if err != nil {
		return err
	}
	choice := resA.Session.ChoicePeriod
	fmt.Fprintf(w, "choice period: %s\n", choice)
	timerA, _ := eng.Schedule(choice, func() { bed.Manager.Reject(resA.Session.ID) })
	eng.MustSchedule(choice/2, func() {
		bed.Manager.Confirm(resA.Session.ID)
		eng.Cancel(timerA)
	})

	// Scenario B: the user never presses OK; the timer aborts the session.
	resB, err := bed.Manager.Negotiate(bed.Client(1), "news-1", tvRequest())
	if err != nil {
		return err
	}
	eng.MustSchedule(choice, func() { bed.Manager.Reject(resB.Session.ID) })

	eng.Run(2 * choice)
	fmt.Fprintf(w, "session A: confirmed at t=%s → state %s\n", choice/2, resA.Session.State())
	fmt.Fprintf(w, "session B: no confirmation     → state %s (resources reclaimed)\n", resB.Session.State())
	if resA.Session.State() != core.Playing || resB.Session.State() != core.Aborted {
		return fmt.Errorf("unexpected states: %v / %v", resA.Session.State(), resB.Session.State())
	}
	fmt.Fprintf(w, "network reservations live: %d (session A's two streams)\n", bed.Network.ActiveReservations())
	fmt.Fprintln(w, `paper: "If a time-out is reached before pressing OK, the session is simply`)
	fmt.Fprintln(w, ` aborted and a new negotiation is required if the user wants to play the article."`)
	return nil
}
