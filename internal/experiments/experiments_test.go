package experiments

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func runToString(t *testing.T, id string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Run(id, &buf); err != nil {
		t.Fatalf("Run(%s): %v\n%s", id, err, buf.String())
	}
	return buf.String()
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "F1", "F2"}
	all := All()
	if len(all) != len(want) {
		ids := make([]string, len(all))
		for i, e := range all {
			ids[i] = e.ID
		}
		t.Fatalf("registered %v, want %v", ids, want)
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("All()[%d] = %s, want %s", i, all[i].ID, id)
		}
		if _, ok := Lookup(id); !ok {
			t.Errorf("Lookup(%s) failed", id)
		}
	}
	if _, ok := Lookup("E99"); ok {
		t.Error("ghost experiment found")
	}
	var buf bytes.Buffer
	if err := Run("E99", &buf); err == nil {
		t.Error("Run(E99) succeeded")
	}
}

// TestE2ReproducesPaperSNS checks the regenerated Section 5.2.1 rows.
func TestE2ReproducesPaperSNS(t *testing.T) {
	out := runToString(t, "E2")
	for _, want := range []string{
		"offer1", "offer4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E2 missing %q:\n%s", want, out)
		}
	}
	// offer4's row ends ACCEPTABLE; the others CONSTRAINT.
	lines := strings.Split(out, "\n")
	counts := map[string]int{}
	for _, l := range lines {
		if strings.Contains(l, "→ CONSTRAINT") {
			counts["constraint"]++
		}
		if strings.Contains(l, "→ ACCEPTABLE") {
			counts["acceptable"]++
		}
	}
	if counts["constraint"] != 3 || counts["acceptable"] != 1 {
		t.Errorf("SNS rows = %v\n%s", counts, out)
	}
}

// TestE3ReproducesPaperOIF checks the exact OIF values and orderings.
func TestE3ReproducesPaperOIF(t *testing.T) {
	out := runToString(t, "E3")
	for _, want := range []string{
		"OIF=10", "OIF=12", "OIF=7", // setting (1)
		"OIF=20", "OIF=23", "OIF=24", "OIF=27", // setting (2)
		"OIF=-10", "OIF=-12", "OIF=-16", "OIF=-20", // setting (3)
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E3 missing %q:\n%s", want, out)
		}
	}
	// Setting (3)'s OIF-only order is offer1, offer3, offer2, offer4.
	i1 := strings.Index(out, "1. offer1 OIF=-10")
	if i1 < 0 {
		// allow for column padding
		i1 = strings.Index(out, "1. offer1")
	}
	if i1 < 0 {
		t.Errorf("setting (3) order missing:\n%s", out)
	}
}

func TestE1SelectsFullQualityOffer(t *testing.T) {
	out := runToString(t, "E1")
	// The best offer (rank 1) is the DESIRABLE full-quality 6$ one.
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "1. ") {
			if !strings.Contains(l, "DESIRABLE") || !strings.Contains(l, "6$") {
				t.Errorf("rank 1 line: %s", l)
			}
			return
		}
	}
	t.Errorf("no rank-1 line:\n%s", out)
}

func TestE4MappingNumbers(t *testing.T) {
	out := runToString(t, "E4")
	for _, want := range []string{"2.4 Mbit/s", "1.2 Mbit/s", "10ms", "0.003", "1.41 Mbit/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("E4 missing %q:\n%s", want, out)
		}
	}
}

func TestE5CostFormula(t *testing.T) {
	out := runToString(t, "E5")
	// 0.5$ copyright + video (1.8+0.6) + CD audio at 1.411 Mbit/s
	// (net 0.96$, server 0.12$) = 3.98$... audio at 1411 kbit/s falls in
	// the 500k..1500k net class (8 m$/s → 0.96$) and 64k..1500k server
	// class (1 m$/s → 0.12$).
	if !strings.Contains(out, "CostDoc") {
		t.Errorf("E5 missing formula:\n%s", out)
	}
	if !strings.Contains(out, "0.5$") {
		t.Errorf("E5 missing copyright:\n%s", out)
	}
	if !strings.Contains(out, "guaranteed") {
		t.Errorf("E5 missing guarantee markup:\n%s", out)
	}
}

func TestE6AllStatusesAppear(t *testing.T) {
	out := runToString(t, "E6")
	for _, want := range []string{
		"SUCCEEDED", "FAILEDWITHOFFER", "FAILEDTRYLATER", "FAILEDWITHOUTOFFER", "FAILEDWITHLOCALOFFER",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E6 missing %q:\n%s", want, out)
		}
	}
}

func TestE7AdaptationTimeline(t *testing.T) {
	out := runToString(t, "E7")
	for _, want := range []string{"CONGESTION", "adaptation: switched", "completed", "position preserved"} {
		if !strings.Contains(out, want) {
			t.Errorf("E7 missing %q:\n%s", want, out)
		}
	}
}

func TestE8SmartBeatsBasic(t *testing.T) {
	if testing.Short() {
		t.Skip("load study")
	}
	out := runToString(t, "E8")
	if !strings.Contains(out, "accept") {
		t.Fatalf("E8 output:\n%s", out)
	}
	// Parse the heaviest-load row: smart acceptance must be at least
	// basic acceptance on every row (smart degrades instead of blocking).
	lines := strings.Split(out, "\n")
	rows := 0
	for _, l := range lines {
		if !strings.Contains(l, "accept ") {
			continue
		}
		rows++
		var mean string
		var smartAcc, full, degr, basicAcc float64
		_, err := fmtSscanf(l, &mean, &smartAcc, &full, &degr, &basicAcc)
		if err != nil {
			t.Fatalf("row %q: %v", l, err)
		}
		if smartAcc < basicAcc-0.001 {
			t.Errorf("smart (%.1f%%) below basic (%.1f%%) at %s", smartAcc, basicAcc, mean)
		}
	}
	if rows != 4 {
		t.Errorf("parsed %d rows:\n%s", rows, out)
	}
}

// fmtSscanf parses an E8 row like
// "10s  accept  95.0%  full  80.0%  degraded  15.0%   60.0%".
func fmtSscanf(l string, mean *string, smartAcc, full, degr, basicAcc *float64) (int, error) {
	fields := strings.Fields(l)
	if len(fields) < 8 {
		return 0, fmt.Errorf("short row: %q", l)
	}
	*mean = fields[0]
	parse := func(s string) (float64, error) {
		return strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	}
	var err error
	if *smartAcc, err = parse(fields[2]); err != nil {
		return 0, err
	}
	if *full, err = parse(fields[4]); err != nil {
		return 0, err
	}
	if *degr, err = parse(fields[6]); err != nil {
		return 0, err
	}
	if *basicAcc, err = parse(fields[7]); err != nil {
		return 0, err
	}
	return 5, nil
}

func parseFloat(s string) (float64, error) { return strconv.ParseFloat(s, 64) }

func TestE9Scales(t *testing.T) {
	out := runToString(t, "E9")
	if !strings.Contains(out, "4096") && !strings.Contains(out, "512") {
		t.Errorf("E9 missing large products:\n%s", out)
	}
}

func TestE10ChoicePeriod(t *testing.T) {
	out := runToString(t, "E10")
	if !strings.Contains(out, "state playing") || !strings.Contains(out, "state aborted") {
		t.Errorf("E10 output:\n%s", out)
	}
}

func TestE11AtomicBeatsGreedy(t *testing.T) {
	out := runToString(t, "E11")
	if !strings.Contains(out, "atomic document-level") || !strings.Contains(out, "greedy per-monomedia") {
		t.Errorf("E11 output:\n%s", out)
	}
	// runE11 itself errors if atomic does not beat greedy; reaching here
	// means the claim held.
}

func TestE12CostCapAdmitsMore(t *testing.T) {
	out := runToString(t, "E12")
	lines := strings.Split(out, "\n")
	var noCap, cap float64
	for _, l := range lines {
		f := strings.Fields(l)
		if strings.HasPrefix(l, "no cost constraint") {
			noCap, _ = parseFloat(f[4])
		}
		if strings.HasPrefix(l, "4$ budget") {
			cap, _ = parseFloat(f[3])
		}
	}
	if cap <= noCap {
		t.Errorf("budgeted users admitted %v ≤ greedy %v:\n%s", cap, noCap, out)
	}
}

func TestE13ClassifierAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("load study")
	}
	out := runToString(t, "E13")
	rows := map[string][]string{}
	for _, l := range strings.Split(out, "\n") {
		f := strings.Fields(l)
		if len(f) > 0 {
			switch f[0] {
			case "sns-primary", "oif-only", "cost-only", "qos-only":
				rows[f[0]] = f
			}
		}
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %v\n%s", rows, out)
	}
	pct := func(name string, col int) float64 {
		v, err := parseFloat(strings.TrimSuffix(rows[name][col], "%"))
		if err != nil {
			t.Fatalf("%s col %d: %v", name, col, err)
		}
		return v
	}
	// cost-only accepts the most; qos-only the least; sns-primary sits
	// between with the highest (or tied-highest) satisfaction.
	if !(pct("cost-only", 1) >= pct("sns-primary", 1) && pct("sns-primary", 1) > pct("qos-only", 1)) {
		t.Errorf("acceptance ordering violated:\n%s", out)
	}
	if pct("sns-primary", 3) <= pct("cost-only", 3) {
		t.Errorf("sns-primary satisfaction should beat cost-only:\n%s", out)
	}
}

func TestE14FutureReservations(t *testing.T) {
	out := runToString(t, "E14")
	if !strings.Contains(out, "walk-in at prime time:  3/9 served") {
		t.Errorf("walk-in row:\n%s", out)
	}
	if !strings.Contains(out, "advance booking:        9/9 served") {
		t.Errorf("booking row:\n%s", out)
	}
	// runE14 errors when booking does not beat walk-in.
}

func TestE15FederationScales(t *testing.T) {
	out := runToString(t, "E15")
	var counts []float64
	for _, l := range strings.Split(out, "\n") {
		f := strings.Fields(l)
		if len(f) >= 3 && strings.HasPrefix(f[1], "provider") {
			parts := strings.SplitN(f[2], "/", 2)
			v, err := parseFloat(parts[0])
			if err != nil {
				t.Fatalf("row %q: %v", l, err)
			}
			counts = append(counts, v)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("rows = %v\n%s", counts, out)
	}
	if !(counts[0] < counts[1] && counts[1] < counts[2]) {
		t.Errorf("federation not monotone: %v", counts)
	}
}

func TestE16AdaptationReducesViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation study")
	}
	out := runToString(t, "E16")
	// runE16 itself errors unless adaptation strictly reduces the
	// violated time; check both rows rendered.
	if !strings.Contains(out, "adaptation OFF") || !strings.Contains(out, "adaptation ON") {
		t.Errorf("E16 output:\n%s", out)
	}
}

func TestE17MultiplexingGain(t *testing.T) {
	out := runToString(t, "E17")
	var byPeak, byAvg float64
	for _, l := range strings.Split(out, "\n") {
		f := strings.Fields(l)
		if len(f) >= 3 && f[1] == "admits" {
			v, err := parseFloat(f[2])
			if err != nil {
				t.Fatalf("row %q: %v", l, err)
			}
			switch f[0] {
			case "by-peak":
				byPeak = v
			case "by-average":
				byAvg = v
			}
		}
	}
	if byAvg < 2*byPeak {
		t.Errorf("multiplexing gain too small: by-average %v vs by-peak %v\n%s", byAvg, byPeak, out)
	}
}

func TestE18ReplicationMonotone(t *testing.T) {
	out := runToString(t, "E18")
	var counts []float64
	for _, l := range strings.Split(out, "\n") {
		f := strings.Fields(l)
		if len(f) >= 3 && f[0] == "replication" {
			parts := strings.SplitN(f[2], "/", 2)
			v, err := parseFloat(parts[0])
			if err != nil {
				t.Fatalf("row %q: %v", l, err)
			}
			counts = append(counts, v)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("rows = %v\n%s", counts, out)
	}
	if !(counts[0] <= counts[1] && counts[1] <= counts[2] && counts[2] > counts[0]) {
		t.Errorf("replication not helping: %v", counts)
	}
}

func TestF1F2Render(t *testing.T) {
	f1 := runToString(t, "F1")
	for _, want := range []string{"monomedia", "variant", "super-color", "black&white"} {
		if !strings.Contains(f1, want) {
			t.Errorf("F1 missing %q", want)
		}
	}
	f2 := runToString(t, "F2")
	for _, want := range []string{"1..60", "10..1920", "importance profile"} {
		if !strings.Contains(f2, want) {
			t.Errorf("F2 missing %q:\n%s", want, f2)
		}
	}
}

// TestE19OverloadStudy checks the overload experiment's report: every
// scenario row renders, sheds appear under overload, and no scenario leaks
// resources. The rates themselves are machine-dependent and not asserted.
func TestE19OverloadStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("drives real-time open-loop load")
	}
	out := runToString(t, "E19")
	for _, want := range []string{
		"steady 1x", "steady 10x", "bursty 10x", "diurnal 10x", "faulty 10x",
		"retry-hint",
		"ledger: empty after every scenario",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E19 missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "LEAK") {
		t.Errorf("E19 leaked resources:\n%s", out)
	}
}

// TestE20PolicyStudy checks the selection-policy study's acceptance claims:
// the bandit must strictly beat the static tie-break under faults (fewer
// failed commitments, earlier last failure), tie on the clean scenario, and
// no cell may leak resources. runE20 evaluates the comparisons itself and
// prints UNEXPECTED when one fails, so the test greps for that.
func TestE20PolicyStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("drives four 150-negotiation study cells")
	}
	out := runToString(t, "E20")
	for _, want := range []string{
		"clean", "faulty", "bandit", "static",
		"fewer failed commitments",
		"ledger: empty after every cell",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E20 missing %q:\n%s", want, out)
		}
	}
	for _, bad := range []string{"LEAK", "UNEXPECTED"} {
		if strings.Contains(out, bad) {
			t.Errorf("E20 reported %s:\n%s", bad, out)
		}
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	var buf bytes.Buffer
	if err := Run("all", &buf); err != nil {
		t.Fatalf("Run(all): %v", err)
	}
	for _, e := range All() {
		if !strings.Contains(buf.String(), "=== "+e.ID+":") {
			t.Errorf("all-run missing %s", e.ID)
		}
	}
}
