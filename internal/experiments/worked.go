package experiments

import (
	"fmt"
	"io"
	"time"

	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/offer"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
)

// This file regenerates the paper's worked examples: the motivating example
// of Section 5.1 (E1), the SNS example of Section 5.2.1 (E2), the three
// classification settings of Section 5.2.2 (E3), the QoS mapping of
// Section 6 (E4), the cost formula of Section 7 (E5), and the structural
// figures 1 and 2 (F1, F2).

// paperVideoOffer builds a single-video system offer priced at total.
func paperVideoOffer(id media.VariantID, v qos.VideoQoS, total cost.Money) offer.SystemOffer {
	return offer.SystemOffer{
		Document: "news-article",
		Choices: []offer.Choice{{
			Monomedia: "video",
			Variant: media.Variant{
				ID: id, Format: media.MPEG1, QoS: qos.VideoSetting(v), Server: "server-1",
			},
		}},
		Cost: cost.Breakdown{Total: total},
	}
}

// sectionFiveProfile is the request of Sections 5.2.1/5.2.2: desired =
// worst acceptable = (color, TV resolution, 25 frames/s), max cost 4$, with
// the example's importance factors.
func sectionFiveProfile() profile.UserProfile {
	v := qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution}
	return profile.UserProfile{
		Name:    "section-5",
		Desired: profile.MMProfile{Video: &v, Cost: profile.CostProfile{MaxCost: cost.Dollars(4)}},
		Worst:   profile.MMProfile{Video: &v, Cost: profile.CostProfile{MaxCost: cost.Dollars(4)}},
		Importance: profile.Importance{
			VideoColor:    map[qos.ColorQuality]float64{qos.BlackWhite: 2, qos.Grey: 6, qos.Color: 9},
			FrameRate:     profile.NewCurve(profile.Point{X: 15, Y: 5}, profile.Point{X: 25, Y: 9}),
			Resolution:    profile.NewCurve(profile.Point{X: qos.TVResolution, Y: 9}),
			CostPerDollar: 4,
		},
	}
}

func sectionFiveOffers() []offer.SystemOffer {
	return []offer.SystemOffer{
		paperVideoOffer("offer1", qos.VideoQoS{Color: qos.BlackWhite, FrameRate: 25, Resolution: qos.TVResolution}, cost.DollarsFloat(2.5)),
		paperVideoOffer("offer2", qos.VideoQoS{Color: qos.Color, FrameRate: 15, Resolution: qos.TVResolution}, cost.Dollars(4)),
		paperVideoOffer("offer3", qos.VideoQoS{Color: qos.Grey, FrameRate: 25, Resolution: qos.TVResolution}, cost.Dollars(3)),
		paperVideoOffer("offer4", qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution}, cost.Dollars(5)),
	}
}

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Motivating example: three offers against a 6$ budget",
		Paper: "Section 5.1",
		Run:   runE1,
	})
	register(Experiment{
		ID:    "E2",
		Title: "Static negotiation status of the four example offers",
		Paper: "Section 5.2.1",
		Run:   runE2,
	})
	register(Experiment{
		ID:    "E3",
		Title: "OIF classification under three importance settings",
		Paper: "Section 5.2.2",
		Run:   runE3,
	})
	register(Experiment{
		ID:    "E4",
		Title: "User-QoS to network-QoS mapping",
		Paper: "Section 6",
		Run:   runE4,
	})
	register(Experiment{
		ID:    "E5",
		Title: "Document cost: CostDoc = CostCop + Σ(CostNet + CostSer)",
		Paper: "Section 7",
		Run:   runE5,
	})
	register(Experiment{
		ID:    "F1",
		Title: "Multimedia document model",
		Paper: "Figure 1",
		Run:   runF1,
	})
	register(Experiment{
		ID:    "F2",
		Title: "MM profile structure and parameter ranges",
		Paper: "Figure 2",
		Run:   runF2,
	})
}

func runE1(w io.Writer) error {
	v := qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution}
	u := profile.UserProfile{
		Name:       "motivating",
		Desired:    profile.MMProfile{Video: &v, Cost: profile.CostProfile{MaxCost: cost.Dollars(6)}},
		Worst:      profile.MMProfile{Video: &v, Cost: profile.CostProfile{MaxCost: cost.Dollars(6)}},
		Importance: profile.DefaultImportance(),
	}
	offers := []offer.SystemOffer{
		paperVideoOffer("A", qos.VideoQoS{Color: qos.Color, FrameRate: 15, Resolution: qos.TVResolution}, cost.Dollars(5)),
		paperVideoOffer("B", qos.VideoQoS{Color: qos.Grey, FrameRate: 25, Resolution: qos.TVResolution}, cost.Dollars(4)),
		paperVideoOffer("C", qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution}, cost.Dollars(6)),
	}
	fmt.Fprintf(w, "request: %s at up to 6$\n", v)
	ranked := offer.Classify(offers, u)
	fmt.Fprintln(w, "classified (best first):")
	for i, r := range ranked {
		fmt.Fprintf(w, "  %d. %-10s %s  SNS=%s OIF=%.4g\n", i+1, r.Key(), r.SystemOffer, r.Status, r.OIF)
	}
	fmt.Fprintln(w, "paper: the full-quality 6$ offer is selected and reserved; only one")
	fmt.Fprintln(w, "offer is presented to the user (Section 5.1's three drawbacks avoided).")
	return nil
}

func runE2(w io.Writer) error {
	u := sectionFiveProfile()
	fmt.Fprintln(w, "request: (color, TV resolution, 25 frames/s), max cost 4$")
	fmt.Fprintln(w, "paper expects: offer1 CONSTRAINT, offer2 CONSTRAINT, offer3 CONSTRAINT, offer4 ACCEPTABLE")
	for _, o := range sectionFiveOffers() {
		fmt.Fprintf(w, "  %-7s %-55s → %s\n", o.Key(), o.String(), offer.SNS(o, u))
	}
	return nil
}

func runE3(w io.Writer) error {
	offers := sectionFiveOffers()

	type setting struct {
		name      string
		configure func(*profile.UserProfile)
		expect    string
		oifOnly   bool
	}
	settings := []setting{
		{
			name:      "(1) QoS importances set, cost importance 4",
			configure: func(*profile.UserProfile) {},
			expect:    "paper: OIF {10, 7, 12, 7}; order offer4, offer3, offer1, offer2",
		},
		{
			name:      "(2) QoS importances set, cost importance 0",
			configure: func(u *profile.UserProfile) { u.Importance.CostPerDollar = 0 },
			expect:    "paper: OIF {20, 23, 24, 27}; order offer4, offer3, offer2, offer1",
		},
		{
			name: "(3) QoS importances 0, cost importance 4",
			configure: func(u *profile.UserProfile) {
				u.Importance = profile.Importance{CostPerDollar: 4}
			},
			expect:  "paper: OIF {−10, −16, −12, −20}; order offer1, offer3, offer2, offer4 (OIF-only; see DESIGN.md)",
			oifOnly: true,
		},
	}
	for _, s := range settings {
		u := sectionFiveProfile()
		s.configure(&u)
		fmt.Fprintf(w, "%s\n  %s\n", s.name, s.expect)
		ranked := offer.Rank(offers, u)
		if s.oifOnly {
			offer.OIFOnly{}.Sort(ranked)
		} else {
			offer.SNSPrimary{}.Sort(ranked)
		}
		for i, r := range ranked {
			fmt.Fprintf(w, "  %d. %-7s OIF=%-6.4g SNS=%s\n", i+1, r.Key(), r.OIF, r.Status)
		}
		if s.oifOnly {
			ranked2 := offer.Classify(offers, u)
			fmt.Fprintf(w, "  (SNS-primary rule instead ranks %s first — the paper's example (3)\n", ranked2[0].Key())
			fmt.Fprintln(w, "   contradicts its own stated rule; both classifiers are provided)")
		}
	}
	return nil
}

func runE4(w io.Writer) error {
	fmt.Fprintln(w, "video: maxBitRate = max frame length × rate; avgBitRate = avg frame length × rate")
	video := qos.BlockStats{MaxBlockBytes: 12000, AvgBlockBytes: 6000}
	for _, rate := range []int{15, 25, 30} {
		n := qos.MapVideo(video, rate)
		fmt.Fprintf(w, "  frames 12000/6000 B at %2d frames/s → %s\n", rate, n)
	}
	fmt.Fprintln(w, "audio: maxBitRate = max sample length × sample rate (paper text has a typo; see DESIGN.md)")
	for _, g := range qos.AudioGrades() {
		blocks := qos.BlockStats{MaxBlockBytes: 4, AvgBlockBytes: 4}
		if g == qos.TelephoneQuality {
			blocks = qos.BlockStats{MaxBlockBytes: 1, AvgBlockBytes: 1}
		}
		n := qos.MapAudio(blocks, g.SampleRate())
		fmt.Fprintf(w, "  %-9s quality (%d Hz) → %s\n", g, g.SampleRate(), n)
	}
	fmt.Fprintf(w, "fixed targets per [Ste 90]: video jitter %s loss %g; audio jitter %s loss %g\n",
		qos.VideoJitter, qos.VideoLossRate, qos.AudioJitter, qos.AudioLossRate)
	return nil
}

func runE5(w io.Writer) error {
	p := cost.DefaultPricing()
	fmt.Fprintln(w, "network cost table (per second):")
	for _, c := range p.Network.Classes() {
		fmt.Fprintf(w, "  ≥ %-12s %s/s\n", c.MinRate, c.Price)
	}
	fmt.Fprintln(w, "server cost table (per second):")
	for _, c := range p.Server.Classes() {
		fmt.Fprintf(w, "  ≥ %-12s %s/s\n", c.MinRate, c.Price)
	}
	items := []cost.Item{
		{Rate: 2 * qos.MBitPerSecond, Duration: 2 * time.Minute},    // color TV video
		{Rate: 1411 * qos.KBitPerSecond, Duration: 2 * time.Minute}, // CD audio
	}
	b := p.Document(cost.Cents(50), cost.BestEffort, items)
	fmt.Fprintln(w, "2-minute news article, copyright 0.5$, best effort:")
	fmt.Fprintf(w, "  video  (2 Mbit/s):   net %-7s server %s\n", b.Network[0], b.Server[0])
	fmt.Fprintf(w, "  audio  (1.41 Mbit/s): net %-7s server %s\n", b.Network[1], b.Server[1])
	fmt.Fprintf(w, "  CostDoc = %s + Σ → %s\n", b.Copyright, b.Total)
	g := p.Document(cost.Cents(50), cost.Guaranteed, items)
	fmt.Fprintf(w, "  guaranteed service (+%d%%): %s\n", p.GuaranteedMarkupPercent, g.Total)
	return nil
}

func runF1(w io.Writer) error {
	doc := media.BuildNewsArticle(media.NewsArticleSpec{
		ID:       "news-article",
		Title:    "Election night",
		Duration: 3 * time.Minute,
		Servers:  []media.ServerID{"server-1", "server-2"},
		VideoQualities: []qos.VideoQoS{
			{Color: qos.SuperColor, FrameRate: 25, Resolution: qos.TVResolution},
			{Color: qos.BlackWhite, FrameRate: 25, Resolution: qos.TVResolution},
		},
		AudioQualities: []qos.AudioQoS{{Grade: qos.CDQuality, Language: qos.English}},
		Languages:      []qos.Language{qos.English, qos.French},
		WithImage:      true,
		CopyrightFee:   500,
	})
	fmt.Fprintf(w, "Document %q (multimedia)\n", doc.Title)
	fmt.Fprintf(w, "├─ attributes: %d temporal, %d spatial synchronization constraints\n",
		len(doc.Temporal), len(doc.Spatial))
	for i, m := range doc.Monomedia {
		branch := "├─"
		if i == len(doc.Monomedia)-1 {
			branch = "└─"
		}
		fmt.Fprintf(w, "%s monomedia %q (%s)\n", branch, m.ID, m.Kind)
		for j, v := range m.Variants {
			sub := "│  ├─"
			if i == len(doc.Monomedia)-1 {
				sub = "   ├─"
			}
			if j == len(m.Variants)-1 {
				sub = strings1(i == len(doc.Monomedia)-1)
			}
			fmt.Fprintf(w, "%s variant %s: %s %s on %s\n", sub, v.ID, v.Format, v.QoS, v.Server)
		}
	}
	fmt.Fprintln(w, "(two variants of the same video differing in color quality — the")
	fmt.Fprintln(w, " paper's super-color vs black&white example — stored on different servers)")
	return nil
}

func strings1(last bool) string {
	if last {
		return "   └─"
	}
	return "│  └─"
}

func runF2(w io.Writer) error {
	fmt.Fprintln(w, "user profile = desired MM profile + worst-acceptable MM profile + importance profile")
	fmt.Fprintln(w, "MM profile   = video + audio + text + image profiles + cost profile + time profile")
	fmt.Fprintf(w, "frame rate   : integer %d..%d frames/s (frozen %d, TV %d, HDTV %d)\n",
		qos.FrozenRate, qos.HDTVRate, qos.FrozenRate, qos.TVRate, qos.HDTVRate)
	fmt.Fprintf(w, "resolution   : integer %d..%d pixels/line (minimum %d, TV %d, HDTV %d)\n",
		qos.MinResolution, qos.HDTVResolution, qos.MinResolution, qos.TVResolution, qos.HDTVResolution)
	fmt.Fprintf(w, "color        : %v\n", qos.ColorQualities())
	fmt.Fprintf(w, "audio quality: %v\n", qos.AudioGrades())
	fmt.Fprintln(w, "cost profile : $ amounts; time profile: seconds")
	u := profile.DefaultProfiles()[0]
	fmt.Fprintf(w, "example (%q): desired %s / worst %s, max cost %s, choice period %s\n",
		u.Name, u.Desired.Video, u.Worst.Video, u.Desired.Cost.MaxCost, u.Desired.Time.ChoicePeriod)
	return nil
}
