package experiments

import (
	"fmt"
	"io"
	"time"

	"qosneg/internal/booking"
	"qosneg/internal/client"
	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/domain"
	"qosneg/internal/media"
	"qosneg/internal/offer"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
	"qosneg/internal/sim"
	"qosneg/internal/testbed"
	"qosneg/internal/workload"
)

// This file regenerates the extension studies: E13 ablates the
// classification scheme (the design choice DESIGN.md calls out: SNS-primary
// with OIF-secondary vs. the single-key alternatives the paper argues
// against in Section 5), and E14 demonstrates negotiation with future
// reservations, the [Haf 96] extension cited from Section 5.

func init() {
	register(Experiment{
		ID:    "E13",
		Title: "Classifier ablation: SNS-primary vs. OIF-only vs. cost-only vs. QoS-only",
		Paper: "Section 5 design rationale",
		Run:   runE13,
	})
	register(Experiment{
		ID:    "E14",
		Title: "Future reservations: advance booking vs. walk-in",
		Paper: "[Haf 96] extension, cited in Section 5",
		Run:   runE14,
	})
}

func runE13(w io.Writer) error {
	fmt.Fprintln(w, "same load as E8 (120 arrivals, mean inter-arrival 5s), varying only the")
	fmt.Fprintln(w, "classifier that orders offers before commitment. satisfaction = mean QoS")
	fmt.Fprintln(w, "importance of granted offers; cost = mean price per granted session.")
	fmt.Fprintf(w, "%-12s %-9s %-13s %-13s %s\n", "classifier", "accept%", "desired-QoS%", "satisfaction", "mean cost")

	classifiers := []offer.Classifier{
		offer.SNSPrimary{}, offer.OIFOnly{}, offer.CostOnly{}, offer.QoSOnly{},
	}
	for _, cl := range classifiers {
		stats := runE13One(cl)
		fmt.Fprintf(w, "%-12s %8.1f%% %12.1f%% %13.2f %12s\n",
			cl.Name(), stats.acceptPct(), stats.desiredPct(), stats.meanSatisfaction(), stats.meanCost())
	}
	fmt.Fprintln(w, "expected shape: cost-only grants cheap low-QoS offers (high acceptance, low")
	fmt.Fprintln(w, "satisfaction); qos-only books the most expensive configurations (lower")
	fmt.Fprintln(w, "acceptance); sns-primary holds acceptance near cost-only at much higher")
	fmt.Fprintln(w, "satisfaction — the paper's two-key rationale.")
	return nil
}

type e13Stats struct {
	requests, granted, desired int
	satisfaction               float64
	cost                       int64
}

func (s e13Stats) acceptPct() float64  { return 100 * float64(s.granted) / float64(s.requests) }
func (s e13Stats) desiredPct() float64 { return 100 * float64(s.desired) / float64(s.requests) }
func (s e13Stats) meanSatisfaction() float64 {
	if s.granted == 0 {
		return 0
	}
	return s.satisfaction / float64(s.granted)
}
func (s e13Stats) meanCost() string {
	if s.granted == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f$", float64(s.cost)/float64(s.granted)/1000)
}

func runE13One(cl offer.Classifier) e13Stats {
	opts := core.DefaultOptions()
	opts.Classifier = cl
	bed := testbed.MustNew(testbed.Spec{
		Clients:        4,
		Servers:        3,
		AccessCapacity: 25 * qos.MBitPerSecond,
		Options:        &opts,
	})
	var ids []media.DocumentID
	for i := 1; i <= 6; i++ {
		id := media.DocumentID(fmt.Sprintf("news-%d", i))
		bed.AddNewsArticle(id, fmt.Sprintf("Article %d", i), 2*time.Minute)
		// Add a luxury variant (super-color, 30 fps, 720 px — ~9 Mbit/s)
		// that exceeds the desired QoS: the greedy QoS-only classifier
		// books it and crowds the links; SNS-primary prefers the
		// desired-satisfying cheaper variant.
		doc, _ := bed.Registry.Document(id)
		for mi := range doc.Monomedia {
			if doc.Monomedia[mi].Kind == qos.Video {
				lux := media.VideoVariant(
					media.VariantID(fmt.Sprintf("video-lux-%d", i)), "server-1", media.MPEG1,
					qos.VideoQoS{Color: qos.SuperColor, FrameRate: 30, Resolution: 720},
					doc.Monomedia[mi].Duration)
				doc.Monomedia[mi].Variants = append(doc.Monomedia[mi].Variants, lux)
			}
		}
		bed.Registry.Add(doc)
		ids = append(ids, id)
	}
	var clients []client.Machine
	for i := 1; i <= 4; i++ {
		clients = append(clients, bed.Client(i))
	}
	g, err := workload.NewGenerator(workload.Spec{
		Seed:             1996,
		MeanInterArrival: 5 * time.Second,
		Documents:        ids,
		Clients:          clients,
		Profiles:         []profile.UserProfile{e8Profile()},
	})
	if err != nil {
		panic(err)
	}
	eng := sim.NewEngine()
	var stats e13Stats
	g.Drive(eng, 120, func(req workload.Request) {
		stats.requests++
		res, err := bed.Manager.Negotiate(req.Client, req.Document, req.Profile)
		if err != nil || !res.Status.Reserved() {
			return
		}
		stats.granted++
		if res.Session.Current.Status == offer.Desirable {
			stats.desired++
		}
		stats.satisfaction += res.Session.Current.QoSImportance
		stats.cost += int64(res.Session.Cost())
		bed.Manager.Confirm(res.Session.ID)
		id := res.Session.ID
		eng.MustSchedule(2*time.Minute, func() { bed.Manager.Complete(id) })
	})
	eng.RunAll()
	return stats
}

func runE14(w io.Writer) error {
	// One client link and two servers, sized so the prime-time slot fits
	// exactly 3 concurrent TV-quality sessions; 9 users all want prime
	// time.
	const (
		users     = 9
		slotCap   = 3
		primeTime = time.Hour
		duration  = 30 * time.Minute
	)
	ranked, u := e14Offers()
	perSession := int64(ranked[0].Choices[0].Variant.NetworkQoS().AvgBitRate +
		ranked[0].Choices[1].Variant.NetworkQoS().AvgBitRate)

	fmt.Fprintf(w, "%d users request the %s prime-time slot; capacity fits %d concurrent sessions.\n",
		users, primeTime, slotCap)

	// Walk-in: everyone shows up at prime time; step 5 runs against live
	// resources, so the overflow is FAILEDTRYLATER.
	walkIn := 0
	{
		planner := e14Planner(perSession, slotCap)
		n := booking.NewNegotiator(planner)
		for i := 0; i < users; i++ {
			if _, err := n.Negotiate(ranked, u, booking.LinkResource("client-1"), primeTime, duration); err == nil {
				walkIn++
			}
		}
	}

	// Advance booking: the same users book ahead; when the requested slot
	// is full the negotiator offers the next free slot (the [Haf 96]
	// counter-offer in time rather than in quality).
	booked := 0
	var waits []time.Duration
	{
		planner := e14Planner(perSession, slotCap)
		n := booking.NewNegotiator(planner)
		for i := 0; i < users; i++ {
			for shift := time.Duration(0); shift <= 4*duration; shift += duration {
				res, err := n.Negotiate(ranked, u, booking.LinkResource("client-1"), primeTime+shift, duration)
				if err != nil {
					continue
				}
				booked++
				waits = append(waits, shift)
				_ = res
				break
			}
		}
	}
	var maxWait time.Duration
	for _, w := range waits {
		if w > maxWait {
			maxWait = w
		}
	}
	fmt.Fprintf(w, "walk-in at prime time:  %d/%d served, %d blocked (FAILEDTRYLATER)\n",
		walkIn, users, users-walkIn)
	fmt.Fprintf(w, "advance booking:        %d/%d served; overflow shifted to later slots (max shift %s),\n",
		booked, users, maxWait)
	fmt.Fprintln(w, "                        each with capacity guaranteed at negotiation time")
	if booked <= walkIn {
		return fmt.Errorf("advance booking served %d ≤ walk-in %d", booked, walkIn)
	}
	fmt.Fprintln(w, "expected shape: identical capacity, but future reservations convert blocking")
	fmt.Fprintln(w, "into bounded start-time shifts — the [Haf 96] motivation.")
	return nil
}

// e14Offers classifies a simple audio+video document for the booking study.
func e14Offers() ([]offer.Ranked, profile.UserProfile) {
	// A single-variant document so the booking study measures time
	// shifting, not quality degradation: exactly one feasible offer.
	dur := 30 * time.Minute
	video := media.Monomedia{ID: "video", Kind: qos.Video, Duration: dur,
		Variants: []media.Variant{media.VideoVariant("video-v1", "server-1", media.MPEG1,
			qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution}, dur)}}
	audio := media.Monomedia{ID: "audio", Kind: qos.Audio, Duration: dur,
		Variants: []media.Variant{media.AudioVariant("audio-v1", "server-2", media.MPEG1Audio,
			qos.AudioQoS{Grade: qos.CDQuality}, dur)}}
	doc := media.Document{ID: "doc-booking", Title: "Prime time", Monomedia: []media.Monomedia{video, audio}}
	mach := client.Workstation("c1", "client-1")
	offers, err := offer.Enumerate(doc, mach, cost.DefaultPricing(), offer.EnumerateOptions{})
	if err != nil {
		panic(err)
	}
	u := e11Profile()
	return offer.Classify(offers, u), u
}

func e14Planner(perSession int64, slots int) *booking.Planner {
	p := booking.NewPlanner()
	cap := perSession * int64(slots)
	p.AddResource(booking.ServerResource("server-1"), booking.MustCalendar(cap))
	p.AddResource(booking.ServerResource("server-2"), booking.MustCalendar(cap))
	p.AddResource(booking.LinkResource("client-1"), booking.MustCalendar(cap))
	return p
}

func init() {
	register(Experiment{
		ID:    "E15",
		Title: "Multi-domain negotiation: broker across providers vs. single provider",
		Paper: "[Haf 95b] extension (hierarchical negotiation)",
		Run:   runE15,
	})
}

func runE15(w io.Writer) error {
	fmt.Fprintln(w, "60 back-to-back TV-quality requests against 1, 2 or 3 federated providers;")
	fmt.Fprintln(w, "the broker negotiates in every domain and keeps the best reservation.")
	for _, domains := range []int{1, 2, 3} {
		accepted := runE15One(domains)
		fmt.Fprintf(w, "%d provider(s): %2d/60 accepted\n", domains, accepted)
	}
	fmt.Fprintln(w, "expected shape: federation multiplies the admissible load — the hierarchical")
	fmt.Fprintln(w, "negotiation of [Haf 95b] lifted onto the HPDC procedure.")
	return nil
}

func runE15One(domains int) int {
	var ds []*domain.Domain
	var beds []*testbed.Bed
	for i := 0; i < domains; i++ {
		bed := testbed.MustNew(testbed.Spec{
			Clients:        4,
			Servers:        2,
			AccessCapacity: 25 * qos.MBitPerSecond,
		})
		bed.AddNewsArticle("news-1", "Article", 2*time.Minute)
		ds = append(ds, &domain.Domain{
			Name:     fmt.Sprintf("provider-%d", i+1),
			Manager:  bed.Manager,
			Registry: bed.Registry,
		})
		beds = append(beds, bed)
	}
	broker := domain.NewBroker(ds...)
	u := e8Profile()
	accepted := 0
	for i := 0; i < 60; i++ {
		mach := beds[0].Client(i%4 + 1)
		res, err := broker.Negotiate(mach, "news-1", u)
		if err != nil {
			panic(err)
		}
		if res.Status.Reserved() {
			// Sessions stay live (back-to-back load, no completion).
			accepted++
		}
	}
	return accepted
}
