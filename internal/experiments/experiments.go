// Package experiments regenerates every evaluation artefact of the paper —
// its worked numerical examples (Sections 5–7), one scenario per
// negotiation status (Section 4), the adaptation walk-through, and the
// synthetic studies that quantify the paper's qualitative claims (smart
// negotiation increases availability; cost constraints limit greediness).
// EXPERIMENTS.md records the paper-vs-measured comparison for each.
//
// Run an experiment with `go run ./cmd/nodsim -exp E3` or all of them with
// `-exp all`.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Experiment is one reproducible evaluation artefact.
type Experiment struct {
	ID    string
	Title string
	// Paper cites the paper section/figure the artefact comes from.
	Paper string
	// Run writes the regenerated rows to w.
	Run func(w io.Writer) error
}

var registryTable = map[string]Experiment{}

func register(e Experiment) {
	registryTable[e.ID] = e
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, bool) {
	e, ok := registryTable[id]
	return e, ok
}

// All returns every experiment sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registryTable))
	for _, e := range registryTable {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i].ID, out[j].ID) })
	return out
}

// less orders experiment ids naturally: E1 < E2 < ... < E10 < E11, F1 < F2.
func less(a, b string) bool {
	pa, na := splitID(a)
	pb, nb := splitID(b)
	if pa != pb {
		return pa < pb
	}
	if na != nb {
		return na < nb
	}
	return a < b
}

func splitID(id string) (string, int) {
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	n := 0
	for _, c := range id[i:] {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	return id[:i], n
}

// Run executes one experiment (or every experiment for id "all"), writing a
// titled report to w.
func Run(id string, w io.Writer) error {
	if strings.EqualFold(id, "all") {
		for _, e := range All() {
			if err := runOne(e, w); err != nil {
				return err
			}
		}
		return nil
	}
	e, ok := Lookup(id)
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (try `-exp all`)", id)
	}
	return runOne(e, w)
}

func runOne(e Experiment, w io.Writer) error {
	fmt.Fprintf(w, "=== %s: %s (%s) ===\n", e.ID, e.Title, e.Paper)
	if err := e.Run(w); err != nil {
		return fmt.Errorf("experiment %s: %w", e.ID, err)
	}
	fmt.Fprintln(w)
	return nil
}
