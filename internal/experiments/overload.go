package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"qosneg/internal/admission"
	"qosneg/internal/client"
	"qosneg/internal/core"
	"qosneg/internal/faults"
	"qosneg/internal/media"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
	"qosneg/internal/testbed"
	"qosneg/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E19",
		Title: "SLO-driven admission control under open-loop overload",
		Paper: "extension; Section 4's FAILEDTRYLATER made load-adaptive",
		Run:   runE19,
	})
}

const e19SLO = 250 * time.Millisecond

type e19Scenario struct {
	name   string
	shape  workload.Shape
	factor float64 // offered load, as a multiple of the probed service rate
	faulty bool
}

type e19Tally struct {
	mu        sync.Mutex
	latencies []time.Duration
	good      int
	sheds     int
	failures  int
	errs      int
}

func (tl *e19Tally) p99() time.Duration {
	if len(tl.latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), tl.latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(99*len(sorted)+99)/100-1]
}

// e19Bed assembles the E8 substrate with an admission controller on the
// manager and the standard fault weather: a fixed per-reservation cost so
// negotiations take real time (without it the manager finishes in
// microseconds and no load ever accumulates).
func e19Bed(faulty bool) (*testbed.Bed, []media.DocumentID, *admission.Controller) {
	ctrl := admission.New(admission.Config{
		SLO:         e19SLO,
		MaxInFlight: runtime.GOMAXPROCS(0),
	})
	opts := core.DefaultOptions()
	opts.Admission = ctrl
	inj := faults.New(1996)
	bed := testbed.MustNew(testbed.Spec{
		Clients:        4,
		Servers:        3,
		AccessCapacity: 25 * qos.MBitPerSecond,
		Options:        &opts,
		Faults:         inj,
	})
	ctrl.SetOccupancy(bed.Ledger.Open)
	inj.SetLatency(500 * time.Microsecond)
	if faulty {
		inj.SetReserveFailure(0.10)
		inj.SetLatency(time.Millisecond)
	}
	var ids []media.DocumentID
	for i := 1; i <= 6; i++ {
		id := media.DocumentID(fmt.Sprintf("news-%d", i))
		bed.AddNewsArticle(id, fmt.Sprintf("Article %d", i), 2*time.Minute)
		ids = append(ids, id)
	}
	return bed, ids, ctrl
}

// e19Probe measures the closed-loop service rate: one worker per admission
// slot negotiating and rejecting as fast as the manager allows.
func e19Probe(bed *testbed.Bed, ids []media.DocumentID, dur time.Duration) float64 {
	workers := runtime.GOMAXPROCS(0)
	u := e8Profile()
	stop := make(chan struct{})
	time.AfterFunc(dur, func() { close(stop) })
	var mu sync.Mutex
	good := 0
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mach := bed.Client(w%4 + 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := bed.Manager.Negotiate(mach, ids[w%len(ids)], u)
				if err == nil && res.Status.Reserved() {
					mu.Lock()
					good++
					mu.Unlock()
					bed.Manager.Reject(res.Session.ID)
				}
			}
		}(w)
	}
	wg.Wait()
	rate := float64(good) / time.Since(start).Seconds()
	if rate < 1 {
		rate = 1
	}
	return rate
}

// e19Drive fires count open-loop arrivals at the given rate straight into
// the manager and tallies the outcomes.
func e19Drive(bed *testbed.Bed, ids []media.DocumentID, shape workload.Shape, rate float64, count int) (*e19Tally, time.Duration, error) {
	ol, err := workload.NewOpenLoop(workload.OpenLoopSpec{
		Spec: workload.Spec{
			Seed:             1996,
			MeanInterArrival: time.Duration(float64(time.Second) / rate),
			Documents:        ids,
			Clients:          e19Clients(bed),
			Profiles:         []profile.UserProfile{e8Profile()},
		},
		Shape: shape,
	})
	if err != nil {
		return nil, 0, err
	}
	tally := &e19Tally{}
	start := time.Now()
	err = ol.Run(context.Background(), count, func(req workload.Request) {
		begin := time.Now()
		res, err := bed.Manager.NegotiateContext(context.Background(), req.Client, req.Document, req.Profile)
		lat := time.Since(begin)
		reserved := err == nil && res.Status.Reserved()
		if reserved {
			bed.Manager.Reject(res.Session.ID)
		}
		tally.mu.Lock()
		defer tally.mu.Unlock()
		switch {
		case err != nil:
			tally.errs++
		case res.Shed:
			tally.sheds++
		case reserved:
			tally.good++
			tally.latencies = append(tally.latencies, lat)
		default:
			tally.failures++
			tally.latencies = append(tally.latencies, lat)
		}
	})
	return tally, time.Since(start), err
}

func e19Clients(bed *testbed.Bed) []client.Machine {
	var out []client.Machine
	for i := 1; i <= 4; i++ {
		out = append(out, bed.Client(i))
	}
	return out
}

// runE19 is the overload study. The paper's procedure answers
// FAILEDTRYLATER when resources are short; this experiment measures what an
// SLO-driven admission controller adds when the *negotiation machinery
// itself* is the scarce resource: open-loop arrival schedules (Poisson,
// bursty, diurnal) at multiples of the probed service rate, with the
// controller shedding early — FAILEDTRYLATER plus a load-derived retry
// hint — so that the requests it does admit keep their latency.
func runE19(w io.Writer) error {
	scenarios := []e19Scenario{
		{name: "steady 1x", shape: workload.Poisson, factor: 1},
		{name: "steady 10x", shape: workload.Poisson, factor: 10},
		{name: "bursty 10x", shape: workload.Bursty, factor: 10},
		{name: "diurnal 10x", shape: workload.Diurnal, factor: 10},
		{name: "faulty 10x", shape: workload.Poisson, factor: 10, faulty: true},
	}
	fmt.Fprintf(w, "SLO %s, admitted concurrency capped at GOMAXPROCS=%d; open-loop arrivals\n",
		e19SLO, runtime.GOMAXPROCS(0))
	fmt.Fprintln(w, "(arrivals do not wait for completions) over a Zipf catalog of 6 articles;")
	fmt.Fprintln(w, "every reservation pays a fixed injected latency, the faulty row also fails 10%.")
	fmt.Fprintf(w, "%-12s %8s %9s %9s %7s %10s %10s %11s\n",
		"scenario", "offered", "arrivals", "admitted%", "shed%", "goodput/s", "p99(adm)", "retry-hint")
	for _, sc := range scenarios {
		bed, ids, ctrl := e19Bed(sc.faulty)
		peak := e19Probe(bed, ids, 150*time.Millisecond)
		rate := sc.factor * peak
		count := int(rate * 0.6)
		if count < 200 {
			count = 200
		}
		tally, elapsed, err := e19Drive(bed, ids, sc.shape, rate, count)
		if err != nil {
			return err
		}
		admitted := tally.good + tally.failures
		pct := func(n int) float64 { return 100 * float64(n) / float64(count) }
		fmt.Fprintf(w, "%-12s %7.0f/s %9d %8.1f%% %6.1f%% %10.0f %10s %11s\n",
			sc.name, rate, count, pct(admitted), pct(tally.sheds),
			float64(tally.good)/elapsed.Seconds(),
			tally.p99().Round(time.Millisecond),
			ctrl.Stats().RetryHint.Round(10*time.Millisecond))
		if err := bed.Ledger.CheckEmpty(); err != nil {
			fmt.Fprintf(w, "  LEAK in %s: %v\n", sc.name, err)
		}
	}
	fmt.Fprintln(w, "ledger: empty after every scenario (all reservations wound down)")
	fmt.Fprintln(w, "expected shape: the controller is a loss system (no queue), so even at 1x the")
	fmt.Fprintln(w, "arrivals that collide with a busy slot are shed (Erlang loss); at 10x the shed")
	fmt.Fprintln(w, "share climbs toward 90%+ while goodput RISES to the service ceiling and the")
	fmt.Fprintln(w, "p99 of admitted requests stays far below the SLO — graceful degradation, not")
	fmt.Fprintln(w, "collapse. The retry hint tracks shed pressure, decaying in quiet spells.")
	return nil
}
