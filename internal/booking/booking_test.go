package booking

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCalendarBasics(t *testing.T) {
	if _, err := NewCalendar(0); err == nil {
		t.Error("zero capacity accepted")
	}
	c := MustCalendar(100)
	if c.Capacity() != 100 {
		t.Errorf("Capacity = %d", c.Capacity())
	}
	id, err := c.Book(0, 10*time.Second, 60)
	if err != nil {
		t.Fatal(err)
	}
	if c.Count() != 1 {
		t.Errorf("Count = %d", c.Count())
	}
	if got := c.Peak(0, 10*time.Second); got != 60 {
		t.Errorf("Peak = %d", got)
	}
	if got := c.Available(0, 10*time.Second); got != 40 {
		t.Errorf("Available = %d", got)
	}
	if err := c.Cancel(id); err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(id); !errors.Is(err, ErrUnknownBooking) {
		t.Errorf("double cancel: %v", err)
	}
}

func TestBookValidation(t *testing.T) {
	c := MustCalendar(100)
	if _, err := c.Book(10*time.Second, 10*time.Second, 1); err == nil {
		t.Error("empty interval accepted")
	}
	if _, err := c.Book(10*time.Second, 5*time.Second, 1); err == nil {
		t.Error("inverted interval accepted")
	}
	if _, err := c.Book(0, time.Second, -1); err == nil {
		t.Error("negative amount accepted")
	}
	if _, err := c.Book(0, time.Second, 0); err != nil {
		t.Errorf("zero amount rejected: %v", err)
	}
}

func TestOverbookingRejected(t *testing.T) {
	c := MustCalendar(100)
	if _, err := c.Book(0, 10*time.Second, 70); err != nil {
		t.Fatal(err)
	}
	// Overlapping interval with insufficient spare.
	if _, err := c.Book(5*time.Second, 15*time.Second, 40); !errors.Is(err, ErrOverbooked) {
		t.Errorf("overbooking accepted: %v", err)
	}
	// Disjoint interval is fine.
	if _, err := c.Book(10*time.Second, 20*time.Second, 100); err != nil {
		t.Errorf("disjoint booking rejected: %v", err)
	}
	// Back-to-back boundaries do not overlap ([0,10) then [10,20)).
	if got := c.Peak(0, 20*time.Second); got != 100 {
		t.Errorf("peak = %d", got)
	}
}

func TestPeakWithStaggeredBookings(t *testing.T) {
	c := MustCalendar(100)
	// Three 40-unit bookings staggered so at most two overlap anywhere.
	mustBook(t, c, 0, 10, 40)
	mustBook(t, c, 5, 15, 40)
	mustBook(t, c, 10, 20, 40)
	if got := c.Peak(0, 20*time.Second); got != 80 {
		t.Errorf("peak = %d, want 80", got)
	}
	// A fourth overlapping all three of them must fail if it pushes any
	// instant over 100.
	if _, err := c.Book(0, 20*time.Second, 30); !errors.Is(err, ErrOverbooked) {
		t.Errorf("peak accounting wrong: %v", err)
	}
	// 20 units fit (peak becomes exactly 100).
	if _, err := c.Book(0, 20*time.Second, 20); err != nil {
		t.Errorf("exact fit rejected: %v", err)
	}
}

func mustBook(t *testing.T, c *Calendar, startSec, endSec int, amount int64) ID {
	t.Helper()
	id, err := c.Book(time.Duration(startSec)*time.Second, time.Duration(endSec)*time.Second, amount)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestExpire(t *testing.T) {
	c := MustCalendar(100)
	mustBook(t, c, 0, 10, 50)
	mustBook(t, c, 5, 20, 50)
	if n := c.Expire(10 * time.Second); n != 1 {
		t.Errorf("expired %d bookings", n)
	}
	if c.Count() != 1 {
		t.Errorf("Count = %d", c.Count())
	}
}

func TestPlannerAtomicity(t *testing.T) {
	p := NewPlanner()
	if err := p.AddResource("a", MustCalendar(100)); err != nil {
		t.Fatal(err)
	}
	if err := p.AddResource("b", MustCalendar(50)); err != nil {
		t.Fatal(err)
	}
	if err := p.AddResource("a", MustCalendar(1)); err == nil {
		t.Error("duplicate resource accepted")
	}

	// A demand set that fits.
	plan, err := p.Reserve(0, 10*time.Second, []Demand{
		{Resource: "a", Amount: 80},
		{Resource: "b", Amount: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Booked() {
		t.Error("plan not booked")
	}

	// A second set that fails on b must leave a untouched.
	_, err = p.Reserve(0, 10*time.Second, []Demand{
		{Resource: "a", Amount: 20},
		{Resource: "b", Amount: 20},
	})
	if !errors.Is(err, ErrOverbooked) {
		t.Fatalf("want ErrOverbooked, got %v", err)
	}
	calA, _ := p.Resource("a")
	if calA.Peak(0, 10*time.Second) != 80 {
		t.Errorf("partial booking leaked on a: peak %d", calA.Peak(0, 10*time.Second))
	}

	// Unknown resource rolls back too.
	if _, err := p.Reserve(0, time.Second, []Demand{{Resource: "ghost", Amount: 1}}); err == nil {
		t.Error("unknown resource accepted")
	}

	// Cancelling restores everything; idempotent.
	plan.Cancel()
	plan.Cancel()
	if calA.Count() != 0 {
		t.Errorf("bookings leaked: %d", calA.Count())
	}
}

func TestCalendarConcurrency(t *testing.T) {
	c := MustCalendar(1000)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				id, err := c.Book(0, time.Second, 100)
				if err != nil {
					continue
				}
				c.Peak(0, time.Second)
				c.Cancel(id)
			}
		}()
	}
	wg.Wait()
	if c.Count() != 0 {
		t.Errorf("leaked %d bookings", c.Count())
	}
}

// Property: the calendar never admits a set of bookings whose peak exceeds
// capacity, for any random booking sequence.
func TestNoOverbookingProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		c := MustCalendar(1000)
		for i := 0; i+2 < len(raw); i += 3 {
			start := time.Duration(raw[i]%100) * time.Second
			length := time.Duration(raw[i+1]%50+1) * time.Second
			amount := int64(raw[i+2] % 600)
			c.Book(start, start+length, amount)
		}
		// Sweep minute-by-minute: peak must never exceed capacity.
		for s := time.Duration(0); s < 150*time.Second; s += time.Second {
			if c.Peak(s, s+time.Second) > 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: booking then cancelling restores the exact prior availability
// on every probed interval.
func TestBookCancelInverseProperty(t *testing.T) {
	f := func(s1, l1, a1, s2, l2 uint8) bool {
		c := MustCalendar(500)
		c.Book(time.Duration(s1)*time.Second, time.Duration(s1)*time.Second+time.Duration(l1%20+1)*time.Second, int64(a1))
		probeStart := time.Duration(s2) * time.Second
		probeEnd := probeStart + time.Duration(l2%20+1)*time.Second
		before := c.Available(probeStart, probeEnd)
		id, err := c.Book(0, 100*time.Second, 50)
		if err != nil {
			return true
		}
		c.Cancel(id)
		return c.Available(probeStart, probeEnd) == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
