package booking

import (
	"fmt"
	"time"

	"qosneg/internal/offer"
	"qosneg/internal/profile"
)

// This file adapts the calendar machinery to the paper's offer model: a
// future negotiation classifies offers exactly as Section 5 prescribes and
// then books — instead of immediately reserving — the resources of the best
// offer whose demands fit the requested interval.

// ServerResource names the calendar of a media server's disk bandwidth.
func ServerResource(server string) string { return "server:" + server }

// LinkResource names the calendar of a client's access-link bandwidth.
func LinkResource(client string) string { return "link:" + client }

// DemandsFor derives the booking demands of one system offer: the average
// bit rate of each continuous choice against its server's calendar, plus
// the summed rate against the client's access link.
func DemandsFor(r offer.Ranked, clientResource string) []Demand {
	var demands []Demand
	var total int64
	for _, ch := range r.Choices {
		rate := int64(ch.Variant.NetworkQoS().AvgBitRate)
		if rate == 0 {
			continue
		}
		demands = append(demands, Demand{Resource: ServerResource(string(ch.Variant.Server)), Amount: rate})
		total += rate
	}
	if total > 0 {
		demands = append(demands, Demand{Resource: clientResource, Amount: total})
	}
	return demands
}

// Reservation is a successful future negotiation: the booked offer and its
// plan.
type Reservation struct {
	Offer offer.Ranked
	Plan  *Plan
	// Degraded reports that the booked offer does not satisfy the user's
	// requested QoS/cost (the FAILEDWITHOFFER analogue).
	Degraded bool
}

// Negotiator books future reservations against a planner.
type Negotiator struct {
	planner *Planner
}

// NewNegotiator wraps a planner.
func NewNegotiator(p *Planner) *Negotiator { return &Negotiator{planner: p} }

// Planner returns the underlying planner.
func (n *Negotiator) Planner() *Planner { return n.planner }

// Negotiate books the best classified offer whose demands fit
// [start, start+duration): the acceptable set first, then the remaining
// feasible offers, mirroring negotiation step 5. It returns ErrOverbooked
// when no offer fits.
func (n *Negotiator) Negotiate(ranked []offer.Ranked, u profile.UserProfile, clientResource string, start, duration time.Duration) (Reservation, error) {
	if duration <= 0 {
		return Reservation{}, fmt.Errorf("booking: non-positive duration %v", duration)
	}
	acceptable, feasible := offer.Partition(ranked, u)
	for gi, group := range [][]offer.Ranked{acceptable, feasible} {
		for _, r := range group {
			plan, err := n.planner.Reserve(start, start+duration, DemandsFor(r, clientResource))
			if err != nil {
				continue
			}
			return Reservation{Offer: r, Plan: plan, Degraded: gi == 1}, nil
		}
	}
	return Reservation{}, fmt.Errorf("%w: no offer bookable in [%v, %v)", ErrOverbooked, start, start+duration)
}
