// Package booking implements negotiation with future reservations, the
// extension the authors develop in [Haf 96] ("Quality of Service
// Negotiation with Future Reservations") and cite from Section 5 of the
// HPDC paper: instead of reserving resources for immediate playout, the
// user books a document for a future interval and the system guarantees
// capacity for that interval at negotiation time.
//
// The core abstraction is the Calendar: a capacity ledger over virtual
// time. A booking occupies an amount of capacity over [start, end); the
// calendar admits it iff the peak committed amount over the interval,
// including the candidate, never exceeds the capacity. A Planner books a
// multi-resource demand set atomically across several calendars — the
// future-reservation analogue of the QoS manager's commitment step.
package booking

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrOverbooked is returned when an interval has insufficient capacity.
var ErrOverbooked = errors.New("booking: insufficient capacity in interval")

// ErrUnknownBooking is returned when cancelling a booking the calendar does
// not hold.
var ErrUnknownBooking = errors.New("booking: unknown booking")

// ID names one booking within a calendar.
type ID uint64

// Calendar is a capacity ledger over virtual time. It is safe for
// concurrent use.
type Calendar struct {
	capacity int64

	mu       sync.Mutex
	next     ID
	bookings map[ID]span
}

type span struct {
	start, end time.Duration
	amount     int64
}

// NewCalendar returns a calendar with the given total capacity (in
// arbitrary units; the callers here use bits per second).
func NewCalendar(capacity int64) (*Calendar, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("booking: non-positive capacity %d", capacity)
	}
	return &Calendar{capacity: capacity, bookings: make(map[ID]span)}, nil
}

// MustCalendar is NewCalendar that panics on error.
func MustCalendar(capacity int64) *Calendar {
	c, err := NewCalendar(capacity)
	if err != nil {
		panic(err)
	}
	return c
}

// Capacity returns the calendar's total capacity.
func (c *Calendar) Capacity() int64 { return c.capacity }

// peakLocked computes the maximum committed amount over [start, end),
// optionally including a candidate amount across the whole interval.
func (c *Calendar) peakLocked(start, end time.Duration, extra int64) int64 {
	type event struct {
		at    time.Duration
		delta int64
	}
	var events []event
	for _, b := range c.bookings {
		if b.end <= start || b.start >= end {
			continue
		}
		s := b.start
		if s < start {
			s = start
		}
		e := b.end
		if e > end {
			e = end
		}
		events = append(events, event{s, b.amount}, event{e, -b.amount})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].delta < events[j].delta // releases before acquisitions at a boundary
	})
	cur, peak := extra, extra
	for _, ev := range events {
		cur += ev.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// Peak returns the maximum committed amount over [start, end).
func (c *Calendar) Peak(start, end time.Duration) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peakLocked(start, end, 0)
}

// Available returns the guaranteed spare capacity over [start, end): the
// capacity minus the interval's peak commitment.
func (c *Calendar) Available(start, end time.Duration) int64 {
	return c.capacity - c.Peak(start, end)
}

// Book reserves amount units over [start, end). It fails with ErrOverbooked
// when the interval's peak including the candidate would exceed capacity.
func (c *Calendar) Book(start, end time.Duration, amount int64) (ID, error) {
	if amount < 0 {
		return 0, fmt.Errorf("booking: negative amount %d", amount)
	}
	if end <= start {
		return 0, fmt.Errorf("booking: empty interval [%v, %v)", start, end)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if peak := c.peakLocked(start, end, amount); peak > c.capacity {
		return 0, fmt.Errorf("%w: peak %d exceeds capacity %d", ErrOverbooked, peak, c.capacity)
	}
	c.next++
	c.bookings[c.next] = span{start: start, end: end, amount: amount}
	return c.next, nil
}

// Cancel releases a booking.
func (c *Calendar) Cancel(id ID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.bookings[id]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownBooking, id)
	}
	delete(c.bookings, id)
	return nil
}

// Count returns the number of live bookings.
func (c *Calendar) Count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.bookings)
}

// Expire releases every booking that ends at or before now; housekeeping
// for long-running systems. It returns the number released.
func (c *Calendar) Expire(now time.Duration) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for id, b := range c.bookings {
		if b.end <= now {
			delete(c.bookings, id)
			n++
		}
	}
	return n
}

// Demand is one resource requirement of a future reservation.
type Demand struct {
	// Resource names the calendar the demand draws from.
	Resource string
	// Amount is the capacity needed over the playout interval.
	Amount int64
}

// Plan is an atomically booked demand set; Cancel releases everything.
type Plan struct {
	planner  *Planner
	bookings []planBooking
	// Start and End delimit the booked interval.
	Start, End time.Duration
}

type planBooking struct {
	resource string
	id       ID
}

// Planner books demand sets across named calendars.
type Planner struct {
	mu        sync.Mutex
	calendars map[string]*Calendar
}

// NewPlanner returns an empty planner.
func NewPlanner() *Planner {
	return &Planner{calendars: make(map[string]*Calendar)}
}

// AddResource registers a calendar under a name.
func (p *Planner) AddResource(name string, c *Calendar) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.calendars[name]; ok {
		return fmt.Errorf("booking: duplicate resource %q", name)
	}
	p.calendars[name] = c
	return nil
}

// Resource returns the named calendar.
func (p *Planner) Resource(name string) (*Calendar, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.calendars[name]
	return c, ok
}

// Reserve books every demand over [start, end) atomically: on any failure
// the partial bookings are cancelled and the error returned. Demands on the
// same resource accumulate.
func (p *Planner) Reserve(start, end time.Duration, demands []Demand) (*Plan, error) {
	plan := &Plan{planner: p, Start: start, End: end}
	for _, d := range demands {
		cal, ok := p.Resource(d.Resource)
		if !ok {
			plan.Cancel()
			return nil, fmt.Errorf("booking: unknown resource %q", d.Resource)
		}
		id, err := cal.Book(start, end, d.Amount)
		if err != nil {
			plan.Cancel()
			return nil, fmt.Errorf("booking %q: %w", d.Resource, err)
		}
		plan.bookings = append(plan.bookings, planBooking{resource: d.Resource, id: id})
	}
	return plan, nil
}

// Cancel releases the plan's bookings; it is idempotent.
func (p *Plan) Cancel() {
	for _, b := range p.bookings {
		if cal, ok := p.planner.Resource(b.resource); ok {
			cal.Cancel(b.id)
		}
	}
	p.bookings = nil
}

// Booked reports whether the plan still holds bookings.
func (p *Plan) Booked() bool { return len(p.bookings) > 0 }
