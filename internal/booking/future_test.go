package booking

import (
	"errors"
	"testing"
	"time"

	"qosneg/internal/client"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/offer"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
)

// futureFixture classifies the standard news article for a workstation.
func futureFixture(t *testing.T) ([]offer.Ranked, profile.UserProfile) {
	t.Helper()
	doc := media.BuildNewsArticle(media.NewsArticleSpec{
		ID:       "news-1",
		Title:    "T",
		Duration: 2 * time.Minute,
		Servers:  []media.ServerID{"server-1", "server-2"},
		VideoQualities: []qos.VideoQoS{
			{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			{Color: qos.Grey, FrameRate: 15, Resolution: qos.TVResolution},
		},
		AudioQualities: []qos.AudioQoS{
			{Grade: qos.CDQuality}, {Grade: qos.TelephoneQuality},
		},
	})
	mach := client.Workstation("c1", "client-1")
	offers, err := offer.Enumerate(doc, mach, cost.DefaultPricing(), offer.EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	u := profile.UserProfile{
		Name: "tv",
		Desired: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.CDQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(12)},
		},
		Worst: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.Grey, FrameRate: 10, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.TelephoneQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(12)},
		},
		Importance: profile.DefaultImportance(),
	}
	return offer.Classify(offers, u), u
}

func futurePlanner() *Planner {
	p := NewPlanner()
	p.AddResource(ServerResource("server-1"), MustCalendar(int64(8*qos.MBitPerSecond)))
	p.AddResource(ServerResource("server-2"), MustCalendar(int64(8*qos.MBitPerSecond)))
	p.AddResource(LinkResource("client-1"), MustCalendar(int64(10*qos.MBitPerSecond)))
	return p
}

func TestDemandsFor(t *testing.T) {
	ranked, _ := futureFixture(t)
	d := DemandsFor(ranked[0], LinkResource("client-1"))
	// video + audio server demands + one link demand.
	if len(d) != 3 {
		t.Fatalf("demands = %+v", d)
	}
	var link int64
	for _, dd := range d {
		if dd.Resource == LinkResource("client-1") {
			link = dd.Amount
		}
	}
	want := int64(ranked[0].Choices[0].Variant.NetworkQoS().AvgBitRate +
		ranked[0].Choices[1].Variant.NetworkQoS().AvgBitRate)
	if link != want {
		t.Errorf("link demand = %d, want %d", link, want)
	}
}

func TestFutureNegotiateBooksBestOffer(t *testing.T) {
	ranked, u := futureFixture(t)
	n := NewNegotiator(futurePlanner())
	res, err := n.Negotiate(ranked, u, LinkResource("client-1"), time.Hour, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Error("idle calendars should book the best offer")
	}
	if res.Offer.Key() != ranked[0].Key() {
		t.Errorf("booked %s, want %s", res.Offer.Key(), ranked[0].Key())
	}
	if !res.Plan.Booked() {
		t.Error("plan empty")
	}
	// The booked interval blocks competing peaks but not other times.
	cal, _ := n.Planner().Resource(LinkResource("client-1"))
	if cal.Peak(time.Hour, time.Hour+time.Minute) == 0 {
		t.Error("interval not booked")
	}
	if cal.Peak(2*time.Hour, 3*time.Hour) != 0 {
		t.Error("booking leaked outside its interval")
	}
}

func TestFutureNegotiateDegradesThenFails(t *testing.T) {
	ranked, u := futureFixture(t)
	n := NewNegotiator(futurePlanner())
	start := time.Hour
	dur := 2 * time.Minute

	var kept []Reservation
	sawDegraded := false
	for i := 0; i < 32; i++ {
		res, err := n.Negotiate(ranked, u, LinkResource("client-1"), start, dur)
		if err != nil {
			if !errors.Is(err, ErrOverbooked) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		if res.Degraded {
			sawDegraded = true
		}
		kept = append(kept, res)
	}
	if len(kept) == 0 {
		t.Fatal("nothing booked")
	}
	if len(kept) >= 32 {
		t.Fatal("calendar never filled")
	}
	_ = sawDegraded // degradation depends on the acceptable set's rates

	// A different time slot is still wide open.
	if _, err := n.Negotiate(ranked, u, LinkResource("client-1"), 5*time.Hour, dur); err != nil {
		t.Errorf("disjoint slot rejected: %v", err)
	}

	// Cancelling a reservation frees its slot.
	kept[0].Plan.Cancel()
	if _, err := n.Negotiate(ranked, u, LinkResource("client-1"), start, dur); err != nil {
		t.Errorf("freed slot rejected: %v", err)
	}
}

func TestFutureNegotiateValidation(t *testing.T) {
	ranked, u := futureFixture(t)
	n := NewNegotiator(futurePlanner())
	if _, err := n.Negotiate(ranked, u, LinkResource("client-1"), time.Hour, 0); err == nil {
		t.Error("zero duration accepted")
	}
	// Unknown client resource: every offer fails to book.
	if _, err := n.Negotiate(ranked, u, LinkResource("ghost"), time.Hour, time.Minute); !errors.Is(err, ErrOverbooked) {
		t.Errorf("ghost resource: %v", err)
	}
}
