package registry

import (
	"fmt"
	"testing"
	"time"

	"qosneg/internal/media"
	"qosneg/internal/qos"
)

// benchCatalog builds a catalog of synthetic articles large enough that the
// scan cost dominates lock overhead: docs articles × (4 video + 2 audio)
// variants spread over two servers.
func benchCatalog(b *testing.B, docs int) *Registry {
	b.Helper()
	r := New()
	for i := 0; i < docs; i++ {
		d := media.BuildNewsArticle(media.NewsArticleSpec{
			ID:       media.DocumentID(fmt.Sprintf("news-%d", i)),
			Title:    fmt.Sprintf("Article %d", i),
			Duration: 2 * time.Minute,
			Servers:  []media.ServerID{"server-1", "server-2"},
			VideoQualities: []qos.VideoQoS{
				{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
				{Color: qos.Color, FrameRate: 15, Resolution: qos.TVResolution},
				{Color: qos.Grey, FrameRate: 25, Resolution: qos.TVResolution},
				{Color: qos.BlackWhite, FrameRate: 15, Resolution: qos.TVResolution},
			},
			AudioQualities: []qos.AudioQoS{
				{Grade: qos.CDQuality, Language: qos.English},
				{Grade: qos.TelephoneQuality, Language: qos.English},
			},
		})
		if err := r.Add(d); err != nil {
			b.Fatal(err)
		}
	}
	return r
}

// BenchmarkFindVariants measures the catalog scan behind the manager's
// step 2–3 pre-filter: the two-pass exact-size allocation and the by-pointer
// match loop are what this PR optimized.
func BenchmarkFindVariants(b *testing.B) {
	r := benchCatalog(b, 64)
	q := VariantQuery{
		Kind: qos.Video, KindSet: true,
		Formats: []media.Format{media.MPEG1},
		Server:  "server-1",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := r.FindVariants(q); len(hits) == 0 {
			b.Fatal("query matched nothing")
		}
	}
}

// BenchmarkDocumentsWithVariant measures the article-list query ("which
// documents can this machine play").
func BenchmarkDocumentsWithVariant(b *testing.B) {
	r := benchCatalog(b, 64)
	q := VariantQuery{Kind: qos.Audio, KindSet: true, Formats: []media.Format{media.MPEG1Audio}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ids := r.DocumentsWithVariant(q); len(ids) == 0 {
			b.Fatal("query matched nothing")
		}
	}
}
