// Package registry is the reproduction's stand-in for the distributed
// multimedia database of the news-on-demand prototype ([Vit 95], University
// of Alberta). The QoS negotiation procedure reads variant metadata from it:
// which variants exist for each monomedia of a document, their formats, the
// QoS they deliver, their block-length statistics (consumed by the Section 6
// mapping) and their location (which server stores the file).
//
// The store is in-memory, safe for concurrent use, and persists to JSON so
// the daemon and the experiment harness can share catalogs.
package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"qosneg/internal/fsutil"
	"qosneg/internal/media"
)

// ErrNotFound is returned for lookups of unknown documents or components.
var ErrNotFound = errors.New("registry: not found")

// Registry is the document/variant metadata catalog.
type Registry struct {
	mu   sync.RWMutex
	docs map[media.DocumentID]media.Document
	// gen is a monotonic mutation counter; every mutation stamps the
	// affected documents' entries in gens with a fresh value. The offer
	// cache keys candidate sets by it, so a document update (or a
	// remove+re-add cycle) is always visible as a generation change.
	gen  uint64
	gens map[media.DocumentID]uint64
	// replicaHook, when installed, is notified after every catalog
	// mutation, outside the lock; see SetReplicaHook.
	replicaHook func(id media.DocumentID, full bool)
}

// SetReplicaHook installs a callback fired after every mutation of the
// catalog: Add and Remove report the affected document id, LoadFile reports
// a full replacement (id empty, full true). The sharded fleet uses it to
// publish catalog changes on its update bus so per-shard replicas re-sync
// before answering. The hook runs outside the registry lock, after the
// mutation is visible; it must be fast and must not mutate this registry.
func (r *Registry) SetReplicaHook(fn func(id media.DocumentID, full bool)) {
	r.mu.Lock()
	r.replicaHook = fn
	r.mu.Unlock()
}

// notifyReplica fires the replica hook, if any.
func (r *Registry) notifyReplica(id media.DocumentID, full bool) {
	r.mu.RLock()
	fn := r.replicaHook
	r.mu.RUnlock()
	if fn != nil {
		fn(id, full)
	}
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		docs: make(map[media.DocumentID]media.Document),
		gens: make(map[media.DocumentID]uint64),
	}
}

// Add validates and stores a document, replacing any document with the same
// id.
func (r *Registry) Add(d media.Document) error {
	if err := d.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	r.docs[d.ID] = d
	r.gen++
	r.gens[d.ID] = r.gen
	r.mu.Unlock()
	r.notifyReplica(d.ID, false)
	return nil
}

// Remove deletes the document with the given id.
func (r *Registry) Remove(id media.DocumentID) error {
	r.mu.Lock()
	if _, ok := r.docs[id]; !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: document %q", ErrNotFound, id)
	}
	delete(r.docs, id)
	delete(r.gens, id)
	r.gen++
	r.mu.Unlock()
	r.notifyReplica(id, false)
	return nil
}

// ApplyReplica installs a (document, generation) snapshot taken from a
// primary registry into this replica, preserving the primary's generation
// stamp — so a candidate set memoized against the replica carries exactly
// the generation the primary would report, and the offer cache's coherence
// argument holds across shards. The document is assumed already validated
// by the primary's Add; no hook fires (replicas are leaves, not sources).
func (r *Registry) ApplyReplica(d media.Document, gen uint64) {
	r.mu.Lock()
	r.docs[d.ID] = d
	r.gens[d.ID] = gen
	if gen > r.gen {
		r.gen = gen
	}
	r.mu.Unlock()
}

// RemoveReplica deletes a document from a replica without error when it is
// absent and without firing the replica hook; the replication path uses it
// to apply primary removals idempotently.
func (r *Registry) RemoveReplica(id media.DocumentID) {
	r.mu.Lock()
	delete(r.docs, id)
	delete(r.gens, id)
	r.gen++
	r.mu.Unlock()
}

// Document returns the document with the given id.
func (r *Registry) Document(id media.DocumentID) (media.Document, error) {
	d, _, err := r.Snapshot(id)
	return d, err
}

// Snapshot returns the document together with its current generation, read
// atomically under one lock acquisition. The generation changes whenever the
// document is replaced (Add), removed and re-added, or reloaded from disk —
// so a candidate set computed from this snapshot is valid exactly as long as
// Generation(id) still returns the same value.
func (r *Registry) Snapshot(id media.DocumentID) (media.Document, uint64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.docs[id]
	if !ok {
		return media.Document{}, 0, fmt.Errorf("%w: document %q", ErrNotFound, id)
	}
	return d, r.gens[id], nil
}

// Generation returns the mutation generation of a document (0 when the
// document is unknown).
func (r *Registry) Generation(id media.DocumentID) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gens[id]
}

// List returns every stored document id in sorted order.
func (r *Registry) List() []media.DocumentID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]media.DocumentID, 0, len(r.docs))
	for id := range r.docs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Len returns the number of stored documents.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.docs)
}

// SearchTitle returns the ids of documents whose title contains the query,
// case-insensitively, in sorted order. The news-on-demand user interface
// uses it to populate the article list.
func (r *Registry) SearchTitle(query string) []media.DocumentID {
	q := strings.ToLower(query)
	r.mu.RLock()
	defer r.mu.RUnlock()
	var ids []media.DocumentID
	for id, d := range r.docs {
		if strings.Contains(strings.ToLower(d.Title), q) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Variants returns the available variants of one monomedia component.
func (r *Registry) Variants(doc media.DocumentID, mono media.MonomediaID) ([]media.Variant, error) {
	d, err := r.Document(doc)
	if err != nil {
		return nil, err
	}
	m, ok := d.Component(mono)
	if !ok {
		return nil, fmt.Errorf("%w: monomedia %q of document %q", ErrNotFound, mono, doc)
	}
	out := make([]media.Variant, len(m.Variants))
	copy(out, m.Variants)
	return out, nil
}

// VariantsOnServer returns, per document, how many variants are stored on
// the given server. The experiment harness uses it to check placement skew.
func (r *Registry) VariantsOnServer(server media.ServerID) map[media.DocumentID]int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[media.DocumentID]int)
	for id, d := range r.docs {
		for _, m := range d.Monomedia {
			for _, v := range m.Variants {
				if v.Server == server {
					out[id]++
				}
			}
		}
	}
	return out
}

// Servers returns the sorted set of server ids referenced by any variant.
func (r *Registry) Servers() []media.ServerID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	set := make(map[media.ServerID]bool)
	for _, d := range r.docs {
		for _, m := range d.Monomedia {
			for _, v := range m.Variants {
				set[v.Server] = true
			}
		}
	}
	out := make([]media.ServerID, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SaveFile writes the catalog to path as JSON.
func (r *Registry) SaveFile(path string) error {
	r.mu.RLock()
	docs := make([]media.Document, 0, len(r.docs))
	for _, id := range r.listLocked() {
		docs = append(docs, r.docs[id])
	}
	r.mu.RUnlock()
	data, err := json.MarshalIndent(docs, "", "  ")
	if err != nil {
		return err
	}
	return fsutil.WriteFileAtomic(path, data, 0o644)
}

func (r *Registry) listLocked() []media.DocumentID {
	ids := make([]media.DocumentID, 0, len(r.docs))
	for id := range r.docs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// LoadFile reads a catalog written by SaveFile, replacing the registry's
// contents.
func (r *Registry) LoadFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var docs []media.Document
	if err := json.Unmarshal(data, &docs); err != nil {
		return fmt.Errorf("registry %s: %w", path, err)
	}
	m := make(map[media.DocumentID]media.Document, len(docs))
	for _, d := range docs {
		if err := d.Validate(); err != nil {
			return fmt.Errorf("registry %s: %w", path, err)
		}
		m[d.ID] = d
	}
	r.mu.Lock()
	r.docs = m
	// A reload replaces the whole catalog: every surviving document gets a
	// fresh generation so cached candidate sets from the old catalog can
	// never be mistaken for current ones.
	r.gens = make(map[media.DocumentID]uint64, len(m))
	r.gen++
	for id := range m {
		r.gens[id] = r.gen
	}
	r.mu.Unlock()
	r.notifyReplica("", true)
	return nil
}
