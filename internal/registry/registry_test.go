package registry

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"qosneg/internal/media"
	"qosneg/internal/qos"
)

func testDoc(id media.DocumentID, title string, servers ...media.ServerID) media.Document {
	return media.BuildNewsArticle(media.NewsArticleSpec{
		ID:       id,
		Title:    title,
		Duration: time.Minute,
		Servers:  servers,
		VideoQualities: []qos.VideoQoS{
			{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			{Color: qos.Grey, FrameRate: 15, Resolution: qos.TVResolution},
		},
		AudioQualities: []qos.AudioQoS{{Grade: qos.CDQuality, Language: qos.English}},
		Languages:      []qos.Language{qos.English},
	})
}

func TestAddGetRemove(t *testing.T) {
	r := New()
	d := testDoc("news-1", "Election night", "s1")
	if err := r.Add(d); err != nil {
		t.Fatal(err)
	}
	got, err := r.Document("news-1")
	if err != nil || got.Title != "Election night" {
		t.Fatalf("Document: %v, %v", got.Title, err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
	if err := r.Remove("news-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Document("news-1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("after remove: %v", err)
	}
	if err := r.Remove("news-1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double remove: %v", err)
	}
}

func TestAddRejectsInvalid(t *testing.T) {
	r := New()
	if err := r.Add(media.Document{ID: "empty"}); err == nil {
		t.Error("invalid document accepted")
	}
	if r.Len() != 0 {
		t.Error("invalid document stored")
	}
}

func TestListSortedAndSearch(t *testing.T) {
	r := New()
	for _, d := range []media.Document{
		testDoc("b-doc", "Hockey final", "s1"),
		testDoc("a-doc", "Election Night Special", "s1"),
		testDoc("c-doc", "Weather update", "s1"),
	} {
		if err := r.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	ids := r.List()
	if len(ids) != 3 || ids[0] != "a-doc" || ids[2] != "c-doc" {
		t.Errorf("List = %v", ids)
	}
	if got := r.SearchTitle("election"); len(got) != 1 || got[0] != "a-doc" {
		t.Errorf("SearchTitle(election) = %v", got)
	}
	if got := r.SearchTitle(""); len(got) != 3 {
		t.Errorf("empty query should match all, got %v", got)
	}
	if got := r.SearchTitle("cricket"); len(got) != 0 {
		t.Errorf("SearchTitle(cricket) = %v", got)
	}
}

func TestVariantsLookup(t *testing.T) {
	r := New()
	if err := r.Add(testDoc("news-1", "T", "s1", "s2")); err != nil {
		t.Fatal(err)
	}
	vs, err := r.Variants("news-1", "video")
	if err != nil || len(vs) != 2 {
		t.Fatalf("Variants: %d, %v", len(vs), err)
	}
	if _, err := r.Variants("news-1", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown monomedia: %v", err)
	}
	if _, err := r.Variants("ghost", "video"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown document: %v", err)
	}
	// Returned slice is a copy.
	vs[0].Server = "tampered"
	vs2, _ := r.Variants("news-1", "video")
	if vs2[0].Server == "tampered" {
		t.Error("registry leaked internal variant slice")
	}
}

func TestServerIndex(t *testing.T) {
	r := New()
	if err := r.Add(testDoc("news-1", "T", "s1", "s2")); err != nil {
		t.Fatal(err)
	}
	servers := r.Servers()
	if len(servers) != 2 || servers[0] != "s1" || servers[1] != "s2" {
		t.Errorf("Servers = %v", servers)
	}
	on1 := r.VariantsOnServer("s1")
	on2 := r.VariantsOnServer("s2")
	if on1["news-1"]+on2["news-1"] == 0 {
		t.Error("no variants indexed")
	}
	total := on1["news-1"] + on2["news-1"]
	want := 0
	d, _ := r.Document("news-1")
	for _, m := range d.Monomedia {
		want += len(m.Variants)
	}
	if total != want {
		t.Errorf("server index counts %d variants, want %d", total, want)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.json")
	r := New()
	for i := 0; i < 5; i++ {
		id := media.DocumentID(fmt.Sprintf("doc-%d", i))
		if err := r.Add(testDoc(id, fmt.Sprintf("Article %d", i), "s1", "s2")); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	r2 := New()
	if err := r2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 5 {
		t.Errorf("loaded %d documents", r2.Len())
	}
	d, err := r2.Document("doc-3")
	if err != nil {
		t.Fatal(err)
	}
	v, ok := d.Component("video")
	if !ok || v.Variants[0].Blocks.MaxBlockBytes == 0 {
		t.Error("block stats lost in persistence")
	}
}

func TestLoadFileErrors(t *testing.T) {
	r := New()
	if err := r.LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				id := media.DocumentID(fmt.Sprintf("doc-%d-%d", i, j))
				if err := r.Add(testDoc(id, "T", "s1")); err != nil {
					t.Error(err)
					return
				}
				if _, err := r.Document(id); err != nil {
					t.Error(err)
					return
				}
				r.List()
				r.Servers()
			}
		}(i)
	}
	wg.Wait()
	if r.Len() != 8*50 {
		t.Errorf("Len = %d, want %d", r.Len(), 8*50)
	}
}
