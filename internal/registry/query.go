package registry

import (
	"qosneg/internal/media"
	"qosneg/internal/qos"
)

// This file implements the metadata queries of [Ker 95] ("Metadata
// Modelling for Quality of Service Management in Distributed Multimedia
// Systems"): the QoS manager's steps 2–3 pre-filter variants in the
// database by format and QoS predicates instead of shipping whole
// documents to the negotiation engine.

// VariantQuery filters variants. Zero-valued fields do not constrain.
type VariantQuery struct {
	// Kind restricts to monomedia of one media kind.
	Kind qos.MediaKind
	// KindSet reports whether Kind is constrained (qos.Video is zero).
	KindSet bool
	// Formats restricts to variants in one of the given formats (the
	// client machine's decoder list).
	Formats []media.Format
	// MinQoS keeps only variants whose QoS satisfies this floor (the
	// worst-acceptable profile section for the kind).
	MinQoS *qos.Setting
	// Server restricts to variants stored on one server.
	Server media.ServerID
	// MaxAvgBitRate keeps only variants whose mapped average bit rate is
	// at most this (capacity pre-filtering).
	MaxAvgBitRate qos.BitRate
}

// matches reports whether a variant of a monomedia with the given kind
// passes the query. It takes the variant by pointer so the catalog scan
// never copies the (multi-word) variant struct per candidate.
func (q *VariantQuery) matches(kind qos.MediaKind, v *media.Variant) bool {
	if q.KindSet && kind != q.Kind {
		return false
	}
	if len(q.Formats) > 0 {
		ok := false
		for _, f := range q.Formats {
			if v.Format == f {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if q.MinQoS != nil && !v.QoS.Satisfies(*q.MinQoS) {
		return false
	}
	if q.Server != "" && v.Server != q.Server {
		return false
	}
	if q.MaxAvgBitRate > 0 && v.NetworkQoS().AvgBitRate > q.MaxAvgBitRate {
		return false
	}
	return true
}

// Hit is one query result: the variant plus its location in the catalog.
type Hit struct {
	Document  media.DocumentID
	Monomedia media.MonomediaID
	Variant   media.Variant
}

// FindVariants returns every variant in the catalog matching the query, in
// document/monomedia/variant order. The scan counts matches first and
// allocates the result slice exactly once; the filter loops index into the
// catalog instead of copying each variant by value.
func (r *Registry) FindVariants(q VariantQuery) []Hit {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := r.listLocked()
	n := 0
	for _, id := range ids {
		d := r.docs[id]
		for mi := range d.Monomedia {
			m := &d.Monomedia[mi]
			for vi := range m.Variants {
				if q.matches(m.Kind, &m.Variants[vi]) {
					n++
				}
			}
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]Hit, 0, n)
	for _, id := range ids {
		d := r.docs[id]
		for mi := range d.Monomedia {
			m := &d.Monomedia[mi]
			for vi := range m.Variants {
				if q.matches(m.Kind, &m.Variants[vi]) {
					out = append(out, Hit{Document: d.ID, Monomedia: m.ID, Variant: m.Variants[vi]})
				}
			}
		}
	}
	return out
}

// DocumentsWithVariant returns the sorted ids of documents having at least
// one variant matching the query — the "which articles can this machine
// play at this quality" question the news-on-demand article list needs.
func (r *Registry) DocumentsWithVariant(q VariantQuery) []media.DocumentID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := r.listLocked()
	out := make([]media.DocumentID, 0, len(ids))
	for _, id := range ids {
		d := r.docs[id]
	doc:
		for mi := range d.Monomedia {
			m := &d.Monomedia[mi]
			for vi := range m.Variants {
				if q.matches(m.Kind, &m.Variants[vi]) {
					out = append(out, id)
					break doc
				}
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
