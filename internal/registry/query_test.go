package registry

import (
	"testing"

	"qosneg/internal/media"
	"qosneg/internal/qos"
)

func queryFixture(t *testing.T) *Registry {
	t.Helper()
	r := New()
	for _, d := range []media.Document{
		testDoc("news-1", "Election", "s1", "s2"),
		testDoc("news-2", "Hockey", "s1", "s2"),
	} {
		if err := r.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestFindVariantsByKind(t *testing.T) {
	r := queryFixture(t)
	hits := r.FindVariants(VariantQuery{Kind: qos.Video, KindSet: true})
	// 2 docs × 2 video variants.
	if len(hits) != 4 {
		t.Fatalf("video hits = %d", len(hits))
	}
	for _, h := range hits {
		if h.Variant.QoS.Video == nil {
			t.Errorf("non-video hit: %+v", h)
		}
	}
	// Unconstrained query returns everything.
	all := r.FindVariants(VariantQuery{})
	perDoc := 2 + 1 + 1 // video variants + audio + text
	if len(all) != 2*perDoc {
		t.Errorf("all hits = %d, want %d", len(all), 2*perDoc)
	}
}

func TestFindVariantsByFormatAndServer(t *testing.T) {
	r := queryFixture(t)
	hits := r.FindVariants(VariantQuery{Formats: []media.Format{media.MPEG1}})
	if len(hits) != 4 {
		t.Fatalf("MPEG-1 hits = %d", len(hits))
	}
	s1 := r.FindVariants(VariantQuery{Server: "s1"})
	s2 := r.FindVariants(VariantQuery{Server: "s2"})
	if len(s1)+len(s2) != 2*4 {
		t.Errorf("server partition = %d + %d", len(s1), len(s2))
	}
	for _, h := range s1 {
		if h.Variant.Server != "s1" {
			t.Errorf("stray hit: %+v", h.Variant.Server)
		}
	}
}

func TestFindVariantsByQoSFloor(t *testing.T) {
	r := queryFixture(t)
	floor := qos.VideoSetting(qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution})
	hits := r.FindVariants(VariantQuery{MinQoS: &floor})
	// Only the color 25fps variant of each doc (the grey one is 15 fps).
	if len(hits) != 2 {
		t.Fatalf("floor hits = %d", len(hits))
	}
	for _, h := range hits {
		if h.Variant.QoS.Video.Color != qos.Color {
			t.Errorf("hit below floor: %+v", h.Variant.QoS.Video)
		}
	}
}

func TestFindVariantsByBitRate(t *testing.T) {
	r := queryFixture(t)
	// A very low cap keeps only the discrete (zero-rate) text variants.
	hits := r.FindVariants(VariantQuery{MaxAvgBitRate: qos.KBitPerSecond})
	for _, h := range hits {
		if rate := h.Variant.NetworkQoS().AvgBitRate; rate > qos.KBitPerSecond {
			t.Errorf("hit above cap: %v", rate)
		}
	}
	if len(hits) == 0 {
		t.Error("no hits under cap")
	}
}

func TestDocumentsWithVariant(t *testing.T) {
	r := queryFixture(t)
	floor := qos.VideoSetting(qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution})
	docs := r.DocumentsWithVariant(VariantQuery{MinQoS: &floor})
	if len(docs) != 2 || docs[0] != "news-1" || docs[1] != "news-2" {
		t.Errorf("docs = %v", docs)
	}
	// An unsatisfiable floor matches nothing.
	floor = qos.VideoSetting(qos.VideoQoS{Color: qos.SuperColor, FrameRate: 60, Resolution: 1920})
	if docs := r.DocumentsWithVariant(VariantQuery{MinQoS: &floor}); len(docs) != 0 {
		t.Errorf("impossible floor matched %v", docs)
	}
}

func TestQueryIgnoresOtherKinds(t *testing.T) {
	r := queryFixture(t)
	// An audio floor should never match video variants even though the
	// Satisfies comparison is cross-kind safe.
	floor := qos.AudioSetting(qos.AudioQoS{Grade: qos.TelephoneQuality})
	hits := r.FindVariants(VariantQuery{MinQoS: &floor})
	for _, h := range hits {
		if h.Variant.QoS.Audio == nil {
			t.Errorf("non-audio hit: %+v", h.Variant.QoS)
		}
	}
	if len(hits) != 2 { // one audio variant per doc
		t.Errorf("audio hits = %d", len(hits))
	}
}
