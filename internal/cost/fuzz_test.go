package cost

import (
	"testing"
	"time"

	"qosneg/internal/qos"
)

// FuzzTableClassify checks that classification always lands in a valid
// class whose boundary is at most the rate, and that pricing is monotone at
// the classified boundary.
func FuzzTableClassify(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(63_999))
	f.Add(int64(64_000))
	f.Add(int64(10_000_000))
	f.Add(int64(1) << 50)
	f.Fuzz(func(t *testing.T, rate int64) {
		if rate < 0 {
			rate = -rate
		}
		p := DefaultPricing()
		idx := p.Network.Classify(qos.BitRate(rate))
		classes := p.Network.Classes()
		if idx < 0 || idx >= len(classes) {
			t.Fatalf("Classify(%d) = %d out of range", rate, idx)
		}
		if classes[idx].MinRate > qos.BitRate(rate) {
			t.Fatalf("class boundary %v above rate %d", classes[idx].MinRate, rate)
		}
		if idx+1 < len(classes) && classes[idx+1].MinRate <= qos.BitRate(rate) {
			t.Fatalf("rate %d should classify higher than %d", rate, idx)
		}
		// Cost never negative, zero duration free.
		if c := p.Network.Cost(qos.BitRate(rate), time.Minute); c < 0 {
			t.Fatalf("negative cost %v", c)
		}
		if c := p.Network.Cost(qos.BitRate(rate), 0); c != 0 {
			t.Fatalf("zero duration cost %v", c)
		}
	})
}
