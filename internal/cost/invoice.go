package cost

import (
	"fmt"
	"strings"
	"time"

	"qosneg/internal/qos"
)

// InvoiceLine is one itemized row of an invoice.
type InvoiceLine struct {
	Label    string
	Rate     qos.BitRate
	Duration time.Duration
	Network  Money
	Server   Money
}

// Invoice is an itemized bill for one delivered document: what the user
// confirmation window and the provider's books both need. Build one with
// Pricing.Invoice.
type Invoice struct {
	Document  string
	Guarantee Guarantee
	Copyright Money
	Lines     []InvoiceLine
	Total     Money
}

// Invoice itemizes a document's cost: like Document, but retaining labels
// and per-line inputs for rendering.
func (p Pricing) Invoice(document string, copyright Money, g Guarantee, labels []string, items []Item) Invoice {
	b := p.Document(copyright, g, items)
	inv := Invoice{Document: document, Guarantee: g, Copyright: b.Copyright, Total: b.Total}
	for i, it := range items {
		label := fmt.Sprintf("item %d", i+1)
		if i < len(labels) {
			label = labels[i]
		}
		inv.Lines = append(inv.Lines, InvoiceLine{
			Label:    label,
			Rate:     it.Rate,
			Duration: it.Duration,
			Network:  b.Network[i],
			Server:   b.Server[i],
		})
	}
	return inv
}

// String renders the invoice as a fixed-width statement.
func (inv Invoice) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Invoice — %s (%s service)\n", inv.Document, inv.Guarantee)
	fmt.Fprintf(&b, "  %-12s %12s %10s %10s %10s\n", "item", "rate", "duration", "network", "server")
	for _, l := range inv.Lines {
		fmt.Fprintf(&b, "  %-12s %12s %10s %10s %10s\n",
			l.Label, l.Rate.String(), l.Duration, l.Network, l.Server)
	}
	fmt.Fprintf(&b, "  %-12s %45s\n", "copyright", inv.Copyright)
	fmt.Fprintf(&b, "  %-12s %45s\n", "TOTAL", inv.Total)
	return b.String()
}
