package cost

import (
	"encoding/json"
	"fmt"
	"os"

	"qosneg/internal/fsutil"
)

// MarshalJSON encodes the table as its class list.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.classes)
}

// UnmarshalJSON decodes and validates a class list.
func (t *Table) UnmarshalJSON(data []byte) error {
	var classes []Class
	if err := json.Unmarshal(data, &classes); err != nil {
		return err
	}
	nt, err := NewTable(classes...)
	if err != nil {
		return err
	}
	*t = *nt
	return nil
}

// pricingFile is the serialized tariff.
type pricingFile struct {
	Network                 *Table `json:"network"`
	Server                  *Table `json:"server"`
	GuaranteedMarkupPercent int    `json:"guaranteedMarkupPercent"`
}

// SaveFile writes the tariff (both cost tables and the guarantee markup) to
// path as JSON, so operators can version their price lists.
func (p Pricing) SaveFile(path string) error {
	data, err := json.MarshalIndent(pricingFile{
		Network:                 p.Network,
		Server:                  p.Server,
		GuaranteedMarkupPercent: p.GuaranteedMarkupPercent,
	}, "", "  ")
	if err != nil {
		return err
	}
	return fsutil.WriteFileAtomic(path, data, 0o644)
}

// LoadPricing reads a tariff written by SaveFile.
func LoadPricing(path string) (Pricing, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Pricing{}, err
	}
	var f pricingFile
	if err := json.Unmarshal(data, &f); err != nil {
		return Pricing{}, fmt.Errorf("pricing %s: %w", path, err)
	}
	if f.Network == nil || f.Server == nil {
		return Pricing{}, fmt.Errorf("pricing %s: missing network or server table", path)
	}
	if f.GuaranteedMarkupPercent < 0 {
		return Pricing{}, fmt.Errorf("pricing %s: negative guarantee markup", path)
	}
	return Pricing{
		Network:                 f.Network,
		Server:                  f.Server,
		GuaranteedMarkupPercent: f.GuaranteedMarkupPercent,
	}, nil
}
