// Package cost implements the cost computation of Section 7. The cost a
// user is charged for a document is the sum of the server cost, the network
// cost and document-related cost (copyright):
//
//	CostDoc = CostCop + Σᵢ (CostNetᵢ + CostSerᵢ)
//
// Per-monomedia network and server costs come from cost tables that map a
// throughput class to a price per time unit: if monomedia Mᵢ has length Dᵢ
// and its throughput falls into class Cᵢ' with network price CostNetᵢ' then
// CostNetᵢ = CostNetᵢ' × Dᵢ (and likewise for the server table).
//
// Money is held in integer milli-dollars so that every figure in the paper's
// examples (2.5$, 4$, ...) is exact.
package cost

import (
	"fmt"
	"sort"
	"time"

	"qosneg/internal/qos"
)

// Money is an amount in milli-dollars (1/1000 $). The paper quotes prices in
// dollars with at most one decimal; milli-dollar resolution keeps every
// arithmetic step exact.
type Money int64

// Dollars constructs an exact Money amount from whole dollars.
func Dollars(d int64) Money { return Money(d * 1000) }

// Cents constructs an exact Money amount from cents.
func Cents(c int64) Money { return Money(c * 10) }

// DollarsFloat converts a fractional dollar amount, rounding to the nearest
// milli-dollar. Prefer Dollars/Cents where exactness matters.
func DollarsFloat(d float64) Money {
	if d >= 0 {
		return Money(d*1000 + 0.5)
	}
	return Money(d*1000 - 0.5)
}

// Float returns the amount in dollars as a float64 (for importance-factor
// arithmetic, Section 5.2.2(b)).
func (m Money) Float() float64 { return float64(m) / 1000 }

// String renders the amount in the paper's style, e.g. "2.5$".
func (m Money) String() string {
	d := m.Float()
	if d == float64(int64(d)) {
		return fmt.Sprintf("%d$", int64(d))
	}
	return fmt.Sprintf("%g$", d)
}

// Class is one throughput class of a cost table: every throughput of at
// least MinRate (and below the next class's MinRate) is charged Price per
// second of playout.
type Class struct {
	MinRate qos.BitRate `json:"minRate"`
	// Price per second of delivery at this class, in milli-dollars.
	Price Money `json:"pricePerSecond"`
}

// Table maps throughput classes to a per-second price (Section 7: "we assume
// the existence of a cost table which stores the cost (per time unit) for
// each value of throughput. Since it is not possible to consider all
// possible values of throughput (infinite list), only a range of throughput
// classes are considered.").
type Table struct {
	classes []Class // sorted by MinRate ascending; classes[0].MinRate == 0
}

// NewTable builds a table from the given classes. Classes are sorted by
// MinRate; the table is extended with a free zero-rate class if none covers
// rate 0 so that discrete media (zero throughput) always classify.
func NewTable(classes ...Class) (*Table, error) {
	cs := make([]Class, len(classes))
	copy(cs, classes)
	sort.Slice(cs, func(i, j int) bool { return cs[i].MinRate < cs[j].MinRate })
	for i := 1; i < len(cs); i++ {
		if cs[i].MinRate == cs[i-1].MinRate {
			return nil, fmt.Errorf("cost table: duplicate class boundary %v", cs[i].MinRate)
		}
	}
	for _, c := range cs {
		if c.MinRate < 0 {
			return nil, fmt.Errorf("cost table: negative class boundary %v", c.MinRate)
		}
		if c.Price < 0 {
			return nil, fmt.Errorf("cost table: negative price %v", c.Price)
		}
	}
	if len(cs) == 0 || cs[0].MinRate != 0 {
		cs = append([]Class{{MinRate: 0, Price: 0}}, cs...)
	}
	return &Table{classes: cs}, nil
}

// MustTable is NewTable that panics on error; for fixtures and tests.
func MustTable(classes ...Class) *Table {
	t, err := NewTable(classes...)
	if err != nil {
		panic(err)
	}
	return t
}

// Classes returns a copy of the table's classes, sorted by MinRate.
func (t *Table) Classes() []Class {
	out := make([]Class, len(t.classes))
	copy(out, t.classes)
	return out
}

// Classify returns the index of the throughput class rate falls into.
func (t *Table) Classify(rate qos.BitRate) int {
	// Largest class whose MinRate <= rate.
	i := sort.Search(len(t.classes), func(i int) bool { return t.classes[i].MinRate > rate })
	return i - 1
}

// PricePerSecond returns the per-second price of the class rate falls into.
func (t *Table) PricePerSecond(rate qos.BitRate) Money {
	return t.classes[t.Classify(rate)].Price
}

// Cost charges the class price of rate for the full duration:
// CostNetᵢ = CostNetᵢ' × Dᵢ. Sub-second durations are charged
// proportionally, rounded to the nearest milli-dollar.
func (t *Table) Cost(rate qos.BitRate, duration time.Duration) Money {
	if duration <= 0 {
		return 0
	}
	price := t.PricePerSecond(rate)
	return Money((int64(price)*int64(duration) + int64(time.Second)/2) / int64(time.Second))
}

// Item is the billing input for one monomedia of a document: the negotiated
// average bit rate (the classification key used by the prototype) and the
// playout length Dᵢ.
type Item struct {
	Rate     qos.BitRate
	Duration time.Duration
}

// Breakdown itemizes a document's cost as returned by Document.
type Breakdown struct {
	Copyright Money   `json:"copyright"`
	Network   []Money `json:"network"` // per item
	Server    []Money `json:"server"`  // per item
	Total     Money   `json:"total"`
}

// Pricing couples the network and server cost tables and the guarantee type
// in force. Guaranteed service is charged a multiplier over best effort.
type Pricing struct {
	Network *Table
	Server  *Table
	// GuaranteedMarkupPercent is added on top of the tabled prices when
	// the reservation asks for guaranteed (rather than best-effort)
	// service; Section 7 lists the type of guarantees among the cost
	// factors. 0 means guaranteed service costs the same as best effort.
	GuaranteedMarkupPercent int
}

// Guarantee selects the service guarantee the user requested.
type Guarantee int

// The guarantee types of Section 7.
const (
	BestEffort Guarantee = iota
	Guaranteed
)

// String names the guarantee type.
func (g Guarantee) String() string {
	if g == Guaranteed {
		return "guaranteed"
	}
	return "best-effort"
}

// Document computes the Section 7 formula for a document with the given
// copyright fee and per-monomedia billing items.
func (p Pricing) Document(copyright Money, g Guarantee, items []Item) Breakdown {
	b := Breakdown{Copyright: copyright, Total: copyright}
	for _, it := range items {
		net, ser := p.ItemCost(g, it)
		b.Network = append(b.Network, net)
		b.Server = append(b.Server, ser)
		b.Total += net + ser
	}
	return b
}

// ItemCost prices one continuous-media item: the network and server charges
// for delivering it under the guarantee, including the guaranteed-service
// markup. Document sums ItemCost over its items; the negotiation pipeline
// prices each candidate variant once with ItemCost and reuses the result
// across every system offer the variant appears in.
func (p Pricing) ItemCost(g Guarantee, it Item) (network, server Money) {
	network = p.Network.Cost(it.Rate, it.Duration)
	server = p.Server.Cost(it.Rate, it.Duration)
	if g == Guaranteed && p.GuaranteedMarkupPercent > 0 {
		network += network * Money(p.GuaranteedMarkupPercent) / 100
		server += server * Money(p.GuaranteedMarkupPercent) / 100
	}
	return network, server
}

// DefaultPricing returns the cost tables used by the reproduction's
// examples and experiments: five network classes and four server classes
// spanning telephone-audio to HDTV-video rates. The absolute prices are
// arbitrary (the paper publishes no tariff) but the structure — prices
// increasing with the throughput class — is the paper's.
func DefaultPricing() Pricing {
	return Pricing{
		Network: MustTable(
			Class{MinRate: 0, Price: 0},
			Class{MinRate: 64 * qos.KBitPerSecond, Price: 2},    // 0.002 $/s
			Class{MinRate: 500 * qos.KBitPerSecond, Price: 8},   // 0.008 $/s
			Class{MinRate: 1500 * qos.KBitPerSecond, Price: 15}, // 0.015 $/s
			Class{MinRate: 4 * qos.MBitPerSecond, Price: 30},    // 0.030 $/s
			Class{MinRate: 10 * qos.MBitPerSecond, Price: 60},   // 0.060 $/s
		),
		Server: MustTable(
			Class{MinRate: 0, Price: 0},
			Class{MinRate: 64 * qos.KBitPerSecond, Price: 1},
			Class{MinRate: 1500 * qos.KBitPerSecond, Price: 5},
			Class{MinRate: 4 * qos.MBitPerSecond, Price: 10},
			Class{MinRate: 10 * qos.MBitPerSecond, Price: 20},
		),
		GuaranteedMarkupPercent: 25,
	}
}
