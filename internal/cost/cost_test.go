package cost

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"qosneg/internal/qos"
)

func TestMoneyConstructorsAndString(t *testing.T) {
	if Dollars(4) != 4000 {
		t.Errorf("Dollars(4) = %d", Dollars(4))
	}
	if Cents(250) != 2500 {
		t.Errorf("Cents(250) = %d", Cents(250))
	}
	if DollarsFloat(2.5) != 2500 {
		t.Errorf("DollarsFloat(2.5) = %d", DollarsFloat(2.5))
	}
	if DollarsFloat(-2.5) != -2500 {
		t.Errorf("DollarsFloat(-2.5) = %d", DollarsFloat(-2.5))
	}
	cases := map[Money]string{
		Dollars(4):        "4$",
		Cents(250):        "2.5$",
		Dollars(0):        "0$",
		DollarsFloat(3.2): "3.2$",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(m), got, want)
		}
	}
	if Cents(250).Float() != 2.5 {
		t.Errorf("Float() = %g", Cents(250).Float())
	}
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(Class{MinRate: 100, Price: 1}, Class{MinRate: 100, Price: 2}); err == nil {
		t.Error("duplicate boundary accepted")
	}
	if _, err := NewTable(Class{MinRate: -1, Price: 1}); err == nil {
		t.Error("negative boundary accepted")
	}
	if _, err := NewTable(Class{MinRate: 0, Price: -1}); err == nil {
		t.Error("negative price accepted")
	}
	// Empty table still classifies everything at price 0.
	tab, err := NewTable()
	if err != nil {
		t.Fatal(err)
	}
	if tab.PricePerSecond(qos.MBitPerSecond) != 0 {
		t.Error("empty table should be free")
	}
}

func TestClassify(t *testing.T) {
	tab := MustTable(
		Class{MinRate: 0, Price: 0},
		Class{MinRate: 1000, Price: 1},
		Class{MinRate: 2000, Price: 5},
	)
	cases := []struct {
		rate qos.BitRate
		idx  int
	}{
		{0, 0}, {999, 0}, {1000, 1}, {1999, 1}, {2000, 2}, {1 << 40, 2},
	}
	for _, c := range cases {
		if got := tab.Classify(c.rate); got != c.idx {
			t.Errorf("Classify(%d) = %d, want %d", c.rate, got, c.idx)
		}
	}
	if n := len(tab.Classes()); n != 3 {
		t.Errorf("Classes() = %d entries", n)
	}
}

func TestTableCost(t *testing.T) {
	tab := MustTable(Class{MinRate: 1000, Price: 10}) // 0.01$/s above 1 kbit/s
	if got := tab.Cost(2000, time.Minute); got != 600 {
		t.Errorf("Cost = %d, want 600 (0.6$)", got)
	}
	if got := tab.Cost(500, time.Minute); got != 0 {
		t.Errorf("below first class should be free, got %d", got)
	}
	if got := tab.Cost(2000, 0); got != 0 {
		t.Errorf("zero duration should be free, got %d", got)
	}
	if got := tab.Cost(2000, -time.Second); got != 0 {
		t.Errorf("negative duration should be free, got %d", got)
	}
	// Sub-second rounding: 10 m$/s for 500 ms rounds to 5 m$.
	if got := tab.Cost(2000, 500*time.Millisecond); got != 5 {
		t.Errorf("sub-second cost = %d, want 5", got)
	}
}

func TestDocumentFormula(t *testing.T) {
	// Two monomedia, three-class tables; hand-checkable numbers:
	// video at 2 Mbit/s for 120 s: net 15 m$/s → 1.8$, server 5 m$/s → 0.6$
	// audio at 700 kbit/s for 120 s: net 8 m$/s → 0.96$, server 1 m$/s → 0.12$
	// copyright 0.5$ → total 0.5+1.8+0.6+0.96+0.12 = 3.98$
	p := DefaultPricing()
	items := []Item{
		{Rate: 2 * qos.MBitPerSecond, Duration: 2 * time.Minute},
		{Rate: 700 * qos.KBitPerSecond, Duration: 2 * time.Minute},
	}
	b := p.Document(Cents(50), BestEffort, items)
	if b.Copyright != 500 {
		t.Errorf("copyright = %v", b.Copyright)
	}
	if b.Network[0] != 1800 || b.Server[0] != 600 {
		t.Errorf("video costs = %v/%v", b.Network[0], b.Server[0])
	}
	if b.Network[1] != 960 || b.Server[1] != 120 {
		t.Errorf("audio costs = %v/%v", b.Network[1], b.Server[1])
	}
	if b.Total != 3980 {
		t.Errorf("total = %v, want 3.98$", b.Total)
	}
}

func TestGuaranteedMarkup(t *testing.T) {
	p := DefaultPricing()
	items := []Item{{Rate: 2 * qos.MBitPerSecond, Duration: time.Minute}}
	be := p.Document(0, BestEffort, items)
	gu := p.Document(0, Guaranteed, items)
	if gu.Total != be.Total+be.Total*25/100 {
		t.Errorf("guaranteed %v vs best effort %v with 25%% markup", gu.Total, be.Total)
	}
	if BestEffort.String() != "best-effort" || Guaranteed.String() != "guaranteed" {
		t.Error("guarantee names")
	}
	p.GuaranteedMarkupPercent = 0
	if p.Document(0, Guaranteed, items).Total != be.Total {
		t.Error("zero markup must charge best-effort price")
	}
}

func TestDocumentEmptyItems(t *testing.T) {
	p := DefaultPricing()
	b := p.Document(Dollars(1), BestEffort, nil)
	if b.Total != Dollars(1) || len(b.Network) != 0 {
		t.Errorf("empty document breakdown: %+v", b)
	}
}

// Property: cost is monotone in rate and linear-ish in duration (exact
// linearity for whole-second durations).
func TestCostProperties(t *testing.T) {
	p := DefaultPricing()
	mono := func(r1, r2 uint32, secs uint8) bool {
		d := time.Duration(secs) * time.Second
		a, b := qos.BitRate(r1), qos.BitRate(r2)
		if a > b {
			a, b = b, a
		}
		return p.Network.Cost(a, d) <= p.Network.Cost(b, d)
	}
	if err := quick.Check(mono, nil); err != nil {
		t.Errorf("monotonicity: %v", err)
	}
	linear := func(r uint32, secs uint8) bool {
		d := time.Duration(secs) * time.Second
		c1 := p.Network.Cost(qos.BitRate(r), d)
		c2 := p.Network.Cost(qos.BitRate(r), 2*d)
		return c2 == 2*c1
	}
	if err := quick.Check(linear, nil); err != nil {
		t.Errorf("duration linearity: %v", err)
	}
}

// Property: total always equals copyright plus the itemized parts.
func TestBreakdownConsistency(t *testing.T) {
	p := DefaultPricing()
	f := func(cop uint16, rates []uint32, secs uint8) bool {
		if len(rates) > 8 {
			rates = rates[:8]
		}
		var items []Item
		for _, r := range rates {
			items = append(items, Item{Rate: qos.BitRate(r), Duration: time.Duration(secs) * time.Second})
		}
		b := p.Document(Money(cop), BestEffort, items)
		sum := b.Copyright
		for i := range b.Network {
			sum += b.Network[i] + b.Server[i]
		}
		return sum == b.Total && len(b.Network) == len(items)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvoiceRendering(t *testing.T) {
	p := DefaultPricing()
	inv := p.Invoice("news-1", Cents(50), BestEffort,
		[]string{"video", "audio"},
		[]Item{
			{Rate: 2 * qos.MBitPerSecond, Duration: 2 * time.Minute},
			{Rate: 1411 * qos.KBitPerSecond, Duration: 2 * time.Minute},
		})
	if inv.Total != 3980 {
		t.Errorf("total = %v", inv.Total)
	}
	if len(inv.Lines) != 2 || inv.Lines[0].Label != "video" {
		t.Errorf("lines = %+v", inv.Lines)
	}
	out := inv.String()
	for _, want := range []string{"news-1", "best-effort", "video", "audio", "copyright", "TOTAL", "3.98$"} {
		if !strings.Contains(out, want) {
			t.Errorf("invoice missing %q:\n%s", want, out)
		}
	}
	// Missing labels fall back to item numbers.
	inv = p.Invoice("d", 0, Guaranteed, nil, []Item{{Rate: 1000, Duration: time.Second}})
	if inv.Lines[0].Label != "item 1" {
		t.Errorf("fallback label = %q", inv.Lines[0].Label)
	}
	if !strings.Contains(inv.String(), "guaranteed") {
		t.Error("guarantee missing")
	}
}

func TestPricingPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tariff.json")
	p := DefaultPricing()
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPricing(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.GuaranteedMarkupPercent != p.GuaranteedMarkupPercent {
		t.Errorf("markup = %d", got.GuaranteedMarkupPercent)
	}
	// The loaded tariff prices identically.
	items := []Item{
		{Rate: 2 * qos.MBitPerSecond, Duration: 2 * time.Minute},
		{Rate: 700 * qos.KBitPerSecond, Duration: time.Minute},
	}
	for _, g := range []Guarantee{BestEffort, Guaranteed} {
		a := p.Document(Cents(50), g, items)
		b := got.Document(Cents(50), g, items)
		if a.Total != b.Total {
			t.Errorf("%v: %v vs %v", g, a.Total, b.Total)
		}
	}
	// Corrupt and incomplete files are rejected.
	if _, err := LoadPricing(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"network": null}`), 0o644)
	if _, err := LoadPricing(bad); err == nil {
		t.Error("incomplete tariff accepted")
	}
	dup := filepath.Join(t.TempDir(), "dup.json")
	os.WriteFile(dup, []byte(`{"network":[{"minRate":5,"pricePerSecond":1},{"minRate":5,"pricePerSecond":2}],"server":[]}`), 0o644)
	if _, err := LoadPricing(dup); err == nil {
		t.Error("duplicate class boundary accepted")
	}
}
