package faults_test

import (
	"errors"
	"testing"
	"time"

	"qosneg/internal/cmfs"
	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/faults"
	"qosneg/internal/network"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
	"qosneg/internal/testbed"
	"qosneg/internal/transport"
)

func stream(rate qos.BitRate) qos.NetworkQoS {
	return qos.NetworkQoS{MaxBitRate: rate, AvgBitRate: rate}
}

func wrappedServer(t *testing.T, seed int64) (*faults.Injector, *faults.Server, *cmfs.Server) {
	t.Helper()
	inj := faults.New(seed)
	raw, err := cmfs.NewServer("server-1", cmfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return inj, inj.WrapServer(raw, "server-1"), raw
}

func tvProfile() profile.UserProfile {
	return profile.UserProfile{
		Name: "tv",
		Desired: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.CDQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(12)},
		},
		Worst: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.BlackWhite, FrameRate: 10, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.TelephoneQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(12)},
		},
		Importance: profile.DefaultImportance(),
	}
}

// TestCrashLosesReservations: a crash drops every reservation granted
// through the wrapper (state loss on the inner server) and refuses further
// work with core.ErrServerDown until Restart.
func TestCrashLosesReservations(t *testing.T) {
	_, ws, raw := wrappedServer(t, 1)
	r1, err := ws.Reserve(stream(2 * qos.MBitPerSecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Reserve(stream(qos.MBitPerSecond)); err != nil {
		t.Fatal(err)
	}
	if raw.ActiveStreams() != 2 {
		t.Fatalf("inner streams = %d", raw.ActiveStreams())
	}

	ws.Crash()
	if !ws.Down() {
		t.Error("Down() = false after Crash")
	}
	if raw.ActiveStreams() != 0 {
		t.Errorf("crash kept %d inner streams; restart must lose state", raw.ActiveStreams())
	}
	if _, err := ws.Reserve(stream(qos.MBitPerSecond)); !errors.Is(err, core.ErrServerDown) {
		t.Errorf("Reserve on crashed server: %v", err)
	}
	if err := ws.Release(r1.ID); !errors.Is(err, core.ErrServerDown) {
		t.Errorf("Release on crashed server: %v", err)
	}

	ws.Restart()
	if ws.Down() {
		t.Error("Down() = true after Restart")
	}
	if _, err := ws.Reserve(stream(qos.MBitPerSecond)); err != nil {
		t.Errorf("Reserve after restart: %v", err)
	}
	if raw.ActiveStreams() != 1 {
		t.Errorf("streams after restart = %d; pre-crash state must not return", raw.ActiveStreams())
	}
}

// TestCrashAfterReserves: the scheduled crash fires right after the n-th
// grant — the crash-between-Reserve-and-Connect window.
func TestCrashAfterReserves(t *testing.T) {
	_, ws, raw := wrappedServer(t, 1)
	ws.CrashAfterReserves(2)
	if _, err := ws.Reserve(stream(qos.MBitPerSecond)); err != nil {
		t.Fatal(err)
	}
	if ws.Down() {
		t.Fatal("crashed one Reserve early")
	}
	if _, err := ws.Reserve(stream(qos.MBitPerSecond)); err != nil {
		t.Fatalf("the crashing Reserve must still grant: %v", err)
	}
	if !ws.Down() {
		t.Fatal("server still up after the scheduled crash")
	}
	if raw.ActiveStreams() != 0 {
		t.Errorf("granted-then-lost reservations leaked: %d streams", raw.ActiveStreams())
	}
	if _, err := ws.Reserve(stream(qos.MBitPerSecond)); !errors.Is(err, core.ErrServerDown) {
		t.Errorf("Reserve after scheduled crash: %v", err)
	}
}

// TestInjectedReserveFailureDeterministic: the same seed replays the same
// failure schedule, and injected failures are ErrInjected (transient), not
// hard down evidence.
func TestInjectedReserveFailureDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		_, ws, _ := wrappedServer(t, seed)
		ws.SetReserveFailure(0.5)
		var out []bool
		for i := 0; i < 32; i++ {
			_, err := ws.Reserve(qos.NetworkQoS{})
			if err != nil && !errors.Is(err, faults.ErrInjected) {
				t.Fatalf("injected failure has wrong sentinel: %v", err)
			}
			if errors.Is(err, core.ErrServerDown) {
				t.Fatalf("injected failure must not be ErrServerDown: %v", err)
			}
			out = append(out, err != nil)
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Errorf("p=0.5 produced %d/%d failures; schedule not probabilistic", fails, len(a))
	}
}

// TestTransportFaults: crashed nodes refuse connects in both directions,
// probabilistic connect failures are ErrInjected, and Close always reaches
// the inner transport.
func TestTransportFaults(t *testing.T) {
	net, err := network.BuildStar(network.StarSpec{
		Clients: []network.NodeID{"client-1"},
		Servers: []network.NodeID{"server-1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(1)
	wt := inj.WrapTransport(transport.New(net, 3))
	raw, err := cmfs.NewServer("server-1", cmfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ws := inj.WrapServer(raw, "server-1")

	c, err := wt.Connect("server-1", "client-1", stream(qos.MBitPerSecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := wt.Close(c); err != nil {
		t.Fatal(err)
	}
	if net.ActiveReservations() != 0 {
		t.Fatalf("close leaked %d reservations", net.ActiveReservations())
	}

	ws.Crash()
	if _, err := wt.Connect("server-1", "client-1", stream(qos.MBitPerSecond)); !errors.Is(err, core.ErrServerDown) {
		t.Errorf("connect from crashed node: %v", err)
	}
	if _, err := wt.Connect("client-1", "server-1", stream(qos.MBitPerSecond)); !errors.Is(err, core.ErrServerDown) {
		t.Errorf("connect to crashed node: %v", err)
	}
	ws.Restart()

	wt.SetConnectFailure(1)
	if _, err := wt.Connect("server-1", "client-1", stream(qos.MBitPerSecond)); !errors.Is(err, faults.ErrInjected) {
		t.Errorf("forced connect failure: %v", err)
	}
	if net.ActiveReservations() != 0 {
		t.Errorf("failed connects leaked %d reservations", net.ActiveReservations())
	}
	wt.SetConnectFailure(0)
	if _, err := wt.Connect("server-1", "client-1", stream(qos.MBitPerSecond)); err != nil {
		t.Errorf("connect after clearing faults: %v", err)
	}
}

func TestInjectorRegistry(t *testing.T) {
	inj, _, _ := wrappedServer(t, 1)
	if _, ok := inj.Server("server-1"); !ok {
		t.Error("wrapped server not registered")
	}
	if inj.Crash("nope") {
		t.Error("Crash(unknown) = true")
	}
	if !inj.Crash("server-1") || !inj.Restart("server-1") {
		t.Error("Crash/Restart on a known server = false")
	}
	if got := len(inj.Servers()); got != 1 {
		t.Errorf("Servers() = %d entries", got)
	}
}

// TestNegotiationFailsOverCrashMidCommit is the end-to-end scenario the
// injector exists for: server-1 crashes immediately after granting its first
// reservation, the in-flight commit observes the crash and rolls back, and
// negotiation completes on the surviving replica with no leaked resources.
func TestNegotiationFailsOverCrashMidCommit(t *testing.T) {
	inj := faults.New(7)
	bed := testbed.MustNew(testbed.Spec{Faults: inj})
	if _, err := bed.AddNewsArticle("news-1", "Election night", 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	ws, ok := inj.Server("server-1")
	if !ok {
		t.Fatal("server-1 not wrapped")
	}
	ws.CrashAfterReserves(1)

	res, err := bed.Manager.Negotiate(bed.Client(1), "news-1", tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Status.Reserved() {
		t.Fatalf("status = %v (%s); want failover onto server-2", res.Status, res.Reason)
	}
	streams := 0
	for _, ch := range res.Session.Current.Choices {
		if ch.Variant.Server == "server-1" {
			t.Errorf("committed %s on the crashed server", ch.Variant.ID)
		}
		if !ch.Variant.NetworkQoS().Zero() {
			streams++
		}
	}
	if got := bed.Network.ActiveReservations(); got != streams {
		t.Errorf("network reservations = %d for %d committed streams", got, streams)
	}
	if got := bed.Servers["server-1"].ActiveStreams(); got != 0 {
		t.Errorf("crashed server leaked %d streams", got)
	}
	if d, ok := bed.Manager.Quarantined("server-1"); !ok || d <= 0 {
		t.Errorf("crashed server not quarantined (%v, %v)", d, ok)
	}

	// After a restart and the quarantine lapsing the server serves again;
	// here we only assert the restart accepts work.
	ws.Restart()
	if _, err := ws.Reserve(stream(qos.MBitPerSecond)); err != nil {
		t.Errorf("restarted server refuses work: %v", err)
	}
}
