// Package faults is a deterministic fault injector for the QoS manager's
// substrate: it wraps the media-server and transport interfaces the
// manager commits against (core.MediaServer, core.Transport) and injects
// server crashes and restarts, probabilistic admission and connect
// failures, latency, and crash-between-Reserve-and-Connect — the failure
// model the negotiation procedure's FAILEDTRYLATER / FAILEDWITHOUTOFFER
// statuses and the manager's server quarantine are tested against.
//
// All randomness comes from one seeded source, so a chaos run with a given
// seed replays the same fault schedule every time.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"qosneg/internal/cmfs"
	"qosneg/internal/core"
	"qosneg/internal/media"
	"qosneg/internal/network"
	"qosneg/internal/qos"
	"qosneg/internal/transport"
)

// ErrInjected marks a probabilistically injected failure; it is
// deliberately NOT core.ErrServerDown, so the manager classifies it as a
// transient capacity failure (feeding the consecutive-failure breaker)
// rather than hard down evidence.
var ErrInjected = errors.New("faults: injected failure")

// Injector is the root of a fault domain: one seeded random source plus
// the set of wrapped servers and transports, and the node-partition map
// crashed servers register in.
type Injector struct {
	mu         sync.Mutex
	rng        *rand.Rand
	down       map[network.NodeID]bool
	servers    map[media.ServerID]*Server
	transports []*Transport
}

// New builds an injector whose fault schedule is fully determined by seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:     rand.New(rand.NewSource(seed)),
		down:    make(map[network.NodeID]bool),
		servers: make(map[media.ServerID]*Server),
	}
}

// chance draws from the injector's seeded source.
func (in *Injector) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64() < p
}

func (in *Injector) setNodeDown(node network.NodeID, down bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if down {
		in.down[node] = true
	} else {
		delete(in.down, node)
	}
}

func (in *Injector) nodeDown(node network.NodeID) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.down[node]
}

// WrapServer interposes the injector between the manager and a media
// server attached at node; register the returned wrapper with
// Manager.AddServer in place of the raw server.
func (in *Injector) WrapServer(s core.MediaServer, node network.NodeID) *Server {
	ws := &Server{inner: s, inj: in, node: node, live: make(map[cmfs.ReservationID]bool)}
	in.mu.Lock()
	in.servers[s.ID()] = ws
	in.mu.Unlock()
	return ws
}

// WrapTransport interposes the injector on the connection-establishment
// path; crashed servers' nodes refuse connects through it.
func (in *Injector) WrapTransport(t core.Transport) *Transport {
	wt := &Transport{inner: t, inj: in}
	in.mu.Lock()
	in.transports = append(in.transports, wt)
	in.mu.Unlock()
	return wt
}

// Server returns the wrapped server with the given id.
func (in *Injector) Server(id media.ServerID) (*Server, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	s, ok := in.servers[id]
	return s, ok
}

// Servers returns every wrapped server, sorted by id.
func (in *Injector) Servers() []*Server {
	in.mu.Lock()
	out := make([]*Server, 0, len(in.servers))
	for _, s := range in.servers {
		out = append(out, s)
	}
	in.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// Crash crashes the named server; it reports whether the server is known.
func (in *Injector) Crash(id media.ServerID) bool {
	s, ok := in.Server(id)
	if ok {
		s.Crash()
	}
	return ok
}

// Restart restarts the named server; it reports whether the server is
// known.
func (in *Injector) Restart(id media.ServerID) bool {
	s, ok := in.Server(id)
	if ok {
		s.Restart()
	}
	return ok
}

// SetReserveFailure sets the probabilistic Reserve failure rate on every
// wrapped server.
func (in *Injector) SetReserveFailure(p float64) {
	for _, s := range in.Servers() {
		s.SetReserveFailure(p)
	}
}

// SetConnectFailure sets the probabilistic Connect failure rate on every
// wrapped transport.
func (in *Injector) SetConnectFailure(p float64) {
	in.mu.Lock()
	ts := append([]*Transport(nil), in.transports...)
	in.mu.Unlock()
	for _, t := range ts {
		t.SetConnectFailure(p)
	}
}

// SetLatency injects a fixed latency into every wrapped server Reserve and
// transport Connect.
func (in *Injector) SetLatency(d time.Duration) {
	for _, s := range in.Servers() {
		s.SetLatency(d)
	}
	in.mu.Lock()
	ts := append([]*Transport(nil), in.transports...)
	in.mu.Unlock()
	for _, t := range ts {
		t.SetLatency(d)
	}
}

// Server wraps a core.MediaServer with fault injection. A crashed server
// loses its reservation state (the inner server's admissions are released,
// as a real restart would) and refuses Reserve/Release with
// core.ErrServerDown until Restart; its attachment node also refuses
// transport connects, so in-flight commits fail between Reserve and
// Connect exactly as against a machine that died mid-negotiation.
type Server struct {
	inner core.MediaServer
	inj   *Injector
	node  network.NodeID

	mu           sync.Mutex
	down         bool
	reserveFailP float64
	latency      time.Duration
	// crashAfter, when > 0, counts down successful Reserves; the Reserve
	// that brings it to zero crashes the server right after granting —
	// the crash-between-Reserve-and-Connect window.
	crashAfter int
	// live tracks reservations granted through this wrapper, so a crash
	// can drop them from the inner server (state loss).
	live map[cmfs.ReservationID]bool
}

// ID returns the inner server's id.
func (s *Server) ID() media.ServerID { return s.inner.ID() }

// Config returns the inner server's disk model.
func (s *Server) Config() cmfs.Config { return s.inner.Config() }

// ActiveStreams returns the inner server's live stream count.
func (s *Server) ActiveStreams() int { return s.inner.ActiveStreams() }

// Utilization returns the inner server's disk-round utilization.
func (s *Server) Utilization() float64 { return s.inner.Utilization() }

// Node returns the server's network attachment point.
func (s *Server) Node() network.NodeID { return s.node }

// Down reports whether the server is currently crashed.
func (s *Server) Down() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.down
}

// SetReserveFailure makes each Reserve fail with probability p (drawn from
// the injector's seeded source) even while the server is up.
func (s *Server) SetReserveFailure(p float64) {
	s.mu.Lock()
	s.reserveFailP = p
	s.mu.Unlock()
}

// SetLatency injects a fixed delay into every Reserve.
func (s *Server) SetLatency(d time.Duration) {
	s.mu.Lock()
	s.latency = d
	s.mu.Unlock()
}

// CrashAfterReserves schedules a crash immediately after the n-th next
// successful Reserve: the reservation is granted, then lost — the
// commit-in-progress observes the crash on its Connect (or on the next
// choice's Reserve) and must roll back.
func (s *Server) CrashAfterReserves(n int) {
	s.mu.Lock()
	s.crashAfter = n
	s.mu.Unlock()
}

// Crash takes the server down: pending reservation state is lost (released
// on the inner server), Reserve/Release refuse with core.ErrServerDown,
// and the attachment node refuses transport connects.
func (s *Server) Crash() {
	s.mu.Lock()
	s.down = true
	s.crashAfter = 0
	ids := make([]cmfs.ReservationID, 0, len(s.live))
	for id := range s.live {
		ids = append(ids, id)
	}
	s.live = make(map[cmfs.ReservationID]bool)
	s.mu.Unlock()
	for _, id := range ids {
		s.inner.Release(id)
	}
	s.inj.setNodeDown(s.node, true)
}

// Restart brings a crashed server back empty: it accepts new work but
// remembers nothing reserved before the crash.
func (s *Server) Restart() {
	s.mu.Lock()
	s.down = false
	s.mu.Unlock()
	s.inj.setNodeDown(s.node, false)
}

// Reserve runs the inner admission test unless the server is down or an
// injected failure fires.
func (s *Server) Reserve(q qos.NetworkQoS) (cmfs.Reservation, error) {
	s.mu.Lock()
	latency, down, failP := s.latency, s.down, s.reserveFailP
	s.mu.Unlock()
	if latency > 0 {
		time.Sleep(latency)
	}
	if down {
		return cmfs.Reservation{}, fmt.Errorf("%w: %s is crashed", core.ErrServerDown, s.ID())
	}
	if s.inj.chance(failP) {
		return cmfs.Reservation{}, fmt.Errorf("%w: reserve on %s", ErrInjected, s.ID())
	}
	res, err := s.inner.Reserve(q)
	if err != nil {
		return res, err
	}
	s.mu.Lock()
	if s.down {
		// Crash raced the inner Reserve: its live-set snapshot predates
		// this reservation, so nothing else will ever release it — undo
		// the grant here or the stream leaks past the restart.
		s.mu.Unlock()
		s.inner.Release(res.ID)
		return cmfs.Reservation{}, fmt.Errorf("%w: %s is crashed", core.ErrServerDown, s.ID())
	}
	s.live[res.ID] = true
	crashNow := false
	if s.crashAfter > 0 {
		s.crashAfter--
		crashNow = s.crashAfter == 0
	}
	s.mu.Unlock()
	if crashNow {
		s.Crash()
	}
	return res, nil
}

// Release frees a reservation; on a crashed server the state is already
// gone and core.ErrServerDown is returned (the manager ignores release
// errors, mirroring a lost release message).
func (s *Server) Release(id cmfs.ReservationID) error {
	s.mu.Lock()
	down := s.down
	delete(s.live, id)
	s.mu.Unlock()
	if down {
		return fmt.Errorf("%w: %s is crashed", core.ErrServerDown, s.ID())
	}
	return s.inner.Release(id)
}

// Transport wraps a core.Transport with fault injection: connects to or
// from a crashed server's node refuse with core.ErrServerDown, and
// probabilistic connect failures simulate path-reservation races. Close
// always reaches the inner transport, so rollback never leaks.
type Transport struct {
	inner core.Transport
	inj   *Injector

	mu           sync.Mutex
	connectFailP float64
	latency      time.Duration
}

// SetConnectFailure makes each Connect fail with probability p.
func (t *Transport) SetConnectFailure(p float64) {
	t.mu.Lock()
	t.connectFailP = p
	t.mu.Unlock()
}

// SetLatency injects a fixed delay into every Connect.
func (t *Transport) SetLatency(d time.Duration) {
	t.mu.Lock()
	t.latency = d
	t.mu.Unlock()
}

// Connect establishes a connection unless an endpoint is down or an
// injected failure fires.
func (t *Transport) Connect(src, dst network.NodeID, q qos.NetworkQoS) (transport.Connection, error) {
	t.mu.Lock()
	latency, failP := t.latency, t.connectFailP
	t.mu.Unlock()
	if latency > 0 {
		time.Sleep(latency)
	}
	if t.inj.nodeDown(src) {
		return transport.Connection{}, fmt.Errorf("%w: node %s unreachable", core.ErrServerDown, src)
	}
	if t.inj.nodeDown(dst) {
		return transport.Connection{}, fmt.Errorf("%w: node %s unreachable", core.ErrServerDown, dst)
	}
	if t.inj.chance(failP) {
		return transport.Connection{}, fmt.Errorf("%w: connect %s -> %s", ErrInjected, src, dst)
	}
	return t.inner.Connect(src, dst, q)
}

// Close tears down a connection; never injected, so rollback always
// releases network state.
func (t *Transport) Close(c transport.Connection) error { return t.inner.Close(c) }
