package protocol

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
)

// Codec names, as exchanged in the MsgHello handshake. The binary codec is
// length-prefixed frames carrying the same JSON payloads as the fallback;
// the JSON codec is the legacy newline-delimited stream, one request at a
// time.
const (
	// CodecJSON is the legacy framing: one JSON value per line, requests
	// answered in order on a single logical stream.
	CodecJSON = "json"
	// CodecBinary is the multiplexed framing: 12-byte binary headers
	// (magic, version, flags, stream id, payload length) in front of the
	// same JSON payload bytes, with concurrent streams per connection.
	CodecBinary = "binary/1"
)

// WireVersion is the binary framing version this build speaks; it is
// carried in every frame header and checked on receipt.
const WireVersion = 1

const (
	frameMagic0 = 'Q'
	frameMagic1 = 'N'
	// frameHeaderSize is magic(2) + version(1) + flags(1) + stream(4) +
	// length(4).
	frameHeaderSize = 12
)

// Frame flags.
const (
	// flagFIN marks the last frame of a stream (every unary response; the
	// final update of a watch stream).
	flagFIN byte = 1 << 0
	// flagCancel asks the peer to abandon the stream: no payload, and no
	// further frames are wanted. Unknown stream ids are ignored — the
	// stream may have finished while the cancel was in flight.
	flagCancel byte = 1 << 1
)

// MaxFramePayload bounds a single frame; larger length prefixes are a
// protocol error (ErrFrameTooLarge) and close the connection rather than
// committing the reader to an attacker-sized allocation.
const MaxFramePayload = 8 << 20

// DefaultMaxStreams is the per-connection cap on concurrently open streams
// when WireOptions.MaxStreams is zero.
const DefaultMaxStreams = 256

// Typed framing errors. Both ends answer a best-effort MsgError and close
// the connection when one of these is detected mid-stream.
var (
	// ErrBadFrameMagic: the 2-byte frame preamble was not "QN".
	ErrBadFrameMagic = errors.New("protocol: bad frame magic")
	// ErrBadFrameVersion: the frame's version byte is not WireVersion.
	ErrBadFrameVersion = errors.New("protocol: unsupported frame version")
	// ErrFrameTooLarge: the length prefix exceeds MaxFramePayload.
	ErrFrameTooLarge = errors.New("protocol: frame exceeds size limit")
	// ErrBadStreamID: a request frame used the reserved stream id 0 or
	// reused a stream id that is still open.
	ErrBadStreamID = errors.New("protocol: invalid stream id")
)

// WireOptions tunes a connection's codec negotiation and multiplexing. The
// zero value offers binary-then-JSON and the default stream cap.
type WireOptions struct {
	// Codecs is the preference-ordered codec list offered (client) or
	// accepted (server). Nil selects [CodecBinary, CodecJSON]. A client
	// configured as exactly [CodecJSON] skips the hello handshake entirely
	// and speaks the legacy protocol byte-for-byte.
	Codecs []string
	// MaxStreams caps concurrently open streams per multiplexed
	// connection; 0 selects DefaultMaxStreams.
	MaxStreams int
}

func (w WireOptions) codecs() []string {
	if len(w.Codecs) == 0 {
		return []string{CodecBinary, CodecJSON}
	}
	return w.Codecs
}

func (w WireOptions) maxStreams() int {
	if w.MaxStreams <= 0 {
		return DefaultMaxStreams
	}
	return w.MaxStreams
}

func (w WireOptions) supports(codec string) bool {
	for _, c := range w.codecs() {
		if c == codec {
			return true
		}
	}
	return false
}

// frame is one unit of the binary codec: a stream id, flags, and the JSON
// payload bytes (identical to the bytes the JSON codec would put on a
// line).
type frame struct {
	Stream  uint32
	Flags   byte
	Payload []byte
}

// appendFrame appends f's wire encoding to dst.
func appendFrame(dst []byte, f frame) []byte {
	var hdr [frameHeaderSize]byte
	hdr[0], hdr[1] = frameMagic0, frameMagic1
	hdr[2] = WireVersion
	hdr[3] = f.Flags
	binary.BigEndian.PutUint32(hdr[4:8], f.Stream)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(f.Payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, f.Payload...)
}

// readFrame reads and validates one frame. Transport errors come back
// verbatim; malformed headers come back as the typed framing errors above.
func readFrame(r io.Reader) (frame, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	if hdr[0] != frameMagic0 || hdr[1] != frameMagic1 {
		return frame{}, ErrBadFrameMagic
	}
	if hdr[2] != WireVersion {
		return frame{}, fmt.Errorf("%w: %d", ErrBadFrameVersion, hdr[2])
	}
	f := frame{
		Flags:  hdr[3],
		Stream: binary.BigEndian.Uint32(hdr[4:8]),
	}
	n := binary.BigEndian.Uint32(hdr[8:12])
	if n > MaxFramePayload {
		return frame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return frame{}, err
		}
	}
	return f, nil
}

// frameWriter serializes frame writes from concurrent streams onto one
// connection through a dedicated goroutine, flushing the buffered writer
// only when the queue drains — so bursts of small responses share syscalls.
type frameWriter struct {
	ch   chan frame
	quit chan struct{}
	done chan struct{}
	once sync.Once

	mu  sync.Mutex
	err error
}

// newFrameWriter starts the writer goroutine over w. fail, if non-nil, is
// invoked once with the first write error (typically to close the
// connection so the read side unblocks).
func newFrameWriter(w io.Writer, fail func(error)) *frameWriter {
	fw := &frameWriter{
		ch:   make(chan frame, 128),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	go fw.loop(w, fail)
	return fw
}

func (fw *frameWriter) loop(w io.Writer, fail func(error)) {
	defer close(fw.done)
	bw := bufio.NewWriterSize(w, 32<<10)
	buf := make([]byte, 0, 4<<10)
	var failed bool
	flush := func(err error) {
		if err == nil || failed {
			return
		}
		failed = true
		fw.mu.Lock()
		fw.err = err
		fw.mu.Unlock()
		if fail != nil {
			fail(err)
		}
	}
	for {
		select {
		case f := <-fw.ch:
			if failed {
				continue // drain so senders never block on a dead conn
			}
			buf = appendFrame(buf[:0], f)
			_, err := bw.Write(buf)
			if err == nil && len(fw.ch) == 0 {
				// Give runnable producers one scheduler slot to extend the
				// burst before paying the flush syscall: under concurrent
				// load many small frames then share one write.
				runtime.Gosched()
				if len(fw.ch) == 0 {
					err = bw.Flush()
				}
			}
			flush(err)
		case <-fw.quit:
			// Drain frames already queued so responses written just
			// before shutdown still reach the peer.
			for {
				select {
				case f := <-fw.ch:
					if failed {
						continue
					}
					buf = appendFrame(buf[:0], f)
					if _, err := bw.Write(buf); err != nil {
						flush(err)
					}
				default:
					if !failed {
						flush(bw.Flush())
					}
					return
				}
			}
		}
	}
}

// send enqueues a frame; it returns the writer's terminal error after the
// writer has stopped or failed.
func (fw *frameWriter) send(f frame) error {
	fw.mu.Lock()
	err := fw.err
	fw.mu.Unlock()
	if err != nil {
		return err
	}
	select {
	case fw.ch <- f:
		return nil
	case <-fw.quit:
		return ErrClientClosed
	}
}

// stop flushes pending frames and stops the writer goroutine; safe to call
// more than once.
func (fw *frameWriter) stop() {
	fw.once.Do(func() { close(fw.quit) })
	<-fw.done
}
