package protocol

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"qosneg/internal/core"
	"qosneg/internal/media"
	"qosneg/internal/registry"
	"qosneg/internal/telemetry"
)

// Server exposes a QoS manager over TCP. It enforces each reserved
// session's choice period with a server-side timer: the paper's step 6
// ("The user must confirm the user offer within a limited amount of time
// since the resources are reserved ... If a time-out is reached the session
// is simply aborted").
type Server struct {
	man *core.Manager
	reg *registry.Registry

	// baseCtx bounds every negotiation the server runs; Close cancels it
	// so in-flight pipelines abort and roll back.
	baseCtx context.Context
	cancel  context.CancelFunc

	mu          sync.Mutex
	confirmHook func(core.SessionID)
	timers      map[core.SessionID]*time.Timer
	conns       map[net.Conn]bool
	wg          sync.WaitGroup
	closed      bool
	// Expired counts sessions aborted by choice-period time-out.
	expired int

	// Telemetry, installed by Instrument before Serve; all nil when the
	// server runs uninstrumented (every recording call is nil-safe).
	metrics    *telemetry.Registry
	rpcSeconds *telemetry.HistogramFamily
	rpcErrors  *telemetry.CounterFamily
	connGauge  *telemetry.Gauge
	expiredCtr *telemetry.Counter
}

// Instrument wires the server into a telemetry registry: per-RPC latency
// histograms and error counters by message type, a live-connection gauge,
// a choice-period-expiry counter — and makes MsgMetrics answer with the
// registry's snapshot. Call before Serve; a nil registry is a no-op.
func (s *Server) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.metrics = reg
	s.rpcSeconds = reg.HistogramFamily("qosneg_rpc_server_seconds",
		"Server-side RPC handling latency by message type.", "type", telemetry.LatencyBuckets)
	s.rpcErrors = reg.CounterFamily("qosneg_rpc_server_errors_total",
		"RPCs answered with an error, by message type.", "type")
	s.connGauge = reg.Gauge("qosneg_server_connections",
		"Currently open protocol connections.")
	s.expiredCtr = reg.Counter("qosneg_sessions_expired_total",
		"Sessions aborted by choice-period time-out.")
}

// NewServer builds a protocol server over the QoS manager and registry.
func NewServer(man *core.Manager, reg *registry.Registry) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		man:     man,
		reg:     reg,
		baseCtx: ctx,
		cancel:  cancel,
		timers:  make(map[core.SessionID]*time.Timer),
		conns:   make(map[net.Conn]bool),
	}
}

// Serve accepts connections on l until l is closed. Each connection is
// handled on its own goroutine; Serve returns after the accept loop exits.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = true
		s.wg.Add(1)
		s.mu.Unlock()
		s.connGauge.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			s.connGauge.Add(-1)
		}()
	}
}

// Close stops accepting work, cancels in-flight negotiations, closes live
// connections and waits for the handlers to finish. Pending choice-period
// timers keep running so that reservations are still reclaimed.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}

// Expired returns how many sessions were aborted by choice-period time-out.
func (s *Server) Expired() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.expired
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	// The wire format is one JSON value per line (both ends encode with
	// json.Encoder). Framing on lines rather than a streaming decoder
	// means a truncated value — a client dying mid-write, or garbage like
	// a lone "{" — is answered and the connection closed instead of the
	// handler blocking forever waiting for the value to complete.
	r := bufio.NewReader(conn)
	enc := json.NewEncoder(conn)
	for {
		line, err := r.ReadBytes('\n')
		if len(bytes.TrimSpace(line)) == 0 {
			if err != nil {
				return
			}
			continue
		}
		if err != nil && err != io.EOF {
			return
		}
		var req Request
		if jerr := json.Unmarshal(line, &req); jerr != nil {
			enc.Encode(Response{Type: MsgError, Error: fmt.Sprintf("bad request: %v", jerr)})
			return
		}
		if req.Type == MsgWatch {
			if err := s.watch(req, enc); err != nil {
				return
			}
			continue
		}
		var begin time.Time
		if s.rpcSeconds != nil {
			begin = time.Now()
		}
		resp := s.dispatch(req)
		if s.rpcSeconds != nil {
			s.rpcSeconds.With(string(req.Type)).Observe(time.Since(begin))
		}
		if resp.Type == MsgError {
			s.rpcErrors.With(string(req.Type)).Inc()
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req Request) Response {
	switch req.Type {
	case MsgNegotiate:
		return s.negotiate(req)
	case MsgConfirm:
		return s.confirm(req)
	case MsgReject:
		return s.reject(req)
	case MsgRenegotiate:
		return s.renegotiate(req)
	case MsgSession:
		return s.session(req)
	case MsgListDocuments:
		return s.listDocuments(req)
	case MsgStats:
		st := s.man.Stats()
		return Response{Type: MsgStatsInfo, Stats: &st}
	case MsgListSessions:
		return s.listSessions()
	case MsgServerLoads:
		return Response{Type: MsgServerLoadsInfo, ServerLoads: s.man.ServerLoads()}
	case MsgMetrics:
		// Snapshot is nil-safe: an uninstrumented daemon answers with an
		// empty (but well-formed) snapshot rather than an error.
		snap := s.metrics.Snapshot()
		return Response{Type: MsgMetricsInfo, Metrics: &snap}
	case MsgInvoice:
		inv, err := s.man.Invoice(req.Session)
		if err != nil {
			return Response{Type: MsgError, Error: err.Error()}
		}
		return Response{Type: MsgInvoiceInfo, Session: req.Session, Invoice: &inv}
	default:
		return Response{Type: MsgError, Error: fmt.Sprintf("unknown request type %q", req.Type)}
	}
}

func (s *Server) negotiate(req Request) Response {
	if req.Machine == nil || req.Profile == nil || req.Document == "" {
		return Response{Type: MsgError, Error: "negotiate needs machine, document and profile"}
	}
	if err := req.Machine.Validate(); err != nil {
		return Response{Type: MsgError, Error: err.Error()}
	}
	if err := req.Profile.Validate(); err != nil {
		return Response{Type: MsgError, Error: err.Error()}
	}
	res, err := s.man.NegotiateContext(s.baseCtx, *req.Machine, req.Document, *req.Profile)
	if err != nil {
		return Response{Type: MsgError, Error: err.Error()}
	}
	resp := Response{
		Type:         MsgResult,
		Status:       res.Status.String(),
		Offer:        res.Offer,
		Reason:       res.Reason,
		RetryAfterMs: res.RetryAfter.Milliseconds(),
	}
	for _, v := range res.Violations {
		resp.Violations = append(resp.Violations, v.String())
	}
	if res.Session != nil {
		resp.Session = res.Session.ID
		resp.Cost = res.Session.Cost()
		resp.ChoicePeriodMs = res.Session.ChoicePeriod.Milliseconds()
		s.armChoiceTimer(res.Session.ID, res.Session.ChoicePeriod)
	}
	return resp
}

// armChoiceTimer starts the step 6 time-out for a reserved session.
func (s *Server) armChoiceTimer(id core.SessionID, period time.Duration) {
	t := time.AfterFunc(period, func() {
		s.mu.Lock()
		delete(s.timers, id)
		s.mu.Unlock()
		// Expire only succeeds while the session is still Reserved, so a
		// raced Confirm wins harmlessly; an expired session answers later
		// Confirm/Reject calls with ErrChoicePeriodExpired.
		if err := s.man.Expire(id); err == nil {
			s.expiredCtr.Inc()
			s.mu.Lock()
			s.expired++
			s.mu.Unlock()
		}
	})
	s.mu.Lock()
	s.timers[id] = t
	s.mu.Unlock()
}

// disarmChoiceTimer cancels the time-out; it reports whether the timer was
// still pending.
func (s *Server) disarmChoiceTimer(id core.SessionID) bool {
	s.mu.Lock()
	t, ok := s.timers[id]
	delete(s.timers, id)
	s.mu.Unlock()
	if !ok {
		return false
	}
	return t.Stop()
}

// renegotiate re-runs the procedure for a reserved session. The old choice
// timer is disarmed; a successful renegotiation arms a fresh one.
func (s *Server) renegotiate(req Request) Response {
	if req.Profile == nil {
		return Response{Type: MsgError, Error: "renegotiate needs a profile"}
	}
	if err := req.Profile.Validate(); err != nil {
		return Response{Type: MsgError, Error: err.Error()}
	}
	s.disarmChoiceTimer(req.Session)
	res, err := s.man.RenegotiateContext(s.baseCtx, req.Session, *req.Profile)
	if err != nil {
		return Response{Type: MsgError, Error: err.Error()}
	}
	resp := Response{
		Type:         MsgResult,
		Status:       res.Status.String(),
		Offer:        res.Offer,
		Reason:       res.Reason,
		RetryAfterMs: res.RetryAfter.Milliseconds(),
	}
	for _, v := range res.Violations {
		resp.Violations = append(resp.Violations, v.String())
	}
	if res.Session != nil {
		resp.Session = res.Session.ID
		resp.Cost = res.Session.Cost()
		resp.ChoicePeriodMs = res.Session.ChoicePeriod.Milliseconds()
		s.armChoiceTimer(res.Session.ID, res.Session.ChoicePeriod)
	}
	return resp
}

func (s *Server) confirm(req Request) Response {
	s.disarmChoiceTimer(req.Session)
	if err := s.man.Confirm(req.Session); err != nil {
		return Response{Type: MsgError, Error: err.Error()}
	}
	s.mu.Lock()
	hook := s.confirmHook
	s.mu.Unlock()
	if hook != nil {
		hook(req.Session)
	}
	return Response{Type: MsgOK, Session: req.Session}
}

// setConfirmHook installs a callback fired after every successful Confirm;
// the playout driver uses it.
func (s *Server) setConfirmHook(hook func(core.SessionID)) {
	s.mu.Lock()
	s.confirmHook = hook
	s.mu.Unlock()
}

// registryDocument exposes the catalog to the playout driver.
func (s *Server) registryDocument(id media.DocumentID) (media.Document, error) {
	return s.reg.Document(id)
}

func (s *Server) reject(req Request) Response {
	s.disarmChoiceTimer(req.Session)
	if err := s.man.Reject(req.Session); err != nil {
		return Response{Type: MsgError, Error: err.Error()}
	}
	return Response{Type: MsgOK, Session: req.Session}
}

func (s *Server) session(req Request) Response {
	sess, err := s.man.Session(req.Session)
	if err != nil {
		return Response{Type: MsgError, Error: err.Error()}
	}
	return Response{
		Type:        MsgSessionInfo,
		Session:     sess.ID,
		State:       sess.State().String(),
		PositionMs:  sess.Position().Milliseconds(),
		Transitions: sess.Transitions(),
		Cost:        sess.Cost(),
	}
}

// watch streams session updates until the session reaches a terminal state
// or the connection breaks. Each sample is a MsgSessionInfo; the last one
// carries Final=true.
func (s *Server) watch(req Request, enc *json.Encoder) error {
	interval := time.Duration(req.IntervalMs) * time.Millisecond
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	sess, err := s.man.Session(req.Session)
	if err != nil {
		return enc.Encode(Response{Type: MsgError, Error: err.Error()})
	}
	var lastState string
	var lastTransitions int
	for {
		state := sess.State()
		info := Response{
			Type:        MsgSessionInfo,
			Session:     sess.ID,
			State:       state.String(),
			PositionMs:  sess.Position().Milliseconds(),
			Transitions: sess.Transitions(),
			Cost:        sess.Cost(),
		}
		terminal := state == core.Completed || state == core.Aborted
		changed := info.State != lastState || info.Transitions != lastTransitions
		if terminal {
			info.Final = true
		}
		if changed || terminal {
			if err := enc.Encode(info); err != nil {
				return err
			}
			lastState = info.State
			lastTransitions = info.Transitions
		}
		if terminal {
			return nil
		}
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return nil
		}
		time.Sleep(interval)
	}
}

func (s *Server) listSessions() Response {
	resp := Response{Type: MsgSessions}
	for _, state := range []core.SessionState{core.Reserved, core.Playing, core.Completed, core.Aborted} {
		for _, sess := range s.man.Sessions(state) {
			resp.Sessions = append(resp.Sessions, SessionSummary{
				Session:     sess.ID,
				Document:    sess.Document,
				State:       state.String(),
				PositionMs:  sess.Position().Milliseconds(),
				Transitions: sess.Transitions(),
				Cost:        sess.Cost(),
			})
		}
	}
	sort.Slice(resp.Sessions, func(i, j int) bool { return resp.Sessions[i].Session < resp.Sessions[j].Session })
	return resp
}

func (s *Server) listDocuments(req Request) Response {
	ids := s.reg.List()
	if req.Query != "" {
		ids = s.reg.SearchTitle(req.Query)
	}
	resp := Response{Type: MsgDocuments}
	for _, id := range ids {
		d, err := s.reg.Document(id)
		if err != nil {
			continue
		}
		resp.Documents = append(resp.Documents, DocumentSummary{
			ID: d.ID, Title: d.Title, Components: len(d.Monomedia),
		})
	}
	return resp
}
