package protocol

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"qosneg/internal/admission"
	"qosneg/internal/core"
	"qosneg/internal/media"
	"qosneg/internal/registry"
	"qosneg/internal/shard"
	"qosneg/internal/telemetry"
)

// Server exposes a QoS manager over TCP, speaking both wire codecs: every
// connection opens in the JSON line protocol, and a MsgHello handshake may
// upgrade it to the multiplexed binary codec. Legacy clients never send a
// hello and are served exactly as before.
//
// The server enforces each reserved session's choice period with a
// server-side timer: the paper's step 6 ("The user must confirm the user
// offer within a limited amount of time since the resources are reserved
// ... If a time-out is reached the session is simply aborted").
type Server struct {
	man  core.SessionManager
	reg  *registry.Registry
	wire WireOptions
	// adm, when non-nil, sheds negotiation-class requests with a typed
	// MsgBusy reply before any reservation work when the controller
	// reports saturation (WithServerAdmission).
	adm *admission.Controller

	// baseCtx bounds every negotiation the server runs; Close cancels it
	// so in-flight pipelines abort and roll back.
	baseCtx context.Context
	cancel  context.CancelFunc

	mu          sync.Mutex
	confirmHook func(core.SessionID)
	timers      map[core.SessionID]*time.Timer
	conns       map[net.Conn]bool
	wg          sync.WaitGroup
	closed      bool
	// Expired counts sessions aborted by choice-period time-out.
	expired int

	// Telemetry, installed by Instrument before Serve; all nil when the
	// server runs uninstrumented (every recording call is nil-safe).
	metrics     *telemetry.Registry
	rpcSeconds  *telemetry.HistogramFamily
	rpcErrors   *telemetry.CounterFamily
	connGauge   *telemetry.Gauge
	connCtr     *telemetry.CounterFamily
	streamGauge *telemetry.Gauge
	expiredCtr  *telemetry.Counter
	shedCtr     *telemetry.CounterFamily
}

// defaultShedRetryAfter is the hint a busy reply carries when the stream
// semaphore is saturated and no admission controller supplies a
// load-derived one.
const defaultShedRetryAfter = time.Second

// ServerOption configures NewServer.
type ServerOption func(*Server)

// WithServerWire sets the codecs the server may pick in the MsgHello
// handshake and its per-connection stream cap. Regardless of the codec
// list, clients that never send a hello are served the legacy JSON
// protocol — the fallback is unconditional.
func WithServerWire(w WireOptions) ServerOption {
	return func(s *Server) { s.wire = w }
}

// WithServerAdmission installs an admission controller on the server: new
// negotiation-class requests (negotiate, batch-negotiate, renegotiate) are
// refused with a typed MsgBusy reply carrying the controller's RetryAfter
// when the controller reports saturation — cheap refusal before any
// reservation work, on both codecs. Queries and the step 6
// confirm/reject of already-admitted sessions are never shed, so running
// sessions stay manageable under overload. A nil controller disables the
// check.
func WithServerAdmission(c *admission.Controller) ServerOption {
	return func(s *Server) { s.adm = c }
}

// Instrument wires the server into a telemetry registry: per-RPC latency
// histograms and error counters by message type, a live-connection gauge,
// a per-codec connection counter, a live-stream gauge for multiplexed
// connections, a choice-period-expiry counter — and makes MsgMetrics
// answer with the registry's snapshot. Call before Serve; a nil registry
// is a no-op.
func (s *Server) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.metrics = reg
	s.rpcSeconds = reg.HistogramFamily("qosneg_rpc_server_seconds",
		"Server-side RPC handling latency by message type.", "type", telemetry.LatencyBuckets)
	s.rpcErrors = reg.CounterFamily("qosneg_rpc_server_errors_total",
		"RPCs answered with an error, by message type.", "type")
	s.connGauge = reg.Gauge("qosneg_server_connections",
		"Currently open protocol connections.")
	s.connCtr = reg.CounterFamily("qosneg_server_connections_total",
		"Connections served, by negotiated codec.", "codec")
	s.streamGauge = reg.Gauge("qosneg_server_streams",
		"Currently executing streams on multiplexed connections.")
	s.expiredCtr = reg.Counter("qosneg_sessions_expired_total",
		"Sessions aborted by choice-period time-out.")
	s.shedCtr = reg.CounterFamily("qosneg_rpc_shed_total",
		"Requests shed with a typed busy reply before dispatch, by codec.", "codec")
}

// NewServer builds a protocol server over the QoS manager and registry.
func NewServer(man core.SessionManager, reg *registry.Registry, opts ...ServerOption) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		man:     man,
		reg:     reg,
		baseCtx: ctx,
		cancel:  cancel,
		timers:  make(map[core.SessionID]*time.Timer),
		conns:   make(map[net.Conn]bool),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Serve accepts connections on l until l is closed. Each connection is
// handled on its own goroutine; Serve returns after the accept loop exits.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = true
		s.wg.Add(1)
		s.mu.Unlock()
		s.connGauge.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			s.connGauge.Add(-1)
		}()
	}
}

// Close stops accepting work, cancels in-flight negotiations, closes live
// connections and waits for the handlers to finish. Pending choice-period
// timers keep running so that reservations are still reclaimed.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}

// Expired returns how many sessions were aborted by choice-period time-out.
func (s *Server) Expired() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.expired
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// handle serves one connection. It opens in the JSON line protocol — a
// truncated value (a client dying mid-write, or garbage like a lone "{")
// is answered and the connection closed instead of the handler blocking
// forever waiting for the value to complete. A MsgHello as the first
// message may upgrade the connection to the binary codec; anything else
// pins it to JSON for its lifetime.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	first := true
	for {
		line, err := r.ReadBytes('\n')
		if len(bytes.TrimSpace(line)) == 0 {
			if err != nil {
				return
			}
			continue
		}
		if err != nil && err != io.EOF {
			return
		}
		env, derr := readEnvelopeLine(line)
		if derr != nil {
			writeEnvelopeLine(conn, Envelope{Type: MsgError, Payload: &ErrorPayload{Error: fmt.Sprintf("bad request: %v", derr)}})
			return
		}
		if first {
			first = false
			if env.Type == MsgHello {
				chosen, streams := s.pickCodec(env.Payload.(*HelloRequest))
				writeEnvelopeLine(conn, Envelope{Type: MsgHelloAck, Payload: &HelloAck{Codec: chosen, MaxStreams: streams}})
				s.connCtr.With(chosen).Inc()
				if chosen == CodecBinary {
					s.serveBinary(conn, r, streams)
					return
				}
				continue
			}
			s.connCtr.With(CodecJSON).Inc()
		} else if env.Type == MsgHello {
			if werr := writeEnvelopeLine(conn, Envelope{Type: MsgError, Payload: &ErrorPayload{Error: "hello must be the first message on a connection"}}); werr != nil {
				return
			}
			continue
		}
		if env.Type == MsgWatch {
			req, _ := env.Payload.(*WatchRequest)
			if err := s.watchJSON(conn, req); err != nil {
				return
			}
			continue
		}
		// Admission control mirrors the binary codec: negotiation-class
		// requests are refused with a typed busy reply under saturation.
		if s.adm != nil && negotiationType(env.Type) {
			if retry, saturated := s.adm.Saturated(); saturated {
				s.shedCtr.With(CodecJSON).Inc()
				if err := writeEnvelopeLine(conn, Envelope{Type: MsgBusy, Payload: &BusyPayload{Error: "admission control: manager overloaded", RetryAfterMs: retry.Milliseconds()}}); err != nil {
					return
				}
				continue
			}
		}
		resp := s.serve(s.baseCtx, env)
		if err := writeEnvelopeLine(conn, resp); err != nil {
			return
		}
	}
}

// pickCodec answers a hello: the first client-preferred codec the server
// accepts, falling back to JSON (which the server always speaks).
func (s *Server) pickCodec(req *HelloRequest) (codec string, streams int) {
	codec = CodecJSON
	for _, c := range req.Codecs {
		if s.wire.supports(c) && (c == CodecBinary || c == CodecJSON) {
			codec = c
			break
		}
	}
	streams = s.wire.maxStreams()
	if req.MaxStreams > 0 && req.MaxStreams < streams {
		streams = req.MaxStreams
	}
	return codec, streams
}

// serve times and dispatches one unary RPC.
func (s *Server) serve(ctx context.Context, env Envelope) Envelope {
	var begin time.Time
	if s.rpcSeconds != nil {
		begin = time.Now()
	}
	resp := s.dispatch(ctx, env)
	if s.rpcSeconds != nil {
		s.rpcSeconds.With(string(env.Type)).Observe(time.Since(begin))
	}
	if resp.Type == MsgError {
		s.rpcErrors.With(string(env.Type)).Inc()
	}
	resp.StreamID = env.StreamID
	return resp
}

func errEnvelope(format string, args ...any) Envelope {
	return Envelope{Type: MsgError, Payload: &ErrorPayload{Error: fmt.Sprintf(format, args...)}}
}

func busyEnvelope(msg string, retry time.Duration) Envelope {
	return Envelope{Type: MsgBusy, Payload: &BusyPayload{Error: msg, RetryAfterMs: retry.Milliseconds()}}
}

// negotiationType reports whether t starts new negotiation work on the
// manager — the only request class admission may shed. Queries and the
// confirm/reject of already-reserved sessions always go through, so
// overload never strands admitted work.
func negotiationType(t MessageType) bool {
	switch t {
	case MsgNegotiate, MsgBatchNegotiate, MsgRenegotiate:
		return true
	}
	return false
}

// busyRetry resolves the hint for a shed the controller did not decide
// (stream-semaphore saturation): the controller's live hint when one is
// installed, a fixed default otherwise — never zero, so every busy reply
// tells the client when to come back.
func (s *Server) busyRetry() time.Duration {
	if d := s.adm.RetryHint(); d > 0 {
		return d
	}
	return defaultShedRetryAfter
}

func (s *Server) dispatch(ctx context.Context, env Envelope) Envelope {
	switch env.Type {
	case MsgNegotiate:
		return s.negotiate(ctx, env.Payload.(*NegotiateRequest))
	case MsgBatchNegotiate:
		return s.batchNegotiate(ctx, env.Payload.(*BatchNegotiateRequest))
	case MsgConfirm:
		return s.confirm(env.Payload.(*SessionRequest).Session)
	case MsgReject:
		return s.reject(env.Payload.(*SessionRequest).Session)
	case MsgRenegotiate:
		return s.renegotiate(ctx, env.Payload.(*RenegotiateRequest))
	case MsgSession:
		return s.session(env.Payload.(*SessionRequest).Session)
	case MsgListDocuments:
		return s.listDocuments(env.Payload.(*ListDocumentsRequest).Query)
	case MsgStats:
		st := s.man.Stats()
		p := &StatsInfoPayload{Stats: &st}
		// A sharded fleet reveals its per-shard breakdown through this
		// optional interface; a plain manager answers without it.
		if f, ok := s.man.(interface{ ShardStats() []shard.Stat }); ok {
			p.Shards = f.ShardStats()
		}
		return Envelope{Type: MsgStatsInfo, Payload: p}
	case MsgListSessions:
		return s.listSessions()
	case MsgServerLoads:
		return Envelope{Type: MsgServerLoadsInfo, Payload: &ServerLoadsPayload{ServerLoads: s.man.ServerLoads()}}
	case MsgMetrics:
		// Snapshot is nil-safe: an uninstrumented daemon answers with an
		// empty (but well-formed) snapshot rather than an error.
		snap := s.metrics.Snapshot()
		return Envelope{Type: MsgMetricsInfo, Payload: &MetricsPayload{Metrics: &snap}}
	case MsgInvoice:
		id := env.Payload.(*SessionRequest).Session
		inv, err := s.man.Invoice(id)
		if err != nil {
			return errEnvelope("%s", err)
		}
		return Envelope{Type: MsgInvoiceInfo, Payload: &InvoicePayload{Session: id, Invoice: &inv}}
	case MsgHello:
		return errEnvelope("hello must be the first message on a connection")
	default:
		return errEnvelope("unknown request type %q", env.Type)
	}
}

// resultPayload renders a negotiation outcome and, for a reserved session,
// arms its step 6 choice-period timer.
func (s *Server) resultPayload(res core.Result) *ResultPayload {
	p := &ResultPayload{
		Status:       res.Status.String(),
		Offer:        res.Offer,
		Reason:       res.Reason,
		RetryAfterMs: res.RetryAfter.Milliseconds(),
		Shed:         res.Shed,
	}
	for _, v := range res.Violations {
		p.Violations = append(p.Violations, v.String())
	}
	if res.Session != nil {
		p.Session = res.Session.ID
		p.Cost = res.Session.Cost()
		p.ChoicePeriodMs = res.Session.ChoicePeriod.Milliseconds()
		s.armChoiceTimer(res.Session.ID, res.Session.ChoicePeriod)
	}
	return p
}

func (s *Server) negotiate(ctx context.Context, req *NegotiateRequest) Envelope {
	if req.Machine == nil || req.Profile == nil || req.Document == "" {
		return errEnvelope("negotiate needs machine, document and profile")
	}
	if err := req.Machine.Validate(); err != nil {
		return errEnvelope("%s", err)
	}
	if err := req.Profile.Validate(); err != nil {
		return errEnvelope("%s", err)
	}
	res, err := s.man.NegotiateContext(ctx, *req.Machine, req.Document, *req.Profile)
	if err != nil {
		return errEnvelope("%s", err)
	}
	return Envelope{Type: MsgResult, Payload: s.resultPayload(res)}
}

// batchNegotiate fans a playlist's items out concurrently; item i of the
// answer corresponds to item i of the request, and one failed item does not
// fail its siblings. Each reserved item gets its own choice timer.
func (s *Server) batchNegotiate(ctx context.Context, req *BatchNegotiateRequest) Envelope {
	if len(req.Items) == 0 {
		return errEnvelope("batch-negotiate needs at least one item")
	}
	results := make([]BatchItemResult, len(req.Items))
	// The client propagates its context deadline as TimeoutMs; each item's
	// negotiation is bounded by it independently, so one slow item times out
	// on schedule instead of inheriting only the server's base context.
	timeout := time.Duration(req.TimeoutMs) * time.Millisecond
	var wg sync.WaitGroup
	for i := range req.Items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ictx := ctx
			if timeout > 0 {
				var cancel context.CancelFunc
				ictx, cancel = context.WithTimeout(ctx, timeout)
				defer cancel()
			}
			resp := s.negotiate(ictx, &NegotiateRequest{
				Machine:  req.Items[i].Machine,
				Document: req.Items[i].Document,
				Profile:  req.Items[i].Profile,
			})
			switch p := resp.Payload.(type) {
			case *ResultPayload:
				results[i].ResultPayload = *p
			case *ErrorPayload:
				results[i].Error = p.Error
			}
		}(i)
	}
	wg.Wait()
	return Envelope{Type: MsgBatchResult, Payload: &BatchResultPayload{Items: results}}
}

// armChoiceTimer starts the step 6 time-out for a reserved session.
func (s *Server) armChoiceTimer(id core.SessionID, period time.Duration) {
	t := time.AfterFunc(period, func() {
		s.mu.Lock()
		delete(s.timers, id)
		s.mu.Unlock()
		// Expire only succeeds while the session is still Reserved, so a
		// raced Confirm wins harmlessly; an expired session answers later
		// Confirm/Reject calls with ErrChoicePeriodExpired.
		if err := s.man.Expire(id); err == nil {
			s.expiredCtr.Inc()
			s.mu.Lock()
			s.expired++
			s.mu.Unlock()
		}
	})
	s.mu.Lock()
	s.timers[id] = t
	s.mu.Unlock()
}

// disarmChoiceTimer cancels the time-out; it reports whether the timer was
// still pending.
func (s *Server) disarmChoiceTimer(id core.SessionID) bool {
	s.mu.Lock()
	t, ok := s.timers[id]
	delete(s.timers, id)
	s.mu.Unlock()
	if !ok {
		return false
	}
	return t.Stop()
}

// renegotiate re-runs the procedure for a reserved session. The old choice
// timer is disarmed; a successful renegotiation arms a fresh one.
func (s *Server) renegotiate(ctx context.Context, req *RenegotiateRequest) Envelope {
	if req.Profile == nil {
		return errEnvelope("renegotiate needs a profile")
	}
	if err := req.Profile.Validate(); err != nil {
		return errEnvelope("%s", err)
	}
	s.disarmChoiceTimer(req.Session)
	res, err := s.man.RenegotiateContext(ctx, req.Session, *req.Profile)
	if err != nil {
		return errEnvelope("%s", err)
	}
	return Envelope{Type: MsgResult, Payload: s.resultPayload(res)}
}

func (s *Server) confirm(id core.SessionID) Envelope {
	s.disarmChoiceTimer(id)
	if err := s.man.Confirm(id); err != nil {
		return errEnvelope("%s", err)
	}
	s.mu.Lock()
	hook := s.confirmHook
	s.mu.Unlock()
	if hook != nil {
		hook(id)
	}
	return Envelope{Type: MsgOK, Payload: &OKPayload{Session: id}}
}

// setConfirmHook installs a callback fired after every successful Confirm;
// the playout driver uses it.
func (s *Server) setConfirmHook(hook func(core.SessionID)) {
	s.mu.Lock()
	s.confirmHook = hook
	s.mu.Unlock()
}

// registryDocument exposes the catalog to the playout driver.
func (s *Server) registryDocument(id media.DocumentID) (media.Document, error) {
	return s.reg.Document(id)
}

func (s *Server) reject(id core.SessionID) Envelope {
	s.disarmChoiceTimer(id)
	if err := s.man.Reject(id); err != nil {
		return errEnvelope("%s", err)
	}
	return Envelope{Type: MsgOK, Payload: &OKPayload{Session: id}}
}

func sessionInfoPayload(sess *core.Session) *SessionInfoPayload {
	return &SessionInfoPayload{
		Session:     sess.ID,
		State:       sess.State().String(),
		PositionMs:  sess.Position().Milliseconds(),
		Transitions: sess.Transitions(),
		Cost:        sess.Cost(),
	}
}

func (s *Server) session(id core.SessionID) Envelope {
	sess, err := s.man.Session(id)
	if err != nil {
		return errEnvelope("%s", err)
	}
	return Envelope{Type: MsgSessionInfo, Payload: sessionInfoPayload(sess)}
}

// watchLoop samples one session until it reaches a terminal state, the
// context is canceled, the server closes, or send fails. Updates are
// emitted on state or transition changes; the last one carries Final=true.
func (s *Server) watchLoop(ctx context.Context, req *WatchRequest, send func(Envelope) error) error {
	interval := time.Duration(req.IntervalMs) * time.Millisecond
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	sess, err := s.man.Session(req.Session)
	if err != nil {
		return send(errEnvelope("%s", err))
	}
	var lastState string
	var lastTransitions int
	for {
		state := sess.State()
		info := sessionInfoPayload(sess)
		terminal := state == core.Completed || state == core.Aborted
		changed := info.State != lastState || info.Transitions != lastTransitions
		if terminal {
			info.Final = true
		}
		if changed || terminal {
			if err := send(Envelope{Type: MsgSessionInfo, Payload: info}); err != nil {
				return err
			}
			lastState = info.State
			lastTransitions = info.Transitions
		}
		if terminal {
			return nil
		}
		if s.isClosed() {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(interval):
		}
	}
}

// watchJSON streams updates on the JSON codec; the connection is busy until
// the final update.
func (s *Server) watchJSON(conn net.Conn, req *WatchRequest) error {
	return s.watchLoop(s.baseCtx, req, func(e Envelope) error {
		return writeEnvelopeLine(conn, e)
	})
}

func (s *Server) listSessions() Envelope {
	p := &SessionsPayload{}
	for _, state := range []core.SessionState{core.Reserved, core.Playing, core.Completed, core.Aborted} {
		for _, sess := range s.man.Sessions(state) {
			p.Sessions = append(p.Sessions, SessionSummary{
				Session:     sess.ID,
				Document:    sess.Document,
				State:       state.String(),
				PositionMs:  sess.Position().Milliseconds(),
				Transitions: sess.Transitions(),
				Cost:        sess.Cost(),
			})
		}
	}
	sort.Slice(p.Sessions, func(i, j int) bool { return p.Sessions[i].Session < p.Sessions[j].Session })
	return Envelope{Type: MsgSessions, Payload: p}
}

func (s *Server) listDocuments(query string) Envelope {
	ids := s.reg.List()
	if query != "" {
		ids = s.reg.SearchTitle(query)
	}
	p := &DocumentsPayload{}
	for _, id := range ids {
		d, err := s.reg.Document(id)
		if err != nil {
			continue
		}
		p.Documents = append(p.Documents, DocumentSummary{
			ID: d.ID, Title: d.Title, Components: len(d.Monomedia),
		})
	}
	return Envelope{Type: MsgDocuments, Payload: p}
}

// serveBinary runs the multiplexed frame loop after a successful binary
// handshake. Each request frame starts a handler goroutine on its stream
// id; responses are written through a shared frame writer; a cancel frame
// aborts the stream's context. Framing violations (bad magic or version,
// oversized frames, reserved or duplicate stream ids) answer a typed
// MsgError on stream 0 and close the connection.
func (s *Server) serveBinary(conn net.Conn, r *bufio.Reader, maxStreams int) {
	fw := newFrameWriter(conn, func(error) { conn.Close() })
	var (
		smu                 sync.Mutex
		active              = make(map[uint32]context.CancelFunc)
		wg                  sync.WaitGroup
		sem                 = make(chan struct{}, maxStreams)
		connCtx, connCancel = context.WithCancel(s.baseCtx)
	)
	defer func() {
		connCancel()
		wg.Wait()
		fw.stop()
	}()
	sendEnv := func(stream uint32, flags byte, e Envelope) error {
		data, err := encodeEnvelope(e)
		if err != nil {
			return err
		}
		return fw.send(frame{Stream: stream, Flags: flags, Payload: data})
	}
	fatal := func(err error) {
		sendEnv(0, flagFIN, errEnvelope("%s", err))
		fw.stop() // flush the error before the deferred teardown closes conn
	}
	for {
		f, err := readFrame(r)
		if err != nil {
			if errors.Is(err, ErrBadFrameMagic) || errors.Is(err, ErrBadFrameVersion) || errors.Is(err, ErrFrameTooLarge) {
				fatal(err)
			}
			return
		}
		if f.Flags&flagCancel != 0 {
			smu.Lock()
			cancel := active[f.Stream]
			smu.Unlock()
			if cancel != nil {
				// Unknown ids are ignored: the stream may have finished
				// while the cancel was in flight.
				cancel()
			}
			continue
		}
		if f.Stream == 0 {
			fatal(fmt.Errorf("%w: 0 is reserved", ErrBadStreamID))
			return
		}
		smu.Lock()
		_, dup := active[f.Stream]
		smu.Unlock()
		if dup {
			fatal(fmt.Errorf("%w: %d is already open", ErrBadStreamID, f.Stream))
			return
		}
		// The semaphore bounds handler concurrency at the negotiated
		// stream cap. At the cap the stream is shed with a typed busy
		// reply — before the payload is even parsed — instead of the read
		// loop blocking, which would silently stall every other stream on
		// the connection (including cancels) until a handler finished.
		select {
		case sem <- struct{}{}:
		default:
			s.shedCtr.With(CodecBinary).Inc()
			sendEnv(f.Stream, flagFIN, busyEnvelope("stream limit reached", s.busyRetry()))
			continue
		}
		env, derr := decodeEnvelope(f.Payload)
		if derr != nil {
			sendEnv(f.Stream, flagFIN, errEnvelope("bad request: %v", derr))
			fw.stop()
			return
		}
		env.StreamID = f.Stream
		// Admission control: refuse new negotiation work with the
		// controller's load-derived hint before any reservation work runs.
		if s.adm != nil && negotiationType(env.Type) {
			if retry, saturated := s.adm.Saturated(); saturated {
				<-sem
				s.shedCtr.With(CodecBinary).Inc()
				sendEnv(f.Stream, flagFIN, busyEnvelope("admission control: manager overloaded", retry))
				continue
			}
		}
		streamCtx, cancel := context.WithCancel(connCtx)
		smu.Lock()
		active[f.Stream] = cancel
		smu.Unlock()
		wg.Add(1)
		s.streamGauge.Add(1)
		go func(env Envelope, ctx context.Context, cancel context.CancelFunc) {
			defer func() {
				smu.Lock()
				delete(active, env.StreamID)
				smu.Unlock()
				cancel()
				<-sem
				s.streamGauge.Add(-1)
				wg.Done()
			}()
			if env.Type == MsgWatch {
				req, _ := env.Payload.(*WatchRequest)
				s.watchBinary(ctx, env.StreamID, req, sendEnv)
				return
			}
			resp := s.serve(ctx, env)
			if ctx.Err() == nil {
				sendEnv(env.StreamID, flagFIN, resp)
			}
		}(env, streamCtx, cancel)
	}
}

// watchBinary pushes a watch stream's updates as frames on its stream id;
// the final update carries the FIN flag.
func (s *Server) watchBinary(ctx context.Context, stream uint32, req *WatchRequest, sendEnv func(uint32, byte, Envelope) error) {
	s.watchLoop(ctx, req, func(e Envelope) error {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		flags := byte(0)
		if p, ok := e.Payload.(*SessionInfoPayload); (ok && p.Final) || e.Type == MsgError {
			flags = flagFIN
		}
		return sendEnv(stream, flags, e)
	})
}
