package protocol

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// TestEnvelopeByteCompatibility pins the JSON wire shape of the typed
// envelope to the exact bytes the pre-envelope protocol put on a line, so
// legacy peers keep interoperating. Field order inside each payload matters:
// it mirrors the declaration order of the old Request/Response structs.
func TestEnvelopeByteCompatibility(t *testing.T) {
	cases := []struct {
		name string
		env  Envelope
		want string
	}{
		{"confirm", Envelope{Type: MsgConfirm, Payload: &SessionRequest{Session: 42}},
			`{"type":"confirm","session":42}`},
		{"reject", Envelope{Type: MsgReject, Payload: &SessionRequest{Session: 7}},
			`{"type":"reject","session":7}`},
		{"stats", Envelope{Type: MsgStats},
			`{"type":"stats"}`},
		{"list-documents", Envelope{Type: MsgListDocuments, Payload: &ListDocumentsRequest{Query: "hockey"}},
			`{"type":"list-documents","query":"hockey"}`},
		{"list-documents-empty", Envelope{Type: MsgListDocuments, Payload: &ListDocumentsRequest{}},
			`{"type":"list-documents"}`},
		{"watch", Envelope{Type: MsgWatch, Payload: &WatchRequest{Session: 5, IntervalMs: 100}},
			`{"type":"watch","session":5,"intervalMs":100}`},
		{"ok", Envelope{Type: MsgOK, Payload: &OKPayload{Session: 42}},
			`{"type":"ok","session":42}`},
		{"error", Envelope{Type: MsgError, Payload: &ErrorPayload{Error: "boom"}},
			`{"type":"error","error":"boom"}`},
		{"session-info", Envelope{Type: MsgSessionInfo, Payload: &SessionInfoPayload{
			Session: 3, Cost: 1234, State: "playing", PositionMs: 500, Transitions: 2}},
			`{"type":"session-info","session":3,"cost":1234,"state":"playing","positionMs":500,"transitions":2}`},
		{"session-info-final", Envelope{Type: MsgSessionInfo, Payload: &SessionInfoPayload{
			Session: 3, Cost: 1, State: "completed", Final: true}},
			`{"type":"session-info","session":3,"cost":1,"state":"completed","final":true}`},
		{"result", Envelope{Type: MsgResult, Payload: &ResultPayload{
			Status: "SUCCEEDED", Session: 1, Cost: 250, ChoicePeriodMs: 60000}},
			`{"type":"result","status":"SUCCEEDED","session":1,"cost":250,"choicePeriodMs":60000}`},
		{"result-trylater", Envelope{Type: MsgResult, Payload: &ResultPayload{
			Status: "FAILEDTRYLATER", Reason: "full", RetryAfterMs: 1500}},
			`{"type":"result","status":"FAILEDTRYLATER","reason":"full","retryAfterMs":1500}`},
	}
	for _, tc := range cases {
		got, err := encodeEnvelope(tc.env)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if string(got) != tc.want {
			t.Errorf("%s:\n got %s\nwant %s", tc.name, got, tc.want)
		}
		// And the decode path round-trips to the same bytes.
		dec, err := decodeEnvelope(got)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		re, err := encodeEnvelope(dec)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", tc.name, err)
		}
		if !bytes.Equal(re, got) {
			t.Errorf("%s: round trip drifted:\n got %s\nwant %s", tc.name, re, got)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte(`{"type":"stats"}`)
	wire := appendFrame(nil, frame{Stream: 9, Flags: flagFIN, Payload: payload})
	if len(wire) != frameHeaderSize+len(payload) {
		t.Fatalf("frame length = %d", len(wire))
	}
	f, err := readFrame(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if f.Stream != 9 || f.Flags != flagFIN || !bytes.Equal(f.Payload, payload) {
		t.Errorf("frame = %+v", f)
	}
}

func TestFrameTypedErrors(t *testing.T) {
	valid := appendFrame(nil, frame{Stream: 1, Payload: []byte("{}")})

	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 'X'
	if _, err := readFrame(bytes.NewReader(badMagic)); !errors.Is(err, ErrBadFrameMagic) {
		t.Errorf("bad magic: %v", err)
	}

	badVersion := append([]byte(nil), valid...)
	badVersion[2] = 99
	if _, err := readFrame(bytes.NewReader(badVersion)); !errors.Is(err, ErrBadFrameVersion) {
		t.Errorf("bad version: %v", err)
	}

	// An attacker-sized length prefix must fail the typed check before any
	// allocation is attempted.
	oversized := append([]byte(nil), valid[:frameHeaderSize]...)
	binary.BigEndian.PutUint32(oversized[8:12], MaxFramePayload+1)
	if _, err := readFrame(bytes.NewReader(oversized)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized: %v", err)
	}

	// Truncations surface as transport errors, never hangs or panics.
	for cut := 0; cut < len(valid); cut++ {
		_, err := readFrame(bytes.NewReader(valid[:cut]))
		if err == nil {
			t.Fatalf("truncated frame at %d bytes accepted", cut)
		}
	}
}

// FuzzFrameDecode throws arbitrary bytes at the binary framer: every input
// must produce frames or a typed/transport error in bounded time — never a
// panic, a hang, or an oversized allocation.
func FuzzFrameDecode(f *testing.F) {
	f.Add(appendFrame(nil, frame{Stream: 1, Payload: []byte(`{"type":"stats"}`)}))
	// The PR 4 crasher analogue: a frame whose payload is a lone "{" — a
	// truncated JSON value that must not wedge the decoder.
	f.Add(appendFrame(nil, frame{Stream: 1, Payload: []byte(`{`)}))
	f.Add(appendFrame(nil, frame{Stream: 0, Flags: flagCancel}))
	f.Add([]byte{'Q', 'N', WireVersion})                            // truncated header
	f.Add([]byte{'X', 'X', WireVersion, 0, 0, 0, 0, 1, 0, 0, 0, 0}) // bad magic
	f.Add([]byte{'Q', 'N', 42, 0, 0, 0, 0, 1, 0, 0, 0, 0})          // bad version
	oversized := appendFrame(nil, frame{Stream: 1})
	binary.BigEndian.PutUint32(oversized[8:12], 0xFFFFFFFF)
	f.Add(oversized[:frameHeaderSize])
	two := appendFrame(nil, frame{Stream: 1, Payload: []byte(`{"type":"stats"}`)})
	f.Add(appendFrame(two, frame{Stream: 2, Flags: flagFIN, Payload: []byte(`{"type":"stats-info"}`)}))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; ; i++ {
			fr, err := readFrame(r)
			if err != nil {
				if !errors.Is(err, ErrBadFrameMagic) && !errors.Is(err, ErrBadFrameVersion) &&
					!errors.Is(err, ErrFrameTooLarge) && !errors.Is(err, io.EOF) &&
					!errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("untyped framing error: %v", err)
				}
				return
			}
			if len(fr.Payload) > MaxFramePayload {
				t.Fatalf("frame %d exceeds the payload bound: %d", i, len(fr.Payload))
			}
			// Whatever decodes must re-encode without panicking.
			if env, derr := decodeEnvelope(fr.Payload); derr == nil {
				encodeEnvelope(env)
			}
		}
	})
}
