package protocol

import (
	"strings"
	"testing"
	"time"

	"qosneg/internal/core"
	"qosneg/internal/testbed"
)

func TestWatchStreamsToCompletion(t *testing.T) {
	bed := testbed.MustNew(testbed.Spec{})
	if _, err := bed.AddNewsArticle("news-1", "Clip", 300*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	h := serveHarness(t, bed)
	p := AttachPlayout(h.server, bed.Manager, 20*time.Millisecond)
	t.Cleanup(p.Stop)

	ctl := h.dial(t)
	res, err := ctl.Negotiate(bg, bed.Client(1), "news-1", tvProfile(time.Minute))
	if err != nil || !res.Status.Reserved() {
		t.Fatalf("negotiate: %v %v", res.Status, err)
	}

	// Watch on a dedicated connection, then confirm from the control one.
	watcher := h.dial(t)
	done := make(chan []SessionInfo, 1)
	go func() {
		var updates []SessionInfo
		err := watcher.Watch(bg, res.Session, 20*time.Millisecond, func(i SessionInfo) {
			updates = append(updates, i)
		})
		if err != nil {
			t.Error(err)
		}
		done <- updates
	}()
	time.Sleep(50 * time.Millisecond)
	if err := ctl.Confirm(bg, res.Session); err != nil {
		t.Fatal(err)
	}

	select {
	case updates := <-done:
		if len(updates) < 2 {
			t.Fatalf("updates = %+v", updates)
		}
		first, last := updates[0], updates[len(updates)-1]
		if first.State != "reserved" && first.State != "playing" {
			t.Errorf("first update state = %s", first.State)
		}
		if last.State != core.Completed.String() {
			t.Errorf("final state = %s", last.State)
		}
		// State changes arrived in order.
		sawPlaying := false
		for _, u := range updates {
			if u.State == "playing" {
				sawPlaying = true
			}
		}
		if !sawPlaying {
			t.Errorf("playing never observed: %+v", updates)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch never finished")
	}
}

func TestWatchUnknownSession(t *testing.T) {
	h := newHarness(t)
	c := h.dial(t)
	err := c.Watch(bg, 999, 10*time.Millisecond, func(SessionInfo) {})
	if err == nil || !strings.Contains(err.Error(), "unknown session") {
		t.Errorf("watch unknown: %v", err)
	}
	// The connection survives for further requests.
	if _, err := c.ListDocuments(bg, ""); err != nil {
		t.Errorf("connection broken: %v", err)
	}
}

func TestWatchReportsAbort(t *testing.T) {
	h := newHarness(t)
	ctl := h.dial(t)
	res, err := ctl.Negotiate(bg, h.bed.Client(1), "news-1", tvProfile(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	watcher := h.dial(t)
	done := make(chan string, 1)
	go func() {
		last := ""
		watcher.Watch(bg, res.Session, 10*time.Millisecond, func(i SessionInfo) { last = i.State })
		done <- last
	}()
	time.Sleep(30 * time.Millisecond)
	if err := ctl.Reject(bg, res.Session); err != nil {
		t.Fatal(err)
	}
	select {
	case last := <-done:
		if last != "aborted" {
			t.Errorf("final state = %s", last)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch never finished")
	}
}
