package protocol

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"qosneg/internal/client"
	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/profile"
	"qosneg/internal/shard"
	"qosneg/internal/telemetry"
)

// Envelope is the unified wire message: a stream id (carried in the frame
// header on the binary codec, absent on the JSON fallback), a message type,
// and one typed payload per message type. Adding an RPC means adding a
// payload struct and a payloadFor entry — not widening a shared field bag.
//
// On the wire an envelope is always one flat JSON object, {"type":...}
// merged with the payload's fields, so the JSON fallback is byte-compatible
// with the pre-envelope protocol, and a binary frame's payload is exactly
// the bytes the JSON codec would put on a line.
type Envelope struct {
	StreamID uint32
	Type     MessageType
	Payload  any
}

// Request payloads (client → server). Field order mirrors the legacy
// Request struct so the marshaled JSON is byte-identical to the old
// protocol.

// HelloRequest opens codec negotiation: the client's codec preference list
// and its desired concurrent-stream cap. It must be the first message on a
// connection; servers that predate it answer MsgError, which clients treat
// as "JSON only".
type HelloRequest struct {
	Codecs     []string `json:"codecs"`
	MaxStreams int      `json:"maxStreams,omitempty"`
}

// NegotiateRequest carries MsgNegotiate.
type NegotiateRequest struct {
	Machine  *client.Machine      `json:"machine,omitempty"`
	Document media.DocumentID     `json:"document,omitempty"`
	Profile  *profile.UserProfile `json:"profile,omitempty"`
}

// RenegotiateRequest carries MsgRenegotiate.
type RenegotiateRequest struct {
	Profile *profile.UserProfile `json:"profile,omitempty"`
	Session core.SessionID       `json:"session,omitempty"`
}

// SessionRequest carries the session-targeted RPCs: MsgConfirm, MsgReject,
// MsgSession and MsgInvoice.
type SessionRequest struct {
	Session core.SessionID `json:"session,omitempty"`
}

// ListDocumentsRequest carries MsgListDocuments.
type ListDocumentsRequest struct {
	Query string `json:"query,omitempty"`
}

// WatchRequest carries MsgWatch.
type WatchRequest struct {
	Session    core.SessionID `json:"session,omitempty"`
	IntervalMs int64          `json:"intervalMs,omitempty"`
}

// BatchItem is one (machine, document, profile) triple of a
// MsgBatchNegotiate request — one monomedia negotiation of a playlist or
// composite document.
type BatchItem struct {
	Machine  *client.Machine      `json:"machine,omitempty"`
	Document media.DocumentID     `json:"document"`
	Profile  *profile.UserProfile `json:"profile,omitempty"`
}

// BatchNegotiateRequest carries MsgBatchNegotiate: every item is negotiated
// concurrently on the manager side and answered in one round trip.
type BatchNegotiateRequest struct {
	Items []BatchItem `json:"items"`
	// TimeoutMs, when positive, bounds each item's negotiation
	// independently on the server. The client fills it from its context
	// deadline, so one slow item is canceled at the deadline (answering
	// an item-level error) instead of pinning the whole batch past it.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
}

// Response payloads (server → client). Field order mirrors the legacy
// Response struct for byte compatibility on the JSON codec.

// HelloAck answers MsgHello with the codec the server chose and its
// per-connection stream cap.
type HelloAck struct {
	Codec      string `json:"codec"`
	MaxStreams int    `json:"maxStreams,omitempty"`
}

// ErrorPayload carries MsgError.
type ErrorPayload struct {
	Error string `json:"error,omitempty"`
}

// BusyPayload carries MsgBusy: the server's typed refusal of a request it
// shed at admission, with the retry hint the refusal derives from current
// load.
type BusyPayload struct {
	Error        string `json:"error,omitempty"`
	RetryAfterMs int64  `json:"retryAfterMs,omitempty"`
}

// ResultPayload answers MsgNegotiate and MsgRenegotiate, and is embedded in
// every batch item result.
type ResultPayload struct {
	Status         string             `json:"status,omitempty"`
	Offer          *profile.MMProfile `json:"offer,omitempty"`
	Session        core.SessionID     `json:"session,omitempty"`
	Cost           cost.Money         `json:"cost,omitempty"`
	Reason         string             `json:"reason,omitempty"`
	ChoicePeriodMs int64              `json:"choicePeriodMs,omitempty"`
	Violations     []string           `json:"violations,omitempty"`
	RetryAfterMs   int64              `json:"retryAfterMs,omitempty"`
	// Shed marks a FAILEDTRYLATER produced by admission control rather
	// than genuine resource shortage; omitted (and absent on the wire)
	// otherwise, preserving the legacy byte layout.
	Shed bool `json:"shed,omitempty"`
}

// OKPayload answers MsgConfirm and MsgReject.
type OKPayload struct {
	Session core.SessionID `json:"session,omitempty"`
}

// SessionInfoPayload answers MsgSession and streams on MsgWatch. The
// declaration order (session and cost before state) preserves the legacy
// byte layout.
type SessionInfoPayload struct {
	Session     core.SessionID `json:"session,omitempty"`
	Cost        cost.Money     `json:"cost,omitempty"`
	State       string         `json:"state,omitempty"`
	PositionMs  int64          `json:"positionMs,omitempty"`
	Transitions int            `json:"transitions,omitempty"`
	// Final marks the last update of a MsgWatch stream.
	Final bool `json:"final,omitempty"`
}

// DocumentsPayload answers MsgListDocuments.
type DocumentsPayload struct {
	Documents []DocumentSummary `json:"documents,omitempty"`
}

// StatsInfoPayload answers MsgStats. Shards carries the per-shard breakdown
// when the daemon fronts a sharded manager fleet (qosnegd -shards); it is
// absent from single-manager daemons, which older clients parse unchanged.
type StatsInfoPayload struct {
	Stats  *core.Stats  `json:"stats,omitempty"`
	Shards []shard.Stat `json:"shards,omitempty"`
}

// SessionsPayload answers MsgListSessions.
type SessionsPayload struct {
	Sessions []SessionSummary `json:"sessions,omitempty"`
}

// InvoicePayload answers MsgInvoice.
type InvoicePayload struct {
	Session core.SessionID `json:"session,omitempty"`
	Invoice *cost.Invoice  `json:"invoice,omitempty"`
}

// ServerLoadsPayload answers MsgServerLoads.
type ServerLoadsPayload struct {
	ServerLoads []core.ServerLoad `json:"serverLoads,omitempty"`
}

// MetricsPayload answers MsgMetrics.
type MetricsPayload struct {
	Metrics *telemetry.Snapshot `json:"metrics,omitempty"`
}

// BatchItemResult is one item's outcome in a MsgBatchResult: either an
// item-level error or an embedded negotiation result. One failed item does
// not fail its siblings.
type BatchItemResult struct {
	Error string `json:"error,omitempty"`
	ResultPayload
}

// BatchResultPayload answers MsgBatchNegotiate, item i answering request
// item i.
type BatchResultPayload struct {
	Items []BatchItemResult `json:"items"`
}

// payloadFor returns a fresh payload pointer for a message type, or nil for
// types that carry no payload (and for unknown types, which the dispatcher
// rejects).
func payloadFor(t MessageType) any {
	switch t {
	case MsgHello:
		return new(HelloRequest)
	case MsgNegotiate:
		return new(NegotiateRequest)
	case MsgRenegotiate:
		return new(RenegotiateRequest)
	case MsgConfirm, MsgReject, MsgSession, MsgInvoice:
		return new(SessionRequest)
	case MsgListDocuments:
		return new(ListDocumentsRequest)
	case MsgWatch:
		return new(WatchRequest)
	case MsgBatchNegotiate:
		return new(BatchNegotiateRequest)
	case MsgBatchResult:
		return new(BatchResultPayload)
	case MsgHelloAck:
		return new(HelloAck)
	case MsgError:
		return new(ErrorPayload)
	case MsgBusy:
		return new(BusyPayload)
	case MsgResult:
		return new(ResultPayload)
	case MsgOK:
		return new(OKPayload)
	case MsgSessionInfo:
		return new(SessionInfoPayload)
	case MsgDocuments:
		return new(DocumentsPayload)
	case MsgStatsInfo:
		return new(StatsInfoPayload)
	case MsgSessions:
		return new(SessionsPayload)
	case MsgInvoiceInfo:
		return new(InvoicePayload)
	case MsgServerLoadsInfo:
		return new(ServerLoadsPayload)
	case MsgMetricsInfo:
		return new(MetricsPayload)
	default:
		return nil
	}
}

// encodeEnvelope renders the flat JSON object both codecs carry: the JSON
// codec appends a newline, the binary codec wraps it in a frame.
func encodeEnvelope(e Envelope) ([]byte, error) {
	head := make([]byte, 0, 256)
	head = append(head, `{"type":`...)
	tb, err := json.Marshal(e.Type)
	if err != nil {
		return nil, err
	}
	head = append(head, tb...)
	if e.Payload == nil {
		return append(head, '}'), nil
	}
	body, err := json.Marshal(e.Payload)
	if err != nil {
		return nil, err
	}
	if len(body) < 2 || body[0] != '{' || body[len(body)-1] != '}' {
		return nil, fmt.Errorf("protocol: payload for %q is not a JSON object", e.Type)
	}
	if len(body) == 2 { // "{}"
		return append(head, '}'), nil
	}
	head = append(head, ',')
	return append(head, body[1:]...), nil
}

// probeType extracts the message type without a full JSON parse when the
// input starts with `{"type":"..."` — which everything our own encoder
// produces does, since encodeEnvelope always splices the type field first.
// Inputs with a leading BOM, whitespace, reordered fields or an escaped
// type string report !ok and take the full-parse path instead.
func probeType(data []byte) (MessageType, bool) {
	const prefix = `{"type":"`
	if len(data) < len(prefix) || string(data[:len(prefix)]) != prefix {
		return "", false
	}
	rest := data[len(prefix):]
	i := bytes.IndexByte(rest, '"')
	if i < 0 {
		return "", false
	}
	// Message types never contain escapes; a backslash means this string is
	// not one of ours.
	if bytes.IndexByte(rest[:i], '\\') >= 0 {
		return "", false
	}
	return MessageType(rest[:i]), true
}

// decodeEnvelope parses a flat JSON object into a typed envelope. Unknown
// message types decode with a nil payload so the dispatcher can answer a
// protocol-level error instead of dropping the connection.
//
// The hot path (a known type in leading position, as both codecs emit) is a
// single typed json.Unmarshal, which also validates the whole document.
// Everything else — unknown types, payload-less messages, foreign field
// orders — falls back to a probe parse first, so malformed JSON is still
// rejected even when there is no payload struct to validate against.
func decodeEnvelope(data []byte) (Envelope, error) {
	if t, ok := probeType(data); ok {
		if p := payloadFor(t); p != nil {
			if err := json.Unmarshal(data, p); err != nil {
				return Envelope{}, err
			}
			return Envelope{Type: t, Payload: p}, nil
		}
	}
	var probe struct {
		Type MessageType `json:"type"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return Envelope{}, err
	}
	e := Envelope{Type: probe.Type}
	if p := payloadFor(probe.Type); p != nil {
		if err := json.Unmarshal(data, p); err != nil {
			return Envelope{}, err
		}
		e.Payload = p
	}
	return e, nil
}

// ErrBusy is the client-side view of a MsgBusy reply: the server shed the
// request at admission instead of queueing it. RetryAfter is the server's
// load-derived hint; callers branch with errors.As.
type ErrBusy struct {
	RetryAfter time.Duration
	Message    string
}

func (e *ErrBusy) Error() string {
	return fmt.Sprintf("protocol: server busy: %s (retry after %s)", e.Message, e.RetryAfter)
}

// envelopeError maps a MsgError or MsgBusy envelope to a Go error; nil
// otherwise.
func envelopeError(e Envelope) error {
	switch e.Type {
	case MsgBusy:
		busy := &ErrBusy{Message: "overloaded"}
		if p, ok := e.Payload.(*BusyPayload); ok {
			if p.Error != "" {
				busy.Message = p.Error
			}
			busy.RetryAfter = time.Duration(p.RetryAfterMs) * time.Millisecond
		}
		return busy
	case MsgError:
		msg := "unknown error"
		if p, ok := e.Payload.(*ErrorPayload); ok && p.Error != "" {
			msg = p.Error
		}
		return fmt.Errorf("protocol: server error: %s", msg)
	}
	return nil
}

// writeEnvelopeLine writes an envelope in the JSON codec's line framing.
func writeEnvelopeLine(w interface{ Write([]byte) (int, error) }, e Envelope) error {
	data, err := encodeEnvelope(e)
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// readEnvelopeLine reads one line and decodes it; empty lines are skipped
// by the caller. It exists so client and server share exactly one JSON
// parse path.
func readEnvelopeLine(line []byte) (Envelope, error) {
	return decodeEnvelope(bytes.TrimSpace(line))
}
