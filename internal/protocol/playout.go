package protocol

import (
	"sync"
	"time"

	"qosneg/internal/core"
	"qosneg/internal/session"
)

// Playout drives confirmed sessions in real (wall-clock) time on the daemon
// side: the role the media players fill in the prototype. Once attached to
// a server, every session confirmed over the wire advances until its
// document's schedule ends, then completes; querying the session over the
// protocol shows the live position.
type Playout struct {
	man  core.SessionManager
	srv  *Server
	tick time.Duration

	mu      sync.Mutex
	driving map[core.SessionID]bool
	stopped bool
	wg      sync.WaitGroup
}

// AttachPlayout wires a real-time playout driver into the server: sessions
// confirmed through srv start playing immediately. tick is the bookkeeping
// granularity (default 100 ms).
func AttachPlayout(srv *Server, man core.SessionManager, tick time.Duration) *Playout {
	if tick <= 0 {
		tick = 100 * time.Millisecond
	}
	p := &Playout{man: man, srv: srv, tick: tick, driving: make(map[core.SessionID]bool)}
	srv.setConfirmHook(p.start)
	return p
}

// start begins driving a confirmed session; idempotent per session.
func (p *Playout) start(id core.SessionID) {
	p.mu.Lock()
	if p.stopped || p.driving[id] {
		p.mu.Unlock()
		return
	}
	p.driving[id] = true
	p.wg.Add(1)
	p.mu.Unlock()

	go func() {
		defer p.wg.Done()
		defer func() {
			p.mu.Lock()
			delete(p.driving, id)
			p.mu.Unlock()
		}()
		sess, err := p.man.Session(id)
		if err != nil {
			return
		}
		doc, err := p.srv.registryDocument(sess.Document)
		if err != nil {
			return
		}
		duration := session.BuildSchedule(doc).Duration()
		ticker := time.NewTicker(p.tick)
		defer ticker.Stop()
		for range ticker.C {
			p.mu.Lock()
			stopped := p.stopped
			p.mu.Unlock()
			if stopped {
				return
			}
			if sess.State() != core.Playing {
				return
			}
			remaining := duration - sess.Position()
			step := p.tick
			if step > remaining {
				step = remaining
			}
			if step > 0 {
				if err := p.man.Advance(id, step); err != nil {
					return
				}
			}
			if sess.Position() >= duration {
				p.man.Complete(id)
				return
			}
		}
	}()
}

// Stop halts every playout goroutine and waits for them to exit. Sessions
// keep their current state (the daemon is shutting down, not the users).
func (p *Playout) Stop() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
	p.wg.Wait()
}

// Active returns the number of sessions currently being driven.
func (p *Playout) Active() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.driving)
}
