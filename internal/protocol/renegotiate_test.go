package protocol

import (
	"testing"
	"time"

	"qosneg/internal/core"
	"qosneg/internal/qos"
)

func TestRenegotiateOverWire(t *testing.T) {
	h := newHarness(t)
	c := h.dial(t)

	// First negotiation with a modest profile.
	u := tvProfile(time.Minute)
	u.Desired.Video.Color = qos.Grey
	u.Worst.Video.Color = qos.BlackWhite
	res, err := c.Negotiate(bg, h.bed.Client(1), "news-1", u)
	if err != nil || !res.Status.Reserved() {
		t.Fatalf("negotiate: %v %v", res.Status, err)
	}

	// The user edits the profile upward and renegotiates.
	res2, err := c.Renegotiate(bg, res.Session, tvProfile(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != core.Succeeded {
		t.Fatalf("renegotiate status = %v (%s)", res2.Status, res2.Reason)
	}
	if res2.Session != res.Session {
		t.Errorf("session changed: %d → %d", res.Session, res2.Session)
	}
	if res2.Offer.Video.Color != qos.Color {
		t.Errorf("renegotiated offer = %+v", res2.Offer.Video)
	}
	// Confirm the renegotiated offer.
	if err := c.Confirm(bg, res2.Session); err != nil {
		t.Fatal(err)
	}
	info, _ := c.Session(bg, res2.Session)
	if info.State != "playing" {
		t.Errorf("state = %s", info.State)
	}
	if h.bed.Network.ActiveReservations() != 2 {
		t.Errorf("reservations = %d", h.bed.Network.ActiveReservations())
	}
}

func TestRenegotiateRearmsChoiceTimer(t *testing.T) {
	h := newHarness(t)
	c := h.dial(t)
	res, err := c.Negotiate(bg, h.bed.Client(1), "news-1", tvProfile(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	// Renegotiate onto a very short choice period and let it lapse.
	res2, err := c.Renegotiate(bg, res.Session, tvProfile(60*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if res2.ChoicePeriod != 60*time.Millisecond {
		t.Errorf("choice period = %v", res2.ChoicePeriod)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && h.server.Expired() == 0 {
		time.Sleep(10 * time.Millisecond)
	}
	if h.server.Expired() != 1 {
		t.Fatal("renegotiated choice period never expired")
	}
	if h.bed.Network.ActiveReservations() != 0 {
		t.Error("expired renegotiated session leaked reservations")
	}
}

func TestRenegotiateErrors(t *testing.T) {
	h := newHarness(t)
	c := h.dial(t)
	if _, err := c.Renegotiate(bg, 999, tvProfile(time.Minute)); err == nil {
		t.Error("unknown session accepted")
	}
	// Missing/invalid profile.
	bad := tvProfile(time.Minute)
	bad.Name = ""
	res, _ := c.Negotiate(bg, h.bed.Client(1), "news-1", tvProfile(time.Minute))
	if _, err := c.Renegotiate(bg, res.Session, bad); err == nil {
		t.Error("invalid profile accepted")
	}
	// The session is still reserved and usable after the rejected request.
	if err := c.Confirm(bg, res.Session); err != nil {
		t.Errorf("session unusable after bad renegotiate: %v", err)
	}
}
