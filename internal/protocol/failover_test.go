package protocol

import (
	"testing"
	"time"

	"qosneg/internal/cmfs"
	"qosneg/internal/core"
	"qosneg/internal/faults"
	"qosneg/internal/qos"
	"qosneg/internal/testbed"
)

// TestWireFailoverWithCrashedReplica is the acceptance scenario end to end
// over the wire: one of two replica servers is crashed, yet negotiation
// still reserves through the survivor, and ServerLoads reports the dead
// server's quarantine to the operator.
func TestWireFailoverWithCrashedReplica(t *testing.T) {
	inj := faults.New(3)
	bed := testbed.MustNew(testbed.Spec{Faults: inj})
	if _, err := bed.AddNewsArticle("news-1", "Election night", 90*time.Second); err != nil {
		t.Fatal(err)
	}
	h := serveHarness(t, bed)
	c := h.dial(t)

	if !inj.Crash("server-1") {
		t.Fatal("server-1 not wrapped")
	}
	res, err := c.Negotiate(bg, bed.Client(1), "news-1", tvProfile(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Status.Reserved() {
		t.Fatalf("status = %v (%s); want failover onto server-2", res.Status, res.Reason)
	}
	if res.RetryAfter != 0 {
		t.Errorf("reserved result carries RetryAfter %v", res.RetryAfter)
	}
	if err := c.Confirm(bg, res.Session); err != nil {
		t.Fatal(err)
	}

	loads, err := c.ServerLoads(bg)
	if err != nil {
		t.Fatal(err)
	}
	var sawQuarantine bool
	for _, l := range loads {
		if l.ID == "server-1" {
			sawQuarantine = l.Quarantined && l.QuarantineMs > 0 && l.DownFailures > 0
			if l.ActiveStreams != 0 {
				t.Errorf("crashed server reports %d streams", l.ActiveStreams)
			}
		}
	}
	if !sawQuarantine {
		t.Errorf("server-1 quarantine not visible over the wire: %+v", loads)
	}

	st, err := c.Stats(bg)
	if err != nil {
		t.Fatal(err)
	}
	if st.CommitServerDown == 0 || st.Quarantines == 0 {
		t.Errorf("stats over the wire = %+v; want server-down and quarantine counters", st)
	}
}

// TestWireShortageRetryAfter: a genuine full shortage comes back as
// FAILEDTRYLATER with a non-zero RetryAfter hint carried through the wire
// protocol.
func TestWireShortageRetryAfter(t *testing.T) {
	cfg := cmfs.Config{
		DiskRate:    64 * qos.KBitPerSecond,
		SeekTime:    time.Millisecond,
		RoundLength: time.Second,
		MaxStreams:  1,
	}
	bed := testbed.MustNew(testbed.Spec{ServerConfig: &cfg})
	if _, err := bed.AddNewsArticle("news-1", "Election night", 90*time.Second); err != nil {
		t.Fatal(err)
	}
	h := serveHarness(t, bed)
	c := h.dial(t)

	res, err := c.Negotiate(bg, bed.Client(1), "news-1", tvProfile(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.FailedTryLater {
		t.Fatalf("status = %v (%s)", res.Status, res.Reason)
	}
	if res.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v; the hint was lost on the wire", res.RetryAfter)
	}
	if res.Session != 0 {
		t.Errorf("FAILEDTRYLATER carried session %d", res.Session)
	}
}
