package protocol

import (
	"context"
	"net"
	"testing"
	"time"

	"qosneg/internal/testbed"
)

func fastRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 5, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Jitter: 0.2}
}

// TestClientRedialsAfterServerRestart: a daemon restart breaks the client's
// connection; the next idempotent RPC redials transparently once the daemon
// is back, while RPCs issued during the outage fail after the retry budget.
func TestClientRedialsAfterServerRestart(t *testing.T) {
	bed := testbed.MustNew(testbed.Spec{})
	if _, err := bed.AddNewsArticle("news-1", "Election night", 90*time.Second); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(bed.Manager, bed.Registry)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(l) }()

	c, err := DialRetry(context.Background(), addr, fastRetry())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Stats(bg); err != nil {
		t.Fatal(err)
	}

	// Kill the daemon. Idempotent RPCs retry but find nobody listening.
	l.Close()
	srv.Close()
	<-done
	if _, err := c.Stats(bg); err == nil {
		t.Fatal("Stats succeeded with the daemon down")
	}

	// Restart on the same address: the client self-heals on the next RPC.
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	srv2 := NewServer(bed.Manager, bed.Registry)
	done2 := make(chan struct{})
	go func() { defer close(done2); srv2.Serve(l2) }()
	defer func() {
		l2.Close()
		srv2.Close()
		<-done2
	}()

	st, err := c.Stats(bg)
	if err != nil {
		t.Fatalf("Stats after daemon restart: %v", err)
	}
	if st.Requests != 0 {
		t.Errorf("unexpected stats after restart: %+v", st)
	}
	if c.Redials() < 1 {
		t.Errorf("Redials() = %d; want at least one reconnect", c.Redials())
	}

	// Documents survive too — the redialed connection is fully usable.
	docs, err := c.ListDocuments(bg, "")
	if err != nil || len(docs) != 1 {
		t.Errorf("ListDocuments after restart: %d docs, %v", len(docs), err)
	}
}

// TestNonIdempotentNotRetried: a state-changing RPC must not be blindly
// retried across a broken connection (the daemon may have committed), but a
// connection already known broken earns one fresh dial.
func TestNonIdempotentNotRetried(t *testing.T) {
	bed := testbed.MustNew(testbed.Spec{})
	if _, err := bed.AddNewsArticle("news-1", "Election night", 90*time.Second); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(bed.Manager, bed.Registry)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(l) }()

	// Pin the JSON codec: its breakage is only discovered lazily,
	// mid-exchange, which is the scenario under test. (The binary codec's
	// background read loop notices a dead connection eagerly, so the first
	// post-restart Negotiate would legally get a fresh dial.)
	c, err := DialRetry(context.Background(), addr, fastRetry(), WithWire(WireOptions{Codecs: []string{CodecJSON}}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Stats(bg); err != nil {
		t.Fatal(err)
	}

	// Bounce the daemon so the client's connection is dead but the address
	// is immediately served again.
	l.Close()
	srv.Close()
	<-done
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	srv2 := NewServer(bed.Manager, bed.Registry)
	done2 := make(chan struct{})
	go func() { defer close(done2); srv2.Serve(l2) }()
	defer func() {
		l2.Close()
		srv2.Close()
		<-done2
	}()

	// The first Negotiate rides the dead connection, discovers the break
	// mid-exchange, and must NOT retry: the outcome is unknown.
	if _, err := c.Negotiate(bg, bed.Client(1), "news-1", tvProfile(time.Minute)); err == nil {
		t.Fatal("Negotiate silently retried across a broken connection")
	}
	if st := bed.Manager.Stats(); st.Requests != 0 {
		t.Fatalf("broken-connection Negotiate reached the daemon %d times", st.Requests)
	}

	// Now the connection is known broken: the next Negotiate gets a fresh
	// dial up front and succeeds exactly once.
	res, err := c.Negotiate(bg, bed.Client(1), "news-1", tvProfile(time.Minute))
	if err != nil {
		t.Fatalf("Negotiate after known break: %v", err)
	}
	if !res.Status.Reserved() {
		t.Fatalf("status = %v (%s)", res.Status, res.Reason)
	}
	if st := bed.Manager.Stats(); st.Requests != 1 {
		t.Errorf("daemon saw %d negotiation requests; want exactly 1", st.Requests)
	}
	if err := c.Reject(bg, res.Session); err != nil {
		t.Fatal(err)
	}
}

// TestCompletedCallUnderCancelDoesNotPoisonDeadline races tight context
// timeouts against RPCs on a non-redialable client. When an RPC completes
// even though its context fired, the poisoned connection deadline must be
// cleared — otherwise every later call on the connection times out
// immediately (the bug this regression-tests).
func TestCompletedCallUnderCancelDoesNotPoisonDeadline(t *testing.T) {
	h := newHarness(t)
	dial := func() *Client {
		conn, err := net.Dial("tcp", h.addr)
		if err != nil {
			t.Fatal(err)
		}
		// The deadline-poisoning cancellation path under test is specific
		// to the JSON codec.
		return NewClient(conn, WithWire(WireOptions{Codecs: []string{CodecJSON}}))
	}
	c := dial()
	defer func() { c.Close() }()

	completed := 0
	for i := 0; i < 400 && completed < 25; i++ {
		// Sweep the timeout through the RPC's latency range so some calls
		// complete exactly as the cancellation fires.
		timeout := time.Duration(20+i%80*10) * time.Microsecond
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		_, err := c.StatsContext(ctx)
		cancel()
		if err != nil {
			// Canceled mid-exchange; this client cannot redial, so take a
			// fresh connection and keep probing.
			c.Close()
			c = dial()
			continue
		}
		completed++
		if _, err := c.StatsContext(context.Background()); err != nil {
			t.Fatalf("connection poisoned after completed call %d: %v", i, err)
		}
	}
	if completed == 0 {
		t.Log("no call completed under cancellation pressure; race window not exercised this run")
	}
}

// TestNewClientFailsFastWithoutAddress: NewClient has nothing to redial, so
// a broken connection stays broken with a diagnostic.
func TestNewClientFailsFastWithoutAddress(t *testing.T) {
	h := newHarness(t)
	conn, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	defer c.Close()
	if _, err := c.Stats(bg); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if _, err := c.Stats(bg); err == nil {
		t.Fatal("Stats succeeded on a closed connection")
	}
	if _, err := c.Stats(bg); err == nil {
		t.Fatal("broken NewClient connection healed itself")
	}
	if c.Redials() != 0 {
		t.Errorf("Redials() = %d on an address-less client", c.Redials())
	}
}

// TestClosedClientRejectsRPCs: Close is terminal even for self-healing
// clients.
func TestClosedClientRejectsRPCs(t *testing.T) {
	h := newHarness(t)
	c, err := Dial(h.addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Stats(bg); err == nil {
		t.Fatal("Stats succeeded on a closed client")
	}
}
