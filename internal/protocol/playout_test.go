package protocol

import (
	"testing"
	"time"

	"qosneg/internal/core"
	"qosneg/internal/testbed"
)

func newPlayoutHarness(t *testing.T, docDuration time.Duration) (*harness, *Playout) {
	t.Helper()
	bed := testbed.MustNew(testbed.Spec{})
	if _, err := bed.AddNewsArticle("news-1", "Short clip", docDuration); err != nil {
		t.Fatal(err)
	}
	h := serveHarness(t, bed)
	p := AttachPlayout(h.server, bed.Manager, 20*time.Millisecond)
	t.Cleanup(p.Stop)
	return h, p
}

func TestDaemonPlayoutCompletesSession(t *testing.T) {
	h, p := newPlayoutHarness(t, 200*time.Millisecond)
	c := h.dial(t)
	res, err := c.Negotiate(bg, h.bed.Client(1), "news-1", tvProfile(time.Minute))
	if err != nil || !res.Status.Reserved() {
		t.Fatalf("negotiate: %v %v", res.Status, err)
	}
	if err := c.Confirm(bg, res.Session); err != nil {
		t.Fatal(err)
	}
	// The daemon drives the session in real time; the 200 ms document
	// must complete within a couple of seconds.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		info, err := c.Session(bg, res.Session)
		if err != nil {
			t.Fatal(err)
		}
		if info.State == core.Completed.String() {
			if info.Position < 200*time.Millisecond {
				t.Errorf("completed at position %v", info.Position)
			}
			if h.bed.Network.ActiveReservations() != 0 {
				t.Error("completed session left reservations")
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("session never completed (playouts active: %d)", p.Active())
}

func TestDaemonPlayoutPositionAdvances(t *testing.T) {
	h, _ := newPlayoutHarness(t, 10*time.Second)
	c := h.dial(t)
	res, err := c.Negotiate(bg, h.bed.Client(1), "news-1", tvProfile(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Confirm(bg, res.Session); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		info, err := c.Session(bg, res.Session)
		if err != nil {
			t.Fatal(err)
		}
		if info.Position > 0 && info.State == "playing" {
			return // live progress observed
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("position never advanced")
}

func TestPlayoutStopIsClean(t *testing.T) {
	h, p := newPlayoutHarness(t, time.Hour) // will not finish on its own
	c := h.dial(t)
	res, _ := c.Negotiate(bg, h.bed.Client(1), "news-1", tvProfile(time.Minute))
	c.Confirm(bg, res.Session)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && p.Active() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if p.Active() != 1 {
		t.Fatalf("active = %d", p.Active())
	}
	p.Stop()
	if p.Active() != 0 {
		t.Errorf("active after stop = %d", p.Active())
	}
	// The session stays playing (daemon shutdown, not user action).
	info, err := c.Session(bg, res.Session)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != "playing" {
		t.Errorf("state = %s", info.State)
	}
}
