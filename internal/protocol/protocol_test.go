package protocol

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
	"qosneg/internal/testbed"
)

// bg is the background context threaded through the ctx-first client API
// in tests that do not exercise cancellation.
var bg = context.Background()

type harness struct {
	bed    *testbed.Bed
	server *Server
	addr   string
	done   chan struct{}
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	bed := testbed.MustNew(testbed.Spec{})
	if _, err := bed.AddNewsArticle("news-1", "Election night", 90*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := bed.AddNewsArticle("news-2", "Hockey final", 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	return serveHarness(t, bed)
}

// serveHarness starts a protocol server over an already-populated bed.
func serveHarness(t *testing.T, bed *testbed.Bed) *harness {
	t.Helper()
	srv := NewServer(bed.Manager, bed.Registry)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(l)
	}()
	h := &harness{bed: bed, server: srv, addr: l.Addr().String(), done: done}
	t.Cleanup(func() {
		l.Close()
		srv.Close()
		<-done
	})
	return h
}

func (h *harness) dial(t *testing.T) *Client {
	t.Helper()
	c, err := Dial(h.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func tvProfile(choice time.Duration) profile.UserProfile {
	return profile.UserProfile{
		Name: "tv",
		Desired: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.CDQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(12)},
			Time:  profile.TimeProfile{ChoicePeriod: choice},
		},
		Worst: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.BlackWhite, FrameRate: 10, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.TelephoneQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(12)},
			Time:  profile.TimeProfile{ChoicePeriod: choice},
		},
		Importance: profile.DefaultImportance(),
	}
}

func TestNegotiateConfirmOverWire(t *testing.T) {
	h := newHarness(t)
	c := h.dial(t)

	res, err := c.Negotiate(bg, h.bed.Client(1), "news-1", tvProfile(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.Succeeded {
		t.Fatalf("status = %v (%s)", res.Status, res.Reason)
	}
	if res.Offer == nil || res.Offer.Video == nil || res.Offer.Video.Color != qos.Color {
		t.Errorf("offer = %+v", res.Offer)
	}
	if res.Cost <= 0 {
		t.Errorf("cost = %v", res.Cost)
	}
	if res.ChoicePeriod != time.Minute {
		t.Errorf("choice period = %v", res.ChoicePeriod)
	}
	if err := c.Confirm(bg, res.Session); err != nil {
		t.Fatal(err)
	}
	info, err := c.Session(bg, res.Session)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != "playing" {
		t.Errorf("state = %s", info.State)
	}
	st, err := c.Stats(bg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Succeeded != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRejectReleasesOverWire(t *testing.T) {
	h := newHarness(t)
	c := h.dial(t)
	res, err := c.Negotiate(bg, h.bed.Client(1), "news-1", tvProfile(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Reject(bg, res.Session); err != nil {
		t.Fatal(err)
	}
	if h.bed.Network.ActiveReservations() != 0 {
		t.Error("reject leaked reservations")
	}
	// Confirming after reject is a protocol error.
	if err := c.Confirm(bg, res.Session); err == nil {
		t.Error("confirm after reject accepted")
	}
}

func TestChoicePeriodTimeout(t *testing.T) {
	h := newHarness(t)
	c := h.dial(t)
	res, err := c.Negotiate(bg, h.bed.Client(1), "news-1", tvProfile(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// Let the choice period lapse: the server aborts the session and
	// reclaims the resources ("the session is simply aborted").
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if h.server.Expired() == 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if h.server.Expired() != 1 {
		t.Fatal("choice period never expired")
	}
	if h.bed.Network.ActiveReservations() != 0 {
		t.Error("expired session leaked reservations")
	}
	if err := c.Confirm(bg, res.Session); err == nil {
		t.Error("confirm after expiry accepted")
	}
	info, err := c.Session(bg, res.Session)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != "aborted" {
		t.Errorf("state = %s", info.State)
	}
}

func TestConfirmDisarmsTimer(t *testing.T) {
	h := newHarness(t)
	c := h.dial(t)
	res, err := c.Negotiate(bg, h.bed.Client(1), "news-1", tvProfile(80*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Confirm(bg, res.Session); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	if h.server.Expired() != 0 {
		t.Error("confirmed session expired anyway")
	}
	info, _ := c.Session(bg, res.Session)
	if info.State != "playing" {
		t.Errorf("state = %s", info.State)
	}
}

func TestListDocuments(t *testing.T) {
	h := newHarness(t)
	c := h.dial(t)
	docs, err := c.ListDocuments(bg, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("documents = %+v", docs)
	}
	if docs[0].ID != "news-1" || docs[0].Components == 0 {
		t.Errorf("docs[0] = %+v", docs[0])
	}
	hits, err := c.ListDocuments(bg, "hockey")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].ID != "news-2" {
		t.Errorf("search = %+v", hits)
	}
}

func TestServerErrors(t *testing.T) {
	h := newHarness(t)
	c := h.dial(t)
	// Unknown document.
	if _, err := c.Negotiate(bg, h.bed.Client(1), "ghost", tvProfile(time.Minute)); err == nil {
		t.Error("unknown document accepted")
	}
	// Invalid profile (empty name).
	bad := tvProfile(time.Minute)
	bad.Name = ""
	if _, err := c.Negotiate(bg, h.bed.Client(1), "news-1", bad); err == nil {
		t.Error("invalid profile accepted")
	}
	// Invalid machine.
	mach := h.bed.Client(1)
	mach.Decoders = nil
	if _, err := c.Negotiate(bg, mach, "news-1", tvProfile(time.Minute)); err == nil {
		t.Error("invalid machine accepted")
	}
	// Unknown session.
	if err := c.Confirm(bg, 9999); err == nil || !strings.Contains(err.Error(), "unknown session") {
		t.Errorf("unknown session: %v", err)
	}
	// The connection survives errors: a good request still works.
	if _, err := c.ListDocuments(bg, ""); err != nil {
		t.Errorf("connection broken after error: %v", err)
	}
}

func TestMalformedRequestType(t *testing.T) {
	h := newHarness(t)
	c := h.dial(t)
	resp, err := c.roundTrip(context.Background(), Envelope{Type: "dance"}, false)
	if err == nil {
		t.Errorf("unknown request type accepted: %+v", resp)
	}
}

func TestConcurrentClients(t *testing.T) {
	h := newHarness(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(h.addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 5; j++ {
				res, err := c.Negotiate(bg, h.bed.Client(1), "news-1", tvProfile(time.Minute))
				if err != nil {
					errs <- err
					return
				}
				if res.Status.Reserved() {
					if err := c.Reject(bg, res.Session); err != nil {
						errs <- err
						return
					}
				}
				if _, err := c.ListDocuments(bg, ""); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if h.bed.Network.ActiveReservations() != 0 {
		t.Errorf("leaked %d reservations", h.bed.Network.ActiveReservations())
	}
}

func TestParseStatus(t *testing.T) {
	for s := core.Succeeded; s <= core.FailedWithLocalOffer; s++ {
		got, ok := ParseStatus(s.String())
		if !ok || got != s {
			t.Errorf("ParseStatus(%s) = %v, %v", s, got, ok)
		}
	}
	if _, ok := ParseStatus("NOPE"); ok {
		t.Error("unknown status parsed")
	}
}

func TestListSessions(t *testing.T) {
	h := newHarness(t)
	c := h.dial(t)
	if rows, err := c.ListSessions(bg); err != nil || len(rows) != 0 {
		t.Fatalf("empty daemon: %v %v", rows, err)
	}
	r1, err := c.Negotiate(bg, h.bed.Client(1), "news-1", tvProfile(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Negotiate(bg, h.bed.Client(2), "news-2", tvProfile(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Confirm(bg, r2.Session); err != nil {
		t.Fatal(err)
	}
	rows, err := c.ListSessions(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Session != r1.Session || rows[0].State != "reserved" || rows[0].Document != "news-1" {
		t.Errorf("row 0 = %+v", rows[0])
	}
	if rows[1].Session != r2.Session || rows[1].State != "playing" {
		t.Errorf("row 1 = %+v", rows[1])
	}
	if rows[0].Cost <= 0 {
		t.Errorf("row cost = %v", rows[0].Cost)
	}
}

func TestInvoiceOverWire(t *testing.T) {
	h := newHarness(t)
	c := h.dial(t)
	res, err := c.Negotiate(bg, h.bed.Client(1), "news-1", tvProfile(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	inv, err := c.Invoice(bg, res.Session)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Total != res.Cost {
		t.Errorf("invoice total %v vs negotiated cost %v", inv.Total, res.Cost)
	}
	if len(inv.Lines) != 2 {
		t.Errorf("lines = %+v", inv.Lines)
	}
	if _, err := c.Invoice(bg, 999); err == nil {
		t.Error("unknown session invoiced")
	}
}

func TestServerLoadsOverWire(t *testing.T) {
	h := newHarness(t)
	c := h.dial(t)
	loads, err := c.ServerLoads(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != 2 || loads[0].ID != "server-1" {
		t.Fatalf("loads = %+v", loads)
	}
	if loads[0].ActiveStreams != 0 {
		t.Errorf("idle server streams = %d", loads[0].ActiveStreams)
	}
	res, err := c.Negotiate(bg, h.bed.Client(1), "news-1", tvProfile(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	loads, _ = c.ServerLoads(bg)
	total := 0
	for _, l := range loads {
		total += l.ActiveStreams
	}
	// video + audio + caption text: discrete media occupy a stream slot
	// while being fetched.
	if total != 3 {
		t.Errorf("streams after negotiation = %d", total)
	}
}
