package protocol

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"qosneg/internal/admission"
	"qosneg/internal/core"
	"qosneg/internal/faults"
	"qosneg/internal/media"
	"qosneg/internal/telemetry"
	"qosneg/internal/testbed"
)

// saturatedController builds a controller that refuses everything: its only
// slot is pinned for the test's lifetime.
func saturatedController(t *testing.T) *admission.Controller {
	t.Helper()
	c := admission.New(admission.Config{MaxInFlight: 1, MinInFlight: 1})
	rel, _, ok := c.Admit()
	if !ok {
		t.Fatal("could not pin the controller's only slot")
	}
	t.Cleanup(rel)
	return c
}

// serveWith starts a protocol server with explicit options over a populated
// bed and returns the harness plus its telemetry registry.
func serveWith(t *testing.T, bed *testbed.Bed, opts ...ServerOption) (*harness, *telemetry.Registry) {
	t.Helper()
	srv := NewServer(bed.Manager, bed.Registry, opts...)
	reg := telemetry.NewRegistry()
	srv.Instrument(reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(l)
	}()
	h := &harness{bed: bed, server: srv, addr: l.Addr().String(), done: done}
	t.Cleanup(func() {
		l.Close()
		srv.Close()
		<-done
	})
	return h, reg
}

func codecCases() []struct {
	name string
	wire WireOptions
} {
	return []struct {
		name string
		wire WireOptions
	}{
		{CodecBinary, WireOptions{Codecs: []string{CodecBinary, CodecJSON}}},
		{CodecJSON, WireOptions{Codecs: []string{CodecJSON}}},
	}
}

// TestServerShedBusyOverWire: with the admission controller saturated, a
// negotiation on either codec is answered MsgBusy — surfaced as *ErrBusy
// with a positive RetryAfter — while queries keep working.
func TestServerShedBusyOverWire(t *testing.T) {
	for _, tc := range codecCases() {
		t.Run(tc.name, func(t *testing.T) {
			bed := testbed.MustNew(testbed.Spec{})
			if _, err := bed.AddNewsArticle("news-1", "Election night", 90*time.Second); err != nil {
				t.Fatal(err)
			}
			ctrl := saturatedController(t)
			h, reg := serveWith(t, bed, WithServerAdmission(ctrl))
			c, err := Dial(h.addr, WithWire(tc.wire))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			_, err = c.Negotiate(bg, h.bed.Client(1), "news-1", tvProfile(time.Minute))
			var busy *ErrBusy
			if !errors.As(err, &busy) {
				t.Fatalf("negotiate under saturation: err = %v, want *ErrBusy", err)
			}
			if busy.RetryAfter <= 0 {
				t.Fatalf("busy reply carries RetryAfter %v, want > 0", busy.RetryAfter)
			}
			// Queries are never shed: the daemon stays observable.
			if _, err := c.Stats(bg); err != nil {
				t.Fatalf("stats under saturation: %v", err)
			}
			if v := reg.Snapshot().CounterValue("qosneg_rpc_shed_total", tc.name); v == 0 {
				t.Fatalf("no %s shed counted", tc.name)
			}
		})
	}
}

// TestManagerShedResultOverWire: a controller installed on the manager (not
// the server) sheds with a FAILEDTRYLATER result whose Shed flag and
// RetryAfter survive both codecs.
func TestManagerShedResultOverWire(t *testing.T) {
	for _, tc := range codecCases() {
		t.Run(tc.name, func(t *testing.T) {
			opts := core.DefaultOptions()
			opts.Admission = saturatedController(t)
			bed := testbed.MustNew(testbed.Spec{Options: &opts})
			if _, err := bed.AddNewsArticle("news-1", "Election night", 90*time.Second); err != nil {
				t.Fatal(err)
			}
			h, _ := serveWith(t, bed)
			c, err := Dial(h.addr, WithWire(tc.wire))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			res, err := c.Negotiate(bg, h.bed.Client(1), "news-1", tvProfile(time.Minute))
			if err != nil {
				t.Fatalf("negotiate: %v", err)
			}
			if res.Status != core.FailedTryLater {
				t.Fatalf("status = %v, want FAILEDTRYLATER", res.Status)
			}
			if !res.Shed {
				t.Fatal("Shed flag lost over the wire")
			}
			if res.RetryAfter <= 0 {
				t.Fatalf("RetryAfter = %v, want > 0", res.RetryAfter)
			}
		})
	}
}

// TestBatchShedItemsCarryRetryAfter: every shed item of a batch carries the
// controller's hint and the Shed marker.
func TestBatchShedItemsCarryRetryAfter(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Admission = saturatedController(t)
	bed := testbed.MustNew(testbed.Spec{Options: &opts})
	docs := []media.DocumentID{"news-1", "news-2", "news-3"}
	for _, id := range docs {
		if _, err := bed.AddNewsArticle(id, "Article "+string(id), time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	h, _ := serveWith(t, bed)
	c := h.dial(t)
	mach := h.bed.Client(1)
	u := tvProfile(time.Minute)
	var items []BatchItem
	for _, id := range docs {
		items = append(items, BatchItem{Machine: &mach, Document: id, Profile: &u})
	}
	results, err := c.BatchNegotiate(bg, items)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("item %d: %v", i, res.Err)
		}
		if res.Status != core.FailedTryLater || !res.Shed {
			t.Fatalf("item %d: status %v shed %v, want shed FAILEDTRYLATER", i, res.Status, res.Shed)
		}
		if res.RetryAfter <= 0 {
			t.Fatalf("item %d: RetryAfter = %v, want > 0", i, res.RetryAfter)
		}
	}
}

// TestStreamCapShedsInsteadOfStalling: at the stream cap the server answers
// a typed busy frame on the new stream id instead of blocking the frame
// reader — the pre-existing stream keeps flowing throughout.
func TestStreamCapShedsInsteadOfStalling(t *testing.T) {
	bed := testbed.MustNew(testbed.Spec{})
	if _, err := bed.AddNewsArticle("news-1", "Election night", 90*time.Second); err != nil {
		t.Fatal(err)
	}
	h, reg := serveWith(t, bed, WithServerWire(WireOptions{MaxStreams: 1}))

	// Reserve a session so a watch has something non-terminal to follow.
	ctl := h.dial(t)
	res, err := ctl.Negotiate(bg, h.bed.Client(1), "news-1", tvProfile(time.Minute))
	if err != nil || !res.Status.Reserved() {
		t.Fatalf("negotiate: %v %v", res.Status, err)
	}
	defer ctl.Reject(bg, res.Session)

	conn, r := binaryHandshake(t, h.addr)
	watchReq, _ := encodeEnvelope(Envelope{Type: MsgWatch, Payload: &WatchRequest{Session: res.Session, IntervalMs: 20}})
	if _, err := conn.Write(appendFrame(nil, frame{Stream: 7, Payload: watchReq})); err != nil {
		t.Fatal(err)
	}
	// First watch update proves the only handler slot is occupied.
	if _, err := readFrame(r); err != nil {
		t.Fatal(err)
	}
	statsReq, _ := encodeEnvelope(Envelope{Type: MsgStats})
	if _, err := conn.Write(appendFrame(nil, frame{Stream: 8, Payload: statsReq})); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	sawBusy := false
	for time.Now().Before(deadline) && !sawBusy {
		f, err := readFrame(r)
		if err != nil {
			t.Fatalf("connection died instead of shedding: %v", err)
		}
		env, derr := decodeEnvelope(f.Payload)
		if derr != nil {
			t.Fatal(derr)
		}
		switch env.Type {
		case MsgBusy:
			if f.Stream != 8 {
				t.Fatalf("busy frame on stream %d, want 8", f.Stream)
			}
			p := env.Payload.(*BusyPayload)
			if p.RetryAfterMs <= 0 {
				t.Fatalf("busy RetryAfterMs = %d, want > 0", p.RetryAfterMs)
			}
			if !strings.Contains(p.Error, "stream limit") {
				t.Errorf("busy error = %q", p.Error)
			}
			sawBusy = true
		case MsgSessionInfo:
			// The watch stream keeps flowing: the reader never stalled.
		default:
			t.Fatalf("unexpected frame %q on stream %d", env.Type, f.Stream)
		}
	}
	if !sawBusy {
		t.Fatal("no busy frame seen at the stream cap")
	}
	if v := reg.Snapshot().CounterValue("qosneg_rpc_shed_total", CodecBinary); v == 0 {
		t.Fatal("binary shed not counted")
	}
}

// TestBatchClientPropagatesDeadline: the client stamps its context deadline
// into BatchNegotiateRequest.TimeoutMs.
func TestBatchClientPropagatesDeadline(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := make(chan int64, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		line, err := r.ReadBytes('\n')
		if err != nil {
			return
		}
		env, err := readEnvelopeLine(line)
		if err != nil || env.Type != MsgBatchNegotiate {
			got <- -1
			return
		}
		req := env.Payload.(*BatchNegotiateRequest)
		got <- req.TimeoutMs
		writeEnvelopeLine(conn, Envelope{Type: MsgBatchResult, Payload: &BatchResultPayload{
			Items: make([]BatchItemResult, len(req.Items)),
		}})
	}()
	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// A JSON-pinned client skips the handshake, so the stub only ever sees
	// the batch request.
	c := NewClient(nc, WithWire(WireOptions{Codecs: []string{CodecJSON}}))
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	mach := testbed.MustNew(testbed.Spec{}).Client(1)
	u := tvProfile(time.Minute)
	c.BatchNegotiate(ctx, []BatchItem{{Machine: &mach, Document: "news-1", Profile: &u}})
	select {
	case ms := <-got:
		if ms <= 0 || ms > 5000 {
			t.Fatalf("TimeoutMs = %d, want in (0, 5000]", ms)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stub server saw no batch request")
	}
}

// TestBatchPerItemDeadlineBoundsNegotiation: the server applies TimeoutMs
// per item — with injected substrate latency above the budget every item
// times out individually, and without a budget the same batch succeeds.
func TestBatchPerItemDeadlineBoundsNegotiation(t *testing.T) {
	inj := faults.New(1)
	bed := testbed.MustNew(testbed.Spec{Faults: inj})
	if _, err := bed.AddNewsArticle("news-1", "Election night", 90*time.Second); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(bed.Manager, bed.Registry)
	defer srv.Close()
	mach := bed.Client(1)
	u := tvProfile(time.Minute)
	items := []BatchItem{{Machine: &mach, Document: "news-1", Profile: &u}}

	inj.SetLatency(50 * time.Millisecond)
	resp := srv.batchNegotiate(context.Background(), &BatchNegotiateRequest{Items: items, TimeoutMs: 1})
	p := resp.Payload.(*BatchResultPayload)
	if p.Items[0].Error == "" || !strings.Contains(p.Items[0].Error, "deadline") {
		t.Fatalf("item with 1ms budget and 50ms substrate latency: error %q, want deadline exceeded", p.Items[0].Error)
	}

	inj.SetLatency(0)
	resp = srv.batchNegotiate(context.Background(), &BatchNegotiateRequest{Items: items})
	p = resp.Payload.(*BatchResultPayload)
	if p.Items[0].Error != "" {
		t.Fatalf("unbudgeted batch failed: %q", p.Items[0].Error)
	}
	if st, _ := ParseStatus(p.Items[0].Status); st.Reserved() {
		bed.Manager.Reject(p.Items[0].Session)
	}
}
