// Package protocol implements the negotiation wire protocol between client
// machines and the QoS manager: the distributed half of the prototype, in
// which the profile manager on the user's workstation talks to the QoS
// manager over the network. Messages are newline-delimited JSON over TCP.
//
// The protocol carries the full negotiation flow of Section 4: a negotiate
// request (client machine description + document + user profile), the
// negotiation result (status, user offer, reserved session), and the
// confirmation round of step 6 — with the server enforcing the
// choicePeriod: a reserved session that is neither confirmed nor rejected
// within its choice period is aborted server-side, exactly as the
// information window's timer does in the GUI (Section 8).
package protocol

import (
	"qosneg/internal/client"
	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/profile"
	"qosneg/internal/telemetry"
)

// MessageType discriminates requests and responses.
type MessageType string

// Request types.
const (
	// MsgNegotiate runs the negotiation procedure.
	MsgNegotiate MessageType = "negotiate"
	// MsgConfirm accepts a reserved offer (step 6).
	MsgConfirm MessageType = "confirm"
	// MsgReject declines a reserved offer; resources are released.
	MsgReject MessageType = "reject"
	// MsgRenegotiate re-runs the procedure for a reserved session with a
	// modified profile (Section 8's "modify the offer and then push OK").
	MsgRenegotiate MessageType = "renegotiate"
	// MsgSession queries a session's state.
	MsgSession MessageType = "session"
	// MsgListDocuments lists or searches the document catalog.
	MsgListDocuments MessageType = "list-documents"
	// MsgStats fetches the QoS manager's outcome counters.
	MsgStats MessageType = "stats"
	// MsgListSessions lists the daemon's sessions and their states.
	MsgListSessions MessageType = "list-sessions"
	// MsgInvoice fetches a session's itemized bill.
	MsgInvoice MessageType = "invoice"
	// MsgServerLoads fetches the media servers' current load.
	MsgServerLoads MessageType = "server-loads"
	// MsgWatch streams MsgSessionInfo updates for one session until it
	// reaches a terminal state: the notification channel the profile
	// manager uses to follow the delivery (and to learn about automatic
	// adaptations) without polling. Use a dedicated connection; the
	// stream occupies it.
	MsgWatch MessageType = "watch"
	// MsgMetrics fetches the daemon's full telemetry snapshot (counters,
	// gauges, latency histograms); `qosctl stats` renders it. A daemon
	// running without telemetry answers with an empty snapshot.
	MsgMetrics MessageType = "metrics"
)

// Response types.
const (
	// MsgResult answers MsgNegotiate.
	MsgResult MessageType = "result"
	// MsgOK answers MsgConfirm / MsgReject.
	MsgOK MessageType = "ok"
	// MsgSessionInfo answers MsgSession.
	MsgSessionInfo MessageType = "session-info"
	// MsgDocuments answers MsgListDocuments.
	MsgDocuments MessageType = "documents"
	// MsgStatsInfo answers MsgStats.
	MsgStatsInfo MessageType = "stats-info"
	// MsgSessions answers MsgListSessions.
	MsgSessions MessageType = "sessions"
	// MsgInvoiceInfo answers MsgInvoice.
	MsgInvoiceInfo MessageType = "invoice-info"
	// MsgServerLoadsInfo answers MsgServerLoads.
	MsgServerLoadsInfo MessageType = "server-loads-info"
	// MsgMetricsInfo answers MsgMetrics.
	MsgMetricsInfo MessageType = "metrics-info"
	// MsgError reports a request failure.
	MsgError MessageType = "error"
)

// Request is the client→server envelope.
type Request struct {
	Type MessageType `json:"type"`
	// Machine describes the requesting client machine (MsgNegotiate).
	Machine *client.Machine `json:"machine,omitempty"`
	// Document is the requested document (MsgNegotiate).
	Document media.DocumentID `json:"document,omitempty"`
	// Profile is the selected user profile (MsgNegotiate, MsgRenegotiate).
	Profile *profile.UserProfile `json:"profile,omitempty"`
	// Session targets MsgConfirm, MsgReject, MsgRenegotiate, MsgSession
	// and MsgWatch.
	Session core.SessionID `json:"session,omitempty"`
	// Query filters MsgListDocuments by title substring.
	Query string `json:"query,omitempty"`
	// IntervalMs is the MsgWatch sampling interval (default 200 ms).
	IntervalMs int64 `json:"intervalMs,omitempty"`
}

// DocumentSummary is one catalog row of MsgDocuments.
type DocumentSummary struct {
	ID    media.DocumentID `json:"id"`
	Title string           `json:"title"`
	// Components counts the monomedia components.
	Components int `json:"components"`
}

// Response is the server→client envelope.
type Response struct {
	Type MessageType `json:"type"`
	// Error carries the failure text for MsgError.
	Error string `json:"error,omitempty"`

	// MsgResult fields.
	Status  string             `json:"status,omitempty"` // paper name, e.g. "SUCCEEDED"
	Offer   *profile.MMProfile `json:"offer,omitempty"`
	Session core.SessionID     `json:"session,omitempty"`
	Cost    cost.Money         `json:"cost,omitempty"`
	Reason  string             `json:"reason,omitempty"`
	// ChoicePeriodMs is how long the reservation stays valid.
	ChoicePeriodMs int64    `json:"choicePeriodMs,omitempty"`
	Violations     []string `json:"violations,omitempty"`
	// RetryAfterMs is the retry hint for FAILEDTRYLATER results.
	RetryAfterMs int64 `json:"retryAfterMs,omitempty"`

	// MsgSessionInfo fields.
	State       string `json:"state,omitempty"`
	PositionMs  int64  `json:"positionMs,omitempty"`
	Transitions int    `json:"transitions,omitempty"`
	// Final marks the last update of a MsgWatch stream.
	Final bool `json:"final,omitempty"`

	// MsgDocuments fields.
	Documents []DocumentSummary `json:"documents,omitempty"`

	// MsgStatsInfo fields.
	Stats *core.Stats `json:"stats,omitempty"`

	// MsgSessions fields.
	Sessions []SessionSummary `json:"sessions,omitempty"`

	// MsgInvoiceInfo fields.
	Invoice *cost.Invoice `json:"invoice,omitempty"`

	// MsgServerLoadsInfo fields.
	ServerLoads []core.ServerLoad `json:"serverLoads,omitempty"`

	// MsgMetricsInfo fields.
	Metrics *telemetry.Snapshot `json:"metrics,omitempty"`
}

// SessionSummary is one row of MsgSessions.
type SessionSummary struct {
	Session     core.SessionID   `json:"session"`
	Document    media.DocumentID `json:"document"`
	State       string           `json:"state"`
	PositionMs  int64            `json:"positionMs"`
	Transitions int              `json:"transitions"`
	Cost        cost.Money       `json:"cost"`
}

// ParseStatus maps a paper-style status name back to the enum; it returns
// false for unknown names.
func ParseStatus(name string) (core.NegotiationStatus, bool) {
	for s := core.Succeeded; s <= core.FailedWithLocalOffer; s++ {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}
