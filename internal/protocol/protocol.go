// Package protocol implements the negotiation wire protocol between client
// machines and the QoS manager: the distributed half of the prototype, in
// which the profile manager on the user's workstation talks to the QoS
// manager over the network.
//
// Two codecs share one TCP port. The legacy codec is newline-delimited
// JSON, one request answered at a time — simple clients interoperate with
// nothing but a socket and a JSON library. The binary codec wraps the same
// JSON payloads in length-prefixed frames (magic, version, flags, stream
// id) and multiplexes concurrent RPCs over a single connection: each RPC
// runs on its own stream id, watch subscriptions are server-push streams,
// and a batch RPC negotiates a whole playlist in one round trip. A client
// opens with a MsgHello listing the codecs it speaks; the server picks one
// and answers MsgHelloAck. Peers that predate the handshake fall back
// cleanly — an old server answers MsgError to the hello (the client then
// speaks JSON), and an old client's first message is not a hello (the
// server then speaks JSON).
//
// The protocol carries the full negotiation flow of Section 4: a negotiate
// request (client machine description + document + user profile), the
// negotiation result (status, user offer, reserved session), and the
// confirmation round of step 6 — with the server enforcing the
// choicePeriod: a reserved session that is neither confirmed nor rejected
// within its choice period is aborted server-side, exactly as the
// information window's timer does in the GUI (Section 8).
package protocol

import (
	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/media"
)

// MessageType discriminates requests and responses.
type MessageType string

// Request types.
const (
	// MsgHello negotiates the connection codec; it must be the first
	// message on a connection and is answered by MsgHelloAck.
	MsgHello MessageType = "hello"
	// MsgNegotiate runs the negotiation procedure.
	MsgNegotiate MessageType = "negotiate"
	// MsgConfirm accepts a reserved offer (step 6).
	MsgConfirm MessageType = "confirm"
	// MsgReject declines a reserved offer; resources are released.
	MsgReject MessageType = "reject"
	// MsgRenegotiate re-runs the procedure for a reserved session with a
	// modified profile (Section 8's "modify the offer and then push OK").
	MsgRenegotiate MessageType = "renegotiate"
	// MsgBatchNegotiate negotiates a list of (machine, document, profile)
	// triples — a playlist or composite document — in one round trip. The
	// manager fans the items out concurrently and answers MsgBatchResult
	// with per-item statuses and RetryAfter hints.
	MsgBatchNegotiate MessageType = "batch-negotiate"
	// MsgSession queries a session's state.
	MsgSession MessageType = "session"
	// MsgListDocuments lists or searches the document catalog.
	MsgListDocuments MessageType = "list-documents"
	// MsgStats fetches the QoS manager's outcome counters.
	MsgStats MessageType = "stats"
	// MsgListSessions lists the daemon's sessions and their states.
	MsgListSessions MessageType = "list-sessions"
	// MsgInvoice fetches a session's itemized bill.
	MsgInvoice MessageType = "invoice"
	// MsgServerLoads fetches the media servers' current load.
	MsgServerLoads MessageType = "server-loads"
	// MsgWatch streams MsgSessionInfo updates for one session until it
	// reaches a terminal state: the notification channel the profile
	// manager uses to follow the delivery (and to learn about automatic
	// adaptations) without polling. On a multiplexed connection the watch
	// is a server-push stream on its own stream id and other RPCs proceed
	// concurrently; on the JSON codec it occupies the connection until the
	// final update.
	MsgWatch MessageType = "watch"
	// MsgMetrics fetches the daemon's full telemetry snapshot (counters,
	// gauges, latency histograms); `qosctl stats` renders it. A daemon
	// running without telemetry answers with an empty snapshot.
	MsgMetrics MessageType = "metrics"
)

// Response types.
const (
	// MsgHelloAck answers MsgHello with the chosen codec.
	MsgHelloAck MessageType = "hello-ack"
	// MsgResult answers MsgNegotiate and MsgRenegotiate.
	MsgResult MessageType = "result"
	// MsgBatchResult answers MsgBatchNegotiate.
	MsgBatchResult MessageType = "batch-result"
	// MsgOK answers MsgConfirm / MsgReject.
	MsgOK MessageType = "ok"
	// MsgSessionInfo answers MsgSession.
	MsgSessionInfo MessageType = "session-info"
	// MsgDocuments answers MsgListDocuments.
	MsgDocuments MessageType = "documents"
	// MsgStatsInfo answers MsgStats.
	MsgStatsInfo MessageType = "stats-info"
	// MsgSessions answers MsgListSessions.
	MsgSessions MessageType = "sessions"
	// MsgInvoiceInfo answers MsgInvoice.
	MsgInvoiceInfo MessageType = "invoice-info"
	// MsgServerLoadsInfo answers MsgServerLoads.
	MsgServerLoadsInfo MessageType = "server-loads-info"
	// MsgMetricsInfo answers MsgMetrics.
	MsgMetricsInfo MessageType = "metrics-info"
	// MsgError reports a request failure.
	MsgError MessageType = "error"
	// MsgBusy reports that the server shed the request at admission —
	// stream cap reached or the admission controller refusing new work —
	// with a load-derived RetryAfter hint. Clients surface it as
	// *ErrBusy. Cheap refusal instead of queueing: the paper's
	// FAILEDTRYLATER stance applied to the wire itself.
	MsgBusy MessageType = "busy"
)

// DocumentSummary is one catalog row of MsgDocuments.
type DocumentSummary struct {
	ID    media.DocumentID `json:"id"`
	Title string           `json:"title"`
	// Components counts the monomedia components.
	Components int `json:"components"`
}

// SessionSummary is one row of MsgSessions.
type SessionSummary struct {
	Session     core.SessionID   `json:"session"`
	Document    media.DocumentID `json:"document"`
	State       string           `json:"state"`
	PositionMs  int64            `json:"positionMs"`
	Transitions int              `json:"transitions"`
	Cost        cost.Money       `json:"cost"`
}

// ParseStatus maps a paper-style status name back to the enum; it returns
// false for unknown names.
func ParseStatus(name string) (core.NegotiationStatus, bool) {
	for s := core.Succeeded; s <= core.FailedWithLocalOffer; s++ {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}
