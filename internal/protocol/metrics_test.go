package protocol

import (
	"net"
	"testing"
	"time"

	"qosneg/internal/core"
	"qosneg/internal/telemetry"
	"qosneg/internal/testbed"
)

// instrumentedHarness is newHarness with a telemetry registry wired into
// the protocol server before it starts serving.
func instrumentedHarness(t *testing.T, reg *telemetry.Registry) *harness {
	t.Helper()
	bed := testbed.MustNew(testbed.Spec{})
	if _, err := bed.AddNewsArticle("news-1", "Election night", 90*time.Second); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(bed.Manager, bed.Registry)
	srv.Instrument(reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(l)
	}()
	h := &harness{bed: bed, server: srv, addr: l.Addr().String(), done: done}
	t.Cleanup(func() {
		l.Close()
		srv.Close()
		<-done
	})
	return h
}

func TestMetricsOverWire(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := instrumentedHarness(t, reg)
	c := h.dial(t)
	c.Instrument(reg, nil)

	res, err := c.Negotiate(bg, h.bed.Client(1), "news-1", tvProfile(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.Succeeded {
		t.Fatalf("status = %v (%s)", res.Status, res.Reason)
	}
	if err := c.Reject(bg, res.Session); err != nil {
		t.Fatal(err)
	}

	snap, err := c.Metrics(bg)
	if err != nil {
		t.Fatal(err)
	}
	// Server-side RPC latency for the negotiate round must be on the wire
	// snapshot; by the time MsgMetrics is answered, at least negotiate and
	// reject have been timed.
	h8, ok := snap.Find("qosneg_rpc_server_seconds", string(MsgNegotiate))
	if !ok || h8.Count != 1 {
		t.Fatalf("rpc_server_seconds{negotiate} = %+v ok=%v, want one observation", h8, ok)
	}
	if got := snap.CounterValue("qosneg_rpc_server_errors_total", ""); got != 0 {
		t.Fatalf("server errors = %d, want 0", got)
	}
	// The shared registry also accumulated the client's own RPC series.
	if _, ok := snap.Find("qosneg_rpc_client_seconds", string(MsgNegotiate)); !ok {
		t.Fatalf("snapshot missing client RPC histogram")
	}

	// A failing RPC bumps the server error counter.
	if _, err := c.Session(bg, core.SessionID(9999)); err == nil {
		t.Fatalf("expected error for unknown session")
	}
	snap, err = c.Metrics(bg)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.CounterValue("qosneg_rpc_server_errors_total", string(MsgSession)); got != 1 {
		t.Fatalf("server errors{session} = %d, want 1", got)
	}
	if got := snap.CounterValue("qosneg_rpc_client_errors_total", string(MsgSession)); got != 1 {
		t.Fatalf("client errors{session} = %d, want 1", got)
	}
}

func TestMetricsUninstrumentedDaemon(t *testing.T) {
	h := newHarness(t)
	c := h.dial(t)
	snap, err := c.Metrics(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("uninstrumented daemon returned non-empty snapshot: %+v", snap)
	}
}
