package protocol

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"qosneg/internal/core"
	"qosneg/internal/telemetry"
	"qosneg/internal/testbed"
)

func TestHandshakeNegotiatesBinary(t *testing.T) {
	h := newHarness(t)
	c := h.dial(t)
	if got := c.Codec(); got != CodecBinary {
		t.Fatalf("negotiated codec = %q, want %q", got, CodecBinary)
	}
	if _, err := c.Stats(bg); err != nil {
		t.Fatal(err)
	}
}

func TestJSONPinnedClientSkipsHandshake(t *testing.T) {
	h := newHarness(t)
	c, err := Dial(h.addr, WithWire(WireOptions{Codecs: []string{CodecJSON}}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Codec(); got != CodecJSON {
		t.Fatalf("codec = %q, want %q", got, CodecJSON)
	}
	if _, err := c.ListDocuments(bg, ""); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryClientFallsBackToJSONOnlyServer: a binary-preferring client
// against a daemon configured to only accept JSON lands on the fallback
// codec through the handshake, on the same connection.
func TestBinaryClientFallsBackToJSONOnlyServer(t *testing.T) {
	bed := testbed.MustNew(testbed.Spec{})
	if _, err := bed.AddNewsArticle("news-1", "Election night", 90*time.Second); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(bed.Manager, bed.Registry, WithServerWire(WireOptions{Codecs: []string{CodecJSON}}))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(l) }()
	t.Cleanup(func() { l.Close(); srv.Close(); <-done })

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Codec(); got != CodecJSON {
		t.Fatalf("codec = %q, want fallback to %q", got, CodecJSON)
	}
	res, err := c.Negotiate(bg, bed.Client(1), "news-1", tvProfile(time.Minute))
	if err != nil || !res.Status.Reserved() {
		t.Fatalf("negotiate over fallback: %v %v", res.Status, err)
	}
	if err := c.Reject(bg, res.Session); err != nil {
		t.Fatal(err)
	}
	if c.Redials() != 0 {
		t.Errorf("fallback cost %d redials; want 0", c.Redials())
	}
}

// legacyStubServer emulates a daemon that predates the MsgHello handshake:
// unknown request types (including hello) are answered with MsgError on an
// open connection, exactly as the old dispatch loop did.
func legacyStubServer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				r := bufio.NewReader(conn)
				for {
					line, err := r.ReadBytes('\n')
					if err != nil {
						return
					}
					var req struct {
						Type string `json:"type"`
					}
					if json.Unmarshal(line, &req) != nil {
						return
					}
					switch req.Type {
					case "list-documents":
						fmt.Fprintf(conn, "{\"type\":\"documents\",\"documents\":[{\"id\":\"legacy-1\",\"title\":\"Legacy doc\",\"components\":1}]}\n")
					default:
						fmt.Fprintf(conn, "{\"type\":\"error\",\"error\":\"unknown request type %s\"}\n", req.Type)
					}
				}
			}(conn)
		}
	}()
	return l.Addr().String()
}

// TestBinaryClientFallsBackToLegacyServer is the mixed-version matrix's
// hard corner: a new client dials a server that answers the hello with
// MsgError. The client must drop to JSON on the same (still healthy)
// connection and complete RPCs normally.
func TestBinaryClientFallsBackToLegacyServer(t *testing.T) {
	addr := legacyStubServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Codec(); got != CodecJSON {
		t.Fatalf("codec = %q, want fallback to %q", got, CodecJSON)
	}
	docs, err := c.ListDocuments(bg, "")
	if err != nil || len(docs) != 1 || docs[0].ID != "legacy-1" {
		t.Fatalf("ListDocuments over fallback: %v %v", docs, err)
	}
	if c.Redials() != 0 {
		t.Errorf("fallback cost %d redials; want 0", c.Redials())
	}
}

// TestBinaryOnlyClientRefusesLegacyServer: with JSON struck from the
// preference list there is nothing to fall back to.
func TestBinaryOnlyClientRefusesLegacyServer(t *testing.T) {
	addr := legacyStubServer(t)
	_, err := Dial(addr, WithWire(WireOptions{Codecs: []string{CodecBinary}}))
	if err == nil || !strings.Contains(err.Error(), "does not speak") {
		t.Fatalf("binary-only dial of a legacy server: %v", err)
	}
}

// TestConcurrentRPCsOnOneConnection exercises the multiplexer: many
// goroutines sharing a single client (hence a single TCP connection) must
// all complete without redials — streams, not connections, carry the
// concurrency.
func TestConcurrentRPCsOnOneConnection(t *testing.T) {
	h := newHarness(t)
	c := h.dial(t)
	if c.Codec() != CodecBinary {
		t.Fatalf("codec = %q", c.Codec())
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if _, err := c.Stats(bg); err != nil {
					errs <- err
					return
				}
				if _, err := c.ListDocuments(bg, ""); err != nil {
					errs <- err
					return
				}
			}
			if i%4 == 0 {
				res, err := c.Negotiate(bg, h.bed.Client(1+i%2), "news-1", tvProfile(time.Minute))
				if err != nil {
					errs <- err
					return
				}
				if res.Status.Reserved() {
					if err := c.Reject(bg, res.Session); err != nil {
						errs <- err
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if c.Redials() != 0 {
		t.Errorf("concurrent RPCs cost %d redials; want 0 (one multiplexed connection)", c.Redials())
	}
	if h.bed.Network.ActiveReservations() != 0 {
		t.Errorf("leaked %d reservations", h.bed.Network.ActiveReservations())
	}
}

// TestWatchDoesNotBlockMultiplexedRPCs is the satellite bugfix's regression
// test: a live watch stream must not serialize other RPCs on the same
// connection, and canceling the watch must leave the connection healthy —
// no redial, no poisoned deadline.
func TestWatchDoesNotBlockMultiplexedRPCs(t *testing.T) {
	h := newHarness(t)
	c := h.dial(t)
	res, err := c.Negotiate(bg, h.bed.Client(1), "news-1", tvProfile(time.Minute))
	if err != nil || !res.Status.Reserved() {
		t.Fatalf("negotiate: %v %v", res.Status, err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := make(chan SessionInfo, 16)
	watchErr := make(chan error, 1)
	go func() {
		watchErr <- c.Watch(ctx, res.Session, 10*time.Millisecond, func(i SessionInfo) {
			select {
			case got <- i:
			default:
			}
		})
	}()

	// The watch is live (first update observed)...
	select {
	case i := <-got:
		if i.State != "reserved" {
			t.Errorf("first update state = %s", i.State)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch produced no update")
	}
	// ...and concurrent RPCs on the same connection still answer.
	for i := 0; i < 5; i++ {
		rpcDone := make(chan error, 1)
		go func() {
			_, err := c.Stats(bg)
			rpcDone <- err
		}()
		select {
		case err := <-rpcDone:
			if err != nil {
				t.Fatalf("RPC during watch: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("RPC blocked behind the watch stream")
		}
	}

	// Cancel the watch mid-stream: only its stream dies.
	cancel()
	select {
	case err := <-watchErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("watch returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled watch never returned")
	}
	if _, err := c.Stats(bg); err != nil {
		t.Fatalf("connection poisoned by canceled watch: %v", err)
	}
	if err := c.Reject(bg, res.Session); err != nil {
		t.Fatal(err)
	}
	if c.Redials() != 0 {
		t.Errorf("canceled watch cost %d redials; want 0", c.Redials())
	}
}

// TestBatchNegotiate covers the new RPC end to end: per-item statuses, one
// failed item not failing its siblings, choice timers armed per reserved
// item, a single server round trip, and an empty ledger at wind-down.
func TestBatchNegotiate(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := instrumentedHarness(t, reg)
	if _, err := h.bed.AddNewsArticle("news-2", "Hockey final", 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	c := h.dial(t)
	mach1, mach2 := h.bed.Client(1), h.bed.Client(2)
	u := tvProfile(time.Minute)
	items := []BatchItem{
		{Machine: &mach1, Document: "news-1", Profile: &u},
		{Machine: &mach1, Document: "ghost", Profile: &u},
		{Machine: &mach2, Document: "news-2", Profile: &u},
	}
	results, err := c.BatchNegotiate(bg, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %+v", results)
	}
	if results[0].Err != nil || !results[0].Status.Reserved() {
		t.Fatalf("item 0 = %+v", results[0])
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "ghost") {
		t.Fatalf("item 1 should fail with the unknown document: %+v", results[1])
	}
	if results[2].Err != nil || !results[2].Status.Reserved() {
		t.Fatalf("item 2 = %+v", results[2])
	}
	if results[0].Session == results[2].Session {
		t.Errorf("items share session %d", results[0].Session)
	}

	// One round trip: the daemon timed exactly one batch-negotiate RPC.
	snap := reg.Snapshot()
	if hp, ok := snap.Find("qosneg_rpc_server_seconds", string(MsgBatchNegotiate)); !ok || hp.Count != 1 {
		t.Errorf("rpc_server_seconds{batch-negotiate} = %+v ok=%v, want exactly one round trip", hp, ok)
	}

	// Wind down: confirm one, reject the other, and prove nothing leaked.
	if err := c.Confirm(bg, results[0].Session); err != nil {
		t.Fatal(err)
	}
	if err := c.Reject(bg, results[2].Session); err != nil {
		t.Fatal(err)
	}
	if err := c.Reject(bg, results[0].Session); err == nil {
		t.Error("reject after confirm accepted")
	}
	if err := h.bed.Manager.Reject(results[0].Session); err == nil {
		t.Error("manager reject after confirm accepted")
	}
	// The confirmed session is playing; abort it so the bed is quiescent,
	// then the ledger must be empty.
	h.bed.Manager.Abort(results[0].Session)
	if err := h.bed.Ledger.CheckEmpty(); err != nil {
		t.Errorf("ledger not empty at wind-down: %v", err)
	}
}

// TestBatchChoiceTimersExpire: every reserved batch item gets its own step 6
// choice timer.
func TestBatchChoiceTimersExpire(t *testing.T) {
	h := newHarness(t)
	c := h.dial(t)
	mach1, mach2 := h.bed.Client(1), h.bed.Client(2)
	u := tvProfile(60 * time.Millisecond)
	results, err := c.BatchNegotiate(bg, []BatchItem{
		{Machine: &mach1, Document: "news-1", Profile: &u},
		{Machine: &mach2, Document: "news-2", Profile: &u},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil || !r.Status.Reserved() {
			t.Fatalf("item %d = %+v", i, r)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && h.server.Expired() < 2 {
		time.Sleep(10 * time.Millisecond)
	}
	if h.server.Expired() != 2 {
		t.Fatalf("expired = %d, want both batch reservations reclaimed", h.server.Expired())
	}
	if h.bed.Network.ActiveReservations() != 0 {
		t.Error("expired batch leaked reservations")
	}
}

// TestCrossCodecEquivalence runs the same negotiate/confirm/reject flow over
// both codecs against identically-built beds and requires identical
// outcomes: the binary codec is a framing change, not a semantic one.
func TestCrossCodecEquivalence(t *testing.T) {
	type outcome struct {
		Negotiate NegotiationResult
		Confirmed SessionInfo
		RejectErr string
		Second    NegotiationResult
	}
	runFlow := func(t *testing.T, codecs []string, wantCodec string) outcome {
		h := newHarness(t)
		c, err := Dial(h.addr, WithWire(WireOptions{Codecs: codecs}))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		if got := c.Codec(); got != wantCodec {
			t.Fatalf("codec = %q, want %q", got, wantCodec)
		}
		var o outcome
		o.Negotiate, err = c.Negotiate(bg, h.bed.Client(1), "news-1", tvProfile(time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Confirm(bg, o.Negotiate.Session); err != nil {
			t.Fatal(err)
		}
		o.Confirmed, err = c.Session(bg, o.Negotiate.Session)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Reject(bg, o.Negotiate.Session); err != nil {
			o.RejectErr = err.Error()
		}
		o.Second, err = c.Negotiate(bg, h.bed.Client(2), "news-2", tvProfile(time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Reject(bg, o.Second.Session); err != nil {
			t.Fatal(err)
		}
		return o
	}
	jsonOut := runFlow(t, []string{CodecJSON}, CodecJSON)
	binOut := runFlow(t, []string{CodecBinary, CodecJSON}, CodecBinary)
	// Playout position advances in real time on confirmed sessions; it is
	// the only wall-clock-dependent field.
	jsonOut.Confirmed.Position = 0
	binOut.Confirmed.Position = 0
	if !reflect.DeepEqual(jsonOut, binOut) {
		t.Errorf("codecs disagree:\n json   %+v\n binary %+v", jsonOut, binOut)
	}
}

// binaryHandshake dials a raw connection and completes the hello exchange,
// returning the connection ready for hand-rolled frames.
func binaryHandshake(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte(`{"type":"hello","codecs":["binary/1","json"]}` + "\n")); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	line, err := r.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	ack, err := readEnvelopeLine(line)
	if err != nil || ack.Type != MsgHelloAck {
		t.Fatalf("handshake answer %v %v", ack, err)
	}
	return conn, r
}

// TestStreamZeroIsProtocolError: stream id 0 is reserved; using it answers a
// typed error and closes the connection cleanly.
func TestStreamZeroIsProtocolError(t *testing.T) {
	h := newHarness(t)
	conn, r := binaryHandshake(t, h.addr)
	payload, _ := encodeEnvelope(Envelope{Type: MsgStats})
	if _, err := conn.Write(appendFrame(nil, frame{Stream: 0, Payload: payload})); err != nil {
		t.Fatal(err)
	}
	f, err := readFrame(r)
	if err != nil {
		t.Fatalf("no error frame before close: %v", err)
	}
	env, err := decodeEnvelope(f.Payload)
	if err != nil || env.Type != MsgError {
		t.Fatalf("frame = %+v %v, want a typed error", env, err)
	}
	if p := env.Payload.(*ErrorPayload); !strings.Contains(p.Error, "stream id") {
		t.Errorf("error = %q", p.Error)
	}
	if _, err := readFrame(r); err == nil {
		t.Error("connection stayed open after a protocol error")
	}
}

// TestDuplicateStreamIDIsProtocolError: reusing a stream id that is still
// open (here: held by a live watch) is a protocol error that closes the
// connection after a typed MsgError.
func TestDuplicateStreamIDIsProtocolError(t *testing.T) {
	h := newHarness(t)
	ctl := h.dial(t)
	res, err := ctl.Negotiate(bg, h.bed.Client(1), "news-1", tvProfile(time.Minute))
	if err != nil || !res.Status.Reserved() {
		t.Fatalf("negotiate: %v %v", res.Status, err)
	}
	defer ctl.Reject(bg, res.Session)

	conn, r := binaryHandshake(t, h.addr)
	watchReq, _ := encodeEnvelope(Envelope{Type: MsgWatch, Payload: &WatchRequest{Session: res.Session, IntervalMs: 20}})
	if _, err := conn.Write(appendFrame(nil, frame{Stream: 7, Payload: watchReq})); err != nil {
		t.Fatal(err)
	}
	// First watch update proves stream 7 is live.
	if _, err := readFrame(r); err != nil {
		t.Fatal(err)
	}
	statsReq, _ := encodeEnvelope(Envelope{Type: MsgStats})
	if _, err := conn.Write(appendFrame(nil, frame{Stream: 7, Payload: statsReq})); err != nil {
		t.Fatal(err)
	}
	sawError := false
	for i := 0; i < 32; i++ {
		f, err := readFrame(r)
		if err != nil {
			break // clean close after the error frame
		}
		if env, derr := decodeEnvelope(f.Payload); derr == nil && env.Type == MsgError {
			if p := env.Payload.(*ErrorPayload); strings.Contains(p.Error, "stream id") {
				sawError = true
			}
		}
	}
	if !sawError {
		t.Error("duplicate stream id produced no typed error")
	}
}

// TestCancelFrameStopsServerStream: a client-sent cancel frame aborts the
// stream server-side (the watch stops sampling) while the connection keeps
// serving other streams.
func TestCancelFrameStopsServerStream(t *testing.T) {
	h := newHarness(t)
	ctl := h.dial(t)
	res, err := ctl.Negotiate(bg, h.bed.Client(1), "news-1", tvProfile(time.Minute))
	if err != nil || !res.Status.Reserved() {
		t.Fatalf("negotiate: %v %v", res.Status, err)
	}
	defer ctl.Reject(bg, res.Session)

	conn, r := binaryHandshake(t, h.addr)
	watchReq, _ := encodeEnvelope(Envelope{Type: MsgWatch, Payload: &WatchRequest{Session: res.Session, IntervalMs: 20}})
	if _, err := conn.Write(appendFrame(nil, frame{Stream: 3, Payload: watchReq})); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(r); err != nil {
		t.Fatal(err)
	}
	// Cancel the watch, then prove the connection still answers: a fresh
	// stats stream completes with a FIN frame.
	if _, err := conn.Write(appendFrame(nil, frame{Stream: 3, Flags: flagCancel})); err != nil {
		t.Fatal(err)
	}
	// Cancels of unknown ids are ignored, not errors.
	if _, err := conn.Write(appendFrame(nil, frame{Stream: 999, Flags: flagCancel})); err != nil {
		t.Fatal(err)
	}
	statsReq, _ := encodeEnvelope(Envelope{Type: MsgStats})
	if _, err := conn.Write(appendFrame(nil, frame{Stream: 4, Payload: statsReq})); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		f, err := readFrame(r)
		if err != nil {
			t.Fatalf("connection died after cancel: %v", err)
		}
		if f.Stream == 4 {
			env, derr := decodeEnvelope(f.Payload)
			if derr != nil || env.Type != MsgStatsInfo {
				t.Fatalf("stats answer = %+v %v", env, derr)
			}
			if f.Flags&flagFIN == 0 {
				t.Error("unary response missing FIN")
			}
			return
		}
	}
	t.Fatal("stats stream never answered after cancel")
}

// TestMalformedFirstLineStillAnswered: the lone-"{" crasher analogue on a
// fresh connection — the codec-sniffing first-message path must answer and
// close, exactly like the legacy line loop did.
func TestMalformedFirstLineStillAnswered(t *testing.T) {
	h := newHarness(t)
	conn, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte("{\n")); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	line, err := r.ReadBytes('\n')
	if err != nil {
		t.Fatalf("no answer to malformed first line: %v", err)
	}
	env, err := readEnvelopeLine(line)
	if err != nil || env.Type != MsgError {
		t.Fatalf("answer = %v %v, want MsgError", env, err)
	}
	if _, err := r.ReadBytes('\n'); err == nil {
		t.Error("connection stayed open after malformed input")
	}
}

var _ = core.SessionID(0) // keep the import stable across edits
