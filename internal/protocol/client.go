package protocol

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"qosneg/internal/client"
	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/profile"
	"qosneg/internal/shard"
	"qosneg/internal/telemetry"
)

// ErrClientClosed is returned for RPCs on a closed client.
var ErrClientClosed = errors.New("protocol: client closed")

// errConnBroken reports that the connection died under a concurrent caller
// before this RPC's exchange started.
var errConnBroken = errors.New("protocol: connection broken")

// RetryPolicy tunes the client's self-healing: how often a broken
// connection is redialed and idempotent RPCs retried, with capped
// exponential backoff plus jitter between attempts. The zero value selects
// the defaults below.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per idempotent RPC
	// (default 4). 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 50ms);
	// each further retry doubles it up to MaxDelay (default 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter is the random fraction added to each backoff, in [0, Jitter)
	// of the delay (default 0.2).
	Jitter float64
}

// DefaultRetryPolicy returns the policy Dial uses: 4 attempts, 50ms base
// delay doubling to a 2s cap, 20% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: 0.2}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.Jitter <= 0 {
		p.Jitter = d.Jitter
	}
	return p
}

// backoff returns the delay before retry number n (0-based), capped
// exponential with jitter.
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.BaseDelay
	for i := 0; i < n && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d + time.Duration(p.Jitter*rand.Float64()*float64(d))
}

// ClientOption configures Dial and NewClient.
type ClientOption func(*Client)

// WithWire sets the client's codec preference and stream cap; the zero
// value offers binary-then-JSON with the default cap.
func WithWire(w WireOptions) ClientOption {
	return func(c *Client) { c.wire = w }
}

// Client is the profile-manager side of the wire protocol: it connects to a
// negotiation daemon and performs negotiate/confirm/reject rounds. It is
// safe for concurrent use.
//
// On the binary codec (the default when the daemon speaks it) concurrent
// RPCs are multiplexed over one connection on per-request stream ids, a
// Watch is a server-push stream that does not block other calls, and
// canceling a call only abandons its stream — the connection stays healthy.
// On the JSON fallback codec requests are serialized one at a time and
// cancellation is implemented by poisoning the connection's deadline: a
// canceled in-flight call returns the context's error and marks the
// connection broken.
//
// Every RPC takes a context as its first argument; the legacy *Context
// method names remain as deprecated aliases.
//
// Clients built by Dial self-heal: a broken connection is automatically
// redialed with capped exponential backoff, and read-only RPCs (Session,
// ListDocuments, ListSessions, Stats, Invoice, ServerLoads, Metrics) are
// retried on the fresh connection. State-changing RPCs (Negotiate,
// Renegotiate, BatchNegotiate, Confirm, Reject) are never retried — a lost
// response could mean the daemon already committed resources — but they do
// get a fresh dial when the connection is already known broken before the
// attempt. Clients built by NewClient have no address to redial and fail
// fast instead.
type Client struct {
	addr  string
	retry RetryPolicy
	wire  WireOptions

	mu      sync.Mutex
	cc      *clientConn
	pending net.Conn // from NewClient; handshake deferred to first use
	closed  bool
	dialed  bool // a connection has been established at least once
	redials int

	// Telemetry, installed by Instrument; nil when uninstrumented.
	rpcSeconds  *telemetry.HistogramFamily
	rpcErrors   *telemetry.CounterFamily
	redialCtr   *telemetry.Counter
	connCtr     *telemetry.CounterFamily
	streamGauge *telemetry.Gauge
	tracer      telemetry.Tracer
}

// Instrument wires the client into a telemetry registry (per-RPC latency
// histograms and error counters by message type, a redial counter, a
// per-codec connection counter and a live-stream gauge) and an optional
// tracer that receives a StepRedial span per successful reconnect. Both
// arguments may be nil.
func (c *Client) Instrument(reg *telemetry.Registry, tr telemetry.Tracer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if reg != nil {
		c.rpcSeconds = reg.HistogramFamily("qosneg_rpc_client_seconds",
			"Client-side RPC latency by message type, including retries.", "type", telemetry.LatencyBuckets)
		c.rpcErrors = reg.CounterFamily("qosneg_rpc_client_errors_total",
			"Client RPCs that ultimately failed, by message type.", "type")
		c.redialCtr = reg.Counter("qosneg_client_redials_total",
			"Successful reconnects to the daemon.")
		c.connCtr = reg.CounterFamily("qosneg_client_connections_total",
			"Connections established, by negotiated codec.", "codec")
		c.streamGauge = reg.Gauge("qosneg_client_streams",
			"Currently open client-side streams on multiplexed connections.")
	}
	c.tracer = tr
}

// Dial connects to a negotiation daemon with the default retry policy.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	return DialContext(context.Background(), addr, opts...)
}

// DialContext connects to a negotiation daemon with the default retry
// policy, abandoning the attempt when ctx is canceled.
func DialContext(ctx context.Context, addr string, opts ...ClientOption) (*Client, error) {
	return DialRetry(ctx, addr, DefaultRetryPolicy(), opts...)
}

// DialRetry connects to a negotiation daemon with an explicit retry
// policy. The initial dial — including the codec handshake — is a single
// attempt, so a daemon that is down now fails fast; the policy governs
// redials and idempotent-RPC retries afterward.
func DialRetry(ctx context.Context, addr string, policy RetryPolicy, opts ...ClientOption) (*Client, error) {
	c := &Client{addr: addr, retry: policy}
	for _, o := range opts {
		o(c)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.connectLocked(ctx); err != nil {
		return nil, err
	}
	return c, nil
}

// NewClient wraps an established connection; the codec handshake runs on
// first use. Having no address, the client cannot redial: a broken
// connection stays broken.
func NewClient(conn net.Conn, opts ...ClientOption) *Client {
	c := &Client{pending: conn}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Close closes the connection; subsequent RPCs return ErrClientClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	cc, pending := c.cc, c.pending
	c.cc, c.pending = nil, nil
	c.mu.Unlock()
	if pending != nil {
		pending.Close()
	}
	if cc != nil {
		cc.close(ErrClientClosed)
	}
	return nil
}

// Redials reports how many times the client reconnected.
func (c *Client) Redials() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.redials
}

// Codec reports the negotiated codec of the live connection, or "" when no
// connection is up.
func (c *Client) Codec() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cc == nil {
		return ""
	}
	return c.cc.codec
}

// grab returns a healthy connection, dialing or handshaking one if needed.
// Dialing happens under c.mu so concurrent callers share one attempt.
func (c *Client) grab(ctx context.Context) (*clientConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClientClosed
	}
	if c.cc != nil && !c.cc.isBroken() {
		return c.cc, nil
	}
	return c.connectLocked(ctx)
}

// connectLocked establishes a fresh connection; the caller holds c.mu.
func (c *Client) connectLocked(ctx context.Context) (*clientConn, error) {
	if c.cc != nil {
		c.cc.close(errConnBroken)
		c.cc = nil
	}
	var nc net.Conn
	switch {
	case c.pending != nil:
		nc, c.pending = c.pending, nil
	case c.addr != "":
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", c.addr)
		if err != nil {
			if !c.dialed {
				return nil, err
			}
			return nil, fmt.Errorf("protocol: redial %s: %w", c.addr, err)
		}
		nc = conn
	default:
		return nil, fmt.Errorf("protocol: connection broken and not redialable (built by NewClient)")
	}
	cc, err := c.handshake(ctx, nc)
	if err != nil {
		nc.Close()
		return nil, err
	}
	c.cc = cc
	c.connCtr.With(cc.codec).Inc()
	if c.dialed {
		c.redials++
		c.redialCtr.Inc()
		if c.tracer != nil {
			c.tracer.Trace(telemetry.Event{Step: telemetry.StepRedial, Server: c.addr})
		}
	}
	c.dialed = true
	return cc, nil
}

// handshake runs codec negotiation on a fresh connection. A client
// configured as JSON-only skips it entirely (legacy behaviour, byte for
// byte). Otherwise it sends MsgHello and adopts the server's choice; a
// legacy server answers MsgError, which selects the JSON fallback when the
// preference list allows it.
func (c *Client) handshake(ctx context.Context, nc net.Conn) (*clientConn, error) {
	cc := &clientConn{owner: c, nc: nc, r: bufio.NewReader(nc)}
	prefs := c.wire.codecs()
	if len(prefs) == 1 && prefs[0] == CodecJSON {
		cc.codec = CodecJSON
		return cc, nil
	}
	stop, done := cc.arm(ctx)
	hello := Envelope{Type: MsgHello, Payload: &HelloRequest{Codecs: prefs, MaxStreams: c.wire.maxStreams()}}
	sendErr := cc.writeLine(hello)
	var resp Envelope
	var recvErr error
	if sendErr == nil {
		resp, recvErr = cc.readLine()
	}
	if !stop() {
		<-done
		if sendErr == nil && recvErr == nil {
			nc.SetDeadline(time.Time{})
		}
	}
	if sendErr != nil {
		return nil, fmt.Errorf("protocol: handshake send: %w", sendErr)
	}
	if recvErr != nil {
		return nil, c.finishCtx(ctx, fmt.Errorf("protocol: handshake receive: %w", recvErr))
	}
	streams := c.wire.maxStreams()
	switch p := resp.Payload.(type) {
	case *HelloAck:
		if !c.wire.supports(p.Codec) {
			return nil, fmt.Errorf("protocol: server chose unsupported codec %q", p.Codec)
		}
		cc.codec = p.Codec
		if p.MaxStreams > 0 && p.MaxStreams < streams {
			streams = p.MaxStreams
		}
	case *ErrorPayload:
		// A server that predates the handshake: fall back to plain JSON if
		// the preference list allows it.
		if !c.wire.supports(CodecJSON) {
			return nil, fmt.Errorf("protocol: server does not speak %v: %s", prefs, p.Error)
		}
		cc.codec = CodecJSON
	default:
		return nil, fmt.Errorf("protocol: unexpected handshake response %q", resp.Type)
	}
	if cc.codec == CodecBinary {
		cc.sem = make(chan struct{}, streams)
		cc.streams = make(map[uint32]*clientStream)
		cc.closedCh = make(chan struct{})
		cc.fw = newFrameWriter(nc, func(error) { nc.Close() })
		go cc.readLoop()
	}
	return cc, nil
}

func (c *Client) finishCtx(ctx context.Context, err error) error {
	if err != nil && ctx.Err() != nil {
		return fmt.Errorf("protocol: %w", ctx.Err())
	}
	return err
}

// drop retires a connection the caller found broken.
func (c *Client) drop(cc *clientConn) {
	c.mu.Lock()
	if c.cc == cc {
		c.cc = nil
	}
	c.mu.Unlock()
	cc.close(errConnBroken)
}

// roundTrip performs one RPC. Idempotent RPCs are retried across redials
// per the retry policy; non-idempotent ones get at most a fresh dial (when
// the connection was already broken) and a single exchange.
func (c *Client) roundTrip(ctx context.Context, env Envelope, idempotent bool) (Envelope, error) {
	if c.rpcSeconds != nil {
		begin := time.Now()
		defer func() { c.rpcSeconds.With(string(env.Type)).Observe(time.Since(begin)) }()
	}
	resp, err := c.roundTripRetry(ctx, env, idempotent)
	if err != nil {
		c.rpcErrors.With(string(env.Type)).Inc()
	}
	return resp, err
}

func (c *Client) roundTripRetry(ctx context.Context, env Envelope, idempotent bool) (Envelope, error) {
	policy := c.retry.withDefaults()
	attempts := 1
	if idempotent && c.addr != "" {
		attempts = policy.MaxAttempts
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return Envelope{}, fmt.Errorf("protocol: %w", err)
		}
		if attempt > 0 {
			if err := sleepCtx(ctx, policy.backoff(attempt-1)); err != nil {
				return Envelope{}, fmt.Errorf("protocol: %w", err)
			}
		}
		cc, err := c.grab(ctx)
		if err != nil {
			if errors.Is(err, ErrClientClosed) || c.addr == "" {
				return Envelope{}, err
			}
			lastErr = err
			if !idempotent {
				break
			}
			continue
		}
		resp, err := cc.exchange(ctx, env)
		if err == nil || !cc.isBroken() {
			// Success, or a server-reported error / cancellation on a
			// healthy connection: nothing to heal.
			return resp, err
		}
		c.drop(cc)
		lastErr = err
		if !idempotent {
			break
		}
	}
	return Envelope{}, lastErr
}

// sleepCtx sleeps for d or until ctx is canceled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// NegotiationResult is the client-side view of a negotiation outcome.
type NegotiationResult struct {
	Status       core.NegotiationStatus
	Offer        *profile.MMProfile
	Session      core.SessionID
	Cost         cost.Money
	ChoicePeriod time.Duration
	Violations   []string
	Reason       string
	// RetryAfter is the daemon's retry hint for FAILEDTRYLATER.
	RetryAfter time.Duration
	// Shed reports that the daemon's admission controller refused the
	// request before any reservation work — FAILEDTRYLATER by overload, not
	// by genuine resource exhaustion. RetryAfter carries the controller's
	// load-derived hint.
	Shed bool
}

func negotiationResult(p *ResultPayload) (NegotiationResult, error) {
	status, ok := ParseStatus(p.Status)
	if !ok {
		return NegotiationResult{}, fmt.Errorf("protocol: unknown status %q", p.Status)
	}
	return NegotiationResult{
		Status:       status,
		Offer:        p.Offer,
		Session:      p.Session,
		Cost:         p.Cost,
		ChoicePeriod: time.Duration(p.ChoicePeriodMs) * time.Millisecond,
		Violations:   p.Violations,
		Reason:       p.Reason,
		RetryAfter:   time.Duration(p.RetryAfterMs) * time.Millisecond,
		Shed:         p.Shed,
	}, nil
}

func resultEnvelope(resp Envelope) (NegotiationResult, error) {
	p, ok := resp.Payload.(*ResultPayload)
	if !ok {
		return NegotiationResult{}, fmt.Errorf("protocol: unexpected response %q", resp.Type)
	}
	return negotiationResult(p)
}

// Negotiate runs the negotiation procedure on the daemon.
func (c *Client) Negotiate(ctx context.Context, mach client.Machine, doc media.DocumentID, u profile.UserProfile) (NegotiationResult, error) {
	resp, err := c.roundTrip(ctx, Envelope{Type: MsgNegotiate, Payload: &NegotiateRequest{
		Machine:  &mach,
		Document: doc,
		Profile:  &u,
	}}, false)
	if err != nil {
		return NegotiationResult{}, err
	}
	return resultEnvelope(resp)
}

// NegotiateContext runs the negotiation procedure on the daemon.
//
// Deprecated: use Negotiate.
func (c *Client) NegotiateContext(ctx context.Context, mach client.Machine, doc media.DocumentID, u profile.UserProfile) (NegotiationResult, error) {
	return c.Negotiate(ctx, mach, doc, u)
}

// Renegotiate re-runs the negotiation for a reserved session with a
// modified profile.
func (c *Client) Renegotiate(ctx context.Context, id core.SessionID, u profile.UserProfile) (NegotiationResult, error) {
	resp, err := c.roundTrip(ctx, Envelope{Type: MsgRenegotiate, Payload: &RenegotiateRequest{Profile: &u, Session: id}}, false)
	if err != nil {
		return NegotiationResult{}, err
	}
	return resultEnvelope(resp)
}

// RenegotiateContext re-runs the negotiation for a reserved session.
//
// Deprecated: use Renegotiate.
func (c *Client) RenegotiateContext(ctx context.Context, id core.SessionID, u profile.UserProfile) (NegotiationResult, error) {
	return c.Renegotiate(ctx, id, u)
}

// BatchResult is one item's outcome of a BatchNegotiate: either Err or an
// embedded negotiation result.
type BatchResult struct {
	Err error
	NegotiationResult
}

// BatchNegotiate negotiates a list of (machine, document, profile) triples
// — a playlist, or the monomedia of a composite document — in a single
// round trip. The daemon fans the items out concurrently; item i of the
// returned slice answers items[i], and one failed item does not fail its
// siblings. Like Negotiate, the call is never retried across a broken
// connection.
func (c *Client) BatchNegotiate(ctx context.Context, items []BatchItem) ([]BatchResult, error) {
	req := &BatchNegotiateRequest{Items: items}
	// Propagate the caller's deadline so the server bounds each item's
	// negotiation independently instead of only the whole batch.
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.TimeoutMs = ms
		}
	}
	resp, err := c.roundTrip(ctx, Envelope{Type: MsgBatchNegotiate, Payload: req}, false)
	if err != nil {
		return nil, err
	}
	p, ok := resp.Payload.(*BatchResultPayload)
	if !ok {
		return nil, fmt.Errorf("protocol: unexpected response %q", resp.Type)
	}
	if len(p.Items) != len(items) {
		return nil, fmt.Errorf("protocol: batch answered %d of %d items", len(p.Items), len(items))
	}
	out := make([]BatchResult, len(p.Items))
	for i := range p.Items {
		if p.Items[i].Error != "" {
			out[i].Err = fmt.Errorf("protocol: server error: %s", p.Items[i].Error)
			continue
		}
		res, err := negotiationResult(&p.Items[i].ResultPayload)
		if err != nil {
			out[i].Err = err
			continue
		}
		out[i].NegotiationResult = res
	}
	return out, nil
}

// Confirm accepts a reserved offer.
func (c *Client) Confirm(ctx context.Context, id core.SessionID) error {
	_, err := c.roundTrip(ctx, Envelope{Type: MsgConfirm, Payload: &SessionRequest{Session: id}}, false)
	return err
}

// ConfirmContext accepts a reserved offer.
//
// Deprecated: use Confirm.
func (c *Client) ConfirmContext(ctx context.Context, id core.SessionID) error {
	return c.Confirm(ctx, id)
}

// Reject declines a reserved offer, releasing its resources.
func (c *Client) Reject(ctx context.Context, id core.SessionID) error {
	_, err := c.roundTrip(ctx, Envelope{Type: MsgReject, Payload: &SessionRequest{Session: id}}, false)
	return err
}

// RejectContext declines a reserved offer, releasing its resources.
//
// Deprecated: use Reject.
func (c *Client) RejectContext(ctx context.Context, id core.SessionID) error {
	return c.Reject(ctx, id)
}

// SessionInfo is the client-side view of a session's state.
type SessionInfo struct {
	Session     core.SessionID
	State       string
	Position    time.Duration
	Transitions int
	Cost        cost.Money
}

func sessionInfo(p *SessionInfoPayload) SessionInfo {
	return SessionInfo{
		Session:     p.Session,
		State:       p.State,
		Position:    time.Duration(p.PositionMs) * time.Millisecond,
		Transitions: p.Transitions,
		Cost:        p.Cost,
	}
}

// Session queries a session's state.
func (c *Client) Session(ctx context.Context, id core.SessionID) (SessionInfo, error) {
	resp, err := c.roundTrip(ctx, Envelope{Type: MsgSession, Payload: &SessionRequest{Session: id}}, true)
	if err != nil {
		return SessionInfo{}, err
	}
	p, ok := resp.Payload.(*SessionInfoPayload)
	if !ok {
		return SessionInfo{}, fmt.Errorf("protocol: unexpected response %q", resp.Type)
	}
	return sessionInfo(p), nil
}

// SessionContext queries a session's state.
//
// Deprecated: use Session.
func (c *Client) SessionContext(ctx context.Context, id core.SessionID) (SessionInfo, error) {
	return c.Session(ctx, id)
}

// Watch streams session updates until the session completes or aborts,
// calling fn for every state or transition change. On a multiplexed
// connection the watch runs on its own stream: other RPCs on this client
// proceed concurrently, and canceling ctx ends just the watch — the
// connection stays usable. On the JSON fallback the watch occupies the
// connection until the final update, and a cancellation breaks the
// connection (the next RPC redials). A non-positive interval selects the
// server default.
func (c *Client) Watch(ctx context.Context, id core.SessionID, interval time.Duration, fn func(SessionInfo)) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("protocol: %w", err)
	}
	cc, err := c.grab(ctx)
	if err != nil {
		return err
	}
	req := Envelope{Type: MsgWatch, Payload: &WatchRequest{Session: id, IntervalMs: interval.Milliseconds()}}
	if cc.codec == CodecBinary {
		return cc.watchBinary(ctx, req, fn)
	}
	return cc.watchJSON(ctx, req, fn)
}

// WatchContext streams session updates until the session completes.
//
// Deprecated: use Watch.
func (c *Client) WatchContext(ctx context.Context, id core.SessionID, interval time.Duration, fn func(SessionInfo)) error {
	return c.Watch(ctx, id, interval, fn)
}

// ListDocuments lists the daemon's catalog, optionally filtered by a title
// substring.
func (c *Client) ListDocuments(ctx context.Context, query string) ([]DocumentSummary, error) {
	resp, err := c.roundTrip(ctx, Envelope{Type: MsgListDocuments, Payload: &ListDocumentsRequest{Query: query}}, true)
	if err != nil {
		return nil, err
	}
	p, ok := resp.Payload.(*DocumentsPayload)
	if !ok {
		return nil, fmt.Errorf("protocol: unexpected response %q", resp.Type)
	}
	return p.Documents, nil
}

// ListDocumentsContext lists the daemon's catalog.
//
// Deprecated: use ListDocuments.
func (c *Client) ListDocumentsContext(ctx context.Context, query string) ([]DocumentSummary, error) {
	return c.ListDocuments(ctx, query)
}

// ListSessions lists the daemon's sessions, ordered by id.
func (c *Client) ListSessions(ctx context.Context) ([]SessionSummary, error) {
	resp, err := c.roundTrip(ctx, Envelope{Type: MsgListSessions}, true)
	if err != nil {
		return nil, err
	}
	p, ok := resp.Payload.(*SessionsPayload)
	if !ok {
		return nil, fmt.Errorf("protocol: unexpected response %q", resp.Type)
	}
	return p.Sessions, nil
}

// ListSessionsContext lists the daemon's sessions, ordered by id.
//
// Deprecated: use ListSessions.
func (c *Client) ListSessionsContext(ctx context.Context) ([]SessionSummary, error) {
	return c.ListSessions(ctx)
}

// Invoice fetches a session's itemized bill.
func (c *Client) Invoice(ctx context.Context, id core.SessionID) (cost.Invoice, error) {
	resp, err := c.roundTrip(ctx, Envelope{Type: MsgInvoice, Payload: &SessionRequest{Session: id}}, true)
	if err != nil {
		return cost.Invoice{}, err
	}
	p, ok := resp.Payload.(*InvoicePayload)
	if !ok || p.Invoice == nil {
		return cost.Invoice{}, fmt.Errorf("protocol: empty invoice response")
	}
	return *p.Invoice, nil
}

// InvoiceContext fetches a session's itemized bill.
//
// Deprecated: use Invoice.
func (c *Client) InvoiceContext(ctx context.Context, id core.SessionID) (cost.Invoice, error) {
	return c.Invoice(ctx, id)
}

// ServerLoads fetches the media servers' current load.
func (c *Client) ServerLoads(ctx context.Context) ([]core.ServerLoad, error) {
	resp, err := c.roundTrip(ctx, Envelope{Type: MsgServerLoads}, true)
	if err != nil {
		return nil, err
	}
	p, ok := resp.Payload.(*ServerLoadsPayload)
	if !ok {
		return nil, fmt.Errorf("protocol: unexpected response %q", resp.Type)
	}
	return p.ServerLoads, nil
}

// ServerLoadsContext fetches the media servers' current load.
//
// Deprecated: use ServerLoads.
func (c *Client) ServerLoadsContext(ctx context.Context) ([]core.ServerLoad, error) {
	return c.ServerLoads(ctx)
}

// Stats fetches the daemon's outcome counters.
func (c *Client) Stats(ctx context.Context) (core.Stats, error) {
	resp, err := c.roundTrip(ctx, Envelope{Type: MsgStats}, true)
	if err != nil {
		return core.Stats{}, err
	}
	p, ok := resp.Payload.(*StatsInfoPayload)
	if !ok || p.Stats == nil {
		return core.Stats{}, fmt.Errorf("protocol: empty stats response")
	}
	return *p.Stats, nil
}

// StatsContext fetches the daemon's outcome counters.
//
// Deprecated: use Stats.
func (c *Client) StatsContext(ctx context.Context) (core.Stats, error) {
	return c.Stats(ctx)
}

// ShardStats fetches the per-shard breakdown of a daemon fronting a sharded
// manager fleet: session counts, outcome counters, breaker states and update
// bus lag per shard. A single-manager daemon answers with no rows.
func (c *Client) ShardStats(ctx context.Context) ([]shard.Stat, error) {
	resp, err := c.roundTrip(ctx, Envelope{Type: MsgStats}, true)
	if err != nil {
		return nil, err
	}
	p, ok := resp.Payload.(*StatsInfoPayload)
	if !ok {
		return nil, fmt.Errorf("protocol: empty stats response")
	}
	return p.Shards, nil
}

// Metrics fetches the daemon's telemetry snapshot: every counter, gauge and
// latency histogram the daemon records. A daemon running without telemetry
// answers with an empty snapshot.
func (c *Client) Metrics(ctx context.Context) (telemetry.Snapshot, error) {
	resp, err := c.roundTrip(ctx, Envelope{Type: MsgMetrics}, true)
	if err != nil {
		return telemetry.Snapshot{}, err
	}
	p, ok := resp.Payload.(*MetricsPayload)
	if !ok || p.Metrics == nil {
		return telemetry.Snapshot{}, fmt.Errorf("protocol: empty metrics response")
	}
	return *p.Metrics, nil
}

// MetricsContext fetches the daemon's telemetry snapshot.
//
// Deprecated: use Metrics.
func (c *Client) MetricsContext(ctx context.Context) (telemetry.Snapshot, error) {
	return c.Metrics(ctx)
}

// clientStream receives the demultiplexed envelopes of one stream through
// an unbounded queue, so the connection's read loop never blocks on a slow
// or abandoned consumer.
type clientStream struct {
	mu  sync.Mutex
	q   []Envelope
	err error
	sig chan struct{}
}

func newClientStream() *clientStream {
	return &clientStream{sig: make(chan struct{}, 1)}
}

func (s *clientStream) signal() {
	select {
	case s.sig <- struct{}{}:
	default:
	}
}

func (s *clientStream) push(e Envelope) {
	s.mu.Lock()
	s.q = append(s.q, e)
	s.mu.Unlock()
	s.signal()
}

func (s *clientStream) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	s.signal()
}

// next returns the stream's next envelope, the stream's terminal error, or
// ctx's error — whichever comes first.
func (s *clientStream) next(ctx context.Context) (Envelope, error) {
	for {
		s.mu.Lock()
		if len(s.q) > 0 {
			e := s.q[0]
			s.q = s.q[1:]
			s.mu.Unlock()
			return e, nil
		}
		err := s.err
		s.mu.Unlock()
		if err != nil {
			return Envelope{}, err
		}
		select {
		case <-s.sig:
		case <-ctx.Done():
			return Envelope{}, ctx.Err()
		}
	}
}

// clientConn is one negotiated connection: either the serialized JSON
// fallback or the multiplexed binary codec.
type clientConn struct {
	owner *Client
	nc    net.Conn
	codec string
	r     *bufio.Reader

	broken atomic.Bool

	// JSON mode: one exchange at a time.
	jmu sync.Mutex

	// Binary mode.
	fw       *frameWriter
	sem      chan struct{}
	smu      sync.Mutex
	streams  map[uint32]*clientStream
	nextID   uint32
	connErr  error
	closedCh chan struct{}
	tonce    sync.Once
}

func (cc *clientConn) isBroken() bool { return cc.broken.Load() }

// close tears the connection down; every pending stream fails with err.
func (cc *clientConn) close(err error) {
	if cc.codec == CodecBinary {
		cc.teardown(err)
		return
	}
	cc.broken.Store(true)
	cc.nc.Close()
}

// teardown ends a binary connection once: pending streams fail, the writer
// stops, the socket closes.
func (cc *clientConn) teardown(err error) {
	cc.tonce.Do(func() {
		cc.broken.Store(true)
		cc.smu.Lock()
		cc.connErr = err
		streams := cc.streams
		cc.streams = nil
		close(cc.closedCh)
		cc.smu.Unlock()
		for _, st := range streams {
			st.fail(err)
		}
		cc.nc.Close()
		go cc.fw.stop()
	})
}

// readLoop demultiplexes binary frames to their streams until the
// connection dies.
func (cc *clientConn) readLoop() {
	for {
		f, err := readFrame(cc.r)
		if err != nil {
			cc.teardown(fmt.Errorf("protocol: receive: %w", err))
			return
		}
		if f.Flags&flagCancel != 0 {
			continue
		}
		env, err := decodeEnvelope(f.Payload)
		if err != nil {
			cc.teardown(fmt.Errorf("protocol: receive: %w", err))
			return
		}
		env.StreamID = f.Stream
		cc.smu.Lock()
		st := cc.streams[f.Stream]
		cc.smu.Unlock()
		if st != nil {
			// Responses to abandoned streams are dropped here instead:
			// the caller deregistered before leaving.
			st.push(env)
		}
	}
}

// openStream registers a fresh stream id; the caller must closeStream it.
func (cc *clientConn) openStream() (*clientStream, uint32, error) {
	cc.smu.Lock()
	defer cc.smu.Unlock()
	if cc.streams == nil {
		return nil, 0, cc.errLocked()
	}
	for {
		cc.nextID++
		if cc.nextID == 0 {
			cc.nextID = 1
		}
		if _, taken := cc.streams[cc.nextID]; !taken {
			break
		}
	}
	st := newClientStream()
	cc.streams[cc.nextID] = st
	return st, cc.nextID, nil
}

func (cc *clientConn) closeStream(id uint32) {
	cc.smu.Lock()
	if cc.streams != nil {
		delete(cc.streams, id)
	}
	cc.smu.Unlock()
}

func (cc *clientConn) errLocked() error {
	if cc.connErr != nil {
		return cc.connErr
	}
	return errConnBroken
}

// acquire takes a stream slot, bounded by the negotiated per-connection
// cap.
func (cc *clientConn) acquire(ctx context.Context) error {
	select {
	case cc.sem <- struct{}{}:
		return nil
	case <-cc.closedCh:
		cc.smu.Lock()
		defer cc.smu.Unlock()
		return cc.errLocked()
	case <-ctx.Done():
		return fmt.Errorf("protocol: %w", ctx.Err())
	}
}

func (cc *clientConn) release() { <-cc.sem }

// exchange performs one request/response on this connection, whichever
// codec it speaks.
func (cc *clientConn) exchange(ctx context.Context, env Envelope) (Envelope, error) {
	if cc.codec == CodecBinary {
		return cc.exchangeBinary(ctx, env)
	}
	return cc.exchangeJSON(ctx, env)
}

// exchangeBinary runs the RPC on its own stream. Cancellation abandons the
// stream with a best-effort cancel frame; the connection stays healthy.
func (cc *clientConn) exchangeBinary(ctx context.Context, env Envelope) (Envelope, error) {
	if err := cc.acquire(ctx); err != nil {
		return Envelope{}, err
	}
	defer cc.release()
	st, id, err := cc.openStream()
	if err != nil {
		return Envelope{}, err
	}
	defer cc.closeStream(id)
	cc.owner.streamGauge.Add(1)
	defer cc.owner.streamGauge.Add(-1)
	payload, err := encodeEnvelope(env)
	if err != nil {
		return Envelope{}, err
	}
	if err := cc.fw.send(frame{Stream: id, Payload: payload}); err != nil {
		cc.teardown(fmt.Errorf("protocol: send: %w", err))
		return Envelope{}, fmt.Errorf("protocol: send: %w", err)
	}
	resp, err := st.next(ctx)
	if err != nil {
		if ctx.Err() != nil && !cc.isBroken() {
			// Only this stream is abandoned; tell the server to stop.
			cc.fw.send(frame{Stream: id, Flags: flagCancel})
			return Envelope{}, fmt.Errorf("protocol: %w", ctx.Err())
		}
		return Envelope{}, err
	}
	if err := envelopeError(resp); err != nil {
		return resp, err
	}
	return resp, nil
}

// exchangeJSON performs one serialized request/response; concurrent callers
// queue on the connection. Transport failures and cancellations mark the
// connection broken, exactly as the legacy protocol behaved.
func (cc *clientConn) exchangeJSON(ctx context.Context, env Envelope) (Envelope, error) {
	cc.jmu.Lock()
	defer cc.jmu.Unlock()
	if cc.isBroken() {
		return Envelope{}, errConnBroken
	}
	stop, done := cc.arm(ctx)
	sendErr := cc.writeLine(env)
	var resp Envelope
	var recvErr error
	if sendErr == nil {
		resp, recvErr = cc.readLine()
	}
	if !stop() {
		// The AfterFunc fired. Wait for it, then clear the poisoned
		// deadline if the exchange actually completed first — otherwise
		// the stale past deadline would fail every later call on this
		// connection.
		<-done
		if sendErr == nil && recvErr == nil {
			cc.nc.SetDeadline(time.Time{})
		}
	}
	if sendErr != nil {
		cc.broken.Store(true)
		return Envelope{}, cc.owner.finishCtx(ctx, fmt.Errorf("protocol: send: %w", sendErr))
	}
	if recvErr != nil {
		cc.broken.Store(true)
		return Envelope{}, cc.owner.finishCtx(ctx, fmt.Errorf("protocol: receive: %w", recvErr))
	}
	if err := envelopeError(resp); err != nil {
		return resp, err
	}
	return resp, nil
}

// arm makes a ctx cancellation interrupt reads and writes on the
// connection by forcing its deadline into the past. The returned stop must
// be called when the call completes; when it reports false the caller must
// wait on done before touching the deadline again — the poisoning callback
// may still be mid-flight.
func (cc *clientConn) arm(ctx context.Context) (stop func() bool, done chan struct{}) {
	done = make(chan struct{})
	if ctx.Done() == nil {
		close(done)
		return func() bool { return true }, done
	}
	conn := cc.nc
	stop = context.AfterFunc(ctx, func() {
		conn.SetDeadline(time.Now())
		close(done)
	})
	return stop, done
}

func (cc *clientConn) writeLine(env Envelope) error {
	data, err := encodeEnvelope(env)
	if err != nil {
		return err
	}
	_, err = cc.nc.Write(append(data, '\n'))
	return err
}

func (cc *clientConn) readLine() (Envelope, error) {
	line, err := cc.r.ReadBytes('\n')
	if err != nil {
		return Envelope{}, err
	}
	return readEnvelopeLine(line)
}

// watchBinary consumes a server-push watch stream on its own stream id.
func (cc *clientConn) watchBinary(ctx context.Context, req Envelope, fn func(SessionInfo)) error {
	if err := cc.acquire(ctx); err != nil {
		return err
	}
	defer cc.release()
	st, id, err := cc.openStream()
	if err != nil {
		return err
	}
	defer cc.closeStream(id)
	cc.owner.streamGauge.Add(1)
	defer cc.owner.streamGauge.Add(-1)
	payload, err := encodeEnvelope(req)
	if err != nil {
		return err
	}
	if err := cc.fw.send(frame{Stream: id, Payload: payload}); err != nil {
		cc.teardown(fmt.Errorf("protocol: send: %w", err))
		return fmt.Errorf("protocol: send: %w", err)
	}
	for {
		resp, err := st.next(ctx)
		if err != nil {
			if ctx.Err() != nil && !cc.isBroken() {
				cc.fw.send(frame{Stream: id, Flags: flagCancel})
				return fmt.Errorf("protocol: %w", ctx.Err())
			}
			return err
		}
		if err := envelopeError(resp); err != nil {
			return err
		}
		p, ok := resp.Payload.(*SessionInfoPayload)
		if !ok {
			return fmt.Errorf("protocol: unexpected watch update %q", resp.Type)
		}
		fn(sessionInfo(p))
		if p.Final {
			return nil
		}
	}
}

// watchJSON consumes a watch stream on the serialized JSON codec; the
// connection is busy until the final update.
func (cc *clientConn) watchJSON(ctx context.Context, req Envelope, fn func(SessionInfo)) error {
	cc.jmu.Lock()
	defer cc.jmu.Unlock()
	if cc.isBroken() {
		return errConnBroken
	}
	stop, done := cc.arm(ctx)
	defer func() {
		if !stop() {
			<-done
			if !cc.isBroken() {
				cc.nc.SetDeadline(time.Time{})
			}
		}
	}()
	if err := cc.writeLine(req); err != nil {
		cc.broken.Store(true)
		return cc.owner.finishCtx(ctx, fmt.Errorf("protocol: send: %w", err))
	}
	for {
		resp, err := cc.readLine()
		if err != nil {
			cc.broken.Store(true)
			return cc.owner.finishCtx(ctx, fmt.Errorf("protocol: receive: %w", err))
		}
		if err := envelopeError(resp); err != nil {
			return err
		}
		p, ok := resp.Payload.(*SessionInfoPayload)
		if !ok {
			return fmt.Errorf("protocol: unexpected watch update %q", resp.Type)
		}
		fn(sessionInfo(p))
		if p.Final {
			return nil
		}
	}
}
