package protocol

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"qosneg/internal/client"
	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/profile"
	"qosneg/internal/telemetry"
)

// ErrClientClosed is returned for RPCs on a closed client.
var ErrClientClosed = errors.New("protocol: client closed")

// RetryPolicy tunes the client's self-healing: how often a broken
// connection is redialed and idempotent RPCs retried, with capped
// exponential backoff plus jitter between attempts. The zero value selects
// the defaults below.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per idempotent RPC
	// (default 4). 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 50ms);
	// each further retry doubles it up to MaxDelay (default 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter is the random fraction added to each backoff, in [0, Jitter)
	// of the delay (default 0.2).
	Jitter float64
}

// DefaultRetryPolicy returns the policy Dial uses: 4 attempts, 50ms base
// delay doubling to a 2s cap, 20% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: 0.2}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.Jitter <= 0 {
		p.Jitter = d.Jitter
	}
	return p
}

// backoff returns the delay before retry number n (0-based), capped
// exponential with jitter.
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.BaseDelay
	for i := 0; i < n && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d + time.Duration(p.Jitter*rand.Float64()*float64(d))
}

// Client is the profile-manager side of the wire protocol: it connects to a
// negotiation daemon and performs negotiate/confirm/reject rounds. It is
// safe for concurrent use; requests on one connection are serialized.
//
// Every RPC has a *Context form taking a context.Context. Because the
// protocol is a single stream of request/response pairs, cancellation is
// implemented by poisoning the connection's deadline; a canceled in-flight
// call returns the context's error and marks the connection broken.
//
// Clients built by Dial self-heal: a broken connection is automatically
// redialed with capped exponential backoff, and read-only RPCs (Session,
// ListDocuments, ListSessions, Stats, Invoice, ServerLoads) are retried on
// the fresh connection. State-changing RPCs (Negotiate, Renegotiate,
// Confirm, Reject) are never retried — a lost response could mean the
// daemon already committed resources — but they do get a fresh dial if the
// connection was already known broken before the attempt. Clients built by
// NewClient have no address to redial and fail fast instead.
type Client struct {
	mu     sync.Mutex
	addr   string
	retry  RetryPolicy
	conn   net.Conn
	enc    *json.Encoder
	dec    *json.Decoder
	broken bool
	closed bool
	// redials counts successful reconnects, for tests and diagnostics.
	redials int

	// Telemetry, installed by Instrument; nil when uninstrumented.
	rpcSeconds *telemetry.HistogramFamily
	rpcErrors  *telemetry.CounterFamily
	redialCtr  *telemetry.Counter
	tracer     telemetry.Tracer
}

// Instrument wires the client into a telemetry registry (per-RPC latency
// histograms and error counters by message type, a redial counter) and an
// optional tracer that receives a StepRedial span per successful reconnect.
// Both arguments may be nil.
func (c *Client) Instrument(reg *telemetry.Registry, tr telemetry.Tracer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if reg != nil {
		c.rpcSeconds = reg.HistogramFamily("qosneg_rpc_client_seconds",
			"Client-side RPC latency by message type, including retries.", "type", telemetry.LatencyBuckets)
		c.rpcErrors = reg.CounterFamily("qosneg_rpc_client_errors_total",
			"Client RPCs that ultimately failed, by message type.", "type")
		c.redialCtr = reg.Counter("qosneg_client_redials_total",
			"Successful reconnects to the daemon.")
	}
	c.tracer = tr
}

// Dial connects to a negotiation daemon with the default retry policy.
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr)
}

// DialContext connects to a negotiation daemon with the default retry
// policy, abandoning the attempt when ctx is canceled.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	return DialRetry(ctx, addr, DefaultRetryPolicy())
}

// DialRetry connects to a negotiation daemon with an explicit retry
// policy. The initial dial is a single attempt — a daemon that is down now
// fails fast — and the policy governs redials and idempotent-RPC retries
// afterward.
func DialRetry(ctx context.Context, addr string, policy RetryPolicy) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := NewClient(conn)
	c.addr = addr
	c.retry = policy
	return c, nil
}

// NewClient wraps an established connection. Having no address, the client
// cannot redial: a broken connection stays broken.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(conn)}
}

// Close closes the connection; subsequent RPCs return ErrClientClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}

// Redials reports how many times the client reconnected.
func (c *Client) Redials() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.redials
}

// ensureConnLocked makes sure a usable connection exists, redialing a
// broken one; the caller holds c.mu.
func (c *Client) ensureConnLocked(ctx context.Context) error {
	if c.closed {
		return ErrClientClosed
	}
	if c.conn != nil && !c.broken {
		return nil
	}
	if c.addr == "" {
		return fmt.Errorf("protocol: connection broken and not redialable (built by NewClient)")
	}
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return fmt.Errorf("protocol: redial %s: %w", c.addr, err)
	}
	c.conn, c.enc, c.dec = conn, json.NewEncoder(conn), json.NewDecoder(conn)
	c.broken = false
	c.redials++
	c.redialCtr.Inc()
	if c.tracer != nil {
		c.tracer.Trace(telemetry.Event{Step: telemetry.StepRedial, Server: c.addr})
	}
	return nil
}

// arm makes a ctx cancellation interrupt reads and writes on the
// connection by forcing its deadline into the past. The returned stop must
// be called when the call completes; when it reports false the caller must
// wait on done before touching the deadline again — the poisoning callback
// may still be mid-flight.
func (c *Client) arm(ctx context.Context) (stop func() bool, done chan struct{}) {
	done = make(chan struct{})
	if ctx.Done() == nil {
		close(done)
		return func() bool { return true }, done
	}
	conn := c.conn
	stop = context.AfterFunc(ctx, func() {
		conn.SetDeadline(time.Now())
		close(done)
	})
	return stop, done
}

func (c *Client) finish(ctx context.Context, err error) error {
	if err != nil && ctx.Err() != nil {
		return fmt.Errorf("protocol: %w", ctx.Err())
	}
	return err
}

// exchangeLocked performs one request/response on the current connection;
// the caller holds c.mu. Transport failures mark the connection broken.
func (c *Client) exchangeLocked(ctx context.Context, req Request) (Response, error) {
	stop, done := c.arm(ctx)
	sendErr := c.enc.Encode(req)
	var resp Response
	var recvErr error
	if sendErr == nil {
		recvErr = c.dec.Decode(&resp)
	}
	if !stop() {
		// The AfterFunc fired. Wait for it, then clear the poisoned
		// deadline if the exchange actually completed first — otherwise
		// the stale past deadline would fail every later call on this
		// connection.
		<-done
		if sendErr == nil && recvErr == nil {
			c.conn.SetDeadline(time.Time{})
		}
	}
	if sendErr != nil {
		c.broken = true
		return Response{}, c.finish(ctx, fmt.Errorf("protocol: send: %w", sendErr))
	}
	if recvErr != nil {
		c.broken = true
		return Response{}, c.finish(ctx, fmt.Errorf("protocol: receive: %w", recvErr))
	}
	if resp.Type == MsgError {
		return resp, fmt.Errorf("protocol: server error: %s", resp.Error)
	}
	return resp, nil
}

// roundTrip performs one RPC. Idempotent RPCs are retried across redials
// per the retry policy; non-idempotent ones get at most a fresh dial (when
// the connection was already broken) and a single exchange.
func (c *Client) roundTrip(ctx context.Context, req Request, idempotent bool) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rpcSeconds != nil {
		begin := time.Now()
		defer func() { c.rpcSeconds.With(string(req.Type)).Observe(time.Since(begin)) }()
	}
	resp, err := c.roundTripLocked(ctx, req, idempotent)
	if err != nil {
		c.rpcErrors.With(string(req.Type)).Inc()
	}
	return resp, err
}

// roundTripLocked is roundTrip's retry loop; the caller holds c.mu.
func (c *Client) roundTripLocked(ctx context.Context, req Request, idempotent bool) (Response, error) {
	policy := c.retry.withDefaults()
	attempts := 1
	if idempotent && c.addr != "" {
		attempts = policy.MaxAttempts
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return Response{}, fmt.Errorf("protocol: %w", err)
		}
		if attempt > 0 {
			if err := sleepCtx(ctx, policy.backoff(attempt-1)); err != nil {
				return Response{}, fmt.Errorf("protocol: %w", err)
			}
		}
		if err := c.ensureConnLocked(ctx); err != nil {
			if errors.Is(err, ErrClientClosed) || c.addr == "" {
				return Response{}, err
			}
			lastErr = err
			if !idempotent {
				break
			}
			continue
		}
		resp, err := c.exchangeLocked(ctx, req)
		if err == nil || !c.broken {
			// Success, or a server-reported error: the connection is
			// fine, nothing to heal.
			return resp, err
		}
		lastErr = err
		if !idempotent {
			break
		}
	}
	return Response{}, lastErr
}

// sleepCtx sleeps for d or until ctx is canceled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// NegotiationResult is the client-side view of a negotiation outcome.
type NegotiationResult struct {
	Status       core.NegotiationStatus
	Offer        *profile.MMProfile
	Session      core.SessionID
	Cost         cost.Money
	ChoicePeriod time.Duration
	Violations   []string
	Reason       string
	// RetryAfter is the daemon's retry hint for FAILEDTRYLATER.
	RetryAfter time.Duration
}

func negotiationResult(resp Response) (NegotiationResult, error) {
	status, ok := ParseStatus(resp.Status)
	if !ok {
		return NegotiationResult{}, fmt.Errorf("protocol: unknown status %q", resp.Status)
	}
	return NegotiationResult{
		Status:       status,
		Offer:        resp.Offer,
		Session:      resp.Session,
		Cost:         resp.Cost,
		ChoicePeriod: time.Duration(resp.ChoicePeriodMs) * time.Millisecond,
		Violations:   resp.Violations,
		Reason:       resp.Reason,
		RetryAfter:   time.Duration(resp.RetryAfterMs) * time.Millisecond,
	}, nil
}

// Negotiate runs the negotiation procedure on the daemon.
//
// Deprecated: use NegotiateContext.
func (c *Client) Negotiate(mach client.Machine, doc media.DocumentID, u profile.UserProfile) (NegotiationResult, error) {
	return c.NegotiateContext(context.Background(), mach, doc, u)
}

// NegotiateContext runs the negotiation procedure on the daemon.
func (c *Client) NegotiateContext(ctx context.Context, mach client.Machine, doc media.DocumentID, u profile.UserProfile) (NegotiationResult, error) {
	resp, err := c.roundTrip(ctx, Request{
		Type:     MsgNegotiate,
		Machine:  &mach,
		Document: doc,
		Profile:  &u,
	}, false)
	if err != nil {
		return NegotiationResult{}, err
	}
	return negotiationResult(resp)
}

// Renegotiate re-runs the negotiation for a reserved session with a
// modified profile.
//
// Deprecated: use RenegotiateContext.
func (c *Client) Renegotiate(id core.SessionID, u profile.UserProfile) (NegotiationResult, error) {
	return c.RenegotiateContext(context.Background(), id, u)
}

// RenegotiateContext re-runs the negotiation for a reserved session with a
// modified profile.
func (c *Client) RenegotiateContext(ctx context.Context, id core.SessionID, u profile.UserProfile) (NegotiationResult, error) {
	resp, err := c.roundTrip(ctx, Request{Type: MsgRenegotiate, Session: id, Profile: &u}, false)
	if err != nil {
		return NegotiationResult{}, err
	}
	return negotiationResult(resp)
}

// Confirm accepts a reserved offer.
//
// Deprecated: use ConfirmContext.
func (c *Client) Confirm(id core.SessionID) error {
	return c.ConfirmContext(context.Background(), id)
}

// ConfirmContext accepts a reserved offer.
func (c *Client) ConfirmContext(ctx context.Context, id core.SessionID) error {
	_, err := c.roundTrip(ctx, Request{Type: MsgConfirm, Session: id}, false)
	return err
}

// Reject declines a reserved offer, releasing its resources.
//
// Deprecated: use RejectContext.
func (c *Client) Reject(id core.SessionID) error {
	return c.RejectContext(context.Background(), id)
}

// RejectContext declines a reserved offer, releasing its resources.
func (c *Client) RejectContext(ctx context.Context, id core.SessionID) error {
	_, err := c.roundTrip(ctx, Request{Type: MsgReject, Session: id}, false)
	return err
}

// SessionInfo is the client-side view of a session's state.
type SessionInfo struct {
	Session     core.SessionID
	State       string
	Position    time.Duration
	Transitions int
	Cost        cost.Money
}

func sessionInfo(resp Response) SessionInfo {
	return SessionInfo{
		Session:     resp.Session,
		State:       resp.State,
		Position:    time.Duration(resp.PositionMs) * time.Millisecond,
		Transitions: resp.Transitions,
		Cost:        resp.Cost,
	}
}

// Session queries a session's state.
//
// Deprecated: use SessionContext.
func (c *Client) Session(id core.SessionID) (SessionInfo, error) {
	return c.SessionContext(context.Background(), id)
}

// SessionContext queries a session's state.
func (c *Client) SessionContext(ctx context.Context, id core.SessionID) (SessionInfo, error) {
	resp, err := c.roundTrip(ctx, Request{Type: MsgSession, Session: id}, true)
	if err != nil {
		return SessionInfo{}, err
	}
	return sessionInfo(resp), nil
}

// Watch streams session updates over this connection until the session
// completes or aborts.
//
// Deprecated: use WatchContext.
func (c *Client) Watch(id core.SessionID, interval time.Duration, fn func(SessionInfo)) error {
	return c.WatchContext(context.Background(), id, interval, fn)
}

// WatchContext streams session updates over this connection until the
// session completes or aborts, calling fn for every state or transition
// change. The connection is busy for the duration; use a dedicated client.
// A negative or zero interval selects the server default. Canceling ctx
// ends the watch with the context's error; the watch itself is not
// resumed, but the client redials for the next RPC.
func (c *Client) WatchContext(ctx context.Context, id core.SessionID, interval time.Duration, fn func(SessionInfo)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("protocol: %w", err)
	}
	if err := c.ensureConnLocked(ctx); err != nil {
		return err
	}
	stop, done := c.arm(ctx)
	defer func() {
		if !stop() {
			<-done
			if !c.broken {
				c.conn.SetDeadline(time.Time{})
			}
		}
	}()
	if err := c.enc.Encode(Request{Type: MsgWatch, Session: id, IntervalMs: interval.Milliseconds()}); err != nil {
		c.broken = true
		return c.finish(ctx, fmt.Errorf("protocol: send: %w", err))
	}
	for {
		var resp Response
		if err := c.dec.Decode(&resp); err != nil {
			c.broken = true
			return c.finish(ctx, fmt.Errorf("protocol: receive: %w", err))
		}
		if resp.Type == MsgError {
			return fmt.Errorf("protocol: server error: %s", resp.Error)
		}
		fn(sessionInfo(resp))
		if resp.Final {
			return nil
		}
	}
}

// ListDocuments lists the daemon's catalog, optionally filtered by a title
// substring.
//
// Deprecated: use ListDocumentsContext.
func (c *Client) ListDocuments(query string) ([]DocumentSummary, error) {
	return c.ListDocumentsContext(context.Background(), query)
}

// ListDocumentsContext lists the daemon's catalog, optionally filtered by a
// title substring.
func (c *Client) ListDocumentsContext(ctx context.Context, query string) ([]DocumentSummary, error) {
	resp, err := c.roundTrip(ctx, Request{Type: MsgListDocuments, Query: query}, true)
	if err != nil {
		return nil, err
	}
	return resp.Documents, nil
}

// ListSessions lists the daemon's sessions, ordered by id.
//
// Deprecated: use ListSessionsContext.
func (c *Client) ListSessions() ([]SessionSummary, error) {
	return c.ListSessionsContext(context.Background())
}

// ListSessionsContext lists the daemon's sessions, ordered by id.
func (c *Client) ListSessionsContext(ctx context.Context) ([]SessionSummary, error) {
	resp, err := c.roundTrip(ctx, Request{Type: MsgListSessions}, true)
	if err != nil {
		return nil, err
	}
	return resp.Sessions, nil
}

// Invoice fetches a session's itemized bill.
//
// Deprecated: use InvoiceContext.
func (c *Client) Invoice(id core.SessionID) (cost.Invoice, error) {
	return c.InvoiceContext(context.Background(), id)
}

// InvoiceContext fetches a session's itemized bill.
func (c *Client) InvoiceContext(ctx context.Context, id core.SessionID) (cost.Invoice, error) {
	resp, err := c.roundTrip(ctx, Request{Type: MsgInvoice, Session: id}, true)
	if err != nil {
		return cost.Invoice{}, err
	}
	if resp.Invoice == nil {
		return cost.Invoice{}, fmt.Errorf("protocol: empty invoice response")
	}
	return *resp.Invoice, nil
}

// ServerLoads fetches the media servers' current load.
//
// Deprecated: use ServerLoadsContext.
func (c *Client) ServerLoads() ([]core.ServerLoad, error) {
	return c.ServerLoadsContext(context.Background())
}

// ServerLoadsContext fetches the media servers' current load.
func (c *Client) ServerLoadsContext(ctx context.Context) ([]core.ServerLoad, error) {
	resp, err := c.roundTrip(ctx, Request{Type: MsgServerLoads}, true)
	if err != nil {
		return nil, err
	}
	return resp.ServerLoads, nil
}

// Stats fetches the daemon's outcome counters.
//
// Deprecated: use StatsContext.
func (c *Client) Stats() (core.Stats, error) {
	return c.StatsContext(context.Background())
}

// StatsContext fetches the daemon's outcome counters.
func (c *Client) StatsContext(ctx context.Context) (core.Stats, error) {
	resp, err := c.roundTrip(ctx, Request{Type: MsgStats}, true)
	if err != nil {
		return core.Stats{}, err
	}
	if resp.Stats == nil {
		return core.Stats{}, fmt.Errorf("protocol: empty stats response")
	}
	return *resp.Stats, nil
}

// Metrics fetches the daemon's telemetry snapshot.
//
// Deprecated: use MetricsContext.
func (c *Client) Metrics() (telemetry.Snapshot, error) {
	return c.MetricsContext(context.Background())
}

// MetricsContext fetches the daemon's telemetry snapshot: every counter,
// gauge and latency histogram the daemon records. A daemon running without
// telemetry answers with an empty snapshot.
func (c *Client) MetricsContext(ctx context.Context) (telemetry.Snapshot, error) {
	resp, err := c.roundTrip(ctx, Request{Type: MsgMetrics}, true)
	if err != nil {
		return telemetry.Snapshot{}, err
	}
	if resp.Metrics == nil {
		return telemetry.Snapshot{}, fmt.Errorf("protocol: empty metrics response")
	}
	return *resp.Metrics, nil
}
