package protocol

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"qosneg/internal/client"
	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/profile"
)

// Client is the profile-manager side of the wire protocol: it connects to a
// negotiation daemon and performs negotiate/confirm/reject rounds. It is
// safe for concurrent use; requests on one connection are serialized.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// Dial connects to a negotiation daemon.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(conn)}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("protocol: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("protocol: receive: %w", err)
	}
	if resp.Type == MsgError {
		return resp, fmt.Errorf("protocol: server error: %s", resp.Error)
	}
	return resp, nil
}

// NegotiationResult is the client-side view of a negotiation outcome.
type NegotiationResult struct {
	Status       core.NegotiationStatus
	Offer        *profile.MMProfile
	Session      core.SessionID
	Cost         cost.Money
	ChoicePeriod time.Duration
	Violations   []string
	Reason       string
}

// Negotiate runs the negotiation procedure on the daemon.
func (c *Client) Negotiate(mach client.Machine, doc media.DocumentID, u profile.UserProfile) (NegotiationResult, error) {
	resp, err := c.roundTrip(Request{
		Type:     MsgNegotiate,
		Machine:  &mach,
		Document: doc,
		Profile:  &u,
	})
	if err != nil {
		return NegotiationResult{}, err
	}
	status, ok := ParseStatus(resp.Status)
	if !ok {
		return NegotiationResult{}, fmt.Errorf("protocol: unknown status %q", resp.Status)
	}
	return NegotiationResult{
		Status:       status,
		Offer:        resp.Offer,
		Session:      resp.Session,
		Cost:         resp.Cost,
		ChoicePeriod: time.Duration(resp.ChoicePeriodMs) * time.Millisecond,
		Violations:   resp.Violations,
		Reason:       resp.Reason,
	}, nil
}

// Renegotiate re-runs the negotiation for a reserved session with a
// modified profile.
func (c *Client) Renegotiate(id core.SessionID, u profile.UserProfile) (NegotiationResult, error) {
	resp, err := c.roundTrip(Request{Type: MsgRenegotiate, Session: id, Profile: &u})
	if err != nil {
		return NegotiationResult{}, err
	}
	status, ok := ParseStatus(resp.Status)
	if !ok {
		return NegotiationResult{}, fmt.Errorf("protocol: unknown status %q", resp.Status)
	}
	return NegotiationResult{
		Status:       status,
		Offer:        resp.Offer,
		Session:      resp.Session,
		Cost:         resp.Cost,
		ChoicePeriod: time.Duration(resp.ChoicePeriodMs) * time.Millisecond,
		Violations:   resp.Violations,
		Reason:       resp.Reason,
	}, nil
}

// Confirm accepts a reserved offer.
func (c *Client) Confirm(id core.SessionID) error {
	_, err := c.roundTrip(Request{Type: MsgConfirm, Session: id})
	return err
}

// Reject declines a reserved offer, releasing its resources.
func (c *Client) Reject(id core.SessionID) error {
	_, err := c.roundTrip(Request{Type: MsgReject, Session: id})
	return err
}

// SessionInfo is the client-side view of a session's state.
type SessionInfo struct {
	Session     core.SessionID
	State       string
	Position    time.Duration
	Transitions int
	Cost        cost.Money
}

// Session queries a session's state.
func (c *Client) Session(id core.SessionID) (SessionInfo, error) {
	resp, err := c.roundTrip(Request{Type: MsgSession, Session: id})
	if err != nil {
		return SessionInfo{}, err
	}
	return SessionInfo{
		Session:     resp.Session,
		State:       resp.State,
		Position:    time.Duration(resp.PositionMs) * time.Millisecond,
		Transitions: resp.Transitions,
		Cost:        resp.Cost,
	}, nil
}

// Watch streams session updates over this connection until the session
// completes or aborts, calling fn for every state or transition change. The
// connection is busy for the duration; use a dedicated client. A negative
// or zero interval selects the server default.
func (c *Client) Watch(id core.SessionID, interval time.Duration, fn func(SessionInfo)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(Request{Type: MsgWatch, Session: id, IntervalMs: interval.Milliseconds()}); err != nil {
		return fmt.Errorf("protocol: send: %w", err)
	}
	for {
		var resp Response
		if err := c.dec.Decode(&resp); err != nil {
			return fmt.Errorf("protocol: receive: %w", err)
		}
		if resp.Type == MsgError {
			return fmt.Errorf("protocol: server error: %s", resp.Error)
		}
		fn(SessionInfo{
			Session:     resp.Session,
			State:       resp.State,
			Position:    time.Duration(resp.PositionMs) * time.Millisecond,
			Transitions: resp.Transitions,
			Cost:        resp.Cost,
		})
		if resp.Final {
			return nil
		}
	}
}

// ListDocuments lists the daemon's catalog, optionally filtered by a title
// substring.
func (c *Client) ListDocuments(query string) ([]DocumentSummary, error) {
	resp, err := c.roundTrip(Request{Type: MsgListDocuments, Query: query})
	if err != nil {
		return nil, err
	}
	return resp.Documents, nil
}

// ListSessions lists the daemon's sessions, ordered by id.
func (c *Client) ListSessions() ([]SessionSummary, error) {
	resp, err := c.roundTrip(Request{Type: MsgListSessions})
	if err != nil {
		return nil, err
	}
	return resp.Sessions, nil
}

// Invoice fetches a session's itemized bill.
func (c *Client) Invoice(id core.SessionID) (cost.Invoice, error) {
	resp, err := c.roundTrip(Request{Type: MsgInvoice, Session: id})
	if err != nil {
		return cost.Invoice{}, err
	}
	if resp.Invoice == nil {
		return cost.Invoice{}, fmt.Errorf("protocol: empty invoice response")
	}
	return *resp.Invoice, nil
}

// ServerLoads fetches the media servers' current load.
func (c *Client) ServerLoads() ([]core.ServerLoad, error) {
	resp, err := c.roundTrip(Request{Type: MsgServerLoads})
	if err != nil {
		return nil, err
	}
	return resp.ServerLoads, nil
}

// Stats fetches the daemon's outcome counters.
func (c *Client) Stats() (core.Stats, error) {
	resp, err := c.roundTrip(Request{Type: MsgStats})
	if err != nil {
		return core.Stats{}, err
	}
	if resp.Stats == nil {
		return core.Stats{}, fmt.Errorf("protocol: empty stats response")
	}
	return *resp.Stats, nil
}
