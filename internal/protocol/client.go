package protocol

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"qosneg/internal/client"
	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/profile"
)

// Client is the profile-manager side of the wire protocol: it connects to a
// negotiation daemon and performs negotiate/confirm/reject rounds. It is
// safe for concurrent use; requests on one connection are serialized.
//
// Every RPC has a *Context form taking a context.Context. Because the
// protocol is a single stream of request/response pairs, cancellation is
// implemented by poisoning the connection's deadline: a canceled in-flight
// call returns the context's error and leaves the connection unusable —
// close the client and dial again.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// Dial connects to a negotiation daemon.
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr)
}

// DialContext connects to a negotiation daemon, abandoning the attempt when
// ctx is canceled.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(conn)}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// arm makes a ctx cancellation interrupt reads and writes on the
// connection by forcing its deadline into the past. The returned stop must
// be called when the call completes; finish maps an I/O error back to the
// context's error when the cancellation fired.
func (c *Client) arm(ctx context.Context) (stop func() bool) {
	if ctx.Done() == nil {
		return func() bool { return true }
	}
	return context.AfterFunc(ctx, func() {
		c.conn.SetDeadline(time.Now())
	})
}

func (c *Client) finish(ctx context.Context, err error) error {
	if err != nil && ctx.Err() != nil {
		return fmt.Errorf("protocol: %w", ctx.Err())
	}
	return err
}

func (c *Client) roundTrip(ctx context.Context, req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return Response{}, fmt.Errorf("protocol: %w", err)
	}
	defer c.arm(ctx)()
	if err := c.enc.Encode(req); err != nil {
		return Response{}, c.finish(ctx, fmt.Errorf("protocol: send: %w", err))
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, c.finish(ctx, fmt.Errorf("protocol: receive: %w", err))
	}
	if resp.Type == MsgError {
		return resp, fmt.Errorf("protocol: server error: %s", resp.Error)
	}
	return resp, nil
}

// NegotiationResult is the client-side view of a negotiation outcome.
type NegotiationResult struct {
	Status       core.NegotiationStatus
	Offer        *profile.MMProfile
	Session      core.SessionID
	Cost         cost.Money
	ChoicePeriod time.Duration
	Violations   []string
	Reason       string
}

func negotiationResult(resp Response) (NegotiationResult, error) {
	status, ok := ParseStatus(resp.Status)
	if !ok {
		return NegotiationResult{}, fmt.Errorf("protocol: unknown status %q", resp.Status)
	}
	return NegotiationResult{
		Status:       status,
		Offer:        resp.Offer,
		Session:      resp.Session,
		Cost:         resp.Cost,
		ChoicePeriod: time.Duration(resp.ChoicePeriodMs) * time.Millisecond,
		Violations:   resp.Violations,
		Reason:       resp.Reason,
	}, nil
}

// Negotiate runs the negotiation procedure on the daemon.
//
// Deprecated: use NegotiateContext.
func (c *Client) Negotiate(mach client.Machine, doc media.DocumentID, u profile.UserProfile) (NegotiationResult, error) {
	return c.NegotiateContext(context.Background(), mach, doc, u)
}

// NegotiateContext runs the negotiation procedure on the daemon.
func (c *Client) NegotiateContext(ctx context.Context, mach client.Machine, doc media.DocumentID, u profile.UserProfile) (NegotiationResult, error) {
	resp, err := c.roundTrip(ctx, Request{
		Type:     MsgNegotiate,
		Machine:  &mach,
		Document: doc,
		Profile:  &u,
	})
	if err != nil {
		return NegotiationResult{}, err
	}
	return negotiationResult(resp)
}

// Renegotiate re-runs the negotiation for a reserved session with a
// modified profile.
//
// Deprecated: use RenegotiateContext.
func (c *Client) Renegotiate(id core.SessionID, u profile.UserProfile) (NegotiationResult, error) {
	return c.RenegotiateContext(context.Background(), id, u)
}

// RenegotiateContext re-runs the negotiation for a reserved session with a
// modified profile.
func (c *Client) RenegotiateContext(ctx context.Context, id core.SessionID, u profile.UserProfile) (NegotiationResult, error) {
	resp, err := c.roundTrip(ctx, Request{Type: MsgRenegotiate, Session: id, Profile: &u})
	if err != nil {
		return NegotiationResult{}, err
	}
	return negotiationResult(resp)
}

// Confirm accepts a reserved offer.
//
// Deprecated: use ConfirmContext.
func (c *Client) Confirm(id core.SessionID) error {
	return c.ConfirmContext(context.Background(), id)
}

// ConfirmContext accepts a reserved offer.
func (c *Client) ConfirmContext(ctx context.Context, id core.SessionID) error {
	_, err := c.roundTrip(ctx, Request{Type: MsgConfirm, Session: id})
	return err
}

// Reject declines a reserved offer, releasing its resources.
//
// Deprecated: use RejectContext.
func (c *Client) Reject(id core.SessionID) error {
	return c.RejectContext(context.Background(), id)
}

// RejectContext declines a reserved offer, releasing its resources.
func (c *Client) RejectContext(ctx context.Context, id core.SessionID) error {
	_, err := c.roundTrip(ctx, Request{Type: MsgReject, Session: id})
	return err
}

// SessionInfo is the client-side view of a session's state.
type SessionInfo struct {
	Session     core.SessionID
	State       string
	Position    time.Duration
	Transitions int
	Cost        cost.Money
}

func sessionInfo(resp Response) SessionInfo {
	return SessionInfo{
		Session:     resp.Session,
		State:       resp.State,
		Position:    time.Duration(resp.PositionMs) * time.Millisecond,
		Transitions: resp.Transitions,
		Cost:        resp.Cost,
	}
}

// Session queries a session's state.
//
// Deprecated: use SessionContext.
func (c *Client) Session(id core.SessionID) (SessionInfo, error) {
	return c.SessionContext(context.Background(), id)
}

// SessionContext queries a session's state.
func (c *Client) SessionContext(ctx context.Context, id core.SessionID) (SessionInfo, error) {
	resp, err := c.roundTrip(ctx, Request{Type: MsgSession, Session: id})
	if err != nil {
		return SessionInfo{}, err
	}
	return sessionInfo(resp), nil
}

// Watch streams session updates over this connection until the session
// completes or aborts.
//
// Deprecated: use WatchContext.
func (c *Client) Watch(id core.SessionID, interval time.Duration, fn func(SessionInfo)) error {
	return c.WatchContext(context.Background(), id, interval, fn)
}

// WatchContext streams session updates over this connection until the
// session completes or aborts, calling fn for every state or transition
// change. The connection is busy for the duration; use a dedicated client.
// A negative or zero interval selects the server default. Canceling ctx
// ends the watch with the context's error (and poisons the connection, as
// for any canceled call).
func (c *Client) WatchContext(ctx context.Context, id core.SessionID, interval time.Duration, fn func(SessionInfo)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("protocol: %w", err)
	}
	defer c.arm(ctx)()
	if err := c.enc.Encode(Request{Type: MsgWatch, Session: id, IntervalMs: interval.Milliseconds()}); err != nil {
		return c.finish(ctx, fmt.Errorf("protocol: send: %w", err))
	}
	for {
		var resp Response
		if err := c.dec.Decode(&resp); err != nil {
			return c.finish(ctx, fmt.Errorf("protocol: receive: %w", err))
		}
		if resp.Type == MsgError {
			return fmt.Errorf("protocol: server error: %s", resp.Error)
		}
		fn(sessionInfo(resp))
		if resp.Final {
			return nil
		}
	}
}

// ListDocuments lists the daemon's catalog, optionally filtered by a title
// substring.
//
// Deprecated: use ListDocumentsContext.
func (c *Client) ListDocuments(query string) ([]DocumentSummary, error) {
	return c.ListDocumentsContext(context.Background(), query)
}

// ListDocumentsContext lists the daemon's catalog, optionally filtered by a
// title substring.
func (c *Client) ListDocumentsContext(ctx context.Context, query string) ([]DocumentSummary, error) {
	resp, err := c.roundTrip(ctx, Request{Type: MsgListDocuments, Query: query})
	if err != nil {
		return nil, err
	}
	return resp.Documents, nil
}

// ListSessions lists the daemon's sessions, ordered by id.
//
// Deprecated: use ListSessionsContext.
func (c *Client) ListSessions() ([]SessionSummary, error) {
	return c.ListSessionsContext(context.Background())
}

// ListSessionsContext lists the daemon's sessions, ordered by id.
func (c *Client) ListSessionsContext(ctx context.Context) ([]SessionSummary, error) {
	resp, err := c.roundTrip(ctx, Request{Type: MsgListSessions})
	if err != nil {
		return nil, err
	}
	return resp.Sessions, nil
}

// Invoice fetches a session's itemized bill.
//
// Deprecated: use InvoiceContext.
func (c *Client) Invoice(id core.SessionID) (cost.Invoice, error) {
	return c.InvoiceContext(context.Background(), id)
}

// InvoiceContext fetches a session's itemized bill.
func (c *Client) InvoiceContext(ctx context.Context, id core.SessionID) (cost.Invoice, error) {
	resp, err := c.roundTrip(ctx, Request{Type: MsgInvoice, Session: id})
	if err != nil {
		return cost.Invoice{}, err
	}
	if resp.Invoice == nil {
		return cost.Invoice{}, fmt.Errorf("protocol: empty invoice response")
	}
	return *resp.Invoice, nil
}

// ServerLoads fetches the media servers' current load.
//
// Deprecated: use ServerLoadsContext.
func (c *Client) ServerLoads() ([]core.ServerLoad, error) {
	return c.ServerLoadsContext(context.Background())
}

// ServerLoadsContext fetches the media servers' current load.
func (c *Client) ServerLoadsContext(ctx context.Context) ([]core.ServerLoad, error) {
	resp, err := c.roundTrip(ctx, Request{Type: MsgServerLoads})
	if err != nil {
		return nil, err
	}
	return resp.ServerLoads, nil
}

// Stats fetches the daemon's outcome counters.
//
// Deprecated: use StatsContext.
func (c *Client) Stats() (core.Stats, error) {
	return c.StatsContext(context.Background())
}

// StatsContext fetches the daemon's outcome counters.
func (c *Client) StatsContext(ctx context.Context) (core.Stats, error) {
	resp, err := c.roundTrip(ctx, Request{Type: MsgStats})
	if err != nil {
		return core.Stats{}, err
	}
	if resp.Stats == nil {
		return core.Stats{}, fmt.Errorf("protocol: empty stats response")
	}
	return *resp.Stats, nil
}
