package protocol

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"qosneg/internal/testbed"
)

// FuzzServerInput throws arbitrary bytes at a live protocol server: every
// line must produce either a JSON response or a clean connection close —
// never a hang or a crash.
func FuzzServerInput(f *testing.F) {
	bed := testbed.MustNew(testbed.Spec{})
	bed.AddNewsArticle("news-1", "T", time.Minute)
	srv := NewServer(bed.Manager, bed.Registry)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	go srv.Serve(l)
	f.Cleanup(func() {
		l.Close()
		srv.Close()
	})
	addr := l.Addr().String()

	f.Add(`{"type":"list-documents"}`)
	f.Add(`{"type":"negotiate"}`)
	f.Add(`{"type":"confirm","session":42}`)
	f.Add(`{"type":"dance"}`)
	f.Add(`not json at all`)
	f.Add(`{"type":"negotiate","machine":{"id":"x"},"document":"news-1","profile":{"name":"p"}}`)
	f.Add(`{"type":"watch","session":9999}`)
	f.Add(``)
	f.Add(`{"type":1234}`)

	f.Fuzz(func(t *testing.T, line string) {
		if strings.ContainsAny(line, "\n\r") {
			t.Skip("single-line inputs only")
		}
		if strings.TrimSpace(line) == "" {
			// Whitespace is not a JSON value; the streaming decoder
			// legitimately keeps waiting for one.
			t.Skip("whitespace-only input")
		}
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			t.Skip("dial failed")
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Write([]byte(line + "\n")); err != nil {
			return
		}
		// Either a response line arrives or the server closes; both are
		// acceptable. A deadline error means the server hung.
		r := bufio.NewReader(conn)
		if _, err := r.ReadString('\n'); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.Fatalf("server hung on input %q", line)
			}
		}
	})
}
