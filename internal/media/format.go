package media

import "qosneg/internal/qos"

// Format is a coding format of a stored variant. The static compatibility
// check of negotiation step 2 ("if the client machine supports only MPEG
// decoder and the video variant is coded as MJPEG file then variant1 will
// simply not be considered") matches variant formats against the decoder
// list of the client machine.
type Format string

// Formats appearing in the news-on-demand prototype and its contemporaries.
const (
	// Video coding formats. MPEG1 is the prototype's player format; the
	// INRS scalable decoder consumes the scalable profile.
	MPEG1        Format = "MPEG-1"
	MPEG2        Format = "MPEG-2"
	MJPEG        Format = "M-JPEG"
	H261         Format = "H.261"
	ScalableMPEG Format = "scalable-MPEG"

	// Audio coding formats.
	PCM        Format = "PCM"
	MPEG1Audio Format = "MPEG-1-audio"
	GSM        Format = "GSM"

	// Still image and graphic formats.
	JPEG Format = "JPEG"
	GIF  Format = "GIF"
	CGM  Format = "CGM"

	// Text formats.
	PlainText  Format = "plain-text"
	HTML       Format = "HTML"
	PostScript Format = "PostScript"
)

// formatKinds maps each known format to the media kind it encodes. Image
// formats also serve graphics (both use the ImageQoS parameters).
var formatKinds = map[Format]qos.MediaKind{
	MPEG1:        qos.Video,
	MPEG2:        qos.Video,
	MJPEG:        qos.Video,
	H261:         qos.Video,
	ScalableMPEG: qos.Video,
	PCM:          qos.Audio,
	MPEG1Audio:   qos.Audio,
	GSM:          qos.Audio,
	JPEG:         qos.Image,
	GIF:          qos.Image,
	CGM:          qos.Image,
	PlainText:    qos.Text,
	HTML:         qos.Text,
	PostScript:   qos.Text,
}

// Known reports whether f is one of the formats the prototype understands.
func (f Format) Known() bool { _, ok := formatKinds[f]; return ok }

// MediaKind returns the media kind the format encodes; unknown formats
// return false.
func (f Format) MediaKind() (qos.MediaKind, bool) {
	k, ok := formatKinds[f]
	return k, ok
}

// Decodes reports whether a file in format f can carry a monomedia of kind
// k. Graphics accept image formats (and CGM), because they share the image
// QoS parameters.
func (f Format) Decodes(k qos.MediaKind) bool {
	fk, ok := formatKinds[f]
	if !ok {
		return false
	}
	if k == qos.Graphic {
		k = qos.Image
	}
	return fk == k
}

// Formats lists every known format, grouped by media kind in declaration
// order; useful for populating client capability sets in tests and examples.
func Formats() []Format {
	return []Format{
		MPEG1, MPEG2, MJPEG, H261, ScalableMPEG,
		PCM, MPEG1Audio, GSM,
		JPEG, GIF, CGM,
		PlainText, HTML, PostScript,
	}
}
