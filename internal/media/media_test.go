package media

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"qosneg/internal/qos"
)

func validVideoVariant() Variant {
	return VideoVariant("v1", "server-1", MPEG1,
		qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
		time.Minute)
}

func TestVariantValidate(t *testing.T) {
	v := validVideoVariant()
	if err := v.Validate(qos.Video); err != nil {
		t.Fatalf("valid variant rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Variant)
		kind   qos.MediaKind
	}{
		{"empty id", func(v *Variant) { v.ID = "" }, qos.Video},
		{"no server", func(v *Variant) { v.Server = "" }, qos.Video},
		{"negative size", func(v *Variant) { v.FileBytes = -1 }, qos.Video},
		{"kind mismatch", func(v *Variant) {}, qos.Audio},
		{"format mismatch", func(v *Variant) { v.Format = PCM }, qos.Video},
		{"bad blocks", func(v *Variant) { v.Blocks.AvgBlockBytes = v.Blocks.MaxBlockBytes + 1 }, qos.Video},
		{"missing blocks", func(v *Variant) { v.Blocks = qos.BlockStats{} }, qos.Video},
		{"bad qos", func(v *Variant) { v.QoS.Video.FrameRate = 0 }, qos.Video},
	}
	for _, c := range cases {
		v := validVideoVariant()
		c.mutate(&v)
		if err := v.Validate(c.kind); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestVariantNetworkQoS(t *testing.T) {
	v := validVideoVariant()
	n := v.NetworkQoS()
	want := qos.BitRate(v.Blocks.MaxBlockBytes * 8 * 25)
	if n.MaxBitRate != want {
		t.Errorf("maxBitRate = %d, want %d", n.MaxBitRate, want)
	}
	if n.Jitter != qos.VideoJitter {
		t.Errorf("jitter = %v", n.Jitter)
	}
}

func TestGraphicAcceptsImageQoS(t *testing.T) {
	g := Variant{
		ID:     "g1",
		Format: CGM,
		QoS:    qos.ImageSetting(qos.ImageQoS{Color: qos.Color, Resolution: 480}),
		Server: "server-1",
	}
	if err := g.Validate(qos.Graphic); err != nil {
		t.Errorf("graphic with image QoS rejected: %v", err)
	}
}

func TestMonomediaValidate(t *testing.T) {
	m := Monomedia{ID: "video", Kind: qos.Video, Duration: time.Minute,
		Variants: []Variant{validVideoVariant()}}
	if err := m.Validate(); err != nil {
		t.Fatalf("valid monomedia rejected: %v", err)
	}

	bad := []Monomedia{
		{ID: "", Kind: qos.Video, Duration: time.Minute, Variants: []Variant{validVideoVariant()}},
		{ID: "m", Kind: qos.MediaKind(9), Duration: time.Minute, Variants: []Variant{validVideoVariant()}},
		{ID: "m", Kind: qos.Video, Duration: time.Minute},
		{ID: "m", Kind: qos.Video, Variants: []Variant{validVideoVariant()}}, // no duration
		{ID: "m", Kind: qos.Video, Duration: time.Minute,
			Variants: []Variant{validVideoVariant(), validVideoVariant()}}, // dup variant ids
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad monomedia %d accepted", i)
		}
	}
}

func TestMonomediaVariantLookup(t *testing.T) {
	m := Monomedia{ID: "video", Kind: qos.Video, Duration: time.Minute,
		Variants: []Variant{validVideoVariant()}}
	if _, ok := m.Variant("v1"); !ok {
		t.Error("v1 should be found")
	}
	if _, ok := m.Variant("nope"); ok {
		t.Error("nope should not be found")
	}
}

func newsDoc() Document {
	return BuildNewsArticle(NewsArticleSpec{
		ID:       "news-1",
		Title:    "Election night",
		Duration: 2 * time.Minute,
		Servers:  []ServerID{"server-1", "server-2"},
		VideoQualities: []qos.VideoQoS{
			{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			{Color: qos.Grey, FrameRate: 25, Resolution: qos.TVResolution},
			{Color: qos.BlackWhite, FrameRate: 15, Resolution: qos.TVResolution},
		},
		AudioQualities: []qos.AudioQoS{
			{Grade: qos.CDQuality, Language: qos.English},
			{Grade: qos.TelephoneQuality, Language: qos.English},
		},
		Languages:    []qos.Language{qos.English, qos.French},
		WithImage:    true,
		CopyrightFee: 500,
	})
}

func TestBuildNewsArticle(t *testing.T) {
	d := newsDoc()
	if err := d.Validate(); err != nil {
		t.Fatalf("fixture document invalid: %v", err)
	}
	if d.IsMonomedia() {
		t.Error("news article is a multimedia document")
	}
	if len(d.Monomedia) != 4 {
		t.Fatalf("want 4 components, got %d", len(d.Monomedia))
	}
	video, ok := d.Component("video")
	if !ok || len(video.Variants) != 3 {
		t.Fatalf("video component: ok=%v variants=%d", ok, len(video.Variants))
	}
	if got := len(d.Continuous()); got != 2 {
		t.Errorf("continuous components = %d, want 2", got)
	}
	if d.Duration() != 2*time.Minute {
		t.Errorf("duration = %v", d.Duration())
	}
	// Variants spread across both servers.
	servers := map[ServerID]bool{}
	for _, v := range video.Variants {
		servers[v.Server] = true
	}
	if len(servers) < 2 {
		t.Error("variants should spread across servers")
	}
	// Lip-sync constraint present.
	if len(d.Temporal) != 1 || d.Temporal[0].Relation != Parallel {
		t.Errorf("temporal constraints = %+v", d.Temporal)
	}
}

func TestDocumentValidateErrors(t *testing.T) {
	base := newsDoc()

	d := base
	d.ID = ""
	if err := d.Validate(); err == nil {
		t.Error("empty id accepted")
	}

	d = base
	d.Monomedia = nil
	if err := d.Validate(); err == nil {
		t.Error("empty document accepted")
	}

	d = base
	d.CopyrightFee = -1
	if err := d.Validate(); err == nil {
		t.Error("negative copyright accepted")
	}

	d = base
	d.Monomedia = append([]Monomedia{}, base.Monomedia...)
	d.Monomedia = append(d.Monomedia, base.Monomedia[0]) // duplicate id
	if err := d.Validate(); err == nil {
		t.Error("duplicate monomedia id accepted")
	}

	d = base
	d.Temporal = []TemporalConstraint{{A: "video", B: "ghost", Relation: Parallel}}
	if err := d.Validate(); err == nil {
		t.Error("dangling temporal reference accepted")
	}

	d = base
	d.Spatial = []SpatialConstraint{{Monomedia: "ghost", Width: 1, Height: 1}}
	if err := d.Validate(); err == nil {
		t.Error("dangling spatial reference accepted")
	}
}

func TestTemporalConstraintValidate(t *testing.T) {
	good := []TemporalConstraint{
		{A: "a", B: "b", Relation: Parallel},
		{A: "a", B: "b", Relation: Sequential, Tolerance: time.Millisecond},
		{A: "a", B: "b", Relation: Overlap, Offset: time.Second},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("good constraint %d rejected: %v", i, err)
		}
	}
	bad := []TemporalConstraint{
		{A: "", B: "b", Relation: Parallel},
		{A: "a", B: "a", Relation: Parallel},
		{A: "a", B: "b", Relation: "before"},
		{A: "a", B: "b", Relation: Parallel, Offset: time.Second},
		{A: "a", B: "b", Relation: Overlap},
		{A: "a", B: "b", Relation: Parallel, Tolerance: -time.Second},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad constraint %d accepted: %+v", i, c)
		}
	}
}

func TestSpatialConstraintValidate(t *testing.T) {
	if err := (SpatialConstraint{Monomedia: "v", Width: 10, Height: 10}).Validate(); err != nil {
		t.Errorf("good constraint rejected: %v", err)
	}
	bad := []SpatialConstraint{
		{Monomedia: "", Width: 1, Height: 1},
		{Monomedia: "v", X: -1, Width: 1, Height: 1},
		{Monomedia: "v", Width: 0, Height: 1},
		{Monomedia: "v", Width: 1, Height: -2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad constraint %d accepted", i)
		}
	}
}

func TestStartTimes(t *testing.T) {
	d := Document{
		ID: "d",
		Monomedia: []Monomedia{
			{ID: "intro", Kind: qos.Video, Duration: 10 * time.Second, Variants: []Variant{validVideoVariant()}},
			{ID: "main", Kind: qos.Video, Duration: 30 * time.Second, Variants: []Variant{validVideoVariant()}},
			{ID: "audio", Kind: qos.Audio, Duration: 40 * time.Second,
				Variants: []Variant{AudioVariant("a1", "server-1", PCM, qos.AudioQoS{Grade: qos.CDQuality}, 40*time.Second)}},
			{ID: "credits", Kind: qos.Text,
				Variants: []Variant{TextVariant("t1", "server-1", qos.English, 128)}},
		},
		Temporal: []TemporalConstraint{
			{A: "intro", B: "main", Relation: Sequential},
			{A: "intro", B: "audio", Relation: Parallel},
			{A: "main", B: "credits", Relation: Overlap, Offset: 25 * time.Second},
		},
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("document invalid: %v", err)
	}
	starts := StartTimes(d)
	want := map[MonomediaID]time.Duration{
		"intro":   0,
		"main":    10 * time.Second,
		"audio":   0,
		"credits": 35 * time.Second,
	}
	for id, w := range want {
		if starts[id] != w {
			t.Errorf("start[%s] = %v, want %v", id, starts[id], w)
		}
	}
}

func TestFormatTable(t *testing.T) {
	for _, f := range Formats() {
		if !f.Known() {
			t.Errorf("%s should be known", f)
		}
		if _, ok := f.MediaKind(); !ok {
			t.Errorf("%s should have a media kind", f)
		}
	}
	if Format("AVI").Known() {
		t.Error("AVI is not a known prototype format")
	}
	if Format("AVI").Decodes(qos.Video) {
		t.Error("unknown formats decode nothing")
	}
	if !MPEG1.Decodes(qos.Video) || MPEG1.Decodes(qos.Audio) {
		t.Error("MPEG-1 decodes video only")
	}
	if !JPEG.Decodes(qos.Graphic) {
		t.Error("graphics accept image formats")
	}
	if k, _ := MJPEG.MediaKind(); k != qos.Video {
		t.Errorf("MJPEG kind = %v", k)
	}
}

func TestDocumentJSONRoundTrip(t *testing.T) {
	in := newsDoc()
	data, err := json.MarshalIndent(in, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var out Document
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("round-tripped document invalid: %v", err)
	}
	if out.ID != in.ID || len(out.Monomedia) != len(in.Monomedia) {
		t.Errorf("round trip lost structure: %s/%d", out.ID, len(out.Monomedia))
	}
	v1, _ := in.Component("video")
	v2, _ := out.Component("video")
	if v1.Variants[0].Blocks != v2.Variants[0].Blocks {
		t.Error("block stats lost in round trip")
	}
	if !strings.Contains(string(data), "maxBlockBytes") {
		t.Error("JSON should carry block statistics")
	}
}

func TestAudioVariantRates(t *testing.T) {
	cd := AudioVariant("a", "s", PCM, qos.AudioQoS{Grade: qos.CDQuality}, time.Minute)
	tel := AudioVariant("b", "s", GSM, qos.AudioQoS{Grade: qos.TelephoneQuality}, time.Minute)
	cdRate := cd.NetworkQoS().AvgBitRate
	telRate := tel.NetworkQoS().AvgBitRate
	if cdRate <= telRate {
		t.Errorf("CD rate %v should exceed telephone rate %v", cdRate, telRate)
	}
	// CD: 4 bytes × 44100 Hz = 1.4112 Mbit/s.
	if cdRate != qos.BitRate(4*8*44100) {
		t.Errorf("CD rate = %d", cdRate)
	}
}

func TestVideoVariantScalesWithQuality(t *testing.T) {
	hi := VideoVariant("h", "s", MPEG1, qos.VideoQoS{Color: qos.SuperColor, FrameRate: 30, Resolution: qos.HDTVResolution}, time.Minute)
	lo := VideoVariant("l", "s", MPEG1, qos.VideoQoS{Color: qos.BlackWhite, FrameRate: 5, Resolution: qos.MinResolution}, time.Minute)
	if hi.NetworkQoS().AvgBitRate <= lo.NetworkQoS().AvgBitRate {
		t.Error("higher quality must need more throughput")
	}
	if hi.FileBytes <= lo.FileBytes {
		t.Error("higher quality must be a bigger file")
	}
	if err := hi.Validate(qos.Video); err != nil {
		t.Errorf("hi variant invalid: %v", err)
	}
	if err := lo.Validate(qos.Video); err != nil {
		t.Errorf("lo variant invalid: %v", err)
	}
}
