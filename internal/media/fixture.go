package media

import (
	"fmt"
	"time"

	"qosneg/internal/qos"
)

// This file provides fixture builders used across the repository's tests,
// examples and experiment harness. They construct documents shaped like the
// paper's running example: a news article with video, audio, text and image
// components whose variants differ in color quality, frame rate, resolution
// and server location.

// VideoVariant builds a video variant with plausible MPEG-1 frame sizes for
// the given quality: frame bytes scale with resolution and color depth so
// that the Section 6 mapping produces distinct bit rates per variant.
func VideoVariant(id VariantID, server ServerID, format Format, v qos.VideoQoS, duration time.Duration) Variant {
	// Bytes per frame: proportional to resolution (lines ≈ 3/4 of pixels
	// per line) and to a color-depth factor.
	depth := int64(1)
	switch v.Color {
	case qos.Grey:
		depth = 2
	case qos.Color:
		depth = 3
	case qos.SuperColor:
		depth = 4
	}
	avg := int64(v.Resolution) * int64(v.Resolution) * 3 / 4 * depth / 40 // ~25:1 compression
	if avg < 256 {
		avg = 256
	}
	max := avg * 3 // I-frames dominate
	frames := int64(v.FrameRate) * int64(duration/time.Second)
	return Variant{
		ID:        id,
		Format:    format,
		QoS:       qos.VideoSetting(v),
		FileBytes: avg * frames,
		Blocks:    qos.BlockStats{MaxBlockBytes: max, AvgBlockBytes: avg},
		Server:    server,
	}
}

// AudioVariant builds an audio variant whose sample-block sizes yield the
// conventional bit rate for the grade (CD stereo 16-bit, telephone 8-bit).
func AudioVariant(id VariantID, server ServerID, format Format, a qos.AudioQoS, duration time.Duration) Variant {
	var blockBytes int64 = 1 // telephone: 8-bit mono
	if a.Grade == qos.CDQuality {
		blockBytes = 4 // CD: 16-bit stereo
	}
	samples := int64(a.Grade.SampleRate()) * int64(duration/time.Second)
	return Variant{
		ID:        id,
		Format:    format,
		QoS:       qos.AudioSetting(a),
		FileBytes: blockBytes * samples,
		Blocks:    qos.BlockStats{MaxBlockBytes: blockBytes, AvgBlockBytes: blockBytes},
		Server:    server,
	}
}

// TextVariant builds a text variant of the given language.
func TextVariant(id VariantID, server ServerID, lang qos.Language, bytes int64) Variant {
	return Variant{
		ID:        id,
		Format:    PlainText,
		QoS:       qos.TextSetting(qos.TextQoS{Language: lang}),
		FileBytes: bytes,
		Server:    server,
	}
}

// ImageVariant builds a still-image variant.
func ImageVariant(id VariantID, server ServerID, format Format, i qos.ImageQoS) Variant {
	bytes := int64(i.Resolution) * int64(i.Resolution) * 3 / 4 / 10
	if bytes < 128 {
		bytes = 128
	}
	return Variant{
		ID:        id,
		Format:    format,
		QoS:       qos.ImageSetting(i),
		FileBytes: bytes,
		Server:    server,
	}
}

// NewsArticleSpec parameterizes BuildNewsArticle.
type NewsArticleSpec struct {
	ID       DocumentID
	Title    string
	Duration time.Duration
	// Servers receive the variants round-robin; at least one required.
	Servers []ServerID
	// VideoQualities and AudioQualities produce one variant each. Empty
	// slices omit the medium entirely.
	VideoQualities []qos.VideoQoS
	AudioQualities []qos.AudioQoS
	// Languages produces one text variant per language.
	Languages []qos.Language
	// WithImage adds a color still image component.
	WithImage bool
	// CopyrightFee in milli-dollars (CostCop of Section 7).
	CopyrightFee int64
}

// BuildNewsArticle constructs a multimedia news article in the shape the
// paper's introduction motivates: a video sequence with audio commentary,
// caption text and an optional headline image, with lip-sync (parallel)
// temporal constraints between audio and video.
func BuildNewsArticle(spec NewsArticleSpec) Document {
	if len(spec.Servers) == 0 {
		spec.Servers = []ServerID{"server-1"}
	}
	if spec.Duration == 0 {
		spec.Duration = 3 * time.Minute
	}
	server := func(i int) ServerID { return spec.Servers[i%len(spec.Servers)] }

	doc := Document{ID: spec.ID, Title: spec.Title, CopyrightFee: spec.CopyrightFee}
	if len(spec.VideoQualities) > 0 {
		m := Monomedia{ID: "video", Kind: qos.Video, Name: spec.Title + " (video)", Duration: spec.Duration}
		for i, v := range spec.VideoQualities {
			id := VariantID(fmt.Sprintf("video-v%d", i+1))
			m.Variants = append(m.Variants, VideoVariant(id, server(i), MPEG1, v, spec.Duration))
		}
		doc.Monomedia = append(doc.Monomedia, m)
	}
	if len(spec.AudioQualities) > 0 {
		m := Monomedia{ID: "audio", Kind: qos.Audio, Name: spec.Title + " (audio)", Duration: spec.Duration}
		for i, a := range spec.AudioQualities {
			id := VariantID(fmt.Sprintf("audio-v%d", i+1))
			m.Variants = append(m.Variants, AudioVariant(id, server(i+1), MPEG1Audio, a, spec.Duration))
		}
		doc.Monomedia = append(doc.Monomedia, m)
	}
	if len(spec.Languages) > 0 {
		m := Monomedia{ID: "caption", Kind: qos.Text, Name: spec.Title + " (caption)"}
		for i, l := range spec.Languages {
			id := VariantID(fmt.Sprintf("caption-%s", l))
			m.Variants = append(m.Variants, TextVariant(id, server(i), l, 4096))
		}
		doc.Monomedia = append(doc.Monomedia, m)
	}
	if spec.WithImage {
		m := Monomedia{ID: "headline", Kind: qos.Image, Name: spec.Title + " (headline)"}
		m.Variants = append(m.Variants,
			ImageVariant("headline-v1", server(0), JPEG, qos.ImageQoS{Color: qos.Color, Resolution: qos.TVResolution}),
			ImageVariant("headline-v2", server(1), GIF, qos.ImageQoS{Color: qos.Grey, Resolution: qos.TVResolution}),
		)
		doc.Monomedia = append(doc.Monomedia, m)
	}
	if _, ok := doc.Component("video"); ok {
		if _, ok := doc.Component("audio"); ok {
			doc.Temporal = append(doc.Temporal, TemporalConstraint{
				A: "video", B: "audio", Relation: Parallel, Tolerance: 80 * time.Millisecond,
			})
		}
		doc.Spatial = append(doc.Spatial, SpatialConstraint{Monomedia: "video", X: 0, Y: 0, Width: 640, Height: 480})
	}
	return doc
}
