package media

import (
	"fmt"

	"qosneg/internal/qos"
)

// This file models the scalable video decoder of the news-on-demand
// prototype (INRS Télécommunications, [Dub 95]): a video coded in the
// scalable format can be decoded at the full frame rate or at reduced
// temporal layers, trading quality for bandwidth without re-coding. The
// offer enumeration expands a scalable variant into one candidate per
// decodable layer, which gives the negotiation procedure (and the
// adaptation procedure) finer-grained configurations to choose from.

// scalableDivisors are the temporal layers a scalable stream exposes:
// full, half and quarter frame rate.
var scalableDivisors = []int{1, 2, 4}

// ScalableLayers expands a variant into its decodable layers. Non-scalable
// variants (any format other than ScalableMPEG, or non-video QoS) return
// just themselves. Layers keep the stored file's identity plus a
// "@Nfps" suffix; their block statistics equal the original's (each layer
// delivers the same frames, fewer of them per second), so the Section 6
// mapping yields proportionally lower bit rates.
func ScalableLayers(v Variant) []Variant {
	if v.Format != ScalableMPEG || v.QoS.Video == nil {
		return []Variant{v}
	}
	base := *v.QoS.Video
	var out []Variant
	seen := map[int]bool{}
	for _, d := range scalableDivisors {
		rate := base.FrameRate / d
		if rate < qos.FrozenRate || seen[rate] {
			continue
		}
		seen[rate] = true
		layer := v
		layerQoS := base
		layerQoS.FrameRate = rate
		layer.QoS = qos.VideoSetting(layerQoS)
		if d > 1 {
			layer.ID = VariantID(fmt.Sprintf("%s@%dfps", v.ID, rate))
		}
		out = append(out, layer)
	}
	return out
}
