package media

import "fmt"

// Replicate returns a copy of the document in which every variant is
// replicated onto additional servers, round-robin over the given server
// list: Section 2's "copies of the same file are considered also as
// variants". factor is the total number of copies per variant (1 leaves
// the document unchanged); copies carry an "#n" id suffix and differ only
// in their server location, which gives the classification and adaptation
// procedures more placements to choose from.
func Replicate(doc Document, servers []ServerID, factor int) Document {
	if factor <= 1 || len(servers) < 2 {
		return doc
	}
	out := doc
	out.Monomedia = make([]Monomedia, len(doc.Monomedia))
	for mi, m := range doc.Monomedia {
		out.Monomedia[mi] = m
		out.Monomedia[mi].Variants = make([]Variant, 0, len(m.Variants)*factor)
		for _, v := range m.Variants {
			out.Monomedia[mi].Variants = append(out.Monomedia[mi].Variants, v)
			// Place copies on the other servers, starting after the
			// original's position in the server list.
			home := 0
			for i, s := range servers {
				if s == v.Server {
					home = i
					break
				}
			}
			placed := map[ServerID]bool{v.Server: true}
			for c := 1; c < factor; c++ {
				copyV := v
				copyV.ID = VariantID(fmt.Sprintf("%s#%d", v.ID, c+1))
				copyV.Server = servers[(home+c)%len(servers)]
				if placed[copyV.Server] {
					continue // fewer distinct servers than copies requested
				}
				placed[copyV.Server] = true
				out.Monomedia[mi].Variants = append(out.Monomedia[mi].Variants, copyV)
			}
		}
	}
	return out
}
