package media

import (
	"testing"
	"time"

	"qosneg/internal/qos"
)

func scalableVariant(rate int) Variant {
	return VideoVariant("sv1", "server-1", ScalableMPEG,
		qos.VideoQoS{Color: qos.Color, FrameRate: rate, Resolution: qos.TVResolution},
		time.Minute)
}

func TestScalableLayersExpansion(t *testing.T) {
	layers := ScalableLayers(scalableVariant(60))
	if len(layers) != 3 {
		t.Fatalf("layers = %d, want 3 (60, 30, 15 fps)", len(layers))
	}
	rates := []int{60, 30, 15}
	for i, l := range layers {
		if l.QoS.Video.FrameRate != rates[i] {
			t.Errorf("layer %d rate = %d, want %d", i, l.QoS.Video.FrameRate, rates[i])
		}
		// Everything but the frame rate (and id suffix) is inherited.
		if l.QoS.Video.Color != qos.Color || l.QoS.Video.Resolution != qos.TVResolution {
			t.Errorf("layer %d lost QoS fields: %+v", i, l.QoS.Video)
		}
		if l.Server != "server-1" || l.Format != ScalableMPEG {
			t.Errorf("layer %d lost identity fields", i)
		}
		if err := l.Validate(qos.Video); err != nil {
			t.Errorf("layer %d invalid: %v", i, err)
		}
	}
	// The full layer keeps the original id; reduced layers are suffixed.
	if layers[0].ID != "sv1" {
		t.Errorf("full layer id = %s", layers[0].ID)
	}
	if layers[1].ID != "sv1@30fps" || layers[2].ID != "sv1@15fps" {
		t.Errorf("reduced layer ids = %s, %s", layers[1].ID, layers[2].ID)
	}
	// Reduced layers need proportionally less bandwidth.
	full := layers[0].NetworkQoS().AvgBitRate
	half := layers[1].NetworkQoS().AvgBitRate
	if half*2 != full {
		t.Errorf("half layer rate %v vs full %v", half, full)
	}
}

func TestScalableLayersDegenerate(t *testing.T) {
	// A 2 fps scalable stream: layers 2 and 1 (quarter would be 0 fps).
	layers := ScalableLayers(scalableVariant(2))
	if len(layers) != 2 {
		t.Fatalf("layers = %d, want 2", len(layers))
	}
	// A 1 fps stream has a single layer.
	if got := len(ScalableLayers(scalableVariant(1))); got != 1 {
		t.Errorf("1 fps layers = %d", got)
	}
	// Duplicate rates collapse (3 fps → 3, 1, 0: quarter dropped; half
	// 1 fps kept once).
	layers = ScalableLayers(scalableVariant(3))
	if len(layers) != 2 {
		t.Errorf("3 fps layers = %d, want 2", len(layers))
	}
}

func TestScalableLayersNonScalable(t *testing.T) {
	v := VideoVariant("v1", "s", MPEG1, qos.VideoQoS{Color: qos.Color, FrameRate: 60, Resolution: 480}, time.Minute)
	layers := ScalableLayers(v)
	if len(layers) != 1 || layers[0].ID != "v1" {
		t.Errorf("non-scalable expansion: %+v", layers)
	}
	a := AudioVariant("a1", "s", PCM, qos.AudioQoS{Grade: qos.CDQuality}, time.Minute)
	if got := len(ScalableLayers(a)); got != 1 {
		t.Errorf("audio expansion = %d", got)
	}
}
