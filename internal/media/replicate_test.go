package media

import (
	"testing"
	"time"

	"qosneg/internal/qos"
)

func replDoc() Document {
	return BuildNewsArticle(NewsArticleSpec{
		ID:       "news-1",
		Title:    "T",
		Duration: time.Minute,
		Servers:  []ServerID{"s1", "s2", "s3"},
		VideoQualities: []qos.VideoQoS{
			{Color: qos.Color, FrameRate: 25, Resolution: 480},
			{Color: qos.Grey, FrameRate: 15, Resolution: 480},
		},
		AudioQualities: []qos.AudioQoS{{Grade: qos.CDQuality}},
	})
}

func TestReplicateAddsCopies(t *testing.T) {
	doc := replDoc()
	servers := []ServerID{"s1", "s2", "s3"}
	r := Replicate(doc, servers, 2)
	if err := r.Validate(); err != nil {
		t.Fatalf("replicated document invalid: %v", err)
	}
	video, _ := r.Component("video")
	orig, _ := doc.Component("video")
	if len(video.Variants) != 2*len(orig.Variants) {
		t.Fatalf("video variants = %d, want %d", len(video.Variants), 2*len(orig.Variants))
	}
	// Each copy shares QoS and blocks with its original but sits on a
	// different server.
	byID := map[VariantID]Variant{}
	for _, v := range video.Variants {
		byID[v.ID] = v
	}
	for _, o := range orig.Variants {
		c, ok := byID[VariantID(string(o.ID)+"#2")]
		if !ok {
			t.Fatalf("copy of %s missing", o.ID)
		}
		if c.Server == o.Server {
			t.Errorf("copy of %s on the same server", o.ID)
		}
		if c.QoS.String() != o.QoS.String() || c.Blocks != o.Blocks || c.FileBytes != o.FileBytes {
			t.Errorf("copy of %s differs beyond location", o.ID)
		}
	}
	// The original document is untouched.
	if len(orig.Variants) != 2 {
		t.Error("Replicate mutated its input")
	}
}

func TestReplicateFullFactor(t *testing.T) {
	servers := []ServerID{"s1", "s2", "s3"}
	r := Replicate(replDoc(), servers, 3)
	video, _ := r.Component("video")
	if len(video.Variants) != 6 {
		t.Fatalf("variants = %d, want 6", len(video.Variants))
	}
	// Each original now exists on all three servers.
	seen := map[string]map[ServerID]bool{}
	for _, v := range video.Variants {
		base := v.ID
		for i, c := range base {
			if c == '#' {
				base = base[:i]
				break
			}
		}
		if seen[string(base)] == nil {
			seen[string(base)] = map[ServerID]bool{}
		}
		seen[string(base)][v.Server] = true
	}
	for base, servers := range seen {
		if len(servers) != 3 {
			t.Errorf("%s on %d servers", base, len(servers))
		}
	}
}

func TestReplicateNoOpCases(t *testing.T) {
	doc := replDoc()
	if got := Replicate(doc, []ServerID{"s1", "s2"}, 1); len(mustComp(t, got, "video").Variants) != 2 {
		t.Error("factor 1 must be a no-op")
	}
	if got := Replicate(doc, []ServerID{"s1"}, 3); len(mustComp(t, got, "video").Variants) != 2 {
		t.Error("single server must be a no-op")
	}
	// Factor larger than the server count: capped at distinct servers.
	got := Replicate(doc, []ServerID{"s1", "s2"}, 5)
	for _, v := range mustComp(t, got, "video").Variants {
		if v.Server != "s1" && v.Server != "s2" {
			t.Errorf("unknown server %s", v.Server)
		}
	}
	if err := got.Validate(); err != nil {
		t.Errorf("over-replicated document invalid: %v", err)
	}
}

func mustComp(t *testing.T, d Document, id MonomediaID) Monomedia {
	t.Helper()
	m, ok := d.Component(id)
	if !ok {
		t.Fatalf("component %s missing", id)
	}
	return m
}
