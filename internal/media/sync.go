package media

import (
	"fmt"
	"time"
)

// TemporalRelation is the kind of a temporal synchronization constraint
// between two monomedia components (Figure 1's "temporal synchronization
// constraints" attribute). The vocabulary follows the usual interval
// relations used by the prototype's synchronization component [Lam 94].
type TemporalRelation string

// The supported temporal relations.
const (
	// Parallel starts B together with A (lip-sync audio and video).
	Parallel TemporalRelation = "parallel"
	// Sequential starts B when A finishes.
	Sequential TemporalRelation = "sequential"
	// Overlap starts B Offset after A starts.
	Overlap TemporalRelation = "overlap"
)

// TemporalConstraint relates the start of monomedia B to monomedia A.
type TemporalConstraint struct {
	A        MonomediaID      `json:"a"`
	B        MonomediaID      `json:"b"`
	Relation TemporalRelation `json:"relation"`
	// Offset applies to Overlap: B starts Offset after A's start.
	Offset time.Duration `json:"offset,omitempty"`
	// Tolerance is the admissible skew between the two streams; the
	// synchronization protocol compensates jitter within it.
	Tolerance time.Duration `json:"tolerance,omitempty"`
}

// Validate checks the constraint's internal consistency.
func (c TemporalConstraint) Validate() error {
	if c.A == "" || c.B == "" {
		return fmt.Errorf("temporal constraint: empty monomedia reference")
	}
	if c.A == c.B {
		return fmt.Errorf("temporal constraint: %s related to itself", c.A)
	}
	switch c.Relation {
	case Parallel, Sequential:
		if c.Offset != 0 {
			return fmt.Errorf("temporal constraint %s-%s: offset only applies to overlap", c.A, c.B)
		}
	case Overlap:
		if c.Offset <= 0 {
			return fmt.Errorf("temporal constraint %s-%s: overlap needs a positive offset", c.A, c.B)
		}
	default:
		return fmt.Errorf("temporal constraint %s-%s: unknown relation %q", c.A, c.B, c.Relation)
	}
	if c.Tolerance < 0 {
		return fmt.Errorf("temporal constraint %s-%s: negative tolerance", c.A, c.B)
	}
	return nil
}

// SpatialConstraint places a monomedia component on the presentation
// surface (Figure 1's "spatial synchronization constraints" attribute).
// Coordinates are in pixels of the client display.
type SpatialConstraint struct {
	Monomedia MonomediaID `json:"monomedia"`
	X         int         `json:"x"`
	Y         int         `json:"y"`
	Width     int         `json:"width"`
	Height    int         `json:"height"`
}

// Validate checks the constraint's internal consistency.
func (c SpatialConstraint) Validate() error {
	if c.Monomedia == "" {
		return fmt.Errorf("spatial constraint: empty monomedia reference")
	}
	if c.X < 0 || c.Y < 0 {
		return fmt.Errorf("spatial constraint %s: negative origin (%d, %d)", c.Monomedia, c.X, c.Y)
	}
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("spatial constraint %s: non-positive extent (%d×%d)", c.Monomedia, c.Width, c.Height)
	}
	return nil
}

// StartTimes resolves the temporal constraints of d into a start time for
// every monomedia component, with unconstrained components starting at zero.
// Constraints are resolved in order; a constraint whose A component has no
// resolved start yet anchors it at zero. The playout session uses the result
// to schedule stream start-up.
func StartTimes(d Document) map[MonomediaID]time.Duration {
	starts := make(map[MonomediaID]time.Duration, len(d.Monomedia))
	for _, m := range d.Monomedia {
		starts[m.ID] = 0
	}
	for _, c := range d.Temporal {
		base := starts[c.A]
		switch c.Relation {
		case Parallel:
			starts[c.B] = base
		case Sequential:
			if a, ok := d.Component(c.A); ok {
				starts[c.B] = base + a.Duration
			}
		case Overlap:
			starts[c.B] = base + c.Offset
		}
	}
	return starts
}
