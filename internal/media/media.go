// Package media implements the multimedia document model of Section 2
// (Figure 1): a document is either a monomedia or a multimedia composed of
// one or more monomedia objects, each of which exists in several physical
// representations called variants. Variants of the same monomedia differ in
// static parameters: coding format, file size, the QoS the representation
// delivers, and the location (which server machine stores the file). Copies
// of the same file on different servers are variants too.
//
// The package also carries the spatial and temporal synchronization
// constraints that Figure 1 attaches to multimedia documents; the QoS
// negotiation procedure treats them as opaque document attributes, but the
// playout session uses the temporal constraints to schedule monomedia
// streams.
package media

import (
	"fmt"
	"time"

	"qosneg/internal/qos"
)

// DocumentID names a document in the multimedia database.
type DocumentID string

// MonomediaID names a monomedia component within its document.
type MonomediaID string

// VariantID names one physical representation of a monomedia.
type VariantID string

// ServerID names the server machine that stores a variant. The registry and
// CMFS packages share this identifier space.
type ServerID string

// Variant is one physical representation of a monomedia object (Section 2).
type Variant struct {
	ID VariantID `json:"id"`
	// Format is the coding format of the file, e.g. MPEG1 or MJPEG. The
	// static compatibility check (negotiation step 2) matches it against
	// the decoders of the client machine.
	Format Format `json:"format"`
	// QoS is the user-perceptible quality this representation delivers,
	// e.g. (color, 25 frames/s, TV resolution) for a video variant.
	QoS qos.Setting `json:"qos"`
	// FileBytes is the size of the stored file.
	FileBytes int64 `json:"fileBytes"`
	// Blocks carries the maximum and average block (frame/sample) lengths
	// stored in the MM database and used by the Section 6 QoS mapping.
	// Zero for discrete media.
	Blocks qos.BlockStats `json:"blocks"`
	// Server is the machine that stores the file: the variant's
	// localization. Selecting the variant selects this server.
	Server ServerID `json:"server"`
}

// Validate checks the variant's internal consistency for a monomedia of
// kind k.
func (v Variant) Validate(k qos.MediaKind) error {
	if v.ID == "" {
		return fmt.Errorf("variant: empty id")
	}
	if v.Server == "" {
		return fmt.Errorf("variant %s: no server location", v.ID)
	}
	if v.FileBytes < 0 {
		return fmt.Errorf("variant %s: negative file size %d", v.ID, v.FileBytes)
	}
	if err := v.QoS.Validate(); err != nil {
		return fmt.Errorf("variant %s: %w", v.ID, err)
	}
	vk, _ := v.QoS.Kind()
	want := k
	if k == qos.Graphic {
		want = qos.Image // graphics share the image QoS parameters
	}
	if vk != want {
		return fmt.Errorf("variant %s: QoS kind %s does not match monomedia kind %s", v.ID, vk, k)
	}
	if !v.Format.Decodes(want) {
		return fmt.Errorf("variant %s: format %s cannot encode %s", v.ID, v.Format, k)
	}
	if err := v.Blocks.Validate(); err != nil {
		return fmt.Errorf("variant %s: %w", v.ID, err)
	}
	if k.Continuous() && v.Blocks.MaxBlockBytes == 0 {
		return fmt.Errorf("variant %s: continuous medium without block statistics", v.ID)
	}
	return nil
}

// NetworkQoS derives the Section 6 network parameters needed to deliver the
// variant without transformation.
func (v Variant) NetworkQoS() qos.NetworkQoS { return qos.MapSetting(v.QoS, v.Blocks) }

// Monomedia is a single-medium object of the document model: "a text, a
// still image, an audio sequence, a graphic or a video sequence", available
// in one or more variants.
type Monomedia struct {
	ID   MonomediaID   `json:"id"`
	Kind qos.MediaKind `json:"kind"`
	// Name is a human-readable label shown by the profile manager.
	Name string `json:"name,omitempty"`
	// Duration is the playout length D_i used by the Section 7 cost
	// computation. Zero for discrete media.
	Duration time.Duration `json:"duration,omitempty"`
	// Variants are the available physical representations, at least one.
	Variants []Variant `json:"variants"`
}

// Validate checks the monomedia and all of its variants.
func (m Monomedia) Validate() error {
	if m.ID == "" {
		return fmt.Errorf("monomedia: empty id")
	}
	if !m.Kind.Valid() {
		return fmt.Errorf("monomedia %s: invalid kind %d", m.ID, int(m.Kind))
	}
	if len(m.Variants) == 0 {
		return fmt.Errorf("monomedia %s: no variants", m.ID)
	}
	if m.Kind.Continuous() && m.Duration <= 0 {
		return fmt.Errorf("monomedia %s: continuous medium needs a positive duration", m.ID)
	}
	if m.Duration < 0 {
		return fmt.Errorf("monomedia %s: negative duration", m.ID)
	}
	seen := make(map[VariantID]bool, len(m.Variants))
	for _, v := range m.Variants {
		if seen[v.ID] {
			return fmt.Errorf("monomedia %s: duplicate variant id %s", m.ID, v.ID)
		}
		seen[v.ID] = true
		if err := v.Validate(m.Kind); err != nil {
			return fmt.Errorf("monomedia %s: %w", m.ID, err)
		}
	}
	return nil
}

// Variant returns the variant with the given id, if present.
func (m Monomedia) Variant(id VariantID) (Variant, bool) {
	for _, v := range m.Variants {
		if v.ID == id {
			return v, true
		}
	}
	return Variant{}, false
}

// Document is a multimedia document (Figure 1): one or more monomedia plus
// spatial and temporal synchronization constraints. A document with a single
// monomedia component plays the role of Figure 1's plain monomedia document.
type Document struct {
	ID    DocumentID `json:"id"`
	Title string     `json:"title,omitempty"`
	// Monomedia are the aggregated components, in presentation order.
	Monomedia []Monomedia `json:"monomedia"`
	// Temporal and Spatial are the synchronization constraints of Figure 1.
	Temporal []TemporalConstraint `json:"temporal,omitempty"`
	Spatial  []SpatialConstraint  `json:"spatial,omitempty"`
	// CopyrightFee is the CostCop term of the Section 7 cost formula, in
	// milli-dollars.
	CopyrightFee int64 `json:"copyrightFee,omitempty"`
}

// IsMonomedia reports whether the document consists of a single monomedia
// object (the left branch of Figure 1).
func (d Document) IsMonomedia() bool { return len(d.Monomedia) == 1 }

// Component returns the monomedia with the given id, if present.
func (d Document) Component(id MonomediaID) (Monomedia, bool) {
	for _, m := range d.Monomedia {
		if m.ID == id {
			return m, true
		}
	}
	return Monomedia{}, false
}

// Validate checks the document, its components, and its synchronization
// constraints.
func (d Document) Validate() error {
	if d.ID == "" {
		return fmt.Errorf("document: empty id")
	}
	if len(d.Monomedia) == 0 {
		return fmt.Errorf("document %s: no monomedia components", d.ID)
	}
	if d.CopyrightFee < 0 {
		return fmt.Errorf("document %s: negative copyright fee", d.ID)
	}
	seen := make(map[MonomediaID]bool, len(d.Monomedia))
	for _, m := range d.Monomedia {
		if seen[m.ID] {
			return fmt.Errorf("document %s: duplicate monomedia id %s", d.ID, m.ID)
		}
		seen[m.ID] = true
		if err := m.Validate(); err != nil {
			return fmt.Errorf("document %s: %w", d.ID, err)
		}
	}
	for _, c := range d.Temporal {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("document %s: %w", d.ID, err)
		}
		if !seen[c.A] || !seen[c.B] {
			return fmt.Errorf("document %s: temporal constraint references unknown monomedia (%s, %s)", d.ID, c.A, c.B)
		}
	}
	for _, c := range d.Spatial {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("document %s: %w", d.ID, err)
		}
		if !seen[c.Monomedia] {
			return fmt.Errorf("document %s: spatial constraint references unknown monomedia %s", d.ID, c.Monomedia)
		}
	}
	return nil
}

// Duration returns the playout duration of the document: the longest
// monomedia duration (components play in parallel unless temporal
// constraints sequence them; the session scheduler refines this).
func (d Document) Duration() time.Duration {
	var max time.Duration
	for _, m := range d.Monomedia {
		if m.Duration > max {
			max = m.Duration
		}
	}
	return max
}

// Continuous returns the continuous (audio/video) components of the
// document, the ones that consume streaming resources.
func (d Document) Continuous() []Monomedia {
	var out []Monomedia
	for _, m := range d.Monomedia {
		if m.Kind.Continuous() {
			out = append(out, m)
		}
	}
	return out
}
