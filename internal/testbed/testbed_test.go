package testbed

import (
	"testing"
	"time"

	"qosneg/internal/cmfs"
	"qosneg/internal/core"
	mediapkg "qosneg/internal/media"
	"qosneg/internal/qos"
)

func TestDefaults(t *testing.T) {
	b, err := New(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Servers) != 2 || len(b.Clients) != 2 {
		t.Errorf("defaults: %d servers, %d clients", len(b.Servers), len(b.Clients))
	}
	ids := b.ServerIDs()
	if len(ids) != 2 || ids[0] != "server-1" || ids[1] != "server-2" {
		t.Errorf("ServerIDs = %v", ids)
	}
	c := b.Client(1)
	if c.ID != "client-1" || c.Node != "client-1" {
		t.Errorf("Client(1) = %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("client invalid: %v", err)
	}
}

func TestCustomSpec(t *testing.T) {
	cfg := cmfs.Config{DiskRate: qos.MBitPerSecond, SeekTime: time.Millisecond, RoundLength: time.Second, MaxStreams: 2}
	opts := core.DefaultOptions()
	opts.ChoicePeriod = 5 * time.Second
	b, err := New(Spec{
		Clients:          3,
		Servers:          4,
		ServerConfig:     &cfg,
		AccessCapacity:   5 * qos.MBitPerSecond,
		BackboneCapacity: 50 * qos.MBitPerSecond,
		Options:          &opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Servers) != 4 || len(b.Clients) != 3 {
		t.Errorf("custom: %d servers, %d clients", len(b.Servers), len(b.Clients))
	}
	if got := b.Servers["server-1"].Config().DiskRate; got != qos.MBitPerSecond {
		t.Errorf("server config not applied: %v", got)
	}
	if avail, ok := b.Network.Available("access-client-1:fwd"); !ok || avail != 5*qos.MBitPerSecond {
		t.Errorf("access capacity = %v, %v", avail, ok)
	}
}

func TestAddNewsArticleSpreadsVariants(t *testing.T) {
	b := MustNew(Spec{Servers: 3})
	doc, err := b.AddNewsArticle("news-1", "Title", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Registry.Len() != 1 {
		t.Error("document not registered")
	}
	servers := map[string]bool{}
	for _, m := range doc.Monomedia {
		for _, v := range m.Variants {
			servers[string(v.Server)] = true
		}
	}
	if len(servers) < 2 {
		t.Errorf("variants concentrated on %v", servers)
	}
	// Every referenced server is a bed server the manager knows.
	for s := range servers {
		if _, ok := b.Servers[mediapkg.ServerID(s)]; !ok {
			t.Errorf("variant on unknown server %s", s)
		}
	}
}
