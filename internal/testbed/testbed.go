// Package testbed assembles the full news-on-demand prototype substrate —
// registry, CMFS servers, network, transport, client machines and the QoS
// manager — into ready-to-use configurations for tests, examples and the
// experiment harness. It is the reproduction's equivalent of the CITR
// integration prototype described in the paper's introduction.
package testbed

import (
	"fmt"
	"time"

	"qosneg/internal/client"
	"qosneg/internal/cmfs"
	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/faults"
	"qosneg/internal/ledger"
	"qosneg/internal/media"
	"qosneg/internal/network"
	"qosneg/internal/qos"
	"qosneg/internal/registry"
	"qosneg/internal/shard"
	"qosneg/internal/transport"
)

// Bed is an assembled prototype.
type Bed struct {
	Registry *registry.Registry
	Network  *network.Network
	Transit  *transport.System
	// Manager is the QoS manager surface: a single *core.Manager by
	// default, a *shard.Fleet when Spec.Shards asks for one.
	Manager core.SessionManager
	// Fleet is the sharded fleet behind Manager when Spec.Shards > 0, nil
	// for an unsharded bed.
	Fleet   *shard.Fleet
	Servers map[media.ServerID]*cmfs.Server
	Clients map[client.MachineID]client.Machine
	Pricing cost.Pricing
	// Faults is the injector the bed was assembled with (Spec.Faults),
	// nil otherwise.
	Faults *faults.Injector
	// Ledger double-checks every reservation, connection and release made
	// through the bed's subsystems. It is always installed: Ledger.CheckEmpty
	// after winding all sessions down proves nothing leaked.
	Ledger *ledger.Ledger
}

// Spec parameterizes New.
type Spec struct {
	// Clients is the number of client workstations (default 2).
	Clients int
	// Servers is the number of CMFS servers (default 2).
	Servers int
	// Shards, when positive, fronts the bed with a sharded manager fleet of
	// that many shards instead of a single manager (Bed.Fleet is set). Zero
	// keeps the classic single *core.Manager.
	Shards int
	// ServerConfig overrides the CMFS disk model (default
	// cmfs.DefaultConfig).
	ServerConfig *cmfs.Config
	// AccessCapacity and BackboneCapacity override the star topology's
	// link capacities.
	AccessCapacity   qos.BitRate
	BackboneCapacity qos.BitRate
	// Options overrides the QoS manager options.
	Options *core.Options
	// Pricing overrides the default cost tables.
	Pricing *cost.Pricing
	// Faults, when non-nil, wraps every CMFS server and the transport
	// system with the fault injector before they are registered with the
	// manager, so crashes and injected failures can be driven at runtime.
	// Bed.Servers still holds the raw servers.
	Faults *faults.Injector
	// Ledger overrides the resource ledger the bed installs on its
	// subsystems; nil means New builds a fresh one.
	Ledger *ledger.Ledger
}

// New assembles a star-topology prototype: clients client-1..N and servers
// server-1..M around one switch, each server fronted by a CMFS instance,
// with the default cost tables.
func New(spec Spec) (*Bed, error) {
	if spec.Clients <= 0 {
		spec.Clients = 2
	}
	if spec.Servers <= 0 {
		spec.Servers = 2
	}
	cfg := cmfs.DefaultConfig()
	if spec.ServerConfig != nil {
		cfg = *spec.ServerConfig
	}
	var clientNodes, serverNodes []network.NodeID
	for i := 1; i <= spec.Clients; i++ {
		clientNodes = append(clientNodes, network.NodeID(fmt.Sprintf("client-%d", i)))
	}
	for i := 1; i <= spec.Servers; i++ {
		serverNodes = append(serverNodes, network.NodeID(fmt.Sprintf("server-%d", i)))
	}
	net, err := network.BuildStar(network.StarSpec{
		Clients:          clientNodes,
		Servers:          serverNodes,
		AccessCapacity:   spec.AccessCapacity,
		BackboneCapacity: spec.BackboneCapacity,
	})
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	if spec.Options != nil {
		opts = *spec.Options
	}
	pricing := cost.DefaultPricing()
	if spec.Pricing != nil {
		pricing = *spec.Pricing
	}
	led := spec.Ledger
	if led == nil {
		led = ledger.New()
	}
	bed := &Bed{
		Registry: registry.New(),
		Network:  net,
		Servers:  make(map[media.ServerID]*cmfs.Server),
		Clients:  make(map[client.MachineID]client.Machine),
		Pricing:  pricing,
		Ledger:   led,
	}
	net.SetLedger(led)
	bed.Transit = transport.New(net, opts.PathAlternates)
	bed.Transit.SetLedger(led)
	bed.Faults = spec.Faults
	var ts core.Transport = bed.Transit
	if spec.Faults != nil {
		ts = spec.Faults.WrapTransport(ts)
	}
	if spec.Shards > 0 {
		bed.Fleet = shard.New(shard.Config{
			Shards:    spec.Shards,
			Registry:  bed.Registry,
			Transport: ts,
			Pricing:   bed.Pricing,
			Options:   opts,
		})
		bed.Manager = bed.Fleet
	} else {
		bed.Manager = core.NewManager(bed.Registry, ts, bed.Pricing, opts)
	}
	for _, node := range serverNodes {
		srv, err := cmfs.NewServer(media.ServerID(node), cfg)
		if err != nil {
			return nil, err
		}
		srv.SetLedger(led)
		bed.Servers[srv.ID()] = srv
		var ms core.MediaServer = srv
		if spec.Faults != nil {
			ms = spec.Faults.WrapServer(srv, node)
		}
		bed.Manager.AddServer(ms, node)
	}
	for _, node := range clientNodes {
		c := client.Workstation(client.MachineID(node), node)
		bed.Clients[c.ID] = c
	}
	return bed, nil
}

// MustNew is New that panics on error.
func MustNew(spec Spec) *Bed {
	b, err := New(spec)
	if err != nil {
		panic(err)
	}
	return b
}

// ServerIDs returns the bed's server ids in index order.
func (b *Bed) ServerIDs() []media.ServerID {
	out := make([]media.ServerID, 0, len(b.Servers))
	for i := 1; ; i++ {
		id := media.ServerID(fmt.Sprintf("server-%d", i))
		if _, ok := b.Servers[id]; !ok {
			break
		}
		out = append(out, id)
	}
	return out
}

// Client returns the machine client-<n>.
func (b *Bed) Client(n int) client.Machine {
	return b.Clients[client.MachineID(fmt.Sprintf("client-%d", n))]
}

// AddNewsArticle builds and registers a standard news article spread across
// the bed's servers; see media.BuildNewsArticle for the variant layout.
func (b *Bed) AddNewsArticle(id media.DocumentID, title string, duration time.Duration) (media.Document, error) {
	doc := media.BuildNewsArticle(media.NewsArticleSpec{
		ID:       id,
		Title:    title,
		Duration: duration,
		Servers:  b.ServerIDs(),
		VideoQualities: []qos.VideoQoS{
			{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			{Color: qos.Color, FrameRate: 15, Resolution: qos.TVResolution},
			{Color: qos.Grey, FrameRate: 25, Resolution: qos.TVResolution},
			{Color: qos.BlackWhite, FrameRate: 15, Resolution: qos.TVResolution},
		},
		AudioQualities: []qos.AudioQoS{
			{Grade: qos.CDQuality, Language: qos.English},
			{Grade: qos.TelephoneQuality, Language: qos.English},
		},
		Languages:    []qos.Language{qos.English, qos.French},
		CopyrightFee: 500,
	})
	if err := b.Registry.Add(doc); err != nil {
		return media.Document{}, err
	}
	return doc, nil
}
