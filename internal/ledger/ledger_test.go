package ledger

import (
	"strings"
	"testing"

	"qosneg/internal/telemetry"
)

func TestBalancedAccountIsEmpty(t *testing.T) {
	l := New()
	l.Acquire(KindCMFS, "server-1", 1)
	l.Acquire(KindNetwork, "", 1)
	l.Release(KindCMFS, "server-1", 1)
	l.Release(KindNetwork, "", 1)
	if err := l.CheckEmpty(); err != nil {
		t.Fatal(err)
	}
	if a, r := l.Counts(); a != 2 || r != 2 {
		t.Errorf("counts = %d/%d", a, r)
	}
	if l.Open() != 0 {
		t.Errorf("open = %d", l.Open())
	}
}

func TestLeakDetected(t *testing.T) {
	l := New()
	l.Acquire(KindCMFS, "server-1", 7)
	err := l.CheckEmpty()
	if err == nil {
		t.Fatal("leak not detected")
	}
	if !strings.Contains(err.Error(), "cmfs[server-1]/7") {
		t.Errorf("leak not named: %v", err)
	}
}

func TestDoubleReleaseIsViolation(t *testing.T) {
	l := New()
	var seen []string
	l.OnViolation(func(msg string) { seen = append(seen, msg) })
	l.Acquire(KindTransport, "", 3)
	l.Release(KindTransport, "", 3)
	l.Release(KindTransport, "", 3)
	if len(seen) != 1 || !strings.Contains(seen[0], "double release") {
		t.Fatalf("violation callback = %v", seen)
	}
	if got := l.Violations(); len(got) != 1 {
		t.Errorf("violations = %v", got)
	}
	if err := l.CheckEmpty(); err == nil {
		t.Error("violations must fail the quiescence check")
	}
}

func TestDoubleAcquireIsViolation(t *testing.T) {
	l := New()
	l.Acquire(KindNetwork, "", 5)
	l.Acquire(KindNetwork, "", 5)
	if got := l.Violations(); len(got) != 1 || !strings.Contains(got[0], "double acquire") {
		t.Fatalf("violations = %v", got)
	}
}

func TestForgetIsNotALeakOrViolation(t *testing.T) {
	l := New()
	l.Acquire(KindCMFS, "server-2", 9)
	l.Forget(KindCMFS, "server-2", 9)
	if err := l.CheckEmpty(); err != nil {
		t.Fatal(err)
	}
	// Forgetting something not open is a no-op, not a violation.
	l.Forget(KindCMFS, "server-2", 9)
	if got := l.Violations(); len(got) != 0 {
		t.Errorf("violations = %v", got)
	}
}

func TestInstrumentedCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	l := New()
	l.Instrument(reg)
	l.Acquire(KindCMFS, "server-1", 1)
	l.Acquire(KindCMFS, "server-1", 2)
	l.Release(KindCMFS, "server-1", 1)
	openGauge := reg.Gauge("qosneg_ledger_open_resources", "")
	if openGauge.Value() != 1 {
		t.Errorf("open gauge = %d", openGauge.Value())
	}
	leaked := reg.Counter("qosneg_leaked_reservations_total", "")
	if leaked.Value() != 0 {
		t.Errorf("leaked = %d before check", leaked.Value())
	}
	if err := l.CheckEmpty(); err == nil {
		t.Fatal("leak not detected")
	}
	if leaked.Value() != 1 {
		t.Errorf("leaked = %d after check", leaked.Value())
	}
	// A double release counts immediately.
	l.Release(KindCMFS, "server-1", 1)
	if leaked.Value() != 2 {
		t.Errorf("leaked = %d after double release", leaked.Value())
	}
}

func TestNilLedgerIsInert(t *testing.T) {
	var l *Ledger
	l.Acquire(KindCMFS, "s", 1)
	l.Release(KindCMFS, "s", 1)
	l.Forget(KindCMFS, "s", 1)
	l.OnViolation(func(string) {})
	l.Instrument(telemetry.NewRegistry())
	if l.Open() != 0 || l.Violations() != nil || l.CheckEmpty() != nil {
		t.Error("nil ledger must be inert")
	}
	if a, r := l.Counts(); a != 0 || r != 0 {
		t.Error("nil ledger counts")
	}
}
