// Package ledger is the resource ledger behind the lifecycle leak checks:
// a strict double-entry account of every resource the QoS manager's
// commitment step acquires — CMFS stream reservations, network bandwidth
// reservations, transport connections — and every release that balances
// it. The substrate packages (cmfs, network, transport) carry hooks that
// post to an installed ledger on every acquire and release, so a test can
// assert the paper's step-5/step-6 bookkeeping invariant directly:
//
//	all sessions terminal  ⇒  the ledger is empty
//
// A release with no matching open entry is a violation (a double release,
// or a release of something never acquired) and is reported immediately
// through the OnViolation callback — the fail-fast half of the check. The
// slow half, leak detection, runs at quiescence via CheckEmpty.
//
// The ledger is always on in the test beds (package testbed and the core
// test fixtures install one), cheap enough to leave on everywhere (one
// mutexed map operation per resource event), and nil-safe: every method on
// a nil *Ledger is a no-op, so instrumented substrate code needs no guards.
package ledger

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"qosneg/internal/telemetry"
)

// Metric names registered by Instrument.
const (
	// MetricLeaked counts resources found leaked at a quiescence check or
	// released twice.
	MetricLeaked = "qosneg_leaked_reservations_total"
	// MetricOpen gauges the resources currently held open.
	MetricOpen = "qosneg_ledger_open_resources"
)

// Resource kinds the substrate posts.
const (
	// KindCMFS is a stream reservation on a continuous-media file server;
	// Owner is the server id.
	KindCMFS = "cmfs"
	// KindNetwork is a path bandwidth reservation; Owner is empty.
	KindNetwork = "network"
	// KindTransport is an established transport connection (tracked by its
	// underlying network reservation id); Owner is empty.
	KindTransport = "transport"
)

// Resource identifies one acquirable resource.
type Resource struct {
	Kind  string
	Owner string
	ID    uint64
}

// String renders "kind[owner]/id".
func (r Resource) String() string {
	if r.Owner != "" {
		return fmt.Sprintf("%s[%s]/%d", r.Kind, r.Owner, r.ID)
	}
	return fmt.Sprintf("%s/%d", r.Kind, r.ID)
}

// Ledger is the double-entry resource account. It is safe for concurrent
// use; the zero value is not usable, build one with New. A nil *Ledger is
// inert.
type Ledger struct {
	mu         sync.Mutex
	open       map[Resource]bool
	acquires   uint64
	releases   uint64
	violations []string
	onViolate  func(string)

	// Telemetry series, installed by Instrument; nil when uninstrumented.
	leaked    *telemetry.Counter
	openGauge *telemetry.Gauge
}

// New returns an empty ledger.
func New() *Ledger {
	return &Ledger{open: make(map[Resource]bool)}
}

// OnViolation installs a callback invoked synchronously (outside the
// ledger lock) with a description of each violation as it happens; tests
// install t.Error-shaped callbacks here to fail fast on double releases.
func (l *Ledger) OnViolation(f func(string)) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.onViolate = f
	l.mu.Unlock()
}

// Instrument wires the ledger into a telemetry registry: a counter of
// detected leaks and violations, and a gauge of currently open resources.
// A nil registry is a no-op.
func (l *Ledger) Instrument(reg *telemetry.Registry) {
	if l == nil || reg == nil {
		return
	}
	leaked := reg.Counter(MetricLeaked,
		"Resources found leaked (still open at a quiescence check) or released twice.")
	openGauge := reg.Gauge(MetricOpen,
		"Resources currently held open in the ledger.")
	l.mu.Lock()
	l.leaked, l.openGauge = leaked, openGauge
	l.openGauge.Set(int64(len(l.open)))
	l.mu.Unlock()
}

// Acquire posts one resource acquisition. Acquiring a resource that is
// already open is a violation (the substrate reused a live id).
func (l *Ledger) Acquire(kind, owner string, id uint64) {
	if l == nil {
		return
	}
	r := Resource{Kind: kind, Owner: owner, ID: id}
	var violation string
	l.mu.Lock()
	l.acquires++
	if l.open[r] {
		violation = fmt.Sprintf("ledger: double acquire of %s", r)
		l.violations = append(l.violations, violation)
		l.leaked.Inc()
	}
	l.open[r] = true
	l.openGauge.Set(int64(len(l.open)))
	f := l.onViolate
	l.mu.Unlock()
	if violation != "" && f != nil {
		f(violation)
	}
}

// Release balances one acquisition. Releasing a resource with no open
// entry is a violation: a double release, or a release of something never
// acquired.
func (l *Ledger) Release(kind, owner string, id uint64) {
	if l == nil {
		return
	}
	r := Resource{Kind: kind, Owner: owner, ID: id}
	var violation string
	l.mu.Lock()
	l.releases++
	if !l.open[r] {
		violation = fmt.Sprintf("ledger: release of %s with no open entry (double release?)", r)
		l.violations = append(l.violations, violation)
		l.leaked.Inc()
	}
	delete(l.open, r)
	l.openGauge.Set(int64(len(l.open)))
	f := l.onViolate
	l.mu.Unlock()
	if violation != "" && f != nil {
		f(violation)
	}
}

// Forget drops an open entry without counting it as a violation: the
// resource ceased to exist through a modeled failure (a server crash
// losing its admission state), not through an orderly release. The crash
// path in the substrate calls it so post-crash cleanup does not read as a
// leak.
func (l *Ledger) Forget(kind, owner string, id uint64) {
	if l == nil {
		return
	}
	r := Resource{Kind: kind, Owner: owner, ID: id}
	l.mu.Lock()
	if l.open[r] {
		l.releases++
		delete(l.open, r)
		l.openGauge.Set(int64(len(l.open)))
	}
	l.mu.Unlock()
}

// Open returns the number of currently open resources.
func (l *Ledger) Open() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.open)
}

// Counts returns the total acquires and releases posted so far.
func (l *Ledger) Counts() (acquires, releases uint64) {
	if l == nil {
		return 0, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.acquires, l.releases
}

// Violations returns the violation descriptions recorded so far.
func (l *Ledger) Violations() []string {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.violations...)
}

// CheckEmpty is the quiescence check: with every session terminal, the
// ledger must hold no open resource and no recorded violation. It returns
// an error naming the leaked resources (sorted, bounded) and counts each
// leak on the instrumented leak counter.
func (l *Ledger) CheckEmpty() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	var leaks []string
	for r := range l.open {
		leaks = append(leaks, r.String())
	}
	nviol := len(l.violations)
	l.leaked.Add(uint64(len(leaks)))
	l.mu.Unlock()
	if len(leaks) == 0 && nviol == 0 {
		return nil
	}
	nleaks := len(leaks)
	sort.Strings(leaks)
	if nleaks > 8 {
		leaks = append(leaks[:8], fmt.Sprintf("... and %d more", nleaks-8))
	}
	return fmt.Errorf("ledger: %d resources leaked, %d violations: %s",
		nleaks, nviol, strings.Join(leaks, ", "))
}
