package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"qosneg/internal/network"
	"qosneg/internal/qos"
)

func request(rate qos.BitRate) qos.NetworkQoS {
	return qos.NetworkQoS{MaxBitRate: 2 * rate, AvgBitRate: rate, Jitter: 20 * time.Millisecond, LossRate: 0.01}
}

func dualPathSystem(t *testing.T) *System {
	t.Helper()
	n, err := network.BuildDualPath("client", "server", 10*qos.MBitPerSecond, 4*qos.MBitPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	return New(n, 3)
}

func TestConnectClose(t *testing.T) {
	s := dualPathSystem(t)
	c, err := s.Connect("server", "client", request(6*qos.MBitPerSecond))
	if err != nil {
		t.Fatal(err)
	}
	if c.Metrics.Hops != 3 {
		t.Errorf("expected the 3-hop primary, got %d hops", c.Metrics.Hops)
	}
	if s.Network().ActiveReservations() != 1 {
		t.Errorf("reservations = %d", s.Network().ActiveReservations())
	}
	if err := s.Close(c); err != nil {
		t.Fatal(err)
	}
	if s.Network().ActiveReservations() != 0 {
		t.Errorf("reservation leaked")
	}
}

func TestConnectFallsBackToAlternatePath(t *testing.T) {
	s := dualPathSystem(t)
	// Fill the primary (10 Mbit/s) with a 7 Mbit/s stream; a second
	// 3 Mbit/s stream fits either route, a third 4 Mbit/s one must take
	// the backup.
	first, err := s.Connect("server", "client", request(7*qos.MBitPerSecond))
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Connect("server", "client", request(4*qos.MBitPerSecond))
	if err != nil {
		t.Fatalf("backup route not used: %v", err)
	}
	if second.Metrics.Hops != 4 {
		t.Errorf("expected the 4-hop backup, got %d hops", second.Metrics.Hops)
	}
	_ = first
}

func TestConnectUnavailable(t *testing.T) {
	s := dualPathSystem(t)
	if _, err := s.Connect("server", "client", request(20*qos.MBitPerSecond)); !errors.Is(err, ErrUnavailable) {
		t.Errorf("want ErrUnavailable, got %v", err)
	}
}

func TestDiscreteMediaBypassNetwork(t *testing.T) {
	s := dualPathSystem(t)
	c, err := s.Connect("server", "client", qos.NetworkQoS{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Network().ActiveReservations() != 0 {
		t.Error("discrete media reserved bandwidth")
	}
	if err := s.Close(c); err != nil {
		t.Errorf("closing a zero connection: %v", err)
	}
}

func TestConcurrentConnects(t *testing.T) {
	n, err := network.BuildDualPath("client", "server", 10*qos.MBitPerSecond, 4*qos.MBitPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	s := New(n, 3)
	q := request(2 * qos.MBitPerSecond)
	var mu sync.Mutex
	var conns []Connection
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := s.Connect("server", "client", q)
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}()
	}
	wg.Wait()
	// Capacity: primary 10/2=5 streams, backup 4/2=2 streams → ≤7 total.
	if len(conns) == 0 || len(conns) > 7 {
		t.Errorf("established %d connections, want 1..7", len(conns))
	}
	for _, c := range conns {
		if err := s.Close(c); err != nil {
			t.Error(err)
		}
	}
	if n.ActiveReservations() != 0 {
		t.Errorf("leaked %d reservations", n.ActiveReservations())
	}
}

func TestNewClampsAlternates(t *testing.T) {
	n := network.New()
	s := New(n, 0)
	if s.alternates != 1 {
		t.Errorf("alternates = %d", s.alternates)
	}
}
