// Package transport is the transport system of the prototype: the facade
// the QoS manager calls in negotiation step 5 to reserve end-to-end network
// resources for one stream ("asks the transport system and the media file
// servers to reserve resources to support the QoS associated with the
// system offer"). It selects a path through the network substrate and
// installs a bandwidth reservation on it, retrying alternate paths when a
// concurrent reservation races it.
package transport

import (
	"errors"
	"fmt"
	"sync"

	"qosneg/internal/ledger"
	"qosneg/internal/network"
	"qosneg/internal/qos"
)

// ErrUnavailable is returned when no feasible path can be reserved.
var ErrUnavailable = errors.New("transport: no feasible path can be reserved")

// Connection is an established end-to-end reservation.
type Connection struct {
	Reservation network.Reservation
	Metrics     network.PathMetrics
	// QoS is the request the connection was established for.
	QoS qos.NetworkQoS
}

// System is the transport service. It is safe for concurrent use (the
// underlying network serializes reservation state).
type System struct {
	net *network.Network
	// alternates is how many candidate paths Connect tries.
	alternates int

	// mu guards led only.
	mu sync.Mutex
	// led, when non-nil, records every established connection (keyed by
	// its network reservation id) in the resource ledger. Zero-throughput
	// connections hold no resource and are not tracked.
	led *ledger.Ledger
}

// SetLedger installs a resource ledger on the connection lifecycle; a nil
// ledger detaches.
func (s *System) SetLedger(l *ledger.Ledger) {
	s.mu.Lock()
	s.led = l
	s.mu.Unlock()
}

func (s *System) ledger() *ledger.Ledger {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.led
}

// New builds a transport system over the given network, trying up to
// alternates candidate paths per connection request (minimum 1).
func New(n *network.Network, alternates int) *System {
	if alternates < 1 {
		alternates = 1
	}
	return &System{net: n, alternates: alternates}
}

// Network exposes the underlying substrate (for congestion monitoring).
func (s *System) Network() *network.Network { return s.net }

// Connect reserves an end-to-end stream from src to dst with the given
// network QoS. A request with zero throughput (discrete media) returns a
// zero-valued Connection without touching the network: the prototype
// fetches discrete media ahead of the presentation over the signalling
// channel.
func (s *System) Connect(src, dst network.NodeID, q qos.NetworkQoS) (Connection, error) {
	if q.Zero() {
		return Connection{QoS: q}, nil
	}
	paths, err := s.net.FindPaths(src, dst, q, s.alternates)
	if err != nil {
		return Connection{}, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	var lastErr error
	for _, p := range paths {
		r, err := s.net.Reserve(p, q)
		if err != nil {
			lastErr = err
			continue
		}
		m, err := s.net.Metrics(p)
		if err != nil {
			// The path vanished between Reserve and Metrics; give the
			// bandwidth back and try the next candidate.
			s.net.Release(r.ID)
			lastErr = err
			continue
		}
		s.ledger().Acquire(ledger.KindTransport, "", uint64(r.ID))
		return Connection{Reservation: r, Metrics: m, QoS: q}, nil
	}
	return Connection{}, fmt.Errorf("%w: %v", ErrUnavailable, lastErr)
}

// Close releases a connection's reservation. Closing a zero-throughput
// connection is a no-op.
func (s *System) Close(c Connection) error {
	if c.QoS.Zero() && c.Reservation.ID == 0 {
		return nil
	}
	err := s.net.Release(c.Reservation.ID)
	if err == nil {
		// A failed release means the reservation was already gone — the
		// network-level ledger hook has flagged the double release; posting
		// the transport entry too would double-count it.
		s.ledger().Release(ledger.KindTransport, "", uint64(c.Reservation.ID))
	}
	return err
}
