// Package client models the client machines of the news-on-demand
// prototype: their display, audio output and installed decoders. Two steps
// of the negotiation procedure read this model:
//
//   - Step 1, static local negotiation: "check whether the client machine
//     characteristics, such as the screen size and the screen color,
//     support the requested QoS" — if not, the user gets
//     FAILEDWITHLOCALOFFER together with the best QoS the machine can
//     render.
//   - Step 2, static compatibility checking: "check the format
//     compatibility of the variants ... with the decoder(s) supported by
//     the client machine".
package client

import (
	"fmt"

	"qosneg/internal/media"
	"qosneg/internal/network"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
)

// MachineID names a client machine.
type MachineID string

// Display describes the client's screen.
type Display struct {
	// WidthPx is the horizontal resolution in pixels per line, comparable
	// with the Figure 2 resolution scale.
	WidthPx int `json:"widthPx"`
	// HeightPx is the vertical resolution.
	HeightPx int `json:"heightPx"`
	// Color is the best color quality the screen can render; a
	// black&white screen cannot satisfy a color request (the paper's
	// FAILEDWITHLOCALOFFER example).
	Color qos.ColorQuality `json:"color"`
}

// Machine is one client machine.
type Machine struct {
	ID      MachineID `json:"id"`
	Display Display   `json:"display"`
	// MaxFrameRate is the best frame rate the machine's decoder/display
	// pipeline sustains.
	MaxFrameRate int `json:"maxFrameRate"`
	// Audio is the best audio grade the output hardware supports; zero
	// means the machine has no audio output.
	Audio qos.AudioGrade `json:"audio,omitempty"`
	// Decoders lists the installed decoder formats.
	Decoders []media.Format `json:"decoders"`
	// Node is the machine's attachment point in the network substrate.
	Node network.NodeID `json:"node"`
}

// Validate checks the machine description.
func (m Machine) Validate() error {
	if m.ID == "" {
		return fmt.Errorf("client: empty machine id")
	}
	if m.Node == "" {
		return fmt.Errorf("client %s: no network attachment", m.ID)
	}
	if m.Display.WidthPx <= 0 || m.Display.HeightPx <= 0 {
		return fmt.Errorf("client %s: bad display %dx%d", m.ID, m.Display.WidthPx, m.Display.HeightPx)
	}
	if !m.Display.Color.Valid() {
		return fmt.Errorf("client %s: invalid display color %d", m.ID, int(m.Display.Color))
	}
	if m.MaxFrameRate <= 0 {
		return fmt.Errorf("client %s: non-positive max frame rate", m.ID)
	}
	if m.Audio != 0 && !m.Audio.Valid() {
		return fmt.Errorf("client %s: invalid audio grade %d", m.ID, int(m.Audio))
	}
	if len(m.Decoders) == 0 {
		return fmt.Errorf("client %s: no decoders installed", m.ID)
	}
	for _, f := range m.Decoders {
		if !f.Known() {
			return fmt.Errorf("client %s: unknown decoder format %q", m.ID, f)
		}
	}
	return nil
}

// SupportsFormat reports whether the machine has a decoder for format f.
func (m Machine) SupportsFormat(f media.Format) bool {
	for _, d := range m.Decoders {
		if d == f {
			return true
		}
	}
	return false
}

// LocalViolation describes one way the desired profile exceeds the client
// machine's capabilities.
type LocalViolation struct {
	Kind   qos.MediaKind
	Param  string
	Detail string
}

// String renders e.g. "video color: requested color, screen renders grey".
func (v LocalViolation) String() string {
	return fmt.Sprintf("%s %s: %s", v.Kind, v.Param, v.Detail)
}

// CheckLocal runs negotiation step 1 against the desired MM profile and
// returns every violated characteristic. An empty result means the machine
// supports the requested QoS.
func (m Machine) CheckLocal(desired profile.MMProfile) []LocalViolation {
	var out []LocalViolation
	if v := desired.Video; v != nil {
		if v.Color > m.Display.Color {
			out = append(out, LocalViolation{qos.Video, "color",
				fmt.Sprintf("requested %s, screen renders %s", v.Color, m.Display.Color)})
		}
		if v.Resolution > m.Display.WidthPx {
			out = append(out, LocalViolation{qos.Video, "resolution",
				fmt.Sprintf("requested %d pixels/line, screen has %d", v.Resolution, m.Display.WidthPx)})
		}
		if v.FrameRate > m.MaxFrameRate {
			out = append(out, LocalViolation{qos.Video, "frame rate",
				fmt.Sprintf("requested %d frames/s, machine sustains %d", v.FrameRate, m.MaxFrameRate)})
		}
	}
	if a := desired.Audio; a != nil {
		if m.Audio == 0 {
			out = append(out, LocalViolation{qos.Audio, "output", "machine has no audio output"})
		} else if a.Grade > m.Audio {
			out = append(out, LocalViolation{qos.Audio, "grade",
				fmt.Sprintf("requested %s quality, hardware plays %s", a.Grade, m.Audio)})
		}
	}
	if i := desired.Image; i != nil {
		if i.Color > m.Display.Color {
			out = append(out, LocalViolation{qos.Image, "color",
				fmt.Sprintf("requested %s, screen renders %s", i.Color, m.Display.Color)})
		}
		if i.Resolution > m.Display.WidthPx {
			out = append(out, LocalViolation{qos.Image, "resolution",
				fmt.Sprintf("requested %d pixels/line, screen has %d", i.Resolution, m.Display.WidthPx)})
		}
	}
	return out
}

// LocalOffer clamps the desired MM profile to the machine's capabilities:
// the "local offer" returned to the user with FAILEDWITHLOCALOFFER so the
// GUI can display what this machine could play instead.
func (m Machine) LocalOffer(desired profile.MMProfile) profile.MMProfile {
	out := desired
	if v := desired.Video; v != nil {
		c := *v
		if c.Color > m.Display.Color {
			c.Color = m.Display.Color
		}
		if c.Resolution > m.Display.WidthPx {
			c.Resolution = m.Display.WidthPx
		}
		if c.FrameRate > m.MaxFrameRate {
			c.FrameRate = m.MaxFrameRate
		}
		out.Video = &c
	}
	if a := desired.Audio; a != nil {
		if m.Audio == 0 {
			out.Audio = nil
		} else if a.Grade > m.Audio {
			c := *a
			c.Grade = m.Audio
			out.Audio = &c
		}
	}
	if i := desired.Image; i != nil {
		c := *i
		if c.Color > m.Display.Color {
			c.Color = m.Display.Color
		}
		if c.Resolution > m.Display.WidthPx {
			c.Resolution = m.Display.WidthPx
		}
		out.Image = &c
	}
	return out
}

// CanDecode runs the per-variant half of negotiation step 2: whether this
// machine can decode and render the variant. A variant whose format has no
// installed decoder is excluded from the feasible system offers; a variant
// whose QoS the display cannot render (e.g. a color file on a black&white
// screen is renderable, but a 1920-pixel file on a 640-pixel screen is
// downscaled, which the prototype's players do not implement) is excluded
// as well.
func (m Machine) CanDecode(v media.Variant) bool {
	if !m.SupportsFormat(v.Format) {
		return false
	}
	switch {
	case v.QoS.Video != nil:
		return v.QoS.Video.Resolution <= m.Display.WidthPx && v.QoS.Video.FrameRate <= m.MaxFrameRate
	case v.QoS.Audio != nil:
		return m.Audio != 0 && v.QoS.Audio.Grade <= m.Audio
	case v.QoS.Image != nil:
		return v.QoS.Image.Resolution <= m.Display.WidthPx
	}
	return true
}

// Workstation returns a full-capability reference machine: color display,
// CD audio, every known decoder. Tests and examples use it as the default
// client.
func Workstation(id MachineID, node network.NodeID) Machine {
	return Machine{
		ID:           id,
		Display:      Display{WidthPx: 1280, HeightPx: 1024, Color: qos.SuperColor},
		MaxFrameRate: 60,
		Audio:        qos.CDQuality,
		Decoders:     media.Formats(),
		Node:         node,
	}
}

// Fingerprint hashes the machine's capability surface — display geometry and
// color depth, frame-rate ceiling, audio grade and installed decoder set —
// into a 64-bit value. Two machines with the same fingerprint are guaranteed
// to produce the same step-1/step-2 decisions for any document, which is what
// lets the offer cache share candidate sets across users on the same machine
// class. Identity fields (ID, Node) are deliberately excluded: they never
// influence variant filtering, and folding them in would defeat the sharing.
// The decoder fold is order-independent so permuted decoder lists (e.g. from
// different config files describing the same hardware) still collide.
func (m Machine) Fingerprint() uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= fnvPrime
		}
	}
	mix(uint64(m.Display.WidthPx))
	mix(uint64(m.Display.HeightPx))
	mix(uint64(m.Display.Color))
	mix(uint64(m.MaxFrameRate))
	mix(uint64(m.Audio))
	var dec uint64
	for _, f := range m.Decoders {
		fh := uint64(fnvOffset)
		for i := 0; i < len(f); i++ {
			fh ^= uint64(f[i])
			fh *= fnvPrime
		}
		dec ^= fh // XOR: order-independent
	}
	mix(dec)
	mix(uint64(len(m.Decoders)))
	return h
}

// Terminal returns a constrained reference machine: grey-scale display,
// telephone audio, MPEG-1 video only. It triggers the paper's
// FAILEDWITHLOCALOFFER example (color request on a non-color screen).
func Terminal(id MachineID, node network.NodeID) Machine {
	return Machine{
		ID:           id,
		Display:      Display{WidthPx: 640, HeightPx: 480, Color: qos.Grey},
		MaxFrameRate: 25,
		Audio:        qos.TelephoneQuality,
		Decoders:     []media.Format{media.MPEG1, media.MPEG1Audio, media.GIF, media.PlainText},
		Node:         node,
	}
}
