package client

import (
	"strings"
	"testing"
	"time"

	"qosneg/internal/media"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
)

func colorProfile() profile.MMProfile {
	return profile.MMProfile{
		Video: &qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
		Audio: &qos.AudioQoS{Grade: qos.CDQuality},
		Image: &qos.ImageQoS{Color: qos.Color, Resolution: qos.TVResolution},
	}
}

func TestValidate(t *testing.T) {
	if err := Workstation("c1", "node-1").Validate(); err != nil {
		t.Fatalf("workstation invalid: %v", err)
	}
	if err := Terminal("c2", "node-2").Validate(); err != nil {
		t.Fatalf("terminal invalid: %v", err)
	}
	bad := []Machine{
		{}, // everything missing
		{ID: "c", Node: "n", Display: Display{WidthPx: 0, HeightPx: 1, Color: qos.Color}, MaxFrameRate: 25, Decoders: []media.Format{media.MPEG1}},
		{ID: "c", Node: "n", Display: Display{WidthPx: 1, HeightPx: 1, Color: 0}, MaxFrameRate: 25, Decoders: []media.Format{media.MPEG1}},
		{ID: "c", Node: "n", Display: Display{WidthPx: 1, HeightPx: 1, Color: qos.Color}, MaxFrameRate: 0, Decoders: []media.Format{media.MPEG1}},
		{ID: "c", Node: "n", Display: Display{WidthPx: 1, HeightPx: 1, Color: qos.Color}, MaxFrameRate: 25},
		{ID: "c", Node: "n", Display: Display{WidthPx: 1, HeightPx: 1, Color: qos.Color}, MaxFrameRate: 25, Decoders: []media.Format{"AVI"}},
		{ID: "c", Node: "n", Display: Display{WidthPx: 1, HeightPx: 1, Color: qos.Color}, MaxFrameRate: 25, Audio: 7, Decoders: []media.Format{media.MPEG1}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad machine %d accepted", i)
		}
	}
}

func TestCheckLocalPasses(t *testing.T) {
	m := Workstation("c1", "n1")
	if v := m.CheckLocal(colorProfile()); len(v) != 0 {
		t.Errorf("workstation should support the profile: %v", v)
	}
}

// TestCheckLocalColorViolation reproduces the paper's FAILEDWITHLOCALOFFER
// example: "the user asks for a color video, while the client machine
// screen is black&white".
func TestCheckLocalColorViolation(t *testing.T) {
	m := Terminal("c1", "n1")
	m.Display.Color = qos.BlackWhite
	violations := m.CheckLocal(colorProfile())
	if len(violations) == 0 {
		t.Fatal("no violations reported")
	}
	var hasColor bool
	for _, v := range violations {
		if v.Kind == qos.Video && v.Param == "color" {
			hasColor = true
			if !strings.Contains(v.String(), "color") {
				t.Errorf("violation text: %s", v)
			}
		}
	}
	if !hasColor {
		t.Errorf("color violation missing: %v", violations)
	}
}

func TestCheckLocalEveryDimension(t *testing.T) {
	m := Machine{
		ID: "c", Node: "n",
		Display:      Display{WidthPx: 320, HeightPx: 240, Color: qos.Grey},
		MaxFrameRate: 10,
		Audio:        0, // no audio hardware
		Decoders:     []media.Format{media.MPEG1},
	}
	p := profile.MMProfile{
		Video: &qos.VideoQoS{Color: qos.SuperColor, FrameRate: 30, Resolution: 1920},
		Audio: &qos.AudioQoS{Grade: qos.CDQuality},
		Image: &qos.ImageQoS{Color: qos.Color, Resolution: 1920},
	}
	violations := m.CheckLocal(p)
	if len(violations) != 6 {
		t.Errorf("want 6 violations (3 video, 1 audio, 2 image), got %d: %v", len(violations), violations)
	}
}

func TestCheckLocalAudioGrade(t *testing.T) {
	m := Terminal("c1", "n1") // telephone audio
	p := profile.MMProfile{Audio: &qos.AudioQoS{Grade: qos.CDQuality}}
	v := m.CheckLocal(p)
	if len(v) != 1 || v[0].Kind != qos.Audio {
		t.Errorf("violations = %v", v)
	}
	// Telephone request passes.
	p.Audio.Grade = qos.TelephoneQuality
	if v := m.CheckLocal(p); len(v) != 0 {
		t.Errorf("telephone request should pass: %v", v)
	}
}

func TestLocalOfferClamps(t *testing.T) {
	m := Machine{
		ID: "c", Node: "n",
		Display:      Display{WidthPx: 640, HeightPx: 480, Color: qos.Grey},
		MaxFrameRate: 15,
		Audio:        0,
		Decoders:     []media.Format{media.MPEG1},
	}
	offer := m.LocalOffer(colorProfile())
	if offer.Video.Color != qos.Grey || offer.Video.Resolution != 480 || offer.Video.FrameRate != 15 {
		t.Errorf("video offer = %+v", offer.Video)
	}
	if offer.Audio != nil {
		t.Error("audio offer should be dropped on a machine without audio")
	}
	if offer.Image.Color != qos.Grey {
		t.Errorf("image offer = %+v", offer.Image)
	}
	// The local offer itself passes the local check.
	if v := m.CheckLocal(offer); len(v) != 0 {
		t.Errorf("local offer still violates: %v", v)
	}
	// Clamping never mutates the input.
	in := colorProfile()
	m.LocalOffer(in)
	if in.Video.Color != qos.Color {
		t.Error("LocalOffer mutated its input")
	}
}

func TestLocalOfferAudioClamp(t *testing.T) {
	m := Terminal("c1", "n1")
	p := profile.MMProfile{Audio: &qos.AudioQoS{Grade: qos.CDQuality, Language: qos.French}}
	offer := m.LocalOffer(p)
	if offer.Audio == nil || offer.Audio.Grade != qos.TelephoneQuality {
		t.Errorf("audio offer = %+v", offer.Audio)
	}
	if offer.Audio.Language != qos.French {
		t.Error("language must be preserved")
	}
}

func TestSupportsFormatAndCanDecode(t *testing.T) {
	m := Terminal("c1", "n1") // MPEG-1 video only, 640 px, 25 fps, telephone audio
	if !m.SupportsFormat(media.MPEG1) || m.SupportsFormat(media.MJPEG) {
		t.Error("decoder list wrong")
	}
	mk := func(f media.Format, v qos.VideoQoS) media.Variant {
		return media.VideoVariant("v", "s", f, v, time.Minute)
	}
	// Paper's step 2 example: an MJPEG variant on an MPEG-only machine is
	// not feasible.
	if m.CanDecode(mk(media.MJPEG, qos.VideoQoS{Color: qos.Grey, FrameRate: 25, Resolution: 480})) {
		t.Error("MJPEG variant must be rejected")
	}
	if !m.CanDecode(mk(media.MPEG1, qos.VideoQoS{Color: qos.Grey, FrameRate: 25, Resolution: 480})) {
		t.Error("decodable variant rejected")
	}
	// Too high resolution or frame rate for the terminal.
	if m.CanDecode(mk(media.MPEG1, qos.VideoQoS{Color: qos.Grey, FrameRate: 25, Resolution: 1920})) {
		t.Error("1920-pixel variant must be rejected on a 640-pixel screen")
	}
	if m.CanDecode(mk(media.MPEG1, qos.VideoQoS{Color: qos.Grey, FrameRate: 60, Resolution: 480})) {
		t.Error("60 fps variant must be rejected at 25 fps max")
	}
	// Audio grade cap.
	cd := media.AudioVariant("a", "s", media.MPEG1Audio, qos.AudioQoS{Grade: qos.CDQuality}, time.Minute)
	tel := media.AudioVariant("a", "s", media.MPEG1Audio, qos.AudioQoS{Grade: qos.TelephoneQuality}, time.Minute)
	if m.CanDecode(cd) {
		t.Error("CD audio must be rejected on telephone hardware")
	}
	if !m.CanDecode(tel) {
		t.Error("telephone audio rejected")
	}
	// Text is always renderable given a decoder.
	txt := media.TextVariant("t", "s", qos.English, 128)
	if !m.CanDecode(txt) {
		t.Error("text variant rejected")
	}
	// Image resolution cap.
	img := media.ImageVariant("i", "s", media.GIF, qos.ImageQoS{Color: qos.Grey, Resolution: 1920})
	if m.CanDecode(img) {
		t.Error("oversized image accepted")
	}
}

func TestNoAudioMachineRejectsAudio(t *testing.T) {
	m := Workstation("c1", "n1")
	m.Audio = 0
	a := media.AudioVariant("a", "s", media.PCM, qos.AudioQoS{Grade: qos.TelephoneQuality}, time.Minute)
	if m.CanDecode(a) {
		t.Error("machine without audio output decoded audio")
	}
}
