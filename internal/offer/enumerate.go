package offer

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"qosneg/internal/client"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/qos"
)

// ErrTooManyOffers is returned when the cartesian product of variants
// exceeds the enumeration limit.
var ErrTooManyOffers = errors.New("offer: too many feasible system offers")

// NoVariantError reports that a monomedia component has no variant the
// client machine can decode: the condition behind FAILEDWITHOUTOFFER
// ("no possible instantiation of the functional configuration to a
// physical configuration exists, e.g. the client machine does not support
// a suitable decoder").
//
// Excluded distinguishes the transient case: decodable variants existed
// but every one was dropped by the exclude filter (variants on quarantined
// servers), which callers map to FAILEDTRYLATER rather than
// FAILEDWITHOUTOFFER.
type NoVariantError struct {
	Monomedia media.MonomediaID
	Excluded  bool
}

func (e *NoVariantError) Error() string {
	if e.Excluded {
		return fmt.Sprintf("offer: every decodable variant for monomedia %s is excluded", e.Monomedia)
	}
	return fmt.Sprintf("offer: no decodable variant for monomedia %s", e.Monomedia)
}

// EnumerateOptions tunes Enumerate.
type EnumerateOptions struct {
	// MaxOffers bounds the cartesian product; 0 selects 1<<20.
	MaxOffers int
	// Guarantee selects the service guarantee priced into each offer.
	Guarantee cost.Guarantee
	// Workers bounds the per-monomedia filtering fan-out; 0 filters on the
	// calling goroutine.
	Workers int
	// Exclude, when non-nil, drops variants for which it returns true
	// before the product is built (the QoS manager's server quarantine).
	Exclude func(media.Variant) bool
}

// Candidate is one decodable variant of a monomedia component, annotated
// with everything the enumeration pipeline needs per offer: the Section 6
// user-QoS → network-QoS mapping and the Section 7 cost of the variant's
// stream. Filtering computes these once per variant, so building one system
// offer out of candidates costs a few additions instead of repeated mapping
// and tariff lookups.
type Candidate struct {
	Variant media.Variant
	// Net is the variant's network QoS (Section 6 mapping).
	Net qos.NetworkQoS
	// NetworkCost and ServerCost price the variant's delivery (Section 7);
	// both are zero for discrete media, which are not billed.
	NetworkCost cost.Money
	ServerCost  cost.Money
	// Continuous marks billable continuous media.
	Continuous bool
}

// Candidates holds, per monomedia component of the document (in document
// order), the variants the client machine can decode: the outcome of
// negotiation step 2, static compatibility checking.
type Candidates [][]Candidate

// Offers returns the size of the cartesian product: how many feasible
// system offers enumeration would yield.
func (c Candidates) Offers() int {
	total := 1
	for _, m := range c {
		total *= len(m)
	}
	return total
}

// maxOffersOrDefault resolves the enumeration bound.
func maxOffersOrDefault(n int) int {
	if n <= 0 {
		return 1 << 20
	}
	return n
}

// Filter runs negotiation step 2 for every monomedia of the document:
// scalable variants expand into their decodable temporal layers (the INRS
// scalable decoder), each surviving layer is mapped to its network QoS and
// priced, and the per-monomedia candidate lists are returned in document
// order. Monomedia are filtered concurrently on up to workers goroutines
// (a bounded fan-out; workers<=1 filters inline).
//
// It returns a *NoVariantError naming the first (in document order)
// monomedia with no decodable variant — with Excluded set when only the
// exclude filter emptied the list — and ctx's error if the context is
// canceled mid-filter.
func Filter(ctx context.Context, doc media.Document, m client.Machine, pricing cost.Pricing, g cost.Guarantee, workers int, exclude func(media.Variant) bool) (Candidates, error) {
	cands := make(Candidates, len(doc.Monomedia))
	excluded := make([]bool, len(doc.Monomedia))
	filterOne := func(i int) {
		mono := doc.Monomedia[i]
		continuous := mono.Kind.Continuous()
		// Most variants survive and most are not scalable, so the variant
		// count is the right capacity hint; scalable expansion may still
		// grow the slice, rarely.
		cands[i] = make([]Candidate, 0, len(mono.Variants))
		for _, v := range mono.Variants {
			for _, layer := range media.ScalableLayers(v) {
				if !m.CanDecode(layer) {
					continue
				}
				if exclude != nil && exclude(layer) {
					excluded[i] = true
					continue
				}
				c := Candidate{Variant: layer, Net: layer.NetworkQoS(), Continuous: continuous}
				if continuous {
					c.NetworkCost, c.ServerCost = pricing.ItemCost(g, cost.Item{
						Rate:     c.Net.AvgBitRate,
						Duration: mono.Duration,
					})
				}
				cands[i] = append(cands[i], c)
			}
		}
	}
	if workers > 1 && len(doc.Monomedia) > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := range doc.Monomedia {
			if ctx != nil && ctx.Err() != nil {
				break
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				filterOne(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range doc.Monomedia {
			filterOne(i)
		}
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	for i, mono := range doc.Monomedia {
		if len(cands[i]) == 0 {
			return nil, &NoVariantError{Monomedia: mono.ID, Excluded: excluded[i]}
		}
	}
	return cands, nil
}

// checkProduct verifies the cartesian product stays within maxOffers,
// mirroring the incremental overflow-safe check Enumerate always used.
func checkProduct(cands Candidates, maxOffers int) (int, error) {
	total := 1
	for _, m := range cands {
		if total > maxOffers/len(m) {
			return 0, fmt.Errorf("%w: product exceeds %d", ErrTooManyOffers, maxOffers)
		}
		total *= len(m)
	}
	return total, nil
}

// buildOffer materializes the system offer selected by the multi-index idx,
// assembling the cost breakdown from the candidates' precomputed prices.
func buildOffer(doc media.Document, cands Candidates, idx []int, copyright cost.Money) SystemOffer {
	o := SystemOffer{Document: doc.ID, Choices: make([]Choice, len(idx))}
	b := cost.Breakdown{Copyright: copyright, Total: copyright}
	var key strings.Builder
	for i, j := range idx {
		c := &cands[i][j]
		o.Choices[i] = Choice{Monomedia: doc.Monomedia[i].ID, Variant: c.Variant}
		if i > 0 {
			key.WriteByte('+')
		}
		key.WriteString(string(c.Variant.ID))
		if c.Continuous {
			b.Network = append(b.Network, c.NetworkCost)
			b.Server = append(b.Server, c.ServerCost)
			b.Total += c.NetworkCost + c.ServerCost
		}
	}
	o.Cost = b
	// Fill the Key() cache here, where the choice order is already in hand:
	// the classification comparators tie-break on Key() and would otherwise
	// re-join the variant ids on every comparison.
	o.key = key.String()
	return o
}

// advanceIndex steps the multi-index to the next tuple in lexicographic
// order (last dimension fastest); it reports false after the last tuple.
func advanceIndex(idx []int, cands Candidates) bool {
	for i := len(idx) - 1; i >= 0; i-- {
		idx[i]++
		if idx[i] < len(cands[i]) {
			return true
		}
		idx[i] = 0
	}
	return false
}

// decodeIndex writes the multi-index of the n-th tuple (lexicographic, last
// dimension fastest) into idx; the parallel pipeline uses it to hand each
// worker a contiguous, independent slice of the product space.
func decodeIndex(idx []int, cands Candidates, n int) {
	for i := len(idx) - 1; i >= 0; i-- {
		size := len(cands[i])
		idx[i] = n % size
		n /= size
	}
}

// Walk streams every feasible system offer in lexicographic variant order,
// calling yield for each; enumeration stops early when yield returns false.
// Offers are materialized one at a time — nothing proportional to the
// product size is ever allocated, which is what lets the negotiation core
// process variant products near the enumeration limit without holding
// 2^20 offers in memory.
func Walk(doc media.Document, cands Candidates, yield func(SystemOffer) bool) {
	if len(cands) == 0 {
		return
	}
	copyright := cost.Money(doc.CopyrightFee)
	idx := make([]int, len(cands))
	for {
		if !yield(buildOffer(doc, cands, idx, copyright)) {
			return
		}
		if !advanceIndex(idx, cands) {
			return
		}
	}
}

// Enumerate produces every feasible system offer for the document on the
// given client machine: negotiation step 2 filters each monomedia's
// variants down to those the machine can decode and render, and the
// cartesian product of the survivors — one variant per monomedia — forms
// the feasible offers, each priced with the Section 7 cost model.
//
// It returns a *NoVariantError when some monomedia has no decodable
// variant, and ErrTooManyOffers when the product exceeds the limit.
//
// Enumerate materializes the whole product; the negotiation hot path uses
// the streaming EnumerateTopK instead and keeps only the offers that can
// still win classification.
func Enumerate(doc media.Document, m client.Machine, pricing cost.Pricing, opts EnumerateOptions) ([]SystemOffer, error) {
	cands, err := Filter(context.Background(), doc, m, pricing, opts.Guarantee, opts.Workers, opts.Exclude)
	if err != nil {
		return nil, err
	}
	return FromCandidates(doc, cands, opts.MaxOffers)
}

// FromCandidates materializes the feasible system offers from an
// already-filtered candidate set: Enumerate minus the step-2 filter. The
// offer cache hands memoized candidates straight here, skipping the
// per-request decode/map/price work entirely.
func FromCandidates(doc media.Document, cands Candidates, maxOffers int) ([]SystemOffer, error) {
	total, err := checkProduct(cands, maxOffersOrDefault(maxOffers))
	if err != nil {
		return nil, err
	}
	offers := make([]SystemOffer, 0, total)
	Walk(doc, cands, func(o SystemOffer) bool {
		offers = append(offers, o)
		return true
	})
	return offers, nil
}
