package offer

import (
	"errors"
	"fmt"

	"qosneg/internal/client"
	"qosneg/internal/cost"
	"qosneg/internal/media"
)

// ErrTooManyOffers is returned when the cartesian product of variants
// exceeds the enumeration limit.
var ErrTooManyOffers = errors.New("offer: too many feasible system offers")

// NoVariantError reports that a monomedia component has no variant the
// client machine can decode: the condition behind FAILEDWITHOUTOFFER
// ("no possible instantiation of the functional configuration to a
// physical configuration exists, e.g. the client machine does not support
// a suitable decoder").
type NoVariantError struct {
	Monomedia media.MonomediaID
}

func (e *NoVariantError) Error() string {
	return fmt.Sprintf("offer: no decodable variant for monomedia %s", e.Monomedia)
}

// EnumerateOptions tunes Enumerate.
type EnumerateOptions struct {
	// MaxOffers bounds the cartesian product; 0 selects 1<<20.
	MaxOffers int
	// Guarantee selects the service guarantee priced into each offer.
	Guarantee cost.Guarantee
}

// Enumerate produces every feasible system offer for the document on the
// given client machine: negotiation step 2 filters each monomedia's
// variants down to those the machine can decode and render, and the
// cartesian product of the survivors — one variant per monomedia — forms
// the feasible offers, each priced with the Section 7 cost model.
//
// It returns a *NoVariantError when some monomedia has no decodable
// variant, and ErrTooManyOffers when the product exceeds the limit.
func Enumerate(doc media.Document, m client.Machine, pricing cost.Pricing, opts EnumerateOptions) ([]SystemOffer, error) {
	maxOffers := opts.MaxOffers
	if maxOffers <= 0 {
		maxOffers = 1 << 20
	}

	// Step 2: static compatibility checking, per monomedia. Scalable
	// variants first expand into their decodable temporal layers (the
	// INRS scalable decoder), each of which is an independent candidate.
	decodable := make([][]media.Variant, len(doc.Monomedia))
	total := 1
	for i, mono := range doc.Monomedia {
		for _, v := range mono.Variants {
			for _, layer := range media.ScalableLayers(v) {
				if m.CanDecode(layer) {
					decodable[i] = append(decodable[i], layer)
				}
			}
		}
		if len(decodable[i]) == 0 {
			return nil, &NoVariantError{Monomedia: mono.ID}
		}
		if total > maxOffers/len(decodable[i]) {
			return nil, fmt.Errorf("%w: product exceeds %d", ErrTooManyOffers, maxOffers)
		}
		total *= len(decodable[i])
	}

	// Cartesian product, lexicographic in variant order so the result is
	// deterministic.
	offers := make([]SystemOffer, 0, total)
	idx := make([]int, len(doc.Monomedia))
	for {
		o := SystemOffer{Document: doc.ID, Choices: make([]Choice, len(doc.Monomedia))}
		items := make([]cost.Item, 0, len(doc.Monomedia))
		for i, mono := range doc.Monomedia {
			v := decodable[i][idx[i]]
			o.Choices[i] = Choice{Monomedia: mono.ID, Variant: v}
			if mono.Kind.Continuous() {
				items = append(items, cost.Item{Rate: v.NetworkQoS().AvgBitRate, Duration: mono.Duration})
			}
		}
		o.Cost = pricing.Document(cost.Money(doc.CopyrightFee), opts.Guarantee, items)
		offers = append(offers, o)

		// Advance the multi-index.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(decodable[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return offers, nil
}
