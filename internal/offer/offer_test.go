package offer

import (
	"strings"
	"testing"

	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
)

// videoOffer builds a single-video system offer with the given QoS and
// total price — the shape of every offer in the paper's Section 5 examples.
func videoOffer(id media.VariantID, v qos.VideoQoS, price cost.Money) SystemOffer {
	return SystemOffer{
		Document: "news-1",
		Choices: []Choice{{
			Monomedia: "video",
			Variant: media.Variant{
				ID:     id,
				Format: media.MPEG1,
				QoS:    qos.VideoSetting(v),
				Server: "server-1",
			},
		}},
		Cost: cost.Breakdown{Total: price},
	}
}

// paperProfile is the user request of Sections 5.2.1/5.2.2: desired = worst
// acceptable = (color, TV resolution, 25 frames/s), maximum cost 4$, with
// the example's importance factors (color 9, grey 6, black&white 2, TV
// resolution 9, 25 frames/s 9, 15 frames/s 5, cost importance 4).
func paperProfile() profile.UserProfile {
	v := qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution}
	return profile.UserProfile{
		Name:    "paper",
		Desired: profile.MMProfile{Video: &v, Cost: profile.CostProfile{MaxCost: cost.Dollars(4)}},
		Worst:   profile.MMProfile{Video: &v, Cost: profile.CostProfile{MaxCost: cost.Dollars(4)}},
		Importance: profile.Importance{
			VideoColor:    map[qos.ColorQuality]float64{qos.BlackWhite: 2, qos.Grey: 6, qos.Color: 9},
			FrameRate:     profile.NewCurve(profile.Point{X: 15, Y: 5}, profile.Point{X: 25, Y: 9}),
			Resolution:    profile.NewCurve(profile.Point{X: qos.TVResolution, Y: 9}),
			CostPerDollar: 4,
		},
	}
}

// paperOffers are offer1..offer4 of Section 5.2.1.
func paperOffers() []SystemOffer {
	return []SystemOffer{
		videoOffer("offer1", qos.VideoQoS{Color: qos.BlackWhite, FrameRate: 25, Resolution: qos.TVResolution}, cost.DollarsFloat(2.5)),
		videoOffer("offer2", qos.VideoQoS{Color: qos.Color, FrameRate: 15, Resolution: qos.TVResolution}, cost.Dollars(4)),
		videoOffer("offer3", qos.VideoQoS{Color: qos.Grey, FrameRate: 25, Resolution: qos.TVResolution}, cost.Dollars(3)),
		videoOffer("offer4", qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution}, cost.Dollars(5)),
	}
}

func order(ranked []Ranked) []string {
	out := make([]string, len(ranked))
	for i, r := range ranked {
		out[i] = string(r.Choices[0].Variant.ID)
	}
	return out
}

func assertOrder(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// TestPaperSNSExample reproduces Section 5.2.1: offer1, offer2 and offer3
// are CONSTRAINT; offer4 (which matches the desired QoS exactly but costs
// 5$ against a 4$ budget) is ACCEPTABLE.
func TestPaperSNSExample(t *testing.T) {
	u := paperProfile()
	want := []Status{Constraint, Constraint, Constraint, Acceptable}
	for i, o := range paperOffers() {
		if got := SNS(o, u); got != want[i] {
			t.Errorf("offer%d SNS = %v, want %v", i+1, got, want[i])
		}
	}
}

// TestPaperClassificationSetting1 reproduces Section 5.2.2 example (1):
// OIFs 10, 7, 12, 7 and final order offer4, offer3, offer1, offer2.
func TestPaperClassificationSetting1(t *testing.T) {
	u := paperProfile()
	ranked := Classify(paperOffers(), u)
	assertOrder(t, order(ranked), "offer4", "offer3", "offer1", "offer2")
	oifByID := map[string]float64{}
	for _, r := range ranked {
		oifByID[string(r.Choices[0].Variant.ID)] = r.OIF
	}
	for id, want := range map[string]float64{"offer1": 10, "offer2": 7, "offer3": 12, "offer4": 7} {
		if oifByID[id] != want {
			t.Errorf("%s OIF = %g, want %g", id, oifByID[id], want)
		}
	}
}

// TestPaperClassificationSetting2 reproduces example (2): cost importance 0
// → OIFs 20, 23, 24, 27 and order offer4, offer3, offer2, offer1.
func TestPaperClassificationSetting2(t *testing.T) {
	u := paperProfile()
	u.Importance.CostPerDollar = 0
	ranked := Classify(paperOffers(), u)
	assertOrder(t, order(ranked), "offer4", "offer3", "offer2", "offer1")
	for i, want := range map[int]float64{0: 27, 1: 24, 2: 23, 3: 20} {
		if ranked[i].OIF != want {
			t.Errorf("rank %d OIF = %g, want %g", i, ranked[i].OIF, want)
		}
	}
}

// TestPaperClassificationSetting3 reproduces example (3): all QoS
// importances 0, cost importance 4 → OIFs −10, −16, −12, −20. The paper
// orders these by OIF alone (offer1, offer3, offer2, offer4), which the
// OIFOnly classifier reproduces; the paper's own SNS-primary rule would
// put the ACCEPTABLE offer4 first (see DESIGN.md).
func TestPaperClassificationSetting3(t *testing.T) {
	u := paperProfile()
	u.Importance = profile.Importance{CostPerDollar: 4}

	ranked := Rank(paperOffers(), u)
	OIFOnly{}.Sort(ranked)
	assertOrder(t, order(ranked), "offer1", "offer3", "offer2", "offer4")
	for id, want := range map[string]float64{"offer1": -10, "offer2": -16, "offer3": -12, "offer4": -20} {
		found := false
		for _, r := range ranked {
			if string(r.Choices[0].Variant.ID) == id {
				found = true
				if r.OIF != want {
					t.Errorf("%s OIF = %g, want %g", id, r.OIF, want)
				}
			}
		}
		if !found {
			t.Errorf("%s missing", id)
		}
	}

	// The stated SNS-primary rule instead promotes offer4.
	ranked2 := Classify(paperOffers(), u)
	if got := order(ranked2); got[0] != "offer4" {
		t.Errorf("SNS-primary should put offer4 first, got %v", got)
	}
}

// TestMotivatingExample covers Section 5.1: desired (color, 25 frames/s,
// TV resolution) at up to 6$; of the three offers found, the full-quality
// 6$ one is DESIRABLE and classified first.
func TestMotivatingExample(t *testing.T) {
	v := qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution}
	u := profile.UserProfile{
		Name:       "motivating",
		Desired:    profile.MMProfile{Video: &v, Cost: profile.CostProfile{MaxCost: cost.Dollars(6)}},
		Worst:      profile.MMProfile{Video: &v, Cost: profile.CostProfile{MaxCost: cost.Dollars(6)}},
		Importance: profile.DefaultImportance(),
	}
	offers := []SystemOffer{
		videoOffer("a", qos.VideoQoS{Color: qos.Color, FrameRate: 15, Resolution: qos.TVResolution}, cost.Dollars(5)),
		videoOffer("b", qos.VideoQoS{Color: qos.Grey, FrameRate: 25, Resolution: qos.TVResolution}, cost.Dollars(4)),
		videoOffer("c", qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution}, cost.Dollars(6)),
	}
	ranked := Classify(offers, u)
	if string(ranked[0].Choices[0].Variant.ID) != "c" {
		t.Errorf("best offer = %v", order(ranked))
	}
	if ranked[0].Status != Desirable {
		t.Errorf("best offer status = %v", ranked[0].Status)
	}
	acceptable, feasible := Partition(ranked, u)
	if len(acceptable) != 1 || len(feasible) != 2 {
		t.Errorf("partition = %d acceptable / %d feasible", len(acceptable), len(feasible))
	}
}

func TestSNSNoRequirementMedia(t *testing.T) {
	// A profile with no video requirement accepts any video variant as
	// DESIRABLE (given the budget holds).
	u := profile.UserProfile{
		Name:       "anything",
		Desired:    profile.MMProfile{Cost: profile.CostProfile{MaxCost: cost.Dollars(10)}},
		Worst:      profile.MMProfile{Cost: profile.CostProfile{MaxCost: cost.Dollars(10)}},
		Importance: profile.DefaultImportance(),
	}
	o := videoOffer("x", qos.VideoQoS{Color: qos.BlackWhite, FrameRate: 1, Resolution: 10}, cost.Dollars(1))
	if got := SNS(o, u); got != Desirable {
		t.Errorf("SNS = %v, want DESIRABLE", got)
	}
	// Budget violation downgrades to ACCEPTABLE, not CONSTRAINT.
	o.Cost.Total = cost.Dollars(11)
	if got := SNS(o, u); got != Acceptable {
		t.Errorf("SNS over budget = %v, want ACCEPTABLE", got)
	}
}

func TestStatusString(t *testing.T) {
	if Desirable.String() != "DESIRABLE" || Acceptable.String() != "ACCEPTABLE" || Constraint.String() != "CONSTRAINT" {
		t.Error("status names")
	}
	if !strings.HasPrefix(Status(9).String(), "Status(") {
		t.Error("unknown status string")
	}
}

func TestUserOfferDerivation(t *testing.T) {
	o := paperOffers()[3]
	o.Choices = append(o.Choices, Choice{
		Monomedia: "audio",
		Variant: media.Variant{
			ID: "a1", Format: media.MPEG1Audio,
			QoS:    qos.AudioSetting(qos.AudioQoS{Grade: qos.CDQuality, Language: qos.French}),
			Server: "server-2",
		},
	})
	p := o.UserOffer()
	if p.Video == nil || p.Video.Color != qos.Color || p.Video.FrameRate != 25 {
		t.Errorf("video section = %+v", p.Video)
	}
	if p.Audio == nil || p.Audio.Grade != qos.CDQuality || p.Audio.Language != qos.French {
		t.Errorf("audio section = %+v", p.Audio)
	}
	if p.Cost.MaxCost != cost.Dollars(5) {
		t.Errorf("cost section = %v", p.Cost.MaxCost)
	}
}

func TestOfferStringAndKey(t *testing.T) {
	o := paperOffers()[0]
	s := o.String()
	if !strings.Contains(s, "black&white") || !strings.Contains(s, "2.5$") {
		t.Errorf("String() = %q", s)
	}
	if o.Key() != "offer1" {
		t.Errorf("Key() = %q", o.Key())
	}
}

func TestWithinBudget(t *testing.T) {
	u := paperProfile()
	if !WithinBudget(paperOffers()[1], u) { // 4$ at 4$ cap
		t.Error("exact budget should be within")
	}
	if WithinBudget(paperOffers()[3], u) { // 5$ at 4$ cap
		t.Error("5$ offer within a 4$ budget")
	}
}

func TestClassifyDeterministicTieBreak(t *testing.T) {
	// Two offers identical except for variant id: order must be stable by
	// key.
	v := qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution}
	offers := []SystemOffer{
		videoOffer("zz", v, cost.Dollars(3)),
		videoOffer("aa", v, cost.Dollars(3)),
	}
	u := paperProfile()
	r1 := Classify(offers, u)
	r2 := Classify([]SystemOffer{offers[1], offers[0]}, u)
	if r1[0].Key() != "aa" || r2[0].Key() != "aa" {
		t.Errorf("tie break unstable: %v vs %v", order(r1), order(r2))
	}
}
