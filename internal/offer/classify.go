package offer

import (
	"sort"

	"qosneg/internal/profile"
)

// Ranked is a system offer annotated with its two classification parameters
// (negotiation step 3, "computation of classification parameters").
type Ranked struct {
	SystemOffer
	Status Status
	OIF    float64
	// QoSImportance is the QoS term of the OIF (before the cost
	// importance is subtracted); the QoS-only baseline sorts on it.
	QoSImportance float64
}

// Rank computes the classification parameters for every offer.
func Rank(offers []SystemOffer, u profile.UserProfile) []Ranked {
	out := make([]Ranked, len(offers))
	for i, o := range offers {
		var q float64
		for _, s := range o.Settings() {
			q += u.Importance.QoS(s)
		}
		out[i] = Ranked{
			SystemOffer:   o,
			Status:        SNS(o, u),
			OIF:           q - u.Importance.Cost(o.Total()),
			QoSImportance: q,
		}
	}
	return out
}

// Classifier orders ranked offers best-first.
type Classifier interface {
	// Sort orders the slice in place, best offer first.
	Sort(offers []Ranked)
	// Name identifies the classifier in experiment output.
	Name() string
}

// SNSPrimary is the paper's default classification (Section 5.2.2): "we use
// the static negotiation status as primary classification parameter, and
// the OIF as the secondary classification parameter". Ties break on lower
// cost, then on the deterministic offer key.
type SNSPrimary struct{}

// Name implements Classifier.
func (SNSPrimary) Name() string { return "sns-primary" }

// Sort implements Classifier.
func (SNSPrimary) Sort(offers []Ranked) {
	sort.SliceStable(offers, func(i, j int) bool {
		if offers[i].Status != offers[j].Status {
			return offers[i].Status < offers[j].Status
		}
		if offers[i].OIF != offers[j].OIF {
			return offers[i].OIF > offers[j].OIF
		}
		if offers[i].Total() != offers[j].Total() {
			return offers[i].Total() < offers[j].Total()
		}
		return offers[i].Key() < offers[j].Key()
	})
}

// OIFOnly classifies purely by overall importance factor. It reproduces the
// paper's third worked example, which orders offers by OIF alone (see
// DESIGN.md on the discrepancy with the SNS-primary rule), and serves as an
// ablation baseline.
type OIFOnly struct{}

// Name implements Classifier.
func (OIFOnly) Name() string { return "oif-only" }

// Sort implements Classifier.
func (OIFOnly) Sort(offers []Ranked) {
	sort.SliceStable(offers, func(i, j int) bool {
		if offers[i].OIF != offers[j].OIF {
			return offers[i].OIF > offers[j].OIF
		}
		if offers[i].Total() != offers[j].Total() {
			return offers[i].Total() < offers[j].Total()
		}
		return offers[i].Key() < offers[j].Key()
	})
}

// CostOnly classifies cheapest-first: Section 5's strawman ("to classify
// system offers in terms of cost is obvious, since the cheapest system
// offer is the best"). Used as an experiment baseline.
type CostOnly struct{}

// Name implements Classifier.
func (CostOnly) Name() string { return "cost-only" }

// Sort implements Classifier.
func (CostOnly) Sort(offers []Ranked) {
	sort.SliceStable(offers, func(i, j int) bool {
		if offers[i].Total() != offers[j].Total() {
			return offers[i].Total() < offers[j].Total()
		}
		return offers[i].Key() < offers[j].Key()
	})
}

// QoSOnly classifies by QoS importance alone (the weighted-average scheme
// of [Haf 96] that Section 5 discusses): best perceived quality first,
// ignoring cost. Used as an experiment baseline.
type QoSOnly struct{}

// Name implements Classifier.
func (QoSOnly) Name() string { return "qos-only" }

// Sort implements Classifier.
func (QoSOnly) Sort(offers []Ranked) {
	sort.SliceStable(offers, func(i, j int) bool {
		if offers[i].QoSImportance != offers[j].QoSImportance {
			return offers[i].QoSImportance > offers[j].QoSImportance
		}
		if offers[i].Total() != offers[j].Total() {
			return offers[i].Total() < offers[j].Total()
		}
		return offers[i].Key() < offers[j].Key()
	})
}

// Classify ranks and orders offers with the paper's default classifier and
// returns them best-first, together with the index boundaries the
// commitment step needs.
func Classify(offers []SystemOffer, u profile.UserProfile) []Ranked {
	ranked := Rank(offers, u)
	SNSPrimary{}.Sort(ranked)
	return ranked
}

// Partition splits classified offers into the acceptable set (offers that
// satisfy the user's QoS and cost: SNS better than Constraint and total
// cost within the binding budget) and the remaining feasible set, both in
// classified order. Step 5 commits resources against the acceptable set
// first and falls back to the feasible set ("If none of those offers can be
// supported by the system, we consider the other offers, however always in
// the order defined above").
func Partition(ranked []Ranked, u profile.UserProfile) (acceptable, feasible []Ranked) {
	for _, r := range ranked {
		if r.Status != Constraint && WithinBudget(r.SystemOffer, u) {
			acceptable = append(acceptable, r)
		} else {
			feasible = append(feasible, r)
		}
	}
	return acceptable, feasible
}
