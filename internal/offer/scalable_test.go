package offer

import (
	"testing"
	"time"

	"qosneg/internal/client"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/qos"
)

// scalableDoc has a single scalable 60 fps video variant.
func scalableDoc() media.Document {
	v := media.VideoVariant("sv1", "server-1", media.ScalableMPEG,
		qos.VideoQoS{Color: qos.Color, FrameRate: 60, Resolution: qos.TVResolution},
		time.Minute)
	return media.Document{
		ID:    "scalable-1",
		Title: "Scalable",
		Monomedia: []media.Monomedia{{
			ID: "video", Kind: qos.Video, Duration: time.Minute,
			Variants: []media.Variant{v},
		}},
	}
}

func TestEnumerateExpandsScalableLayers(t *testing.T) {
	m := client.Workstation("c1", "n1") // 60 fps capable, all decoders
	offers, err := Enumerate(scalableDoc(), m, cost.DefaultPricing(), EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// One stored variant → three decodable layers → three offers.
	if len(offers) != 3 {
		t.Fatalf("offers = %d, want 3", len(offers))
	}
	rates := map[int]bool{}
	for _, o := range offers {
		rates[o.Choices[0].Variant.QoS.Video.FrameRate] = true
	}
	for _, want := range []int{60, 30, 15} {
		if !rates[want] {
			t.Errorf("missing %d fps layer (have %v)", want, rates)
		}
	}
}

func TestScalableLayersServeWeakClients(t *testing.T) {
	// A terminal sustains only 25 fps and would reject the 60 fps stream
	// outright; the scalable layers give it the 15 fps rendition.
	m := client.Terminal("c1", "n1")
	m.Decoders = append(m.Decoders, media.ScalableMPEG)
	offers, err := Enumerate(scalableDoc(), m, cost.DefaultPricing(), EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 {
		t.Fatalf("offers = %d, want 1 (only the 15 fps layer)", len(offers))
	}
	if got := offers[0].Choices[0].Variant.QoS.Video.FrameRate; got != 15 {
		t.Errorf("layer rate = %d", got)
	}
	// Without the scalable decoder nothing is feasible.
	m.Decoders = []media.Format{media.MPEG1}
	if _, err := Enumerate(scalableDoc(), m, cost.DefaultPricing(), EnumerateOptions{}); err == nil {
		t.Error("undecodable scalable variant accepted")
	}
}

func TestScalableLayersPricedByRate(t *testing.T) {
	m := client.Workstation("c1", "n1")
	offers, _ := Enumerate(scalableDoc(), m, cost.DefaultPricing(), EnumerateOptions{})
	byRate := map[int]cost.Money{}
	for _, o := range offers {
		byRate[o.Choices[0].Variant.QoS.Video.FrameRate] = o.Total()
	}
	if byRate[15] > byRate[60] {
		t.Errorf("15 fps layer (%v) costs more than 60 fps (%v)", byRate[15], byRate[60])
	}
	if byRate[15] == byRate[60] && byRate[30] == byRate[60] {
		t.Log("all layers fall in the same throughput class; pricing identical")
	}
}
