package offer

import "container/heap"

// Orderer is a classifier that can compare two ranked offers directly; all
// built-in classifiers implement it. Stream uses it to yield offers
// best-first without sorting the whole set — the commitment step usually
// stops at the first or second offer, so for large variant products (E9)
// the full O(n log n) sort is wasted work.
type Orderer interface {
	Classifier
	// Less reports whether a ranks strictly better than b.
	Less(a, b Ranked) bool
}

// snsLess is the SNS-primary ordering.
func snsLess(a, b Ranked) bool {
	if a.Status != b.Status {
		return a.Status < b.Status
	}
	if a.OIF != b.OIF {
		return a.OIF > b.OIF
	}
	if a.Total() != b.Total() {
		return a.Total() < b.Total()
	}
	return a.Key() < b.Key()
}

// Less implements Orderer.
func (SNSPrimary) Less(a, b Ranked) bool { return snsLess(a, b) }

// Less implements Orderer.
func (OIFOnly) Less(a, b Ranked) bool {
	if a.OIF != b.OIF {
		return a.OIF > b.OIF
	}
	if a.Total() != b.Total() {
		return a.Total() < b.Total()
	}
	return a.Key() < b.Key()
}

// Less implements Orderer.
func (CostOnly) Less(a, b Ranked) bool {
	if a.Total() != b.Total() {
		return a.Total() < b.Total()
	}
	return a.Key() < b.Key()
}

// Less implements Orderer.
func (QoSOnly) Less(a, b Ranked) bool {
	if a.QoSImportance != b.QoSImportance {
		return a.QoSImportance > b.QoSImportance
	}
	if a.Total() != b.Total() {
		return a.Total() < b.Total()
	}
	return a.Key() < b.Key()
}

// Stream yields ranked offers best-first, lazily: construction is O(n)
// (heapify), each Next is O(log n). Draining the stream costs the same as a
// full sort; stopping after k offers costs O(n + k log n).
type Stream struct {
	h offerHeap
}

// NewStream builds a best-first stream over the offers under the orderer's
// ordering.
func NewStream(offers []Ranked, o Orderer) *Stream {
	items := make([]Ranked, len(offers))
	copy(items, offers)
	s := &Stream{h: offerHeap{items: items, less: o.Less}}
	heap.Init(&s.h)
	return s
}

// Next returns the best remaining offer, and false when the stream is
// drained.
func (s *Stream) Next() (Ranked, bool) {
	if s.h.Len() == 0 {
		return Ranked{}, false
	}
	return heap.Pop(&s.h).(Ranked), true
}

// Remaining returns how many offers have not been yielded yet.
func (s *Stream) Remaining() int { return s.h.Len() }

type offerHeap struct {
	items []Ranked
	less  func(a, b Ranked) bool
}

func (h offerHeap) Len() int           { return len(h.items) }
func (h offerHeap) Less(i, j int) bool { return h.less(h.items[i], h.items[j]) }
func (h offerHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *offerHeap) Push(x any)        { h.items = append(h.items, x.(Ranked)) }
func (h *offerHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
