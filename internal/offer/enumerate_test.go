package offer

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"qosneg/internal/client"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
)

func newsDoc() media.Document {
	return media.BuildNewsArticle(media.NewsArticleSpec{
		ID:       "news-1",
		Title:    "Election night",
		Duration: 2 * time.Minute,
		Servers:  []media.ServerID{"server-1", "server-2"},
		VideoQualities: []qos.VideoQoS{
			{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			{Color: qos.Grey, FrameRate: 25, Resolution: qos.TVResolution},
			{Color: qos.BlackWhite, FrameRate: 15, Resolution: qos.TVResolution},
		},
		AudioQualities: []qos.AudioQoS{
			{Grade: qos.CDQuality, Language: qos.English},
			{Grade: qos.TelephoneQuality, Language: qos.English},
		},
		Languages:    []qos.Language{qos.English, qos.French},
		CopyrightFee: 500,
	})
}

func TestEnumerateProduct(t *testing.T) {
	doc := newsDoc()
	m := client.Workstation("c1", "n1")
	offers, err := Enumerate(doc, m, cost.DefaultPricing(), EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 3 video × 2 audio × 2 text = 12 offers.
	if len(offers) != 12 {
		t.Fatalf("enumerated %d offers, want 12", len(offers))
	}
	// Every offer selects exactly one variant per monomedia, and keys are
	// unique.
	keys := map[string]bool{}
	for _, o := range offers {
		if len(o.Choices) != 3 {
			t.Errorf("offer has %d choices", len(o.Choices))
		}
		if keys[o.Key()] {
			t.Errorf("duplicate offer key %s", o.Key())
		}
		keys[o.Key()] = true
		if o.Document != "news-1" {
			t.Errorf("offer document = %s", o.Document)
		}
		// Copyright is carried into every offer.
		if o.Cost.Copyright != 500 {
			t.Errorf("copyright = %v", o.Cost.Copyright)
		}
		// Continuous media are billed; text is not.
		if len(o.Cost.Network) != 2 {
			t.Errorf("billed %d items, want 2", len(o.Cost.Network))
		}
	}
}

func TestEnumerateDeterministic(t *testing.T) {
	doc := newsDoc()
	m := client.Workstation("c1", "n1")
	a, _ := Enumerate(doc, m, cost.DefaultPricing(), EnumerateOptions{})
	b, _ := Enumerate(doc, m, cost.DefaultPricing(), EnumerateOptions{})
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatalf("enumeration order unstable at %d", i)
		}
	}
}

func TestEnumerateFiltersUndecodable(t *testing.T) {
	doc := newsDoc()
	m := client.Terminal("c1", "n1") // no CD audio, grey screen ok; MPEG-1 only
	offers, err := Enumerate(doc, m, cost.DefaultPricing(), EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Terminal: telephone audio only → 1 audio variant; all 3 videos are
	// MPEG-1 ≤640px ≤25fps → 3; text 2 → 6 offers.
	if len(offers) != 6 {
		t.Fatalf("enumerated %d offers, want 6", len(offers))
	}
	for _, o := range offers {
		for _, c := range o.Choices {
			if !m.CanDecode(c.Variant) {
				t.Errorf("offer includes undecodable variant %s", c.Variant.ID)
			}
		}
	}
}

func TestEnumerateNoVariantError(t *testing.T) {
	doc := newsDoc()
	m := client.Terminal("c1", "n1")
	m.Decoders = []media.Format{media.MPEG1, media.GIF, media.PlainText} // no audio decoder
	_, err := Enumerate(doc, m, cost.DefaultPricing(), EnumerateOptions{})
	var nv *NoVariantError
	if !errors.As(err, &nv) {
		t.Fatalf("want NoVariantError, got %v", err)
	}
	if nv.Monomedia != "audio" {
		t.Errorf("failing monomedia = %s", nv.Monomedia)
	}
	if nv.Error() == "" {
		t.Error("empty error text")
	}
}

func TestEnumerateTooManyOffers(t *testing.T) {
	doc := newsDoc()
	m := client.Workstation("c1", "n1")
	_, err := Enumerate(doc, m, cost.DefaultPricing(), EnumerateOptions{MaxOffers: 5})
	if !errors.Is(err, ErrTooManyOffers) {
		t.Errorf("want ErrTooManyOffers, got %v", err)
	}
}

func TestEnumerateGuaranteePricing(t *testing.T) {
	doc := newsDoc()
	m := client.Workstation("c1", "n1")
	be, _ := Enumerate(doc, m, cost.DefaultPricing(), EnumerateOptions{Guarantee: cost.BestEffort})
	gu, _ := Enumerate(doc, m, cost.DefaultPricing(), EnumerateOptions{Guarantee: cost.Guaranteed})
	if gu[0].Total() <= be[0].Total() {
		t.Errorf("guaranteed %v should cost more than best effort %v", gu[0].Total(), be[0].Total())
	}
}

func TestEnumerateCostOrdering(t *testing.T) {
	// Higher-quality variant combinations must not be cheaper than the
	// all-minimum combination.
	doc := newsDoc()
	m := client.Workstation("c1", "n1")
	offers, _ := Enumerate(doc, m, cost.DefaultPricing(), EnumerateOptions{})
	ranked := Rank(offers, profile.UserProfile{Importance: profile.DefaultImportance()})
	CostOnly{}.Sort(ranked)
	cheapest, priciest := ranked[0], ranked[len(ranked)-1]
	if cheapest.Total() > priciest.Total() {
		t.Error("cost-only sort broken")
	}
	if cheapest.QoSImportance > priciest.QoSImportance {
		t.Errorf("cheapest offer (%g) has better QoS than priciest (%g)",
			cheapest.QoSImportance, priciest.QoSImportance)
	}
}

func TestBaselineClassifierNames(t *testing.T) {
	for _, c := range []Classifier{SNSPrimary{}, OIFOnly{}, CostOnly{}, QoSOnly{}} {
		if c.Name() == "" {
			t.Error("classifier without name")
		}
	}
}

func TestQoSOnlyIgnoresCost(t *testing.T) {
	u := paperProfile()
	ranked := Rank(paperOffers(), u)
	QoSOnly{}.Sort(ranked)
	// QoS importances: offer1 20, offer2 23, offer3 24, offer4 27.
	assertOrder(t, order(ranked), "offer4", "offer3", "offer2", "offer1")
}

// Property: classification output is a permutation of its input and the
// SNS-primary invariant holds (no Constraint offer before a non-Constraint
// one).
func TestClassifyInvariantProperty(t *testing.T) {
	u := paperProfile()
	f := func(seed uint8, prices []uint16) bool {
		if len(prices) == 0 {
			return true
		}
		if len(prices) > 12 {
			prices = prices[:12]
		}
		colors := qos.ColorQualities()
		var offers []SystemOffer
		for i, pr := range prices {
			v := qos.VideoQoS{
				Color:      colors[(int(seed)+i)%4],
				FrameRate:  5 + (i*7)%50,
				Resolution: 100 + (i*131)%1000,
			}
			offers = append(offers, videoOffer(media.VariantID(string(rune('a'+i))), v, cost.Money(pr)))
		}
		ranked := Classify(offers, u)
		if len(ranked) != len(offers) {
			return false
		}
		seenConstraint := false
		for _, r := range ranked {
			if r.Status == Constraint {
				seenConstraint = true
			} else if seenConstraint {
				return false
			}
		}
		// Within one status group, OIF is non-increasing.
		for i := 1; i < len(ranked); i++ {
			if ranked[i].Status == ranked[i-1].Status && ranked[i].OIF > ranked[i-1].OIF {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Partition is exhaustive and exclusive.
func TestPartitionProperty(t *testing.T) {
	u := paperProfile()
	f := func(prices []uint16) bool {
		if len(prices) > 10 {
			prices = prices[:10]
		}
		var offers []SystemOffer
		for i, pr := range prices {
			v := qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution}
			if i%2 == 0 {
				v.Color = qos.BlackWhite
			}
			offers = append(offers, videoOffer(media.VariantID(string(rune('a'+i))), v, cost.Money(pr)*10))
		}
		ranked := Classify(offers, u)
		acc, fea := Partition(ranked, u)
		if len(acc)+len(fea) != len(ranked) {
			return false
		}
		for _, r := range acc {
			if r.Status == Constraint || !WithinBudget(r.SystemOffer, u) {
				return false
			}
		}
		for _, r := range fea {
			if r.Status != Constraint && WithinBudget(r.SystemOffer, u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnumerateGraphicMonomedia(t *testing.T) {
	// Graphics share the image QoS parameters and image-class decoders.
	doc := media.Document{
		ID: "graphic-doc",
		Monomedia: []media.Monomedia{{
			ID: "chart", Kind: qos.Graphic,
			Variants: []media.Variant{{
				ID: "g1", Format: media.CGM, Server: "server-1",
				QoS: qos.ImageSetting(qos.ImageQoS{Color: qos.Color, Resolution: qos.TVResolution}),
			}},
		}},
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	m := client.Workstation("c1", "n1")
	offers, err := Enumerate(doc, m, cost.DefaultPricing(), EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 {
		t.Fatalf("offers = %d", len(offers))
	}
	// Graphics are discrete: no billed streaming items.
	if len(offers[0].Cost.Network) != 0 {
		t.Errorf("graphic billed as continuous: %+v", offers[0].Cost)
	}
	// An image requirement in the profile constrains the graphic.
	u := paperProfile()
	img := qos.ImageQoS{Color: qos.SuperColor, Resolution: qos.TVResolution}
	u.Desired.Image = &img
	u.Worst.Image = &img
	if got := SNS(offers[0], u); got != Constraint {
		t.Errorf("SNS = %v, want CONSTRAINT (color below super-color)", got)
	}
}
