package offer

import "sort"

// TopK keeps the K best ranked offers seen so far under an Orderer's
// ordering: negotiation step 4's classification as a bounded heap instead
// of a full sort. Insertion is O(log K); offers that cannot beat the
// current K-th best are rejected in O(1) via Full/Worst, so classifying a
// product of N offers costs O(N + K log K) instead of O(N log N) — and,
// more importantly under load, O(K) memory instead of O(N).
//
// K <= 0 keeps every offer (the classical unbounded classification).
// TopK is not safe for concurrent use; the pipeline gives each worker its
// own collector and merges them.
type TopK struct {
	k int
	// less is the best-first ordering; the heap keeps the *worst* kept
	// offer at the root so it can be evicted on a better arrival.
	less  func(a, b Ranked) bool
	items []Ranked
}

// NewTopK builds a collector keeping the k best offers under the orderer's
// ordering; k <= 0 keeps everything.
func NewTopK(k int, o Orderer) *TopK {
	t := &TopK{}
	t.Reset(k, o, k)
	return t
}

// Reset reinitializes the collector for reuse (the pipeline pools them via
// sync.Pool). capHint is how many offers the caller will feed at most — the
// worker's index-range size — so the heap backing array is allocated once at
// its final size: min(k, capHint) for a bounded collector (it never holds
// more than k), capHint for an unbounded one (it holds everything).
func (t *TopK) Reset(k int, o Orderer, capHint int) {
	t.k = k
	t.less = o.Less
	if k > 0 && (capHint <= 0 || capHint > k) {
		capHint = k
	}
	if cap(t.items) < capHint {
		t.items = make([]Ranked, 0, capHint)
		return
	}
	// Reuse the backing array; drop the stale offers so a pooled collector
	// does not pin the previous negotiation's strings and slices.
	for i := range t.items {
		t.items[i] = Ranked{}
	}
	t.items = t.items[:0]
}

// Len returns how many offers are currently kept.
func (t *TopK) Len() int { return len(t.items) }

// Full reports whether the collector holds K offers, so that a further Add
// must evict the worst to be kept.
func (t *TopK) Full() bool { return t.k > 0 && len(t.items) >= t.k }

// Worst returns the worst kept offer; only valid when Len() > 0. Together
// with Full it lets callers skip materializing offers that cannot be kept.
func (t *TopK) Worst() Ranked { return t.items[0] }

// Add offers r to the collector, evicting the current worst if the
// collector is full and r ranks better.
func (t *TopK) Add(r Ranked) {
	if !t.Full() {
		t.items = append(t.items, r)
		t.up(len(t.items) - 1)
		return
	}
	if !t.less(r, t.items[0]) {
		return
	}
	t.items[0] = r
	t.down(0)
}

// Merge folds every offer kept by other into t.
func (t *TopK) Merge(other *TopK) {
	for _, r := range other.items {
		t.Add(r)
	}
}

// Sorted returns the kept offers best-first, consuming nothing: the
// classified list handed to the resource-commitment step.
func (t *TopK) Sorted() []Ranked {
	out := make([]Ranked, len(t.items))
	copy(out, t.items)
	sort.Slice(out, func(i, j int) bool { return t.less(out[i], out[j]) })
	return out
}

// worseThan is the heap ordering: the root holds the worst kept offer.
func (t *TopK) worseThan(i, j int) bool { return t.less(t.items[j], t.items[i]) }

func (t *TopK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.worseThan(i, parent) {
			return
		}
		t.items[i], t.items[parent] = t.items[parent], t.items[i]
		i = parent
	}
}

func (t *TopK) down(i int) {
	n := len(t.items)
	for {
		worst := i
		if l := 2*i + 1; l < n && t.worseThan(l, worst) {
			worst = l
		}
		if r := 2*i + 2; r < n && t.worseThan(r, worst) {
			worst = r
		}
		if worst == i {
			return
		}
		t.items[i], t.items[worst] = t.items[worst], t.items[i]
		i = worst
	}
}
