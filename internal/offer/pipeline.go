// The parallel negotiation pipeline: steps 2–4 of the Section 4 procedure
// (static compatibility checking, computation of classification parameters,
// classification) as a streaming fan-out instead of materialize-then-sort.
//
// Stage 1 filters each monomedia's variants concurrently and precomputes,
// per surviving candidate, the Section 6 network mapping, the Section 7
// stream price and the profile-dependent classification stats. Stage 2
// splits the cartesian product of candidates into contiguous index ranges,
// one per worker in a bounded pool; each worker streams its range, scores
// offers from the per-candidate stats in O(#monomedia) additions, and
// feeds a private top-K collector. Stage 3 merges the collectors into the
// classified, bounded offer list the resource-commitment step consumes.
package offer

import (
	"context"
	"runtime"
	"sync"

	"qosneg/internal/client"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/profile"
)

// PipelineOptions tunes EnumerateTopK.
type PipelineOptions struct {
	// MaxOffers bounds the cartesian product; 0 selects 1<<20.
	MaxOffers int
	// Guarantee selects the service guarantee priced into each offer.
	Guarantee cost.Guarantee
	// Workers bounds the fan-out; 0 selects GOMAXPROCS.
	Workers int
	// TopK bounds how many classified offers are kept; 0 keeps all.
	TopK int
	// Orderer is the classification ordering; nil selects SNSPrimary.
	Orderer Orderer
	// Exclude, when non-nil, drops variants for which it returns true
	// before the product is built (the QoS manager's server quarantine).
	Exclude func(media.Variant) bool
	// Prebuilt, when non-nil, is the materialized cartesian product of the
	// candidate set in lexicographic (Walk) order — FromCandidates' output,
	// typically memoized by the offer cache. Scoring then reuses Prebuilt[n]
	// instead of materializing offer n, which removes the per-offer
	// allocation work from cache-hot negotiations. The offers are shared by
	// reference and must be treated as immutable.
	Prebuilt []SystemOffer
}

// candidateStats is the profile-dependent half of a candidate's
// classification parameters, computed once per candidate so that scoring an
// offer is a sum of per-candidate terms.
type candidateStats struct {
	// qImp is the candidate's QoS-importance contribution to the OIF.
	qImp float64
	// desired and worst report whether the candidate satisfies the
	// profile's desired / worst-acceptable setting for its media kind.
	desired, worst bool
}

// rankCandidates precomputes candidateStats for every candidate, mirroring
// SNS's per-choice comparisons and Rank's importance sum.
func rankCandidates(cands Candidates, u profile.UserProfile) [][]candidateStats {
	stats := make([][]candidateStats, len(cands))
	for i, mono := range cands {
		stats[i] = make([]candidateStats, len(mono))
		for j, c := range mono {
			st := candidateStats{qImp: u.Importance.QoS(c.Variant.QoS)}
			if kind, ok := c.Variant.QoS.Kind(); ok {
				st.desired, st.worst = true, true
				if des, ok := u.Desired.Setting(kind); ok && !c.Variant.QoS.Satisfies(des) {
					st.desired = false
				}
				if wor, ok := u.Worst.Setting(kind); ok && !c.Variant.QoS.Satisfies(wor) {
					st.worst = false
				}
			}
			stats[i][j] = st
		}
	}
	return stats
}

// collectRange streams the offers with lexicographic numbers [lo, hi) into
// the collector, scoring each from the precomputed stats and materializing
// only offers that can still enter the top K. It checks ctx periodically
// and returns its error when canceled.
func collectRange(ctx context.Context, doc media.Document, cands Candidates, stats [][]candidateStats, prebuilt []SystemOffer, u profile.UserProfile, orderer Orderer, tk *TopK, lo, hi int) error {
	if lo >= hi {
		return nil
	}
	copyright := cost.Money(doc.CopyrightFee)
	budget := u.Desired.Cost.MaxCost
	idx := make([]int, len(cands))
	decodeIndex(idx, cands, lo)
	for n := lo; n < hi; n++ {
		if n%1024 == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		total := copyright
		qImp := 0.0
		meetsDesired, meetsWorst := true, true
		for i, j := range idx {
			c := &cands[i][j]
			if c.Continuous {
				total += c.NetworkCost + c.ServerCost
			}
			st := &stats[i][j]
			qImp += st.qImp
			meetsDesired = meetsDesired && st.desired
			meetsWorst = meetsWorst && st.worst
		}
		status := Constraint
		switch {
		case meetsDesired && total <= budget:
			status = Desirable
		case meetsWorst:
			status = Acceptable
		}
		oif := qImp - u.Importance.Cost(total)
		// Probe admission before materializing: the keyless probe wins
		// every key tie-break, so the skip only fires when the worst
		// kept offer beats the probe on the numeric keys alone —
		// skipping is conservative.
		probe := Ranked{
			SystemOffer:   SystemOffer{Cost: cost.Breakdown{Total: total}},
			Status:        status,
			OIF:           oif,
			QoSImportance: qImp,
		}
		if !tk.Full() || !orderer.Less(tk.Worst(), probe) {
			var o SystemOffer
			if prebuilt != nil {
				o = prebuilt[n]
			} else {
				o = buildOffer(doc, cands, idx, copyright)
			}
			tk.Add(Ranked{
				SystemOffer:   o,
				Status:        status,
				OIF:           oif,
				QoSImportance: qImp,
			})
		}
		advanceIndex(idx, cands)
	}
	return nil
}

// smallProduct is the offer count below which the fan-out overhead exceeds
// the scoring work and the pipeline runs on the calling goroutine.
const smallProduct = 2048

// EnumerateTopK runs negotiation steps 2–4 as the parallel streaming
// pipeline described at the top of this file and returns the K best
// classified offers, best-first. With TopK <= 0 it returns the full
// classified set (identical to Enumerate + Rank + Sort); with a bound it
// returns exactly the prefix that full classification would have produced,
// because the built-in orderers are total orders.
//
// Errors: *NoVariantError (some monomedia undecodable), ErrTooManyOffers
// (product above MaxOffers), or ctx's error when canceled mid-stream.
func EnumerateTopK(ctx context.Context, doc media.Document, mach client.Machine, pricing cost.Pricing, u profile.UserProfile, opts PipelineOptions) ([]Ranked, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cands, err := Filter(ctx, doc, mach, pricing, opts.Guarantee, workers, opts.Exclude)
	if err != nil {
		return nil, err
	}
	return TopKFromCandidates(ctx, doc, cands, u, opts)
}

// topKPool recycles collectors across negotiations. A collector's backing
// array survives Put/Get, so a steady-state workload with a stable TopK bound
// stops allocating heaps entirely.
var topKPool = sync.Pool{New: func() any { return new(TopK) }}

func getTopK(k int, o Orderer, capHint int) *TopK {
	t := topKPool.Get().(*TopK)
	t.Reset(k, o, capHint)
	return t
}

// TopKFromCandidates runs stages 2–3 of the pipeline — scoring and bounded
// classification — on an already-filtered candidate set: EnumerateTopK minus
// the step-2 filter. This is the entry point the offer cache feeds memoized
// candidates into; opts.Exclude is ignored (exclusion is part of the cache
// key and was applied when the candidates were built).
func TopKFromCandidates(ctx context.Context, doc media.Document, cands Candidates, u profile.UserProfile, opts PipelineOptions) ([]Ranked, error) {
	orderer := opts.Orderer
	if orderer == nil {
		orderer = SNSPrimary{}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total, err := checkProduct(cands, maxOffersOrDefault(opts.MaxOffers))
	if err != nil {
		return nil, err
	}
	stats := rankCandidates(cands, u)

	if total < smallProduct || workers == 1 {
		tk := getTopK(opts.TopK, orderer, total)
		if err := collectRange(ctx, doc, cands, stats, opts.Prebuilt, u, orderer, tk, 0, total); err != nil {
			topKPool.Put(tk)
			return nil, err
		}
		out := tk.Sorted()
		topKPool.Put(tk)
		return out, nil
	}

	collectors := make([]*TopK, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := total*w/workers, total*(w+1)/workers
		collectors[w] = getTopK(opts.TopK, orderer, hi-lo)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = collectRange(ctx, doc, cands, stats, opts.Prebuilt, u, orderer, collectors[w], lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, tk := range collectors {
				topKPool.Put(tk)
			}
			return nil, err
		}
	}
	merged := collectors[0]
	for _, tk := range collectors[1:] {
		merged.Merge(tk)
		topKPool.Put(tk)
	}
	out := merged.Sorted()
	topKPool.Put(merged)
	return out, nil
}
