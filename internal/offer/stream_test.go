package offer

import (
	"testing"
	"testing/quick"

	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/qos"
)

func TestStreamMatchesSortOrder(t *testing.T) {
	u := paperProfile()
	for _, o := range []Orderer{SNSPrimary{}, OIFOnly{}, CostOnly{}, QoSOnly{}} {
		ranked := Rank(paperOffers(), u)
		sorted := make([]Ranked, len(ranked))
		copy(sorted, ranked)
		o.Sort(sorted)

		s := NewStream(ranked, o)
		for i := range sorted {
			got, ok := s.Next()
			if !ok {
				t.Fatalf("%s: stream drained at %d", o.Name(), i)
			}
			if got.Key() != sorted[i].Key() {
				t.Fatalf("%s: stream[%d] = %s, sort = %s", o.Name(), i, got.Key(), sorted[i].Key())
			}
		}
		if _, ok := s.Next(); ok {
			t.Errorf("%s: stream yielded beyond its input", o.Name())
		}
	}
}

func TestStreamRemainingAndEmpty(t *testing.T) {
	s := NewStream(nil, SNSPrimary{})
	if s.Remaining() != 0 {
		t.Errorf("Remaining = %d", s.Remaining())
	}
	if _, ok := s.Next(); ok {
		t.Error("empty stream yielded")
	}
	u := paperProfile()
	s = NewStream(Rank(paperOffers(), u), SNSPrimary{})
	if s.Remaining() != 4 {
		t.Errorf("Remaining = %d", s.Remaining())
	}
	s.Next()
	if s.Remaining() != 3 {
		t.Errorf("Remaining after Next = %d", s.Remaining())
	}
}

func TestStreamDoesNotMutateInput(t *testing.T) {
	u := paperProfile()
	ranked := Rank(paperOffers(), u)
	before := make([]string, len(ranked))
	for i, r := range ranked {
		before[i] = r.Key()
	}
	s := NewStream(ranked, SNSPrimary{})
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	for i, r := range ranked {
		if r.Key() != before[i] {
			t.Fatal("NewStream mutated its input slice")
		}
	}
}

// Property: for random offer sets, the stream yields exactly the sorted
// order under SNSPrimary.
func TestStreamOrderProperty(t *testing.T) {
	u := paperProfile()
	colors := qos.ColorQualities()
	f := func(seed uint8, prices []uint16) bool {
		if len(prices) > 16 {
			prices = prices[:16]
		}
		var offers []SystemOffer
		for i, pr := range prices {
			v := qos.VideoQoS{
				Color:      colors[(int(seed)+i)%4],
				FrameRate:  1 + (i*13)%59,
				Resolution: 10 + (i*97)%1900,
			}
			offers = append(offers, videoOffer(media.VariantID(rune('a'+i%26))+media.VariantID(rune('0'+i/26)), v, cost.Money(pr)))
		}
		ranked := Rank(offers, u)
		sorted := make([]Ranked, len(ranked))
		copy(sorted, ranked)
		SNSPrimary{}.Sort(sorted)
		s := NewStream(ranked, SNSPrimary{})
		for i := range sorted {
			got, ok := s.Next()
			if !ok || got.Key() != sorted[i].Key() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
