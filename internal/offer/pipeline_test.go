package offer

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"qosneg/internal/client"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
)

// pipelineProfile is the Section 5 example request used across these tests.
func pipelineProfile() profile.UserProfile {
	return profile.UserProfile{
		Name: "pipeline",
		Desired: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.CDQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(12)},
		},
		Worst: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.BlackWhite, FrameRate: 10, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.TelephoneQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(12)},
		},
		Importance: profile.DefaultImportance(),
	}
}

// synthDoc builds a document with a configurable variant product.
func synthDoc(variants int) media.Document {
	doc := media.Document{ID: "synthetic", Title: "Synthetic", CopyrightFee: 500}
	dur := time.Minute
	video := media.Monomedia{ID: "video-1", Kind: qos.Video, Duration: dur}
	for v := 0; v < variants; v++ {
		video.Variants = append(video.Variants, media.VideoVariant(
			media.VariantID(fmt.Sprintf("v-%d", v)), "server-1", media.MPEG1,
			qos.VideoQoS{Color: qos.ColorQualities()[v%4], FrameRate: 5 + v%25, Resolution: 100 + 50*(v%8)},
			dur))
	}
	audio := media.Monomedia{ID: "audio-1", Kind: qos.Audio, Duration: dur}
	for v := 0; v < variants; v++ {
		grade := qos.TelephoneQuality
		if v%2 == 1 {
			grade = qos.CDQuality
		}
		audio.Variants = append(audio.Variants, media.AudioVariant(
			media.VariantID(fmt.Sprintf("a-%d", v)), "server-1", media.MPEG1Audio,
			qos.AudioQoS{Grade: grade, Language: qos.Language(fmt.Sprintf("l%d", v))}, dur))
	}
	text := media.Monomedia{ID: "text-1", Kind: qos.Text}
	for v := 0; v < variants; v++ {
		text.Variants = append(text.Variants, media.TextVariant(
			media.VariantID(fmt.Sprintf("t-%d", v)), "server-1",
			qos.Language(fmt.Sprintf("l%d", v)), 1024))
	}
	doc.Monomedia = []media.Monomedia{video, audio, text}
	return doc
}

// TestEnumerateMatchesWalk checks the streaming walk reproduces the
// materializing enumeration exactly: same order, same keys, same prices.
func TestEnumerateMatchesWalk(t *testing.T) {
	doc := newsDoc()
	m := client.Workstation("c1", "n1")
	pricing := cost.DefaultPricing()
	offers, err := Enumerate(doc, m, pricing, EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cands, err := Filter(context.Background(), doc, m, pricing, cost.BestEffort, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := cands.Offers(); got != len(offers) {
		t.Fatalf("Offers() = %d, want %d", got, len(offers))
	}
	i := 0
	Walk(doc, cands, func(o SystemOffer) bool {
		if o.Key() != offers[i].Key() {
			t.Fatalf("offer %d: key %q, want %q", i, o.Key(), offers[i].Key())
		}
		if o.Total() != offers[i].Total() {
			t.Fatalf("offer %d: total %v, want %v", i, o.Total(), offers[i].Total())
		}
		i++
		return true
	})
	if i != len(offers) {
		t.Fatalf("walked %d offers, want %d", i, len(offers))
	}
}

// TestEnumerateTopKMatchesClassify checks the parallel bounded pipeline
// returns exactly the prefix the classical enumerate+rank+sort produces,
// for every built-in orderer and several K.
func TestEnumerateTopKMatchesClassify(t *testing.T) {
	doc := synthDoc(8) // 512 offers
	m := client.Workstation("c1", "n1")
	pricing := cost.DefaultPricing()
	u := pipelineProfile()
	offers, err := Enumerate(doc, m, pricing, EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, orderer := range []Orderer{SNSPrimary{}, OIFOnly{}, CostOnly{}, QoSOnly{}} {
		full := Rank(offers, u)
		orderer.(Classifier).Sort(full)
		for _, k := range []int{0, 1, 7, 64, 10_000} {
			got, err := EnumerateTopK(context.Background(), doc, m, pricing, u, PipelineOptions{
				TopK: k, Workers: 4, Orderer: orderer,
			})
			if err != nil {
				t.Fatal(err)
			}
			want := full
			if k > 0 && k < len(full) {
				want = full[:k]
			}
			if len(got) != len(want) {
				t.Fatalf("%s k=%d: got %d offers, want %d", orderer.(Classifier).Name(), k, len(got), len(want))
			}
			for i := range want {
				if got[i].Key() != want[i].Key() {
					t.Errorf("%s k=%d offer %d: %q, want %q", orderer.(Classifier).Name(), k, i, got[i].Key(), want[i].Key())
				}
			}
		}
	}
}

// TestEnumerateTopKErrors checks the pipeline propagates the step-2 error
// contract: NoVariantError and ErrTooManyOffers.
func TestEnumerateTopKErrors(t *testing.T) {
	doc := newsDoc()
	m := client.Workstation("c1", "n1")
	pricing := cost.DefaultPricing()
	u := pipelineProfile()
	if _, err := EnumerateTopK(context.Background(), doc, m, pricing, u, PipelineOptions{MaxOffers: 4}); !errors.Is(err, ErrTooManyOffers) {
		t.Errorf("tight MaxOffers: err = %v, want ErrTooManyOffers", err)
	}
	deaf := m
	deaf.Audio = 0
	var nv *NoVariantError
	if _, err := EnumerateTopK(context.Background(), doc, deaf, pricing, u, PipelineOptions{}); !errors.As(err, &nv) {
		t.Errorf("deaf machine: err = %v, want NoVariantError", err)
	} else if nv.Monomedia != "audio" {
		t.Errorf("NoVariantError names %q", nv.Monomedia)
	}
}

// TestEnumerateTopKCanceled checks a pre-canceled context aborts the
// pipeline with the context's error.
func TestEnumerateTopKCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	doc := synthDoc(16) // 4096 offers: the parallel path
	m := client.Workstation("c1", "n1")
	_, err := EnumerateTopK(ctx, doc, m, cost.DefaultPricing(), pipelineProfile(), PipelineOptions{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestTopKProperty cross-checks the bounded heap against a full sort on
// random rankings.
func TestTopKProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1996))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		tk := NewTopK(k, SNSPrimary{})
		all := make([]Ranked, n)
		for i := range all {
			r := Ranked{
				SystemOffer: SystemOffer{
					Choices: []Choice{{Variant: media.Variant{ID: media.VariantID(fmt.Sprintf("v%d", i))}}},
					Cost:    cost.Breakdown{Total: cost.Money(rng.Intn(5))},
				},
				Status: Status(rng.Intn(3)),
				OIF:    float64(rng.Intn(4)),
			}
			all[i] = r
			tk.Add(r)
		}
		SNSPrimary{}.Sort(all)
		want := all
		if k < len(all) {
			want = all[:k]
		}
		got := tk.Sorted()
		if len(got) != len(want) {
			t.Fatalf("trial %d: kept %d, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].Key() != want[i].Key() || snsLess(got[i], want[i]) || snsLess(want[i], got[i]) {
				t.Fatalf("trial %d offer %d: got %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}
