// Package offer implements the system/user offer machinery of Sections 4
// and 5: enumeration of feasible system offers (one variant per monomedia
// of the document), the mapping from system offers to user offers, and the
// classification procedure built on the two parameters of Section 5.2 — the
// static negotiation status (SNS) as primary key and the overall importance
// factor (OIF) as secondary key.
package offer

import (
	"fmt"
	"strings"

	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
)

// Choice selects one variant for one monomedia component of the document.
type Choice struct {
	Monomedia media.MonomediaID `json:"monomedia"`
	Variant   media.Variant     `json:"variant"`
}

// SystemOffer is Definition 1: "a set of variants (a variant for each
// monomedia component of the document) and the cost the user should pay".
type SystemOffer struct {
	Document media.DocumentID `json:"document"`
	Choices  []Choice         `json:"choices"`
	Cost     cost.Breakdown   `json:"cost"`
	// key caches Key()'s join. The classification comparators tie-break on
	// Key() and may call it O(K log K) times per offer; buildOffer fills the
	// cache once so ties cost no allocation. Offers built by hand or decoded
	// from JSON have key == "" and fall back to computing.
	key string
}

// Total is the cost the user would be charged for this offer.
func (o SystemOffer) Total() cost.Money { return o.Cost.Total }

// Settings returns the user-perceptible QoS of each chosen variant, in
// choice order.
func (o SystemOffer) Settings() []qos.Setting {
	out := make([]qos.Setting, len(o.Choices))
	for i, c := range o.Choices {
		out[i] = c.Variant.QoS
	}
	return out
}

// Key is a deterministic identity for the offer: the chosen variant ids in
// choice order. Classification uses it as the final tie-breaker and the
// adaptation procedure uses it to exclude the offer currently in trouble.
func (o SystemOffer) Key() string {
	if o.key != "" || len(o.Choices) == 0 {
		return o.key
	}
	return computeKey(o.Choices)
}

// computeKey joins the chosen variant ids; Key()'s slow path for offers whose
// cache was not filled (hand-built literals, JSON round-trips).
func computeKey(choices []Choice) string {
	parts := make([]string, len(choices))
	for i, c := range choices {
		parts[i] = string(c.Variant.ID)
	}
	return strings.Join(parts, "+")
}

// UserOffer derives Definition 2's user offer: "the QoS the system is able
// to provide and the cost the user should pay ... specified as a MM
// profile". Multiple variants of the same kind (unusual, but possible for a
// document with two video components) keep the first occurrence.
func (o SystemOffer) UserOffer() profile.MMProfile {
	var p profile.MMProfile
	for _, c := range o.Choices {
		q := c.Variant.QoS
		switch {
		case q.Video != nil && p.Video == nil:
			v := *q.Video
			p.Video = &v
		case q.Audio != nil && p.Audio == nil:
			a := *q.Audio
			p.Audio = &a
		case q.Image != nil && p.Image == nil:
			i := *q.Image
			p.Image = &i
		case q.Text != nil && p.Text == nil:
			t := *q.Text
			p.Text = &t
		}
	}
	p.Cost = profile.CostProfile{MaxCost: o.Total()}
	return p
}

// String renders the offer in the paper's style:
// "(color, 25 frames/s, 480 pixels/line) + (CD quality) at 5$".
func (o SystemOffer) String() string {
	parts := make([]string, len(o.Choices))
	for i, c := range o.Choices {
		parts[i] = c.Variant.QoS.String()
	}
	return fmt.Sprintf("%s at %s", strings.Join(parts, " + "), o.Total())
}

// Status is the static negotiation status of Section 5.2.1. Ordering:
// Desirable is best, Constraint is worst.
type Status int

// The three SNS values. The paper notes more values may be considered.
const (
	// Desirable: "the QoS satisfies the QoS desired by the user" — and,
	// per the paper's own example (offer4, which matches the desired QoS
	// but exceeds the 4$ budget, is rated ACCEPTABLE), the cost stays
	// within the desired budget. See DESIGN.md, interpretation notes.
	Desirable Status = iota
	// Acceptable: "the QoS is better than the worst acceptable QoS
	// values accepted by the user". Cost does not enter.
	Acceptable
	// Constraint: "the QoS of the offer does not meet the worst
	// acceptable QoS values requested by the user (for at least one
	// monomedia and some of its characteristics)".
	Constraint
)

var statusNames = [...]string{"DESIRABLE", "ACCEPTABLE", "CONSTRAINT"}

// String returns the paper's upper-case name for the status.
func (s Status) String() string {
	if s < 0 || int(s) >= len(statusNames) {
		return fmt.Sprintf("Status(%d)", int(s))
	}
	return statusNames[s]
}

// SNS computes the static negotiation status of an offer against a user
// profile: "a simple comparison between the QoS associated with the offer
// and the user profile". Monomedia kinds for which the profile expresses no
// requirement do not constrain the status.
func SNS(o SystemOffer, u profile.UserProfile) Status {
	meetsDesired := true
	meetsWorst := true
	for _, c := range o.Choices {
		kind, ok := c.Variant.QoS.Kind()
		if !ok {
			meetsDesired, meetsWorst = false, false
			break
		}
		if des, ok := u.Desired.Setting(kind); ok {
			if !c.Variant.QoS.Satisfies(des) {
				meetsDesired = false
			}
		}
		if wor, ok := u.Worst.Setting(kind); ok {
			if !c.Variant.QoS.Satisfies(wor) {
				meetsWorst = false
			}
		}
	}
	switch {
	case meetsDesired && o.Total() <= u.Desired.Cost.MaxCost:
		return Desirable
	case meetsWorst:
		return Acceptable
	default:
		return Constraint
	}
}

// OIF computes the overall importance factor of Section 5.2.2(c):
// QoS importance minus cost importance, under the profile's importance
// factors.
func OIF(o SystemOffer, u profile.UserProfile) float64 {
	return u.Importance.Overall(o.Settings(), o.Total())
}

// WithinBudget reports whether the offer's cost respects the binding
// (worst-acceptable) budget. Together with a non-Constraint SNS this makes
// the offer a member of the "acceptable set" the commitment step tries
// first ("At first we consider only the offers which satisfy the cost and
// the QoS requested by the user").
func WithinBudget(o SystemOffer, u profile.UserProfile) bool {
	return o.Total() <= u.MaxCost()
}
