package offer_test

import (
	"fmt"

	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/offer"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
)

// Example_paperClassification reproduces the paper's Section 5.2 worked
// example end-to-end: the four offers, their static negotiation statuses,
// their overall importance factors under the example's importance factors
// (color 9, grey 6, black&white 2, TV resolution 9, 25 frames/s 9,
// 15 frames/s 5, cost importance 4), and the final SNS-primary order.
func Example_paperClassification() {
	mkOffer := func(id string, v qos.VideoQoS, price cost.Money) offer.SystemOffer {
		return offer.SystemOffer{
			Document: "news-article",
			Choices: []offer.Choice{{
				Monomedia: "video",
				Variant: media.Variant{
					ID: media.VariantID(id), Format: media.MPEG1,
					QoS: qos.VideoSetting(v), Server: "server-1",
				},
			}},
			Cost: cost.Breakdown{Total: price},
		}
	}
	offers := []offer.SystemOffer{
		mkOffer("offer1", qos.VideoQoS{Color: qos.BlackWhite, FrameRate: 25, Resolution: qos.TVResolution}, cost.DollarsFloat(2.5)),
		mkOffer("offer2", qos.VideoQoS{Color: qos.Color, FrameRate: 15, Resolution: qos.TVResolution}, cost.Dollars(4)),
		mkOffer("offer3", qos.VideoQoS{Color: qos.Grey, FrameRate: 25, Resolution: qos.TVResolution}, cost.Dollars(3)),
		mkOffer("offer4", qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution}, cost.Dollars(5)),
	}
	want := qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution}
	u := profile.UserProfile{
		Name:    "section-5",
		Desired: profile.MMProfile{Video: &want, Cost: profile.CostProfile{MaxCost: cost.Dollars(4)}},
		Worst:   profile.MMProfile{Video: &want, Cost: profile.CostProfile{MaxCost: cost.Dollars(4)}},
		Importance: profile.Importance{
			VideoColor:    map[qos.ColorQuality]float64{qos.BlackWhite: 2, qos.Grey: 6, qos.Color: 9},
			FrameRate:     profile.NewCurve(profile.Point{X: 15, Y: 5}, profile.Point{X: 25, Y: 9}),
			Resolution:    profile.NewCurve(profile.Point{X: qos.TVResolution, Y: 9}),
			CostPerDollar: 4,
		},
	}
	for _, r := range offer.Classify(offers, u) {
		fmt.Printf("%s: SNS=%s OIF=%g\n", r.Key(), r.Status, r.OIF)
	}
	// Output:
	// offer4: SNS=ACCEPTABLE OIF=7
	// offer3: SNS=CONSTRAINT OIF=12
	// offer1: SNS=CONSTRAINT OIF=10
	// offer2: SNS=CONSTRAINT OIF=7
}
