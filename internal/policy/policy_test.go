package policy_test

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/faults"
	"qosneg/internal/media"
	"qosneg/internal/policy"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
	"qosneg/internal/sim"
	"qosneg/internal/testbed"
)

func tvProfile() profile.UserProfile {
	return profile.UserProfile{
		Name: "tv",
		Desired: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.CDQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(20)},
		},
		Worst: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.BlackWhite, FrameRate: 10, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.TelephoneQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(20)},
		},
		Importance: profile.DefaultImportance(),
	}
}

// replicatedArticle builds a document whose video quality levels are each
// replicated on every given server, so the classifier produces tie runs and
// the policy layer has real choices to make.
func replicatedArticle(id media.DocumentID, servers ...media.ServerID) media.Document {
	const duration = 2 * time.Minute
	doc := media.Document{ID: id, Title: "Replicated " + string(id), CopyrightFee: 500}
	video := media.Monomedia{ID: "video", Kind: qos.Video, Name: "video", Duration: duration}
	for qi, v := range []qos.VideoQoS{
		{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
		{Color: qos.BlackWhite, FrameRate: 10, Resolution: qos.TVResolution},
	} {
		for si, srv := range servers {
			vid := media.VariantID(fmt.Sprintf("video-q%d-s%d", qi+1, si+1))
			video.Variants = append(video.Variants, media.VideoVariant(vid, srv, media.MPEG1, v, duration))
		}
	}
	doc.Monomedia = append(doc.Monomedia, video)
	// Audio lives on a middle server so crashing the edges still leaves a
	// servable document.
	audioHome := servers[len(servers)/2]
	audio := media.Monomedia{ID: "audio", Kind: qos.Audio, Name: "audio", Duration: duration}
	audio.Variants = append(audio.Variants,
		media.AudioVariant("audio-v1", audioHome, media.MPEG1Audio, qos.AudioQoS{Grade: qos.CDQuality}, duration))
	doc.Monomedia = append(doc.Monomedia, audio)
	return doc
}

func candidate(rank int, c cost.Money, servers ...core.PolicyServer) core.PolicyCandidate {
	return core.PolicyCandidate{Rank: rank, Key: fmt.Sprintf("k%d", rank), Cost: c, Servers: servers}
}

// A bandit that has watched one server fail and another succeed must order
// the healthy server's offer first, however the classical tie-break ranked
// them.
func TestBanditLearnsFlakyServer(t *testing.T) {
	b := policy.NewBandit(policy.Config{})
	for i := 0; i < 6; i++ {
		b.ObserveCommit(core.CommitObservation{Server: "server-1", Cause: core.CauseServerDown})
		b.ObserveCommit(core.CommitObservation{Server: "server-2", Cause: core.CauseNone, Latency: time.Millisecond})
	}
	perm := b.OrderCommits([]core.PolicyCandidate{
		candidate(0, 100, core.PolicyServer{ID: "server-1"}),
		candidate(1, 100, core.PolicyServer{ID: "server-2"}),
	})
	if len(perm) != 2 || perm[0] != 1 {
		t.Fatalf("order after evidence = %v, want healthy server-2 first", perm)
	}
	// The offer is only as good as its weakest server: pairing the healthy
	// server with the flaky one must not outrank the all-healthy offer.
	perm = b.OrderCommits([]core.PolicyCandidate{
		candidate(0, 100, core.PolicyServer{ID: "server-2"}, core.PolicyServer{ID: "server-1"}),
		candidate(1, 100, core.PolicyServer{ID: "server-2"}),
	})
	if perm[0] != 1 {
		t.Fatalf("order = %v, want the all-healthy offer first (weakest-link scoring)", perm)
	}
}

// With no evidence the bandit falls back to gentle cost pressure (cheapest
// first) and, with equal costs, keeps the classical order — which the
// manager treats as "no reorder".
func TestBanditNoEvidenceDefaults(t *testing.T) {
	b := policy.NewBandit(policy.Config{})
	sv := core.PolicyServer{ID: "server-1"}
	perm := b.OrderCommits([]core.PolicyCandidate{
		candidate(0, 200, sv), candidate(1, 100, sv),
	})
	if perm[0] != 1 {
		t.Fatalf("order = %v, want the cheaper offer first", perm)
	}
	perm = b.OrderCommits([]core.PolicyCandidate{
		candidate(0, 100, sv), candidate(1, 100, sv),
	})
	for i, p := range perm {
		if p != i {
			t.Fatalf("equal candidates reordered: %v", perm)
		}
	}
	// Live features still matter with no commit history: a server drowning
	// in consecutive failures is tried last.
	perm = b.OrderCommits([]core.PolicyCandidate{
		candidate(0, 100, core.PolicyServer{ID: "server-1", ConsecutiveFailures: 5}),
		candidate(1, 100, core.PolicyServer{ID: "server-2"}),
	})
	if perm[0] != 1 {
		t.Fatalf("order = %v, want the unfailing server first", perm)
	}
}

// Share batching: with a hook installed the bandit publishes additive
// deltas every ShareEvery observations and drains them, so successive
// batches never re-ship old evidence. Merging the batches into a fresh
// bandit must reproduce the teacher's preference.
func TestBanditShareAndMerge(t *testing.T) {
	teacher := policy.NewBandit(policy.Config{ShareEvery: 4})
	var batches [][]core.PolicySummary
	teacher.SetShareHook(func(s []core.PolicySummary) { batches = append(batches, s) })
	for i := 0; i < 8; i++ {
		teacher.ObserveCommit(core.CommitObservation{Server: "server-1", Cause: core.CauseServerDown})
	}
	if len(batches) != 2 {
		t.Fatalf("8 observations at ShareEvery=4 published %d batches, want 2", len(batches))
	}
	var total float64
	for _, batch := range batches {
		for _, s := range batch {
			if s.Server != "server-1" {
				t.Errorf("unexpected summary %+v", s)
			}
			total += s.Successes + s.Failures
		}
	}
	if total != 8 {
		t.Errorf("batches carry %.0f observations, want 8 (no re-shipping, no loss)", total)
	}
	student := policy.NewBandit(policy.Config{})
	for _, batch := range batches {
		student.MergePolicy(batch)
	}
	perm := student.OrderCommits([]core.PolicyCandidate{
		candidate(0, 100, core.PolicyServer{ID: "server-1"}),
		candidate(1, 100, core.PolicyServer{ID: "server-2"}),
	})
	if perm[0] != 1 {
		t.Fatalf("student order = %v, want merged evidence to demote server-1", perm)
	}
}

// Forks must be deterministic: the same shard index yields the same seed,
// so two forks given identical observations order identically even with
// Thompson sampling drawing noise.
func TestBanditForkDeterministic(t *testing.T) {
	root := policy.NewBandit(policy.Config{Thompson: true})
	a := root.ForkPolicy(3).(*policy.Bandit)
	b := root.ForkPolicy(3).(*policy.Bandit)
	ties := []core.PolicyCandidate{
		candidate(0, 100, core.PolicyServer{ID: "server-1"}),
		candidate(1, 100, core.PolicyServer{ID: "server-2"}),
		candidate(2, 100, core.PolicyServer{ID: "server-3"}),
	}
	for round := 0; round < 20; round++ {
		pa, pb := a.OrderCommits(ties), b.OrderCommits(ties)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("round %d: forks diverged: %v vs %v", round, pa, pb)
			}
		}
	}
	if other := root.ForkPolicy(4).(*policy.Bandit); other == a {
		t.Fatal("distinct shards share a fork")
	}
}

// reversing flips every tie run: the worst possible fixed answer, which
// makes it the sharpest probe of order-independent bookkeeping.
type reversing struct{}

func (reversing) Name() string { return "reversing" }
func (reversing) OrderCommits(ties []core.PolicyCandidate) []int {
	perm := make([]int, len(ties))
	for i := range perm {
		perm[i] = len(perm) - 1 - i
	}
	return perm
}
func (reversing) OrderTargets(ties []core.PolicyCandidate) []int {
	return reversing{}.OrderCommits(ties)
}

// TestPolicyReorderedFailover drives the same crashed-server negotiation
// under the classical order and under a reversed order. Both must converge
// on a healthy replica with the same user-visible offer, and the dead-set
// bookkeeping must count the crashed server exactly once however many
// reordered offers touch it.
func TestPolicyReorderedFailover(t *testing.T) {
	run := func(p core.SelectionPolicy) (core.Result, core.Stats, *testbed.Bed) {
		opts := core.DefaultOptions()
		opts.Health = core.HealthPolicy{FailureThreshold: 0}
		opts.Selection = p
		inj := faults.New(11)
		bed := testbed.MustNew(testbed.Spec{Clients: 2, Servers: 3, Options: &opts, Faults: inj})
		if err := bed.Registry.Add(replicatedArticle("news-1", "server-1", "server-2", "server-3")); err != nil {
			t.Fatal(err)
		}
		// The reversed order leads with server-3; crash it so the policy's
		// first choice fails and the run must fail over across the tie run.
		inj.Crash("server-3")
		res, err := bed.Manager.Negotiate(bed.Client(1), "news-1", tvProfile())
		if err != nil {
			t.Fatal(err)
		}
		return res, bed.Manager.Stats(), bed
	}

	classical, classicalStats, cbed := run(nil)
	reversed, reversedStats, rbed := run(reversing{})
	if !classical.Status.Reserved() || !reversed.Status.Reserved() {
		t.Fatalf("failover did not reserve: classical %v, reversed %v", classical.Status, reversed.Status)
	}
	// The policy may only permute equals, so the user-visible offer — QoS
	// and price — must be identical whichever server won.
	cOffer, _ := json.Marshal(classical.Offer)
	rOffer, _ := json.Marshal(reversed.Offer)
	if string(cOffer) != string(rOffer) {
		t.Errorf("user offers diverged under reordering:\nclassical: %s\nreversed:  %s", cOffer, rOffer)
	}
	if classical.Session.Cost() != reversed.Session.Cost() {
		t.Errorf("session cost diverged: %v vs %v", classical.Session.Cost(), reversed.Session.Cost())
	}
	// Reversed order leads with the crashed server: exactly one down is
	// counted for it, no matter how many replicated offers it appears in.
	if reversedStats.CommitServerDown != 1 {
		t.Errorf("reversed order counted %d server-down failures, want exactly 1 (idempotent dead set)", reversedStats.CommitServerDown)
	}
	// Classical order never touches the crashed server (server-1 is first
	// and healthy): zero failures.
	if classicalStats.CommitServerDown != 0 {
		t.Errorf("classical order counted %d server-down failures, want 0", classicalStats.CommitServerDown)
	}
	cbed.Manager.Reject(classical.Session.ID)
	rbed.Manager.Reject(reversed.Session.ID)
	for _, bed := range []*testbed.Bed{cbed, rbed} {
		if err := bed.Ledger.CheckEmpty(); err != nil {
			t.Error(err)
		}
	}
}

// signature flattens one operation's outcome for byte-identity comparison.
func signature(res core.Result, err error) string {
	if err != nil {
		return "err:" + err.Error()
	}
	var id core.SessionID
	var c cost.Money
	var ranked, current []byte
	if res.Session != nil {
		id = res.Session.ID
		c = res.Session.Cost()
		ranked, _ = json.Marshal(res.Session.Ranked)
		current, _ = json.Marshal(res.Session.CurrentOffer())
	}
	offerJSON, _ := json.Marshal(res.Offer)
	return fmt.Sprintf("%v|%s|%d|%d|%s|%s|%s", res.Status, res.Reason, id, c, offerJSON, current, ranked)
}

// TestPolicyOffEquivalence drives the same randomized interleaving — full
// lifecycle plus fault weather — against a bed with no policy configured
// and a bed with the static policy installed. Installing the policy layer
// in its declining state must be byte-identical to its absence: same
// statuses, reasons, session ids, offers, rankings, costs, errors, final
// counters; and both ledgers must balance to zero.
func TestPolicyOffEquivalence(t *testing.T) {
	static := policy.NewStatic()
	type pbed struct {
		bed *testbed.Bed
		inj *faults.Injector
	}
	mk := func(p core.SelectionPolicy, a core.AdaptationPolicy) pbed {
		opts := core.DefaultOptions()
		opts.Selection = p
		opts.Adaptation = a
		inj := faults.New(1996)
		bed := testbed.MustNew(testbed.Spec{Clients: 2, Servers: 3, Options: &opts, Faults: inj})
		if err := bed.Registry.Add(replicatedArticle("news-1", "server-1", "server-2", "server-3")); err != nil {
			t.Fatal(err)
		}
		return pbed{bed, inj}
	}
	beds := []pbed{mk(nil, nil), mk(static, static)}

	rng := sim.NewRand(42)
	live := [2][]core.SessionID{}
	pickIdx := -1
	for step := 0; step < 160; step++ {
		op := rng.Intn(12)
		if len(live[0]) > 0 {
			pickIdx = rng.Intn(len(live[0]))
		}
		// Draw every random choice ONCE per step, outside the per-bed loop,
		// so both beds see the same interleaving.
		client := 1 + rng.Intn(2)
		var snaps [2]string
		for i, pb := range beds {
			switch op {
			case 0, 1, 2, 3:
				res, err := pb.bed.Manager.Negotiate(pb.bed.Client(client), "news-1", tvProfile())
				snaps[i] = "negotiate " + signature(res, err)
				if err == nil && res.Session != nil {
					live[i] = append(live[i], res.Session.ID)
				}
			case 4:
				if pickIdx >= 0 && pickIdx < len(live[i]) {
					id := live[i][pickIdx]
					snaps[i] = fmt.Sprintf("confirm %d %v", id, pb.bed.Manager.Confirm(id))
				}
			case 5:
				if pickIdx >= 0 && pickIdx < len(live[i]) {
					id := live[i][pickIdx]
					snaps[i] = fmt.Sprintf("reject %d %v", id, pb.bed.Manager.Reject(id))
				}
			case 6:
				if pickIdx >= 0 && pickIdx < len(live[i]) {
					id := live[i][pickIdx]
					snaps[i] = fmt.Sprintf("expire %d %v", id, pb.bed.Manager.Expire(id))
				}
			case 7:
				if pickIdx >= 0 && pickIdx < len(live[i]) {
					id := live[i][pickIdx]
					tr, err := pb.bed.Manager.Adapt(id)
					snaps[i] = fmt.Sprintf("adapt %d %d %v", id, tr.Session, err)
				}
			case 8:
				if pickIdx >= 0 && pickIdx < len(live[i]) {
					id := live[i][pickIdx]
					res, err := pb.bed.Manager.Renegotiate(id, tvProfile())
					snaps[i] = fmt.Sprintf("renegotiate %d %s", id, signature(res, err))
				}
			case 9:
				if pickIdx >= 0 && pickIdx < len(live[i]) {
					id := live[i][pickIdx]
					snaps[i] = fmt.Sprintf("abort %d %v", id, pb.bed.Manager.Abort(id))
				}
			case 10:
				// Fault weather: crash or restart a server — the same one on
				// both beds, so the weather is identical.
				sid := media.ServerID(fmt.Sprintf("server-%d", 1+step%3))
				if step%2 == 0 {
					pb.inj.Crash(sid)
				} else {
					pb.inj.Restart(sid)
				}
				snaps[i] = "weather " + string(sid)
			case 11:
				p := float64(step%3) * 0.3
				pb.inj.SetReserveFailure(p)
				snaps[i] = fmt.Sprintf("weather reserve %.1f", p)
			}
		}
		if snaps[0] != snaps[1] {
			t.Fatalf("step %d: policy-absent and policy-disabled outcomes differ:\nabsent:   %s\ndisabled: %s",
				step, snaps[0], snaps[1])
		}
	}
	// Heal, wind down, and compare the final counters.
	var finals [2]string
	for i, pb := range beds {
		pb.inj.SetReserveFailure(0)
		for _, sid := range pb.bed.ServerIDs() {
			pb.inj.Restart(sid)
		}
		for _, id := range live[i] {
			pb.bed.Manager.Abort(id)
		}
		finals[i] = fmt.Sprintf("%+v", pb.bed.Manager.Stats())
		if err := pb.bed.Ledger.CheckEmpty(); err != nil {
			t.Errorf("bed %d: %v", i, err)
		}
	}
	if finals[0] != finals[1] {
		t.Fatalf("final stats differ:\nabsent:   %s\ndisabled: %s", finals[0], finals[1])
	}
}

// TestBanditFleetPropagation is the end-to-end version of the shard
// package's stub test: a real bandit on a 2-shard fleet, with one shard's
// learned aversion to a flaky server reaching the sibling over the bus.
func TestBanditFleetPropagation(t *testing.T) {
	b := policy.NewBandit(policy.Config{ShareEvery: 1})
	opts := core.DefaultOptions()
	opts.Health = core.HealthPolicy{FailureThreshold: 0}
	opts.Selection = b
	inj := faults.New(3)
	bed := testbed.MustNew(testbed.Spec{Shards: 2, Clients: 2, Servers: 3, Options: &opts, Faults: inj})
	if err := bed.Registry.Add(replicatedArticle("news-1", "server-1", "server-2", "server-3")); err != nil {
		t.Fatal(err)
	}
	if s, ok := inj.Server("server-1"); ok {
		s.SetReserveFailure(1.0)
	}
	for i := 0; i < 12; i++ {
		res, err := bed.Manager.Negotiate(bed.Client(1), "news-1", tvProfile())
		if err != nil {
			t.Fatal(err)
		}
		if res.Session != nil {
			bed.Manager.Reject(res.Session.ID)
		}
	}
	bed.Fleet.Sync()
	// Every shard's bandit — not just the one that suffered the failures —
	// must now hold evidence against server-1. The root bandit is never
	// consulted on a fleet; its forks are, and we can only observe them
	// through behaviour: negotiations stop failing once both shards have
	// learned, so the last few rounds must commit without burning attempts.
	before := bed.Manager.Stats()
	for i := 0; i < 8; i++ {
		res, err := bed.Manager.Negotiate(bed.Client(2), "news-1", tvProfile())
		if err != nil {
			t.Fatal(err)
		}
		if res.Session != nil {
			bed.Manager.Reject(res.Session.ID)
		}
	}
	after := bed.Manager.Stats()
	if d := after.CommitCapacity - before.CommitCapacity; d != 0 {
		t.Errorf("trained fleet still burned %d failed reserves; cross-shard learning did not take", d)
	}
	if err := bed.Ledger.CheckEmpty(); err != nil {
		t.Error(err)
	}
}
