// Package policy provides concrete Selection/Adaptation policies for the
// QoS manager's pluggable tie-break layer (core.SelectionPolicy,
// core.AdaptationPolicy): a static policy that keeps the paper's fixed
// order, and an online contextual bandit that learns which servers commit
// reliably and steers tie runs toward them.
//
// The policy layer can only permute offers the classifier ranked equal, so
// neither policy can change which QoS the user ends up with — only how many
// doomed commit attempts the negotiation burns before getting there.
package policy

import (
	"math"
	"sort"
	"sync"

	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/media"
)

// Static is the identity policy: it declines every reorder, so the manager
// keeps the classical tie-break (total cost, then offer key). Installing it
// is behaviourally identical to installing no policy at all; it exists so
// experiments can A/B "policy machinery on, learning off" against the
// bandit, and so the policy-off equivalence claim has a test subject.
type Static struct{}

// NewStatic returns the identity policy.
func NewStatic() Static { return Static{} }

// Name implements core.SelectionPolicy and core.AdaptationPolicy.
func (Static) Name() string { return "static" }

// OrderCommits declines the reorder; the classical order stands.
func (Static) OrderCommits(ties []core.PolicyCandidate) []int { return nil }

// OrderTargets declines the reorder; the classical order stands.
func (Static) OrderTargets(ties []core.PolicyCandidate) []int { return nil }

// Config tunes the bandit. The zero value is usable: DefaultConfig's values
// are substituted for any field left zero.
type Config struct {
	// Seed makes the bandit's exploration deterministic. Forked per-shard
	// instances derive their seed from it.
	Seed int64
	// Exploration scales the UCB-style uncertainty bonus. Zero means
	// DefaultConfig's value; negative disables the bonus.
	Exploration float64
	// Thompson adds posterior sampling noise on top of the UCB bonus,
	// breaking symmetric ties randomly instead of lexically.
	Thompson bool
	// Decay in (0,1] discounts old evidence on every new observation of an
	// arm, so the bandit tracks servers whose behaviour changes. 1 never
	// forgets.
	Decay float64
	// LoadWeight penalizes a server's live utilization; FailureWeight its
	// consecutive-failure streak and quarantine history; LatencyWeight the
	// arm's learned commit latency (per second); CostWeight applies gentle
	// pressure toward cheaper offers within a tie run, so an indifferent
	// bandit degrades to the classical cheapest-first order.
	LoadWeight    float64
	FailureWeight float64
	LatencyWeight float64
	CostWeight    float64
	// ShareEvery batches learned-state publication: with a share hook
	// installed, every ShareEvery observations the accumulated deltas are
	// handed to the hook.
	ShareEvery int
}

// DefaultConfig are the weights E20 runs with.
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		Exploration:   0.6,
		Decay:         0.98,
		LoadWeight:    0.15,
		FailureWeight: 0.25,
		LatencyWeight: 0.5,
		CostWeight:    0.05,
		ShareEvery:    8,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Exploration == 0 {
		c.Exploration = d.Exploration
	} else if c.Exploration < 0 {
		c.Exploration = 0
	}
	if c.Decay <= 0 || c.Decay > 1 {
		c.Decay = d.Decay
	}
	if c.LoadWeight == 0 {
		c.LoadWeight = d.LoadWeight
	}
	if c.FailureWeight == 0 {
		c.FailureWeight = d.FailureWeight
	}
	if c.LatencyWeight == 0 {
		c.LatencyWeight = d.LatencyWeight
	}
	if c.CostWeight == 0 {
		c.CostWeight = d.CostWeight
	}
	if c.ShareEvery <= 0 {
		c.ShareEvery = d.ShareEvery
	}
	return c
}

// armKey is the bandit's context: which server, for which service class.
// Guaranteed and best-effort commits stress a server differently (admission
// control versus overbooking), so the bandit learns them as separate arms.
type armKey struct {
	server media.ServerID
	g      cost.Guarantee
}

// arm is the learned state of one (server, guarantee) pair: exponentially
// decayed success/failure pseudo-counts (a Beta posterior over the commit
// success probability) and a commit-latency EWMA in seconds.
type arm struct {
	successes float64
	failures  float64
	latency   float64
}

// n is the arm's effective evidence weight.
func (a *arm) n() float64 { return a.successes + a.failures }

// mean is the posterior mean success probability, Beta(1,1) prior.
func (a *arm) mean() float64 { return (a.successes + 1) / (a.n() + 2) }

// Bandit is an online contextual bandit over commit outcomes. It scores
// each candidate offer by its weakest server — posterior commit-success
// mean plus an optimism bonus, minus live-load, failure-history, latency
// and cost penalties — and orders tie runs best-score-first. It learns from
// every per-server commit attempt the manager feeds it via ObserveCommit,
// and can exchange learned state with sibling shards as additive
// core.PolicySummary deltas.
//
// All methods are safe for concurrent use; ordering and observation take
// one mutex and do O(run length × servers) float work, no allocation beyond
// the returned permutation.
type Bandit struct {
	cfg Config

	mu   sync.Mutex
	rng  splitmix
	arms map[armKey]*arm
	// delta accumulates unshared evidence since the last share; observed
	// counts observations toward the next share.
	delta    map[armKey]*arm
	observed int
	share    func([]core.PolicySummary)
}

// NewBandit builds a bandit with cfg (zero fields take defaults).
func NewBandit(cfg Config) *Bandit {
	cfg = cfg.withDefaults()
	return &Bandit{
		cfg:  cfg,
		rng:  splitmix(cfg.Seed),
		arms: make(map[armKey]*arm),
	}
}

// Name implements core.SelectionPolicy and core.AdaptationPolicy.
func (b *Bandit) Name() string { return "bandit" }

// OrderCommits implements core.SelectionPolicy.
func (b *Bandit) OrderCommits(ties []core.PolicyCandidate) []int { return b.order(ties) }

// OrderTargets implements core.AdaptationPolicy: the same scoring picks the
// adaptation target — a degraded session should move to the server most
// likely to hold its reservation.
func (b *Bandit) OrderTargets(ties []core.PolicyCandidate) []int { return b.order(ties) }

// order scores each candidate and returns the best-first permutation.
// Stable: equal scores keep their classical relative order, so a bandit
// with no evidence and no noise returns the identity (which the manager
// treats as "no reorder").
func (b *Bandit) order(ties []core.PolicyCandidate) []int {
	if len(ties) < 2 {
		return nil
	}
	lo, hi := ties[0].Cost, ties[0].Cost
	for _, c := range ties[1:] {
		if c.Cost < lo {
			lo = c.Cost
		}
		if c.Cost > hi {
			hi = c.Cost
		}
	}
	span := float64(hi - lo)

	b.mu.Lock()
	scores := make([]float64, len(ties))
	for i, c := range ties {
		s := b.scoreLocked(c)
		if span > 0 {
			s -= b.cfg.CostWeight * float64(c.Cost-lo) / span
		}
		scores[i] = s
	}
	b.mu.Unlock()

	perm := make([]int, len(ties))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(x, y int) bool {
		return scores[perm[x]] > scores[perm[y]]
	})
	return perm
}

// scoreLocked scores one candidate as the minimum over its servers — an
// offer is only as committable as its least reliable server.
func (b *Bandit) scoreLocked(c core.PolicyCandidate) float64 {
	score := math.Inf(1)
	for _, sv := range c.Servers {
		s := b.serverScoreLocked(sv, c.Guarantee)
		if s < score {
			score = s
		}
	}
	if math.IsInf(score, 1) {
		return 0
	}
	return score
}

func (b *Bandit) serverScoreLocked(sv core.PolicyServer, g cost.Guarantee) float64 {
	var a arm
	if have, ok := b.arms[armKey{sv.ID, g}]; ok {
		a = *have
	}
	mean := a.mean()
	sigma := math.Sqrt(mean * (1 - mean) / (a.n() + 1))
	s := mean + b.cfg.Exploration*sigma
	if b.cfg.Thompson {
		s += b.rng.norm() * sigma
	}
	s -= b.cfg.LoadWeight * sv.Utilization
	s -= b.cfg.FailureWeight * float64(sv.ConsecutiveFailures)
	s -= b.cfg.FailureWeight * 0.5 * float64(sv.Quarantines)
	s -= b.cfg.LatencyWeight * a.latency
	return s
}

// ObserveCommit implements core.PolicyObserver: fold one attempt outcome
// into the arm's decayed counts (and the unshared delta), then share if the
// batch is due.
func (b *Bandit) ObserveCommit(o core.CommitObservation) {
	if o.Server == "" {
		return
	}
	k := armKey{o.Server, o.Guarantee}
	success := o.Cause == core.CauseNone

	b.mu.Lock()
	a := b.arms[k]
	if a == nil {
		a = &arm{}
		b.arms[k] = a
	}
	a.successes *= b.cfg.Decay
	a.failures *= b.cfg.Decay
	if success {
		a.successes++
		if sec := o.Latency.Seconds(); sec > 0 {
			if a.latency == 0 {
				a.latency = sec
			} else {
				a.latency = 0.8*a.latency + 0.2*sec
			}
		}
	} else {
		a.failures++
	}
	var out []core.PolicySummary
	if b.share != nil {
		if b.delta == nil {
			b.delta = make(map[armKey]*arm)
		}
		d := b.delta[k]
		if d == nil {
			d = &arm{}
			b.delta[k] = d
		}
		if success {
			d.successes++
		} else {
			d.failures++
		}
		d.latency = a.latency
		b.observed++
		if b.observed >= b.cfg.ShareEvery {
			out = b.drainDeltaLocked()
		}
	}
	hook := b.share
	b.mu.Unlock()

	if hook != nil && len(out) > 0 {
		hook(out)
	}
}

// drainDeltaLocked snapshots and clears the unshared evidence.
func (b *Bandit) drainDeltaLocked() []core.PolicySummary {
	if len(b.delta) == 0 {
		b.observed = 0
		return nil
	}
	out := make([]core.PolicySummary, 0, len(b.delta))
	for k, d := range b.delta {
		out = append(out, core.PolicySummary{
			Server:         k.server,
			Guarantee:      k.g,
			Successes:      d.successes,
			Failures:       d.failures,
			LatencySeconds: d.latency,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Server != out[j].Server {
			return out[i].Server < out[j].Server
		}
		return out[i].Guarantee < out[j].Guarantee
	})
	b.delta = nil
	b.observed = 0
	return out
}

// SetShareHook implements core.PolicySharer.
func (b *Bandit) SetShareHook(hook func([]core.PolicySummary)) {
	b.mu.Lock()
	b.share = hook
	b.mu.Unlock()
}

// MergePolicy implements core.PolicySharer: fold a sibling shard's additive
// deltas into the local arms. Addition commutes, so replay order across
// shards cannot skew the merged state.
func (b *Bandit) MergePolicy(sums []core.PolicySummary) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, s := range sums {
		if s.Server == "" || (s.Successes == 0 && s.Failures == 0) {
			continue
		}
		k := armKey{s.Server, s.Guarantee}
		a := b.arms[k]
		if a == nil {
			a = &arm{}
			b.arms[k] = a
		}
		a.successes += s.Successes
		a.failures += s.Failures
		if s.LatencySeconds > 0 {
			if a.latency == 0 {
				a.latency = s.LatencySeconds
			} else {
				a.latency = 0.5 * (a.latency + s.LatencySeconds)
			}
		}
	}
}

// ForkPolicy implements core.PolicyForker: an independent bandit with a
// shard-derived seed, so each shard of a fleet learns lock-free from its
// own commits and exchanges evidence over the bus.
func (b *Bandit) ForkPolicy(shard int) core.SelectionPolicy {
	cfg := b.cfg
	cfg.Seed = b.cfg.Seed + int64(shard)*0x9e3779b9
	return NewBandit(cfg)
}

// Snapshot returns the bandit's current arms as summaries (absolute counts,
// not deltas), sorted; for tests and reports.
func (b *Bandit) Snapshot() []core.PolicySummary {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]core.PolicySummary, 0, len(b.arms))
	for k, a := range b.arms {
		out = append(out, core.PolicySummary{
			Server:         k.server,
			Guarantee:      k.g,
			Successes:      a.successes,
			Failures:       a.failures,
			LatencySeconds: a.latency,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Server != out[j].Server {
			return out[i].Server < out[j].Server
		}
		return out[i].Guarantee < out[j].Guarantee
	})
	return out
}

// splitmix is a tiny deterministic PRNG (SplitMix64) so the bandit does not
// share math/rand's global state and forks reproduce bit-for-bit.
type splitmix uint64

func (s *splitmix) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 in [0,1).
func (s *splitmix) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// norm is a standard gaussian via Box-Muller.
func (s *splitmix) norm() float64 {
	u := s.float64()
	for u == 0 {
		u = s.float64()
	}
	v := s.float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}
