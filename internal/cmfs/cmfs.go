// Package cmfs simulates the continuous-media file server of the
// news-on-demand prototype ([Neu 96], University of British Columbia): a
// variable-bit-rate file server that admits streams with a disk-round
// model and lets the QoS manager reserve and release delivery resources
// (negotiation step 5, "asks ... the media file servers to reserve
// resources to support the QoS associated with the system offer").
//
// Admission model. The disk serves all active streams once per service
// round of length R. A stream with average bit rate r needs r×R/8 bytes per
// round; each admitted stream additionally costs one seek per round. A new
// stream is admitted iff
//
//	Σᵢ bytesPerRound(rᵢ)  ≤  (R − n·tSeek) × diskRate
//
// where n counts the streams including the candidate. This is the
// round-based admission test of the VBR CMFS literature; its parameters
// (disk transfer rate, seek time, round length) are configurable per
// server.
//
// Degradation injection. Experiments shrink a server's effective disk rate
// with SetDegradation; streams that no longer fit are reported by
// Overcommitted, which the QoS manager's adaptation procedure consumes.
package cmfs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"qosneg/internal/ledger"
	"qosneg/internal/media"
	"qosneg/internal/qos"
	"qosneg/internal/telemetry"
)

// ErrAdmission is returned when the disk-round admission test fails.
var ErrAdmission = errors.New("cmfs: admission test failed")

// ErrUnknownReservation is returned when releasing a reservation the server
// does not hold.
var ErrUnknownReservation = errors.New("cmfs: unknown reservation")

// AdmissionPolicy selects which negotiated rate the admission test charges.
type AdmissionPolicy int

// The admission policies of the VBR CMFS literature.
const (
	// ByAverage charges each stream its average bit rate: the statistical
	// multiplexing admission of [Neu 96], with peaks absorbed by the
	// client-side buffer.
	ByAverage AdmissionPolicy = iota
	// ByPeak charges the maximum bit rate: the conservative
	// deterministic-guarantee admission.
	ByPeak
)

// String names the policy.
func (p AdmissionPolicy) String() string {
	if p == ByPeak {
		return "by-peak"
	}
	return "by-average"
}

// Config parameterizes a server's disk model.
type Config struct {
	// DiskRate is the sustained disk transfer rate.
	DiskRate qos.BitRate
	// SeekTime is the per-stream seek overhead paid once per round.
	SeekTime time.Duration
	// RoundLength is the service round R.
	RoundLength time.Duration
	// MaxStreams caps concurrency regardless of bandwidth (stream
	// contexts, buffers). Zero means no cap.
	MaxStreams int
	// Policy selects the admission test's charged rate (default
	// ByAverage).
	Policy AdmissionPolicy
}

// DefaultConfig returns the disk model used by the examples and
// experiments: a mid-1990s fast-wide SCSI array sustaining 64 Mbit/s with
// 12 ms seeks and a one-second service round.
func DefaultConfig() Config {
	return Config{
		DiskRate:    64 * qos.MBitPerSecond,
		SeekTime:    12 * time.Millisecond,
		RoundLength: time.Second,
		MaxStreams:  64,
	}
}

// Validate reports an error for non-positive model parameters.
func (c Config) Validate() error {
	if c.DiskRate <= 0 {
		return fmt.Errorf("cmfs config: non-positive disk rate %v", c.DiskRate)
	}
	if c.SeekTime < 0 {
		return fmt.Errorf("cmfs config: negative seek time")
	}
	if c.RoundLength <= 0 {
		return fmt.Errorf("cmfs config: non-positive round length")
	}
	if c.MaxStreams < 0 {
		return fmt.Errorf("cmfs config: negative stream cap")
	}
	return nil
}

// ReservationID names a stream reservation on one server.
type ReservationID uint64

// Reservation records one admitted stream.
type Reservation struct {
	ID ReservationID
	// Rate is the bit rate the admission test charged: the average under
	// the ByAverage policy (peaks absorbed by the client-side buffer, as
	// in [Neu 96]), the maximum under ByPeak.
	Rate qos.BitRate
	// Peak is the negotiated maximum bit rate, kept for accounting.
	Peak qos.BitRate
}

// Server simulates one continuous-media file server. It is safe for
// concurrent use.
type Server struct {
	id  media.ServerID
	cfg Config

	mu          sync.Mutex
	next        ReservationID
	streams     map[ReservationID]Reservation
	degradation float64 // fraction of DiskRate lost, in [0, 1)

	// Telemetry series, installed by Instrument; nil when uninstrumented
	// (recording through them is then a no-op).
	admitted *telemetry.Counter
	rejected *telemetry.Counter
	active   *telemetry.Gauge

	// led, when non-nil, records every successful Reserve/Release in the
	// resource ledger (leak and double-release detection in tests).
	led *ledger.Ledger
}

// SetLedger installs a resource ledger: every successful Reserve posts an
// acquire, every successful Release a matching release. Only successful
// operations post — a Release of an unknown reservation already reports an
// error to the caller, and after a modeled crash such releases are a
// legitimate lost-message flow, not a bookkeeping bug. A nil ledger
// detaches.
func (s *Server) SetLedger(l *ledger.Ledger) {
	s.mu.Lock()
	s.led = l
	s.mu.Unlock()
}

// Instrument wires the server's admission decisions into a telemetry
// registry: per-server admit/reject counters and an active-streams gauge,
// all labeled with the server id. A nil registry is a no-op; instrumenting
// several servers against one registry shares the metric families.
func (s *Server) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	admits := reg.CounterFamily("qosneg_cmfs_admits_total",
		"Stream reservations admitted by the disk-round test.", "server")
	rejects := reg.CounterFamily("qosneg_cmfs_rejects_total",
		"Stream reservations rejected (admission failure or stream cap).", "server")
	active := reg.GaugeFamily("qosneg_cmfs_active_streams",
		"Currently reserved streams.", "server")
	s.mu.Lock()
	s.admitted = admits.With(string(s.id))
	s.rejected = rejects.With(string(s.id))
	s.active = active.With(string(s.id))
	s.active.Set(int64(len(s.streams)))
	s.mu.Unlock()
}

// NewServer builds a server with the given identity and disk model.
func NewServer(id media.ServerID, cfg Config) (*Server, error) {
	if id == "" {
		return nil, fmt.Errorf("cmfs: empty server id")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Server{id: id, cfg: cfg, streams: make(map[ReservationID]Reservation)}, nil
}

// MustServer is NewServer that panics on error; for fixtures.
func MustServer(id media.ServerID, cfg Config) *Server {
	s, err := NewServer(id, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// ID returns the server's identity.
func (s *Server) ID() media.ServerID { return s.id }

// Config returns the server's disk model.
func (s *Server) Config() Config { return s.cfg }

// bytesPerRound is the per-round transfer a stream of rate r needs.
func (s *Server) bytesPerRound(r qos.BitRate) int64 {
	return int64(r) / 8 * int64(s.cfg.RoundLength) / int64(time.Second)
}

// roundBudget is the transferable bytes per round with n admitted streams,
// under the current degradation.
func (s *Server) roundBudget(n int) int64 {
	transfer := s.cfg.RoundLength - time.Duration(n)*s.cfg.SeekTime
	if transfer <= 0 {
		return 0
	}
	rate := float64(s.cfg.DiskRate) * (1 - s.degradation)
	return int64(rate / 8 * float64(transfer) / float64(time.Second))
}

// chargedRate is the rate the admission policy charges for a request.
func (s *Server) chargedRate(n qos.NetworkQoS) qos.BitRate {
	if s.cfg.Policy == ByPeak && n.MaxBitRate > n.AvgBitRate {
		return n.MaxBitRate
	}
	return n.AvgBitRate
}

// Admit runs the admission test for a candidate stream of the given network
// QoS without reserving. It returns nil when the stream would be admitted.
func (s *Server) Admit(n qos.NetworkQoS) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.admitLocked(s.chargedRate(n))
}

func (s *Server) admitLocked(rate qos.BitRate) error {
	if rate < 0 {
		return fmt.Errorf("cmfs %s: negative rate", s.id)
	}
	n := len(s.streams) + 1
	if s.cfg.MaxStreams > 0 && n > s.cfg.MaxStreams {
		return fmt.Errorf("%w: server %s at stream cap %d", ErrAdmission, s.id, s.cfg.MaxStreams)
	}
	var demand int64
	for _, r := range s.streams {
		demand += s.bytesPerRound(r.Rate)
	}
	demand += s.bytesPerRound(rate)
	if budget := s.roundBudget(n); demand > budget {
		return fmt.Errorf("%w: server %s needs %d bytes/round, budget %d", ErrAdmission, s.id, demand, budget)
	}
	return nil
}

// Reserve admits and reserves a stream; it returns the reservation that a
// later Release must present. Discrete media (zero rate) reserve no disk
// bandwidth but still count against the stream cap while being fetched.
func (s *Server) Reserve(n qos.NetworkQoS) (Reservation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	charged := s.chargedRate(n)
	if err := s.admitLocked(charged); err != nil {
		s.rejected.Inc()
		return Reservation{}, err
	}
	s.next++
	r := Reservation{ID: s.next, Rate: charged, Peak: n.MaxBitRate}
	s.streams[r.ID] = r
	s.admitted.Inc()
	s.active.Set(int64(len(s.streams)))
	s.led.Acquire(ledger.KindCMFS, string(s.id), uint64(r.ID))
	return r, nil
}

// Release frees a reservation.
func (s *Server) Release(id ReservationID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.streams[id]; !ok {
		return fmt.Errorf("%w: %d on server %s", ErrUnknownReservation, id, s.id)
	}
	delete(s.streams, id)
	s.active.Set(int64(len(s.streams)))
	s.led.Release(ledger.KindCMFS, string(s.id), uint64(id))
	return nil
}

// ActiveStreams returns the number of admitted streams.
func (s *Server) ActiveStreams() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.streams)
}

// Utilization returns the fraction of the current round budget consumed by
// admitted streams, in [0, +inf) (values above 1 indicate overcommitment
// after degradation).
func (s *Server) Utilization() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	budget := s.roundBudget(len(s.streams))
	if budget == 0 {
		if len(s.streams) == 0 {
			return 0
		}
		return 1
	}
	var demand int64
	for _, r := range s.streams {
		demand += s.bytesPerRound(r.Rate)
	}
	return float64(demand) / float64(budget)
}

// SetDegradation shrinks the effective disk rate by the given fraction in
// [0, 1); experiments use it to inject server congestion. Already-admitted
// streams keep their reservations; Overcommitted reports the casualties.
func (s *Server) SetDegradation(fraction float64) error {
	if fraction < 0 || fraction >= 1 {
		return fmt.Errorf("cmfs %s: degradation fraction %g outside [0, 1)", s.id, fraction)
	}
	s.mu.Lock()
	s.degradation = fraction
	s.mu.Unlock()
	return nil
}

// Overcommitted returns the reservations that no longer fit in the degraded
// round budget, largest rate first: the streams the disk can no longer
// serve at their negotiated QoS. An empty result means every admitted
// stream still fits.
func (s *Server) Overcommitted() []Reservation {
	s.mu.Lock()
	defer s.mu.Unlock()
	res := make([]Reservation, 0, len(s.streams))
	for _, r := range s.streams {
		res = append(res, r)
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Rate != res[j].Rate {
			return res[i].Rate < res[j].Rate
		}
		return res[i].ID < res[j].ID
	})
	// Keep the cheapest streams that fit; everything else is a casualty.
	budget := s.roundBudget(len(s.streams))
	var demand int64
	keep := 0
	for _, r := range res {
		d := s.bytesPerRound(r.Rate)
		if demand+d > budget {
			break
		}
		demand += d
		keep++
	}
	victims := res[keep:]
	out := make([]Reservation, len(victims))
	copy(out, victims)
	sort.Slice(out, func(i, j int) bool { return out[i].Rate > out[j].Rate })
	return out
}

// Capacity reports how many additional streams of the given rate the server
// could admit right now; a sizing helper for experiments.
func (s *Server) Capacity(rate qos.BitRate) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	count := 0
	var demand int64
	for _, r := range s.streams {
		demand += s.bytesPerRound(r.Rate)
	}
	per := s.bytesPerRound(rate)
	for {
		n := len(s.streams) + count + 1
		if s.cfg.MaxStreams > 0 && n > s.cfg.MaxStreams {
			return count
		}
		if demand+per*int64(count+1) > s.roundBudget(n) {
			return count
		}
		count++
	}
}
