package cmfs

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"qosneg/internal/qos"
)

func smallConfig() Config {
	return Config{
		DiskRate:    10 * qos.MBitPerSecond,
		SeekTime:    10 * time.Millisecond,
		RoundLength: time.Second,
		MaxStreams:  8,
	}
}

func stream(rate qos.BitRate) qos.NetworkQoS {
	return qos.NetworkQoS{MaxBitRate: rate * 2, AvgBitRate: rate}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer("", DefaultConfig()); err == nil {
		t.Error("empty id accepted")
	}
	bad := []Config{
		{DiskRate: 0, RoundLength: time.Second},
		{DiskRate: 1, RoundLength: 0},
		{DiskRate: 1, RoundLength: time.Second, SeekTime: -1},
		{DiskRate: 1, RoundLength: time.Second, MaxStreams: -1},
	}
	for i, c := range bad {
		if _, err := NewServer("s", c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	s := MustServer("s1", DefaultConfig())
	if s.ID() != "s1" {
		t.Errorf("ID = %s", s.ID())
	}
	if s.Config().DiskRate != DefaultConfig().DiskRate {
		t.Error("config not retained")
	}
}

func TestReserveRelease(t *testing.T) {
	s := MustServer("s1", smallConfig())
	r, err := s.Reserve(stream(2 * qos.MBitPerSecond))
	if err != nil {
		t.Fatal(err)
	}
	if s.ActiveStreams() != 1 {
		t.Errorf("ActiveStreams = %d", s.ActiveStreams())
	}
	if r.Rate != 2*qos.MBitPerSecond || r.Peak != 4*qos.MBitPerSecond {
		t.Errorf("reservation = %+v", r)
	}
	if err := s.Release(r.ID); err != nil {
		t.Fatal(err)
	}
	if s.ActiveStreams() != 0 {
		t.Errorf("ActiveStreams after release = %d", s.ActiveStreams())
	}
	if err := s.Release(r.ID); !errors.Is(err, ErrUnknownReservation) {
		t.Errorf("double release: %v", err)
	}
}

func TestAdmissionBandwidthLimit(t *testing.T) {
	// 10 Mbit/s disk, 10 ms seek, 1 s round. With n streams the budget is
	// (1 - 0.01n) × 1.25 MB. 2 Mbit/s streams need 250 kB/round, so the
	// 4th stream still fits (budget 1.2 MB ≥ 1.0 MB) and the 5th fails
	// only at the capacity edge — compute exactly:
	s := MustServer("s1", smallConfig())
	admitted := 0
	for i := 0; i < 8; i++ {
		if _, err := s.Reserve(stream(2 * qos.MBitPerSecond)); err != nil {
			if !errors.Is(err, ErrAdmission) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		admitted++
	}
	// budget(n) = (1 − 0.01·n) × 1.25e6 bytes; demand(n) = n × 250e3.
	// n=4: 1.2e6 ≥ 1.0e6 ok; n=5: 1.1875e6 ≥ 1.25e6 false → 4 streams.
	if admitted != 4 {
		t.Errorf("admitted %d streams, want 4", admitted)
	}
	util := s.Utilization()
	if util <= 0 || util > 1 {
		t.Errorf("utilization = %g", util)
	}
}

func TestAdmissionStreamCap(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxStreams = 2
	s := MustServer("s1", cfg)
	for i := 0; i < 2; i++ {
		if _, err := s.Reserve(stream(qos.KBitPerSecond)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Reserve(stream(qos.KBitPerSecond)); !errors.Is(err, ErrAdmission) {
		t.Errorf("stream cap not enforced: %v", err)
	}
}

func TestAdmitIsNonBinding(t *testing.T) {
	s := MustServer("s1", smallConfig())
	if err := s.Admit(stream(2 * qos.MBitPerSecond)); err != nil {
		t.Fatal(err)
	}
	if s.ActiveStreams() != 0 {
		t.Error("Admit must not reserve")
	}
	if err := s.Admit(stream(-1)); err == nil {
		t.Error("negative rate admitted")
	}
}

func TestZeroRateStreams(t *testing.T) {
	s := MustServer("s1", smallConfig())
	r, err := s.Reserve(qos.NetworkQoS{})
	if err != nil {
		t.Fatalf("discrete medium rejected: %v", err)
	}
	if s.Utilization() != 0 {
		t.Errorf("zero-rate stream consumes bandwidth: %g", s.Utilization())
	}
	if err := s.Release(r.ID); err != nil {
		t.Fatal(err)
	}
}

func TestDegradationAndOvercommit(t *testing.T) {
	s := MustServer("s1", smallConfig())
	var ids []ReservationID
	for i := 0; i < 4; i++ {
		r, err := s.Reserve(stream(2 * qos.MBitPerSecond))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, r.ID)
	}
	if len(s.Overcommitted()) != 0 {
		t.Fatal("healthy server reports overcommitment")
	}
	// Halving the disk rate leaves budget (1−0.04)×0.625 MB = 600 kB;
	// each stream needs 250 kB → only 2 of 4 fit.
	if err := s.SetDegradation(0.5); err != nil {
		t.Fatal(err)
	}
	victims := s.Overcommitted()
	if len(victims) != 2 {
		t.Fatalf("victims = %d, want 2", len(victims))
	}
	for _, v := range victims {
		if err := s.Release(v.ID); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.Overcommitted()) != 0 {
		t.Error("still overcommitted after releasing victims")
	}
	// Recovery restores admission.
	if err := s.SetDegradation(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reserve(stream(2 * qos.MBitPerSecond)); err != nil {
		t.Errorf("post-recovery admission failed: %v", err)
	}
	_ = ids
}

func TestSetDegradationValidation(t *testing.T) {
	s := MustServer("s1", smallConfig())
	if err := s.SetDegradation(-0.1); err == nil {
		t.Error("negative degradation accepted")
	}
	if err := s.SetDegradation(1); err == nil {
		t.Error("total degradation accepted")
	}
}

func TestCapacity(t *testing.T) {
	s := MustServer("s1", smallConfig())
	c := s.Capacity(2 * qos.MBitPerSecond)
	if c != 4 {
		t.Errorf("Capacity = %d, want 4", c)
	}
	// Reserving reduces capacity.
	if _, err := s.Reserve(stream(2 * qos.MBitPerSecond)); err != nil {
		t.Fatal(err)
	}
	if got := s.Capacity(2 * qos.MBitPerSecond); got != c-1 {
		t.Errorf("Capacity after reserve = %d, want %d", got, c-1)
	}
	// Stream cap bounds capacity for tiny streams.
	if got := s.Capacity(qos.BitPerSecond); got != smallConfig().MaxStreams-1 {
		t.Errorf("tiny-stream capacity = %d", got)
	}
}

func TestConcurrentReserveRelease(t *testing.T) {
	s := MustServer("s1", Config{
		DiskRate:    100 * qos.MBitPerSecond,
		SeekTime:    time.Millisecond,
		RoundLength: time.Second,
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r, err := s.Reserve(stream(qos.MBitPerSecond))
				if err != nil {
					continue
				}
				s.Utilization()
				if err := s.Release(r.ID); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.ActiveStreams() != 0 {
		t.Errorf("leaked %d streams", s.ActiveStreams())
	}
}

// Property: a server never admits beyond its round budget — after any
// sequence of successful reservations, utilization ≤ 1 (absent degradation).
func TestAdmissionSafetyProperty(t *testing.T) {
	f := func(rates []uint32) bool {
		s := MustServer("s1", smallConfig())
		for _, r := range rates {
			s.Reserve(stream(qos.BitRate(r % 5_000_000)))
		}
		return s.Utilization() <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: release returns the server to its pre-reserve admission state.
func TestReserveReleaseInverseProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		s := MustServer("s1", smallConfig())
		first := qos.BitRate(a % 8_000_000)
		second := qos.BitRate(b % 8_000_000)
		before := s.Admit(stream(second)) == nil
		r, err := s.Reserve(stream(first))
		if err != nil {
			return true
		}
		s.Release(r.ID)
		after := s.Admit(stream(second)) == nil
		return before == after
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdmissionPolicyByPeak(t *testing.T) {
	cfg := smallConfig() // 10 Mbit/s disk
	cfg.Policy = ByPeak
	s := MustServer("s1", cfg)
	// Streams with avg 1 Mbit/s, peak 4 Mbit/s: by-peak charges 4 Mbit/s
	// and fits 2 streams; by-average would fit far more.
	n := qos.NetworkQoS{MaxBitRate: 4 * qos.MBitPerSecond, AvgBitRate: qos.MBitPerSecond}
	admitted := 0
	for i := 0; i < 8; i++ {
		if _, err := s.Reserve(n); err != nil {
			break
		}
		admitted++
	}
	if admitted != 2 {
		t.Errorf("by-peak admitted %d streams, want 2", admitted)
	}

	avg := MustServer("s2", smallConfig())
	admittedAvg := 0
	for i := 0; i < 8; i++ {
		if _, err := avg.Reserve(n); err != nil {
			break
		}
		admittedAvg++
	}
	if admittedAvg <= admitted {
		t.Errorf("by-average admitted %d, by-peak %d: multiplexing gain missing", admittedAvg, admitted)
	}
	if ByPeak.String() != "by-peak" || ByAverage.String() != "by-average" {
		t.Error("policy names")
	}
}
