package network

import (
	"fmt"
	"time"

	"qosneg/internal/qos"
)

// This file provides topology builders shared by tests, examples and the
// experiment harness.

// StarSpec parameterizes BuildStar.
type StarSpec struct {
	// Clients and Servers are attached to a central switch.
	Clients []NodeID
	Servers []NodeID
	// AccessCapacity is the client access-link capacity (default 10 Mbit/s).
	AccessCapacity qos.BitRate
	// BackboneCapacity is the server-side link capacity (default 100 Mbit/s).
	BackboneCapacity qos.BitRate
}

// BuildStar builds the canonical evaluation topology: every client and
// server hangs off one switch. Client access links default to 10 Mbit/s
// (mid-90s campus Ethernet); server backbone links to 100 Mbit/s.
func BuildStar(spec StarSpec) (*Network, error) {
	if spec.AccessCapacity == 0 {
		spec.AccessCapacity = 10 * qos.MBitPerSecond
	}
	if spec.BackboneCapacity == 0 {
		spec.BackboneCapacity = 100 * qos.MBitPerSecond
	}
	n := New()
	const hub = NodeID("switch")
	for _, c := range spec.Clients {
		id := LinkID(fmt.Sprintf("access-%s", c))
		if err := n.AddDuplex(id, c, hub, spec.AccessCapacity, 2*time.Millisecond, time.Millisecond, 0.0005); err != nil {
			return nil, err
		}
	}
	for _, s := range spec.Servers {
		id := LinkID(fmt.Sprintf("backbone-%s", s))
		if err := n.AddDuplex(id, hub, s, spec.BackboneCapacity, time.Millisecond, time.Millisecond, 0.0002); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// BuildDualPath builds a topology with two disjoint routes between a client
// and a server — a primary high-capacity route and a backup lower-capacity
// route — used by the adaptation experiments: degrading the primary route
// must push sessions onto the backup.
//
//	client ── sw1 ══ primary ══ sw2 ── server
//	           ╲═══ backup ═══╱
func BuildDualPath(client, server NodeID, primary, backup qos.BitRate) (*Network, error) {
	n := New()
	steps := []struct {
		id     LinkID
		a, b   NodeID
		cap    qos.BitRate
		delay  time.Duration
		jitter time.Duration
	}{
		{"access", client, "sw1", 100 * qos.MBitPerSecond, time.Millisecond, time.Millisecond},
		{"primary", "sw1", "sw2", primary, 2 * time.Millisecond, 2 * time.Millisecond},
		{"backup-a", "sw1", "sw3", backup, 3 * time.Millisecond, 2 * time.Millisecond},
		{"backup-b", "sw3", "sw2", backup, 3 * time.Millisecond, 2 * time.Millisecond},
		{"egress", "sw2", server, 100 * qos.MBitPerSecond, time.Millisecond, time.Millisecond},
	}
	for _, s := range steps {
		if err := n.AddDuplex(s.id, s.a, s.b, s.cap, s.delay, s.jitter, 0.0003); err != nil {
			return nil, err
		}
	}
	return n, nil
}
