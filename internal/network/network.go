// Package network simulates the communication substrate that connected the
// news-on-demand prototype's client and server machines (ATM links with
// resource reservation in the style of RSVP [Zha 95] / the native-mode ATM
// stack [Kes 95]). The QoS manager's negotiation step 5 asks "the transport
// system ... to reserve resources"; this package provides the link/topology
// model, QoS-aware path finding and per-link bandwidth reservation that the
// transport facade (package transport) builds on.
//
// A network is a directed graph of links, each with a bandwidth capacity,
// propagation delay, jitter contribution and loss rate. A path is feasible
// for a requested qos.NetworkQoS when every link has enough spare capacity
// for the average bit rate, the accumulated jitter stays within the jitter
// target, and the composed loss probability stays within the loss target.
//
// Experiments inject congestion by degrading a link's capacity; existing
// reservations that no longer fit are reported by Overcommitted and drive
// the adaptation procedure.
package network

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"qosneg/internal/ledger"
	"qosneg/internal/qos"
	"qosneg/internal/telemetry"
)

// NodeID names a network node: a client machine, a server machine or an
// interior switch.
type NodeID string

// LinkID names a directed link.
type LinkID string

// ErrNoPath is returned when no feasible path exists for a request.
var ErrNoPath = errors.New("network: no feasible path")

// ErrUnknownReservation is returned when releasing an unknown reservation.
var ErrUnknownReservation = errors.New("network: unknown reservation")

// Link is one directed edge of the topology.
type Link struct {
	ID       LinkID
	From, To NodeID
	// Capacity is the schedulable bandwidth of the link.
	Capacity qos.BitRate
	// Delay is the link's propagation + queueing delay contribution.
	Delay time.Duration
	// Jitter is the link's worst-case delay variation contribution.
	Jitter time.Duration
	// Loss is the link's packet loss probability.
	Loss float64
}

// Validate reports an error for inconsistent link parameters.
func (l Link) Validate() error {
	if l.ID == "" {
		return fmt.Errorf("network: empty link id")
	}
	if l.From == "" || l.To == "" || l.From == l.To {
		return fmt.Errorf("network link %s: bad endpoints (%s → %s)", l.ID, l.From, l.To)
	}
	if l.Capacity <= 0 {
		return fmt.Errorf("network link %s: non-positive capacity", l.ID)
	}
	if l.Delay < 0 || l.Jitter < 0 {
		return fmt.Errorf("network link %s: negative delay or jitter", l.ID)
	}
	if l.Loss < 0 || l.Loss >= 1 {
		return fmt.Errorf("network link %s: loss %g outside [0, 1)", l.ID, l.Loss)
	}
	return nil
}

// Path is an ordered sequence of link ids from a source to a destination.
type Path []LinkID

// ReservationID names a bandwidth reservation across a path.
type ReservationID uint64

// Reservation records reserved bandwidth along a path.
type Reservation struct {
	ID   ReservationID
	Path Path
	Rate qos.BitRate
}

// Network is the topology plus its reservation state. It is safe for
// concurrent use.
type Network struct {
	mu       sync.Mutex
	links    map[LinkID]*linkState
	adjacent map[NodeID][]LinkID
	nodes    map[NodeID]bool
	next     ReservationID
	resv     map[ReservationID]Reservation

	// Telemetry series, installed by Instrument; nil when uninstrumented.
	admitted *telemetry.Counter
	rejected *telemetry.Counter
	active   *telemetry.Gauge

	// led, when non-nil, records every Reserve/Release in the resource
	// ledger. Reservation ids are never reused, so a Release of an unknown
	// id is posted too — the ledger flags it as a double release.
	led *ledger.Ledger
}

// SetLedger installs a resource ledger on the network's reservation state;
// a nil ledger detaches.
func (n *Network) SetLedger(l *ledger.Ledger) {
	n.mu.Lock()
	n.led = l
	n.mu.Unlock()
}

// Instrument wires the network's reservation decisions into a telemetry
// registry: admit/reject counters and a live-reservation gauge. A nil
// registry is a no-op.
func (n *Network) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	admitted := reg.Counter("qosneg_network_admits_total",
		"Path bandwidth reservations admitted.")
	rejected := reg.Counter("qosneg_network_rejects_total",
		"Path bandwidth reservations rejected (path no longer feasible).")
	active := reg.Gauge("qosneg_network_active_reservations",
		"Currently held path reservations.")
	n.mu.Lock()
	n.admitted, n.rejected, n.active = admitted, rejected, active
	n.active.Set(int64(len(n.resv)))
	n.mu.Unlock()
}

type linkState struct {
	Link
	reserved    qos.BitRate
	degradation float64
}

// New returns an empty network.
func New() *Network {
	return &Network{
		links:    make(map[LinkID]*linkState),
		adjacent: make(map[NodeID][]LinkID),
		nodes:    make(map[NodeID]bool),
		resv:     make(map[ReservationID]Reservation),
	}
}

// AddLink installs a directed link. Nodes are created implicitly.
func (n *Network) AddLink(l Link) error {
	if err := l.Validate(); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.links[l.ID]; ok {
		return fmt.Errorf("network: duplicate link id %s", l.ID)
	}
	n.links[l.ID] = &linkState{Link: l}
	n.adjacent[l.From] = append(n.adjacent[l.From], l.ID)
	n.nodes[l.From] = true
	n.nodes[l.To] = true
	return nil
}

// AddDuplex installs the two directed links of a full-duplex connection,
// naming them id+":fwd" and id+":rev".
func (n *Network) AddDuplex(id LinkID, a, b NodeID, capacity qos.BitRate, delay, jitter time.Duration, loss float64) error {
	fwd := Link{ID: id + ":fwd", From: a, To: b, Capacity: capacity, Delay: delay, Jitter: jitter, Loss: loss}
	rev := Link{ID: id + ":rev", From: b, To: a, Capacity: capacity, Delay: delay, Jitter: jitter, Loss: loss}
	if err := n.AddLink(fwd); err != nil {
		return err
	}
	return n.AddLink(rev)
}

// Nodes returns the sorted node set.
func (n *Network) Nodes() []NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Link returns a link's static description.
func (n *Network) Link(id LinkID) (Link, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ls, ok := n.links[id]
	if !ok {
		return Link{}, false
	}
	return ls.Link, true
}

// Available returns a link's spare capacity under current reservations and
// degradation.
func (n *Network) Available(id LinkID) (qos.BitRate, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ls, ok := n.links[id]
	if !ok {
		return 0, false
	}
	return availableLocked(ls), true
}

func availableLocked(ls *linkState) qos.BitRate {
	eff := qos.BitRate(float64(ls.Capacity) * (1 - ls.degradation))
	if ls.reserved >= eff {
		return 0
	}
	return eff - ls.reserved
}

// PathMetrics aggregates the QoS a path delivers.
type PathMetrics struct {
	Hops   int
	Delay  time.Duration
	Jitter time.Duration
	Loss   float64
	// Bottleneck is the smallest spare capacity along the path.
	Bottleneck qos.BitRate
}

// metricsLocked computes path metrics; caller holds the lock.
func (n *Network) metricsLocked(p Path) (PathMetrics, error) {
	m := PathMetrics{Bottleneck: 1<<62 - 1}
	keep := 1.0
	for _, id := range p {
		ls, ok := n.links[id]
		if !ok {
			return PathMetrics{}, fmt.Errorf("network: unknown link %s in path", id)
		}
		m.Hops++
		m.Delay += ls.Delay
		m.Jitter += ls.Jitter
		keep *= 1 - ls.Loss
		if a := availableLocked(ls); a < m.Bottleneck {
			m.Bottleneck = a
		}
	}
	m.Loss = 1 - keep
	return m, nil
}

// Metrics returns the aggregate QoS of a path.
func (n *Network) Metrics(p Path) (PathMetrics, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.metricsLocked(p)
}

// feasibleLocked reports whether metrics m support the request q.
func feasibleLocked(m PathMetrics, q qos.NetworkQoS) bool {
	if m.Bottleneck < q.AvgBitRate {
		return false
	}
	if q.Jitter > 0 && m.Jitter > q.Jitter {
		return false
	}
	if q.LossRate > 0 && m.Loss > q.LossRate {
		return false
	}
	if q.Delay > 0 && m.Delay > q.Delay {
		return false
	}
	return true
}

// FindPaths returns up to k loop-free paths from src to dst that are
// feasible for the request, ordered best-first: fewest hops, then largest
// bottleneck capacity. It returns ErrNoPath when none exists.
func (n *Network) FindPaths(src, dst NodeID, q qos.NetworkQoS, k int) ([]Path, error) {
	if k <= 0 {
		k = 1
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.nodes[src] || !n.nodes[dst] {
		return nil, fmt.Errorf("%w: unknown endpoint %s or %s", ErrNoPath, src, dst)
	}

	type cand struct {
		path    Path
		metrics PathMetrics
	}
	var found []cand
	// Bounded DFS over loop-free paths. Topologies here are small (tens
	// of nodes), so exhaustive enumeration with a depth bound is fine.
	const maxHops = 8
	visited := map[NodeID]bool{src: true}
	var walk func(at NodeID, path Path)
	walk = func(at NodeID, path Path) {
		if len(found) >= 4*k && len(path) > 0 {
			// Enough candidates to choose the best k from.
			return
		}
		if at == dst {
			m, err := n.metricsLocked(path)
			if err == nil && feasibleLocked(m, q) {
				cp := make(Path, len(path))
				copy(cp, path)
				found = append(found, cand{path: cp, metrics: m})
			}
			return
		}
		if len(path) >= maxHops {
			return
		}
		for _, lid := range n.adjacent[at] {
			ls := n.links[lid]
			if visited[ls.To] {
				continue
			}
			// Prune links that cannot carry the rate at all.
			if availableLocked(ls) < q.AvgBitRate {
				continue
			}
			visited[ls.To] = true
			walk(ls.To, append(path, lid))
			visited[ls.To] = false
		}
	}
	walk(src, nil)
	if len(found) == 0 {
		return nil, fmt.Errorf("%w: %s → %s for %v", ErrNoPath, src, dst, q)
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].metrics.Hops != found[j].metrics.Hops {
			return found[i].metrics.Hops < found[j].metrics.Hops
		}
		return found[i].metrics.Bottleneck > found[j].metrics.Bottleneck
	})
	if len(found) > k {
		found = found[:k]
	}
	out := make([]Path, len(found))
	for i, c := range found {
		out[i] = c.path
	}
	return out, nil
}

// Reserve reserves the request's average bit rate on every link of the
// path. It fails atomically: either every link is charged or none.
func (n *Network) Reserve(p Path, q qos.NetworkQoS) (Reservation, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	m, err := n.metricsLocked(p)
	if err != nil {
		n.rejected.Inc()
		return Reservation{}, err
	}
	if !feasibleLocked(m, q) {
		n.rejected.Inc()
		return Reservation{}, fmt.Errorf("%w: path no longer feasible for %v", ErrNoPath, q)
	}
	for _, id := range p {
		n.links[id].reserved += q.AvgBitRate
	}
	n.next++
	r := Reservation{ID: n.next, Path: append(Path{}, p...), Rate: q.AvgBitRate}
	n.resv[r.ID] = r
	n.admitted.Inc()
	n.active.Set(int64(len(n.resv)))
	n.led.Acquire(ledger.KindNetwork, "", uint64(r.ID))
	return r, nil
}

// Release frees a reservation's bandwidth on every link of its path.
func (n *Network) Release(id ReservationID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	r, ok := n.resv[id]
	if !ok {
		// Ids are never reused: an unknown release is a double release (or
		// a release of something never granted) — post it so an installed
		// ledger fails fast.
		n.led.Release(ledger.KindNetwork, "", uint64(id))
		return fmt.Errorf("%w: %d", ErrUnknownReservation, id)
	}
	for _, lid := range r.Path {
		if ls, ok := n.links[lid]; ok {
			ls.reserved -= r.Rate
			if ls.reserved < 0 {
				ls.reserved = 0
			}
		}
	}
	delete(n.resv, id)
	n.active.Set(int64(len(n.resv)))
	n.led.Release(ledger.KindNetwork, "", uint64(id))
	return nil
}

// ActiveReservations returns the number of live reservations.
func (n *Network) ActiveReservations() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.resv)
}

// SetLinkDegradation shrinks a link's effective capacity by the fraction in
// [0, 1); experiments use it to inject network congestion.
func (n *Network) SetLinkDegradation(id LinkID, fraction float64) error {
	if fraction < 0 || fraction >= 1 {
		return fmt.Errorf("network: degradation fraction %g outside [0, 1)", fraction)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	ls, ok := n.links[id]
	if !ok {
		return fmt.Errorf("network: unknown link %s", id)
	}
	ls.degradation = fraction
	return nil
}

// Overcommitted returns the reservations crossing any link whose effective
// capacity no longer covers its reserved bandwidth, largest rate first.
// The QoS manager's adaptation procedure treats these as QoS violations.
func (n *Network) Overcommitted() []Reservation {
	n.mu.Lock()
	defer n.mu.Unlock()
	over := make(map[LinkID]qos.BitRate) // excess per link
	for id, ls := range n.links {
		eff := qos.BitRate(float64(ls.Capacity) * (1 - ls.degradation))
		if ls.reserved > eff {
			over[id] = ls.reserved - eff
		}
	}
	if len(over) == 0 {
		return nil
	}
	var out []Reservation
	for _, r := range n.resv {
		for _, lid := range r.Path {
			if _, bad := over[lid]; bad {
				out = append(out, r)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rate != out[j].Rate {
			return out[i].Rate > out[j].Rate
		}
		return out[i].ID < out[j].ID
	})
	return out
}
