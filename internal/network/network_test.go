package network

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"qosneg/internal/qos"
)

func request(rate qos.BitRate) qos.NetworkQoS {
	return qos.NetworkQoS{MaxBitRate: rate * 2, AvgBitRate: rate, Jitter: 10 * time.Millisecond, LossRate: 0.003}
}

func dualPath(t *testing.T) *Network {
	t.Helper()
	n, err := BuildDualPath("client", "server", 10*qos.MBitPerSecond, 4*qos.MBitPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestLinkValidate(t *testing.T) {
	good := Link{ID: "l", From: "a", To: "b", Capacity: 1000, Delay: time.Millisecond, Jitter: time.Millisecond, Loss: 0.001}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid link rejected: %v", err)
	}
	bad := []Link{
		{ID: "", From: "a", To: "b", Capacity: 1},
		{ID: "l", From: "a", To: "a", Capacity: 1},
		{ID: "l", From: "", To: "b", Capacity: 1},
		{ID: "l", From: "a", To: "b", Capacity: 0},
		{ID: "l", From: "a", To: "b", Capacity: 1, Delay: -1},
		{ID: "l", From: "a", To: "b", Capacity: 1, Loss: 1},
		{ID: "l", From: "a", To: "b", Capacity: 1, Loss: -0.1},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("bad link %d accepted", i)
		}
	}
}

func TestAddLinkDuplicate(t *testing.T) {
	n := New()
	l := Link{ID: "l", From: "a", To: "b", Capacity: 1000}
	if err := n.AddLink(l); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink(l); err == nil {
		t.Error("duplicate link id accepted")
	}
	if _, ok := n.Link("l"); !ok {
		t.Error("link not retrievable")
	}
	if _, ok := n.Link("ghost"); ok {
		t.Error("ghost link found")
	}
	nodes := n.Nodes()
	if len(nodes) != 2 || nodes[0] != "a" || nodes[1] != "b" {
		t.Errorf("Nodes = %v", nodes)
	}
}

func TestFindPathsPrefersFewestHops(t *testing.T) {
	n := dualPath(t)
	paths, err := n.FindPaths("client", "server", request(qos.MBitPerSecond), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("found %d paths, want 2 (primary + backup)", len(paths))
	}
	if len(paths[0]) != 3 || len(paths[1]) != 4 {
		t.Errorf("path lengths %d, %d; want 3 (primary) then 4 (backup)", len(paths[0]), len(paths[1]))
	}
	m, err := n.Metrics(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if m.Hops != 3 || m.Delay != 4*time.Millisecond || m.Jitter != 4*time.Millisecond {
		t.Errorf("primary metrics = %+v", m)
	}
}

func TestFindPathsInfeasibleRate(t *testing.T) {
	n := dualPath(t)
	// 20 Mbit/s exceeds both routes.
	if _, err := n.FindPaths("client", "server", request(20*qos.MBitPerSecond), 3); !errors.Is(err, ErrNoPath) {
		t.Errorf("want ErrNoPath, got %v", err)
	}
	// Unknown endpoints.
	if _, err := n.FindPaths("ghost", "server", request(1), 1); !errors.Is(err, ErrNoPath) {
		t.Errorf("unknown endpoint: %v", err)
	}
}

func TestFindPathsJitterBound(t *testing.T) {
	n := dualPath(t)
	// Tight jitter budget excludes the backup (8 ms total) but not the
	// primary (4 ms).
	q := request(qos.MBitPerSecond)
	q.Jitter = 5 * time.Millisecond
	paths, err := n.FindPaths("client", "server", q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(paths[0]) != 3 {
		t.Errorf("jitter bound should leave only the primary; got %d paths", len(paths))
	}
}

func TestFindPathsLossBound(t *testing.T) {
	n := dualPath(t)
	q := request(qos.MBitPerSecond)
	q.LossRate = 0.0001 // below any route's composed loss
	if _, err := n.FindPaths("client", "server", q, 3); !errors.Is(err, ErrNoPath) {
		t.Errorf("loss bound not enforced: %v", err)
	}
}

func TestReserveReleaseLifecycle(t *testing.T) {
	n := dualPath(t)
	q := request(6 * qos.MBitPerSecond)
	paths, err := n.FindPaths("client", "server", q, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := n.Reserve(paths[0], q)
	if err != nil {
		t.Fatal(err)
	}
	if n.ActiveReservations() != 1 {
		t.Errorf("ActiveReservations = %d", n.ActiveReservations())
	}
	// The 10 Mbit/s primary now has 4 Mbit/s spare: a second 6 Mbit/s
	// request must use the backup... which only has 4. So: no path.
	if _, err := n.FindPaths("client", "server", q, 1); !errors.Is(err, ErrNoPath) {
		t.Errorf("capacity accounting broken: %v", err)
	}
	// A 3 Mbit/s request fits on either route.
	if _, err := n.FindPaths("client", "server", request(3*qos.MBitPerSecond), 2); err != nil {
		t.Errorf("3 Mbit/s should fit: %v", err)
	}
	if err := n.Release(r.ID); err != nil {
		t.Fatal(err)
	}
	if err := n.Release(r.ID); !errors.Is(err, ErrUnknownReservation) {
		t.Errorf("double release: %v", err)
	}
	if _, err := n.FindPaths("client", "server", q, 1); err != nil {
		t.Errorf("release did not restore capacity: %v", err)
	}
}

func TestReserveAtomicity(t *testing.T) {
	n := dualPath(t)
	q := request(8 * qos.MBitPerSecond)
	paths, _ := n.FindPaths("client", "server", q, 1)
	if _, err := n.Reserve(paths[0], q); err != nil {
		t.Fatal(err)
	}
	// Same path again: must fail and leave capacities unchanged.
	if _, err := n.Reserve(paths[0], q); !errors.Is(err, ErrNoPath) {
		t.Fatalf("overcommit accepted: %v", err)
	}
	avail, _ := n.Available("access:fwd")
	if avail != 92*qos.MBitPerSecond {
		t.Errorf("access spare = %v, want 92 Mbit/s", avail)
	}
}

func TestReserveUnknownLink(t *testing.T) {
	n := dualPath(t)
	if _, err := n.Reserve(Path{"ghost"}, request(1)); err == nil {
		t.Error("unknown link accepted")
	}
}

func TestDegradationAndOvercommitted(t *testing.T) {
	n := dualPath(t)
	q := request(8 * qos.MBitPerSecond)
	paths, _ := n.FindPaths("client", "server", q, 1)
	r, err := n.Reserve(paths[0], q)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Overcommitted()) != 0 {
		t.Fatal("healthy network reports overcommitment")
	}
	// Degrade the primary inter-switch link to 50%: 5 Mbit/s < 8 reserved.
	if err := n.SetLinkDegradation("primary:fwd", 0.5); err != nil {
		t.Fatal(err)
	}
	victims := n.Overcommitted()
	if len(victims) != 1 || victims[0].ID != r.ID {
		t.Fatalf("victims = %+v", victims)
	}
	// Releasing the victim clears the overcommitment.
	if err := n.Release(r.ID); err != nil {
		t.Fatal(err)
	}
	if len(n.Overcommitted()) != 0 {
		t.Error("overcommitment persists after release")
	}
	// The backup route is still feasible for a smaller stream.
	if _, err := n.FindPaths("client", "server", request(3*qos.MBitPerSecond), 1); err != nil {
		t.Errorf("backup route gone: %v", err)
	}
	if err := n.SetLinkDegradation("ghost", 0.5); err == nil {
		t.Error("degrading unknown link accepted")
	}
	if err := n.SetLinkDegradation("primary:fwd", 1.5); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

func TestBuildStar(t *testing.T) {
	n, err := BuildStar(StarSpec{
		Clients: []NodeID{"c1", "c2"},
		Servers: []NodeID{"s1", "s2", "s3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 clients + 3 servers + 1 switch.
	if got := len(n.Nodes()); got != 6 {
		t.Errorf("nodes = %d", got)
	}
	for _, c := range []NodeID{"c1", "c2"} {
		for _, s := range []NodeID{"s1", "s2", "s3"} {
			paths, err := n.FindPaths(s, c, request(2*qos.MBitPerSecond), 1)
			if err != nil || len(paths) != 1 || len(paths[0]) != 2 {
				t.Errorf("%s→%s: paths=%v err=%v", s, c, paths, err)
			}
		}
	}
	// Access links carry 10 Mbit/s by default: five 2 Mbit/s streams fill
	// the client access link.
	q := request(2 * qos.MBitPerSecond)
	for i := 0; i < 5; i++ {
		paths, err := n.FindPaths("s1", "c1", q, 1)
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		if _, err := n.Reserve(paths[0], q); err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
	}
	if _, err := n.FindPaths("s1", "c1", q, 1); !errors.Is(err, ErrNoPath) {
		t.Errorf("6th stream should be blocked: %v", err)
	}
	// The other client is unaffected.
	if _, err := n.FindPaths("s1", "c2", q, 1); err != nil {
		t.Errorf("c2 affected by c1 load: %v", err)
	}
}

func TestConcurrentReservations(t *testing.T) {
	n, err := BuildStar(StarSpec{Clients: []NodeID{"c1"}, Servers: []NodeID{"s1"},
		AccessCapacity: 1000 * qos.MBitPerSecond, BackboneCapacity: 1000 * qos.MBitPerSecond})
	if err != nil {
		t.Fatal(err)
	}
	q := request(qos.MBitPerSecond)
	paths, err := n.FindPaths("s1", "c1", q, 1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				r, err := n.Reserve(paths[0], q)
				if err != nil {
					continue
				}
				if err := n.Release(r.ID); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n.ActiveReservations() != 0 {
		t.Errorf("leaked %d reservations", n.ActiveReservations())
	}
	if avail, _ := n.Available("access-c1:rev"); avail != 1000*qos.MBitPerSecond {
		t.Errorf("capacity not restored: %v", avail)
	}
}

// Property: reserve/release leaves every link's availability unchanged.
func TestReserveReleaseInvariantProperty(t *testing.T) {
	f := func(rateRaw uint32) bool {
		n, err := BuildDualPath("c", "s", 10*qos.MBitPerSecond, 4*qos.MBitPerSecond)
		if err != nil {
			return false
		}
		rate := qos.BitRate(rateRaw % 12_000_000)
		q := request(rate)
		before, _ := n.Available("primary:fwd")
		paths, err := n.FindPaths("c", "s", q, 1)
		if err != nil {
			return true
		}
		r, err := n.Reserve(paths[0], q)
		if err != nil {
			return true
		}
		n.Release(r.ID)
		after, _ := n.Available("primary:fwd")
		return before == after
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: best path returned first — no returned path has fewer hops than
// a later one reversed.
func TestPathOrderingProperty(t *testing.T) {
	n := dualPath(t)
	f := func(rateRaw uint32) bool {
		q := request(qos.BitRate(rateRaw % 4_000_000))
		paths, err := n.FindPaths("client", "server", q, 4)
		if err != nil {
			return true
		}
		for i := 1; i < len(paths); i++ {
			if len(paths[i]) < len(paths[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFindPathsDelayBound(t *testing.T) {
	n := dualPath(t)
	q := request(qos.MBitPerSecond)
	// Primary path delay 4 ms; backup 8 ms. A 5 ms bound keeps only the
	// primary.
	q.Delay = 5 * time.Millisecond
	paths, err := n.FindPaths("client", "server", q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(paths[0]) != 3 {
		t.Errorf("delay bound should leave only the primary; got %d paths", len(paths))
	}
	// A 1 ms bound excludes everything.
	q.Delay = time.Millisecond
	if _, err := n.FindPaths("client", "server", q, 3); !errors.Is(err, ErrNoPath) {
		t.Errorf("delay bound not enforced: %v", err)
	}
	// Zero means unconstrained.
	q.Delay = 0
	if _, err := n.FindPaths("client", "server", q, 3); err != nil {
		t.Errorf("unconstrained delay rejected: %v", err)
	}
}
