package session

import (
	"testing"
	"time"

	"qosneg/internal/adaptation"
	"qosneg/internal/cmfs"
	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
	"qosneg/internal/sim"
	"qosneg/internal/testbed"
)

func tvProfile() profile.UserProfile {
	return profile.UserProfile{
		Name: "tv",
		Desired: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.CDQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(12)},
		},
		Worst: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.BlackWhite, FrameRate: 10, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.TelephoneQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(12)},
		},
		Importance: profile.DefaultImportance(),
	}
}

func reserved(t *testing.T, b *testbed.Bed, doc media.DocumentID) *core.Session {
	t.Helper()
	res, err := b.Manager.Negotiate(b.Client(1), doc, tvProfile())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Status.Reserved() {
		t.Fatalf("negotiation: %v (%s)", res.Status, res.Reason)
	}
	return res.Session
}

func TestPlayToCompletion(t *testing.T) {
	b := testbed.MustNew(testbed.Spec{})
	doc, err := b.AddNewsArticle("news-1", "T", 90*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s := reserved(t, b, doc.ID)
	eng := sim.NewEngine()
	p := NewPlayer(eng, b.Manager)

	var out *Outcome
	if err := p.Play(s, doc, func(o Outcome) { out = &o }); err != nil {
		t.Fatal(err)
	}
	eng.RunAll()
	if out == nil {
		t.Fatal("playout never finished")
	}
	if out.State != core.Completed {
		t.Errorf("state = %v", out.State)
	}
	if out.Position != 90*time.Second {
		t.Errorf("position = %v", out.Position)
	}
	if out.FinishedAt < 90*time.Second {
		t.Errorf("finished at %v, before the document ended", out.FinishedAt)
	}
	if out.Transitions != 0 {
		t.Errorf("transitions = %d", out.Transitions)
	}
	if b.Network.ActiveReservations() != 0 {
		t.Error("completion leaked network reservations")
	}
}

func TestPlayWithMidStreamAdaptation(t *testing.T) {
	b := testbed.MustNew(testbed.Spec{})
	doc, err := b.AddNewsArticle("news-1", "T", 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	s := reserved(t, b, doc.ID)
	eng := sim.NewEngine()
	p := NewPlayer(eng, b.Manager)

	var servers []*cmfs.Server
	for _, id := range b.ServerIDs() {
		servers = append(servers, b.Servers[id])
	}
	mon := adaptation.New(b.Manager, b.Network, servers...)
	mon.Attach(eng, 5*time.Second, nil)

	var out *Outcome
	if err := p.Play(s, doc, func(o Outcome) { out = &o }); err != nil {
		t.Fatal(err)
	}
	// Degrade the video server at t=30s; the monitor adapts and playout
	// continues to completion.
	eng.MustSchedule(30*time.Second, func() {
		b.Servers[s.Current.Choices[0].Variant.Server].SetDegradation(0.99)
	})
	eng.Run(10 * time.Minute)
	if out == nil {
		t.Fatal("playout never finished")
	}
	if out.State != core.Completed {
		t.Errorf("state = %v", out.State)
	}
	if out.Transitions != 1 {
		t.Errorf("transitions = %d", out.Transitions)
	}
	if out.Position != 2*time.Minute {
		t.Errorf("position = %v", out.Position)
	}
}

func TestPlayAbortsWhenAdaptationFails(t *testing.T) {
	b := testbed.MustNew(testbed.Spec{})
	doc, err := b.AddNewsArticle("news-1", "T", 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	s := reserved(t, b, doc.ID)
	eng := sim.NewEngine()
	p := NewPlayer(eng, b.Manager)

	var servers []*cmfs.Server
	for _, id := range b.ServerIDs() {
		servers = append(servers, b.Servers[id])
	}
	adaptation.New(b.Manager, b.Network, servers...).Attach(eng, 5*time.Second, nil)

	var out *Outcome
	if err := p.Play(s, doc, func(o Outcome) { out = &o }); err != nil {
		t.Fatal(err)
	}
	eng.MustSchedule(30*time.Second, func() {
		for _, srv := range b.Servers {
			srv.SetDegradation(0.999)
		}
	})
	eng.Run(10 * time.Minute)
	if out == nil {
		t.Fatal("playout never finished")
	}
	if out.State != core.Aborted {
		t.Errorf("state = %v", out.State)
	}
	// The abort lands on the monitor scan following the t=30s degradation;
	// the playout position is within a tick of it.
	if out.Position < 29*time.Second || out.Position >= 2*time.Minute {
		t.Errorf("aborted at position %v", out.Position)
	}
}

func TestPlayDocumentMismatch(t *testing.T) {
	b := testbed.MustNew(testbed.Spec{})
	doc, _ := b.AddNewsArticle("news-1", "T", time.Minute)
	other, _ := b.AddNewsArticle("news-2", "U", time.Minute)
	s := reserved(t, b, doc.ID)
	eng := sim.NewEngine()
	p := NewPlayer(eng, b.Manager)
	if err := p.Play(s, other, nil); err == nil {
		t.Error("document mismatch accepted")
	}
}

func TestPlayRequiresReservedSession(t *testing.T) {
	b := testbed.MustNew(testbed.Spec{})
	doc, _ := b.AddNewsArticle("news-1", "T", time.Minute)
	s := reserved(t, b, doc.ID)
	b.Manager.Reject(s.ID)
	eng := sim.NewEngine()
	p := NewPlayer(eng, b.Manager)
	if err := p.Play(s, doc, nil); err == nil {
		t.Error("rejected session played")
	}
}

func TestPlayShortDocumentSubTick(t *testing.T) {
	b := testbed.MustNew(testbed.Spec{})
	doc, err := b.AddNewsArticle("news-1", "T", 1500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	s := reserved(t, b, doc.ID)
	eng := sim.NewEngine()
	p := NewPlayer(eng, b.Manager)
	var out *Outcome
	if err := p.Play(s, doc, func(o Outcome) { out = &o }); err != nil {
		t.Fatal(err)
	}
	eng.RunAll()
	if out == nil || out.State != core.Completed {
		t.Fatalf("outcome = %+v", out)
	}
	if out.Position != 1500*time.Millisecond {
		t.Errorf("position = %v", out.Position)
	}
}
