package session

import (
	"testing"
	"time"

	"qosneg/internal/media"
	"qosneg/internal/qos"
)

func seqDoc() media.Document {
	mk := func(id media.MonomediaID, dur time.Duration) media.Monomedia {
		return media.Monomedia{
			ID: id, Kind: qos.Video, Duration: dur,
			Variants: []media.Variant{media.VideoVariant(
				media.VariantID(id)+"-v1", "server-1", media.MPEG1,
				qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: 480}, dur)},
		}
	}
	return media.Document{
		ID: "seq-1",
		Monomedia: []media.Monomedia{
			mk("intro", 10*time.Second),
			mk("main", 30*time.Second),
			{ID: "audio", Kind: qos.Audio, Duration: 40 * time.Second,
				Variants: []media.Variant{media.AudioVariant("a1", "server-1", media.PCM,
					qos.AudioQoS{Grade: qos.CDQuality}, 40*time.Second)}},
			{ID: "credits", Kind: qos.Text,
				Variants: []media.Variant{media.TextVariant("t1", "server-1", qos.English, 128)}},
		},
		Temporal: []media.TemporalConstraint{
			{A: "intro", B: "main", Relation: media.Sequential},
			{A: "intro", B: "audio", Relation: media.Parallel},
			{A: "main", B: "credits", Relation: media.Overlap, Offset: 25 * time.Second},
		},
	}
}

func TestBuildScheduleSequentialComposition(t *testing.T) {
	s := BuildSchedule(seqDoc())
	if len(s.Streams) != 4 {
		t.Fatalf("streams = %d", len(s.Streams))
	}
	windows := map[media.MonomediaID]StreamWindow{}
	for _, w := range s.Streams {
		windows[w.Monomedia] = w
	}
	check := func(id media.MonomediaID, start, end time.Duration) {
		t.Helper()
		w := windows[id]
		if w.Start != start || w.End != end {
			t.Errorf("%s window = [%v, %v), want [%v, %v)", id, w.Start, w.End, start, end)
		}
	}
	check("intro", 0, 10*time.Second)
	check("main", 10*time.Second, 40*time.Second)
	check("audio", 0, 40*time.Second)
	check("credits", 35*time.Second, 35*time.Second) // discrete: zero-length
	// Schedule duration covers the sequential chain.
	if s.Duration() != 40*time.Second {
		t.Errorf("Duration = %v", s.Duration())
	}
	// Sorted by start time.
	if s.Streams[0].Start > s.Streams[len(s.Streams)-1].Start {
		t.Error("streams not sorted")
	}
}

func TestActiveAtAndPeak(t *testing.T) {
	s := BuildSchedule(seqDoc())
	at := func(sec int) []media.MonomediaID { return s.ActiveAt(time.Duration(sec) * time.Second) }
	if got := at(5); len(got) != 2 { // intro + audio
		t.Errorf("active@5s = %v", got)
	}
	if got := at(20); len(got) != 2 { // main + audio
		t.Errorf("active@20s = %v", got)
	}
	if got := at(45); len(got) != 0 {
		t.Errorf("active@45s = %v", got)
	}
	if got := s.PeakConcurrency(); got != 2 {
		t.Errorf("peak concurrency = %d", got)
	}
}

func TestScheduleOfParallelDoc(t *testing.T) {
	doc := media.BuildNewsArticle(media.NewsArticleSpec{
		ID: "news-1", Title: "T", Duration: time.Minute,
		Servers:        []media.ServerID{"s1"},
		VideoQualities: []qos.VideoQoS{{Color: qos.Color, FrameRate: 25, Resolution: 480}},
		AudioQualities: []qos.AudioQoS{{Grade: qos.CDQuality}},
	})
	s := BuildSchedule(doc)
	if s.Duration() != time.Minute {
		t.Errorf("Duration = %v", s.Duration())
	}
	if got := s.PeakConcurrency(); got != 2 {
		t.Errorf("peak = %d", got)
	}
}
