package session

import (
	"sort"
	"time"

	"qosneg/internal/media"
)

// Schedule is the playout plan of a document: one window per monomedia
// component, derived from the document's temporal synchronization
// constraints (Figure 1) — the role the prototype's synchronization
// component [Lam 94] plays during the active phase.
type Schedule struct {
	Streams []StreamWindow
}

// StreamWindow is the presentation interval of one monomedia component,
// relative to the session start. Discrete media occupy a zero-length window
// at their start instant (they are delivered ahead of time and displayed at
// Start).
type StreamWindow struct {
	Monomedia media.MonomediaID
	Start     time.Duration
	End       time.Duration
}

// BuildSchedule resolves a document's temporal constraints into stream
// windows, ordered by start time (ties by id).
func BuildSchedule(doc media.Document) Schedule {
	starts := media.StartTimes(doc)
	s := Schedule{Streams: make([]StreamWindow, 0, len(doc.Monomedia))}
	for _, m := range doc.Monomedia {
		start := starts[m.ID]
		s.Streams = append(s.Streams, StreamWindow{
			Monomedia: m.ID,
			Start:     start,
			End:       start + m.Duration,
		})
	}
	sort.Slice(s.Streams, func(i, j int) bool {
		if s.Streams[i].Start != s.Streams[j].Start {
			return s.Streams[i].Start < s.Streams[j].Start
		}
		return s.Streams[i].Monomedia < s.Streams[j].Monomedia
	})
	return s
}

// Duration is the playout length of the whole schedule: the latest window
// end. Unlike the document's longest component duration, it accounts for
// sequential and overlapped composition.
func (s Schedule) Duration() time.Duration {
	var max time.Duration
	for _, w := range s.Streams {
		if w.End > max {
			max = w.End
		}
	}
	return max
}

// ActiveAt returns the continuous streams playing at position pos, in
// schedule order.
func (s Schedule) ActiveAt(pos time.Duration) []media.MonomediaID {
	var out []media.MonomediaID
	for _, w := range s.Streams {
		if w.Start <= pos && pos < w.End {
			out = append(out, w.Monomedia)
		}
	}
	return out
}

// PeakConcurrency returns the maximum number of simultaneously playing
// continuous streams — the worst-case simultaneous resource demand of the
// document.
func (s Schedule) PeakConcurrency() int {
	type event struct {
		at    time.Duration
		delta int
	}
	var events []event
	for _, w := range s.Streams {
		if w.End == w.Start {
			continue
		}
		events = append(events, event{w.Start, 1}, event{w.End, -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].delta < events[j].delta
	})
	cur, peak := 0, 0
	for _, ev := range events {
		cur += ev.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}
