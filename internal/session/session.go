// Package session drives the playout of negotiated documents on the
// discrete-event simulation engine: it is the reproduction's stand-in for
// the prototype's media players and synchronization component during the
// active phase. A Player advances a confirmed session's playout position
// tick by tick, completes it when the document ends, and notices when the
// adaptation procedure aborted the session underneath it.
package session

import (
	"fmt"
	"time"

	"qosneg/internal/core"
	"qosneg/internal/media"
	"qosneg/internal/sim"
)

// Player drives sessions on a simulation engine.
type Player struct {
	eng *sim.Engine
	man core.SessionManager
	// Tick is the playout bookkeeping granularity (default 1s).
	Tick time.Duration
}

// NewPlayer builds a player over the engine and QoS manager.
func NewPlayer(eng *sim.Engine, man core.SessionManager) *Player {
	return &Player{eng: eng, man: man, Tick: time.Second}
}

// Outcome reports how a playout ended.
type Outcome struct {
	Session  core.SessionID
	State    core.SessionState
	Position time.Duration
	// Transitions is how many adaptation switches happened during play.
	Transitions int
	// FinishedAt is the virtual time the playout ended.
	FinishedAt time.Duration
}

// Play confirms the reserved session and schedules its playout; done (may
// be nil) fires when the playout completes or aborts. The document supplies
// the playout duration.
func (p *Player) Play(s *core.Session, doc media.Document, done func(Outcome)) error {
	if s.Document != doc.ID {
		return fmt.Errorf("session: document mismatch (%s vs %s)", s.Document, doc.ID)
	}
	if err := p.man.Confirm(s.ID); err != nil {
		return err
	}
	// The playout length follows the resolved schedule, so sequential and
	// overlapped compositions run to the last window's end.
	duration := BuildSchedule(doc).Duration()
	finish := func(state core.SessionState) {
		if done != nil {
			done(Outcome{
				Session:     s.ID,
				State:       state,
				Position:    s.Position(),
				Transitions: s.Transitions(),
				FinishedAt:  p.eng.Now(),
			})
		}
	}
	var tick func()
	tick = func() {
		switch s.State() {
		case core.Aborted:
			finish(core.Aborted)
			return
		case core.Completed:
			finish(core.Completed)
			return
		case core.Playing:
			// fall through to advance
		default:
			finish(s.State())
			return
		}
		remaining := duration - s.Position()
		if remaining <= 0 {
			if err := p.man.Complete(s.ID); err == nil {
				finish(core.Completed)
			} else {
				finish(s.State())
			}
			return
		}
		step := p.Tick
		if step > remaining {
			step = remaining
		}
		if err := p.man.Advance(s.ID, step); err != nil {
			// The session changed state underneath us (adaptation
			// failure); re-dispatch on the next tick path.
			finish(s.State())
			return
		}
		p.eng.MustSchedule(p.Tick, tick)
	}
	p.eng.MustSchedule(p.Tick, tick)
	return nil
}
