package shard

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"qosneg/internal/admission"
	"qosneg/internal/client"
	"qosneg/internal/cmfs"
	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/network"
	"qosneg/internal/profile"
	"qosneg/internal/registry"
	"qosneg/internal/telemetry"
)

// Config parameterizes New.
type Config struct {
	// Shards is the number of manager shards (minimum 1).
	Shards int
	// Registry is the primary document/variant catalog. The fleet installs
	// its replication hook on it and gives every shard its own replica, so
	// catalog mutations made through this registry reach each shard before
	// it answers its next routed request.
	Registry *registry.Registry
	// Transport is the (shared) connection-establishment substrate; every
	// shard commits against the same network, so capacity admission stays
	// global.
	Transport core.Transport
	// Pricing is the initial tariff.
	Pricing cost.Pricing
	// Options is the per-shard manager configuration. The fleet lifts
	// Options.Admission to the router (one gate per request, before
	// routing) and installs its own session-id allocator, quarantine
	// publisher and shard metric label on each shard's copy.
	Options core.Options
}

// shardHandle is one manager shard plus its replication cursor.
type shardHandle struct {
	idx     int
	mgr     *core.Manager
	replica *registry.Registry

	// applyMu serializes bus replay into this shard; applied[t] is the
	// highest sequence of topic t this shard has applied (atomic, so the
	// caught-up fast path is lock-free).
	applyMu sync.Mutex
	applied [numTopics]atomic.Uint64

	// idMu guards the session-id scan cursor.
	idMu   sync.Mutex
	lastID uint64

	// policy is this shard's forked policy instance when the configured
	// selection policy shares learned state; bus replay merges sibling
	// summaries into it.
	policy core.PolicySharer
}

// Fleet fronts N independent core.Manager shards behind consistent-hash
// session routing. New negotiations are placed round-robin; every
// session-addressed operation routes by jump-hashing the session id, which
// lands on the shard that allocated it because each shard only allocates
// ids from its own hash partition. Fleet implements core.SessionManager, so
// everything built against the manager surface works against a fleet
// unchanged.
type Fleet struct {
	shards  []*shardHandle
	primary *registry.Registry
	bus     *bus
	// adm, when non-nil, gates negotiation-class work once at the router;
	// shards run with admission disabled so a request is never gated twice.
	adm *admission.Controller
	rr  atomic.Uint64
	met *fleetMetrics

	// statsMu guards the router-level shed counters, which have no home
	// shard (a shed request is refused before routing).
	statsMu sync.Mutex
	shed    core.Stats
}

// Fleet must keep satisfying the manager surface.
var _ core.SessionManager = (*Fleet)(nil)

// New builds a fleet of cfg.Shards managers over the shared substrate. Each
// shard gets its own registry replica (seeded from the primary), its own
// offer cache and breaker state, and a disjoint session-id partition; the
// media servers registered later via AddServer are shared, so disk-round and
// network admission stay global.
func New(cfg Config) *Fleet {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	f := &Fleet{
		primary: cfg.Registry,
		bus:     &bus{},
		adm:     cfg.Options.Admission,
		met:     newFleetMetrics(cfg.Options.Metrics, n),
	}
	for i := 0; i < n; i++ {
		sh := &shardHandle{idx: i, replica: registry.New()}
		idx := i
		opts := cfg.Options
		opts.Admission = nil
		opts.ShardLabel = strconv.Itoa(idx)
		opts.NextSessionID = f.allocator(sh, n)
		opts.OnQuarantine = func(id media.ServerID, until time.Time) {
			f.publishHealth(idx, id, until)
		}
		// A forkable selection policy splits into per-shard instances: each
		// shard learns lock-free from its own commits, and instances that
		// share state exchange additive summaries over the policy topic.
		if forker, ok := opts.Selection.(core.PolicyForker); ok {
			forked := forker.ForkPolicy(idx)
			sameObject := any(opts.Adaptation) == any(opts.Selection)
			opts.Selection = forked
			if sameObject {
				if ad, ok := forked.(core.AdaptationPolicy); ok {
					opts.Adaptation = ad
				}
			}
			if sharer, ok := forked.(core.PolicySharer); ok {
				sh.policy = sharer
				if n > 1 {
					sharer.SetShareHook(func(sums []core.PolicySummary) {
						f.publishPolicy(idx, sums)
					})
				}
			}
		}
		sh.mgr = core.NewManager(sh.replica, cfg.Transport, cfg.Pricing, opts)
		f.shards = append(f.shards, sh)
	}
	for _, sh := range f.shards {
		f.resync(sh)
	}
	cfg.Registry.SetReplicaHook(func(id media.DocumentID, full bool) {
		f.bus.publish(topicRegistry, event{doc: id, full: full})
		f.met.published(topicRegistry)
		f.met.lagGauge(f.busLag())
	})
	return f
}

// Shards returns the shard count.
func (f *Fleet) Shards() int { return len(f.shards) }

// allocator returns shard sh's session-id allocator: it scans upward from
// the shard's last id to the next id that jump-hashes home. The partitions
// {id : shardOf(id)=i} are disjoint across shards, so ids are fleet-unique
// without coordination; the expected scan length is the shard count. With
// one shard every id matches, so a single-shard fleet allocates 1, 2, 3, …
// exactly like an unsharded manager.
func (f *Fleet) allocator(sh *shardHandle, n int) func() core.SessionID {
	return func() core.SessionID {
		sh.idMu.Lock()
		defer sh.idMu.Unlock()
		for {
			sh.lastID++
			if shardOf(core.SessionID(sh.lastID), n) == sh.idx {
				return core.SessionID(sh.lastID)
			}
		}
	}
}

// publishHealth broadcasts one breaker trip. Single-shard fleets skip the
// bus: there is no sibling to inform.
func (f *Fleet) publishHealth(origin int, id media.ServerID, until time.Time) {
	if len(f.shards) == 1 {
		return
	}
	f.bus.publish(topicHealth, event{origin: origin, server: id, until: until})
	f.met.published(topicHealth)
	f.met.lagGauge(f.busLag())
}

// publishPolicy broadcasts one shard's learned-policy deltas. Like health,
// single-shard fleets skip the bus: there is no sibling to teach.
func (f *Fleet) publishPolicy(origin int, sums []core.PolicySummary) {
	if len(f.shards) == 1 || len(sums) == 0 {
		return
	}
	f.bus.publish(topicPolicy, event{origin: origin, sums: sums})
	f.met.published(topicPolicy)
	f.met.lagGauge(f.busLag())
}

// catchUp replays any bus entries shard sh has not applied yet, in
// per-topic publication order. The fast path — shard already at every topic
// head — is numTopics atomic-load pairs and no lock. Replay applies topics
// in a fixed order (registry, pricing, health, policy) under the shard's apply
// mutex, so concurrent routed calls to the same shard never interleave
// partial replays.
func (f *Fleet) catchUp(sh *shardHandle) {
	behind := false
	for t := topic(0); t < numTopics; t++ {
		if sh.applied[t].Load() != f.bus.head[t].Load() {
			behind = true
			break
		}
	}
	if !behind {
		return
	}
	sh.applyMu.Lock()
	for t := topic(0); t < numTopics; t++ {
		from := sh.applied[t].Load()
		evs, upTo := f.bus.since(t, from)
		if len(evs) == 0 {
			continue
		}
		for i := range evs {
			f.apply(sh, t, &evs[i])
		}
		sh.applied[t].Store(upTo)
		f.trimTopic(t)
	}
	sh.applyMu.Unlock()
	f.met.lagGauge(f.busLag())
}

// apply installs one bus event on a shard.
func (f *Fleet) apply(sh *shardHandle, t topic, ev *event) {
	switch t {
	case topicRegistry:
		if ev.full {
			f.resync(sh)
			return
		}
		// Re-reading the primary (rather than shipping the document in the
		// event) is deliberate: a later mutation of the same document makes
		// the earlier replay idempotently install the newest snapshot, and
		// the replica's generation stamp always equals the primary's.
		d, gen, err := f.primary.Snapshot(ev.doc)
		if err != nil {
			sh.replica.RemoveReplica(ev.doc)
			return
		}
		sh.replica.ApplyReplica(d, gen)
	case topicPricing:
		sh.mgr.SetPricing(ev.pricing)
	case topicHealth:
		if ev.origin != sh.idx {
			sh.mgr.ApplyQuarantine(ev.server, ev.until)
		}
	case topicPolicy:
		if ev.origin != sh.idx && sh.policy != nil {
			sh.policy.MergePolicy(ev.sums)
		}
	}
}

// resync replaces a shard's replica contents with the primary's current
// catalog, preserving the primary's generation stamps.
func (f *Fleet) resync(sh *shardHandle) {
	want := make(map[media.DocumentID]bool)
	for _, id := range f.primary.List() {
		want[id] = true
		if d, gen, err := f.primary.Snapshot(id); err == nil {
			sh.replica.ApplyReplica(d, gen)
		}
	}
	for _, id := range sh.replica.List() {
		if !want[id] {
			sh.replica.RemoveReplica(id)
		}
	}
}

// trimTopic drops the bus prefix every shard has applied.
func (f *Fleet) trimTopic(t topic) {
	min := ^uint64(0)
	for _, sh := range f.shards {
		if a := sh.applied[t].Load(); a < min {
			min = a
		}
	}
	f.bus.trim(t, min)
}

// busLag is the total number of unapplied (topic, shard) entries: the sum
// over topics of head minus the slowest shard's applied sequence.
func (f *Fleet) busLag() uint64 {
	var lag uint64
	for t := topic(0); t < numTopics; t++ {
		head := f.bus.head[t].Load()
		min := head
		for _, sh := range f.shards {
			if a := sh.applied[t].Load(); a < min {
				min = a
			}
		}
		lag += head - min
	}
	return lag
}

// Sync forces every shard to apply all pending bus entries; tests and
// wind-down paths use it to make replication externally observable without
// routing a request.
func (f *Fleet) Sync() {
	for _, sh := range f.shards {
		f.catchUp(sh)
	}
}

// route resolves the home shard of a session id, catches it up on the bus,
// and returns its manager. Unknown ids route like known ones: the home
// shard is the only shard that could ever hold the session, so its
// ErrUnknownSession answer is authoritative.
func (f *Fleet) route(id core.SessionID) *core.Manager {
	sh := f.shards[shardOf(id, len(f.shards))]
	f.met.routed(sh.idx)
	f.catchUp(sh)
	return sh.mgr
}

// place picks the shard for a new negotiation round-robin — no session id
// exists yet to hash, and round-robin keeps the fleet evenly loaded.
func (f *Fleet) place() *shardHandle {
	sh := f.shards[int(f.rr.Add(1)-1)%len(f.shards)]
	f.met.routed(sh.idx)
	return sh
}

// shedResult books one router-level admission refusal.
func (f *Fleet) shedResult(retry time.Duration) core.Result {
	f.statsMu.Lock()
	f.shed.Requests++
	f.shed.AdmissionSheds++
	f.shed.FailedTryLater++
	f.statsMu.Unlock()
	f.met.outcome(core.FailedTryLater)
	return core.Result{
		Status:     core.FailedTryLater,
		Reason:     "admission control: manager overloaded",
		RetryAfter: retry,
		Shed:       true,
	}
}

// Negotiate runs the negotiation procedure with no cancellation.
//
// Deprecated: use NegotiateContext, as on *core.Manager.
func (f *Fleet) Negotiate(mach client.Machine, doc media.DocumentID, u profile.UserProfile) (core.Result, error) {
	return f.NegotiateContext(context.Background(), mach, doc, u)
}

// NegotiateContext gates the request through the router's admission
// controller, places it on the next shard round-robin, catches that shard
// up on the update bus and runs the procedure there.
func (f *Fleet) NegotiateContext(ctx context.Context, mach client.Machine, doc media.DocumentID, u profile.UserProfile) (core.Result, error) {
	release, retry, admitted := f.adm.Admit()
	if !admitted {
		return f.shedResult(retry), nil
	}
	if release != nil {
		defer release()
	}
	sh := f.place()
	f.catchUp(sh)
	return sh.mgr.NegotiateContext(ctx, mach, doc, u)
}

// Renegotiate re-runs the negotiation for a reserved session with no
// cancellation.
//
// Deprecated: use RenegotiateContext, as on *core.Manager.
func (f *Fleet) Renegotiate(id core.SessionID, u profile.UserProfile) (core.Result, error) {
	return f.RenegotiateContext(context.Background(), id, u)
}

// RenegotiateContext gates through the router's admission controller and
// routes to the session's home shard.
func (f *Fleet) RenegotiateContext(ctx context.Context, id core.SessionID, u profile.UserProfile) (core.Result, error) {
	release, retry, admitted := f.adm.Admit()
	if !admitted {
		return f.shedResult(retry), nil
	}
	if release != nil {
		defer release()
	}
	return f.route(id).RenegotiateContext(ctx, id, u)
}

// Adapt runs the adaptation procedure on the session's home shard.
func (f *Fleet) Adapt(id core.SessionID) (core.Transition, error) {
	return f.route(id).Adapt(id)
}

// AdaptContext runs the adaptation procedure on the session's home shard.
func (f *Fleet) AdaptContext(ctx context.Context, id core.SessionID) (core.Transition, error) {
	return f.route(id).AdaptContext(ctx, id)
}

// Confirm routes step 6's acceptance to the session's home shard.
func (f *Fleet) Confirm(id core.SessionID) error { return f.route(id).Confirm(id) }

// Reject routes step 6's rejection to the session's home shard.
func (f *Fleet) Reject(id core.SessionID) error { return f.route(id).Reject(id) }

// Expire routes step 6's time-out to the session's home shard.
func (f *Fleet) Expire(id core.SessionID) error { return f.route(id).Expire(id) }

// Advance routes a playout-position update to the session's home shard.
func (f *Fleet) Advance(id core.SessionID, dt time.Duration) error {
	return f.route(id).Advance(id, dt)
}

// Complete routes a playout completion to the session's home shard.
func (f *Fleet) Complete(id core.SessionID) error { return f.route(id).Complete(id) }

// Abort routes a termination to the session's home shard.
func (f *Fleet) Abort(id core.SessionID) error { return f.route(id).Abort(id) }

// Session returns the session from its home shard.
func (f *Fleet) Session(id core.SessionID) (*core.Session, error) {
	return f.route(id).Session(id)
}

// Sessions concatenates every shard's sessions in the given state.
func (f *Fleet) Sessions(state core.SessionState) []*core.Session {
	var out []*core.Session
	for _, sh := range f.shards {
		out = append(out, sh.mgr.Sessions(state)...)
	}
	return out
}

// SessionByServerReservation scans the shards for the session holding the
// reservation; at most one shard holds it.
func (f *Fleet) SessionByServerReservation(server media.ServerID, res cmfs.ReservationID) (*core.Session, bool) {
	for _, sh := range f.shards {
		if s, ok := sh.mgr.SessionByServerReservation(server, res); ok {
			return s, true
		}
	}
	return nil, false
}

// SessionByNetworkReservation scans the shards for the session holding the
// reservation.
func (f *Fleet) SessionByNetworkReservation(res network.ReservationID) (*core.Session, bool) {
	for _, sh := range f.shards {
		if s, ok := sh.mgr.SessionByNetworkReservation(res); ok {
			return s, true
		}
	}
	return nil, false
}

// Invoice itemizes a session's committed offer on its home shard.
func (f *Fleet) Invoice(id core.SessionID) (cost.Invoice, error) {
	return f.route(id).Invoice(id)
}

// SetPricing publishes a tariff swap on the update bus; every shard applies
// it before answering its next routed request, bumping its pricing
// generation so memoized candidate sets priced under the old tables are
// recomputed — the same lazy-invalidation contract as the unsharded
// manager's SetPricing.
func (f *Fleet) SetPricing(p cost.Pricing) {
	f.bus.publish(topicPricing, event{pricing: p})
	f.met.published(topicPricing)
	f.met.lagGauge(f.busLag())
}

// AddServer registers a media server with every shard. The server object is
// shared: admission (disk rounds, utilization) is enforced by the server
// itself, so capacity stays a global property however many shards front it.
func (f *Fleet) AddServer(s core.MediaServer, node network.NodeID) {
	for _, sh := range f.shards {
		sh.mgr.AddServer(s, node)
	}
}

// Quarantined reports the longest remaining quarantine any shard holds for
// the server, after syncing replication so freshly published evidence
// counts.
func (f *Fleet) Quarantined(id media.ServerID) (time.Duration, bool) {
	f.Sync()
	var longest time.Duration
	found := false
	for _, sh := range f.shards {
		if rem, ok := sh.mgr.Quarantined(id); ok && rem > longest {
			longest, found = rem, true
		}
	}
	return longest, found
}

// Stats sums every shard's outcome counters plus the router-level shed
// counters (sheds never reach a shard, so they are counted here).
func (f *Fleet) Stats() core.Stats {
	f.statsMu.Lock()
	total := f.shed
	f.statsMu.Unlock()
	for _, sh := range f.shards {
		total = addStats(total, sh.mgr.Stats())
	}
	return total
}

// addStats sums two outcome-counter snapshots field by field.
func addStats(a, b core.Stats) core.Stats {
	a.Requests += b.Requests
	a.Succeeded += b.Succeeded
	a.FailedWithOffer += b.FailedWithOffer
	a.FailedTryLater += b.FailedTryLater
	a.FailedWithoutOffer += b.FailedWithoutOffer
	a.FailedWithLocalOffer += b.FailedWithLocalOffer
	a.Adaptations += b.Adaptations
	a.AdaptationFailures += b.AdaptationFailures
	a.CommitServerDown += b.CommitServerDown
	a.CommitCapacity += b.CommitCapacity
	a.CommitConstraint += b.CommitConstraint
	a.Quarantines += b.Quarantines
	a.StaleInstalls += b.StaleInstalls
	a.AdmissionSheds += b.AdmissionSheds
	a.OfferCacheHits += b.OfferCacheHits
	a.OfferCacheMisses += b.OfferCacheMisses
	a.OfferCacheInvalidations += b.OfferCacheInvalidations
	a.OfferCacheEntries += b.OfferCacheEntries
	a.Revenue += b.Revenue
	return a
}

// ServerLoads merges the shards' views per server: load figures come from
// the shared server objects (identical on every shard), breaker state is
// the fleet-wide union — quarantined anywhere counts, the longest remaining
// cooldown wins, failure counters sum across shards.
func (f *Fleet) ServerLoads() []core.ServerLoad {
	merged := make(map[media.ServerID]*core.ServerLoad)
	var order []media.ServerID
	for _, sh := range f.shards {
		for _, row := range sh.mgr.ServerLoads() {
			m, ok := merged[row.ID]
			if !ok {
				r := row
				merged[row.ID] = &r
				order = append(order, row.ID)
				continue
			}
			m.Quarantined = m.Quarantined || row.Quarantined
			if row.QuarantineMs > m.QuarantineMs {
				m.QuarantineMs = row.QuarantineMs
			}
			if row.ConsecutiveFailures > m.ConsecutiveFailures {
				m.ConsecutiveFailures = row.ConsecutiveFailures
			}
			m.DownFailures += row.DownFailures
			m.ReserveFailures += row.ReserveFailures
			m.ConnectFailures += row.ConnectFailures
			m.Quarantines += row.Quarantines
		}
	}
	out := make([]core.ServerLoad, 0, len(order))
	for _, id := range order {
		out = append(out, *merged[id])
	}
	return out
}

// Breaker is one shard's circuit-breaker view of one server, reported by
// ShardStats only for servers with live breaker state.
type Breaker struct {
	Server              media.ServerID `json:"server"`
	Quarantined         bool           `json:"quarantined,omitempty"`
	QuarantineMs        int64          `json:"quarantineMs,omitempty"`
	ConsecutiveFailures int            `json:"consecutiveFailures,omitempty"`
	Quarantines         int            `json:"quarantines,omitempty"`
}

// Stat is one shard's row in the per-shard ops view (`qosctl shards`).
type Stat struct {
	Shard int `json:"shard"`
	// Sessions counts the shard's live (reserved or playing) sessions.
	Sessions int `json:"sessions"`
	// Stats is the shard's own outcome-counter snapshot.
	Stats core.Stats `json:"stats"`
	// BusLag is how many published bus entries this shard has not applied
	// yet, summed over topics.
	BusLag uint64 `json:"busLag"`
	// Breakers lists the servers this shard's circuit breaker holds state
	// for.
	Breakers []Breaker `json:"breakers,omitempty"`
}

// ShardStats snapshots each shard's session count, outcome counters,
// breaker states and bus lag. The protocol server detects this method on
// its manager via interface assertion and attaches the rows to MsgStats
// answers, which is how `qosctl shards` sees them.
func (f *Fleet) ShardStats() []Stat {
	out := make([]Stat, len(f.shards))
	for i, sh := range f.shards {
		st := Stat{
			Shard:    i,
			Sessions: len(sh.mgr.Sessions(core.Reserved)) + len(sh.mgr.Sessions(core.Playing)),
			Stats:    sh.mgr.Stats(),
		}
		for t := topic(0); t < numTopics; t++ {
			st.BusLag += f.bus.head[t].Load() - sh.applied[t].Load()
		}
		for _, row := range sh.mgr.ServerLoads() {
			if row.Quarantined || row.ConsecutiveFailures > 0 || row.Quarantines > 0 {
				st.Breakers = append(st.Breakers, Breaker{
					Server:              row.ID,
					Quarantined:         row.Quarantined,
					QuarantineMs:        row.QuarantineMs,
					ConsecutiveFailures: row.ConsecutiveFailures,
					Quarantines:         row.Quarantines,
				})
			}
		}
		out[i] = st
	}
	return out
}

// fleetMetrics holds the router's own telemetry series; nil (no registry)
// disables recording, every method nil-checks.
type fleetMetrics struct {
	routedTo    []*telemetry.Counter
	publishedOn [numTopics]*telemetry.Counter
	lag         *telemetry.Gauge
	outcomes    *telemetry.CounterFamily
}

// Router metric names; DESIGN.md §14 documents them.
const (
	MetricShardRouted       = "qosneg_shard_routed_total"
	MetricShardBusPublished = "qosneg_shard_bus_published_total"
	MetricShardBusLag       = "qosneg_shard_bus_lag"
)

func newFleetMetrics(reg *telemetry.Registry, shards int) *fleetMetrics {
	if reg == nil {
		return nil
	}
	m := &fleetMetrics{
		lag: reg.Gauge(MetricShardBusLag,
			"Published update-bus entries not yet applied by every shard, summed over topics."),
		outcomes: reg.CounterFamily(core.MetricNegotiations,
			"Negotiation outcomes by NegotiationStatus.", "status"),
	}
	routed := reg.CounterFamily(MetricShardRouted,
		"Requests routed to each manager shard (placements and session-addressed operations).", "shard")
	for i := 0; i < shards; i++ {
		m.routedTo = append(m.routedTo, routed.With(strconv.Itoa(i)))
	}
	published := reg.CounterFamily(MetricShardBusPublished,
		"Update-bus events published, by topic.", "topic")
	for t := topic(0); t < numTopics; t++ {
		m.publishedOn[t] = published.With(t.String())
	}
	return m
}

func (m *fleetMetrics) routed(i int) {
	if m != nil && i < len(m.routedTo) {
		m.routedTo[i].Inc()
	}
}

func (m *fleetMetrics) published(t topic) {
	if m != nil {
		m.publishedOn[t].Inc()
	}
}

func (m *fleetMetrics) lagGauge(v uint64) {
	if m != nil {
		m.lag.Set(int64(v))
	}
}

func (m *fleetMetrics) outcome(s core.NegotiationStatus) {
	if m != nil {
		m.outcomes.With(s.String()).Inc()
	}
}
