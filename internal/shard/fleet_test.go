package shard_test

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/faults"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
	"qosneg/internal/sim"
	"qosneg/internal/testbed"
)

func stressProfile() profile.UserProfile {
	return profile.UserProfile{
		Name: "tv",
		Desired: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.CDQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(12)},
		},
		Worst: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.BlackWhite, FrameRate: 10, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.TelephoneQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(12)},
		},
		Importance: profile.DefaultImportance(),
	}
}

// signature flattens one operation's outcome into a comparable string. Byte
// identity of these signatures across two runs is the equivalence the
// shards=1 test demands: same statuses, same session ids, same offers, same
// costs, same errors, in the same order.
func signature(res core.Result, err error) string {
	if err != nil {
		return "err:" + err.Error()
	}
	var id core.SessionID
	var c cost.Money
	if res.Session != nil {
		id = res.Session.ID
		c = res.Session.Cost()
	}
	offer, _ := json.Marshal(res.Offer)
	return fmt.Sprintf("%v|%s|%d|%d|%s", res.Status, res.Reason, id, c, offer)
}

// driveInterleaving runs a deterministic randomized operation sequence
// against a bed and returns the per-operation signatures.
func driveInterleaving(t *testing.T, bed *testbed.Bed, seed int64, ops int) []string {
	t.Helper()
	if _, err := bed.AddNewsArticle("news-1", "Election night", 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRand(seed)
	var live []core.SessionID
	var out []string
	record := func(format string, args ...any) { out = append(out, fmt.Sprintf(format, args...)) }
	pick := func() (core.SessionID, bool) {
		if len(live) == 0 {
			return 0, false
		}
		return live[rng.Intn(len(live))], true
	}
	for i := 0; i < ops; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			res, err := bed.Manager.Negotiate(bed.Client(1+rng.Intn(2)), "news-1", stressProfile())
			record("negotiate %s", signature(res, err))
			if err == nil && res.Session != nil {
				live = append(live, res.Session.ID)
			}
		case 4:
			if id, ok := pick(); ok {
				record("confirm %d %v", id, bed.Manager.Confirm(id))
			}
		case 5:
			if id, ok := pick(); ok {
				record("reject %d %v", id, bed.Manager.Reject(id))
			}
		case 6:
			if id, ok := pick(); ok {
				record("expire %d %v", id, bed.Manager.Expire(id))
			}
		case 7:
			if id, ok := pick(); ok {
				tr, err := bed.Manager.Adapt(id)
				record("adapt %d %d %v", id, tr.Session, err)
			}
		case 8:
			if id, ok := pick(); ok {
				res, err := bed.Manager.Renegotiate(id, stressProfile())
				record("renegotiate %d %s", id, signature(res, err))
			}
		case 9:
			if id, ok := pick(); ok {
				record("abort %d %v", id, bed.Manager.Abort(id))
			}
		}
	}
	for _, id := range live {
		bed.Manager.Abort(id)
	}
	st := bed.Manager.Stats()
	record("stats %+v", st)
	return out
}

// A one-shard fleet must be observably identical to an unsharded manager:
// the same randomized interleaving of operations yields byte-identical
// outcomes — statuses, session ids (the shard allocator degenerates to
// 1,2,3,…), offers, costs and final counters.
func TestSingleShardEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 42, 1996} {
		plain := testbed.MustNew(testbed.Spec{})
		fleet := testbed.MustNew(testbed.Spec{Shards: 1})
		if fleet.Fleet == nil {
			t.Fatal("Spec{Shards:1} built no fleet")
		}
		want := driveInterleaving(t, plain, seed, 120)
		got := driveInterleaving(t, fleet, seed, 120)
		if len(want) != len(got) {
			t.Fatalf("seed %d: %d ops unsharded vs %d sharded", seed, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("seed %d: op %d diverged\nunsharded: %s\n  sharded: %s", seed, i, want[i], got[i])
			}
		}
	}
}

// Catalog mutations on the primary registry must reach every shard before
// it answers: a document added (or removed) after the fleet is built is
// visible (or gone) on whichever shard the next negotiation lands on, and a
// pricing swap reprices offers fleet-wide.
func TestFleetReplication(t *testing.T) {
	bed := testbed.MustNew(testbed.Spec{Shards: 4})
	if _, err := bed.AddNewsArticle("news-1", "Election night", 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	// Every placement (round-robin over 4 shards) must see the document.
	for i := 0; i < 8; i++ {
		res, err := bed.Manager.Negotiate(bed.Client(1), "news-1", stressProfile())
		if err != nil {
			t.Fatal(err)
		}
		if res.Session == nil {
			t.Fatalf("negotiation %d: no session (status %v, %s)", i, res.Status, res.Reason)
		}
		if err := bed.Manager.Reject(res.Session.ID); err != nil {
			t.Fatal(err)
		}
	}
	if err := bed.Registry.Remove("news-1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		// An unsharded manager answers a vanished document with a not-found
		// error; a stale replica would instead still negotiate successfully.
		res, err := bed.Manager.Negotiate(bed.Client(1), "news-1", stressProfile())
		if err == nil {
			t.Fatalf("negotiation %d after Remove: shard answered from a stale replica (status %v)", i, res.Status)
		}
	}
	if lag := fleetBusLag(bed); lag != 0 {
		t.Errorf("bus lag %d after routed calls, want 0", lag)
	}
}

func fleetBusLag(bed *testbed.Bed) uint64 {
	var lag uint64
	for _, row := range bed.Fleet.ShardStats() {
		lag += row.BusLag
	}
	return lag
}

// One shard's breaker evidence must exclude the server fleet-wide: a trip
// gathered on the shard that suffered the commit failures propagates over
// the health topic, and after the next routed call every shard reports the
// server quarantined.
func TestCrossShardQuarantinePropagation(t *testing.T) {
	inj := faults.New(7)
	opts := core.DefaultOptions()
	opts.Health = core.HealthPolicy{
		FailureThreshold: 1,
		Cooldown:         time.Hour, // outlasts the test: no shard may time out of it
		RetryAfter:       time.Millisecond,
	}
	bed := testbed.MustNew(testbed.Spec{Shards: 4, Faults: inj, Options: &opts})
	if _, err := bed.AddNewsArticle("news-1", "Election night", 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	inj.Crash("server-1")
	// Negotiate until some shard's breaker trips on the crashed server. The
	// round-robin placement means the tripping shard is arbitrary — which is
	// the point: the other three only learn of it over the bus.
	tripped := false
	for i := 0; i < 32 && !tripped; i++ {
		res, err := bed.Manager.Negotiate(bed.Client(1), "news-1", stressProfile())
		if err != nil {
			t.Fatal(err)
		}
		if res.Session != nil {
			bed.Manager.Reject(res.Session.ID)
		}
		tripped = bed.Manager.Stats().Quarantines > 0
	}
	if !tripped {
		t.Fatal("crashed server never tripped a breaker")
	}
	if _, q := bed.Manager.Quarantined("server-1"); !q {
		t.Fatal("fleet does not report server-1 quarantined after a trip")
	}
	// Quarantined() synced the bus; now every shard must hold the evidence.
	for _, row := range bed.Fleet.ShardStats() {
		found := false
		for _, b := range row.Breakers {
			if b.Server == "server-1" && b.Quarantined {
				found = true
			}
		}
		if !found {
			t.Errorf("shard %d does not report server-1 quarantined (breakers %+v)", row.Shard, row.Breakers)
		}
		if row.BusLag != 0 {
			t.Errorf("shard %d: bus lag %d after sync, want 0", row.Shard, row.BusLag)
		}
	}
	// Propagated evidence must not re-publish: the health log has exactly
	// the locally gathered trips, not an echo per shard.
	quarantines := 0
	for _, row := range bed.Fleet.ShardStats() {
		quarantines += row.Stats.Quarantines
	}
	if st := bed.Manager.Stats(); st.Quarantines != quarantines {
		t.Errorf("aggregate quarantines %d != sum of shard quarantines %d", st.Quarantines, quarantines)
	}
}

// stubPolicy is a minimal forkable, sharing selection policy: every fork
// records the summaries merged into it and shares one summary per observed
// commit, so the test can watch learned state travel the policy topic.
type stubPolicy struct {
	mu       sync.Mutex
	shard    int
	forks    []*stubPolicy
	hook     func([]core.PolicySummary)
	merged   []core.PolicySummary
	observed int
}

func (p *stubPolicy) Name() string                                   { return "stub" }
func (p *stubPolicy) OrderCommits(ties []core.PolicyCandidate) []int { return nil }

func (p *stubPolicy) ForkPolicy(shard int) core.SelectionPolicy {
	f := &stubPolicy{shard: shard}
	p.mu.Lock()
	p.forks = append(p.forks, f)
	p.mu.Unlock()
	return f
}

func (p *stubPolicy) SetShareHook(h func([]core.PolicySummary)) {
	p.mu.Lock()
	p.hook = h
	p.mu.Unlock()
}

func (p *stubPolicy) MergePolicy(sums []core.PolicySummary) {
	p.mu.Lock()
	p.merged = append(p.merged, sums...)
	p.mu.Unlock()
}

func (p *stubPolicy) ObserveCommit(o core.CommitObservation) {
	p.mu.Lock()
	p.observed++
	h := p.hook
	p.mu.Unlock()
	if h != nil {
		h([]core.PolicySummary{{Server: o.Server, Guarantee: o.Guarantee, Successes: 1}})
	}
}

// A forkable selection policy must be split per shard, and every shard's
// shared summaries must reach every sibling — and only siblings: no shard
// merges its own evidence back.
func TestFleetPolicyPropagation(t *testing.T) {
	root := &stubPolicy{}
	opts := core.DefaultOptions()
	opts.Selection = root
	bed := testbed.MustNew(testbed.Spec{Shards: 2, Options: &opts})
	if _, err := bed.AddNewsArticle("news-1", "Election night", 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(root.forks) != 2 {
		t.Fatalf("forked %d policy instances, want 2", len(root.forks))
	}
	// Round-robin placement lands commits on both shards; each commit's
	// observation is shared immediately by the stub.
	for i := 0; i < 6; i++ {
		res, err := bed.Manager.Negotiate(bed.Client(1), "news-1", stressProfile())
		if err != nil {
			t.Fatal(err)
		}
		if res.Session != nil {
			bed.Manager.Reject(res.Session.ID)
		}
	}
	bed.Fleet.Sync()
	for _, f := range root.forks {
		f.mu.Lock()
		observed, merged := f.observed, append([]core.PolicySummary(nil), f.merged...)
		f.mu.Unlock()
		if observed == 0 {
			t.Errorf("shard %d policy observed no commits", f.shard)
		}
		if len(merged) == 0 {
			t.Errorf("shard %d policy merged no sibling summaries", f.shard)
		}
		for _, s := range merged {
			if s.Successes != 1 || s.Server == "" {
				t.Errorf("shard %d merged malformed summary %+v", f.shard, s)
			}
		}
	}
	// Conservation: everything merged was observed by the sibling — with no
	// self-echo, each shard merges exactly what the other observed.
	if got, want := len(root.forks[0].merged), root.forks[1].observed; got != want {
		t.Errorf("shard 0 merged %d summaries, sibling observed %d", got, want)
	}
	if got, want := len(root.forks[1].merged), root.forks[0].observed; got != want {
		t.Errorf("shard 1 merged %d summaries, sibling observed %d", got, want)
	}
	// A single-shard fleet has no sibling to teach: the share hook must not
	// be installed at all.
	solo := &stubPolicy{}
	soloOpts := core.DefaultOptions()
	soloOpts.Selection = solo
	testbed.MustNew(testbed.Spec{Shards: 1, Options: &soloOpts})
	if len(solo.forks) != 1 {
		t.Fatalf("single-shard fleet forked %d instances, want 1", len(solo.forks))
	}
	if solo.forks[0].hook != nil {
		t.Error("single-shard fleet installed a policy share hook; there is no sibling to teach")
	}
}

// TestShardLifecycleStress is the PR 4 lifecycle-stress harness pointed at a
// sharded fleet: concurrent workers drive the full session lifecycle with
// fault injection across 1-, 2- and 4-shard fleets, then the world heals,
// every session is wound down, and the invariant is checked per-shard (no
// live sessions anywhere) and fleet-wide (the shared resource ledger
// balances to zero).
func TestShardLifecycleStress(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			t.Parallel()
			runShardStress(t, shards, 1996+int64(shards))
		})
	}
}

func runShardStress(t *testing.T, shards int, seed int64) {
	inj := faults.New(seed)
	opts := core.DefaultOptions()
	opts.Health = core.HealthPolicy{
		FailureThreshold: 6,
		Cooldown:         200 * time.Microsecond,
		RetryAfter:       50 * time.Microsecond,
	}
	bed := testbed.MustNew(testbed.Spec{Shards: shards, Faults: inj, Options: &opts})
	bed.Ledger.OnViolation(func(v string) {
		t.Errorf("shards=%d: %s", shards, v)
	})
	if _, err := bed.AddNewsArticle("news-1", "Election night", 2*time.Minute); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var live []core.SessionID
	addLive := func(id core.SessionID) {
		mu.Lock()
		live = append(live, id)
		mu.Unlock()
	}
	pickLive := func(r *sim.Rand) (core.SessionID, bool) {
		mu.Lock()
		defer mu.Unlock()
		if len(live) == 0 {
			return 0, false
		}
		return live[r.Intn(len(live))], true
	}

	iters := 250
	if testing.Short() {
		iters = 60
	}
	serverIDs := bed.ServerIDs()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		rng := sim.NewRand(seed + int64(w)*7919)
		wg.Add(1)
		go func(rng *sim.Rand) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch rng.Intn(12) {
				case 0, 1, 2, 3:
					res, err := bed.Manager.Negotiate(bed.Client(1+rng.Intn(2)), "news-1", stressProfile())
					if err != nil {
						t.Errorf("shards=%d: Negotiate: %v", shards, err)
						return
					}
					if res.Session != nil {
						addLive(res.Session.ID)
					}
				case 4, 5:
					if id, ok := pickLive(rng); ok {
						bed.Manager.Confirm(id)
					}
				case 6:
					if id, ok := pickLive(rng); ok {
						bed.Manager.Reject(id)
					}
				case 7:
					if id, ok := pickLive(rng); ok {
						bed.Manager.Expire(id)
					}
				case 8:
					if id, ok := pickLive(rng); ok {
						bed.Manager.Adapt(id)
					}
				case 9:
					if id, ok := pickLive(rng); ok {
						bed.Manager.Renegotiate(id, stressProfile())
					}
				case 10:
					if id, ok := pickLive(rng); ok {
						bed.Manager.Abort(id)
					}
				case 11: // fault weather
					id := serverIDs[rng.Intn(len(serverIDs))]
					s, ok := inj.Server(id)
					if !ok {
						continue
					}
					switch rng.Intn(3) {
					case 0:
						s.Crash()
					case 1:
						s.Restart()
					default:
						inj.SetReserveFailure(float64(rng.Intn(2)) * 0.2)
					}
				}
			}
		}(rng)
	}
	wg.Wait()

	// Heal and wind down.
	inj.SetReserveFailure(0)
	for _, id := range serverIDs {
		inj.Restart(id)
	}
	mu.Lock()
	ids := append([]core.SessionID(nil), live...)
	mu.Unlock()
	for _, id := range ids {
		bed.Manager.Abort(id)
	}
	for _, state := range []core.SessionState{core.Reserved, core.Playing} {
		if ss := bed.Manager.Sessions(state); len(ss) != 0 {
			t.Fatalf("shards=%d: %d sessions still %v after wind-down", shards, len(ss), state)
		}
	}
	// Per-shard: no shard may hold a live session the aggregate missed.
	for _, row := range bed.Fleet.ShardStats() {
		if row.Sessions != 0 {
			t.Errorf("shards=%d: shard %d still holds %d live sessions", shards, row.Shard, row.Sessions)
		}
	}
	// Fleet-wide: the shared ledger balances to zero.
	if err := bed.Ledger.CheckEmpty(); err != nil {
		t.Errorf("shards=%d: %v", shards, err)
	}
	if got := bed.Network.ActiveReservations(); got != 0 {
		t.Errorf("shards=%d: %d network reservations leaked", shards, got)
	}
	for id, srv := range bed.Servers {
		if srv.ActiveStreams() != 0 {
			t.Errorf("shards=%d: server %s leaked %d streams", shards, id, srv.ActiveStreams())
		}
	}
	// The aggregate is the sum of its parts: cross-check Stats roll-up.
	var sum core.Stats
	rows := bed.Fleet.ShardStats()
	agg := bed.Manager.Stats()
	for _, row := range rows {
		sum.Requests += row.Stats.Requests
		sum.Succeeded += row.Stats.Succeeded
	}
	if sum.Requests != agg.Requests || sum.Succeeded != agg.Succeeded {
		t.Errorf("shards=%d: shard stats sum {req %d, ok %d} != aggregate {req %d, ok %d}",
			shards, sum.Requests, sum.Succeeded, agg.Requests, agg.Succeeded)
	}
	if !reflect.DeepEqual(bed.Manager.Stats(), agg) {
		t.Errorf("shards=%d: Stats not stable across calls at quiescence", shards)
	}
}
