package shard

import (
	"testing"

	"qosneg/internal/media"
)

// TestBusSinceAfterTrimReplaysFromBase pins the underflow fix in bus.since:
// a cursor that predates the trimmed base must replay from the base, not
// compute a negative slice index. Before the fix, from < base[t] wrapped the
// uint64 subtraction and int() produced a negative start, so logs[t][start:]
// panicked.
func TestBusSinceAfterTrimReplaysFromBase(t *testing.T) {
	b := &bus{}
	for i := 0; i < 4; i++ {
		b.publish(topicHealth, event{server: media.ServerID("server-1"), origin: i})
	}
	// Every subscriber applied through sequence 3: entries 1..3 are trimmed.
	b.trim(topicHealth, 3)

	// A cursor from before the trim window (a late subscriber, or a reset
	// one) asks for everything after sequence 0.
	evs, upTo := b.since(topicHealth, 0)
	if len(evs) != 1 || evs[0].origin != 3 {
		t.Fatalf("since(0) after trim = %d events %+v, want the 1 retained entry", len(evs), evs)
	}
	if upTo != 4 {
		t.Fatalf("since(0) covered through %d, want head 4", upTo)
	}

	// In-window cursors keep their exact semantics.
	evs, upTo = b.since(topicHealth, 3)
	if len(evs) != 1 || upTo != 4 {
		t.Fatalf("since(3) = %d events, upTo %d, want 1 event through 4", len(evs), upTo)
	}
	evs, upTo = b.since(topicHealth, 4)
	if len(evs) != 0 || upTo != 4 {
		t.Fatalf("since(head) = %d events, upTo %d, want none and cursor unchanged", len(evs), upTo)
	}
}
