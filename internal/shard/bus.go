package shard

import (
	"sync"
	"sync/atomic"
	"time"

	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/media"
)

// The update bus carries cross-shard concerns on four append-only topic
// logs, each with its own monotonically increasing sequence numbers:
//
//   - registry: catalog mutations on the primary registry (per-document, or
//     a full-catalog replacement after LoadFile);
//   - pricing: tariff swaps, so every shard's pricing generation advances;
//   - health: circuit-breaker trips, so one shard's server-down evidence
//     excludes the server fleet-wide;
//   - policy: learned-policy state summaries, so every shard's selection
//     policy benefits from every shard's commit outcomes.
//
// Shards consume lazily: before every routed call the fleet compares the
// shard's applied sequence with the topic head (one atomic load each) and
// replays any pending entries in publication order. The guarantee this
// yields: a request routed to a shard observes every event published before
// the routing decision — in particular, a negotiation can never be answered
// from a catalog or tariff older than one the caller already saw installed.
type topic int

const (
	topicRegistry topic = iota
	topicPricing
	topicHealth
	topicPolicy
	numTopics
)

var topicNames = [numTopics]string{"registry", "pricing", "health", "policy"}

func (t topic) String() string { return topicNames[t] }

// event is one bus entry; which fields are meaningful depends on the topic.
type event struct {
	// registry: the mutated document, or full=true for a catalog
	// replacement (LoadFile).
	doc  media.DocumentID
	full bool
	// pricing: the new tables.
	pricing cost.Pricing
	// health: the shard whose breaker gathered the evidence, the server,
	// and the quarantine deadline. origin doubles as the policy topic's
	// publishing shard.
	origin int
	server media.ServerID
	until  time.Time
	// policy: additive learned-state deltas from the origin shard's policy.
	sums []core.PolicySummary
}

// bus holds the per-topic logs. Publication appends under the mutex and
// bumps the atomic head, so subscribers can detect "nothing new" with one
// atomic load and no lock. Entries every subscriber has applied are trimmed
// (the base moves forward), keeping the logs bounded by the slowest shard's
// lag rather than by history.
type bus struct {
	mu   sync.Mutex
	logs [numTopics][]event
	// base[t] is the sequence number of the last trimmed entry of topic t:
	// logs[t][0], when present, carries sequence base[t]+1.
	base [numTopics]uint64
	head [numTopics]atomic.Uint64
}

// publish appends an event and returns its sequence number.
func (b *bus) publish(t topic, ev event) uint64 {
	b.mu.Lock()
	b.logs[t] = append(b.logs[t], ev)
	seq := b.head[t].Add(1)
	b.mu.Unlock()
	return seq
}

// since copies the entries of topic t with sequence numbers > from, in
// publication order, and returns the sequence number the copy runs through
// (the caller's new cursor). A cursor older than the trimmed base — a
// subscriber that missed trims — replays from the base instead of indexing
// the log with a wrapped-negative offset.
func (b *bus) since(t topic, from uint64) ([]event, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if from < b.base[t] {
		from = b.base[t]
	}
	start := int(from - b.base[t])
	if start >= len(b.logs[t]) {
		return nil, from
	}
	out := make([]event, len(b.logs[t])-start)
	copy(out, b.logs[t][start:])
	return out, b.base[t] + uint64(len(b.logs[t]))
}

// trim drops the prefix of topic t through sequence number upTo (the
// minimum applied sequence across subscribers).
func (b *bus) trim(t topic, upTo uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if upTo <= b.base[t] {
		return
	}
	drop := int(upTo - b.base[t])
	if drop > len(b.logs[t]) {
		drop = len(b.logs[t])
	}
	b.logs[t] = append(b.logs[t][:0:0], b.logs[t][drop:]...)
	b.base[t] += uint64(drop)
}
