// Package shard fronts N independent core.Manager shards behind
// consistent-hash session routing, exposing the same manager surface
// (core.SessionManager) — so the facade, protocol server and admission
// controller sit on top of a fleet exactly as they sit on top of a single
// manager. See DESIGN.md §14 for the topology, the replication argument and
// the bus ordering guarantees.
package shard

import "qosneg/internal/core"

// jumpHash is Lamping & Veach's jump consistent hash: it maps a 64-bit key
// onto [0, buckets) such that growing the bucket count from N to N+1 moves
// only ~1/(N+1) of the keys — and every moved key moves to the new bucket,
// never between existing ones. That is exactly the resharding stability the
// session router needs: a fleet resized from N to N+1 shards keeps N/(N+1)
// of its session-to-shard assignments.
func jumpHash(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// mix is the splitmix64 finalizer. Session ids are small sequential
// integers, which jump hash distributes poorly on its own (consecutive keys
// land in runs); the finalizer spreads them uniformly over the 64-bit space
// first.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// shardOf maps a session id to its home shard.
func shardOf(id core.SessionID, shards int) int {
	if shards <= 1 {
		return 0
	}
	return jumpHash(mix(uint64(id)), shards)
}
