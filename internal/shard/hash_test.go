package shard

import (
	"testing"

	"qosneg/internal/core"
)

// Growing the fleet from n to n+1 shards must move roughly 1/(n+1) of the
// session population, and every moved session must land on the new shard —
// never migrate between surviving shards. This is the consistent-hash
// property the router's resharding story rests on.
func TestRoutingStabilityUnderGrowth(t *testing.T) {
	const sessions = 200_000
	for n := 1; n <= 8; n++ {
		moved := 0
		for id := 1; id <= sessions; id++ {
			before := shardOf(core.SessionID(id), n)
			after := shardOf(core.SessionID(id), n+1)
			if before == after {
				continue
			}
			if after != n {
				t.Fatalf("%d->%d shards: session %d moved %d -> %d (not the new shard %d)",
					n, n+1, id, before, after, n)
			}
			moved++
		}
		want := float64(sessions) / float64(n+1)
		if f := float64(moved); f < 0.9*want || f > 1.1*want {
			t.Errorf("%d->%d shards: %d sessions moved, want ~%.0f (1/(n+1) of %d)",
				n, n+1, moved, want, sessions)
		}
	}
}

// Sequential session ids must spread evenly: no shard may hold more than a
// small multiple of its fair share. Without the splitmix64 finalizer jump
// hash lands consecutive keys in runs and this fails badly.
func TestRoutingBalance(t *testing.T) {
	const sessions = 100_000
	for _, n := range []int{2, 4, 8} {
		counts := make([]int, n)
		for id := 1; id <= sessions; id++ {
			counts[shardOf(core.SessionID(id), n)]++
		}
		fair := sessions / n
		for i, c := range counts {
			if c < fair*9/10 || c > fair*11/10 {
				t.Errorf("%d shards: shard %d holds %d of %d sessions (fair share %d)",
					n, i, c, sessions, fair)
			}
		}
	}
}

// A single-shard fleet must route everything to shard 0 — the degenerate
// case the shards=1 equivalence test relies on.
func TestRoutingSingleShard(t *testing.T) {
	for id := 0; id < 1000; id++ {
		if s := shardOf(core.SessionID(id), 1); s != 0 {
			t.Fatalf("shardOf(%d, 1) = %d, want 0", id, s)
		}
	}
}

// The bus must deliver per-topic events in publication order, expose them
// incrementally via since, and drop trimmed prefixes without renumbering.
func TestBusOrderingAndTrim(t *testing.T) {
	b := &bus{}
	for i := 0; i < 10; i++ {
		seq := b.publish(topicHealth, event{origin: i})
		if seq != uint64(i+1) {
			t.Fatalf("publish %d returned seq %d", i, seq)
		}
	}
	evs, _ := b.since(topicHealth, 0)
	if len(evs) != 10 {
		t.Fatalf("since(0): %d events, want 10", len(evs))
	}
	for i, ev := range evs {
		if ev.origin != i {
			t.Fatalf("since(0)[%d].origin = %d, want %d (order broken)", i, ev.origin, i)
		}
	}
	b.trim(topicHealth, 4)
	evs, _ = b.since(topicHealth, 4)
	if len(evs) != 6 || evs[0].origin != 4 {
		t.Fatalf("after trim(4), since(4) = %d events starting at origin %v, want 6 starting at 4",
			len(evs), evs[0].origin)
	}
	if got, _ := b.since(topicHealth, 10); got != nil {
		t.Fatalf("since(head) = %d events, want none", len(got))
	}
	// Trimming below the base is a no-op, not a panic.
	b.trim(topicHealth, 2)
	if evs, _ := b.since(topicHealth, 4); len(evs) != 6 {
		t.Fatalf("trim below base disturbed the log: %d events", len(evs))
	}
}
