package profile

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"qosneg/internal/cost"
	"qosneg/internal/qos"
)

func tvProfile() UserProfile {
	for _, p := range DefaultProfiles() {
		if p.Name == "tv-quality" {
			return p
		}
	}
	panic("tv-quality profile missing")
}

func TestDefaultProfilesValid(t *testing.T) {
	ps := DefaultProfiles()
	if len(ps) != 3 {
		t.Fatalf("want 3 factory profiles, got %d", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("factory profile %s invalid: %v", p.Name, err)
		}
		if err := p.Importance.Validate(); err != nil {
			t.Errorf("factory profile %s importance invalid: %v", p.Name, err)
		}
	}
}

func TestUserProfileValidate(t *testing.T) {
	good := tvProfile()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}

	p := good.Clone()
	p.Name = ""
	if err := p.Validate(); err == nil {
		t.Error("empty name accepted")
	}

	p = good.Clone()
	p.Desired.Video.FrameRate = 0
	if err := p.Validate(); err == nil {
		t.Error("invalid desired QoS accepted")
	}

	p = good.Clone()
	p.Worst.Video = &qos.VideoQoS{Color: qos.SuperColor, FrameRate: 60, Resolution: 1920}
	if err := p.Validate(); err == nil {
		t.Error("worst above desired accepted")
	}

	p = good.Clone()
	p.Worst.Video = nil
	if err := p.Validate(); err == nil {
		t.Error("media present in only one MM profile accepted")
	}

	p = good.Clone()
	p.Worst.Cost.MaxCost = p.Desired.Cost.MaxCost - 1
	if err := p.Validate(); err == nil {
		t.Error("worst budget below desired budget accepted")
	}

	p = good.Clone()
	p.Desired.Cost.MaxCost = -1
	if err := p.Validate(); err == nil {
		t.Error("negative budget accepted")
	}

	p = good.Clone()
	p.Desired.Time.MaxStartDelay = -time.Second
	if err := p.Validate(); err == nil {
		t.Error("negative start delay accepted")
	}
}

func TestMMProfileSetting(t *testing.T) {
	p := tvProfile().Desired
	if s, ok := p.Setting(qos.Video); !ok || s.Video == nil {
		t.Error("video setting missing")
	}
	if s, ok := p.Setting(qos.Audio); !ok || s.Audio == nil {
		t.Error("audio setting missing")
	}
	if _, ok := p.Setting(qos.Text); ok {
		t.Error("tv profile has no text requirement")
	}
	if _, ok := p.Setting(qos.Image); ok {
		t.Error("tv profile has no image requirement")
	}
	// Graphics share the image section.
	pr := DefaultProfiles()[1] // premium has an image section
	if _, ok := pr.Desired.Setting(qos.Graphic); !ok {
		t.Error("graphic should resolve to the image section")
	}
}

func TestUserProfileClone(t *testing.T) {
	p := tvProfile()
	c := p.Clone()
	c.Desired.Video.FrameRate = 1
	c.Importance.VideoColor[qos.Color] = -1
	if p.Desired.Video.FrameRate == 1 {
		t.Error("clone shares desired video QoS")
	}
	if p.Importance.VideoColor[qos.Color] == -1 {
		t.Error("clone shares importance maps")
	}
}

func TestMaxCost(t *testing.T) {
	p := tvProfile()
	if p.MaxCost() != cost.Dollars(6) {
		t.Errorf("MaxCost = %v", p.MaxCost())
	}
}

func TestStoreCRUD(t *testing.T) {
	s := NewStore()
	if got := s.List(); len(got) != 0 {
		t.Fatalf("new store not empty: %v", got)
	}
	if _, err := s.Get("tv-quality"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get on empty store: %v", err)
	}
	for _, p := range DefaultProfiles() {
		if err := s.Save(p); err != nil {
			t.Fatalf("Save(%s): %v", p.Name, err)
		}
	}
	want := []string{"economy", "premium", "tv-quality"}
	got := s.List()
	if len(got) != len(want) {
		t.Fatalf("List = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("List[%d] = %s, want %s", i, got[i], want[i])
		}
	}

	// First saved profile becomes the default.
	d, err := s.Default()
	if err != nil || d.Name != "tv-quality" {
		t.Errorf("Default = %s, %v", d.Name, err)
	}
	if err := s.SetDefault("economy"); err != nil {
		t.Fatal(err)
	}
	if d, _ = s.Default(); d.Name != "economy" {
		t.Errorf("Default after SetDefault = %s", d.Name)
	}
	if err := s.SetDefault("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("SetDefault(ghost): %v", err)
	}

	// Stored profiles are isolated from caller mutation.
	p, _ := s.Get("tv-quality")
	p.Desired.Video.FrameRate = 2
	p2, _ := s.Get("tv-quality")
	if p2.Desired.Video.FrameRate == 2 {
		t.Error("store leaked internal state")
	}

	if err := s.Delete("economy"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Default(); !errors.Is(err, ErrNotFound) {
		t.Error("deleting the default must clear it")
	}
	if err := s.Delete("economy"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
}

func TestStoreRejectsInvalid(t *testing.T) {
	s := NewStore()
	p := tvProfile()
	p.Name = ""
	if err := s.Save(p); err == nil {
		t.Error("invalid profile saved")
	}
	p = tvProfile()
	p.Importance.FrameRate = Curve{Points: []Point{{X: 5, Y: 1}, {X: 5, Y: 2}}}
	if err := s.Save(p); err == nil {
		t.Error("invalid importance saved")
	}
}

func TestStorePersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "profiles.json")

	s := NewStore()
	for _, p := range DefaultProfiles() {
		if err := s.Save(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetDefault("premium"); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	s2 := NewStore()
	if err := s2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if len(s2.List()) != 3 {
		t.Errorf("loaded %d profiles", len(s2.List()))
	}
	d, err := s2.Default()
	if err != nil || d.Name != "premium" {
		t.Errorf("loaded default = %s, %v", d.Name, err)
	}
	p, err := s2.Get("tv-quality")
	if err != nil {
		t.Fatal(err)
	}
	if p.Desired.Video == nil || p.Desired.Video.FrameRate != qos.TVRate {
		t.Errorf("round-tripped video profile: %+v", p.Desired.Video)
	}
	if p.Importance.CostPerDollar != 1 {
		t.Errorf("round-tripped cost importance: %g", p.Importance.CostPerDollar)
	}
	if p.Desired.Time.ChoicePeriod != 30*time.Second {
		t.Errorf("round-tripped choice period: %v", p.Desired.Time.ChoicePeriod)
	}
}

func TestStoreLoadErrors(t *testing.T) {
	s := NewStore()
	if err := s.LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadFile(bad); err == nil {
		t.Error("corrupt file accepted")
	}
	// Default referring to a missing profile.
	orphan := filepath.Join(t.TempDir(), "orphan.json")
	if err := writeFile(orphan, `{"default":"ghost","profiles":[]}`); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadFile(orphan); err == nil {
		t.Error("dangling default accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
